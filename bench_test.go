// Benchmarks regenerating the paper's tables and figures, one per artifact
// (see the experiment index in DESIGN.md). Each benchmark runs the full
// distributed computation per iteration and reports the LOCAL-model costs
// (rounds, colors) as custom metrics next to wall-clock time:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/graph"
	"repro/internal/panconesi"
	"repro/internal/reduce"
)

// benchGraph is the standard Table-1/2 workload: a random graph with target
// degree 16 on 256 vertices.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return graph.TargetDegreeGNM(256, 16, 1)
}

func reportEdgeRun(b *testing.B, g *graph.Graph, res *dist.Result[[]int]) {
	b.Helper()
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Stats.Rounds), "rounds")
	b.ReportMetric(float64(graph.CountColors(colors)), "colors")
	b.ReportMetric(float64(res.Stats.MaxMessageBytes), "maxMsgB")
}

// BenchmarkTable1_PanconesiRizzi is the Table 1 baseline row: (2Δ−1) colors
// in O(Δ)+log* n rounds [24].
func BenchmarkTable1_PanconesiRizzi(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		res, err := panconesi.EdgeColoring(g)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportEdgeRun(b, g, res)
		}
	}
}

// BenchmarkTable1_BarenboimElkin is the Table 1 "new" row: the §5 edge
// variant of Procedure Legal-Color (wide messages).
func BenchmarkTable1_BarenboimElkin(b *testing.B) {
	g := benchGraph(b)
	pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportEdgeRun(b, g, res)
		}
	}
}

// BenchmarkTable1_HPartitionLineGraph is the Table 1 large-Δ competitor
// ([3]/[5]-style forest decomposition, inherent Θ(log n) rounds) run on the
// line graph under the Lemma 5.2 accounting.
func BenchmarkTable1_HPartitionLineGraph(b *testing.B) {
	g := benchGraph(b)
	lg := g.LineGraph()
	theta := baseline.DefaultTheta(lg)
	for i := 0; i < b.N; i++ {
		res, err := baseline.HPartitionColoring(lg, theta)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := graph.CheckEdgeColoring(g, res.Outputs); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(2*res.Stats.Rounds+1), "simRounds")
			b.ReportMetric(float64(graph.CountColors(res.Outputs)), "colors")
		}
	}
}

// BenchmarkTable2_RandomizedTrial is the Table 2 randomized competitor
// (stand-in for [29],[18]): rounds grow with log n.
func BenchmarkTable2_RandomizedTrial(b *testing.B) {
	g := graph.RandomRegular(1024, 8, 2)
	for i := 0; i < b.N; i++ {
		res, err := baseline.RandomizedTrialEdgeColoring(g, dist.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportEdgeRun(b, g, res)
		}
	}
}

// BenchmarkTable2_Deterministic is the Table 2 deterministic row at small Δ.
func BenchmarkTable2_Deterministic(b *testing.B) {
	g := graph.RandomRegular(1024, 8, 2)
	pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportEdgeRun(b, g, res)
		}
	}
}

// BenchmarkFig1 colors the Figure-1 graph (I(G)=2, unbounded growth) with
// the vertex Legal-Color.
func BenchmarkFig1(b *testing.B) {
	g := graph.CliquePlusPendants(32)
	pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.LegalColoring(g, pl, core.StartAux)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(graph.CountColors(res.Outputs)), "colors")
		}
	}
}

// BenchmarkFig2 is the Lemma 3.4 orientation-coloring process.
func BenchmarkFig2(b *testing.B) {
	g := graph.GNM(256, 2048, 3)
	o := graph.OrientByIDs(g)
	d := o.MaxOutDegree()
	for i := 0; i < b.N; i++ {
		res, err := dist.Run(g, func(v dist.Process) int {
			isOut := make([]bool, v.Deg())
			for p := range isOut {
				isOut[p] = v.NeighborID(p) < v.ID()
			}
			return reduce.ColorByOrientation(v, isOut, d)
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(graph.MaxColor(res.Outputs)), "colors")
		}
	}
}

// BenchmarkFig3 runs the recursion whose tree Figure 3 depicts (two levels
// of Defective-Color above a Panconesi–Rizzi leaf).
func BenchmarkFig3(b *testing.B) {
	g := graph.TargetDegreeGNM(256, 48, 4)
	pl, err := core.AutoPlan(g.MaxDegree(), 2, 1, 12, true)
	if err != nil {
		b.Fatal(err)
	}
	if pl.Depth() < 1 {
		b.Fatal("plan has no recursion levels; Figure 3 needs depth >= 1")
	}
	for i := 0; i < b.N; i++ {
		res, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportEdgeRun(b, g, res)
			b.ReportMetric(float64(pl.Depth()), "depth")
		}
	}
}

// BenchmarkDefectProduct_Alg1 measures the paper's core §3 claim: Procedure
// Defective-Color's defect × colors stays linear in Δ on bounded-NI graphs.
func BenchmarkDefectProduct_Alg1(b *testing.B) {
	g := graph.RandomRegular(256, 12, 5).LineGraph()
	for i := 0; i < b.N; i++ {
		res, err := core.DefectiveColoring(g, 2, 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			d := graph.VertexDefect(g, res.Outputs)
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(d*4), "defectXcolors")
			b.ReportMetric(float64(g.MaxDegree()), "delta")
		}
	}
}

// BenchmarkDefectProduct_Kuhn is the prior-art comparison [19]: the same
// defect costs p² colors on general graphs (product Δ·p).
func BenchmarkDefectProduct_Kuhn(b *testing.B) {
	g := graph.RandomRegular(256, 12, 5).LineGraph()
	for i := 0; i < b.N; i++ {
		res, err := defective.VertexColoring(g, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			d := graph.VertexDefect(g, res.Outputs)
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(d*graph.CountColors(res.Outputs)), "defectXcolors")
		}
	}
}

// BenchmarkVertexScaling is the Theorem 4.5/4.6 shape: Legal-Color on a
// bounded-NI vertex input.
func BenchmarkVertexScaling(b *testing.B) {
	g := graph.PowerOfCycle(512, 16)
	pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.LegalColoring(g, pl, core.StartAux)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(graph.CountColors(res.Outputs)), "colors")
		}
	}
}

// BenchmarkMessageSize_WideVsShort reports the §5 message regimes.
func BenchmarkMessageSize_Wide(b *testing.B) {
	benchMessageSize(b, edgecolor.Wide)
}

func BenchmarkMessageSize_Short(b *testing.B) {
	benchMessageSize(b, edgecolor.Short)
}

func benchMessageSize(b *testing.B, mode edgecolor.MsgMode) {
	b.Helper()
	g := graph.TargetDegreeGNM(192, 24, 6)
	pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := edgecolor.LegalEdgeColoring(g, pl, mode)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportEdgeRun(b, g, res)
		}
	}
}

// BenchmarkKuhnEdgeDefective is Corollary 5.4: one round, defect ≤ 4⌈Δ/p'⌉.
func BenchmarkKuhnEdgeDefective(b *testing.B) {
	g := graph.TargetDegreeGNM(512, 32, 7)
	for i := 0; i < b.N; i++ {
		res, err := defective.EdgeColoring(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			colors, err := graph.MergePortColors(g, res.Outputs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(graph.EdgeDefect(g, colors)), "defect")
		}
	}
}

// BenchmarkRandomized is Corollary 6.2.
func BenchmarkRandomized(b *testing.B) {
	g := graph.TargetDegreeGNM(512, 28, 8)
	for i := 0; i < b.N; i++ {
		res, err := edgecolor.RandomizedEdgeColoring(g, 2, 6, 8, edgecolor.Wide, dist.WithSeed(11))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportEdgeRun(b, g, res)
		}
	}
}

// BenchmarkTradeoff is Corollary 6.3 at one point of the curve.
func BenchmarkTradeoff(b *testing.B) {
	g := graph.TargetDegreeGNM(256, 32, 9)
	for i := 0; i < b.N; i++ {
		res, err := edgecolor.TradeoffEdgeColoring(g, 2, 6, g.MaxDegree()/2, edgecolor.Wide)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportEdgeRun(b, g, res)
		}
	}
}

// BenchmarkLineGraphSim is Lemma 5.2: the vertex algorithm on L(G) with
// simulation accounting.
func BenchmarkLineGraphSim(b *testing.B) {
	g := graph.TargetDegreeGNM(128, 16, 10)
	lg := g.LineGraph()
	pl, err := core.AutoPlan(lg.MaxDegree(), 2, 2, 6, false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sim, err := edgecolor.ViaLineGraphSimulation(g, pl, core.StartAux)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := graph.CheckEdgeColoring(g, sim.EdgeColors); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sim.SimulatedRounds), "simRounds")
			b.ReportMetric(float64(sim.SimulatedMaxMessageBytes), "simMaxMsgB")
		}
	}
}

// BenchmarkNeighborhoodIndependence is the E8 structural check (exact I(G)
// of a line graph).
func BenchmarkNeighborhoodIndependence(b *testing.B) {
	lg := graph.GNM(40, 180, 11).LineGraph()
	for i := 0; i < b.N; i++ {
		if ni := graph.NeighborhoodIndependence(lg); ni > 2 {
			b.Fatalf("I(L(G)) = %d > 2", ni)
		}
	}
}
