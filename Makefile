# Development entry points. CI runs build/vet/test-race plus bench-smoke;
# bench is the full measurement run that refreshes BENCH_runtime.json.

GO ?= go

.PHONY: build test race vet fmt bench bench-smoke fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

# Full benchmark pass: root artifact benchmarks + internal/dist engine and
# runner benchmarks, exported as BENCH_runtime.json (ns/op, B/op, allocs/op,
# rounds, msgBytes, ...) so the performance trajectory is tracked per commit.
bench:
	scripts/bench.sh

# One-iteration smoke of the same suite: proves the benchmarks and the JSON
# emitter stay runnable without paying measurement time. CI runs this.
bench-smoke:
	BENCHTIME=1x OUT=/dev/null scripts/bench.sh

# Short fuzz pass over the graph builder and the wire codec seed corpora.
fuzz-smoke:
	$(GO) test -fuzz FuzzBuilder -fuzztime 10s -run '^$$' ./internal/graph/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz FuzzReader -fuzztime 10s -run '^$$' ./internal/wire/
