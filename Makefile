# Development entry points. CI runs three parallel jobs — lint, test-race +
# cover, and the bench/service smokes with a warn-only regression check —
# and a nightly workflow runs the fuzz targets at FUZZTIME=5m. bench and
# bench-service are the full measurement runs that refresh
# BENCH_runtime.json and BENCH_service.json.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fmt cover bench bench-smoke bench-service bench-service-smoke bench-check \
	bench-runtime-check bench-cluster-smoke fuzz-smoke fuzz-builder fuzz-wire-roundtrip fuzz-wire-reader \
	fuzz-dist-compiled fuzz-wal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

# Coverage gate over the service-critical packages (internal/service,
# internal/dist); fails under the floor. CI runs this.
cover:
	scripts/cover.sh

# Full benchmark pass: root artifact benchmarks + internal/dist engine and
# runner benchmarks, exported as BENCH_runtime.json (ns/op, B/op, allocs/op,
# rounds, msgBytes, ...) so the performance trajectory is tracked per commit.
bench:
	scripts/bench.sh

# One-iteration smoke of the same suite: proves the benchmarks and the JSON
# emitter stay runnable without paying measurement time. CI runs this.
bench-smoke:
	BENCHTIME=1x OUT=/dev/null scripts/bench.sh

# Service load measurement: drives an in-process colord with cmd/loadgen
# (raw persistent-connection driver) and refreshes BENCH_service.json
# (p50/p99 latency, req/s, B/op, allocs/op, cache rates, plus the
# BenchmarkHitPath serving-fast-path microbenchmark).
bench-service:
	scripts/bench_service.sh

# Tiny-duration loadgen pass against a throwaway output: proves colord,
# loadgen, the hit-path microbenchmark (-benchmem), and the JSON pipeline
# stay runnable. CI runs this.
bench-service-smoke:
	DURATION=300ms BENCHTIME=1x SUBS=50 RATE=0 SETTLE=0 OUT=/dev/null scripts/bench_service.sh

# Rerun the service bench and fail if p50, req/s, B/op, or allocs/op regress
# more than 3x against the committed BENCH_service.json (BENCH_WARN_ONLY=1
# in CI).
bench-check:
	scripts/bench_check.sh

# Rerun the runtime bench and fail if ns/op regresses more than 3x — or any
# deterministic LOCAL-model metric drifts at all — against the committed
# BENCH_runtime.json. This guards the compiled hot-path speedup.
bench-runtime-check:
	scripts/bench_runtime_check.sh

# Fuzz targets, FUZZTIME each (10s default; the nightly workflow passes 5m).
fuzz-builder:
	$(GO) test -fuzz FuzzBuilder -fuzztime $(FUZZTIME) -run '^$$' ./internal/graph/
fuzz-wire-roundtrip:
	$(GO) test -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) -run '^$$' ./internal/wire/
fuzz-wire-reader:
	$(GO) test -fuzz FuzzReader -fuzztime $(FUZZTIME) -run '^$$' ./internal/wire/
fuzz-dist-compiled:
	$(GO) test -fuzz FuzzCompiledAgree -fuzztime $(FUZZTIME) -run '^$$' ./internal/dist/
fuzz-wal:
	$(GO) test -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) -run '^$$' ./internal/wal/

# Short fuzz pass over all targets.
fuzz-smoke: fuzz-builder fuzz-wire-roundtrip fuzz-wire-reader fuzz-dist-compiled fuzz-wal

# Real-binary 3-node cluster smoke: colord x3 + colorgate over loopback,
# byte-stability, full-cluster SIGKILL recovery, and a loadgen pass through
# the gateway. CI runs this.
bench-cluster-smoke:
	DURATION=1s scripts/bench_cluster.sh
