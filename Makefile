# Development entry points. CI runs build/vet/test-race plus cover and the
# bench/service smokes; bench and bench-service are the full measurement runs
# that refresh BENCH_runtime.json and BENCH_service.json.

GO ?= go

.PHONY: build test race vet fmt cover bench bench-smoke bench-service bench-service-smoke fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

# Coverage gate over the service-critical packages (internal/service,
# internal/dist); fails under the floor. CI runs this.
cover:
	scripts/cover.sh

# Full benchmark pass: root artifact benchmarks + internal/dist engine and
# runner benchmarks, exported as BENCH_runtime.json (ns/op, B/op, allocs/op,
# rounds, msgBytes, ...) so the performance trajectory is tracked per commit.
bench:
	scripts/bench.sh

# One-iteration smoke of the same suite: proves the benchmarks and the JSON
# emitter stay runnable without paying measurement time. CI runs this.
bench-smoke:
	BENCHTIME=1x OUT=/dev/null scripts/bench.sh

# Service load measurement: drives an in-process colord with cmd/loadgen and
# refreshes BENCH_service.json (p50/p99 latency, req/s, cache rates).
bench-service:
	scripts/bench_service.sh

# Tiny-duration loadgen pass against a throwaway output: proves colord,
# loadgen, and the JSON pipeline stay runnable. CI runs this.
bench-service-smoke:
	DURATION=300ms OUT=/dev/null scripts/bench_service.sh

# Short fuzz pass over the graph builder and the wire codec seed corpora.
fuzz-smoke:
	$(GO) test -fuzz FuzzBuilder -fuzztime 10s -run '^$$' ./internal/graph/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz FuzzReader -fuzztime 10s -run '^$$' ./internal/wire/
