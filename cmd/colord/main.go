// Command colord is the coloring daemon: a long-running HTTP/JSON service
// that serves deterministic edge- and vertex-coloring requests on top of the
// dist runtime, with a per-graph runner pool, a request micro-batcher, and a
// deterministic result cache (see internal/service).
//
// Usage:
//
//	colord -addr :7080 -workers 8 -engine compiled
//
// Durability: -wal-dir makes dynamic sessions durable — every committed
// mutation appends to a per-session write-ahead log, and sessions replay
// from their logs on restart (-wal-sync additionally fsyncs per commit).
//
// Clustering: -peers lists every node's base URL and -self names this one;
// the node then fills result-cache misses from each key's rendezvous owner
// before computing (see internal/cluster). Front the peer set with colorgate
// for routing.
//
// API:
//
//	POST /v1/color   {"kind":"edge","alg":"be","graph":{"family":"gnm","n":256,"m":1024,"seed":1},"seed":7}
//	POST /v1/mutate  {"session":"s1","base":{...},"ops":[{"op":"insert","u":3,"v":9}]}
//	GET  /v1/subscribe?session=s1   (SSE: per-mutation recolor deltas)
//	GET  /healthz
//	GET  /statz
//
// The X-Colord-Cache response header reports hit|coalesced|miss; response
// bodies are byte-identical across the three, and identical to a direct
// dist.Run of the same request.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/service"
)

func runtimeWorkers() int { return runtime.GOMAXPROCS(0) }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "colord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("colord", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":7080", "listen address (use :0 for an ephemeral port with -addr-file)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening (harness handshake)")
		workers  = fs.Int("workers", 0, "concurrent algorithm executions (0 = GOMAXPROCS)")
		engine   = fs.String("engine", "compiled", "default dist scheduler: goroutines|lockstep|sharded|compiled (requests may override)")
		cache    = fs.Int("cache", 4096, "result cache capacity (entries)")
		graphs   = fs.Int("graphs", 64, "built-graph cache capacity (entries)")
		window   = fs.Duration("batch-window", 200*time.Microsecond, "micro-batch collection window")
		maxB     = fs.Int("batch-max", 64, "dispatch a batch early at this many distinct jobs")
		subsMax  = fs.Int("max-subscribers", 4096, "global cap on concurrent SSE subscribers")
		subsPer  = fs.Int("session-subscribers", 1024, "per-session SSE subscriber quota")
		feedBuf  = fs.Int("feed-buffer", 256, "delta frames buffered per session feed (the subscriber lag bound)")
		walDir   = fs.String("wal-dir", "", "write-ahead-log directory for durable dynamic sessions (empty = memory-only)")
		walSync  = fs.Bool("wal-sync", false, "fsync the session WAL on every commit")
		peers    = fs.String("peers", "", "comma-separated base URLs of every cluster node (enables peer cache fill)")
		self     = fs.String("self", "", "this node's base URL as it appears in -peers")
		pprofA   = fs.String("pprof", "", "serve net/http/pprof on this side address (empty = off), e.g. localhost:6060")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := dist.ParseEngine(*engine)
	if err != nil {
		return err
	}
	w := *workers
	if w <= 0 {
		w = runtimeWorkers()
	}
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			return fmt.Errorf("wal dir: %w", err)
		}
	}
	cfg := service.Config{
		Workers:            w,
		Engine:             eng,
		CacheEntries:       *cache,
		GraphEntries:       *graphs,
		BatchWindow:        *window,
		MaxBatch:           *maxB,
		MaxSubscribers:     *subsMax,
		SessionSubscribers: *subsPer,
		FeedBuffer:         *feedBuf,
		WALDir:             *walDir,
		WALSync:            *walSync,
	}
	if *peers != "" {
		if *self == "" {
			return fmt.Errorf("-peers requires -self (this node's URL within the peer set)")
		}
		filler := cluster.NewFiller(strings.Split(*peers, ","), *self, nil, 0)
		cfg.RemoteFill = filler.Fill
	}
	s := service.New(cfg)
	defer s.Close()

	if *pprofA != "" {
		// The profiling endpoints live on their own listener, never on the
		// serving address: /debug/pprof stays unreachable from service
		// traffic and can bind a loopback-only port.
		go func() {
			log.Printf("colord: pprof on http://%s/debug/pprof/", *pprofA)
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				log.Printf("colord: pprof server: %v", err)
			}
		}()
	}

	// Explicit Listen (rather than ListenAndServe) so :0 resolves to a real
	// port before -addr-file is written — the crash-test and bench harnesses
	// wait on that file instead of racing a fixed port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("addr file: %w", err)
		}
	}
	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("colord: serving on %s (workers=%d engine=%v cache=%d graphs=%d window=%v wal=%q)",
		bound, w, eng, *cache, *graphs, *window, *walDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		log.Printf("colord: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
