package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/dynamic"
	"repro/internal/exp"
	"repro/internal/service"
)

// buildColord compiles the daemon once per test run.
func buildColord(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "colord")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build colord: %v\n%s", err, out)
	}
	return bin
}

// startColord launches the daemon on an ephemeral port and waits for its
// address handshake.
func startColord(t *testing.T, bin, walDir string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-wal-dir", walDir,
		"-workers", "2",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start colord: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(data))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("colord never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashRecoveryMatchesOracle is the durability fortress: a real colord
// process SIGKILLed mid-churn — no shutdown, no flush, possibly mid-commit —
// restarted on the same WAL directory, must recover to an exact prefix of
// the mutation history: its state equals a never-killed oracle at some k
// between the last acknowledged op and the last op sent, and continuing the
// remaining ops converges both to identical final states.
func TestCrashRecoveryMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a child process; skipped in -short")
	}
	bin := buildColord(t)
	walDir := t.TempDir()

	base := exp.GraphSpec{Family: "gnm", N: 48, M: 120, Seed: 11}
	stream := exp.MutationStream{Kind: "mix", Base: base, Ops: 600, Seed: 17}
	g, muts, err := stream.Generate()
	if err != nil {
		t.Fatal(err)
	}

	cmd, url := startColord(t, bin, walDir)
	client := &http.Client{Timeout: 2 * time.Second}
	mutate := func(url string, req service.MutateRequest) (*service.MutateResponse, error) {
		body, _ := json.Marshal(req)
		resp, err := client.Post(url+"/v1/mutate", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var mr service.MutateResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
		return &mr, nil
	}

	if _, err := mutate(url, service.MutateRequest{Session: "crash", Base: &base}); err != nil {
		cmd.Process.Kill()
		t.Fatalf("create session: %v", err)
	}

	// Churn op by op; an assassin SIGKILLs the process while commits are in
	// flight. Track what was acknowledged vs what was sent: the recovered
	// state may legitimately land anywhere in [acked, sent].
	killAt := time.AfterFunc(150*time.Millisecond, func() {
		cmd.Process.Signal(syscall.SIGKILL)
	})
	acked, sent := 0, 0
	ackedPrints := []string{}
	for _, op := range muts {
		sent++
		mr, err := mutate(url, service.MutateRequest{Session: "crash", Ops: []exp.Mutation{op}})
		if err != nil {
			break // the kill landed
		}
		acked++
		ackedPrints = append(ackedPrints, mr.Fingerprint)
	}
	killAt.Stop()
	cmd.Process.Signal(syscall.SIGKILL) // in case churn outran the timer
	cmd.Wait()
	if acked == len(muts) {
		t.Fatalf("churn finished all %d ops before the kill — no crash exercised", len(muts))
	}
	t.Logf("killed mid-churn: %d acked, %d sent, %d total", acked, sent, len(muts))

	// Restart on the same WAL directory; the session must come back without
	// the client resupplying anything but the name.
	cmd2, url2 := startColord(t, bin, walDir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGKILL)
		cmd2.Wait()
	}()
	// An empty-ops mutate returns the session totals (a pure Colors read is
	// cache-keyed and deliberately carries none); the coloring comes second.
	stat, err := mutate(url2, service.MutateRequest{Session: "crash"})
	if err != nil {
		t.Fatalf("recover session: %v", err)
	}
	rec, err := mutate(url2, service.MutateRequest{Session: "crash", Colors: true})
	if err != nil {
		t.Fatalf("read recovered colors: %v", err)
	}
	k := int(stat.Totals.Mutations)
	if k < acked || k > sent {
		t.Fatalf("recovered to %d mutations, want within [acked=%d, sent=%d]", k, acked, sent)
	}

	// The never-killed oracle at prefix k: fingerprint and coloring must be
	// byte-identical — the WAL lost nothing it acknowledged and invented
	// nothing it didn't.
	oracle, err := dynamic.New(g, dynamic.Config{Engine: dist.Compiled})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if _, _, err := oracle.Apply(muts[:k]); err != nil {
		t.Fatal(err)
	}
	if rec.Fingerprint != oracle.Fingerprint().String() {
		t.Fatalf("recovered fingerprint %s != oracle at prefix %d", rec.Fingerprint, k)
	}
	if !reflect.DeepEqual(rec.Colors, oracle.Colors()) {
		t.Fatal("recovered coloring diverges from the never-killed oracle")
	}
	if k == acked && k > 0 && ackedPrints[k-1] != rec.Fingerprint {
		// When recovery lands exactly on the last acked op, the fingerprint
		// the client was told at ack time is the fingerprint that survived.
		t.Fatalf("recovered fingerprint differs from the ack-time fingerprint of op %d", k)
	}

	// Zero divergence going forward: replay the remaining ops into the
	// recovered daemon and the oracle — they must converge identically.
	rest := muts[k:]
	final, err := mutate(url2, service.MutateRequest{Session: "crash", Ops: rest})
	if err != nil {
		t.Fatalf("continue after recovery: %v", err)
	}
	if _, _, err := oracle.Apply(rest); err != nil {
		t.Fatal(err)
	}
	if final.Fingerprint != oracle.Fingerprint().String() {
		t.Fatal("post-recovery continuation diverged from the oracle")
	}
	finalColors, err := mutate(url2, service.MutateRequest{Session: "crash", Colors: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(finalColors.Colors, oracle.Colors()) {
		t.Fatal("post-recovery coloring diverged from the oracle")
	}
	if final.Totals.Mutations != int64(len(muts)) {
		t.Fatalf("final mutation count %d, want %d", final.Totals.Mutations, len(muts))
	}
}
