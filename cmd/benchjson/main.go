// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark results (ns/op, B/op, allocs/op, and any
// custom b.ReportMetric units such as rounds or msgBytes) can be tracked as
// machine-readable artifacts across commits. scripts/bench.sh uses it to
// emit BENCH_runtime.json.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks and the
	// -cpu suffix, e.g. "BenchmarkEngines/steady/sharded".
	Name string `json:"name"`
	// Pkg is the package the benchmark belongs to (the preceding "pkg:"
	// header line), when present.
	Pkg string `json:"pkg,omitempty"`
	// Runs is the iteration count the harness settled on.
	Runs int64 `json:"runs"`
	// Metrics maps unit -> value per op, e.g. "ns/op", "allocs/op",
	// "rounds".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Results: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			res.Pkg = pkg
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line of the standard bench format:
//
//	BenchmarkName-8   	     100	  11514793 ns/op	 7207 B/op	 121 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = val
	}
	return res, true
}
