// Command loadgen is colord's closed-loop load generator: N concurrent
// clients replay a workload against a colord instance and report
// throughput, latency percentiles, and cache behavior.
//
// Three modes:
//
//   - -mode color (default): a mixed coloring workload (generator families
//     × sizes × algorithms × seeds) against /v1/color. An untimed warmup
//     pass primes the caches first (disable with -warmup=false).
//   - -mode churn: each client owns a dynamic graph session and streams
//     deterministic mutation batches (exp.MutationStream; the generator
//     kind rotates mix/window/hotspot across clients) against /v1/mutate,
//     measuring mutation throughput and repair latency.
//   - -mode subscribe: one mutating writer against a single session, -subs
//     concurrent SSE subscribers on /v1/subscribe, measuring writer
//     throughput alongside delta fan-out latency (commit timestamp to
//     subscriber receipt) p50/p99. -rate throttles the writer.
//
// With no -addr it starts an in-process colord on a loopback port, so one
// command measures the full HTTP round trip (-duration and -d are the same
// flag; use either spelling):
//
//	loadgen -duration 5s -clients 8 -mix small
//	loadgen -d 5s -mode churn -clients 8 -mix small -batch 16
//	loadgen -addr http://localhost:7080 -mix medium -seeds 32
//
// Color mode drives the server through a raw persistent-connection HTTP/1.1
// client by default (-driver raw): net/http's per-request overhead costs
// more than colord's entire hit path, so the standard client (-driver std)
// measures itself, not the server. -cpuprofile captures a client+server
// profile of the measurement window when the server runs in-process.
//
// With -bench the report is emitted in `go test -bench` format — including
// process-wide B/op and allocs/op from runtime.MemStats deltas (client and
// server combined when in-process) — so scripts/bench_service.sh can pipe it
// through cmd/benchjson into the committed BENCH_service.json:
//
//	BenchmarkColord/mix=small/clients=8  <reqs>  <avg> ns/op  <B> B/op  <allocs> allocs/op  <p50> p50-ns ...
//	BenchmarkChurn/mix=small/clients=8/batch=16  <reqs>  ... <mut/s> ...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// mixes are the named workloads: each is a list of request templates the
// clients cycle through, with -seeds seed variants per template. Families
// and algorithms deliberately span cheap (greedy on a tree) to expensive
// (the paper's recursion on a line graph), matching the mixed traffic a
// shared service would see.
func mixes(name string) ([]service.Request, error) {
	tmpl := func(kind, alg string, spec exp.GraphSpec) service.Request {
		return service.Request{Kind: kind, Alg: alg, Graph: spec}
	}
	switch name {
	case "small":
		return []service.Request{
			tmpl("edge", "be", exp.GraphSpec{Family: "gnm", N: 64, M: 192, Seed: 1}),
			tmpl("edge", "pr", exp.GraphSpec{Family: "regular", N: 48, Deg: 4, Seed: 2}),
			tmpl("edge", "greedy", exp.GraphSpec{Family: "tree", N: 64, Seed: 3}),
			tmpl("vertex", "be", exp.GraphSpec{Family: "powercycle", N: 40, Deg: 3}),
			tmpl("vertex", "greedy", exp.GraphSpec{Family: "cycle", N: 64}),
		}, nil
	case "medium":
		return []service.Request{
			tmpl("edge", "be", exp.GraphSpec{Family: "gnm", N: 256, M: 1024, Seed: 1}),
			tmpl("edge", "be", exp.GraphSpec{Family: "linegraph", N: 32, M: 120, Seed: 2}),
			tmpl("edge", "pr", exp.GraphSpec{Family: "regular", N: 128, Deg: 8, Seed: 3}),
			tmpl("edge", "greedy", exp.GraphSpec{Family: "gnm", N: 128, M: 384, Seed: 4}),
			tmpl("vertex", "be", exp.GraphSpec{Family: "powercycle", N: 120, Deg: 4}),
			tmpl("vertex", "be", exp.GraphSpec{Family: "linegraph", N: 24, M: 70, Seed: 5}),
			tmpl("vertex", "greedy", exp.GraphSpec{Family: "geometric", N: 160, Seed: 6}),
		}, nil
	case "fewcolors":
		// The quality-knob workload: the small mix's families asked for the
		// fewcolors tier (palette near Δ, more rounds per miss), plus one
		// fast-tier template for contrast. The colors-used report metric is
		// the mean measured palette over these templates.
		q := func(spec exp.GraphSpec) service.Request {
			return service.Request{Kind: "edge", Quality: "fewcolors", Graph: spec}
		}
		return []service.Request{
			q(exp.GraphSpec{Family: "gnm", N: 64, M: 192, Seed: 1}),
			q(exp.GraphSpec{Family: "regular", N: 48, Deg: 4, Seed: 2}),
			q(exp.GraphSpec{Family: "geometric", N: 96, Seed: 3}),
			tmpl("edge", "pr", exp.GraphSpec{Family: "gnm", N: 64, M: 192, Seed: 1}),
		}, nil
	default:
		return nil, fmt.Errorf("unknown mix %q (want small, medium, or fewcolors)", name)
	}
}

type result struct {
	latencies []time.Duration
	requests  int64
	errors    int64
	hits      int64
	coalesced int64
	misses    int64
	mutations int64
}

// startServer resolves the target base URL, starting an in-process colord
// on a loopback port when addr is empty. sessions sizes the in-process
// server's dynamic-session table (0 = server default); churn mode needs it
// above the client count or concurrent sessions would evict each other
// mid-stream. maxSubs raises the subscriber caps (0 = server defaults);
// subscribe mode needs it above the fleet size or late subscribers bounce
// off admission control. cleanup is always non-nil.
//
// nodes > 1 starts that many colord nodes behind an in-process colorgate —
// the returned URL is the gateway's, so the measured path includes routing,
// exactly like a deployed cluster. Each node gets a RemoteFill against its
// peers; B/op and allocs/op then cover the whole fleet.
func startServer(addr string, workers, sessions, maxSubs, nodes int) (string, func(), error) {
	if addr != "" {
		return addr, func() {}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Match cmd/colord's default engine so in-process measurements track the
	// daemon's production configuration.
	cfg := service.Config{Workers: workers, Engine: dist.Compiled, Sessions: sessions}
	if maxSubs > 0 {
		cfg.MaxSubscribers = maxSubs
		cfg.SessionSubscribers = maxSubs
	}
	if nodes <= 1 {
		svc := service.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			return "", func() {}, err
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln)
		base := "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: in-process colord on %s (workers=%d)\n", base, workers)
		return base, func() {
			srv.Close()
			svc.Close()
		}, nil
	}

	var (
		svcs    []*service.Service
		srvs    []*http.Server
		peers   []string
		fillers = make([]atomic.Pointer[cluster.Filler], nodes)
		cleanup = func() {}
	)
	fail := func(err error) (string, func(), error) {
		for i := range srvs {
			srvs[i].Close()
			svcs[i].Close()
		}
		return "", func() {}, err
	}
	for i := 0; i < nodes; i++ {
		c := cfg
		slot := &fillers[i]
		c.RemoteFill = func(graphName, key string) []byte {
			if f := slot.Load(); f != nil {
				return f.Fill(graphName, key)
			}
			return nil
		}
		svc := service.New(c)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			return fail(err)
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln)
		svcs = append(svcs, svc)
		srvs = append(srvs, srv)
		peers = append(peers, "http://"+ln.Addr().String())
	}
	for i := range fillers {
		fillers[i].Store(cluster.NewFiller(peers, peers[i], nil, 0))
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{Peers: peers})
	if err != nil {
		return fail(err)
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		return fail(err)
	}
	gsrv := &http.Server{Handler: gw.Handler()}
	go gsrv.Serve(gln)
	base := "http://" + gln.Addr().String()
	fmt.Fprintf(os.Stderr, "loadgen: in-process %d-node cluster behind colorgate %s (workers=%d/node)\n", nodes, base, workers)
	cleanup = func() {
		gsrv.Close()
		gw.Close()
		for i := range srvs {
			srvs[i].Close()
			svcs[i].Close()
		}
	}
	return base, cleanup, nil
}

// nodesSuffix tags cluster benchmark names so single-node and scaled lines
// never collide in BENCH_service.json.
func nodesSuffix(nodes int) string {
	if nodes <= 1 {
		return ""
	}
	return fmt.Sprintf("/nodes=%d", nodes)
}

// memCounters is a snapshot of the process allocation counters; deltas over
// the measurement window yield B/op and allocs/op. The numbers cover the
// whole process — clients plus, when the server runs in-process, the entire
// serving stack, which is the figure a zero-allocation serving path is
// accountable to.
type memCounters struct{ mallocs, bytes uint64 }

func readMem() memCounters {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memCounters{mallocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

// startCPUProfile begins a CPU profile to path ("" = no-op) and returns the
// stop function.
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "colord base URL (empty = start an in-process colord)")
		duration = fs.Duration("duration", 5*time.Second, "how long to drive load")
		dAlias   = fs.Duration("d", 5*time.Second, "alias for -duration")
		clients  = fs.Int("clients", 8, "concurrent closed-loop clients")
		mode     = fs.String("mode", "color", "workload mode: color|churn|subscribe")
		mixName  = fs.String("mix", "small", "workload mix: small|medium|fewcolors (fewcolors: color mode only)")
		seeds    = fs.Int("seeds", 8, "distinct algorithm seeds per template (controls the miss rate; color mode)")
		batch    = fs.Int("batch", 16, "mutations per request (churn and subscribe modes)")
		subs     = fs.Int("subs", 200, "concurrent SSE subscribers (subscribe mode)")
		rate     = fs.Int("rate", 0, "writer mutations/second, 0 = unthrottled (subscribe mode)")
		warmup   = fs.Bool("warmup", true, "untimed cache-priming pass over the workload before the measured window (color mode)")
		engine   = fs.String("engine", "", "request-level engine override (empty = server default; color mode)")
		workers  = fs.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
		driver   = fs.String("driver", "raw", "HTTP client driver: raw (persistent-connection wire client) or std (net/http); color mode")
		profile  = fs.String("cpuprofile", "", "write a CPU profile of the measurement window to this file")
		bench    = fs.Bool("bench", false, "emit the report in `go test -bench` format (includes B/op and allocs/op)")
		nodes    = fs.Int("cluster", 0, "start an in-process N-node colord cluster behind a colorgate and drive it through the gateway (0 = single node; incompatible with -addr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes > 0 && *addr != "" {
		return fmt.Errorf("-cluster starts its own in-process fleet; it cannot be combined with -addr")
	}
	// -d and -duration are the same knob with two spellings; setting both to
	// different values is a contradiction, not a precedence puzzle.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["d"] && set["duration"] && *dAlias != *duration {
		return fmt.Errorf("-d %v and -duration %v disagree; set one (they are aliases)", *dAlias, *duration)
	}
	if set["d"] {
		*duration = *dAlias
	}
	if *clients < 1 || *seeds < 1 || *duration <= 0 || *batch < 1 {
		return fmt.Errorf("need -clients >= 1, -seeds >= 1, -batch >= 1, -duration > 0 (got %d, %d, %d, %v)", *clients, *seeds, *batch, *duration)
	}
	if *driver != "raw" && *driver != "std" {
		return fmt.Errorf("unknown driver %q (want raw or std)", *driver)
	}
	if *mode == "churn" {
		return runChurn(*addr, *duration, *clients, *mixName, *batch, *workers, *nodes, *profile, *bench)
	}
	if *mode == "subscribe" {
		if *subs < 1 {
			return fmt.Errorf("need -subs >= 1 (got %d)", *subs)
		}
		return runSubscribe(*addr, *duration, *subs, *rate, *mixName, *batch, *workers, *nodes, *profile, *bench)
	}
	if *mode != "color" {
		return fmt.Errorf("unknown mode %q (want color, churn, or subscribe)", *mode)
	}
	templates, err := mixes(*mixName)
	if err != nil {
		return err
	}
	if *engine != "" {
		if _, err := dist.ParseEngine(*engine); err != nil {
			return err
		}
		for i := range templates {
			templates[i].Engine = *engine
		}
	}
	// Expand seed variants: the workload has len(templates)*seeds distinct
	// cache keys; everything beyond the first pass over it is cache traffic.
	workload := make([][]byte, 0, len(templates)**seeds)
	for s := 0; s < *seeds; s++ {
		for _, t := range templates {
			t.Seed = int64(s)
			b, err := json.Marshal(t)
			if err != nil {
				return err
			}
			workload = append(workload, b)
		}
	}

	base, cleanup, err := startServer(*addr, *workers, 0, 0, *nodes)
	if err != nil {
		return err
	}
	defer cleanup()
	url := base + "/v1/color"
	hostPort := strings.TrimPrefix(base, "http://")

	// Raw driver: the full wire form of every request is prebuilt, so the
	// send path is one Write per request.
	var wires [][]byte
	if *driver == "raw" {
		wires = make([][]byte, len(workload))
		for i, body := range workload {
			wires[i] = formatRawRequest(hostPort, "/v1/color", body)
		}
	}
	transport := &http.Transport{MaxIdleConnsPerHost: *clients}
	client := &http.Client{Transport: transport}

	if *warmup {
		// One untimed pass over every distinct key before the clock starts.
		// Without it, short windows on small machines measure cache *filling*
		// rather than cache *serving*: the first pass's misses are the
		// expensive colorings, and on a 2s run they can dominate the window
		// and crater the reported throughput. The warmup eats those misses
		// off the clock (priming the result cache and, since the handler is
		// keyed on raw bytes, the wire fast path too), so the measured window
		// starts at the steady state the longer runs converge to. Off-clock
		// by construction: runs before the profile and the mem0 snapshot.
		var wwg sync.WaitGroup
		warmErrs := make(chan error, *clients)
		for c := 0; c < *clients; c++ {
			wwg.Add(1)
			go func(c int) {
				defer wwg.Done()
				for i := c; i < len(workload); i += *clients {
					resp, err := client.Post(url, "application/json", bytes.NewReader(workload[i]))
					if err != nil {
						warmErrs <- err
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						warmErrs <- fmt.Errorf("warmup: status %d", resp.StatusCode)
						return
					}
				}
			}(c)
		}
		wwg.Wait()
		close(warmErrs)
		for err := range warmErrs {
			return fmt.Errorf("warmup pass failed: %w", err)
		}
	}

	stopProfile, err := startCPUProfile(*profile)
	if err != nil {
		return err
	}
	runtime.GC()
	mem0 := readMem()
	deadline := time.Now().Add(*duration)
	results := make([]result, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			var rc *rawClient
			if *driver == "raw" {
				rc = newRawClient(hostPort)
				defer rc.close()
			}
			// Stagger starting offsets so clients collide on different
			// keys early (driving coalescing) and spread later.
			i := (c * 31) % len(workload)
			for time.Now().Before(deadline) {
				idx := i % len(workload)
				i++
				if rc != nil {
					start := time.Now()
					r, err := rc.do(wires[idx])
					if err != nil {
						res.errors++
						continue
					}
					res.requests++
					res.latencies = append(res.latencies, time.Since(start))
					if r.status != http.StatusOK {
						res.errors++
						continue
					}
					switch r.outcome {
					case 'h':
						res.hits++
					case 'c':
						res.coalesced++
					default:
						res.misses++
					}
					continue
				}
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(workload[idx]))
				if err != nil {
					res.errors++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(start)
				res.requests++
				res.latencies = append(res.latencies, lat)
				if resp.StatusCode != http.StatusOK {
					res.errors++
					continue
				}
				switch resp.Header.Get("X-Colord-Cache") {
				case "hit":
					res.hits++
				case "coalesced":
					res.coalesced++
				default:
					res.misses++
				}
			}
		}(c)
	}
	wg.Wait()
	mem1 := readMem()
	stopProfile()

	var total result
	for i := range results {
		total.requests += results[i].requests
		total.errors += results[i].errors
		total.hits += results[i].hits
		total.coalesced += results[i].coalesced
		total.misses += results[i].misses
		total.latencies = append(total.latencies, results[i].latencies...)
	}
	if total.errors > 0 {
		return fmt.Errorf("%d request errors (of %d)", total.errors, total.requests)
	}
	if total.requests == 0 {
		return fmt.Errorf("no requests completed within %v", *duration)
	}
	// Palette probe: one ?detail=1 request per workload template, off the
	// clock (the measured window is over). Results are deterministic and the
	// templates were served all window, so these are cache hits reporting the
	// measured palette; the mean over templates is the workload's
	// colors-used figure — the quality metric the fewcolors mix exists for.
	var colorsUsedSum int64
	for _, t := range templates {
		b, err := json.Marshal(t)
		if err != nil {
			return err
		}
		resp, err := client.Post(url+"?detail=1", "application/json", bytes.NewReader(b))
		if err != nil {
			return fmt.Errorf("palette probe: %w", err)
		}
		var d service.DetailResponse
		err = json.NewDecoder(resp.Body).Decode(&d)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("palette probe: %w", err)
		}
		colorsUsedSum += int64(d.ColorsUsed)
	}
	meanColors := float64(colorsUsedSum) / float64(len(templates))
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(total.latencies)-1))
		return total.latencies[idx]
	}
	var sum time.Duration
	for _, l := range total.latencies {
		sum += l
	}
	avg := sum / time.Duration(len(total.latencies))
	rps := float64(total.requests) / duration.Seconds()
	hitRate := float64(total.hits) / float64(total.requests)
	bytesPerOp := (mem1.bytes - mem0.bytes) / uint64(total.requests)
	allocsPerOp := (mem1.mallocs - mem0.mallocs) / uint64(total.requests)

	if *bench {
		// go test -bench format: benchjson turns the (value, unit) pairs
		// into BENCH_service.json metrics.
		fmt.Printf("goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
		fmt.Printf("BenchmarkColord/mix=%s/clients=%d/seeds=%d%s \t%8d\t%12d ns/op\t%10d B/op\t%8d allocs/op\t%12d p50-ns\t%12d p99-ns\t%12d max-ns\t%10.1f req/s\t%8.4f hit-rate\t%8.4f coalesce-rate\t%10.2f colors-used\n",
			*mixName, *clients, *seeds, nodesSuffix(*nodes), total.requests, avg.Nanoseconds(),
			bytesPerOp, allocsPerOp,
			pct(0.50).Nanoseconds(), pct(0.99).Nanoseconds(),
			total.latencies[len(total.latencies)-1].Nanoseconds(),
			rps, hitRate, float64(total.coalesced)/float64(total.requests), meanColors)
		return nil
	}
	fmt.Printf("mix=%s clients=%d seeds=%d duration=%v driver=%s\n", *mixName, *clients, *seeds, *duration, *driver)
	fmt.Printf("requests: %d (%.1f req/s), errors: %d\n", total.requests, rps, total.errors)
	fmt.Printf("latency: avg=%v p50=%v p99=%v max=%v\n", avg, pct(0.50), pct(0.99), total.latencies[len(total.latencies)-1])
	fmt.Printf("alloc: %d B/op, %d allocs/op (process-wide: clients plus the in-process server)\n", bytesPerOp, allocsPerOp)
	fmt.Printf("cache: %d hits (%.1f%%), %d coalesced, %d misses\n",
		total.hits, 100*hitRate, total.coalesced, total.misses)
	fmt.Printf("colors: mean colorsUsed=%.2f over %d templates (seed 0, ?detail=1)\n", meanColors, len(templates))
	return nil
}

// churnBases names the session base graphs of the churn mixes.
func churnBases(name string) (exp.GraphSpec, error) {
	switch name {
	case "small":
		return exp.GraphSpec{Family: "gnm", N: 128, M: 384, Seed: 1}, nil
	case "medium":
		return exp.GraphSpec{Family: "gnm", N: 512, M: 1536, Seed: 1}, nil
	default:
		return exp.GraphSpec{}, fmt.Errorf("unknown mix %q (want small or medium)", name)
	}
}

// churnKinds rotates the stream generator across clients, so one run mixes
// steady mixes, sliding windows, and hotspot hammering.
var churnKinds = []string{"mix", "window", "hotspot"}

// runChurn drives the dynamic-session API: every client owns one session
// and streams deterministic mutation batches at it, rolling over to a fresh
// session when its (long) pre-generated stream runs out. Reported latency is
// per mutate request (one batch = one repair per op, server-side).
func runChurn(addr string, duration time.Duration, clients int, mixName string, batch, workers, nodes int, profile string, bench bool) error {
	base, err := churnBases(mixName)
	if err != nil {
		return err
	}
	// Pre-generate each client's round-0 mutation stream before the clock
	// starts: ops are only valid when replayed from the session's base, so
	// the stream must outlast the measurement window, and generation time
	// must not count against reported throughput. Rollover to a fresh
	// session (and a freshly generated stream — rare at this length)
	// handles the tail.
	const streamOps = 1 << 16
	genStream := func(c, round int) (exp.MutationStream, []exp.Mutation, error) {
		stream := exp.MutationStream{
			Kind: churnKinds[c%len(churnKinds)],
			Base: base,
			Ops:  streamOps,
			Seed: int64(1 + c + round*clients),
		}
		_, muts, err := stream.Generate()
		return stream, muts, err
	}
	initial := make([][]exp.Mutation, clients)
	for c := range initial {
		var err error
		if _, initial[c], err = genStream(c, 0); err != nil {
			return err
		}
	}
	// The in-process session table must hold every client's live session
	// plus rollover slack, or concurrent sessions evict each other
	// mid-stream. (Against an external -addr, the server's own -sessions
	// flag must exceed -clients the same way.)
	serverURL, cleanup, err := startServer(addr, workers, 4*clients, 0, nodes)
	if err != nil {
		return err
	}
	defer cleanup()
	url := serverURL + "/v1/mutate"

	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}
	stopProfile, err := startCPUProfile(profile)
	if err != nil {
		return err
	}
	runtime.GC()
	mem0 := readMem()
	deadline := time.Now().Add(duration)
	results := make([]result, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			for round := 0; time.Now().Before(deadline); round++ {
				muts := initial[c]
				if round > 0 {
					var err error
					if _, muts, err = genStream(c, round); err != nil {
						res.errors++
						return
					}
				}
				session := fmt.Sprintf("churn-%d-%d", c, round)
				exhausted := true
				for off := 0; off < len(muts); off += batch {
					if !time.Now().Before(deadline) {
						exhausted = false
						break
					}
					end := off + batch
					if end > len(muts) {
						end = len(muts)
					}
					body, err := json.Marshal(service.MutateRequest{
						Session: session,
						Base:    &base,
						Ops:     muts[off:end],
					})
					if err != nil {
						res.errors++
						return
					}
					start := time.Now()
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						res.errors++
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					res.requests++
					res.latencies = append(res.latencies, time.Since(start))
					if resp.StatusCode != http.StatusOK {
						res.errors++
						continue
					}
					res.mutations += int64(end - off)
				}
				if !exhausted {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	mem1 := readMem()
	stopProfile()

	var total result
	for i := range results {
		total.requests += results[i].requests
		total.errors += results[i].errors
		total.mutations += results[i].mutations
		total.latencies = append(total.latencies, results[i].latencies...)
	}
	if total.errors > 0 {
		return fmt.Errorf("%d request errors (of %d)", total.errors, total.requests)
	}
	if total.requests == 0 {
		return fmt.Errorf("no requests completed within %v", duration)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	pct := func(p float64) time.Duration {
		return total.latencies[int(p*float64(len(total.latencies)-1))]
	}
	var sum time.Duration
	for _, l := range total.latencies {
		sum += l
	}
	avg := sum / time.Duration(len(total.latencies))
	rps := float64(total.requests) / duration.Seconds()
	mps := float64(total.mutations) / duration.Seconds()
	bytesPerOp := (mem1.bytes - mem0.bytes) / uint64(total.requests)
	allocsPerOp := (mem1.mallocs - mem0.mallocs) / uint64(total.requests)

	if bench {
		fmt.Printf("goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
		fmt.Printf("BenchmarkChurn/mix=%s/clients=%d/batch=%d%s \t%8d\t%12d ns/op\t%10d B/op\t%8d allocs/op\t%12d p50-ns\t%12d p99-ns\t%12d max-ns\t%10.1f req/s\t%10.1f mut/s\n",
			mixName, clients, batch, nodesSuffix(nodes), total.requests, avg.Nanoseconds(),
			bytesPerOp, allocsPerOp,
			pct(0.50).Nanoseconds(), pct(0.99).Nanoseconds(),
			total.latencies[len(total.latencies)-1].Nanoseconds(), rps, mps)
		return nil
	}
	fmt.Printf("mode=churn mix=%s clients=%d batch=%d duration=%v\n", mixName, clients, batch, duration)
	fmt.Printf("requests: %d (%.1f req/s), mutations: %d (%.1f mut/s), errors: %d\n",
		total.requests, rps, total.mutations, mps, total.errors)
	fmt.Printf("latency: avg=%v p50=%v p99=%v max=%v\n", avg, pct(0.50), pct(0.99), total.latencies[len(total.latencies)-1])
	fmt.Printf("alloc: %d B/op, %d allocs/op (process-wide: clients plus the in-process server)\n", bytesPerOp, allocsPerOp)
	return nil
}
