package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"
)

// rawClient is a wrk-style HTTP/1.1 driver: one persistent TCP connection,
// preformatted request bytes, and a minimal response reader. net/http's
// client machinery (header maps, response structs, goroutine handoff per
// request) costs more than colord's entire hit path; on a loopback box it
// caps measured throughput well below what the server sustains. This driver
// exists so loadgen measures the server, not the client.
//
// Deliberately minimal: HTTP/1.1 keep-alive, Content-Length and chunked
// bodies, and the one response header loadgen reads (X-Colord-Cache). On any
// connection error the request is retried once on a fresh dial — safe
// because colord requests are idempotent by construction (deterministic
// outputs, no request-path side effects beyond cache warming).
type rawClient struct {
	addr string // host:port to dial
	conn net.Conn
	br   *bufio.Reader
	buf  []byte // body discard scratch
}

// rawResponse is the slice of a response loadgen cares about.
type rawResponse struct {
	status  int
	outcome byte // first byte of X-Colord-Cache: 'h'it, 'c'oalesced, 'm'iss, 0 = absent
}

func newRawClient(addr string) *rawClient {
	return &rawClient{addr: addr, buf: make([]byte, 16<<10)}
}

// formatRawRequest renders the full wire form of a POST once, so the send
// path is a single Write of prebuilt bytes.
func formatRawRequest(host, path string, body []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", path, host, len(body))
	b.Write(body)
	return b.Bytes()
}

func (c *rawClient) dial() error {
	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		return err
	}
	c.conn = conn
	if c.br == nil {
		c.br = bufio.NewReaderSize(conn, 16<<10)
	} else {
		c.br.Reset(conn)
	}
	return nil
}

func (c *rawClient) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// do sends one preformatted request and reads its response. A failure on a
// reused connection (e.g. the server closed an idle keep-alive) is retried
// once on a fresh dial.
func (c *rawClient) do(wire []byte) (rawResponse, error) {
	fresh := c.conn == nil
	if fresh {
		if err := c.dial(); err != nil {
			return rawResponse{}, err
		}
	}
	r, err := c.try(wire)
	if err != nil && !fresh {
		c.close()
		if err = c.dial(); err != nil {
			return rawResponse{}, err
		}
		r, err = c.try(wire)
	}
	if err != nil {
		c.close()
	}
	return r, err
}

func (c *rawClient) try(wire []byte) (rawResponse, error) {
	if _, err := c.conn.Write(wire); err != nil {
		return rawResponse{}, err
	}
	return c.readResponse()
}

// readLine returns the next CRLF-terminated line without its terminator.
func (c *rawClient) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

func (c *rawClient) readResponse() (rawResponse, error) {
	line, err := c.readLine()
	if err != nil {
		return rawResponse{}, err
	}
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return rawResponse{}, fmt.Errorf("malformed status line %q", line)
	}
	status, err := strconv.Atoi(string(line[9:12]))
	if err != nil {
		return rawResponse{}, fmt.Errorf("malformed status line %q", line)
	}
	resp := rawResponse{status: status}
	length, chunked, closeAfter := -1, false, false
	for {
		line, err = c.readLine()
		if err != nil {
			return rawResponse{}, err
		}
		if len(line) == 0 {
			break
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		name, val := line[:colon], bytes.TrimSpace(line[colon+1:])
		switch {
		case asciiEqualFold(name, "content-length"):
			if length, err = strconv.Atoi(string(val)); err != nil {
				return rawResponse{}, fmt.Errorf("bad Content-Length %q", val)
			}
		case asciiEqualFold(name, "transfer-encoding"):
			chunked = asciiEqualFold(val, "chunked")
		case asciiEqualFold(name, "connection"):
			closeAfter = asciiEqualFold(val, "close")
		case asciiEqualFold(name, "x-colord-cache"):
			if len(val) > 0 {
				resp.outcome = val[0]
			}
		}
	}
	switch {
	case chunked:
		err = c.discardChunked()
	case length >= 0:
		err = c.discardN(length)
	case closeAfter:
		_, err = io.Copy(io.Discard, c.br) // body runs to EOF
	default:
		return rawResponse{}, fmt.Errorf("response with no framing (status %d)", status)
	}
	if err != nil {
		return rawResponse{}, err
	}
	if closeAfter {
		c.close()
	}
	return resp, nil
}

func (c *rawClient) discardN(n int) error {
	for n > 0 {
		chunk := n
		if chunk > len(c.buf) {
			chunk = len(c.buf)
		}
		m, err := io.ReadFull(c.br, c.buf[:chunk])
		n -= m
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *rawClient) discardChunked() error {
	for {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		if i := bytes.IndexByte(line, ';'); i >= 0 {
			line = line[:i] // chunk extensions
		}
		size, err := strconv.ParseInt(string(bytes.TrimSpace(line)), 16, 64)
		if err != nil {
			return fmt.Errorf("bad chunk size %q", line)
		}
		if size == 0 {
			// Trailers until the blank line.
			for {
				line, err := c.readLine()
				if err != nil {
					return err
				}
				if len(line) == 0 {
					return nil
				}
			}
		}
		if err := c.discardN(int(size)); err != nil {
			return err
		}
		if _, err := c.readLine(); err != nil { // chunk-terminating CRLF
			return err
		}
	}
}

// asciiEqualFold reports whether a equals the (lowercase) ASCII string b,
// ignoring case — enough for HTTP header names and token values.
func asciiEqualFold[T []byte | string](a T, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca := a[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if ca != b[i] {
			return false
		}
	}
	return true
}
