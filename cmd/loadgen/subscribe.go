package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/service"
)

// The subscribe workload: one writer streams mutations at a single session
// while a fleet of SSE subscribers drinks the delta feed. What it measures:
//
//   - writer throughput (mut/s) with the fan-out attached — comparable
//     against a churn run to price the broadcast;
//   - delta latency: every delta frame carries the commit's wall-clock
//     timestamp, and client and server share one clock (in-process server)
//     or one host, so receipt-minus-ts is the commit-to-subscriber latency.
//     Reported as p50/p99/max over all (delta, subscriber) deliveries;
//   - the ordering contract: every subscriber checks that delta seq numbers
//     are consecutive from its hello; any gap that is not an explicit
//     overflow drop fails the run;
//   - overflow drops, which are the honest outcome when the writer outruns
//     total fan-out capacity (deliberate under an unthrottled writer on a
//     small machine; -rate bounds the writer to hold the fleet).

// subResult is one subscriber's tally.
type subResult struct {
	deliveries int64
	latencies  []time.Duration
	overflows  int64
	gaps       int64 // in-order violations (not counting an explicit overflow)
	errors     int64
	// connectErr: the subscription never reached its hello. Only written
	// before the ready signal, so the fleet-launch check may read it without
	// racing the still-running consumer goroutines.
	connectErr bool
}

// subscriber runs one SSE client: read hello, signal ready, then consume
// delta frames until the stream ends or ctx cancels. The parser leans on the
// frame layout sseFrame writes (id/event/data lines, blank terminator) and
// extracts only what it needs — the id line's seq and the data line's ts —
// so a fleet of thousands stays cheap on the client side.
func subscriber(ctx context.Context, client *http.Client, url string, res *subResult, ready *sync.WaitGroup) {
	readySignaled := false
	signal := func() {
		if !readySignaled {
			readySignaled = true
			ready.Done()
		}
	}
	defer signal()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		res.errors++
		res.connectErr = true
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		res.errors++
		res.connectErr = true
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		res.errors++
		res.connectErr = true
		return
	}
	rd := bufio.NewReaderSize(resp.Body, 4096)
	var (
		event   []byte
		frameID int64 = -1
		lastSeq int64 = -1 // hello's seq once seen
		tsLine  []byte
	)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			// Stream end: normal after a close/overflow event or ctx cancel.
			if err != io.EOF && ctx.Err() == nil && res.deliveries == 0 && res.overflows == 0 {
				res.errors++
			}
			return
		}
		line = line[:len(line)-1]
		switch {
		case len(line) == 0:
			// Frame boundary: dispatch what accumulated.
			switch string(event) {
			case "hello":
				// data carries {"seq":N,...}; the id line is absent on hello.
				var hello service.HelloEvent
				if err := json.Unmarshal(tsLine, &hello); err != nil {
					res.errors++
					res.connectErr = true
					return
				}
				lastSeq = hello.Seq
				signal()
			case "delta":
				now := time.Now()
				res.deliveries++
				if lastSeq >= 0 && frameID != lastSeq+1 {
					res.gaps++
				}
				lastSeq = frameID
				if i := bytes.Index(tsLine, []byte(`"ts":`)); i >= 0 {
					rest := tsLine[i+len(`"ts":`):]
					if j := bytes.IndexByte(rest, '}'); j >= 0 {
						rest = rest[:j]
					}
					if ts, err := strconv.ParseInt(string(rest), 10, 64); err == nil {
						res.latencies = append(res.latencies, now.Sub(time.Unix(0, ts)))
					}
				}
			case "overflow":
				res.overflows++
			case "close":
				// Session ended; uncounted — the run tears sessions down last.
			}
			event, frameID, tsLine = nil, -1, nil
		case bytes.HasPrefix(line, []byte("id: ")):
			id, err := strconv.ParseInt(string(line[len("id: "):]), 10, 64)
			if err == nil {
				frameID = id
			}
		case bytes.HasPrefix(line, []byte("event: ")):
			event = append(event[:0], line[len("event: "):]...)
		case bytes.HasPrefix(line, []byte("data: ")):
			tsLine = line[len("data: "):]
		}
	}
}

// runSubscribe drives the subscribe workload and reports it. rate throttles
// the writer to that many mutations per second (0 = as fast as the server
// accepts); batch is ops per mutate request (each op is still one delta).
func runSubscribe(addr string, duration time.Duration, subs, rate int, mixName string, batch, workers, nodes int, profile string, bench bool) error {
	base, err := churnBases(mixName)
	if err != nil {
		return err
	}
	// One long pre-generated stream, like churn: generation off the clock.
	stream := exp.MutationStream{Kind: "mix", Base: base, Ops: 1 << 17, Seed: 1}
	_, muts, err := stream.Generate()
	if err != nil {
		return err
	}
	serverURL, cleanup, err := startServer(addr, workers, 0, subs+16, nodes)
	if err != nil {
		return err
	}
	defer cleanup()

	const session = "subfeed"
	mutateURL := serverURL + "/v1/mutate"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: subs + 4, MaxIdleConns: subs + 4}}
	post := func(req service.MutateRequest) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(mutateURL, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("mutate: status %d: %s", resp.StatusCode, b)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := post(service.MutateRequest{Session: session, Base: &base}); err != nil {
		return fmt.Errorf("creating session: %w", err)
	}

	// Raise the fleet and wait for every hello before the writer starts, so
	// all subscribers observe the same delta sequence from its beginning.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := make([]subResult, subs)
	var ready, done sync.WaitGroup
	subscribeURL := serverURL + "/v1/subscribe?session=" + session
	for i := 0; i < subs; i++ {
		ready.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			subscriber(ctx, client, subscribeURL, &results[i], &ready)
		}(i)
	}
	ready.Wait()
	for i := range results {
		if results[i].connectErr {
			return fmt.Errorf("subscriber fleet failed to connect (subscriber %d; is the server's subscriber cap >= %d?)", i, subs)
		}
	}

	stopProfile, err := startCPUProfile(profile)
	if err != nil {
		return err
	}
	runtime.GC()
	mem0 := readMem()

	// The writer: batches off the pre-generated stream until the deadline,
	// paced to rate when set.
	var (
		mutations int64
		requests  int64
	)
	start := time.Now()
	deadline := start.Add(duration)
	next := start
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(int64(batch) * int64(time.Second) / int64(rate))
	}
	for off := 0; time.Now().Before(deadline); off += batch {
		if off+batch > len(muts) {
			// Stream exhausted (only at extreme rates): stop rather than
			// replaying ops that are invalid against the current state.
			fmt.Fprintf(os.Stderr, "loadgen: mutation stream exhausted after %d ops\n", off)
			break
		}
		if rate > 0 {
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
			}
			next = next.Add(interval)
		}
		if err := post(service.MutateRequest{Session: session, Ops: muts[off : off+batch]}); err != nil {
			stopProfile()
			return err
		}
		requests++
		mutations += int64(batch)
	}
	elapsed := time.Since(start)

	// Let in-flight frames land, then pull the fleet down.
	time.Sleep(300 * time.Millisecond)
	cancel()
	done.Wait()
	mem1 := readMem()
	stopProfile()

	var total subResult
	for i := range results {
		total.deliveries += results[i].deliveries
		total.overflows += results[i].overflows
		total.gaps += results[i].gaps
		total.errors += results[i].errors
		total.latencies = append(total.latencies, results[i].latencies...)
	}
	if total.errors > 0 {
		return fmt.Errorf("%d subscriber errors", total.errors)
	}
	if total.gaps > 0 {
		return fmt.Errorf("%d out-of-order deltas (gaps without an overflow event)", total.gaps)
	}
	if mutations == 0 {
		return fmt.Errorf("no mutations committed within %v", duration)
	}
	if len(total.latencies) == 0 {
		return fmt.Errorf("no deltas delivered (of %d committed)", mutations)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	pct := func(p float64) time.Duration {
		return total.latencies[int(p*float64(len(total.latencies)-1))]
	}
	mps := float64(mutations) / elapsed.Seconds()
	dps := float64(total.deliveries) / elapsed.Seconds()
	bytesPerOp := (mem1.bytes - mem0.bytes) / uint64(total.deliveries)
	allocsPerOp := (mem1.mallocs - mem0.mallocs) / uint64(total.deliveries)

	if bench {
		fmt.Printf("goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
		fmt.Printf("BenchmarkSubscribe/mix=%s/subs=%d/rate=%d/batch=%d%s \t%8d\t%12d ns/op\t%10d B/op\t%8d allocs/op\t%12d delta-p50-ns\t%12d delta-p99-ns\t%12d delta-max-ns\t%10.1f mut/s\t%10.1f deliveries/s\t%8d overflows\n",
			mixName, subs, rate, batch, nodesSuffix(nodes), total.deliveries,
			pct(0.50).Nanoseconds(), bytesPerOp, allocsPerOp,
			pct(0.50).Nanoseconds(), pct(0.99).Nanoseconds(),
			total.latencies[len(total.latencies)-1].Nanoseconds(),
			mps, dps, total.overflows)
		return nil
	}
	fmt.Printf("mode=subscribe mix=%s subs=%d rate=%d batch=%d duration=%v\n", mixName, subs, rate, batch, duration)
	fmt.Printf("writer: %d mutations in %d requests (%.1f mut/s)\n", mutations, requests, mps)
	fmt.Printf("fan-out: %d deliveries (%.1f/s), %d overflow drops, %d gaps\n",
		total.deliveries, dps, total.overflows, total.gaps)
	fmt.Printf("delta latency: p50=%v p99=%v max=%v (commit to subscriber receipt)\n",
		pct(0.50), pct(0.99), total.latencies[len(total.latencies)-1])
	fmt.Printf("alloc: %d B/op per delivery (process-wide), %d allocs/op\n", bytesPerOp, allocsPerOp)
	return nil
}
