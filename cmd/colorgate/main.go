// Command colorgate fronts a colord cluster: a stateless gateway that routes
// every request to the node where the answer already lives, by rendezvous
// hash — coloring reads by graph spec, dynamic sessions by name.
//
// Because colord is deterministic, any node can answer any read; routing is
// purely a cache- and session-locality play, so the gateway needs no state,
// no consensus, and no warm-up. Reads retry down the key's rank order on
// peer failure; mutations retry only on dial errors (nothing was sent, so
// nothing can have applied twice); SSE subscriptions stream through with
// per-chunk flushes.
//
// Usage:
//
//	colorgate -addr :7090 -peers http://n0:7080,http://n1:7080,http://n2:7080
//
// GET /statz reports the cluster plane: per-peer health gauges and the
// forwarded/retried/error counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "colorgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("colorgate", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":7090", "listen address (use :0 for an ephemeral port with -addr-file)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening")
		peers    = fs.String("peers", "", "comma-separated colord base URLs (required)")
		interval = fs.Duration("health-interval", 500*time.Millisecond, "peer health probe cadence")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers == "" {
		return fmt.Errorf("-peers is required")
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Peers:          strings.Split(*peers, ","),
		HealthInterval: *interval,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("addr file: %w", err)
		}
	}
	srv := &http.Server{Handler: gw.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("colorgate: routing %s across %s", bound, *peers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		log.Printf("colorgate: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
