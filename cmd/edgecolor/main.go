// Command edgecolor runs one distributed edge-coloring algorithm on one
// generated graph and reports colors, rounds, and message statistics.
//
// Example:
//
//	edgecolor -graph gnm -n 256 -m 2048 -alg be -b 2 -p 6
//	edgecolor -graph regular -n 512 -deg 16 -alg pr
//	edgecolor -graph gnm -n 256 -m 1024 -alg rand -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algreg"
	"repro/internal/dist"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edgecolor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("edgecolor", flag.ContinueOnError)
	var (
		gtype  = fs.String("graph", "gnm", "graph family: gnm|regular|clique|cycle|tree|fig1")
		n      = fs.Int("n", 256, "number of vertices")
		m      = fs.Int("m", 1024, "number of edges (gnm)")
		deg    = fs.Int("deg", 8, "degree (regular) / k (fig1)")
		seed   = fs.Int64("seed", 1, "generator and algorithm seed")
		alg    = fs.String("alg", "be", "algorithm: "+algreg.HelpList("edge"))
		bFlag  = fs.Int("b", 2, "Algorithm 1 parameter b")
		pFlag  = fs.Int("p", 6, "Algorithm 1 parameter p")
		mode   = fs.String("mode", "wide", "message mode: wide|short")
		engine = fs.String("engine", "goroutines", "dist scheduler: goroutines|lockstep|sharded|compiled")
		quiet  = fs.Bool("q", false, "suppress the per-edge coloring dump")
		dot    = fs.String("dot", "", "write the colored graph in Graphviz DOT format to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := makeGraph(*gtype, *n, *m, *deg, *seed)
	if err != nil {
		return err
	}
	eng, err := dist.ParseEngine(*engine)
	if err != nil {
		return err
	}
	opts := []dist.Option{dist.WithSeed(*seed), dist.WithEngine(eng)}
	fmt.Printf("graph: %v\n", g)

	entry, ok := algreg.Lookup("edge", *alg)
	if !ok || entry.RunEdge == nil {
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	params := algreg.Params{B: *bFlag, P: *pFlag, Mode: *mode, Seed: *seed}
	ports, notes, err := entry.RunEdge(g, params, opts...)
	if err != nil {
		return err
	}
	for _, note := range notes {
		fmt.Println(note)
	}
	colors, err := graph.MergePortColors(g, ports.Outputs)
	if err != nil {
		return err
	}
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		return fmt.Errorf("result is not a legal edge coloring: %w", err)
	}
	fmt.Printf("legal edge coloring: %d colors (2Δ-1 = %d), stats: %v\n",
		graph.CountColors(colors), 2*g.MaxDegree()-1, ports.Stats)
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := graph.WriteDOT(f, g, nil, colors); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dot)
	}
	if !*quiet {
		limit := len(colors)
		if limit > 20 {
			limit = 20
		}
		for id := 0; id < limit; id++ {
			e := g.EdgeAt(id)
			fmt.Printf("  edge (%d,%d) -> color %d\n", e.U, e.V, colors[id])
		}
		if limit < len(colors) {
			fmt.Printf("  ... and %d more edges\n", len(colors)-limit)
		}
	}
	return nil
}

func makeGraph(gtype string, n, m, deg int, seed int64) (*graph.Graph, error) {
	switch gtype {
	case "gnm":
		return graph.GNM(n, m, seed), nil
	case "regular":
		return graph.RandomRegular(n, deg, seed), nil
	case "clique":
		return graph.Complete(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "tree":
		return graph.RandomTree(n, seed), nil
	case "fig1":
		return graph.CliquePlusPendants(deg), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", gtype)
	}
}
