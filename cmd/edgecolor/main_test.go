package main

import (
	"testing"

	"repro/internal/testutil"
)

// TestGolden pins the CLI's stdout for fixed small graphs, exercising the
// full flag surface in-process (run is main minus os.Exit): the algorithm
// selection, -engine plumbing, -mode, and the -q dump switch can never
// silently break.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"be_gnm", []string{"-graph", "gnm", "-n", "48", "-m", "144", "-seed", "1", "-alg", "be", "-q"}},
		{"be_short_mode", []string{"-graph", "gnm", "-n", "48", "-m", "144", "-seed", "1", "-alg", "be", "-mode", "short", "-q"}},
		{"pr_regular", []string{"-graph", "regular", "-n", "24", "-deg", "4", "-seed", "2", "-alg", "pr", "-q"}},
		{"greedy_tree_dump", []string{"-graph", "tree", "-n", "16", "-seed", "3", "-alg", "greedy"}},
		{"rand_cycle", []string{"-graph", "cycle", "-n", "20", "-seed", "4", "-alg", "rand", "-q"}},
		{"fig1", []string{"-graph", "fig1", "-deg", "6", "-alg", "be", "-q"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := testutil.CaptureStdout(t, func() error { return run(tc.args) })
			testutil.Golden(t, tc.name, out)
		})
	}
}

// TestEngineFlagPlumbing checks that every -engine value is accepted and
// yields the exact output of the default engine — the CLI-level face of the
// runtime's engine-equivalence contract.
func TestEngineFlagPlumbing(t *testing.T) {
	base := []string{"-graph", "gnm", "-n", "48", "-m", "144", "-seed", "1", "-alg", "be", "-q"}
	ref := testutil.CaptureStdout(t, func() error { return run(base) })
	for _, engine := range []string{"lockstep", "sharded"} {
		out := testutil.CaptureStdout(t, func() error {
			return run(append([]string{"-engine", engine}, base...))
		})
		if out != ref {
			t.Fatalf("-engine %s output differs from default:\n%s\nvs\n%s", engine, out, ref)
		}
	}
	if err := run(append([]string{"-engine", "nope"}, base...)); err == nil {
		t.Fatal("-engine nope must be rejected")
	}
}
