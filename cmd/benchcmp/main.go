// Command benchcmp gates service benchmark regressions: it compares a fresh
// cmd/benchjson document against the committed baseline (BENCH_service.json)
// and fails when a gated metric regresses by more than the given factor.
//
// Gated metrics, per benchmark name present in both documents:
//
//   - p50-ns (median latency): regressed when current > factor × baseline;
//   - req/s (throughput): regressed when current < baseline / factor.
//
// Other shared metrics are printed for context but do not gate — tail
// latency and cache rates are too noisy on shared CI runners to block on.
// A benchmark present in the baseline but missing from the current run is a
// regression (the workload silently stopped being measured).
//
// Usage:
//
//	go run ./cmd/benchcmp -committed BENCH_service.json -current new.json
//	go run ./cmd/benchcmp -factor 3 -warn ...   # report, never fail (CI)
//
// scripts/bench_check.sh wires this behind a quick loadgen pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type result struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Results []result `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	var (
		committed = fs.String("committed", "BENCH_service.json", "baseline benchjson document")
		current   = fs.String("current", "", "fresh benchjson document to gate")
		factor    = fs.Float64("factor", 3, "allowed regression factor on gated metrics")
		warn      = fs.Bool("warn", false, "report regressions without failing (CI smoke)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *current == "" {
		return fmt.Errorf("need -current")
	}
	if *factor <= 1 {
		return fmt.Errorf("-factor must exceed 1, got %v", *factor)
	}
	base, err := loadReport(*committed)
	if err != nil {
		return err
	}
	curRep, err := loadReport(*current)
	if err != nil {
		return err
	}
	cur := make(map[string]result, len(curRep.Results))
	for _, r := range curRep.Results {
		cur[r.Name] = r
	}

	regressions := 0
	for _, b := range base.Results {
		c, ok := cur[b.Name]
		if !ok {
			regressions++
			fmt.Printf("REGRESSION %s: missing from current run\n", b.Name)
			continue
		}
		for _, gate := range []struct {
			metric  string
			upIsBad bool
		}{{"p50-ns", true}, {"req/s", false}} {
			was, okB := b.Metrics[gate.metric]
			now, okC := c.Metrics[gate.metric]
			if !okB || !okC || was == 0 {
				continue
			}
			ratio := now / was
			bad := (gate.upIsBad && ratio > *factor) || (!gate.upIsBad && ratio < 1 / *factor)
			tag := "ok        "
			if bad {
				regressions++
				tag = "REGRESSION"
			}
			fmt.Printf("%s %s %s: %.0f -> %.0f (%.2fx, allowed %.gx)\n",
				tag, b.Name, gate.metric, was, now, ratio, *factor)
		}
	}
	if regressions > 0 {
		if *warn {
			fmt.Printf("WARN: %d regression(s) against %s (warn-only mode)\n", regressions, *committed)
			return nil
		}
		return fmt.Errorf("%d regression(s) against %s", regressions, *committed)
	}
	fmt.Println("no regressions")
	return nil
}

func loadReport(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
