// Command benchcmp gates benchmark regressions: it compares a fresh
// cmd/benchjson document against a committed baseline and fails when a gated
// metric regresses by more than the given factor.
//
// Two baseline kinds are understood, selected by -kind:
//
//   - service (default, baseline BENCH_service.json): gates p50-ns (median
//     latency, regressed when current > factor × baseline), delta-p50-ns
//     (the subscribe workload's commit-to-subscriber fan-out latency, same
//     direction), req/s (throughput, regressed when current < baseline /
//     factor), and the allocation metrics B/op and allocs/op (regressed when
//     current > factor × baseline). Allocation gates and delta-p50-ns use a
//     floor — the baseline is clamped up (a few allocations; 1ms of fan-out
//     latency) before the ratio is taken — so a zero- or near-zero baseline
//     doesn't turn one stray allocation or a fast machine's sub-millisecond
//     fan-out into an infinite ratio. recovery-ns (WAL replay wall clock of
//     the crash-recovery benchmark) gates like a latency, with a 1ms floor;
//   - runtime (baseline BENCH_runtime.json): gates ns/op the same way p50-ns
//     gates latency. The deterministic LOCAL-model metrics (rounds, msgBytes,
//     colors, ...) must match exactly — a changed round count is a semantics
//     change, not noise, so it regresses at any -factor.
//
// Other shared metrics are printed for context but do not gate — tail
// latency and cache rates are too noisy on shared CI runners to block on. A
// benchmark present in the baseline but missing from the current run is a
// regression (the workload silently stopped being measured).
//
// Usage:
//
//	go run ./cmd/benchcmp -committed BENCH_service.json -current new.json
//	go run ./cmd/benchcmp -kind runtime -committed BENCH_runtime.json -current new.json
//	go run ./cmd/benchcmp -factor 3 -warn ...   # report, never fail (CI)
//
// scripts/bench_check.sh and scripts/bench_runtime_check.sh wire this behind
// quick benchmark passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type result struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Results []result `json:"results"`
}

// exactRuntimeMetrics are the deterministic LOCAL-model metrics of a runtime
// benchmark: same code, same graph, same seed means byte-identical runs, so
// any drift is a real behavior change.
var exactRuntimeMetrics = []string{"rounds", "msgBytes", "colors", "maxMsgB", "defect", "depth", "delta"}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	var (
		kind      = fs.String("kind", "service", "baseline kind: service (gates p50-ns, req/s) or runtime (gates ns/op, exact LOCAL metrics)")
		committed = fs.String("committed", "", "baseline benchjson document (default BENCH_<kind>.json)")
		current   = fs.String("current", "", "fresh benchjson document to gate")
		factor    = fs.Float64("factor", 3, "allowed regression factor on gated metrics")
		warn      = fs.Bool("warn", false, "report regressions without failing (CI smoke)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var gates []gate
	switch *kind {
	case "service":
		gates = []gate{
			{metric: "p50-ns", upIsBad: true},
			{metric: "delta-p50-ns", upIsBad: true, floor: 1e6},
			{metric: "recovery-ns", upIsBad: true, floor: 1e6},
			{metric: "req/s"},
			{metric: "B/op", upIsBad: true, floor: 512},
			{metric: "allocs/op", upIsBad: true, floor: 4},
			// The measured palette is deterministic — a change is an
			// algorithm change, not noise, so it gates exactly.
			{metric: "colors-used", exact: true},
		}
	case "runtime":
		gates = []gate{{metric: "ns/op", upIsBad: true}}
		for _, m := range exactRuntimeMetrics {
			gates = append(gates, gate{metric: m, exact: true})
		}
	default:
		return fmt.Errorf("unknown -kind %q (want service or runtime)", *kind)
	}
	if *committed == "" {
		*committed = "BENCH_" + *kind + ".json"
	}
	if *current == "" {
		return fmt.Errorf("need -current")
	}
	if *factor <= 1 {
		return fmt.Errorf("-factor must exceed 1, got %v", *factor)
	}
	base, err := loadReport(*committed)
	if err != nil {
		return err
	}
	curRep, err := loadReport(*current)
	if err != nil {
		return err
	}
	cur := make(map[string]result, len(curRep.Results))
	for _, r := range curRep.Results {
		cur[r.Name] = r
	}

	regressions := 0
	for _, b := range base.Results {
		c, ok := cur[b.Name]
		if !ok {
			regressions++
			fmt.Printf("REGRESSION %s: missing from current run\n", b.Name)
			continue
		}
		for _, gate := range gates {
			was, okB := b.Metrics[gate.metric]
			now, okC := c.Metrics[gate.metric]
			if !okB || !okC {
				continue
			}
			if gate.exact {
				if now != was {
					regressions++
					fmt.Printf("REGRESSION %s %s: %v -> %v (deterministic metric drifted)\n",
						b.Name, gate.metric, was, now)
				}
				continue
			}
			ref := was
			if gate.upIsBad && ref < gate.floor {
				ref = gate.floor // don't turn a near-zero baseline into an infinite ratio
			}
			if ref == 0 {
				continue
			}
			ratio := now / ref
			bad := (gate.upIsBad && ratio > *factor) || (!gate.upIsBad && ratio < 1 / *factor)
			tag := "ok        "
			if bad {
				regressions++
				tag = "REGRESSION"
			}
			fmt.Printf("%s %s %s: %.0f -> %.0f (%.2fx, allowed %.gx)\n",
				tag, b.Name, gate.metric, was, now, ratio, *factor)
		}
	}
	if regressions > 0 {
		if *warn {
			fmt.Printf("WARN: %d regression(s) against %s (warn-only mode)\n", regressions, *committed)
			return nil
		}
		return fmt.Errorf("%d regression(s) against %s", regressions, *committed)
	}
	fmt.Println("no regressions")
	return nil
}

// gate is one metric comparison rule.
type gate struct {
	metric string
	// upIsBad: larger-than-baseline is the regression direction (latency).
	// When false, smaller is (throughput).
	upIsBad bool
	// exact: the metric is deterministic; any drift regresses.
	exact bool
	// floor clamps the baseline up before the ratio (upIsBad gates only):
	// a zero-allocation baseline tolerates up to factor × floor absolute.
	floor float64
}

func loadReport(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
