// Command vertexcolor runs the paper's vertex-coloring algorithms on
// bounded-neighborhood-independence graphs and reports colors, rounds, and
// message statistics.
//
// Example:
//
//	vertexcolor -graph linegraph -n 128 -m 512 -alg legal -p 6
//	vertexcolor -graph powercycle -n 400 -k 8 -alg defective -p 4
//	vertexcolor -graph hypergraph -n 60 -m 90 -r 3 -alg legal
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algreg"
	"repro/internal/dist"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vertexcolor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vertexcolor", flag.ContinueOnError)
	var (
		gtype  = fs.String("graph", "linegraph", "family: linegraph|powercycle|fig1|hypergraph|geometric")
		n      = fs.Int("n", 128, "base size (vertices of the underlying graph)")
		m      = fs.Int("m", 512, "edges / hyperedges for random families")
		k      = fs.Int("k", 6, "power for powercycle, clique size for fig1")
		r      = fs.Int("r", 3, "hypergraph rank")
		seed   = fs.Int64("seed", 1, "generator and algorithm seed")
		alg    = fs.String("alg", "legal", "algorithm: "+algreg.HelpList("vertex"))
		bFlag  = fs.Int("b", 2, "Algorithm 1 parameter b")
		pFlag  = fs.Int("p", 0, "Algorithm 1 parameter p (0 = auto: 4c+1)")
		engine = fs.String("engine", "goroutines", "dist scheduler: goroutines|lockstep|sharded|compiled")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, c, err := makeGraph(*gtype, *n, *m, *k, *r, *seed)
	if err != nil {
		return err
	}
	eng, err := dist.ParseEngine(*engine)
	if err != nil {
		return err
	}
	opts := []dist.Option{dist.WithSeed(*seed), dist.WithEngine(eng)}
	fmt.Printf("graph: %v, neighborhood independence c=%d\n", g, c)
	p := *pFlag
	if p == 0 {
		p = 4*c + 1
	}

	entry, ok := algreg.Lookup("vertex", *alg)
	if !ok || entry.RunVertex == nil {
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	res, notes, err := entry.RunVertex(g, algreg.Params{B: *bFlag, P: p, C: c, Seed: *seed}, opts...)
	if err != nil {
		return err
	}
	for _, note := range notes {
		fmt.Println(note)
	}
	if entry.NoFooter {
		// The algorithm's output is not a proper coloring (defective tiers);
		// its notes carry the full report.
		return nil
	}
	if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
		return fmt.Errorf("result is not a legal coloring: %w", err)
	}
	fmt.Printf("legal vertex coloring: %d colors (Δ+1 = %d), cost: %v\n",
		graph.CountColors(res.Outputs), g.MaxDegree()+1, res.Stats)
	return nil
}

// makeGraph builds a bounded-NI instance and returns its certified c.
func makeGraph(gtype string, n, m, k, r int, seed int64) (*graph.Graph, int, error) {
	var g *graph.Graph
	switch gtype {
	case "linegraph":
		g = graph.GNM(n, m, seed).LineGraph()
	case "powercycle":
		g = graph.PowerOfCycle(n, k)
	case "fig1":
		g = graph.CliquePlusPendants(k)
	case "hypergraph":
		g = graph.RandomHypergraph(n, m, r, seed).LineGraph()
	case "geometric":
		g = graph.Geometric(n, 0.08, seed)
	default:
		return nil, 0, fmt.Errorf("unknown graph family %q", gtype)
	}
	c := graph.NeighborhoodIndependence(g)
	if c < 1 {
		c = 1
	}
	return g, c, nil
}
