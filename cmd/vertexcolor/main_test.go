package main

import (
	"testing"

	"repro/internal/testutil"
)

// TestGolden pins the CLI's stdout for fixed small graphs across the
// algorithm and flag surface (run is main minus os.Exit).
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"legal_linegraph", []string{"-graph", "linegraph", "-n", "24", "-m", "60", "-seed", "1", "-alg", "legal"}},
		{"legalaux_powercycle", []string{"-graph", "powercycle", "-n", "30", "-k", "3", "-alg", "legalaux"}},
		{"defective_powercycle", []string{"-graph", "powercycle", "-n", "30", "-k", "5", "-alg", "defective", "-p", "4"}},
		{"greedy_geometric", []string{"-graph", "geometric", "-n", "40", "-seed", "2", "-alg", "greedy"}},
		{"tradeoff_fig1", []string{"-graph", "fig1", "-k", "6", "-alg", "tradeoff"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := testutil.CaptureStdout(t, func() error { return run(tc.args) })
			testutil.Golden(t, tc.name, out)
		})
	}
}

// TestEngineFlagPlumbing checks -engine acceptance and engine-independence
// of the output at the CLI level.
func TestEngineFlagPlumbing(t *testing.T) {
	base := []string{"-graph", "powercycle", "-n", "30", "-k", "3", "-alg", "legal"}
	ref := testutil.CaptureStdout(t, func() error { return run(base) })
	for _, engine := range []string{"lockstep", "sharded"} {
		out := testutil.CaptureStdout(t, func() error {
			return run(append([]string{"-engine", engine}, base...))
		})
		if out != ref {
			t.Fatalf("-engine %s output differs from default:\n%s\nvs\n%s", engine, out, ref)
		}
	}
	if err := run(append([]string{"-engine", "nope"}, base...)); err == nil {
		t.Fatal("-engine nope must be rejected")
	}
}
