package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/testutil"
)

// TestGoldenList pins the experiment registry: names and descriptions are
// part of the CLI contract (-exp takes them).
func TestGoldenList(t *testing.T) {
	out := testutil.CaptureStdout(t, func() error { return run([]string{"-list"}) })
	testutil.Golden(t, "list", out)
}

// TestGoldenExperiments pins the rendered artifacts of two cheap
// experiments, including the -out file path and the artifact's
// byte-identity across engines and worker counts — the harness's core
// config-independence promise, observed end to end through the CLI.
func TestGoldenExperiments(t *testing.T) {
	for _, exp := range []string{"fig2", "fig3"} {
		t.Run(exp, func(t *testing.T) {
			dir := t.TempDir()
			ref := testutil.CaptureStdout(t, func() error {
				return run([]string{"-exp", exp, "-out", dir})
			})
			testutil.Golden(t, exp, ref)
			art, err := os.ReadFile(filepath.Join(dir, exp+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			if string(art) != ref {
				t.Fatal("-out artifact differs from stdout")
			}
			for _, args := range [][]string{
				{"-exp", exp, "-engine", "lockstep"},
				{"-exp", exp, "-engine", "sharded", "-workers", "3"},
				{"-exp", exp, "-workers", "1"},
			} {
				out := testutil.CaptureStdout(t, func() error { return run(args) })
				if out != ref {
					t.Fatalf("%v output differs from default config", args)
				}
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nosuch"}); err == nil {
		t.Fatal("unknown experiment must be rejected")
	}
	if err := run([]string{"-engine", "nope", "-list"}); err == nil {
		t.Fatal("bad engine must be rejected")
	}
}
