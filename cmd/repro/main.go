// Command repro regenerates every table and figure of the reproduction:
// Tables 1-2 and Figures 1-3 of the paper, plus the theorem-level claim
// experiments E1-E8 indexed in DESIGN.md.
//
// Usage:
//
//	repro -list             # enumerate experiments
//	repro -exp table1       # run one experiment
//	repro -exp all          # run everything (EXPERIMENTS.md source data)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		name   = fs.String("exp", "all", "experiment name or 'all'")
		list   = fs.Bool("list", false, "list experiments and exit")
		outDir = fs.String("out", "", "also write each experiment's tables to <out>/<name>.txt")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-14s %s\n", e.Name, e.Desc)
		}
		return nil
	}
	runOne := func(e exp.Experiment) error {
		var w io.Writer = os.Stdout
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outDir, e.Name+".txt"))
			if err != nil {
				return err
			}
			defer f.Close()
			w = io.MultiWriter(os.Stdout, f)
		}
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		return nil
	}
	if *name == "all" {
		for _, e := range exp.All() {
			fmt.Printf("### %s — %s\n\n", e.Name, e.Desc)
			if err := runOne(e); err != nil {
				return err
			}
		}
		return nil
	}
	e, ok := exp.Lookup(*name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *name)
	}
	return runOne(e)
}
