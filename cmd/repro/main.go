// Command repro regenerates every table and figure of the reproduction:
// Tables 1-2 and Figures 1-3 of the paper, plus the theorem-level claim
// experiments E1-E8 indexed in DESIGN.md.
//
// Usage:
//
//	repro -list                      # enumerate experiments
//	repro -exp table1                # run one experiment
//	repro -exp all                   # run everything (EXPERIMENTS.md source data)
//	repro -exp all -engine sharded   # same artifacts, sharded scheduler
//	repro -workers 4                 # bound the experiment worker pool
//
// Artifacts are byte-identical across engines and worker counts: the
// simulator is deterministic and the harness aggregates grid cells in index
// order, so -engine and -workers trade wall-clock only.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dist"
	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		name    = fs.String("exp", "all", "experiment name or 'all'")
		list    = fs.Bool("list", false, "list experiments and exit")
		outDir  = fs.String("out", "", "also write each experiment's tables to <out>/<name>.txt")
		engine  = fs.String("engine", "goroutines", "dist scheduler: goroutines|lockstep|sharded|compiled")
		workers = fs.Int("workers", 0, "worker pool for experiment grids (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := dist.ParseEngine(*engine)
	if err != nil {
		return err
	}
	cfg := exp.Config{Engine: eng, Workers: *workers}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-14s %s\n", e.Name, e.Desc)
		}
		return nil
	}
	emit := func(e exp.Experiment, rendered []byte) error {
		if _, err := os.Stdout.Write(rendered); err != nil {
			return err
		}
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*outDir, e.Name+".txt"), rendered, 0o644)
	}
	if *name == "all" {
		return runAll(cfg, emit)
	}
	e, ok := exp.Lookup(*name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *name)
	}
	var buf bytes.Buffer
	var w io.Writer = &buf
	if err := e.Run(w, cfg); err != nil {
		return fmt.Errorf("%s: %w", e.Name, err)
	}
	return emit(e, buf.Bytes())
}

// runAll renders every experiment into its own buffer, up to cfg.Workers at
// a time, and emits each one in registration order as soon as its turn
// comes: output streams while later experiments still run, yet is
// byte-identical to the serial order. The experiment-level pool is the only
// pool — each experiment renders its own grid serially — so the total
// parallelism is bounded by cfg.Workers instead of compounding two pool
// levels.
func runAll(cfg exp.Config, emit func(exp.Experiment, []byte) error) error {
	all := exp.All()
	inner := cfg
	inner.Workers = 1
	rendered := make([][]byte, len(all))
	errs := make([]error, len(all))
	done := make([]chan struct{}, len(all))
	for i := range all {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, cfg.EffectiveWorkers())
	for i := range all {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; close(done[i]) }()
			var buf bytes.Buffer
			if err := all[i].Run(&buf, inner); err != nil {
				errs[i] = fmt.Errorf("%s: %w", all[i].Name, err)
				return
			}
			rendered[i] = buf.Bytes()
		}(i)
	}
	for i, e := range all {
		<-done[i]
		if errs[i] != nil {
			return errs[i]
		}
		// The section header goes to stdout only, so the per-experiment
		// artifact files stay byte-identical to single-experiment runs.
		fmt.Printf("### %s — %s\n\n", e.Name, e.Desc)
		if err := emit(e, rendered[i]); err != nil {
			return err
		}
	}
	return nil
}
