#!/usr/bin/env bash
# bench_service.sh — drive the colord service with cmd/loadgen and emit
# BENCH_service.json through the cmd/benchjson pipeline.
#
# Four workloads are measured. Three drive an in-process colord over the
# full HTTP round trip on loopback (with loadgen's raw persistent-connection
# driver): coloring mixes "small" (few distinct keys, cache-dominated steady
# state) and "medium" (many keys, execution-heavy), plus the "churn"
# workload — per-client dynamic sessions streaming mutation batches through
# /v1/mutate with incremental repair. The fourth is the in-process
# BenchmarkHitPath microbenchmark: the serving fast path alone (hash, striped
# lookup, counters), with its allocation figures. The JSON tracks throughput
# (req/s, and mut/s for churn), latency (ns/op, p50-ns, p99-ns, max-ns),
# allocation cost (B/op, allocs/op), and cache behavior (hit-rate,
# coalesce-rate) per workload.
#
# Usage:
#   scripts/bench_service.sh                  # full run, writes BENCH_service.json
#   DURATION=300ms BENCHTIME=1x scripts/bench_service.sh  # quick smoke (CI)
#   OUT=/dev/stdout scripts/bench_service.sh  # print the JSON instead
#   ENGINE=compiled scripts/bench_service.sh  # pin the coloring requests'
#                                             # engine (CI smokes compiled)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${DURATION:-5s}"
BENCHTIME="${BENCHTIME:-2s}"
CLIENTS="${CLIENTS:-8}"
ENGINE="${ENGINE:-}"
OUT="${OUT:-BENCH_service.json}"
TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

go run ./cmd/loadgen -bench -duration "$DURATION" -clients "$CLIENTS" -mix small -seeds 8 ${ENGINE:+-engine "$ENGINE"} | tee "$TXT"
go run ./cmd/loadgen -bench -duration "$DURATION" -clients "$CLIENTS" -mix medium -seeds 32 ${ENGINE:+-engine "$ENGINE"} | tee -a "$TXT"
go run ./cmd/loadgen -bench -mode churn -duration "$DURATION" -clients "$CLIENTS" -mix small -batch 16 | tee -a "$TXT"
# -cpu 1 keeps the benchmark name free of the GOMAXPROCS suffix, so the
# baseline key is stable across differently-sized machines.
go test -run '^$' -bench '^BenchmarkHitPath$' -cpu 1 -benchtime "$BENCHTIME" -benchmem ./internal/service | tee -a "$TXT"
go run ./cmd/benchjson < "$TXT" > "$OUT"
echo "wrote $OUT" >&2
