#!/usr/bin/env bash
# bench_service.sh — drive the colord service with cmd/loadgen and emit
# BENCH_service.json through the cmd/benchjson pipeline.
#
# Six workloads are measured. Five drive an in-process colord over the full
# HTTP round trip on loopback: coloring mixes "small" (few distinct keys,
# cache-dominated steady state), "medium" (many keys, execution-heavy), and
# "fewcolors" (the quality knob's low-palette tier; its colors-used metric is
# the mean measured palette and gates exactly) with
# loadgen's raw persistent-connection driver; the "churn" workload —
# per-client dynamic sessions streaming mutation batches through /v1/mutate
# with incremental repair; and the "subscribe" workload — one rate-paced
# writer mutating a session while $SUBS SSE subscribers drink its delta feed,
# measuring commit-to-subscriber latency. The fifth is the in-process
# BenchmarkHitPath microbenchmark: the serving fast path alone (hash, striped
# lookup, counters), with its allocation figures. The JSON tracks throughput
# (req/s; mut/s for churn and subscribe), latency (ns/op, p50-ns, p99-ns,
# max-ns; delta-p50-ns/delta-p99-ns for subscribe), allocation cost (B/op,
# allocs/op), and cache behavior (hit-rate, coalesce-rate) per workload.
#
# Isolation: loadgen is built ONCE up front (a `go run` per workload puts a
# compile — and its CPU and page-cache churn — inside the box the measurement
# runs in, which on small machines bleeds into the first seconds of the
# window), and a settle pause separates consecutive workloads so one
# workload's tail (GC of a few hundred MB of latency samples, TIME_WAIT
# sockets) doesn't tax the next one's window. The churn row in particular is
# measured in a clean gap: it is the most allocation-heavy workload, and
# running it hot on the heels of the medium mix cost it ~15% throughput on a
# 1-CPU box.
#
# Two cluster lines extend the small coloring mix across in-process 2- and
# 3-node fleets behind a colorgate (the scaling curve: req/s at nodes=1,2,3
# share the mix=small workload), and the BenchmarkWALReplay microbenchmark
# tracks crash-recovery speed (recovery-ns: wall clock to rebuild a session
# from its write-ahead log; replay-muts/s).
#
# Usage:
#   scripts/bench_service.sh                  # full run, writes BENCH_service.json
#   DURATION=300ms BENCHTIME=1x scripts/bench_service.sh  # quick smoke (CI)
#   SUBS=50 RATE=0 scripts/bench_service.sh   # smaller subscriber fleet
#   OUT=/dev/stdout scripts/bench_service.sh  # print the JSON instead
#   ENGINE=compiled scripts/bench_service.sh  # pin the coloring requests'
#                                             # engine (CI smokes compiled)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${DURATION:-5s}"
BENCHTIME="${BENCHTIME:-2s}"
CLIENTS="${CLIENTS:-8}"
ENGINE="${ENGINE:-}"
SUBS="${SUBS:-1000}"
RATE="${RATE:-100}"
SETTLE="${SETTLE:-1}"
OUT="${OUT:-BENCH_service.json}"
TXT="$(mktemp)"
BINDIR="$(mktemp -d)"
trap 'rm -rf "$TXT" "$BINDIR"' EXIT

go build -o "$BINDIR/loadgen" ./cmd/loadgen

"$BINDIR/loadgen" -bench -duration "$DURATION" -clients "$CLIENTS" -mix small -seeds 8 ${ENGINE:+-engine "$ENGINE"} | tee "$TXT"
sleep "$SETTLE"
"$BINDIR/loadgen" -bench -duration "$DURATION" -clients "$CLIENTS" -mix medium -seeds 32 ${ENGINE:+-engine "$ENGINE"} | tee -a "$TXT"
sleep "$SETTLE"
# The quality=fewcolors row: the same closed loop over the fewcolors tier.
# Its colors-used metric (mean measured palette, deterministic) gates exactly
# in benchcmp; its latency gates at the usual factor.
"$BINDIR/loadgen" -bench -duration "$DURATION" -clients "$CLIENTS" -mix fewcolors -seeds 8 ${ENGINE:+-engine "$ENGINE"} | tee -a "$TXT"
sleep "$SETTLE"
"$BINDIR/loadgen" -bench -mode churn -duration "$DURATION" -clients "$CLIENTS" -mix small -batch 16 | tee -a "$TXT"
sleep "$SETTLE"
"$BINDIR/loadgen" -bench -mode subscribe -duration "$DURATION" -subs "$SUBS" -rate "$RATE" -batch 4 -mix small | tee -a "$TXT"
sleep "$SETTLE"
# The scaling curve: the same small mix against 2- and 3-node in-process
# clusters routed through colorgate (nodes=1 is the first line above).
"$BINDIR/loadgen" -bench -duration "$DURATION" -clients "$CLIENTS" -mix small -seeds 8 -cluster 2 ${ENGINE:+-engine "$ENGINE"} | tee -a "$TXT"
sleep "$SETTLE"
"$BINDIR/loadgen" -bench -duration "$DURATION" -clients "$CLIENTS" -mix small -seeds 8 -cluster 3 ${ENGINE:+-engine "$ENGINE"} | tee -a "$TXT"
sleep "$SETTLE"
# -cpu 1 keeps the benchmark name free of the GOMAXPROCS suffix, so the
# baseline key is stable across differently-sized machines.
go test -run '^$' -bench '^BenchmarkHitPath$' -cpu 1 -benchtime "$BENCHTIME" -benchmem ./internal/service | tee -a "$TXT"
# Recovery time: rebuild a mutated session from its WAL (recovery-ns).
go test -run '^$' -bench '^BenchmarkWALReplay$' -cpu 1 -benchtime "$BENCHTIME" ./internal/dynamic | tee -a "$TXT"
go run ./cmd/benchjson < "$TXT" > "$OUT"
echo "wrote $OUT" >&2
