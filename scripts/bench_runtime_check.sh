#!/usr/bin/env bash
# bench_runtime_check.sh — runtime benchmark regression gate.
#
# Reruns the runtime bench suite (scripts/bench.sh: root artifact benchmarks +
# the per-engine internal/dist rows) against a throwaway output and compares
# it to the committed BENCH_runtime.json with cmd/benchcmp -kind runtime: the
# gate fails when ns/op regresses by more than FACTOR, or when any
# deterministic LOCAL-model metric (rounds, msgBytes, colors, ...) drifts at
# all — those are semantics changes, not noise. This is the regression guard
# for the Compiled-engine ≥10× hot-path claim: the per-engine hotpath rows sit
# in the baseline, so losing the speedup shows up as an ns/op regression on
# BenchmarkEngines/hotpath/compiled. CI runs it warn-only (BENCH_WARN_ONLY=1)
# because shared runners are too noisy to block merges on wall-clock.
#
# Usage:
#   scripts/bench_runtime_check.sh                    # full-length run, hard fail
#   BENCHTIME=1x scripts/bench_runtime_check.sh       # quick pass
#   FACTOR=5 scripts/bench_runtime_check.sh           # looser gate
#   BENCH_WARN_ONLY=1 scripts/bench_runtime_check.sh  # report, never fail (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

FACTOR="${FACTOR:-3}"
CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT

OUT="$CURRENT" BENCHTIME="${BENCHTIME:-1s}" scripts/bench.sh

WARN_FLAG=""
if [ -n "${BENCH_WARN_ONLY:-}" ]; then
  WARN_FLAG="-warn"
fi
go run ./cmd/benchcmp -kind runtime -committed BENCH_runtime.json -current "$CURRENT" -factor "$FACTOR" $WARN_FLAG
