#!/usr/bin/env bash
# cover.sh — coverage gate for the service-critical packages.
#
# Gates total statement coverage of internal/service + internal/dist +
# internal/dynamic + internal/wal + internal/cluster (including the compiled-engine files dist/compiled.go and
# dynamic/compiled.go), the compiled hot paths of internal/baseline
# (compiled.go), plus the mutated-graph paths of internal/graph
# (overlay.go — the churn substrate) against a floor: the layers a
# production outage would live in. The floor is deliberately below the
# current measurement so ordinary refactors don't fight the gate, but a
# test-free subsystem can't land.
#
# Usage:
#   scripts/cover.sh                 # run the gated packages' tests and gate
#   scripts/cover.sh cover.out       # gate an existing profile (CI reuses the
#                                    # -race run's profile: no duplicate tests)
#   FLOOR=90 scripts/cover.sh        # custom floor (percent)
set -euo pipefail
cd "$(dirname "$0")/.."

FLOOR="${FLOOR:-75}"
FILTERED="$(mktemp)"
trap 'rm -f "$FILTERED" ${PROFILE_TMP:-}' EXIT

if [ $# -ge 1 ]; then
  PROFILE="$1"
else
  PROFILE_TMP="$(mktemp)"
  PROFILE="$PROFILE_TMP"
  go test -coverprofile="$PROFILE" ./internal/service ./internal/dist ./internal/dynamic ./internal/wal ./internal/cluster ./internal/graph ./internal/baseline
fi

# Keep the mode header plus only the gated packages' lines (and, from
# internal/graph and internal/baseline, only the mutable-overlay and
# compiled-hot-path files), so a whole-repo profile gates the same statements
# as a dedicated run.
awk 'NR==1 || $0 ~ /^repro\/internal\/(service|dist|dynamic|wal|cluster)\// || $0 ~ /^repro\/internal\/graph\/overlay\.go/ || $0 ~ /^repro\/internal\/baseline\/compiled\.go/' "$PROFILE" > "$FILTERED"
TOTAL="$(go tool cover -func="$FILTERED" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')"
echo "service+dist+dynamic+wal+cluster+graph/overlay+baseline/compiled coverage: ${TOTAL}% (floor ${FLOOR}%)"
awk -v total="$TOTAL" -v floor="$FLOOR" 'BEGIN { exit (total + 0 < floor + 0) ? 1 : 0 }' || {
  echo "coverage ${TOTAL}% is under the ${FLOOR}% floor" >&2
  exit 1
}
