#!/usr/bin/env bash
# bench_cluster.sh — 3-node cluster smoke over the real binaries.
#
# Builds colord and colorgate, boots three WAL-backed colord nodes on
# ephemeral ports (each with -peers/-self so cross-node cache fill is live),
# fronts them with a colorgate, and proves the deployed topology end to end:
#
#   1. a coloring read through the gateway answers 200 with a stable body
#      across repeats (and across a re-ask while one node is down);
#   2. a durable session mutated through the gateway survives a node being
#      killed and restarted on the same WAL dir — same fingerprint after;
#   3. the gateway /statz shows all peers healthy and forwards counted.
#
# Then drives a short loadgen pass against the gateway for a req/s sanity
# line. This is a smoke, not a measurement: the committed scaling curve in
# BENCH_service.json comes from scripts/bench_service.sh's in-process
# -cluster runs.
#
# Usage:
#   scripts/bench_cluster.sh              # full smoke (~15s)
#   DURATION=1s scripts/bench_cluster.sh  # quicker loadgen tail
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${DURATION:-2s}"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/colord" ./cmd/colord
go build -o "$WORK/colorgate" ./cmd/colorgate
go build -o "$WORK/loadgen" ./cmd/loadgen

# Every node needs the full peer list at boot, so ephemeral :0 ports can't be
# used directly. Pick three free loopback ports up front with a quick
# bind-and-release, then start the nodes on those fixed ports.
pick_port() {
  "$WORK/colord" -addr 127.0.0.1:0 -addr-file "$WORK/probe" &
  local pid=$!
  for _ in $(seq 100); do [ -s "$WORK/probe" ] && break; sleep 0.05; done
  local addr; addr="$(cat "$WORK/probe")"
  kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null || true
  rm -f "$WORK/probe"
  echo "${addr##*:}"
}
P0="$(pick_port)"; P1="$(pick_port)"; P2="$(pick_port)"
PEERS="http://127.0.0.1:$P0,http://127.0.0.1:$P1,http://127.0.0.1:$P2"

start_node() { # idx port
  local i="$1" port="$2"
  mkdir -p "$WORK/wal$i"
  "$WORK/colord" -addr "127.0.0.1:$port" -wal-dir "$WORK/wal$i" \
    -peers "$PEERS" -self "http://127.0.0.1:$port" -workers 2 \
    -addr-file "$WORK/addr$i" 2>"$WORK/node$i.log" &
  PIDS+=($!)
  for _ in $(seq 100); do [ -s "$WORK/addr$i" ] && return 0; sleep 0.05; done
  echo "node $i never came up" >&2; cat "$WORK/node$i.log" >&2; exit 1
}
start_node 0 "$P0"
start_node 1 "$P1"
start_node 2 "$P2"

"$WORK/colorgate" -addr 127.0.0.1:0 -addr-file "$WORK/gwaddr" -peers "$PEERS" \
  -health-interval 100ms 2>"$WORK/gw.log" &
GW_PID=$!
PIDS+=("$GW_PID")
for _ in $(seq 100); do [ -s "$WORK/gwaddr" ] && break; sleep 0.05; done
GW="http://$(cat "$WORK/gwaddr")"
echo "cluster: nodes $PEERS behind $GW"

COLOR_REQ='{"kind":"edge","alg":"be","graph":{"family":"gnm","n":64,"m":192,"seed":3}}'

# 1. Stable bytes through the gateway.
A="$(curl -fsS -X POST -d "$COLOR_REQ" "$GW/v1/color")"
B="$(curl -fsS -X POST -d "$COLOR_REQ" "$GW/v1/color")"
[ "$A" = "$B" ] && echo "smoke: repeat coloring read is byte-stable" || { echo "FAIL: bodies differ" >&2; exit 1; }

# 2. Durable session through the gateway: create, mutate, kill+restart every
# node, re-read — fingerprint must survive the cluster-wide restart.
curl -fsS -X POST -d '{"session":"smoke","base":{"family":"cycle","n":24}}' "$GW/v1/mutate" >/dev/null
FP1="$(curl -fsS -X POST -d '{"session":"smoke","ops":[{"op":"insert","u":0,"v":9},{"op":"insert","u":3,"v":14}]}' "$GW/v1/mutate" | sed 's/.*"fingerprint":"\([^"]*\)".*/\1/')"
for pid in "${PIDS[@]}"; do
  [ "$pid" = "$GW_PID" ] && continue
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
done
PIDS=("$GW_PID")
rm -f "$WORK/addr0" "$WORK/addr1" "$WORK/addr2"
start_node 0 "$P0"
start_node 1 "$P1"
start_node 2 "$P2"
sleep 0.3  # give the gateway's prober a beat to re-mark peers healthy
FP2="$(curl -fsS -X POST -d '{"session":"smoke"}' "$GW/v1/mutate" | sed 's/.*"fingerprint":"\([^"]*\)".*/\1/')"
[ -n "$FP1" ] && [ "$FP1" = "$FP2" ] && echo "smoke: session fingerprint survived a full-cluster SIGKILL ($FP1)" \
  || { echo "FAIL: fingerprint $FP1 -> $FP2 across restart" >&2; exit 1; }

# 3. Gateway statz sanity.
STATZ="$(curl -fsS "$GW/statz")"
echo "$STATZ" | grep -q '"healthyPeers":3' || { echo "FAIL: not all peers healthy: $STATZ" >&2; exit 1; }
echo "smoke: gateway reports 3 healthy peers"

# 4. Short loadgen line against the deployed gateway.
"$WORK/loadgen" -bench -addr "$GW" -duration "$DURATION" -clients 4 -mix small -seeds 8
echo "cluster smoke passed" >&2
