#!/usr/bin/env bash
# bench.sh — run the runtime-facing benchmark suite and emit BENCH_runtime.json.
#
# The suite covers the root per-artifact benchmarks and the internal/dist
# engine/runner benchmarks with -benchmem, so the JSON tracks wall-clock
# (ns/op), allocation behavior (B/op, allocs/op), and the LOCAL-model custom
# metrics (rounds, msgBytes, colors, ...) per benchmark. The engine
# benchmarks emit one row per engine per workload
# (BenchmarkEngines/{fresh,steady,hotpath}/{goroutines,lockstep,sharded,compiled}),
# so BENCH_runtime.json shows the whole engine trajectory — including the
# compiled hot-path speedup — side by side.
#
# Usage:
#   scripts/bench.sh                 # full run, writes BENCH_runtime.json
#   BENCHTIME=1x scripts/bench.sh    # quick smoke (CI uses this)
#   OUT=/dev/stdout scripts/bench.sh # print the JSON instead
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_runtime.json}"
TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" . ./internal/dist/ | tee "$TXT"
go run ./cmd/benchjson < "$TXT" > "$OUT"
echo "wrote $OUT" >&2
