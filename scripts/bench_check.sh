#!/usr/bin/env bash
# bench_check.sh — service benchmark regression gate.
#
# Reruns the service bench suite (scripts/bench_service.sh: coloring mixes +
# churn + the subscribe fan-out + the hit-path microbenchmark) against a
# throwaway output and compares it to the committed BENCH_service.json with
# cmd/benchcmp: the gate fails when p50 latency, subscribe delta-p50 fan-out
# latency, req/s throughput, B/op, or allocs/op regress by more than FACTOR
# (default 3×, loose enough for shared-runner noise; near-zero baselines are
# floored — see cmd/benchcmp). CI runs it warn-only (BENCH_WARN_ONLY=1) so a
# noisy runner cannot block a merge while the regression still lands in the
# log.
#
# Usage:
#   scripts/bench_check.sh                      # full-length run, hard fail
#   DURATION=2s scripts/bench_check.sh          # quick pass
#   FACTOR=5 scripts/bench_check.sh             # looser gate
#   BENCH_WARN_ONLY=1 scripts/bench_check.sh    # report, never fail (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

FACTOR="${FACTOR:-3}"
CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT

OUT="$CURRENT" DURATION="${DURATION:-5s}" scripts/bench_service.sh

WARN_FLAG=""
if [ -n "${BENCH_WARN_ONLY:-}" ]; then
  WARN_FLAG="-warn"
fi
go run ./cmd/benchcmp -committed BENCH_service.json -current "$CURRENT" -factor "$FACTOR" $WARN_FLAG
