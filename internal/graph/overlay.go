package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// EdgeSetFingerprint is an order-independent content hash of (n, edge set):
// the XOR-fold of a per-edge hash. Unlike Fingerprint — which hashes the CSR
// arrays and therefore must be recomputed from scratch after any change —
// the XOR structure makes it incrementally maintainable: inserting or
// deleting an edge toggles exactly one term, so an Overlay tracks the
// fingerprint of its evolving graph in O(1) per mutation. Two graphs on the
// default identifier assignment have equal EdgeSetFingerprints iff they have
// the same vertex count and edge set.
func (g *Graph) EdgeSetFingerprint() Fingerprint {
	f := edgeSetSeed(g.n)
	for _, e := range g.edges {
		f.xor(edgeHash(e))
	}
	return f
}

// edgeSetSeed is the fingerprint of the edgeless graph on n vertices; the
// vertex count is folded in so Path(3) and Path(4)-minus-an-edge differ.
func edgeSetSeed(n int) Fingerprint {
	var b [16]byte
	copy(b[:8], "edgeset0")
	binary.LittleEndian.PutUint64(b[8:], uint64(n))
	return Fingerprint(sha256.Sum256(b[:]))
}

// edgeHash is the per-edge term of the XOR-fold.
func edgeHash(e Edge) Fingerprint {
	var b [24]byte
	copy(b[:8], "edgeset1")
	binary.LittleEndian.PutUint64(b[8:], uint64(e.U))
	binary.LittleEndian.PutUint64(b[16:], uint64(e.V))
	return Fingerprint(sha256.Sum256(b[:]))
}

func (f *Fingerprint) xor(g Fingerprint) {
	for i := range f {
		f[i] ^= g[i]
	}
}

// Overlay is a mutable edge-churn layer over an immutable CSR Graph: the
// current graph is base minus the deleted base edges plus the inserted ones.
// It supports the queries an incremental recoloring pass needs — adjacency,
// degrees, Δ, edge membership — without rebuilding the CSR arrays, tracks
// the vertex count-invariant quantities (m, per-vertex degrees, Δ via a
// degree histogram, EdgeSetFingerprint) incrementally in O(1) amortized per
// mutation, and compacts back to a fresh CSR Graph on demand or when the
// churn layer outgrows the base.
//
// The vertex set is fixed: mutations add and remove edges only. Overlay
// requires the base graph to carry the default identifier assignment
// (ID(v) = v+1), so vertex-index order, identifier order, and the canonical
// lexicographic edge order all agree and survive compaction unchanged.
//
// An Overlay is not safe for concurrent use; callers (dynamic.Maintainer)
// serialize access.
type Overlay struct {
	base    *Graph
	added   map[Edge]struct{} // present, not in base
	removed map[Edge]struct{} // in base, absent
	addAdj  map[int][]int32   // per-vertex inserted neighbors, sorted
	deg     []int             // current degree per vertex
	degHist []int             // degHist[d] = #vertices of degree d
	maxDeg  int               // current Δ, tracked via degHist
	m       int               // current edge count
	fp      Fingerprint       // incremental EdgeSetFingerprint
	mat     *Graph            // memoized Materialize, nil after a mutation
}

// NewOverlay returns an overlay over base with no pending mutations. It
// fails if base does not carry the default identifier assignment.
func NewOverlay(base *Graph) (*Overlay, error) {
	for v := 0; v < base.N(); v++ {
		if base.ID(v) != v+1 {
			return nil, fmt.Errorf("graph: overlay requires default ids, vertex %d has id %d", v, base.ID(v))
		}
	}
	o := &Overlay{
		base:    base,
		added:   make(map[Edge]struct{}),
		removed: make(map[Edge]struct{}),
		addAdj:  make(map[int][]int32),
		deg:     base.Degrees(),
		degHist: make([]int, base.N()+1),
		maxDeg:  base.MaxDegree(),
		m:       base.M(),
		fp:      base.EdgeSetFingerprint(),
		mat:     base,
	}
	for _, d := range o.deg {
		o.degHist[d]++
	}
	return o, nil
}

// Base returns the CSR graph the overlay currently layers over (the last
// compaction point, not the mutated graph).
func (o *Overlay) Base() *Graph { return o.base }

// N returns the (fixed) vertex count.
func (o *Overlay) N() int { return o.base.N() }

// M returns the current edge count.
func (o *Overlay) M() int { return o.m }

// Deg returns the current degree of v.
func (o *Overlay) Deg(v int) int { return o.deg[v] }

// MaxDegree returns Δ of the current graph, maintained incrementally.
func (o *Overlay) MaxDegree() int { return o.maxDeg }

// Fingerprint returns the EdgeSetFingerprint of the current graph,
// maintained in O(1) per mutation; it equals Materialize().EdgeSetFingerprint().
func (o *Overlay) Fingerprint() Fingerprint { return o.fp }

// Pending returns the size of the churn layer: the number of inserted plus
// deleted edges relative to the base.
func (o *Overlay) Pending() int { return len(o.added) + len(o.removed) }

// HasEdge reports whether (u, v) is an edge of the current graph.
func (o *Overlay) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= o.N() || v >= o.N() {
		return false
	}
	e := canonical(u, v)
	if _, ok := o.added[e]; ok {
		return true
	}
	if _, ok := o.removed[e]; ok {
		return false
	}
	return o.base.HasEdge(u, v)
}

// Insert adds the edge (u, v) to the current graph. Inserting an existing
// edge, a self-loop, or an out-of-range endpoint is an error; the overlay is
// unchanged on error.
func (o *Overlay) Insert(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: overlay insert self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= o.N() || v >= o.N() {
		return fmt.Errorf("graph: overlay insert (%d,%d) out of range [0,%d)", u, v, o.N())
	}
	if o.HasEdge(u, v) {
		return fmt.Errorf("graph: overlay insert duplicate edge (%d,%d)", u, v)
	}
	e := canonical(u, v)
	if _, wasRemoved := o.removed[e]; wasRemoved {
		delete(o.removed, e) // re-inserting a deleted base edge cancels out
	} else {
		o.added[e] = struct{}{}
		o.insertAdj(e.U, int32(e.V))
		o.insertAdj(e.V, int32(e.U))
	}
	o.bumpDeg(e.U, +1)
	o.bumpDeg(e.V, +1)
	o.m++
	o.fp.xor(edgeHash(e))
	o.mat = nil
	return nil
}

// Delete removes the edge (u, v) from the current graph. Deleting a
// non-edge is an error; the overlay is unchanged on error.
func (o *Overlay) Delete(u, v int) error {
	if !o.HasEdge(u, v) {
		return fmt.Errorf("graph: overlay delete of non-edge (%d,%d)", u, v)
	}
	e := canonical(u, v)
	if _, wasAdded := o.added[e]; wasAdded {
		delete(o.added, e) // deleting an inserted edge cancels out
		o.removeAdj(e.U, int32(e.V))
		o.removeAdj(e.V, int32(e.U))
	} else {
		o.removed[e] = struct{}{}
	}
	o.bumpDeg(e.U, -1)
	o.bumpDeg(e.V, -1)
	o.m--
	o.fp.xor(edgeHash(e))
	o.mat = nil
	return nil
}

// insertAdj places w into v's sorted inserted-neighbor list.
func (o *Overlay) insertAdj(v int, w int32) {
	a := o.addAdj[v]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= w })
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = w
	o.addAdj[v] = a
}

// removeAdj drops w from v's inserted-neighbor list.
func (o *Overlay) removeAdj(v int, w int32) {
	a := o.addAdj[v]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= w })
	o.addAdj[v] = append(a[:i], a[i+1:]...)
}

// bumpDeg moves v between degree-histogram buckets and tracks Δ: the max
// pointer rises with an insert in O(1) and walks down past emptied buckets
// after deletes, which amortizes to O(1) per mutation.
func (o *Overlay) bumpDeg(v, delta int) {
	o.degHist[o.deg[v]]--
	o.deg[v] += delta
	o.degHist[o.deg[v]]++
	if o.deg[v] > o.maxDeg {
		o.maxDeg = o.deg[v]
	}
	for o.maxDeg > 0 && o.degHist[o.maxDeg] == 0 {
		o.maxDeg--
	}
}

// AppendNeighbors appends the current neighbors of v to buf in increasing
// vertex order and returns the extended slice. It merges the base adjacency
// (skipping deleted edges) with the inserted-neighbor list.
func (o *Overlay) AppendNeighbors(v int, buf []int32) []int32 {
	baseNbrs := o.base.Neighbors(v)
	add := o.addAdj[v]
	i, j := 0, 0
	for i < len(baseNbrs) || j < len(add) {
		var w int32
		switch {
		case j >= len(add) || (i < len(baseNbrs) && baseNbrs[i] < add[j]):
			w = baseNbrs[i]
			i++
			if _, gone := o.removed[canonical(v, int(w))]; gone {
				continue
			}
		default:
			w = add[j]
			j++
		}
		buf = append(buf, w)
	}
	return buf
}

// Materialize builds the current graph as an immutable CSR Graph (default
// identifiers). The result is memoized until the next mutation; compaction
// and read-heavy callers therefore share one build.
func (o *Overlay) Materialize() *Graph {
	if o.mat != nil {
		return o.mat
	}
	b := NewBuilder(o.N())
	for _, e := range o.base.Edges() {
		if _, gone := o.removed[e]; !gone {
			_ = b.AddEdge(e.U, e.V)
		}
	}
	for e := range o.added {
		_ = b.AddEdge(e.U, e.V)
	}
	o.mat = b.Build()
	return o.mat
}

// Compact materializes the current graph, installs it as the new base, and
// clears the churn layer. Adjacency queries after a compaction read pure CSR
// again. Returns the new base.
func (o *Overlay) Compact() *Graph {
	g := o.Materialize()
	o.base = g
	o.added = make(map[Edge]struct{})
	o.removed = make(map[Edge]struct{})
	o.addAdj = make(map[int][]int32)
	return g
}
