package graph

// Orientation assigns a direction to every edge of a graph. For edge id e,
// Toward[e] is the head vertex (the edge points toward it). Orientations are
// the substrate of Lemma 3.4 (a d-out-degree acyclic orientation yields a
// (d+1)-coloring) and of the Panconesi–Rizzi forest decomposition.
type Orientation struct {
	g      *Graph
	Toward []int // Toward[edgeID] = head vertex index
}

// OrientByIDs orients every edge toward the endpoint with the *smaller*
// identifier. The result is acyclic: following out-edges strictly decreases
// the identifier. (Out-edges of v are edges oriented away from v, i.e. whose
// head is the other endpoint.)
func OrientByIDs(g *Graph) *Orientation {
	o := &Orientation{g: g, Toward: make([]int, g.M())}
	for id, e := range g.Edges() {
		if g.ID(e.U) < g.ID(e.V) {
			o.Toward[id] = e.U
		} else {
			o.Toward[id] = e.V
		}
	}
	return o
}

// Graph returns the underlying graph.
func (o *Orientation) Graph() *Graph { return o.g }

// OutEdges returns the edge ids oriented away from v (head != v).
func (o *Orientation) OutEdges(v int) []int {
	var out []int
	for _, id := range o.g.IncidentEdgeIDs(v) {
		if o.Toward[id] != v {
			out = append(out, int(id))
		}
	}
	return out
}

// OutDegree returns the out-degree of v.
func (o *Orientation) OutDegree(v int) int {
	d := 0
	for _, id := range o.g.IncidentEdgeIDs(v) {
		if o.Toward[id] != v {
			d++
		}
	}
	return d
}

// MaxOutDegree returns the out-degree of the orientation (§2).
func (o *Orientation) MaxOutDegree() int {
	m := 0
	for v := 0; v < o.g.N(); v++ {
		if d := o.OutDegree(v); d > m {
			m = d
		}
	}
	return m
}

// Head returns the head of edge id (the vertex it points toward).
func (o *Orientation) Head(id int) int { return o.Toward[id] }

// Tail returns the tail of edge id.
func (o *Orientation) Tail(id int) int {
	e := o.g.EdgeAt(id)
	if o.Toward[id] == e.U {
		return e.V
	}
	return e.U
}

// IsAcyclic reports whether the orientation has no directed cycle.
func (o *Orientation) IsAcyclic() bool {
	// Kahn's algorithm on the directed graph tail -> head.
	indeg := make([]int, o.g.N())
	for id := range o.Toward {
		indeg[o.Toward[id]]++
	}
	queue := make([]int, 0, o.g.N())
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, id := range o.g.IncidentEdgeIDs(v) {
			if o.Toward[id] != v && o.Tail(int(id)) == v {
				h := o.Toward[id]
				indeg[h]--
				if indeg[h] == 0 {
					queue = append(queue, h)
				}
			}
		}
	}
	return seen == o.g.N()
}

// LongestDirectedPath returns the number of edges on the longest directed
// path (well-defined only for acyclic orientations; panics on cyclic input).
// It bounds the round complexity of the Lemma-3.4 coloring process.
func (o *Orientation) LongestDirectedPath() int {
	if !o.IsAcyclic() {
		panic("graph: LongestDirectedPath on cyclic orientation")
	}
	memo := make([]int, o.g.N())
	for i := range memo {
		memo[i] = -1
	}
	var depth func(v int) int
	depth = func(v int) int {
		if memo[v] >= 0 {
			return memo[v]
		}
		memo[v] = 0 // break self-recursion; acyclicity makes this safe
		best := 0
		for _, id := range o.g.IncidentEdgeIDs(v) {
			if o.Toward[id] != v { // out-edge of v
				if d := depth(o.Toward[id]) + 1; d > best {
					best = d
				}
			}
		}
		memo[v] = best
		return best
	}
	best := 0
	for v := 0; v < o.g.N(); v++ {
		if d := depth(v); d > best {
			best = d
		}
	}
	return best
}
