package graph

import (
	"testing"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := b.AddEdge(-1, 1); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
	if !b.HasEdge(0, 1) || !b.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
}

func TestGraphBasics(t *testing.T) {
	b := NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("got n=%d m=%d, want 4, 5", g.N(), g.M())
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if g.Deg(0) != 3 || g.Deg(3) != 2 {
		t.Fatalf("degrees wrong: %v", g.Degrees())
	}
	id, ok := g.EdgeID(2, 0)
	if !ok {
		t.Fatal("EdgeID(2,0) missing")
	}
	if e := g.EdgeAt(id); e.U != 0 || e.V != 2 {
		t.Fatalf("EdgeAt(%d) = %v, want {0 2}", id, e)
	}
	if _, ok := g.EdgeID(1, 3); ok {
		t.Error("EdgeID(1,3) should not exist")
	}
	if g.HasEdge(1, 1) {
		t.Error("self-loop reported present")
	}
	// Adjacency sorted and consistent with edge ids.
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(v)
		ids := g.IncidentEdgeIDs(v)
		if len(nbrs) != len(ids) {
			t.Fatalf("vertex %d: neighbor/eid length mismatch", v)
		}
		for i := range nbrs {
			if i > 0 && nbrs[i-1] >= nbrs[i] {
				t.Fatalf("vertex %d adjacency not strictly sorted: %v", v, nbrs)
			}
			e := g.EdgeAt(int(ids[i]))
			if (e.U != v || e.V != int(nbrs[i])) && (e.V != v || e.U != int(nbrs[i])) {
				t.Fatalf("vertex %d port %d: edge %v does not match neighbor %d", v, i, e, nbrs[i])
			}
		}
	}
}

func TestEdgeIDsStableUnderInsertionOrder(t *testing.T) {
	b1 := NewBuilder(4)
	b2 := NewBuilder(4)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	for _, e := range edges {
		if err := b1.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(edges) - 1; i >= 0; i-- {
		if err := b2.AddEdge(edges[i][1], edges[i][0]); err != nil {
			t.Fatal(err)
		}
	}
	g1, g2 := b1.Build(), b2.Build()
	for id := range g1.Edges() {
		if g1.EdgeAt(id) != g2.EdgeAt(id) {
			t.Fatalf("edge id %d differs: %v vs %v", id, g1.EdgeAt(id), g2.EdgeAt(id))
		}
	}
}

func TestSetIDsValidation(t *testing.T) {
	g := Path(3)
	if err := g.SetIDs([]int{1, 2}); err == nil {
		t.Error("short id slice accepted")
	}
	if err := g.SetIDs([]int{1, 1, 2}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if err := g.SetIDs([]int{0, 1, 2}); err == nil {
		t.Error("id 0 accepted")
	}
	if err := g.SetIDs([]int{3, 1, 2}); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if g.ID(0) != 3 {
		t.Errorf("ID(0) = %d, want 3", g.ID(0))
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	keep := []bool{true, false, true, true, false}
	sub, new2old := g.InducedSubgraph(keep)
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3 expected, got %v", sub)
	}
	want := []int{0, 2, 3}
	for i, ov := range new2old {
		if ov != want[i] {
			t.Fatalf("new2old = %v, want %v", new2old, want)
		}
	}
	// IDs remain a permutation of 1..3.
	seen := map[int]bool{}
	for v := 0; v < 3; v++ {
		seen[sub.ID(v)] = true
	}
	for id := 1; id <= 3; id++ {
		if !seen[id] {
			t.Fatalf("missing id %d in induced subgraph", id)
		}
	}
}

func TestEdgeSubgraph(t *testing.T) {
	g := Cycle(5)
	keep := make([]bool, g.M())
	keep[0], keep[2] = true, true
	sub := g.EdgeSubgraph(keep)
	if sub.N() != 5 || sub.M() != 2 {
		t.Fatalf("edge subgraph wrong: %v", sub)
	}
}

func TestLineGraphOfPathAndTriangle(t *testing.T) {
	// L(P4) = P3.
	lp := Path(4).LineGraph()
	if lp.N() != 3 || lp.M() != 2 {
		t.Fatalf("L(P4) = %v, want P3", lp)
	}
	// L(K3) = K3.
	lk := Complete(3).LineGraph()
	if lk.N() != 3 || lk.M() != 3 {
		t.Fatalf("L(K3) = %v, want K3", lk)
	}
	// L(K1,3) = K3 (the claw's line graph is a triangle).
	ls := Star(4).LineGraph()
	if ls.N() != 3 || ls.M() != 3 {
		t.Fatalf("L(K1,3) = %v, want K3", ls)
	}
}

func TestLineGraphDegreeBound(t *testing.T) {
	// Δ(L(G)) <= 2(Δ(G)-1)  (§5 of the paper).
	g := GNM(60, 240, 7)
	lg := g.LineGraph()
	if got, bound := lg.MaxDegree(), 2*(g.MaxDegree()-1); got > bound {
		t.Fatalf("Δ(L(G)) = %d exceeds 2(Δ-1) = %d", got, bound)
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		n, m int
		dMax int
	}{
		{"Path(5)", Path(5), 5, 4, 2},
		{"Cycle(6)", Cycle(6), 6, 6, 2},
		{"Complete(5)", Complete(5), 5, 10, 4},
		{"K2,3", CompleteBipartite(2, 3), 5, 6, 3},
		{"Star(7)", Star(7), 7, 6, 6},
		{"CliquePlusPendants(4)", CliquePlusPendants(4), 8, 10, 4},
		{"PowerOfCycle(10,2)", PowerOfCycle(10, 2), 10, 20, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n || tt.g.M() != tt.m || tt.g.MaxDegree() != tt.dMax {
				t.Fatalf("got (n,m,Δ)=(%d,%d,%d), want (%d,%d,%d)",
					tt.g.N(), tt.g.M(), tt.g.MaxDegree(), tt.n, tt.m, tt.dMax)
			}
		})
	}
}

func TestGridTorusHypercube(t *testing.T) {
	g := Grid(4, 3)
	if g.N() != 12 || g.M() != 4*2+3*3 || g.MaxDegree() != 4 {
		t.Fatalf("grid: %v", g)
	}
	tor := Torus(4, 3)
	if tor.N() != 12 || tor.M() != 24 {
		t.Fatalf("torus: %v", tor)
	}
	for v := 0; v < tor.N(); v++ {
		if tor.Deg(v) != 4 {
			t.Fatalf("torus vertex %d degree %d, want 4", v, tor.Deg(v))
		}
	}
	q := Hypercube(4)
	if q.N() != 16 || q.M() != 32 || q.MaxDegree() != 4 {
		t.Fatalf("hypercube: %v", q)
	}
	// Q_d neighborhoods are independent sets: I(Q_d) = d.
	if got := NeighborhoodIndependence(q); got != 4 {
		t.Fatalf("I(Q_4) = %d, want 4", got)
	}
}

func TestGNMDeterministicAndCorrectSize(t *testing.T) {
	g1 := GNM(50, 200, 42)
	g2 := GNM(50, 200, 42)
	if g1.M() != 200 {
		t.Fatalf("GNM produced %d edges, want 200", g1.M())
	}
	for id := range g1.Edges() {
		if g1.EdgeAt(id) != g2.EdgeAt(id) {
			t.Fatal("GNM not deterministic in seed")
		}
	}
	g3 := GNM(50, 200, 43)
	same := true
	for id := range g1.Edges() {
		if g1.EdgeAt(id) != g3.EdgeAt(id) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(30, 4, 1)
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Deg(v))
		}
	}
}

func TestRandomBoundedDegreeRespectsCap(t *testing.T) {
	g := RandomBoundedDegree(40, 5, 90, 3)
	if g.MaxDegree() > 5 {
		t.Fatalf("max degree %d exceeds cap 5", g.MaxDegree())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	g := RandomTree(64, 9)
	if g.M() != 63 {
		t.Fatalf("tree edge count %d, want 63", g.M())
	}
	// Connectivity via BFS ball of radius n.
	if got := len(BallVertices(g, 0, g.N())); got != 63 {
		t.Fatalf("tree not connected: reached %d of 63 others", got)
	}
}

func TestGeometricBoundedGrowthShape(t *testing.T) {
	g := Geometric(400, 0.08, 5)
	if g.N() != 400 {
		t.Fatal("wrong vertex count")
	}
	// Geometric graphs have bounded growth: independent vertices within
	// distance r around any vertex fit in a disk of radius r*radius, so
	// growth at r=2 should be far below Δ when Δ is large. Just sanity-check
	// the generator produces some edges and no absurd growth.
	if g.M() == 0 {
		t.Skip("degenerate random instance with no edges")
	}
}

func TestHypergraphLineGraphNI(t *testing.T) {
	for _, r := range []int{2, 3, 4} {
		h := RandomHypergraph(30, 40, r, int64(r))
		lg := h.LineGraph()
		if got := NeighborhoodIndependence(lg); got > r {
			t.Fatalf("I(L(H_%d)) = %d exceeds r", r, got)
		}
	}
}

func TestShuffledIDs(t *testing.T) {
	g := Path(10)
	s := ShuffledIDs(g, 11)
	perm := map[int]bool{}
	for v := 0; v < 10; v++ {
		perm[s.ID(v)] = true
	}
	if len(perm) != 10 {
		t.Fatal("shuffled ids are not a permutation")
	}
	// Original untouched.
	for v := 0; v < 10; v++ {
		if g.ID(v) != v+1 {
			t.Fatal("ShuffledIDs mutated its input")
		}
	}
}

// TestCSRInvariants pins the CSR layout Build promises: adjacency sorted
// without a post-sort, degrees consistent with offsets, edge ids matching
// the canonical edge list, and reverse ports exactly inverting the port
// numbering. The dist runtime's O(1) delivery translation depends on these.
func TestCSRInvariants(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":     NewBuilder(0).Build(),
		"isolated":  NewBuilder(5).Build(),
		"path":      Path(9),
		"complete":  Complete(13),
		"gnm":       GNM(120, 700, 3),
		"linegraph": GNM(30, 90, 4).LineGraph(),
		"star":      Star(17),
		"clone":     GNM(60, 200, 5).Clone(),
	}
	for name, g := range graphs {
		degSum := 0
		for v := 0; v < g.N(); v++ {
			nbrs := g.Neighbors(v)
			eids := g.IncidentEdgeIDs(v)
			rev := g.ReversePorts(v)
			if len(nbrs) != g.Deg(v) || len(eids) != g.Deg(v) || len(rev) != g.Deg(v) {
				t.Fatalf("%s: vertex %d slice lengths disagree with Deg", name, v)
			}
			degSum += g.Deg(v)
			for i, u := range nbrs {
				if i > 0 && nbrs[i-1] >= u {
					t.Fatalf("%s: vertex %d adjacency not strictly increasing", name, v)
				}
				e := g.EdgeAt(int(eids[i]))
				if !(e.U == v && e.V == int(u)) && !(e.V == v && e.U == int(u)) {
					t.Fatalf("%s: vertex %d port %d edge id %d is %v", name, v, i, eids[i], e)
				}
				back := g.Neighbors(int(u))
				if int(rev[i]) >= len(back) || back[rev[i]] != int32(v) {
					t.Fatalf("%s: reverse port of %d at neighbor %d wrong", name, v, u)
				}
				if g.IncidentEdgeIDs(int(u))[rev[i]] != eids[i] {
					t.Fatalf("%s: edge id disagrees across the two ports of (%d,%d)", name, v, u)
				}
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("%s: degree sum %d != 2m %d", name, degSum, 2*g.M())
		}
		maxDeg := 0
		for v := 0; v < g.N(); v++ {
			if g.Deg(v) > maxDeg {
				maxDeg = g.Deg(v)
			}
		}
		if g.MaxDegree() != maxDeg {
			t.Fatalf("%s: cached MaxDegree %d != recomputed %d", name, g.MaxDegree(), maxDeg)
		}
	}
}
