package graph

import "fmt"

// This file holds centralized validators for vertex and edge colorings.
// They are independent of the distributed implementations and serve as the
// ground truth in tests and experiments.

// CheckVertexColoring verifies that colors is a legal vertex coloring:
// len(colors) == N, every color >= 1, and no edge is monochromatic.
func CheckVertexColoring(g *Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: got %d colors for %d vertices", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 1 {
			return fmt.Errorf("coloring: vertex %d has invalid color %d", v, c)
		}
	}
	for _, e := range g.Edges() {
		if colors[e.U] == colors[e.V] {
			return fmt.Errorf("coloring: edge (%d,%d) monochromatic in color %d", e.U, e.V, colors[e.U])
		}
	}
	return nil
}

// VertexDefect returns the defect of a vertex coloring: the maximum over
// vertices v of the number of neighbors sharing v's color (§1.3). A legal
// coloring has defect 0.
func VertexDefect(g *Graph, colors []int) int {
	worst := 0
	for v := 0; v < g.N(); v++ {
		same := 0
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				same++
			}
		}
		if same > worst {
			worst = same
		}
	}
	return worst
}

// CheckDefectiveVertexColoring verifies colors is an m-defective χ-coloring:
// every color in {1..χ} and defect at most m.
func CheckDefectiveVertexColoring(g *Graph, colors []int, m, chi int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: got %d colors for %d vertices", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 1 || c > chi {
			return fmt.Errorf("coloring: vertex %d has color %d outside [1,%d]", v, c, chi)
		}
	}
	if d := VertexDefect(g, colors); d > m {
		return fmt.Errorf("coloring: defect %d exceeds bound %d", d, m)
	}
	return nil
}

// CheckEdgeColoring verifies that colors (indexed by edge id) is a legal
// edge coloring: incident edges get distinct colors, all colors >= 1.
func CheckEdgeColoring(g *Graph, colors []int) error {
	if len(colors) != g.M() {
		return fmt.Errorf("coloring: got %d colors for %d edges", len(colors), g.M())
	}
	for id, c := range colors {
		if c < 1 {
			return fmt.Errorf("coloring: edge %d has invalid color %d", id, c)
		}
	}
	for v := 0; v < g.N(); v++ {
		seen := make(map[int]int32, g.Deg(v))
		for _, id := range g.IncidentEdgeIDs(v) {
			c := colors[id]
			if other, dup := seen[c]; dup {
				return fmt.Errorf("coloring: edges %d and %d incident at vertex %d share color %d",
					other, id, v, c)
			}
			seen[c] = id
		}
	}
	return nil
}

// EdgeDefect returns the defect of an edge coloring: the maximum over edges e
// of the number of edges incident to e (at either endpoint) sharing e's color.
func EdgeDefect(g *Graph, colors []int) int {
	worst := 0
	for id := range colors {
		e := g.EdgeAt(id)
		same := 0
		for _, id2 := range g.IncidentEdgeIDs(e.U) {
			if int(id2) != id && colors[id2] == colors[id] {
				same++
			}
		}
		for _, id2 := range g.IncidentEdgeIDs(e.V) {
			if int(id2) != id && colors[id2] == colors[id] {
				same++
			}
		}
		if same > worst {
			worst = same
		}
	}
	return worst
}

// CheckDefectiveEdgeColoring verifies an m-defective χ-edge-coloring.
func CheckDefectiveEdgeColoring(g *Graph, colors []int, m, chi int) error {
	if len(colors) != g.M() {
		return fmt.Errorf("coloring: got %d colors for %d edges", len(colors), g.M())
	}
	for id, c := range colors {
		if c < 1 || c > chi {
			return fmt.Errorf("coloring: edge %d has color %d outside [1,%d]", id, c, chi)
		}
	}
	if d := EdgeDefect(g, colors); d > m {
		return fmt.Errorf("coloring: edge defect %d exceeds bound %d", d, m)
	}
	return nil
}

// MergePortColors folds per-vertex port colorings (ports[v][p] = color of the
// edge at port p of vertex v, 0 = no color) into a single per-edge color
// slice, verifying that the two endpoints of every edge agree. Distributed
// edge-coloring algorithms maintain each edge's color at both endpoints
// (§5); this is the centralized consistency check and extraction.
func MergePortColors(g *Graph, ports [][]int) ([]int, error) {
	colors := make([]int, g.M())
	for id := range colors {
		colors[id] = -1
	}
	for v := 0; v < g.N(); v++ {
		ids := g.IncidentEdgeIDs(v)
		if len(ports[v]) != len(ids) {
			return nil, fmt.Errorf("coloring: vertex %d reported %d port colors for %d ports",
				v, len(ports[v]), len(ids))
		}
		for port, id := range ids {
			c := ports[v][port]
			if colors[id] == -1 {
				colors[id] = c
			} else if colors[id] != c {
				return nil, fmt.Errorf("coloring: edge %d endpoints disagree (%d vs %d)",
					id, colors[id], c)
			}
		}
	}
	return colors, nil
}

// CountColors returns the number of distinct colors used.
func CountColors(colors []int) int {
	seen := make(map[int]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// MaxColor returns the largest color used (0 for an empty slice). Palette
// bounds in the paper are stated against the largest color, since colors are
// drawn from {1..χ}.
func MaxColor(colors []int) int {
	m := 0
	for _, c := range colors {
		if c > m {
			m = c
		}
	}
	return m
}
