package graph

import "testing"

func TestCheckVertexColoring(t *testing.T) {
	g := Cycle(4)
	if err := CheckVertexColoring(g, []int{1, 2, 1, 2}); err != nil {
		t.Fatalf("legal 2-coloring rejected: %v", err)
	}
	if err := CheckVertexColoring(g, []int{1, 1, 2, 2}); err == nil {
		t.Error("monochromatic edge accepted")
	}
	if err := CheckVertexColoring(g, []int{1, 2, 1}); err == nil {
		t.Error("short color slice accepted")
	}
	if err := CheckVertexColoring(g, []int{0, 2, 1, 2}); err == nil {
		t.Error("color 0 accepted")
	}
}

func TestVertexDefect(t *testing.T) {
	g := Complete(4)
	if d := VertexDefect(g, []int{1, 1, 1, 1}); d != 3 {
		t.Fatalf("defect of monochromatic K4 = %d, want 3", d)
	}
	if d := VertexDefect(g, []int{1, 2, 3, 4}); d != 0 {
		t.Fatalf("defect of rainbow K4 = %d, want 0", d)
	}
	if d := VertexDefect(g, []int{1, 1, 2, 2}); d != 1 {
		t.Fatalf("defect = %d, want 1", d)
	}
}

func TestCheckDefectiveVertexColoring(t *testing.T) {
	g := Complete(4)
	if err := CheckDefectiveVertexColoring(g, []int{1, 1, 2, 2}, 1, 2); err != nil {
		t.Fatalf("valid 1-defective 2-coloring rejected: %v", err)
	}
	if err := CheckDefectiveVertexColoring(g, []int{1, 1, 2, 2}, 0, 2); err == nil {
		t.Error("defect bound violation accepted")
	}
	if err := CheckDefectiveVertexColoring(g, []int{1, 1, 3, 2}, 1, 2); err == nil {
		t.Error("palette violation accepted")
	}
}

func TestCheckEdgeColoring(t *testing.T) {
	g := Path(4) // edges: (0,1)=0, (1,2)=1, (2,3)=2
	if err := CheckEdgeColoring(g, []int{1, 2, 1}); err != nil {
		t.Fatalf("legal edge coloring rejected: %v", err)
	}
	if err := CheckEdgeColoring(g, []int{1, 1, 2}); err == nil {
		t.Error("incident same-color edges accepted")
	}
	if err := CheckEdgeColoring(g, []int{1, 2}); err == nil {
		t.Error("short slice accepted")
	}
}

func TestEdgeDefect(t *testing.T) {
	g := Star(4) // 3 edges all incident at center
	if d := EdgeDefect(g, []int{1, 1, 1}); d != 2 {
		t.Fatalf("defect = %d, want 2", d)
	}
	if d := EdgeDefect(g, []int{1, 2, 3}); d != 0 {
		t.Fatalf("defect = %d, want 0", d)
	}
	if err := CheckDefectiveEdgeColoring(g, []int{1, 1, 2}, 1, 2); err != nil {
		t.Fatalf("valid defective edge coloring rejected: %v", err)
	}
	if err := CheckDefectiveEdgeColoring(g, []int{1, 1, 1}, 1, 2); err == nil {
		t.Error("edge-defect violation accepted")
	}
}

func TestCountAndMaxColors(t *testing.T) {
	colors := []int{5, 1, 5, 2}
	if CountColors(colors) != 3 {
		t.Fatalf("CountColors = %d, want 3", CountColors(colors))
	}
	if MaxColor(colors) != 5 {
		t.Fatalf("MaxColor = %d, want 5", MaxColor(colors))
	}
	if MaxColor(nil) != 0 {
		t.Fatal("MaxColor(nil) should be 0")
	}
}

func TestMergePortColors(t *testing.T) {
	g := Path(3) // edges (0,1) and (1,2)
	good := [][]int{{1}, {1, 2}, {2}}
	colors, err := MergePortColors(g, good)
	if err != nil {
		t.Fatal(err)
	}
	if colors[0] != 1 || colors[1] != 2 {
		t.Fatalf("colors = %v", colors)
	}
	bad := [][]int{{1}, {2, 1}, {1}}
	if _, err := MergePortColors(g, bad); err == nil {
		t.Fatal("endpoint disagreement not detected")
	}
	short := [][]int{{1}, {1}, {2}}
	if _, err := MergePortColors(g, short); err == nil {
		t.Fatal("short port slice not detected")
	}
}

func TestOrientationByIDs(t *testing.T) {
	g := GNM(40, 120, 13)
	o := OrientByIDs(g)
	if !o.IsAcyclic() {
		t.Fatal("ID orientation must be acyclic")
	}
	for id := range g.Edges() {
		e := g.EdgeAt(id)
		head := o.Head(id)
		tail := o.Tail(id)
		if head == tail {
			t.Fatal("degenerate orientation")
		}
		if g.ID(head) > g.ID(tail) {
			t.Fatalf("edge %v oriented toward larger id", e)
		}
	}
	// Out-degree sums to m.
	total := 0
	for v := 0; v < g.N(); v++ {
		total += o.OutDegree(v)
	}
	if total != g.M() {
		t.Fatalf("sum of out-degrees %d != m %d", total, g.M())
	}
	if o.MaxOutDegree() > g.MaxDegree() {
		t.Fatal("out-degree exceeds degree")
	}
}

func TestLongestDirectedPath(t *testing.T) {
	g := Path(5)
	o := OrientByIDs(g) // ids 1..5 along the path: all edges point "left"
	if got := o.LongestDirectedPath(); got != 4 {
		t.Fatalf("longest path = %d, want 4", got)
	}
}

func TestOutEdges(t *testing.T) {
	g := Path(3) // ids 1,2,3
	o := OrientByIDs(g)
	// vertex 1 (id 2) has out-edge to vertex 0 (id 1) only.
	outs := o.OutEdges(1)
	if len(outs) != 1 {
		t.Fatalf("vertex 1 out-edges = %v, want exactly 1", outs)
	}
	if o.Head(outs[0]) != 0 {
		t.Fatalf("out-edge head = %d, want 0", o.Head(outs[0]))
	}
}
