package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint is a canonical content hash of a graph: two graphs have equal
// fingerprints iff they have the same vertex count, the same adjacency
// structure, and the same identifier assignment. It is the cache key the
// coloring service builds its deterministic result cache on — the runtime is
// deterministic, so "same fingerprint + same algorithm parameters" implies
// byte-identical outputs.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Fingerprint hashes the graph's canonical form: the vertex count, the CSR
// offset and neighbor arrays, and the identifier assignment. The edge-id and
// reverse-port arrays are deterministic functions of the edge set (Builder
// derives them in one canonical pass), so hashing the adjacency alone pins
// them too. The hash is domain-separated and length-prefixed per section, so
// distinct graphs cannot collide by boundary shifting.
func (g *Graph) Fingerprint() Fingerprint {
	h := sha256.New()
	var scratch [8]byte
	word := func(x uint64) {
		binary.LittleEndian.PutUint64(scratch[:], x)
		h.Write(scratch[:])
	}
	words32 := func(tag uint64, xs []int32) {
		word(tag)
		word(uint64(len(xs)))
		for _, x := range xs {
			word(uint64(uint32(x)))
		}
	}
	word(uint64(g.n))
	words32('o', g.off)
	words32('a', g.nbrs)
	word('i')
	word(uint64(len(g.ids)))
	for _, id := range g.ids {
		word(uint64(id))
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
