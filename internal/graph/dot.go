package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format. vertexColors and
// edgeColors are optional (nil to omit): when given, they are rendered as
// numbered labels and a cyclic color wheel, making verified colorings easy
// to inspect visually (dot -Tsvg graph.dot -o graph.svg).
func WriteDOT(w io.Writer, g *Graph, vertexColors, edgeColors []int) error {
	if vertexColors != nil && len(vertexColors) != g.N() {
		return fmt.Errorf("graph: got %d vertex colors for %d vertices", len(vertexColors), g.N())
	}
	if edgeColors != nil && len(edgeColors) != g.M() {
		return fmt.Errorf("graph: got %d edge colors for %d edges", len(edgeColors), g.M())
	}
	if _, err := fmt.Fprintln(w, "graph G {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  node [shape=circle fontsize=10];")
	for v := 0; v < g.N(); v++ {
		if vertexColors != nil {
			fmt.Fprintf(w, "  %d [label=\"%d\\nc%d\" style=filled fillcolor=\"%s\"];\n",
				v, g.ID(v), vertexColors[v], wheel(vertexColors[v]))
		} else {
			fmt.Fprintf(w, "  %d [label=\"%d\"];\n", v, g.ID(v))
		}
	}
	for id, e := range g.Edges() {
		if edgeColors != nil {
			fmt.Fprintf(w, "  %d -- %d [label=\"%d\" color=\"%s\" penwidth=2];\n",
				e.U, e.V, edgeColors[id], wheel(edgeColors[id]))
		} else {
			fmt.Fprintf(w, "  %d -- %d;\n", e.U, e.V)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// wheel maps a color index onto a repeating palette of visually distinct
// hues (HSV around the circle).
func wheel(c int) string {
	if c < 1 {
		return "gray"
	}
	// Golden-ratio hue stepping keeps nearby indices far apart on the wheel.
	h := float64((c*89)%360) / 360
	return fmt.Sprintf("%.3f 0.6 0.9", h)
}
