package graph

import (
	"math/rand"
	"testing"
)

// mirror is the reference implementation an Overlay is checked against: a
// plain edge-set rebuilt into a Graph for every query.
type mirror struct {
	n     int
	edges map[Edge]struct{}
}

func (m *mirror) graph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(m.n)
	for e := range m.edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatalf("mirror add %v: %v", e, err)
		}
	}
	return b.Build()
}

// TestOverlayAgainstMirror drives a random insert/delete stream through an
// Overlay and checks every tracked quantity — M, Deg, Δ, HasEdge, adjacency,
// fingerprint, materialization — against a from-scratch rebuild after every
// mutation.
func TestOverlayAgainstMirror(t *testing.T) {
	base := GNM(24, 40, 7)
	o, err := NewOverlay(base)
	if err != nil {
		t.Fatal(err)
	}
	m := &mirror{n: base.N(), edges: make(map[Edge]struct{})}
	for _, e := range base.Edges() {
		m.edges[e] = struct{}{}
	}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 400; step++ {
		u, v := rng.Intn(base.N()), rng.Intn(base.N())
		if u == v {
			continue
		}
		e := canonical(u, v)
		if _, ok := m.edges[e]; ok {
			if err := o.Delete(u, v); err != nil {
				t.Fatalf("step %d: delete (%d,%d): %v", step, u, v, err)
			}
			delete(m.edges, e)
		} else {
			if err := o.Insert(u, v); err != nil {
				t.Fatalf("step %d: insert (%d,%d): %v", step, u, v, err)
			}
			m.edges[e] = struct{}{}
		}
		if step%16 == 0 && step > 0 && rng.Intn(3) == 0 {
			o.Compact()
		}
		want := m.graph(t)
		if o.M() != want.M() {
			t.Fatalf("step %d: M = %d, want %d", step, o.M(), want.M())
		}
		if o.MaxDegree() != want.MaxDegree() {
			t.Fatalf("step %d: Δ = %d, want %d", step, o.MaxDegree(), want.MaxDegree())
		}
		for x := 0; x < base.N(); x++ {
			if o.Deg(x) != want.Deg(x) {
				t.Fatalf("step %d: deg(%d) = %d, want %d", step, x, o.Deg(x), want.Deg(x))
			}
			got := o.AppendNeighbors(x, nil)
			wantN := want.Neighbors(x)
			if len(got) != len(wantN) {
				t.Fatalf("step %d: neighbors(%d) = %v, want %v", step, x, got, wantN)
			}
			for i := range got {
				if got[i] != wantN[i] {
					t.Fatalf("step %d: neighbors(%d) = %v, want %v", step, x, got, wantN)
				}
			}
		}
		if o.Fingerprint() != want.EdgeSetFingerprint() {
			t.Fatalf("step %d: incremental fingerprint diverged from edge-set hash", step)
		}
		mat := o.Materialize()
		if mat.Fingerprint() != want.Fingerprint() {
			t.Fatalf("step %d: materialized graph differs from mirror", step)
		}
	}
}

// TestOverlayErrors pins the rejection paths: duplicates, self-loops, range,
// deleting non-edges, and non-default identifier bases.
func TestOverlayErrors(t *testing.T) {
	base := Path(4) // edges (0,1)(1,2)(2,3)
	o, err := NewOverlay(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct{ u, v int }{{0, 0}, {-1, 2}, {0, 4}} {
		if err := o.Insert(bad.u, bad.v); err == nil {
			t.Fatalf("insert (%d,%d) succeeded, want error", bad.u, bad.v)
		}
	}
	if err := o.Insert(1, 0); err == nil {
		t.Fatal("inserting an existing base edge succeeded")
	}
	if err := o.Insert(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(2, 0); err == nil {
		t.Fatal("inserting an existing inserted edge succeeded")
	}
	if err := o.Delete(0, 3); err == nil {
		t.Fatal("deleting a non-edge succeeded")
	}

	perm := Path(3)
	if err := perm.SetIDs([]int{2, 1, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewOverlay(perm); err == nil {
		t.Fatal("NewOverlay accepted a permuted-id base")
	}
}

// TestOverlayCancellation: deleting an inserted edge and re-inserting a
// deleted base edge must both restore the original fingerprint exactly.
func TestOverlayCancellation(t *testing.T) {
	base := Cycle(8)
	o, err := NewOverlay(base)
	if err != nil {
		t.Fatal(err)
	}
	fp0 := o.Fingerprint()
	if err := o.Insert(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(4, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(1, 0); err != nil {
		t.Fatal(err)
	}
	if o.Pending() != 0 {
		t.Fatalf("pending = %d after cancelling mutations, want 0", o.Pending())
	}
	if o.Fingerprint() != fp0 {
		t.Fatal("fingerprint did not return to the base value")
	}
	if o.Fingerprint() != base.EdgeSetFingerprint() {
		t.Fatal("fingerprint disagrees with base EdgeSetFingerprint")
	}
}
