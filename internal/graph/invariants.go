package graph

// This file computes the neighborhood-independence invariant I(G)
// (Definition 3.1 of the paper) and related structural measures. These are
// centralized *verification* utilities: the distributed algorithms never call
// them — they receive the bound c as a parameter, exactly as the paper
// assumes ("all vertices know the value of c before the computation starts").

import "math/bits"

// NeighborhoodIndependence returns I(G) = max_v I(v), where I(v) is the size
// of a maximum independent subset of Γ(v). It is exact; the computation is a
// per-vertex maximum-independent-set search (branch and bound with degree
// pivoting), exponential in the worst case but fast for the neighborhood
// sizes exercised in this repository.
func NeighborhoodIndependence(g *Graph) int {
	best := 0
	for v := 0; v < g.N(); v++ {
		iv := VertexNeighborhoodIndependence(g, v)
		if iv > best {
			best = iv
		}
	}
	return best
}

// VertexNeighborhoodIndependence returns I(v): the maximum independent set
// size within Γ(v).
func VertexNeighborhoodIndependence(g *Graph, v int) int {
	nbrs := g.Neighbors(v)
	k := len(nbrs)
	if k <= 1 {
		return k
	}
	// Local adjacency among the neighbors, as bitsets of neighbor ranks.
	idx := make(map[int32]int, k)
	for i, u := range nbrs {
		idx[u] = i
	}
	adj := make([]bitset, k)
	for i := range adj {
		adj[i] = newBitset(k)
	}
	for i, u := range nbrs {
		for _, w := range g.Neighbors(int(u)) {
			if j, ok := idx[w]; ok {
				adj[i].set(j)
			}
		}
	}
	cand := newBitset(k)
	for i := 0; i < k; i++ {
		cand.set(i)
	}
	best := 0
	misBranch(adj, cand, 0, &best)
	return best
}

// misBranch is a classic MIS branch-and-bound: pick the candidate vertex of
// maximum degree within the candidate set; either exclude it (recurse on
// cand \ {p}) or include it (recurse on cand \ N[p]).
func misBranch(adj []bitset, cand bitset, size int, best *int) {
	cnt := cand.count()
	if size+cnt <= *best {
		return
	}
	if cnt == 0 {
		if size > *best {
			*best = size
		}
		return
	}
	// Choose pivot = candidate with most candidate-neighbors.
	pivot, pivotDeg := -1, -1
	for i := cand.next(0); i >= 0; i = cand.next(i + 1) {
		d := cand.intersectCount(adj[i])
		if d > pivotDeg {
			pivot, pivotDeg = i, d
		}
	}
	if pivotDeg == 0 {
		// Candidates are pairwise non-adjacent: take them all.
		if size+cnt > *best {
			*best = size + cnt
		}
		return
	}
	// Branch 1: include pivot.
	with := cand.clone()
	with.clear(pivot)
	with.andNot(adj[pivot])
	misBranch(adj, with, size+1, best)
	// Branch 2: exclude pivot.
	without := cand.clone()
	without.clear(pivot)
	misBranch(adj, without, size, best)
}

// GreedyIndependentSetIn returns a maximal (not maximum) independent subset
// of the given vertex set, built greedily by index order. Its size lower-
// bounds the independence number of the induced subgraph.
func GreedyIndependentSetIn(g *Graph, verts []int) []int {
	inSet := make(map[int]bool, len(verts))
	var out []int
	for _, v := range verts {
		ok := true
		for _, u := range g.Neighbors(v) {
			if inSet[int(u)] {
				ok = false
				break
			}
		}
		if ok {
			inSet[v] = true
			out = append(out, v)
		}
	}
	return out
}

// BallVertices returns the set of vertices at distance in [1, r] from v
// (excluding v itself), by BFS.
func BallVertices(g *Graph, v, r int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	queue := []int{v}
	var out []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] >= r {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				out = append(out, int(w))
				queue = append(queue, int(w))
			}
		}
	}
	return out
}

// GrowthAt returns a lower bound on the number of pairwise-independent
// vertices within distance r of v (the growth function f(r) at v from §1.2),
// via a greedy independent set over the ball.
func GrowthAt(g *Graph, v, r int) int {
	return len(GreedyIndependentSetIn(g, BallVertices(g, v, r)))
}

// Arboricity returns the Nash-Williams arboricity lower bound max over the
// whole graph ⌈m/(n-1)⌉ and a greedy-orientation upper bound; it is used by
// the [5]-stand-in baseline's reporting only.
func ArboricityBounds(g *Graph) (lower, upper int) {
	if g.N() >= 2 {
		lower = (g.M() + g.N() - 2) / (g.N() - 1)
	}
	// Upper bound: repeatedly strip minimum-degree vertices; the max degree
	// seen at strip time bounds 2a (degeneracy d satisfies a <= d <= 2a-1).
	deg := g.Degrees()
	removed := make([]bool, g.N())
	degeneracy := 0
	for iter := 0; iter < g.N(); iter++ {
		min, at := 1<<30, -1
		for v := 0; v < g.N(); v++ {
			if !removed[v] && deg[v] < min {
				min, at = deg[v], v
			}
		}
		if at < 0 {
			break
		}
		if min > degeneracy {
			degeneracy = min
		}
		removed[at] = true
		for _, u := range g.Neighbors(at) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	upper = degeneracy
	if upper < lower {
		upper = lower
	}
	return lower, upper
}

// bitset is a small dense bitset sized at construction.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) intersectCount(o bitset) int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(b[i] & o[i])
	}
	return n
}

// next returns the index of the first set bit at or after i, or -1.
func (b bitset) next(i int) int {
	if i >= len(b)*64 {
		return -1
	}
	w := i / 64
	if rem := b[w] >> (uint(i) % 64); rem != 0 {
		return i + bits.TrailingZeros64(rem)
	}
	for w++; w < len(b); w++ {
		if b[w] != 0 {
			return w*64 + bits.TrailingZeros64(b[w])
		}
	}
	return -1
}
