package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Path returns the path graph P_n (n-1 edges).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		mustAdd(b, v, v+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		mustAdd(b, v, (v+1)%n)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(b, u, v)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b}. The first a vertices form one side.
func CompleteBipartite(a, b int) *Graph {
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			mustAdd(bl, u, a+v)
		}
	}
	return bl.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		mustAdd(b, 0, v)
	}
	return b.Build()
}

// GNM returns a uniform random simple graph with n vertices and m distinct
// edges, deterministic in seed.
func GNM(n, m int, seed int64) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: GNM m=%d exceeds max %d", m, maxM))
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for b.NumEdges() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.TryAddEdge(u, v)
		}
	}
	return b.Build()
}

// RandomBoundedDegree returns a random simple graph on n vertices where every
// vertex degree is at most maxDeg, targeting m edges (it may stop short if
// the degree budget is exhausted). Deterministic in seed.
func RandomBoundedDegree(n, maxDeg, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	deg := make([]int, n)
	failures := 0
	for b.NumEdges() < m && failures < 50*m+1000 {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || deg[u] >= maxDeg || deg[v] >= maxDeg || !b.TryAddEdge(u, v) {
			failures++
			continue
		}
		deg[u]++
		deg[v]++
	}
	return b.Build()
}

// RandomRegular returns a random d-regular graph on n vertices via the
// configuration model with restarts (n*d must be even, d < n).
// Deterministic in seed.
func RandomRegular(n, d int, seed int64) *Graph {
	if n*d%2 != 0 {
		panic("graph: RandomRegular requires n*d even")
	}
	if d >= n {
		panic("graph: RandomRegular requires d < n")
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; ; attempt++ {
		if g, ok := tryConfigurationModel(n, d, rng); ok {
			return g
		}
		if attempt > 200 {
			panic(fmt.Sprintf("graph: RandomRegular(n=%d,d=%d) failed after retries", n, d))
		}
	}
}

// tryConfigurationModel pairs degree stubs after a shuffle; when the next
// stub pair would form a loop or duplicate edge it retries against random
// unpaired stubs, restarting the whole attempt only if a position wedges.
func tryConfigurationModel(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := NewBuilder(n)
	for i := 0; i < len(stubs); i += 2 {
		placed := false
		for tries := 0; tries < 300; tries++ {
			j := i + 1
			if tries > 0 {
				j = i + 1 + rng.Intn(len(stubs)-i-1)
			}
			u, v := stubs[i], stubs[j]
			if u != v && !b.HasEdge(u, v) {
				stubs[i+1], stubs[j] = stubs[j], stubs[i+1]
				mustAdd(b, u, v)
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
	}
	return b.Build(), true
}

// Geometric returns a random geometric graph: n points uniform in the unit
// square, vertices adjacent iff within Euclidean distance radius. This family
// has bounded growth (§1.2 of the paper). Deterministic in seed.
func Geometric(n int, radius float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Grid bucketing keeps generation near-linear for small radii.
	cell := radius
	if cell <= 0 {
		panic("graph: Geometric radius must be positive")
	}
	buckets := make(map[[2]int][]int)
	key := func(i int) [2]int {
		return [2]int{int(xs[i] / cell), int(ys[i] / cell)}
	}
	for i := 0; i < n; i++ {
		k := key(i)
		buckets[k] = append(buckets[k], i)
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		k := key(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.TryAddEdge(i, j)
					}
				}
			}
		}
	}
	return b.Build()
}

// CliquePlusPendants returns the Figure-1 graph of the paper: a k-clique in
// which every clique vertex additionally has one private pendant neighbor.
// It has n = 2k vertices, I(G) = 2, and every clique vertex has k = Ω(Δ)
// independent vertices at distance 2, so the family is not of bounded growth.
// Clique vertices are 0..k-1; pendant of clique vertex i is k+i.
func CliquePlusPendants(k int) *Graph {
	if k < 2 {
		panic("graph: CliquePlusPendants needs k >= 2")
	}
	b := NewBuilder(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			mustAdd(b, u, v)
		}
		mustAdd(b, u, k+u)
	}
	return b.Build()
}

// PowerOfCycle returns C_n^k: vertices on a cycle, adjacent iff cyclic
// distance <= k. Its neighborhood independence is 2 for n > 3k, making it a
// bounded-NI family that is not a line graph in general.
func PowerOfCycle(n, k int) *Graph {
	if n < 2*k+2 {
		panic("graph: PowerOfCycle requires n >= 2k+2")
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 1; d <= k; d++ {
			b.TryAddEdge(v, (v+d)%n)
		}
	}
	return b.Build()
}

// Grid returns the w×h grid graph (Δ ≤ 4, bounded growth). Vertex (x,y) has
// index y*w+x.
func Grid(w, h int) *Graph {
	b := NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := y*w + x
			if x+1 < w {
				mustAdd(b, v, v+1)
			}
			if y+1 < h {
				mustAdd(b, v, v+w)
			}
		}
	}
	return b.Build()
}

// Torus returns the w×h toroidal grid (4-regular for w,h >= 3): the grid
// with wrap-around edges, a vertex-transitive bounded-growth family.
func Torus(w, h int) *Graph {
	if w < 3 || h < 3 {
		panic("graph: Torus needs w,h >= 3")
	}
	b := NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := y*w + x
			mustAdd(b, v, y*w+(x+1)%w)
			mustAdd(b, v, ((y+1)%h)*w+x)
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube Q_d: n = 2^d vertices,
// Δ = d = log₂ n — exactly the Δ ≈ log n boundary regime of Table 2.
func Hypercube(d int) *Graph {
	if d < 1 || d > 20 {
		panic("graph: Hypercube dimension out of range [1,20]")
	}
	n := 1 << d
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if u > v {
				mustAdd(b, v, u)
			}
		}
	}
	return b.Build()
}

// RandomTree returns a uniformly random labeled tree on n vertices via a
// random Prüfer-like attachment (each vertex v >= 1 attaches to a uniform
// earlier vertex). Deterministic in seed.
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		mustAdd(b, v, rng.Intn(v))
	}
	return b.Build()
}

// Hypergraph is an r-hypergraph: each hyperedge contains at most r vertices.
type Hypergraph struct {
	N     int     // number of vertices
	Edges [][]int // hyperedges; each sorted, size >= 2, <= R
	R     int     // rank bound r
}

// RandomHypergraph returns a random r-hypergraph with m hyperedges, each on
// between 2 and r distinct random vertices, with duplicate hyperedges
// allowed to collapse (so it may have fewer than m). Deterministic in seed.
func RandomHypergraph(n, m, r int, seed int64) *Hypergraph {
	if r < 2 {
		panic("graph: hypergraph rank must be >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]struct{}, m)
	h := &Hypergraph{N: n, R: r}
	for len(h.Edges) < m {
		size := 2 + rng.Intn(r-1)
		set := make(map[int]struct{}, size)
		for len(set) < size {
			set[rng.Intn(n)] = struct{}{}
		}
		edge := make([]int, 0, size)
		for v := range set {
			edge = append(edge, v)
		}
		sortInts(edge)
		k := fmt.Sprint(edge)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		h.Edges = append(h.Edges, edge)
	}
	return h
}

// LineGraph returns L(H): one vertex per hyperedge, two adjacent iff the
// hyperedges intersect. For an r-hypergraph, I(L(H)) <= r (§1.2).
func (h *Hypergraph) LineGraph() *Graph {
	b := NewBuilder(len(h.Edges))
	// Bucket hyperedges by vertex; all pairs within a bucket are adjacent.
	byVertex := make([][]int, h.N)
	for i, e := range h.Edges {
		for _, v := range e {
			byVertex[v] = append(byVertex[v], i)
		}
	}
	for _, bucket := range byVertex {
		for i := 0; i < len(bucket); i++ {
			for j := i + 1; j < len(bucket); j++ {
				b.TryAddEdge(bucket[i], bucket[j])
			}
		}
	}
	return b.Build()
}

// ShuffledIDs returns a copy of g with identifiers permuted uniformly at
// random (deterministic in seed). Useful for probing ID-dependence.
func ShuffledIDs(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	c := g.Clone()
	ids := make([]int, g.N())
	for i := range ids {
		ids[i] = i + 1
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if err := c.SetIDs(ids); err != nil {
		panic("graph: internal error shuffling ids: " + err.Error())
	}
	return c
}

// TargetDegreeGNM returns a random graph on n vertices whose maximum degree
// is close to (and at most) targetDelta: it draws edges uniformly, rejecting
// those that would exceed the target, aiming for average degree ~ 0.75 *
// targetDelta so that the max is typically attained. Deterministic in seed.
func TargetDegreeGNM(n, targetDelta int, seed int64) *Graph {
	m := int(math.Min(float64(n*targetDelta)*0.75/2, float64(n*(n-1)/2)))
	return RandomBoundedDegree(n, targetDelta, m, seed)
}

func mustAdd(b *Builder, u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic("graph: generator bug: " + err.Error())
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
