// Package graph provides the graph substrate for the reproduction of
// Barenboim & Elkin, "Distributed Deterministic Edge Coloring using Bounded
// Neighborhood Independence" (PODC 2011).
//
// It contains undirected simple graphs with stable edge identifiers,
// generators for every graph family the paper mentions (line graphs,
// r-hypergraph line graphs, bounded-growth graphs, the Figure-1 family),
// exact and approximate computation of the neighborhood-independence
// invariant I(G), coloring validators, and orientation utilities.
//
// Vertices are indexed 0..N-1 internally. Each vertex additionally carries a
// distinct identifier in {1..n} (the "Id" of the LOCAL model); by default
// Id(v) = v+1, and identifiers can be permuted to probe ID-dependence of
// algorithms.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is an undirected edge with canonical endpoint order U < V.
type Edge struct {
	U, V int
}

// Graph is an immutable undirected simple graph.
//
// Adjacency is stored in CSR (compressed sparse row) form: one flat
// neighbor array sliced per vertex by an offset table, with parallel flat
// arrays for incident edge ids and reverse ports. The flat layout keeps the
// whole adjacency in three contiguous allocations (cache-friendly for the
// simulator's per-round delivery sweeps) and lets reverse ports — the port a
// vertex occupies in each neighbor's list — be precomputed once at build
// time instead of rediscovered by every run.
//
// The zero value is the empty graph with no vertices. Use Builder to
// construct non-trivial graphs.
type Graph struct {
	n      int
	off    []int32 // len n+1; vertex v owns slots off[v]..off[v+1]
	nbrs   []int32 // flat neighbor indices, increasing within each vertex
	eids   []int32 // eids[s] is the edge id of the slot-s adjacency entry
	rev    []int32 // rev[off[v]+i] is the port v occupies at its i-th neighbor
	maxDeg int     // cached Δ(G)
	edges  []Edge  // edges[id] with U < V
	ids    []int   // distinct vertex identifiers, ids[v] in {1..n}
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges []Edge
	seen  map[Edge]struct{}
}

// NewBuilder returns a builder for a graph on n vertices (indexed 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{
		n:    n,
		seen: make(map[Edge]struct{}),
	}
}

// AddEdge records the undirected edge (u, v). Self-loops and duplicate edges
// are rejected with an error; the builder is unchanged on error.
func (b *Builder) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	e := canonical(u, v)
	if _, dup := b.seen[e]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[e] = struct{}{}
	b.edges = append(b.edges, e)
	return nil
}

// TryAddEdge is AddEdge that reports whether the edge was added instead of
// returning an error. It is convenient for randomized generators that simply
// retry on duplicates.
func (b *Builder) TryAddEdge(u, v int) bool {
	return b.AddEdge(u, v) == nil
}

// HasEdge reports whether the edge (u, v) has been added.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.seen[canonical(u, v)]
	return ok
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable graph. The builder remains usable.
func (b *Builder) Build() *Graph {
	g := &Graph{
		n:     b.n,
		edges: make([]Edge, len(b.edges)),
		ids:   make([]int, b.n),
	}
	copy(g.edges, b.edges)
	// Sort edges for stable, input-order-independent edge ids.
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	// CSR offsets from the degree histogram.
	g.off = make([]int32, b.n+1)
	for _, e := range g.edges {
		g.off[e.U+1]++
		g.off[e.V+1]++
	}
	for v := 0; v < b.n; v++ {
		g.off[v+1] += g.off[v]
		if d := int(g.off[v+1] - g.off[v]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	slots := g.off[b.n]
	g.nbrs = make([]int32, slots)
	g.eids = make([]int32, slots)
	g.rev = make([]int32, slots)
	// Fill both endpoints of each edge in one pass, recording reverse ports
	// as the two slots are paired. Adjacency comes out sorted by neighbor
	// index: for a vertex w, the smaller neighbors arrive from edges (x,w)
	// and the larger from edges (w,y); lexicographic edge order emits every
	// (x,w) before every (w,y) and keeps each group in increasing neighbor
	// order, so no post-sort is needed (pinned by TestCSRInvariants).
	cur := make([]int32, b.n)
	copy(cur, g.off[:b.n])
	for id, e := range g.edges {
		su, sv := cur[e.U], cur[e.V]
		cur[e.U]++
		cur[e.V]++
		g.nbrs[su] = int32(e.V)
		g.nbrs[sv] = int32(e.U)
		g.eids[su] = int32(id)
		g.eids[sv] = int32(id)
		g.rev[su] = sv - g.off[e.V]
		g.rev[sv] = su - g.off[e.U]
	}
	for v := range g.ids {
		g.ids[v] = v + 1
	}
	return g
}

func canonical(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Deg returns the degree of vertex v.
func (g *Graph) Deg(v int) int { return int(g.off[v+1] - g.off[v]) }

// MaxDegree returns Δ(G), cached at build time.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Neighbors returns the neighbor indices of v in increasing order.
// The returned slice must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.nbrs[g.off[v]:g.off[v+1]] }

// IncidentEdgeIDs returns, parallel to Neighbors(v), the edge ids of the
// edges from v to each neighbor. The returned slice must not be modified.
func (g *Graph) IncidentEdgeIDs(v int) []int32 { return g.eids[g.off[v]:g.off[v+1]] }

// ReversePorts returns, parallel to Neighbors(v), the port that v occupies
// in each neighbor's own adjacency list: for u = Neighbors(v)[i],
// Neighbors(u)[ReversePorts(v)[i]] == v. Precomputed at build time so
// message delivery translates ports in O(1) without per-edge searches.
// The returned slice must not be modified.
func (g *Graph) ReversePorts(v int) []int32 { return g.rev[g.off[v]:g.off[v+1]] }

// Edges returns the canonical edge list; edges[id] has U < V.
// The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeAt returns the edge with the given id.
func (g *Graph) EdgeAt(id int) Edge { return g.edges[id] }

// EdgeID returns the id of edge (u,v) and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return 0, false
	}
	if g.Deg(u) > g.Deg(v) {
		u, v = v, u
	}
	a := g.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	if i < len(a) && a[i] == int32(v) {
		return int(g.IncidentEdgeIDs(u)[i]), true
	}
	return 0, false
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeID(u, v)
	return ok
}

// ID returns the distinct identifier of vertex v (1-based).
func (g *Graph) ID(v int) int { return g.ids[v] }

// IDs returns a copy of the identifier assignment.
func (g *Graph) IDs() []int {
	out := make([]int, len(g.ids))
	copy(out, g.ids)
	return out
}

// SetIDs installs a custom identifier assignment. The ids must be a
// permutation of {1..n}; otherwise an error is returned and the graph is
// unchanged.
func (g *Graph) SetIDs(ids []int) error {
	if len(ids) != g.n {
		return fmt.Errorf("graph: got %d ids for %d vertices", len(ids), g.n)
	}
	seen := make([]bool, g.n+1)
	for _, id := range ids {
		if id < 1 || id > g.n || seen[id] {
			return errors.New("graph: ids must be a permutation of {1..n}")
		}
		seen[id] = true
	}
	copy(g.ids, ids)
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return &Graph{
		n:      g.n,
		off:    append([]int32(nil), g.off...),
		nbrs:   append([]int32(nil), g.nbrs...),
		eids:   append([]int32(nil), g.eids...),
		rev:    append([]int32(nil), g.rev...),
		maxDeg: g.maxDeg,
		edges:  append([]Edge(nil), g.edges...),
		ids:    append([]int(nil), g.ids...),
	}
}

// InducedSubgraph returns the subgraph induced by the vertex set keep
// (as a membership mask of length N), along with the mapping from new vertex
// indices to original ones. Vertex identifiers are inherited by rank so they
// remain a permutation of {1..n'}.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []int) {
	if len(keep) != g.n {
		panic("graph: keep mask has wrong length")
	}
	old2new := make([]int, g.n)
	var new2old []int
	for v := 0; v < g.n; v++ {
		if keep[v] {
			old2new[v] = len(new2old)
			new2old = append(new2old, v)
		} else {
			old2new[v] = -1
		}
	}
	b := NewBuilder(len(new2old))
	for _, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			_ = b.AddEdge(old2new[e.U], old2new[e.V])
		}
	}
	sub := b.Build()
	// Inherit identifier order: rank the original ids of kept vertices.
	type vi struct{ id, v int }
	ranked := make([]vi, len(new2old))
	for i, ov := range new2old {
		ranked[i] = vi{id: g.ids[ov], v: i}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].id < ranked[j].id })
	ids := make([]int, len(new2old))
	for rank, x := range ranked {
		ids[x.v] = rank + 1
	}
	if err := sub.SetIDs(ids); err != nil {
		panic("graph: internal error inheriting ids: " + err.Error())
	}
	return sub, new2old
}

// EdgeSubgraph returns the subgraph of g containing exactly the edges for
// which keepEdge[id] is true, on the same vertex set (vertices keep their
// identifiers).
func (g *Graph) EdgeSubgraph(keepEdge []bool) *Graph {
	if len(keepEdge) != len(g.edges) {
		panic("graph: keepEdge mask has wrong length")
	}
	b := NewBuilder(g.n)
	for id, e := range g.edges {
		if keepEdge[id] {
			_ = b.AddEdge(e.U, e.V)
		}
	}
	sub := b.Build()
	if err := sub.SetIDs(g.IDs()); err != nil {
		panic("graph: internal error inheriting ids: " + err.Error())
	}
	return sub
}

// LineGraph returns L(G): one vertex per edge of g, with two vertices
// adjacent iff the corresponding edges of g share an endpoint (Lemma 5.1
// context). The i-th vertex of L(G) corresponds to the edge with id i.
func (g *Graph) LineGraph() *Graph {
	b := NewBuilder(len(g.edges))
	for v := 0; v < g.n; v++ {
		ids := g.IncidentEdgeIDs(v)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				// Two incident edges may share both endpoints only in
				// multigraphs, which Builder forbids, so TryAddEdge
				// duplicates arise solely from triangle edges seen from
				// both shared endpoints.
				b.TryAddEdge(int(ids[i]), int(ids[j]))
			}
		}
	}
	return b.Build()
}

// Degrees returns the degree sequence.
func (g *Graph) Degrees() []int {
	out := make([]int, g.n)
	for v := range out {
		out[v] = g.Deg(v)
	}
	return out
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.n, len(g.edges), g.MaxDegree())
}
