package graph

import "testing"

func TestFingerprintDistinguishes(t *testing.T) {
	base := GNM(40, 120, 1)
	if got, want := base.Fingerprint(), base.Clone().Fingerprint(); got != want {
		t.Fatalf("clone fingerprint differs: %v vs %v", got, want)
	}
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint is not stable across calls")
	}

	distinct := map[Fingerprint]string{base.Fingerprint(): "base"}
	add := func(name string, g *Graph) {
		f := g.Fingerprint()
		if prev, dup := distinct[f]; dup {
			t.Fatalf("%s collides with %s: %v", name, prev, f)
		}
		distinct[f] = name
	}
	add("other seed", GNM(40, 120, 2))
	add("other size", GNM(41, 120, 1))
	add("shuffled ids", ShuffledIDs(GNM(40, 120, 1), 3))
	add("path", Path(40))
	add("cycle", Cycle(40))
	add("empty", NewBuilder(0).Build())
	add("isolated", NewBuilder(40).Build())
}

// TestFingerprintPinned pins the serialization format: a change to the hash
// input invalidates every persisted cache entry keyed by a fingerprint, so it
// must be deliberate, not accidental.
func TestFingerprintPinned(t *testing.T) {
	got := Path(3).Fingerprint().String()
	const want = "ddad06b73812c9b6963b98cd8110482a20c1fa4f839ff1a758f15d5c33720c6c"
	if got != want {
		t.Fatalf("Path(3) fingerprint changed:\n got %s\nwant %s\n(update the constant only if the format change is intentional)", got, want)
	}
}
