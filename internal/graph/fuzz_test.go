package graph

import (
	"testing"
)

// FuzzBuilder drives Builder with an arbitrary byte-encoded edge stream
// (each pair of bytes is an edge attempt on a small vertex set) and checks
// the structural invariants every consumer of the CSR layout relies on:
// duplicate/self-loop rejection, sorted adjacency, consistent edge ids,
// exact reverse ports, and EdgeID round-trips. Run with `go test -fuzz
// FuzzBuilder ./internal/graph` to explore beyond the seed corpus.
func FuzzBuilder(f *testing.F) {
	f.Add(1, []byte{})
	f.Add(5, []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 0})
	f.Add(8, []byte{0, 1, 0, 1, 3, 3, 7, 0, 250, 1})
	f.Add(16, []byte{9, 4, 4, 9, 1, 14, 0, 15, 8, 8, 2, 3, 3, 2, 5, 6})
	f.Fuzz(func(t *testing.T, n int, stream []byte) {
		if n < 0 || n > 64 {
			return
		}
		b := NewBuilder(n)
		type edge struct{ u, v int }
		want := map[edge]bool{}
		for i := 0; i+1 < len(stream); i += 2 {
			u, v := int(stream[i]), int(stream[i+1])
			added := b.TryAddEdge(u, v)
			ok := u != v && u < n && v < n
			if u > v {
				u, v = v, u
			}
			if ok && want[edge{u, v}] {
				ok = false // duplicate
			}
			if added != ok {
				t.Fatalf("TryAddEdge(%d,%d) = %v, want %v", stream[i], stream[i+1], added, ok)
			}
			if added {
				want[edge{u, v}] = true
			}
		}
		g := b.Build()
		if g.N() != n || g.M() != len(want) {
			t.Fatalf("built graph n=%d m=%d, want n=%d m=%d", g.N(), g.M(), n, len(want))
		}
		degSum := 0
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			eids := g.IncidentEdgeIDs(v)
			rev := g.ReversePorts(v)
			degSum += len(nbrs)
			for i, u := range nbrs {
				if i > 0 && nbrs[i-1] >= u {
					t.Fatalf("vertex %d: adjacency not strictly increasing", v)
				}
				if !want[edge{min(v, int(u)), max(v, int(u))}] {
					t.Fatalf("vertex %d: phantom edge to %d", v, u)
				}
				if back := g.Neighbors(int(u)); back[rev[i]] != int32(v) {
					t.Fatalf("vertex %d: reverse port at %d wrong", v, u)
				}
				if id, ok := g.EdgeID(v, int(u)); !ok || int32(id) != eids[i] {
					t.Fatalf("EdgeID(%d,%d) = %d,%v, want %d", v, u, id, ok, eids[i])
				}
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("degree sum %d != 2m", degSum)
		}
	})
}
