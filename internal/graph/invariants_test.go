package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNeighborhoodIndependenceKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K5", Complete(5), 1},  // neighborhoods are cliques
		{"C6", Cycle(6), 2},     // two neighbors, non-adjacent
		{"P4", Path(4), 2},      // middle vertices have 2 indep nbrs
		{"Star(5)", Star(5), 4}, // center sees 4 independent leaves
		{"K2,3", CompleteBipartite(2, 3), 3},
		{"Fig1(k=6)", CliquePlusPendants(6), 2}, // the paper's Figure 1
		{"C10^2", PowerOfCycle(10, 2), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NeighborhoodIndependence(tt.g); got != tt.want {
				t.Fatalf("I(G) = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestLineGraphNIAtMostTwo(t *testing.T) {
	// Lemma 5.1: I(L(G)) <= 2 for every graph G.
	for seed := int64(0); seed < 8; seed++ {
		g := GNM(25, 60, seed)
		lg := g.LineGraph()
		if lg.N() == 0 {
			continue
		}
		if got := NeighborhoodIndependence(lg); got > 2 {
			t.Fatalf("seed %d: I(L(G)) = %d > 2", seed, got)
		}
	}
}

func TestLineGraphNIProperty(t *testing.T) {
	// Property form of Lemma 5.1 over random graphs drawn by testing/quick.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		m := rng.Intn(n * (n - 1) / 2)
		lg := GNM(n, m, seed).LineGraph()
		if lg.N() == 0 {
			return true
		}
		return NeighborhoodIndependence(lg) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphNIMonotone(t *testing.T) {
	// Lemma 3.6: vertex-induced subgraphs cannot increase neighborhood
	// independence.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(16)
		g := GNM(n, rng.Intn(n*2+1), seed)
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = rng.Intn(2) == 0
		}
		sub, _ := g.InducedSubgraph(keep)
		if sub.N() == 0 {
			return true
		}
		return NeighborhoodIndependence(sub) <= NeighborhoodIndependence(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexNeighborhoodIndependenceEdgeCases(t *testing.T) {
	g := Path(2)
	if got := VertexNeighborhoodIndependence(g, 0); got != 1 {
		t.Fatalf("degree-1 vertex: I(v) = %d, want 1", got)
	}
	single := NewBuilder(1).Build()
	if got := VertexNeighborhoodIndependence(single, 0); got != 0 {
		t.Fatalf("isolated vertex: I(v) = %d, want 0", got)
	}
}

func TestFig1GrowthUnbounded(t *testing.T) {
	// Figure 1 claim: every clique vertex v has at least k = Ω(Δ) independent
	// vertices within distance 2 (the pendants), while I(G) = 2.
	k := 12
	g := CliquePlusPendants(k)
	if got := NeighborhoodIndependence(g); got != 2 {
		t.Fatalf("I(G) = %d, want 2", got)
	}
	if got := GrowthAt(g, 0, 2); got < k-1 {
		t.Fatalf("growth at clique vertex = %d, want >= %d", got, k-1)
	}
}

func TestBallVertices(t *testing.T) {
	g := Path(7) // 0-1-2-3-4-5-6
	ball := BallVertices(g, 3, 2)
	want := map[int]bool{1: true, 2: true, 4: true, 5: true}
	if len(ball) != len(want) {
		t.Fatalf("ball = %v, want keys %v", ball, want)
	}
	for _, v := range ball {
		if !want[v] {
			t.Fatalf("unexpected ball vertex %d", v)
		}
	}
}

func TestGreedyIndependentSet(t *testing.T) {
	g := Complete(6)
	all := []int{0, 1, 2, 3, 4, 5}
	if got := GreedyIndependentSetIn(g, all); len(got) != 1 {
		t.Fatalf("independent set in K6 has size %d, want 1", len(got))
	}
	e := Path(4)
	if got := GreedyIndependentSetIn(e, []int{0, 1, 2, 3}); len(got) != 2 {
		t.Fatalf("greedy IS in P4 = %v, want size 2", got)
	}
}

func TestArboricityBounds(t *testing.T) {
	lo, hi := ArboricityBounds(RandomTree(50, 2))
	if lo > 1 || hi < 1 {
		t.Fatalf("tree arboricity bounds [%d,%d] should bracket 1", lo, hi)
	}
	lo, hi = ArboricityBounds(Complete(6))
	// a(K6) = ceil(15/5) = 3.
	if lo > 3 || hi < 3 {
		t.Fatalf("K6 arboricity bounds [%d,%d] should bracket 3", lo, hi)
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.set(i)
	}
	if b.count() != 5 {
		t.Fatalf("count = %d, want 5", b.count())
	}
	if b.next(0) != 0 || b.next(1) != 63 || b.next(65) != 127 || b.next(128) != 129 {
		t.Fatal("next() scan wrong")
	}
	if b.next(130) != -1 {
		t.Fatal("next past end should be -1")
	}
	b.clear(63)
	if b.get(63) || b.count() != 4 {
		t.Fatal("clear failed")
	}
	c := b.clone()
	c.andNot(b)
	if c.count() != 0 {
		t.Fatal("andNot with self should empty the clone")
	}
}
