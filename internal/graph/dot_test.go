package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, []int{1, 2, 1}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph G {", "0 -- 1", "1 -- 2", "c1", "c2", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Plain rendering without colorings.
	sb.Reset()
	if err := WriteDOT(&sb, g, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "fillcolor") {
		t.Fatal("plain DOT should not carry colors")
	}
}

func TestWriteDOTValidatesLengths(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, []int{1}, nil); err == nil {
		t.Error("short vertex colors accepted")
	}
	if err := WriteDOT(&sb, g, nil, []int{1, 2, 3}); err == nil {
		t.Error("long edge colors accepted")
	}
}

func TestWheelDistinct(t *testing.T) {
	if wheel(0) != "gray" {
		t.Fatal("non-positive colors should be gray")
	}
	if wheel(1) == wheel(2) {
		t.Fatal("adjacent color indices share a hue")
	}
}
