package defective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/linial"
)

func TestScheduleRespectsBudget(t *testing.T) {
	for _, tc := range []struct{ k0, deg, budget int }{
		{1000, 16, 4},
		{100000, 64, 32},
		{1 << 20, 100, 50},
		{500, 20, 10},
		{1 << 16, 8, 8},
	} {
		steps := Schedule(tc.k0, tc.deg, tc.budget)
		total := 0
		k := tc.k0
		for i, s := range steps {
			if s.K != k {
				t.Fatalf("case %v: step %d palette chain broken", tc, i)
			}
			if s.NewPalette() >= k {
				t.Fatalf("case %v: step %d does not shrink", tc, i)
			}
			total += s.Budget
			k = s.NewPalette()
		}
		if total > tc.budget {
			t.Errorf("case %v: total budget %d exceeds %d", tc, total, tc.budget)
		}
	}
}

func TestGuaranteePaletteIsQuadraticInP(t *testing.T) {
	// Lemma 2.1(3) shape: palette O(p²) for defect ⌊Δ/p⌋, i.e. the product
	// defect·sqrt(palette) stays O(Δ·const).
	delta := 240
	for _, p := range []int{2, 4, 8, 16, 60} {
		palette, defect, rounds := Guarantee(1<<20, delta, delta/p)
		if defect > delta/p {
			t.Errorf("p=%d: defect %d exceeds ⌊Δ/p⌋=%d", p, defect, delta/p)
		}
		// Palette should be O(p²) with a moderate constant (see DESIGN N5).
		if palette > 2000*p*p {
			t.Errorf("p=%d: palette %d is not O(p²)", p, palette)
		}
		if rounds > 12 {
			t.Errorf("p=%d: %d rounds is not log*-like", p, rounds)
		}
	}
}

func TestVertexColoringEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"gnm-p4", graph.GNM(150, 900, 1), 4},
		{"gnm-p2", graph.GNM(150, 900, 2), 2},
		{"regular-p3", graph.RandomRegular(60, 12, 3), 3},
		{"clique-p5", graph.Complete(30), 5},
		{"cycle-p2", graph.Cycle(64), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			delta := tc.g.MaxDegree()
			res, err := VertexColoring(tc.g, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			palette, defectBound, rounds := Guarantee(tc.g.N(), delta, delta/tc.p)
			if err := graph.CheckDefectiveVertexColoring(tc.g, res.Outputs, defectBound, palette); err != nil {
				t.Fatal(err)
			}
			if res.Stats.Rounds != rounds {
				t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, rounds)
			}
			if got := graph.VertexDefect(tc.g, res.Outputs); got > delta/tc.p {
				t.Fatalf("measured defect %d exceeds ⌊Δ/p⌋ = %d", got, delta/tc.p)
			}
		})
	}
}

func TestVertexColoringRejectsBadP(t *testing.T) {
	g := graph.Cycle(10)
	if _, err := VertexColoring(g, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := VertexColoring(g, 3); err == nil {
		t.Error("p>Δ accepted")
	}
}

func TestFromColoringTheorem47(t *testing.T) {
	// Start from a legal (0-defective) O(Δ²)-coloring and reduce to a
	// d-defective O((Δ/d)²)-coloring; the chain should be short (log* M).
	g := graph.GNM(200, 2000, 7)
	delta := g.MaxDegree()
	base, err := linial.OSquaredColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	m := graph.MaxColor(base.Outputs)
	d := delta / 4
	steps, err := FromColoring(m, delta, 0, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) > 8 {
		t.Fatalf("chain from M=%d has %d steps, want log*-like", m, len(steps))
	}
	// Apply centrally.
	colors := append([]int(nil), base.Outputs...)
	for _, s := range steps {
		next := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			var nbrs []int
			for _, u := range g.Neighbors(v) {
				nbrs = append(nbrs, colors[u])
			}
			next[v] = s.Apply(colors[v], nbrs)
		}
		colors = next
	}
	if got := graph.VertexDefect(g, colors); got > d {
		t.Fatalf("defect %d exceeds d=%d", got, d)
	}
	palette := linial.FinalPalette(m, steps)
	if mc := graph.MaxColor(colors); mc > palette {
		t.Fatalf("color %d outside promised palette %d", mc, palette)
	}
}

func TestFromColoringWithCarriedDefect(t *testing.T) {
	// Theorem 4.7 with d' > 0: start from a d'-defective coloring produced
	// by one chain, then refine with the remaining budget; total defect must
	// stay within d.
	g := graph.GNM(300, 3000, 17)
	delta := g.MaxDegree()
	d := delta / 3
	dPrime := delta / 6
	// Stage 1: a d'-defective coloring.
	stage1 := Schedule(g.N(), delta, dPrime)
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = g.ID(v)
	}
	apply := func(steps []linial.Step) {
		for _, s := range steps {
			next := make([]int, g.N())
			for v := 0; v < g.N(); v++ {
				var nbrs []int
				for _, u := range g.Neighbors(v) {
					nbrs = append(nbrs, colors[u])
				}
				next[v] = s.Apply(colors[v], nbrs)
			}
			colors = next
		}
	}
	apply(stage1)
	m := linial.FinalPalette(g.N(), stage1)
	defect1 := graph.VertexDefect(g, colors)
	if defect1 > dPrime {
		t.Fatalf("stage 1 defect %d exceeds d'=%d", defect1, dPrime)
	}
	// Stage 2: refine from the M-coloring with the remaining budget.
	stage2, err := FromColoring(m, delta, dPrime, d)
	if err != nil {
		t.Fatal(err)
	}
	apply(stage2)
	if got := graph.VertexDefect(g, colors); got > d {
		t.Fatalf("total defect %d exceeds d=%d", got, d)
	}
	if mc := graph.MaxColor(colors); mc > linial.FinalPalette(m, stage2) {
		t.Fatalf("palette %d outside promise", mc)
	}
}

func TestFromColoringRejectsInvertedDefects(t *testing.T) {
	if _, err := FromColoring(100, 10, 5, 3); err == nil {
		t.Error("d' > d accepted")
	}
}

func TestDefectivePropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		m := rng.Intn(n * 3)
		g := graph.GNM(n, m, seed)
		delta := g.MaxDegree()
		if delta < 2 {
			return true
		}
		p := 1 + rng.Intn(delta)
		res, err := VertexColoring(g, p)
		if err != nil {
			return false
		}
		return graph.VertexDefect(g, res.Outputs) <= delta/p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// ----- Corollary 5.4 tests -----

func TestEdgeColoringO1Rounds(t *testing.T) {
	g := graph.GNM(100, 600, 5)
	delta := g.MaxDegree()
	for _, pPrime := range []int{2, 3, 5, delta} {
		res, err := EdgeColoring(g, pPrime)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Rounds != 1 {
			t.Fatalf("p'=%d: rounds = %d, want 1 (O(1))", pPrime, res.Stats.Rounds)
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		bound := 4 * ((delta + pPrime - 1) / pPrime)
		if err := graph.CheckDefectiveEdgeColoring(g, colors, bound, pPrime*pPrime); err != nil {
			t.Fatalf("p'=%d: %v", pPrime, err)
		}
	}
}

func TestEdgeColoringDefectBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		m := rng.Intn(n * 2)
		g := graph.GNM(n, m, seed)
		if g.M() == 0 {
			return true
		}
		delta := g.MaxDegree()
		pPrime := 1 + rng.Intn(delta)
		res, err := EdgeColoring(g, pPrime)
		if err != nil {
			return false
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return false
		}
		bound := 4 * ((delta + pPrime - 1) / pPrime)
		return graph.EdgeDefect(g, colors) <= bound &&
			graph.MaxColor(colors) <= pPrime*pPrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeColoringRejectsBadP(t *testing.T) {
	if _, err := EdgeColoring(graph.Cycle(5), 0); err == nil {
		t.Error("p'=0 accepted")
	}
}

func TestLargePEdgeColoringIsLegal(t *testing.T) {
	// With p' = Δ the bound is 4⌈Δ/Δ⌉ = 4; with p' >= 2Δ-1... not claimed.
	// But a sanity check: bigger p' should give smaller measured defect.
	g := graph.GNM(80, 400, 9)
	delta := g.MaxDegree()
	prev := 1 << 30
	for _, pPrime := range []int{2, delta / 2, delta} {
		if pPrime < 1 {
			continue
		}
		res, err := EdgeColoring(g, pPrime)
		if err != nil {
			t.Fatal(err)
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		d := graph.EdgeDefect(g, colors)
		if d > prev {
			t.Fatalf("defect grew from %d to %d as p' increased to %d", prev, d, pPrime)
		}
		prev = d
	}
}
