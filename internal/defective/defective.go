// Package defective implements the defective-coloring subroutines of Kuhn
// [19] that the paper builds on:
//
//   - Lemma 2.1(3): a ⌊Δ/p⌋-defective O(p²)-vertex-coloring in O(log* n)
//     rounds (plus an O(log log Δ) tail; see the Schedule doc comment),
//   - Theorem 4.7: a d-defective O(((Δ-d′)/(d+1-d′))²)-coloring computed from
//     a given d′-defective M-coloring in O(log* M) rounds,
//   - Corollary 5.4: a 4⌈Δ/p′⌉-defective p′²-edge-coloring in O(1) rounds.
//
// The vertex routines reuse the polynomial cover-free machinery of package
// linial: a defective step is a Linial step whose field size q is chosen so
// that the best evaluation point collides with at most Budget differently-
// colored neighbors; same-colored neighbors are skipped and accounted as the
// carried defect (Theorem 4.7's d′ term), so per-step budgets add up to the
// total defect bound.
package defective

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/wire"
)

// Schedule returns the reduction schedule that takes a k0-coloring of a
// graph with maximum degree ≤ degBound to a defective coloring whose defect
// *increase* is at most defectBudget. It consists of the legal Linial chain
// down to the O(degBound²) fixed point followed by defective steps whose
// budgets halve geometrically.
//
// The paper's source [19] achieves the same guarantee in log* n + O(1)
// rounds using optimal d-cover-free families whose known constructions are
// non-explicit (probabilistic existence + unbounded local search). The
// explicit polynomial families used here add an O(log log degBound) tail of
// extra rounds — substitution N5 recorded in DESIGN.md; every palette and
// defect bound is preserved exactly as computed by Guarantee.
func Schedule(k0, degBound, defectBudget int) []linial.Step {
	steps := linial.LegalSchedule(k0, degBound)
	k := linial.FinalPalette(k0, steps)
	b := defectBudget
	for b >= 1 {
		s, ok := defectiveStep(k, degBound, (b+1)/2)
		if !ok || s.NewPalette() >= k {
			break
		}
		steps = append(steps, s)
		k = s.NewPalette()
		b -= s.Budget
	}
	return steps
}

// defectiveStep finds the single step from palette k that introduces at most
// delta new collisions per vertex while minimizing the new palette q²: for
// each candidate polynomial degree t, the budget constraint forces
// q > t·degBound/(delta+1) and representability requires q^(t+1) >= k; the
// smallest feasible field wins.
func defectiveStep(k, degBound, delta int) (linial.Step, bool) {
	if delta < 1 {
		return linial.Step{}, false
	}
	var best linial.Step
	found := false
	for t := 1; t <= 64; t++ {
		q := linial.NextPrime(maxInt(t*degBound/(delta+1)+1, t+2))
		if !powAtLeast(q, t+1, k) {
			continue
		}
		if !found || q < best.Q {
			best = linial.Step{K: k, Q: q, T: t, Budget: t * degBound / q}
			found = true
		}
	}
	return best, found
}

// powAtLeast reports whether q^e >= k without overflowing.
func powAtLeast(q, e, k int) bool {
	const maxInt = int(^uint(0) >> 1)
	acc := 1
	for i := 0; i < e; i++ {
		if acc > maxInt/q {
			return true
		}
		acc *= q
		if acc >= k {
			return true
		}
	}
	return acc >= k
}

// Guarantee reports the provable outcome of Schedule(k0, degBound, budget):
// the final palette size, the worst-case defect increase, and the number of
// communication rounds (= schedule length).
func Guarantee(k0, degBound, defectBudget int) (palette, defect, rounds int) {
	steps := Schedule(k0, degBound, defectBudget)
	palette = linial.FinalPalette(k0, steps)
	for _, s := range steps {
		defect += s.Budget
	}
	return palette, defect, len(steps)
}

// VertexColoring computes Lemma 2.1(3) distributedly: a ⌊Δ/p⌋-defective
// O(p²)-vertex-coloring of g, for 1 <= p <= Δ. Vertices start from their
// identifiers.
func VertexColoring(g *graph.Graph, p int, opts ...dist.Option) (*dist.Result[int], error) {
	delta := g.MaxDegree()
	if p < 1 || (delta > 0 && p > delta) {
		return nil, fmt.Errorf("defective: p=%d outside [1,Δ=%d]", p, delta)
	}
	steps := Schedule(g.N(), delta, delta/p)
	return dist.Run(g, func(v dist.Process) int {
		return linial.RunChain(steps, v.ID(), linial.BroadcastExchange(v))
	}, opts...)
}

// FromColoring implements Theorem 4.7 as pure per-vertex logic: given that
// the caller holds a d′-defective M-coloring (colors in 1..M) and wants
// total defect at most d (d >= d′), it returns the schedule whose defect
// increase is d-d′; running it via linial.RunChain yields the new coloring.
// The round count is O(log* M) plus the explicit-construction tail.
func FromColoring(m, degBound, dPrime, d int) ([]linial.Step, error) {
	if dPrime > d {
		return nil, fmt.Errorf("defective: carried defect d'=%d exceeds target d=%d", dPrime, d)
	}
	return Schedule(m, degBound, d-dPrime), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ----- Corollary 5.4: Kuhn's O(1)-round defective edge coloring -----

// EdgeColoringStep runs Kuhn's one-exchange defective edge coloring from
// inside a vertex process: every vertex labels its incident edges with
// labels in {1..pPrime} such that no label repeats more than ⌈Δ/p′⌉ times,
// endpoints swap labels, and the edge color is the pair of labels ordered by
// endpoint identifier. It uses exactly one communication round and returns
// the per-port colors, drawn from a palette of size p′².
//
// Guarantee (Cor 5.4): the result is a 4⌈Δ/p′⌉-defective p′²-edge-coloring.
func EdgeColoringStep(v dist.Process, pPrime int) []int {
	delta := v.MaxDegree()
	chunk := (delta + pPrime - 1) / pPrime // ⌈Δ/p′⌉ edges per label
	if chunk == 0 {
		chunk = 1
	}
	deg := v.Deg()
	out := make([][]byte, deg)
	myLabel := make([]int, deg)
	for port := 0; port < deg; port++ {
		myLabel[port] = port/chunk + 1
		out[port] = wire.EncodeInts(myLabel[port])
	}
	in := v.Round(out)
	colors := make([]int, deg)
	for port := 0; port < deg; port++ {
		vals, err := wire.DecodeInts(in[port], 1)
		if err != nil {
			panic("defective: bad label message: " + err.Error())
		}
		theirLabel := vals[0]
		a, b := myLabel[port], theirLabel
		if v.NeighborID(port) < v.ID() {
			a, b = b, a
		}
		colors[port] = (a-1)*pPrime + b
	}
	return colors
}

// EdgeColoring runs EdgeColoringStep on the whole graph and returns the
// per-vertex port colorings; use graph.MergePortColors for per-edge colors.
func EdgeColoring(g *graph.Graph, pPrime int, opts ...dist.Option) (*dist.Result[[]int], error) {
	if pPrime < 1 {
		return nil, fmt.Errorf("defective: p'=%d must be positive", pPrime)
	}
	return dist.Run(g, func(v dist.Process) []int {
		return EdgeColoringStep(v, pPrime)
	}, opts...)
}
