package linial

// NextPrime returns the smallest prime >= n (and >= 2). The field sizes used
// by the reduction schedules are at most a small multiple of Δ·log n, so
// trial division is more than fast enough and keeps the code dependency-free.
func NextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for {
		if isPrime(n) {
			return n
		}
		n += 2
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}
