package linial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/graph"
)

func TestNextPrime(t *testing.T) {
	tests := []struct{ in, want int }{
		{-5, 2}, {0, 2}, {1, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11},
		{13, 13}, {14, 17}, {100, 101}, {7908, 7919},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.in); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 97: true, 7919: true}
	for n := -3; n < 100; n++ {
		want := primes[n]
		if !want {
			// brute check
			want = n >= 2
			for d := 2; d*d <= n; d++ {
				if n%d == 0 {
					want = false
					break
				}
			}
		}
		if got := isPrime(n); got != want {
			t.Errorf("isPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLegalScheduleShapes(t *testing.T) {
	// Schedule from n=10^6 at Δ=4 should be very short (log* behavior) and
	// end at an O(Δ²) palette.
	steps := LegalSchedule(1_000_000, 4)
	if len(steps) == 0 || len(steps) > 6 {
		t.Fatalf("schedule length %d, want small log*-like count", len(steps))
	}
	final := FinalPalette(1_000_000, steps)
	if final > 100*4*4 {
		t.Fatalf("final palette %d not O(Δ²) for Δ=4", final)
	}
	// Palettes strictly decrease along the schedule.
	k := 1_000_000
	for i, s := range steps {
		if s.K != k {
			t.Fatalf("step %d expects K=%d, chain has %d", i, s.K, k)
		}
		if s.NewPalette() >= k {
			t.Fatalf("step %d does not shrink palette (%d -> %d)", i, k, s.NewPalette())
		}
		if s.Q <= s.T {
			t.Fatalf("step %d has q=%d <= t=%d", i, s.Q, s.T)
		}
		k = s.NewPalette()
	}
}

func TestLegalScheduleLogStarGrowth(t *testing.T) {
	// Doubling the exponent of the starting palette should add O(1) steps.
	s1 := LegalSchedule(1<<16, 8)
	s2 := LegalSchedule(1<<32, 8)
	if len(s2) > len(s1)+2 {
		t.Fatalf("schedule grew too fast: %d vs %d", len(s2), len(s1))
	}
}

func TestStepApplyBounds(t *testing.T) {
	s, ok := legalStep(1000, 5)
	if !ok {
		t.Fatal("no step found")
	}
	got := s.Apply(700, []int{1, 2, 3, 4, 5})
	if got < 1 || got > s.NewPalette() {
		t.Fatalf("color %d outside 1..%d", got, s.NewPalette())
	}
	// Deterministic.
	if again := s.Apply(700, []int{1, 2, 3, 4, 5}); again != got {
		t.Fatal("Apply is not deterministic")
	}
}

func TestStepApplyPanicsOnBadColor(t *testing.T) {
	s, _ := legalStep(100, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-palette color")
		}
	}()
	s.Apply(101, nil)
}

// TestOneStepPreservesLegality exercises the single-round guarantee: from a
// legal coloring, one legal step yields a legal coloring with palette q².
func TestOneStepPreservesLegality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := graph.GNM(n, m, seed)
		steps := LegalSchedule(n, g.MaxDegree())
		if len(steps) == 0 {
			return true
		}
		s := steps[0]
		// Initial coloring: identifiers (legal trivially).
		colors := make([]int, n)
		for v := range colors {
			colors[v] = g.ID(v)
		}
		next := make([]int, n)
		for v := 0; v < n; v++ {
			var nbrs []int
			for _, u := range g.Neighbors(v) {
				nbrs = append(nbrs, colors[u])
			}
			next[v] = s.Apply(colors[v], nbrs)
		}
		if graph.MaxColor(next) > s.NewPalette() {
			return false
		}
		return graph.CheckVertexColoring(g, next) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOSquaredColoringEndToEnd(t *testing.T) {
	families := map[string]*graph.Graph{
		"gnm":    graph.GNM(200, 800, 1),
		"cycle":  graph.Cycle(101),
		"clique": graph.Complete(12),
		"tree":   graph.RandomTree(150, 2),
		"star":   graph.Star(40),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			res, err := OSquaredColoring(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
				t.Fatal(err)
			}
			d := g.MaxDegree()
			if d == 0 {
				return
			}
			if max := graph.MaxColor(res.Outputs); max > 40*d*d+50 {
				t.Fatalf("palette %d is not O(Δ²) for Δ=%d", max, d)
			}
			steps := LegalSchedule(g.N(), d)
			if res.Stats.Rounds != len(steps) {
				t.Fatalf("rounds = %d, want schedule length %d", res.Stats.Rounds, len(steps))
			}
			// O(log n) message size: colors fit in a few varint bytes.
			if res.Stats.MaxMessageBytes > 8 {
				t.Fatalf("max message %dB, want small", res.Stats.MaxMessageBytes)
			}
		})
	}
}

func TestOSquaredColoringShuffledIDs(t *testing.T) {
	g := graph.ShuffledIDs(graph.GNM(120, 500, 3), 99)
	res, err := OSquaredColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
}

func TestRunChainMatchesDistributedRun(t *testing.T) {
	// The pure-logic chain applied centrally must equal the distributed run.
	g := graph.GNM(60, 200, 5)
	steps := LegalSchedule(g.N(), g.MaxDegree())
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = g.ID(v)
	}
	for _, s := range steps {
		next := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			var nbrs []int
			for _, u := range g.Neighbors(v) {
				nbrs = append(nbrs, colors[u])
			}
			next[v] = s.Apply(colors[v], nbrs)
		}
		colors = next
	}
	for _, engine := range []dist.Engine{dist.Goroutines, dist.Lockstep} {
		res, err := OSquaredColoring(g, dist.WithEngine(engine))
		if err != nil {
			t.Fatal(err)
		}
		for v := range colors {
			if colors[v] != res.Outputs[v] {
				t.Fatalf("engine %v, vertex %d: central %d vs distributed %d",
					engine, v, colors[v], res.Outputs[v])
			}
		}
	}
}

func TestPowAtLeast(t *testing.T) {
	if !powAtLeast(2, 10, 1024) || powAtLeast(2, 9, 1024) {
		t.Fatal("powAtLeast wrong around 2^10")
	}
	if !powAtLeast(3, 40, 1<<62) {
		t.Fatal("powAtLeast must not overflow")
	}
}

func TestCoeffsRoundTrip(t *testing.T) {
	q, tdeg := 7, 3
	for x := 0; x < q*q*q*q; x += 13 {
		cs := coeffs(x, q, tdeg)
		back := 0
		for i := len(cs) - 1; i >= 0; i-- {
			back = back*q + cs[i]
		}
		if back != x {
			t.Fatalf("coeffs(%d) round trip gave %d", x, back)
		}
	}
}
