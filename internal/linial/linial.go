// Package linial implements Linial's iterated color reduction (Lemma 2.1(1)
// of the paper: a legal O(Δ²)-vertex-coloring in log* n + O(1) rounds) and
// the polynomial cover-free set families that power it. The same machinery,
// with a nonzero per-step collision budget, yields the defective colorings of
// Kuhn [19] used by Lemma 2.1(3) and Theorem 4.7 (see package defective).
//
// # Construction
//
// A color x ∈ {0..k-1} is interpreted as a polynomial p_x of degree ≤ t over
// the field Z_q (base-q digits of x as coefficients, so q^(t+1) ≥ k ensures
// distinct colors give distinct polynomials). The vertex's "set" in the
// cover-free family is the graph of the polynomial {(a, p_x(a)) : a ∈ Z_q}.
// Two distinct polynomials agree on at most t points, so the sets of
// differently-colored vertices intersect in ≤ t points.
//
//   - Legal step (budget 0): with q > t·Λ, a vertex has some point (a,p(a))
//     hit by none of its ≤ Λ differently-colored neighbors; choosing it
//     yields a legal q²-coloring in one round.
//   - Defective step (budget δ): with q ≥ 2·t·Λ/δ, the point minimizing
//     agreements has ≤ ⌊t·Λ/q⌋ ≤ δ of them, so at most δ neighbors can end
//     up with the same new color; one round yields a coloring whose defect
//     grew by at most δ.
//
// Iterating legal steps from palette n reaches the O(Δ²) fixed point after
// log* n + O(1) rounds (each step maps k to roughly (Δ·log_Δ k)²).
package linial

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Step describes one color-reduction round. All vertices must apply the same
// Step in the same round (the schedule is a deterministic function of global
// knowledge, so each vertex computes it locally).
type Step struct {
	K      int // palette size expected on input (colors in 1..K)
	Q      int // field size (prime)
	T      int // maximum polynomial degree; q^(T+1) >= K and distinct colors give distinct polynomials
	Budget int // number of same-color collisions this step may introduce (0 = legal)
}

// NewPalette returns the palette size after applying the step.
func (s Step) NewPalette() int { return s.Q * s.Q }

// LegalSchedule returns the sequence of legal (budget-0) reduction steps that
// takes a k0-coloring of a graph with maximum degree ≤ degBound down to the
// O(degBound²) fixed point. The schedule length is log*(k0) + O(1).
func LegalSchedule(k0, degBound int) []Step {
	if degBound < 1 {
		degBound = 1
	}
	var steps []Step
	k := k0
	for {
		s, ok := legalStep(k, degBound)
		if !ok || s.NewPalette() >= k {
			return steps
		}
		steps = append(steps, s)
		k = s.NewPalette()
	}
}

// legalStep finds the cheapest legal step from palette k: the minimal degree
// t such that, with q = NextPrime(t·degBound), polynomials of degree ≤ t over
// Z_q can represent k distinct colors.
func legalStep(k, degBound int) (Step, bool) {
	for t := 1; t <= 64; t++ {
		q := NextPrime(maxInt(t*degBound+1, t+2))
		if powAtLeast(q, t+1, k) {
			return Step{K: k, Q: q, T: t, Budget: 0}, true
		}
	}
	return Step{}, false
}

// Apply computes the vertex's new color (1-based, in 1..s.NewPalette()) from
// its own current color and the current colors of its (relevant) neighbors.
// Neighbors whose color equals the vertex's own are skipped: in a legal
// chain they cannot exist; in a defective chain they are the already-spent
// defect, which the caller accounts separately (Theorem 4.7's d′ term).
func (s Step) Apply(own int, nbrs []int) int {
	if own < 1 || own > s.K {
		panic(fmt.Sprintf("linial: color %d outside palette 1..%d", own, s.K))
	}
	mine := coeffs(own-1, s.Q, s.T)
	// conflicts[a] = number of differently-colored neighbors whose
	// polynomial agrees with ours at point a.
	conflicts := make([]int, s.Q)
	scratch := make([]int, s.T+1)
	for _, nc := range nbrs {
		if nc == own {
			continue
		}
		other := coeffsInto(scratch, nc-1, s.Q, s.T)
		for a := 0; a < s.Q; a++ {
			if evalPoly(mine, a, s.Q) == evalPoly(other, a, s.Q) {
				conflicts[a]++
			}
		}
	}
	bestA, bestC := 0, conflicts[0]
	for a := 1; a < s.Q; a++ {
		if conflicts[a] < bestC {
			bestA, bestC = a, conflicts[a]
		}
	}
	if bestC > s.Budget {
		// The pigeonhole guarantee (≤ ⌊T·Λ/Q⌋ ≤ Budget) was violated, which
		// means the caller fed more neighbors than the degree bound assumed.
		panic(fmt.Sprintf("linial: %d conflicts at best point exceed budget %d (q=%d t=%d)",
			bestC, s.Budget, s.Q, s.T))
	}
	return bestA*s.Q + evalPoly(mine, bestA, s.Q) + 1
}

// Exchange abstracts one broadcast round: send own color, receive the colors
// of the relevant neighbors (callers filter to the subgraph they operate on).
type Exchange func(own int) []int

// RunChain applies the steps in order, starting from the 1-based color
// initial, using one exchange per step, and returns the final color.
func RunChain(steps []Step, initial int, exch Exchange) int {
	color := initial
	for _, s := range steps {
		nbrs := exch(color)
		color = s.Apply(color, nbrs)
	}
	return color
}

// FinalPalette returns the palette after running all steps starting from k0.
func FinalPalette(k0 int, steps []Step) int {
	k := k0
	for _, s := range steps {
		k = s.NewPalette()
	}
	return k
}

// OSquaredColoring runs the complete distributed protocol on g: every vertex
// starts with its identifier as its color and runs the legal chain, producing
// a legal O(Δ²)-coloring in log*(n) + O(1) rounds (Lemma 2.1(1)).
func OSquaredColoring(g *graph.Graph, opts ...dist.Option) (*dist.Result[int], error) {
	steps := LegalSchedule(g.N(), g.MaxDegree())
	return dist.Run(g, func(v dist.Process) int {
		return RunChain(steps, v.ID(), BroadcastExchange(v))
	}, opts...)
}

// BroadcastExchange returns an Exchange that broadcasts the color to all
// neighbors and collects all their colors (the whole-graph case).
func BroadcastExchange(v dist.Process) Exchange {
	return func(own int) []int {
		in := v.Broadcast(wire.EncodeInts(own))
		out := make([]int, 0, len(in))
		for _, msg := range in {
			if msg == nil {
				continue
			}
			vals, err := wire.DecodeInts(msg, 1)
			if err != nil {
				panic("linial: bad color message: " + err.Error())
			}
			out = append(out, vals[0])
		}
		return out
	}
}

func coeffs(x, q, t int) []int {
	return coeffsInto(make([]int, t+1), x, q, t)
}

func coeffsInto(dst []int, x, q, t int) []int {
	for i := 0; i <= t; i++ {
		dst[i] = x % q
		x /= q
	}
	return dst
}

func evalPoly(cs []int, a, q int) int {
	acc := 0
	for i := len(cs) - 1; i >= 0; i-- {
		acc = (acc*a + cs[i]) % q
	}
	return acc
}

// powAtLeast reports whether q^e >= k without overflowing.
func powAtLeast(q, e, k int) bool {
	const maxInt = int(^uint(0) >> 1)
	acc := 1
	for i := 0; i < e; i++ {
		if acc > maxInt/q {
			return true // acc*q would overflow, so it certainly exceeds k
		}
		acc *= q
		if acc >= k {
			return true
		}
	}
	return acc >= k
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
