package linial

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// BenchmarkOSquaredByN shows the log* n round shape of Linial's algorithm:
// the schedule length (= rounds) stays essentially flat as n grows by 16×.
func BenchmarkOSquaredByN(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.RandomRegular(n, 8, int64(n))
			for i := 0; i < b.N; i++ {
				res, err := OSquaredColoring(g)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.Rounds), "rounds")
					b.ReportMetric(float64(graph.MaxColor(res.Outputs)), "palette")
				}
			}
		})
	}
}

// BenchmarkScheduleComputation measures the purely local cost of computing
// a reduction schedule (every vertex does this in zero rounds).
func BenchmarkScheduleComputation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if steps := LegalSchedule(1<<30, 64); len(steps) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkApply measures one vertex's per-round recoloring work at a
// realistic degree.
func BenchmarkApply(b *testing.B) {
	steps := LegalSchedule(1<<20, 32)
	s := steps[0]
	nbrs := make([]int, 32)
	for i := range nbrs {
		nbrs[i] = i*31 + 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(1000, nbrs)
	}
}
