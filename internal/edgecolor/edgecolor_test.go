package edgecolor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

func mergedColors(t *testing.T, g *graph.Graph, res *dist.Result[[]int]) []int {
	t.Helper()
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	return colors
}

func TestDefectiveEdgeColoringBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		b, p int
	}{
		{"gnm-b2p4", graph.GNM(80, 640, 1), 2, 4},
		{"gnm-b1p8", graph.GNM(80, 640, 2), 1, 8},
		{"regular-b2p3", graph.RandomRegular(48, 12, 3), 2, 3},
		{"clique-b1p4", graph.Complete(24), 1, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			delta := g.MaxDegree()
			res, err := DefectiveEdgeColoring(g, tc.b, tc.p, Wide)
			if err != nil {
				t.Fatal(err)
			}
			colors := mergedColors(t, g, res)
			bound := DefectiveEdgeBound(delta, tc.b, tc.p)
			if err := graph.CheckDefectiveEdgeColoring(g, colors, bound, tc.p); err != nil {
				t.Fatal(err)
			}
			// Round cost: labeling + ψ window = 1 + (bp)².
			pp := tc.b * tc.p
			if res.Stats.Rounds > 1+pp*pp {
				t.Fatalf("rounds = %d exceed 1+(bp)² = %d", res.Stats.Rounds, 1+pp*pp)
			}
		})
	}
}

func TestDefectiveEdgeShortModeMatchesWide(t *testing.T) {
	g := graph.GNM(50, 300, 7)
	resW, err := DefectiveEdgeColoring(g, 2, 3, Wide)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := DefectiveEdgeColoring(g, 2, 3, Short)
	if err != nil {
		t.Fatal(err)
	}
	cw := mergedColors(t, g, resW)
	cs := mergedColors(t, g, resS)
	for id := range cw {
		if cw[id] != cs[id] {
			t.Fatalf("edge %d: wide %d vs short %d", id, cw[id], cs[id])
		}
	}
	// Short mode trades rounds for message size.
	if resS.Stats.Rounds <= resW.Stats.Rounds {
		t.Fatalf("short mode rounds %d not larger than wide %d", resS.Stats.Rounds, resW.Stats.Rounds)
	}
	if resS.Stats.MaxMessageBytes > resW.Stats.MaxMessageBytes {
		t.Fatalf("short mode max message %dB exceeds wide %dB",
			resS.Stats.MaxMessageBytes, resW.Stats.MaxMessageBytes)
	}
}

func TestDefectiveEdgeValidation(t *testing.T) {
	g := graph.Cycle(10)
	if _, err := DefectiveEdgeColoring(g, 0, 2, Wide); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := DefectiveEdgeColoring(g, 3, 3, Wide); err == nil {
		t.Error("b·p>Δ accepted")
	}
}

func edgePlans(t *testing.T, delta int) map[string]*core.Plan {
	t.Helper()
	plans := map[string]*core.Plan{}
	if pl, err := core.AutoPlan(delta, 2, 4, 4, true); err == nil {
		plans["b4p4"] = pl
	}
	if pl, err := core.AutoPlan(delta, 2, 2, 8, true); err == nil {
		plans["b2p8"] = pl
	}
	if pl, err := core.LinearColorsPlan(delta, 2, 1.2, true); err == nil {
		plans["linear"] = pl
	}
	if len(plans) == 0 {
		t.Fatalf("no valid plans for Δ=%d", delta)
	}
	return plans
}

func TestLegalEdgeColoringEndToEnd(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnm-dense":  graph.GNM(64, 640, 4),
		"gnm-sparse": graph.GNM(128, 256, 5),
		"regular":    graph.RandomRegular(48, 16, 6),
		"tree":       graph.RandomTree(128, 7),
		"clique":     graph.Complete(16),
		"bipartite":  graph.CompleteBipartite(10, 14),
	}
	for gname, g := range graphs {
		for pname, pl := range edgePlans(t, g.MaxDegree()) {
			t.Run(gname+"/"+pname, func(t *testing.T) {
				res, err := LegalEdgeColoring(g, pl, Wide)
				if err != nil {
					t.Fatal(err)
				}
				colors := mergedColors(t, g, res)
				if err := graph.CheckEdgeColoring(g, colors); err != nil {
					t.Fatal(err)
				}
				if mc := graph.MaxColor(colors); mc > pl.TotalPalette() {
					t.Fatalf("color %d outside promised palette %d", mc, pl.TotalPalette())
				}
				if want := Rounds(g.N(), pl, Wide); res.Stats.Rounds > want {
					t.Fatalf("rounds = %d exceed bound %d", res.Stats.Rounds, want)
				}
			})
		}
	}
}

func TestLegalEdgeColoringShortMessages(t *testing.T) {
	// Theorem 5.5: the short-message variant keeps messages O(log n).
	g := graph.GNM(60, 480, 8)
	pl, err := core.AutoPlan(g.MaxDegree(), 2, 4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LegalEdgeColoring(g, pl, Short)
	if err != nil {
		t.Fatal(err)
	}
	colors := mergedColors(t, g, res)
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		t.Fatal(err)
	}
	// Short mode: every message carries O(1) varint values (no p-vectors),
	// except P-R used-set reports bounded by the small leaf degree.
	if res.Stats.MaxMessageBytes > 4*pl.LeafBound()+8 {
		t.Fatalf("short-mode max message %dB too large", res.Stats.MaxMessageBytes)
	}
}

func TestLegalEdgeColoringRejectsVertexPlan(t *testing.T) {
	g := graph.Cycle(10)
	pl, err := core.AutoPlan(16, 2, 2, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LegalEdgeColoring(g, pl, Wide); err == nil {
		t.Error("vertex-mode plan accepted")
	}
	plSmall, err := core.AutoPlan(1, 2, 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LegalEdgeColoring(graph.Complete(8), plSmall, Wide); err == nil {
		t.Error("undersized plan accepted")
	}
}

func TestLegalEdgeColoringProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		m := rng.Intn(3*n + 1)
		g := graph.GNM(n, m, seed)
		if g.M() == 0 {
			return true
		}
		pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 4, true)
		if err != nil {
			return false
		}
		res, err := LegalEdgeColoring(g, pl, Wide)
		if err != nil {
			return false
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return false
		}
		return graph.CheckEdgeColoring(g, colors) == nil &&
			graph.MaxColor(colors) <= pl.TotalPalette()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOnLineGraphLemma52(t *testing.T) {
	g := graph.GNM(40, 200, 9)
	sim, err := OnLineGraph(g, func(v dist.Process) int {
		// Trivial 1-round protocol: max of own and neighbor ids.
		in := v.Broadcast([]byte{1})
		_ = in
		return v.ID()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.EdgeColors) != g.M() {
		t.Fatalf("got %d edge outputs for %d edges", len(sim.EdgeColors), g.M())
	}
	if sim.SimulatedRounds != 2*sim.Native.Rounds+1 {
		t.Fatalf("simulated rounds %d != 2T+1", sim.SimulatedRounds)
	}
	if sim.SimulatedMaxMessageBytes != g.MaxDegree()*sim.Native.MaxMessageBytes {
		t.Fatal("simulated message bound not ×Δ")
	}
}

func TestViaLineGraphSimulationTheorem53(t *testing.T) {
	g := graph.GNM(48, 240, 10)
	lg := g.LineGraph()
	pl, err := core.AutoPlan(lg.MaxDegree(), 2, 2, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ViaLineGraphSimulation(g, pl, core.StartAux)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckEdgeColoring(g, sim.EdgeColors); err != nil {
		t.Fatal(err)
	}
	if mc := graph.MaxColor(sim.EdgeColors); mc > pl.TotalPalette() {
		t.Fatalf("palette %d exceeds bound %d", mc, pl.TotalPalette())
	}
	// Edge-mode plan must be rejected.
	plE, err := core.AutoPlan(lg.MaxDegree(), 2, 2, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ViaLineGraphSimulation(g, plE, core.StartAux); err == nil {
		t.Error("edge-mode plan accepted by simulation path")
	}
}

func TestRandomizedEdgeColoringCor62(t *testing.T) {
	g := graph.GNM(96, 1400, 11) // Δ well above ln n
	res, err := RandomizedEdgeColoring(g, 4, 4, 8, Wide, dist.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	colors := mergedColors(t, g, res)
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		t.Fatal(err)
	}
	bound, err := RandomizedPaletteBound(g, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mc := graph.MaxColor(colors); mc > bound {
		t.Fatalf("color %d outside palette bound %d", mc, bound)
	}
}

func TestRandomizedEdgeColoringSmallDelta(t *testing.T) {
	g := graph.Cycle(64) // Δ=2 <= ln n: deterministic fallback
	res, err := RandomizedEdgeColoring(g, 1, 2, 8, Wide)
	if err != nil {
		t.Fatal(err)
	}
	colors := mergedColors(t, g, res)
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestTradeoffEdgeColoringCor63(t *testing.T) {
	g := graph.GNM(64, 960, 12)
	delta := g.MaxDegree()
	prevRounds := 0
	for _, classDeg := range []int{delta, delta / 2, delta / 4} {
		if classDeg < 8 {
			continue
		}
		res, err := TradeoffEdgeColoring(g, 2, 4, classDeg, Wide)
		if err != nil {
			t.Fatal(err)
		}
		colors := mergedColors(t, g, res)
		if err := graph.CheckEdgeColoring(g, colors); err != nil {
			t.Fatalf("classDeg=%d: %v", classDeg, err)
		}
		bound, err := TradeoffPaletteBound(g, 2, 4, classDeg)
		if err != nil {
			t.Fatal(err)
		}
		if mc := graph.MaxColor(colors); mc > bound {
			t.Fatalf("classDeg=%d: color %d outside bound %d", classDeg, mc, bound)
		}
		_ = prevRounds
		prevRounds = res.Stats.Rounds
	}
}

func TestTradeoffEdgeValidation(t *testing.T) {
	g := graph.Complete(12)
	if _, err := TradeoffEdgeColoring(g, 2, 4, 2, Wide); err == nil {
		t.Error("classDeg<4 accepted")
	}
	if _, err := TradeoffEdgeColoring(g, 2, 4, 100, Wide); err == nil {
		t.Error("classDeg>Δ accepted")
	}
}
