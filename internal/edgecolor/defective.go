// Package edgecolor implements the paper's headline results (§5, Theorem
// 5.5): deterministic edge coloring of general graphs with
//
//	(1) O(Δ) colors in O(Δ^ε) + log* n rounds,
//	(2) O(Δ^{1+η}) colors in O(log Δ) + log* n rounds,
//	(3) Δ^{1+o(1)} colors in O((log Δ)^{1+ζ}) + log* n rounds,
//
// via the direct edge-coloring variant of Procedures Defective-Color and
// Legal-Color: the line graph L(G) has neighborhood independence at most 2
// (Lemma 5.1), each edge's state is co-maintained by both endpoints, the
// defective coloring ϕ comes from Kuhn's O(1)-round routine (Corollary 5.4),
// and the recursion leaf is the Panconesi–Rizzi (2Λ−1)-edge-coloring. Both
// message regimes of §5 are provided: Wide sends the p counter values
// N_{e,u}(1..p) in one O(p·log Δ)-bit message; Short spreads them over p
// rounds of O(log n)-bit messages, trading rounds for message size. The
// simulation alternative (Lemma 5.2) lives in linegraph.go, and the §6
// extensions in ext.go.
package edgecolor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// MsgMode selects the message-size regime of §5.
type MsgMode int

const (
	// Wide sends the p-entry count vector in a single message of
	// O(p·log Δ) bits; the ψ-selection window is the ϕ-palette (bp)².
	Wide MsgMode = iota
	// Short sends O(log n)-bit messages only, spreading each count vector
	// over p rounds; the window grows to (bp)²·(p+1) rounds (the paper's
	// O(b²p³) bound).
	Short
)

// edgeState is the per-port view of one edge during the edge variant of
// Procedure Defective-Color.
type edgeState struct {
	phi     int // ϕ(e), known to both endpoints (Cor 5.4)
	psi     int // ψ(e) ∈ {1..p}, 0 until decided
	group   int // local group key: edges in the same current subgraph
	active  bool
	myReady bool
}

// DefectiveEdgeStep runs the §5 edge variant of Algorithm 1 on the class
// subgraphs given by classOf (per port, 0 = inactive; both endpoints agree;
// every class has degree ≤ lam at each vertex... lam is Λ, the level degree
// bound). pPrime = b·p is Corollary 5.4's parameter; p is the target ψ
// palette. Returns ψ per port (0 on inactive ports).
//
// Guarantee (§5): within every class, ψ is a ((4⌈Λ/(bp)⌉ + Λ/p)·2 + 2)-
// defective p-edge-coloring. Round cost: 1 + window, where window = (bp)²
// in Wide mode and (bp)²·(p+1) in Short mode.
func DefectiveEdgeStep(v dist.Process, classOf []int, p, pPrime, lam int, mode MsgMode) []int {
	deg := v.Deg()
	states := make([]edgeState, deg)

	// --- Corollary 5.4 within each class: one labeling round. ---
	chunk := (lam + pPrime - 1) / pPrime
	if chunk == 0 {
		chunk = 1
	}
	out := make([][]byte, deg)
	myLabel := make([]int, deg)
	perClass := make(map[int]int, 4)
	for port := 0; port < deg; port++ {
		c := classOf[port]
		if c == 0 {
			continue
		}
		idx := perClass[c]
		perClass[c]++
		myLabel[port] = idx/chunk + 1
		out[port] = wire.EncodeInts(myLabel[port])
	}
	in := v.Round(out)
	for port := 0; port < deg; port++ {
		if classOf[port] == 0 {
			continue
		}
		vals, err := wire.DecodeInts(in[port], 1)
		if err != nil {
			panic("edgecolor: bad label message: " + err.Error())
		}
		a, b := myLabel[port], vals[0]
		if v.NeighborID(port) < v.ID() {
			a, b = b, a
		}
		states[port] = edgeState{
			phi:    (a-1)*pPrime + b,
			group:  classOf[port],
			active: true,
		}
	}

	// --- Lines 3-10, edge form: the ψ-selection window. ---
	phiPalette := pPrime * pPrime
	window := phiPalette
	if mode == Short {
		window = (phiPalette + 1) * (p + 1)
	}
	// Short-mode reassembly buffers: counts received so far per port.
	partial := make(map[int][]int, deg)

	for round := 0; round < window; round++ {
		// Readiness: all same-class edges at this vertex with smaller ϕ
		// have a ψ.
		for port := range states {
			st := &states[port]
			if !st.active || st.psi != 0 {
				continue
			}
			st.myReady = true
			for q := range states {
				o := &states[q]
				if q != port && o.active && o.group == st.group && o.phi < st.phi && o.psi == 0 {
					st.myReady = false
					break
				}
			}
		}
		out := make([][]byte, deg)
		for port := range states {
			st := &states[port]
			if !st.active || st.psi != 0 {
				continue
			}
			var w wire.Writer
			if !st.myReady {
				w.Uint(0)
			} else {
				w.Uint(1)
				counts := sideCounts(states, port, p)
				switch mode {
				case Wide:
					w.Ints(counts)
				case Short:
					// Send one counter per round, cycling k = 1..p by the
					// round index within the current attempt window.
					k := round%(p+1) + 1
					if k <= p {
						w.Int(counts[k-1])
						w.Int(k)
					}
				}
			}
			out[port] = w.Bytes()
		}
		in := v.Round(out)
		for port := range states {
			st := &states[port]
			if !st.active || st.psi != 0 || in[port] == nil {
				continue
			}
			r := wire.NewReader(in[port])
			ready := r.Uint()
			if ready == 0 || !st.myReady {
				continue
			}
			var theirs []int
			switch mode {
			case Wide:
				theirs = r.Ints()
				if r.Err() != nil {
					panic("edgecolor: bad counts message: " + r.Err().Error())
				}
			case Short:
				if partial[port] == nil {
					partial[port] = make([]int, p)
					for i := range partial[port] {
						partial[port][i] = -1
					}
				}
				if r.Remaining() > 0 {
					cnt := r.Int()
					k := r.Int()
					if r.Err() != nil {
						panic("edgecolor: bad short counts: " + r.Err().Error())
					}
					partial[port][k-1] = cnt
				}
				complete := true
				for _, c := range partial[port] {
					if c < 0 {
						complete = false
						break
					}
				}
				if !complete {
					continue
				}
				theirs = partial[port]
			}
			mine := sideCounts(states, port, p)
			st.psi = argminSum(mine, theirs)
			delete(partial, port)
		}
	}
	psis := make([]int, deg)
	for port := range states {
		if states[port].active {
			if states[port].psi == 0 {
				panic(fmt.Sprintf("edgecolor: vertex id %d port %d failed to select ψ within %d rounds",
					v.ID(), port, window))
			}
			psis[port] = states[port].psi
		}
	}
	return psis
}

// sideCounts returns N_{e,v}(1..p): for the edge at the given port, how many
// other same-class edges at this vertex with smaller ϕ carry each ψ-color.
func sideCounts(states []edgeState, port, p int) []int {
	st := &states[port]
	counts := make([]int, p)
	for q := range states {
		o := &states[q]
		if q != port && o.active && o.group == st.group && o.phi < st.phi && o.psi != 0 {
			counts[o.psi-1]++
		}
	}
	return counts
}

// argminSum returns the 1-based index minimizing mine[k]+theirs[k], ties to
// the smallest index — both endpoints evaluate it identically.
func argminSum(mine, theirs []int) int {
	best, bestK := mine[0]+theirs[0], 1
	for k := 1; k < len(mine); k++ {
		if s := mine[k] + theirs[k]; s < best {
			best, bestK = s, k+1
		}
	}
	return bestK
}

// DefectiveEdgeColoring runs the edge variant of Procedure Defective-Color
// standalone on the whole graph: a ((4⌈Δ/(bp)⌉ + Δ/p)·2 + 2)-defective
// p-edge-coloring in (bp)² + O(1) rounds. Use DefectiveEdgeBound for the
// defect bound.
func DefectiveEdgeColoring(g *graph.Graph, b, p int, mode MsgMode, opts ...dist.Option) (*dist.Result[[]int], error) {
	delta := g.MaxDegree()
	if b < 1 || p < 1 {
		return nil, fmt.Errorf("edgecolor: b=%d, p=%d must be positive", b, p)
	}
	if b*p > delta {
		return nil, fmt.Errorf("edgecolor: b·p=%d exceeds Δ=%d", b*p, delta)
	}
	return dist.Run(g, func(v dist.Process) []int {
		classOf := make([]int, v.Deg())
		for i := range classOf {
			classOf[i] = 1
		}
		return DefectiveEdgeStep(v, classOf, p, b*p, delta, mode)
	}, opts...)
}

// DefectiveEdgeBound returns the §5 defect bound of the edge variant of
// Procedure Defective-Color: (4⌈Λ/(bp)⌉ + Λ/p)·c + c with c = 2.
func DefectiveEdgeBound(delta, b, p int) int {
	bound, _ := core.EdgeLevelBounds(delta, b, p)
	return bound
}
