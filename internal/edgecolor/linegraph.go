package edgecolor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/lgsim"
)

// SimulationResult is the outcome of running a vertex-coloring algorithm on
// the line graph L(G) together with the Lemma 5.2 accounting of what the
// same computation costs when simulated on the network G itself: every
// vertex v_e of L(G) is simulated by the endpoint of e with the smaller
// identifier, a message between adjacent L(G)-vertices travels at most two
// hops in G, and up to Δ L(G)-messages share one G-edge per round.
type SimulationResult struct {
	EdgeColors []int // per edge id of G (= vertex of L(G))
	// Native is the cost of the algorithm as run on L(G) directly.
	Native dist.Stats
	// SimulatedRounds is the Lemma 5.2 round bound on G: 2T + O(1).
	SimulatedRounds int
	// SimulatedMaxMessageBytes bounds the per-G-edge message size during the
	// simulation: up to Δ(G) simultaneous L(G)-messages share a G-edge.
	SimulatedMaxMessageBytes int
}

// simulationOverheadRounds is the additive O(1) of Lemma 5.2 (computing the
// unique edge identifiers ⟨Id(u), Id(v)⟩).
const simulationOverheadRounds = 1

// OnLineGraph runs an arbitrary vertex algorithm on L(G) and maps the
// per-vertex outputs back to the edges of G, attaching the Lemma 5.2
// simulation costs. The i-th vertex of L(G) corresponds to the edge of G
// with id i (graph.LineGraph's contract), and its identifier order follows
// the lexicographic ⟨smaller endpoint id, larger endpoint id⟩ order the
// lemma prescribes.
func OnLineGraph(g *graph.Graph, algo func(dist.Process) int, opts ...dist.Option) (*SimulationResult, error) {
	lg := g.LineGraph()
	res, err := dist.Run(lg, algo, opts...)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{
		EdgeColors:               res.Outputs,
		Native:                   res.Stats,
		SimulatedRounds:          2*res.Stats.Rounds + simulationOverheadRounds,
		SimulatedMaxMessageBytes: g.MaxDegree() * res.Stats.MaxMessageBytes,
	}, nil
}

// TrueSimulation runs the Theorem 5.3 pipeline genuinely on the network G:
// the vertex Procedure Legal-Color executes on virtual L(G) vertices hosted
// by the smaller-identifier endpoints (package lgsim), every virtual round
// costing two physical rounds with relayed, bundled messages. The returned
// stats are *measured on G*, so the Lemma 5.2 2T+O(1) round cost and ×Δ
// message blowup are empirical rather than accounted. pl must be a
// vertex-mode plan for Δ(L(G)) with c = 2.
func TrueSimulation(g *graph.Graph, pl *core.Plan, mode core.Mode, opts ...dist.Option) (*SimulationResult, error) {
	if pl.Edge {
		return nil, fmt.Errorf("edgecolor: edge-mode plan passed to true simulation (want vertex mode)")
	}
	n := g.N()
	deltaL := 0
	for _, e := range g.Edges() {
		if d := g.Deg(e.U) + g.Deg(e.V) - 2; d > deltaL {
			deltaL = d
		}
	}
	if deltaL > pl.Delta {
		return nil, fmt.Errorf("edgecolor: Δ(L(G))=%d exceeds plan Δ=%d", deltaL, pl.Delta)
	}
	idSpace := lgsim.VirtualIDSpace(n)
	algo, err := core.LegalColorProcess(idSpace, deltaL, pl, mode)
	if err != nil {
		return nil, err
	}
	rounds, err := core.LegalRounds(idSpace, deltaL, pl, mode)
	if err != nil {
		return nil, err
	}
	sim, err := lgsim.Run(g, rounds, algo, opts...)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{
		EdgeColors:               sim.Outputs,
		Native:                   sim.Physical, // measured on G
		SimulatedRounds:          sim.Physical.Rounds,
		SimulatedMaxMessageBytes: sim.Physical.MaxMessageBytes,
	}, nil
}

// ViaLineGraphSimulation is Theorem 5.3 with accounted (rather than
// executed) simulation costs: it runs the vertex Procedure Legal-Color on an
// explicitly constructed L(G) — which has neighborhood independence at most
// 2 (Lemma 5.1) and maximum degree ≤ 2Δ(G)−2 — and applies the Lemma 5.2
// cost formulas. Use TrueSimulation for the fully executed version. pl must
// be a vertex-mode plan for Δ(L(G)) with c = 2.
func ViaLineGraphSimulation(g *graph.Graph, pl *core.Plan, mode core.Mode, opts ...dist.Option) (*SimulationResult, error) {
	if pl.Edge {
		return nil, fmt.Errorf("edgecolor: edge-mode plan passed to line-graph simulation (want vertex mode)")
	}
	lg := g.LineGraph()
	if d := lg.MaxDegree(); d > pl.Delta {
		return nil, fmt.Errorf("edgecolor: Δ(L(G))=%d exceeds plan Δ=%d", d, pl.Delta)
	}
	res, err := core.LegalColoring(lg, pl, mode, opts...)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{
		EdgeColors:               res.Outputs,
		Native:                   res.Stats,
		SimulatedRounds:          2*res.Stats.Rounds + simulationOverheadRounds,
		SimulatedMaxMessageBytes: g.MaxDegree() * res.Stats.MaxMessageBytes,
	}, nil
}
