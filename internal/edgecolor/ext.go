package edgecolor

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// This file implements the §6 extensions in their edge-coloring form.

// RandomizedEdgeColoring implements Corollary 6.2: every edge is thrown into
// one of K = ⌈Δ_L/ln n⌉ random classes (the smaller-identifier endpoint
// draws and tells the other endpoint — one O(1)-round step, as §6.1 notes),
// which is an O(log n)-defective edge coloring with high probability; then
// the deterministic edge Legal-Color runs on all classes in parallel with
// disjoint palettes. Result: O(Δ·min{Δ, log n}^η)-edge-coloring in
// O(log log n)-scale time.
//
// kappa scales the whp class-degree bound ⌈kappa·ln n⌉ (per endpoint); an
// unlucky seed exceeding it yields an error — rerun with a different seed.
func RandomizedEdgeColoring(g *graph.Graph, b, p, kappa int, mode MsgMode, opts ...dist.Option) (*dist.Result[[]int], error) {
	n := g.N()
	delta := g.MaxDegree()
	if delta == 0 {
		return dist.Run(g, func(v dist.Process) []int { return make([]int, v.Deg()) }, opts...)
	}
	logN := math.Max(math.Log(float64(n)), 1)
	deltaL := 2*delta - 2 // Δ(L(G)) bound
	classes := int(math.Ceil(float64(deltaL) / logN))
	classDeg := int(math.Ceil(float64(kappa) * logN))
	if classes <= 1 || classDeg >= delta {
		// Δ = O(log n): the deterministic algorithm is already fast.
		pl, err := core.AutoPlan(delta, 2, b, p, true)
		if err != nil {
			return nil, err
		}
		return LegalEdgeColoring(g, pl, mode, opts...)
	}
	pl, err := core.AutoPlan(classDeg, 2, b, p, true)
	if err != nil {
		return nil, err
	}
	return dist.Run(g, func(v dist.Process) []int {
		initClass := drawEdgeClasses(v, classes)
		// Enforce the whp bound locally: per vertex, no class may exceed
		// the plan's degree bound.
		byClass := make(map[int]int, classes)
		for _, c := range initClass {
			byClass[c]++
			if byClass[c] > classDeg {
				panic(fmt.Sprintf("edgecolor: randomized class degree %d exceeds bound %d (unlucky seed; rerun)",
					byClass[c], classDeg))
			}
		}
		return legalEdgeVertex(v, pl, mode, initClass)
	}, opts...)
}

// RandomizedPaletteBound returns the palette bound of RandomizedEdgeColoring.
func RandomizedPaletteBound(g *graph.Graph, b, p, kappa int) (int, error) {
	n := g.N()
	delta := g.MaxDegree()
	if delta == 0 {
		return 1, nil
	}
	logN := math.Max(math.Log(float64(n)), 1)
	deltaL := 2*delta - 2
	classes := int(math.Ceil(float64(deltaL) / logN))
	classDeg := int(math.Ceil(float64(kappa) * logN))
	if classes <= 1 || classDeg >= delta {
		pl, err := core.AutoPlan(delta, 2, b, p, true)
		if err != nil {
			return 0, err
		}
		return pl.TotalPalette(), nil
	}
	pl, err := core.AutoPlan(classDeg, 2, b, p, true)
	if err != nil {
		return 0, err
	}
	return classes * pl.TotalPalette(), nil
}

// drawEdgeClasses assigns every incident edge a random class in 0..classes-1
// agreed by both endpoints: the smaller-identifier endpoint draws from its
// per-vertex PRNG and sends the class across the edge (one round).
func drawEdgeClasses(v dist.Process, classes int) []int {
	deg := v.Deg()
	out := make([][]byte, deg)
	initClass := make([]int, deg)
	for port := 0; port < deg; port++ {
		if v.ID() < v.NeighborID(port) {
			initClass[port] = v.Rand().Intn(classes)
			out[port] = wire.EncodeInts(initClass[port])
		}
	}
	in := v.Round(out)
	for port := 0; port < deg; port++ {
		if v.ID() > v.NeighborID(port) {
			vals, err := wire.DecodeInts(in[port], 1)
			if err != nil {
				panic("edgecolor: bad class message: " + err.Error())
			}
			initClass[port] = vals[0]
		}
	}
	return initClass
}

// TradeoffEdgeColoring implements the edge form of Corollary 6.3: the edges
// are first split by Kuhn's O(1)-round routine (Cor 5.4) with p′ chosen so
// that every class has degree ≤ classDeg at each vertex, then the
// deterministic edge Legal-Color colors all classes in parallel. Larger
// classDeg means fewer classes (fewer colors) but more recursion work:
// sweeping classDeg traces the O(Δ²/g(Δ)) colors vs O(log g(Δ)) time curve.
func TradeoffEdgeColoring(g *graph.Graph, b, p, classDeg int, mode MsgMode, opts ...dist.Option) (*dist.Result[[]int], error) {
	delta := g.MaxDegree()
	if classDeg < 4 || classDeg > delta {
		return nil, fmt.Errorf("edgecolor: classDeg=%d outside [4,Δ=%d]", classDeg, delta)
	}
	// Cor 5.4 with p′ = ⌈4Δ/classDeg⌉ keeps per-vertex class degrees at most
	// 2⌈Δ/p′⌉ ≤ classDeg.
	pPrime := ceilDiv(4*delta, classDeg)
	if pPrime < 1 {
		pPrime = 1
	}
	pl, err := core.AutoPlan(classDeg, 2, b, p, true)
	if err != nil {
		return nil, err
	}
	return dist.Run(g, func(v dist.Process) []int {
		split := defective.EdgeColoringStep(v, pPrime)
		initClass := make([]int, v.Deg())
		byClass := make(map[int]int, 8)
		for port, c := range split {
			initClass[port] = c - 1
			byClass[c]++
			if byClass[c] > classDeg {
				panic(fmt.Sprintf("edgecolor: tradeoff class degree %d exceeds bound %d (Cor 5.4 violated)",
					byClass[c], classDeg))
			}
		}
		return legalEdgeVertex(v, pl, mode, initClass)
	}, opts...)
}

// TradeoffPaletteBound returns the palette bound of TradeoffEdgeColoring:
// p′² classes times the per-class Legal-Color palette.
func TradeoffPaletteBound(g *graph.Graph, b, p, classDeg int) (int, error) {
	delta := g.MaxDegree()
	pPrime := ceilDiv(4*delta, classDeg)
	pl, err := core.AutoPlan(classDeg, 2, b, p, true)
	if err != nil {
		return 0, err
	}
	return pPrime * pPrime * pl.TotalPalette(), nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
