package edgecolor

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/panconesi"
)

// sweepGraphs is the generator zoo of the legality sweep: every family kind
// internal/graph exports, small enough that the full family × algorithm ×
// engine matrix stays fast but shaped to hit the structural corners (odd
// degrees, cliques, pendants, line graphs, isolated vertices).
func sweepGraphs() map[string]*graph.Graph {
	withIsolated := graph.NewBuilder(9)
	for _, e := range [][2]int{{1, 4}, {4, 7}, {2, 7}} {
		if err := withIsolated.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return map[string]*graph.Graph{
		"path":           graph.Path(13),
		"cycle":          graph.Cycle(14),
		"complete":       graph.Complete(9),
		"star":           graph.Star(11),
		"gnm":            graph.GNM(40, 110, 3),
		"regular":        graph.RandomRegular(24, 5, 5),
		"grid":           graph.Grid(5, 6),
		"tree":           graph.RandomTree(26, 7),
		"cliquePendants": graph.CliquePlusPendants(6),
		"powerOfCycle":   graph.PowerOfCycle(22, 3),
		"lineGraph":      graph.GNM(14, 36, 8).LineGraph(),
		"hyperLineGraph": graph.RandomHypergraph(21, 24, 3, 9).LineGraph(),
		"shuffledIDs":    graph.ShuffledIDs(graph.GNM(30, 80, 11), 12),
		"isolated":       withIsolated.Build(),
	}
}

// edgeAlgorithm is one algorithm under sweep: run executes it and returns
// the per-vertex port colorings plus the palette bound the paper (or the
// baseline's folklore analysis) promises for this graph.
type edgeAlgorithm struct {
	name string
	run  func(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], int, error)
}

func sweepAlgorithms() []edgeAlgorithm {
	return []edgeAlgorithm{
		{"be-wide", func(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], int, error) {
			pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
			if err != nil {
				return nil, 0, err
			}
			res, err := LegalEdgeColoring(g, pl, Wide, opts...)
			return res, pl.TotalPalette(), err
		}},
		{"be-short", func(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], int, error) {
			pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
			if err != nil {
				return nil, 0, err
			}
			res, err := LegalEdgeColoring(g, pl, Short, opts...)
			return res, pl.TotalPalette(), err
		}},
		{"pr", func(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], int, error) {
			res, err := panconesi.EdgeColoring(g, opts...)
			return res, 2*g.MaxDegree() - 1, err
		}},
		{"greedy", func(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], int, error) {
			res, err := baseline.GreedyEdgeColoring(g, opts...)
			return res, 2*g.MaxDegree() - 1, err
		}},
		{"rand", func(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], int, error) {
			res, err := baseline.RandomizedTrialEdgeColoring(g, opts...)
			return res, 2*g.MaxDegree() - 1, err
		}},
	}
}

// TestEdgeLegalityProperty is the legality sweep: for every generator family
// × algorithm × engine, the returned edge coloring must merge consistently
// (both endpoints agree per edge), be proper (no two adjacent edges share a
// color), and stay within the algorithm's color bound — for the paper's
// algorithm, the Theorem 5.5 palette of its recursion plan; for the
// baselines, 2Δ−1.
func TestEdgeLegalityProperty(t *testing.T) {
	engines := []struct {
		name string
		opts []dist.Option
	}{
		{"goroutines", []dist.Option{dist.WithEngine(dist.Goroutines)}},
		{"lockstep", []dist.Option{dist.WithEngine(dist.Lockstep)}},
		{"sharded-3", []dist.Option{dist.WithEngine(dist.Sharded), dist.WithShards(3)}},
	}
	for gname, g := range sweepGraphs() {
		if g.MaxDegree() == 0 {
			continue
		}
		for _, alg := range sweepAlgorithms() {
			for _, eng := range engines {
				t.Run(fmt.Sprintf("%s/%s/%s", gname, alg.name, eng.name), func(t *testing.T) {
					res, palette, err := alg.run(g, append([]dist.Option{dist.WithSeed(1)}, eng.opts...)...)
					if err != nil {
						t.Fatal(err)
					}
					colors, err := graph.MergePortColors(g, res.Outputs)
					if err != nil {
						t.Fatalf("endpoints disagree: %v", err)
					}
					if err := graph.CheckEdgeColoring(g, colors); err != nil {
						t.Fatalf("coloring not proper: %v", err)
					}
					for id, c := range colors {
						if c < 1 || c > palette {
							t.Fatalf("edge %d color %d outside palette [1,%d]", id, c, palette)
						}
					}
					if used := graph.CountColors(colors); used > palette {
						t.Fatalf("%d colors used, bound %d", used, palette)
					}
				})
			}
		}
	}
}
