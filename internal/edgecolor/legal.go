package edgecolor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/panconesi"
)

// LegalEdgeColoring runs the §5 edge variant of Procedure Legal-Color on a
// general graph g: a legal edge coloring with at most pl.TotalPalette()
// colors, where pl is an edge-mode core.Plan (pl.Edge == true, c = 2).
//
// Execution is level-synchronous like the vertex variant: each edge carries
// its path through the recursion tree (ψ₁ψ₂…), co-maintained by both
// endpoints; level i runs the edge Defective-Color on all label classes
// simultaneously (they are edge-disjoint); the leaves are colored by the
// multi-class Panconesi–Rizzi (2Λ⁽ʳ⁾−1)-edge-coloring, all classes in
// parallel with disjoint palettes. Returns per-vertex port colorings (merge
// with graph.MergePortColors).
func LegalEdgeColoring(g *graph.Graph, pl *core.Plan, mode MsgMode, opts ...dist.Option) (*dist.Result[[]int], error) {
	algo, err := LegalEdgeProcess(g.MaxDegree(), pl, mode)
	if err != nil {
		return nil, err
	}
	return dist.Run(g, algo, opts...)
}

// LegalEdgeProcess returns the per-vertex body of LegalEdgeColoring for a
// graph of maximum degree delta, validated against the plan. Callers that
// execute on a reusable dist.Runner or dist.Pool (the coloring service) use
// it to get the exact algorithm LegalEdgeColoring would run.
func LegalEdgeProcess(delta int, pl *core.Plan, mode MsgMode) (func(dist.Process) []int, error) {
	if !pl.Edge {
		return nil, fmt.Errorf("edgecolor: vertex-mode plan passed to LegalEdgeProcess")
	}
	if delta > pl.Delta {
		return nil, fmt.Errorf("edgecolor: graph degree %d exceeds plan Δ=%d", delta, pl.Delta)
	}
	return func(v dist.Process) []int {
		return legalEdgeVertex(v, pl, mode, nil)
	}, nil
}

// legalEdgeVertex is the per-vertex body of the edge Legal-Color. initClass
// optionally pre-partitions the edges (per port, 0-based class, -1 =
// excluded; nil = all edges in class 0): the §6 extensions use it to run the
// recursion on many edge-disjoint classes in parallel, each class keeping
// its own disjoint palette of size pl.TotalPalette(). Returns per-port
// colors (0 on excluded ports).
func legalEdgeVertex(v dist.Process, pl *core.Plan, mode MsgMode, initClass []int) []int {
	deg := v.Deg()
	// classIdx[port] encodes the edge's recursion path in base p (0-based),
	// prefixed by its initial class; -1 marks excluded ports.
	classIdx := make([]int, deg)
	offsets := make([]int, deg) // class·ϑ⁽⁰⁾ + Σ (ψ_i−1)·ϑ⁽ⁱ⁺¹⁾ per edge
	for port := range classIdx {
		if initClass != nil {
			classIdx[port] = initClass[port]
			if initClass[port] >= 0 {
				offsets[port] = initClass[port] * pl.TotalPalette()
			}
		}
	}
	r := pl.Depth()
	for level := 0; level < r; level++ {
		classOf := make([]int, deg)
		for port := range classOf {
			if classIdx[port] >= 0 {
				classOf[port] = classIdx[port] + 1
			}
		}
		psis := DefectiveEdgeStep(v, classOf, pl.P, pl.B*pl.P, pl.Levels[level], mode)
		for port := range classIdx {
			if classIdx[port] < 0 {
				continue
			}
			classIdx[port] = classIdx[port]*pl.P + (psis[port] - 1)
			offsets[port] += (psis[port] - 1) * pl.Thetas[level+1]
		}
	}
	// Leaf: multi-class Panconesi–Rizzi with degree bound Λ⁽ʳ⁾.
	classOf := make([]int, deg)
	for port := range classOf {
		if classIdx[port] >= 0 {
			classOf[port] = classIdx[port] + 1
		}
	}
	leaf := panconesi.EdgeColorMulti(v, classOf, pl.LeafBound())
	colors := make([]int, deg)
	for port := range colors {
		if classIdx[port] >= 0 {
			colors[port] = offsets[port] + leaf[port]
		}
	}
	return colors
}

// Rounds returns the exact round cost of LegalEdgeColoring for an n-vertex
// graph under the given plan and message mode.
func Rounds(n int, pl *core.Plan, mode MsgMode) int {
	pPrime := pl.B * pl.P
	window := pPrime * pPrime
	if mode == Short {
		window = (pPrime*pPrime + 1) * (pl.P + 1)
	}
	perLevel := 1 + window // labeling round + ψ window
	return pl.Depth()*perLevel + panconesi.Rounds(n, pl.LeafBound())
}
