package edgecolor

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// BenchmarkDefectiveEdgeModes is the §5 message-regime ablation on the
// standalone edge Defective-Color: Wide pays O(p log Δ)-bit messages for a
// (bp)² window; Short keeps O(log n) bits and multiplies the window by p+1.
func BenchmarkDefectiveEdgeModes(b *testing.B) {
	g := graph.TargetDegreeGNM(256, 48, 1)
	for _, tc := range []struct {
		name string
		mode MsgMode
	}{{"wide", Wide}, {"short", Short}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := DefectiveEdgeColoring(g, 1, 12, tc.mode)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.Rounds), "rounds")
					b.ReportMetric(float64(res.Stats.MaxMessageBytes), "maxMsgB")
				}
			}
		})
	}
}

// BenchmarkWindowVsP shows the (bp)² ψ-window dependence of the edge
// Defective-Color step, the dominant term of the per-level cost.
func BenchmarkWindowVsP(b *testing.B) {
	g := graph.TargetDegreeGNM(256, 48, 2)
	for _, p := range []int{4, 8, 12} {
		p := p
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := DefectiveEdgeColoring(g, 1, p, Wide)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.Rounds), "rounds")
				}
			}
		})
	}
}

// BenchmarkRecursionDepth contrasts a leaf-only plan (pure Panconesi–Rizzi)
// against a deep plan on the same graph: the recursion buys palette
// structure at the cost of ψ-windows.
func BenchmarkRecursionDepth(b *testing.B) {
	g := graph.TargetDegreeGNM(256, 48, 3)
	delta := g.MaxDegree()
	plans := map[string]*core.Plan{}
	if pl, err := core.NewPlan(delta, 2, 1, 12, delta, true); err == nil {
		plans["leaf-only"] = pl
	}
	if pl, err := core.AutoPlan(delta, 2, 1, 12, true); err == nil && pl.Depth() > 0 {
		plans["recursive"] = pl
	}
	for name, pl := range plans {
		pl := pl
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := LegalEdgeColoring(g, pl, Wide)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					colors, err := graph.MergePortColors(g, res.Outputs)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Stats.Rounds), "rounds")
					b.ReportMetric(float64(graph.CountColors(colors)), "colors")
					b.ReportMetric(float64(pl.Depth()), "depth")
				}
			}
		})
	}
}
