// Package panconesi implements the Panconesi–Rizzi deterministic
// (2Δ−1)-edge-coloring [24], which the paper uses both as the prior
// state-of-the-art baseline (Tables 1 and 2: O(Δ) + log* n rounds) and as
// the bottom-of-recursion subroutine of the §5 edge-coloring variant of
// Procedure Legal-Color.
//
// Algorithm: decompose the (sub)graph into degBound edge-disjoint rooted
// forests by labeling out-edges of the ID orientation (1 round); 3-color the
// vertices of every forest in parallel with Cole–Vishkin (O(log* n) rounds);
// then, for each forest ℓ and each forest-color j, let every vertex u with
// color j in forest ℓ assign greedy colors to all of its child edges in ℓ,
// avoiding the colors already used at either endpoint. Vertices with color j
// form an independent set in forest ℓ and child edges of distinct such
// vertices share no endpoint, so all assignments in a stage are conflict
// free; each edge sees at most 2·degBound−2 forbidden colors, so the palette
// {1..2·degBound−1} always suffices. Total: O(degBound) + O(log* n) rounds.
//
// The multi-class form colors many edge-disjoint subgraphs ("classes") at
// once, each with its own palette {1..2·degBound−1}; classes proceed in
// lockstep through the same stages, so the round cost does not grow with the
// number of classes — exactly the property the recursion leaf of §5 needs.
package panconesi

import (
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/wire"
)

// stages is the number of forest-color stages per forest (3-coloring).
const stages = 3

// Rounds returns the exact round cost of EdgeColorStep/EdgeColorMulti for an
// n-vertex network with the given degree bound: 1 labeling round, the forest
// 3-coloring, and 2 rounds per (within-class forest, color) stage.
func Rounds(n, degBound int) int {
	return 1 + forest.TotalRounds(n) + 2*stages*degBound
}

// EdgeColorStep computes a legal (2·degBound−1)-edge-coloring of the
// subgraph formed by the active ports (nil = all ports). degBound must be a
// degree bound of that subgraph shared by all vertices. It returns the color
// of each port (0 on inactive ports); both endpoints of an edge return the
// same color for it. Every vertex spends exactly Rounds(v.N(), degBound)
// communication rounds.
func EdgeColorStep(v dist.Process, active []bool, degBound int) []int {
	classOf := make([]int, v.Deg())
	for port := range classOf {
		if active == nil || active[port] {
			classOf[port] = 1
		}
	}
	return EdgeColorMulti(v, classOf, degBound)
}

// EdgeColorMulti colors every class subgraph with its own palette
// {1..2·degBound−1} simultaneously: classOf[port] >= 1 assigns each edge to
// a class (0 = uncolored/ignored), both endpoints agreeing; every class must
// have degree ≤ degBound at every vertex.
func EdgeColorMulti(v dist.Process, classOf []int, degBound int) []int {
	deg := v.Deg()
	colors := make([]int, deg)
	m := forest.AssignLabelsClasses(v, classOf, degBound)
	fcolors := forest.ThreeColor(v, m)

	// Per-class used-color sets at this vertex; only classes present
	// locally are materialized.
	used := make(map[int]map[int]bool, 4)
	usedOf := func(c int) map[int]bool {
		if used[c] == nil {
			used[c] = make(map[int]bool, degBound)
		}
		return used[c]
	}
	// present enumerates the classes with at least one local port.
	present := make(map[int]bool, 4)
	for _, c := range classOf {
		if c != 0 {
			present[c] = true
		}
	}
	for l := 1; l <= degBound; l++ {
		for j := 1; j <= stages; j++ {
			runStage(v, m, fcolors, classOf, present, l, j, degBound, colors, usedOf)
		}
	}
	return colors
}

// runStage performs one (within-class label ℓ, forest-color j) stage across
// all classes: children report their class-local used sets upward; parents
// whose color in the (class, ℓ) forest is j greedily color child edges.
func runStage(v dist.Process, m forest.Membership, fcolors map[int]int, classOf []int, present map[int]bool,
	l, j, degBound int, colors []int, usedOf func(int) map[int]bool) {
	deg := v.Deg()
	// Round 1: report used sets on uncolored parent edges of label ℓ.
	out := make([][]byte, deg)
	for c := range present {
		fid := (c-1)*degBound + l
		if p := m.ParentPortOf(fid); p >= 0 && colors[p] == 0 {
			var w wire.Writer
			w.Ints(setToSlice(usedOf(c)))
			out[p] = w.Bytes()
		}
	}
	in := v.Round(out)
	// Round 2: parents with color j in the (class, ℓ) forest assign colors.
	out2 := make([][]byte, deg)
	for c := range present {
		fid := (c-1)*degBound + l
		if !m.InForest(fid) || fcolors[fid] != j {
			continue
		}
		u := usedOf(c)
		for port := 0; port < deg; port++ {
			if m.PortLabel[port] != fid || in[port] == nil {
				continue
			}
			r := wire.NewReader(in[port])
			childUsed := r.Ints()
			if r.Err() != nil {
				panic("panconesi: bad used-set message: " + r.Err().Error())
			}
			cc := firstFree(u, childUsed)
			colors[port] = cc
			u[cc] = true
			out2[port] = wire.EncodeInts(cc)
		}
	}
	in2 := v.Round(out2)
	// Record colors our parents picked for our parent edges.
	for c := range present {
		fid := (c-1)*degBound + l
		if p := m.ParentPortOf(fid); p >= 0 && in2[p] != nil {
			vals, err := wire.DecodeInts(in2[p], 1)
			if err != nil {
				panic("panconesi: bad color message: " + err.Error())
			}
			colors[p] = vals[0]
			usedOf(c)[vals[0]] = true
		}
	}
}

// firstFree returns the smallest positive color not in either set.
func firstFree(used map[int]bool, childUsed []int) int {
	childSet := make(map[int]bool, len(childUsed))
	for _, c := range childUsed {
		childSet[c] = true
	}
	for c := 1; ; c++ {
		if !used[c] && !childSet[c] {
			return c
		}
	}
}

func setToSlice(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	return out
}

// EdgeColoring runs the full Panconesi–Rizzi algorithm on g and returns the
// per-vertex port colorings (merge with graph.MergePortColors). The palette
// is {1..2Δ−1} and the round cost is O(Δ) + O(log* n).
func EdgeColoring(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], error) {
	degBound := g.MaxDegree()
	return dist.Run(g, func(v dist.Process) []int {
		return EdgeColorStep(v, nil, degBound)
	}, opts...)
}
