package panconesi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/graph"
)

func TestEdgeColoringLegalAndPaletteBound(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm-dense", graph.GNM(80, 600, 1)},
		{"gnm-sparse", graph.GNM(120, 200, 2)},
		{"tree", graph.RandomTree(150, 3)},
		{"cycle", graph.Cycle(51)},
		{"clique", graph.Complete(10)},
		{"star", graph.Star(30)},
		{"path", graph.Path(40)},
		{"regular", graph.RandomRegular(40, 6, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			res, err := EdgeColoring(g)
			if err != nil {
				t.Fatal(err)
			}
			colors, err := graph.MergePortColors(g, res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckEdgeColoring(g, colors); err != nil {
				t.Fatal(err)
			}
			delta := g.MaxDegree()
			if mc := graph.MaxColor(colors); mc > 2*delta-1 {
				t.Fatalf("palette %d exceeds 2Δ-1 = %d", mc, 2*delta-1)
			}
			if want := Rounds(g.N(), delta); res.Stats.Rounds != want {
				t.Fatalf("rounds = %d, want exactly %d", res.Stats.Rounds, want)
			}
		})
	}
}

func TestRoundsLinearInDelta(t *testing.T) {
	// The O(Δ) term should dominate: rounds grow ~6 per unit of Δ.
	n := 1 << 16
	r8 := Rounds(n, 8)
	r16 := Rounds(n, 16)
	if d := r16 - r8; d != 6*8 {
		t.Fatalf("rounds delta = %d, want 48", d)
	}
}

func TestEdgeColoringProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		m := rng.Intn(2*n + 1)
		g := graph.GNM(n, m, seed)
		if g.M() == 0 {
			return true
		}
		res, err := EdgeColoring(g)
		if err != nil {
			return false
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return false
		}
		return graph.CheckEdgeColoring(g, colors) == nil &&
			graph.MaxColor(colors) <= 2*g.MaxDegree()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeColoringShuffledIDs(t *testing.T) {
	g := graph.ShuffledIDs(graph.GNM(70, 300, 8), 123)
	res, err := EdgeColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

// TestSubgraphRestrictedLockstep colors two edge-disjoint subgraphs with two
// sequential EdgeColorStep invocations inside one vertex program, verifying
// that the step keeps all vertices in lockstep and that the masks work.
func TestSubgraphRestrictedLockstep(t *testing.T) {
	g := graph.GNM(60, 300, 9)
	// Split edges by parity of endpoint id sum; bound degrees of both sides
	// by Δ of g (a valid common bound).
	degBound := g.MaxDegree()
	type out struct{ a, b []int }
	res, err := dist.Run(g, func(v dist.Process) out {
		maskA := make([]bool, v.Deg())
		maskB := make([]bool, v.Deg())
		for p := range maskA {
			even := (v.ID()+v.NeighborID(p))%2 == 0
			maskA[p] = even
			maskB[p] = !even
		}
		a := EdgeColorStep(v, maskA, degBound)
		b := EdgeColorStep(v, maskB, degBound)
		return out{a: a, b: b}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Merge each side and validate against the corresponding edge subgraph.
	for side := 0; side < 2; side++ {
		ports := make([][]int, g.N())
		for v := range ports {
			if side == 0 {
				ports[v] = res.Outputs[v].a
			} else {
				ports[v] = res.Outputs[v].b
			}
		}
		colors, err := graph.MergePortColors(g, ports)
		if err != nil {
			t.Fatal(err)
		}
		for id, e := range g.Edges() {
			even := (g.ID(e.U)+g.ID(e.V))%2 == 0
			inSide := (side == 0) == even
			if inSide && colors[id] == 0 {
				t.Fatalf("side %d: edge %d uncolored", side, id)
			}
			if !inSide && colors[id] != 0 {
				t.Fatalf("side %d: edge %d colored %d but excluded", side, id, colors[id])
			}
		}
		// Legality within the side: incident same-side edges differ.
		for v := 0; v < g.N(); v++ {
			seen := map[int]bool{}
			for _, id := range g.IncidentEdgeIDs(v) {
				c := colors[id]
				if c == 0 {
					continue
				}
				if seen[c] {
					t.Fatalf("side %d: vertex %d has two incident edges colored %d", side, v, c)
				}
				seen[c] = true
			}
		}
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(2), graph.Path(1)} {
		res, err := EdgeColoring(g)
		if err != nil {
			t.Fatal(err)
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() > 0 {
			if err := graph.CheckEdgeColoring(g, colors); err != nil {
				t.Fatal(err)
			}
		}
	}
}
