package panconesi

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// BenchmarkEdgeColoringByDelta exposes the Θ(Δ) round growth of
// Panconesi–Rizzi — the axis on which the paper's §5 algorithms win Table 1.
func BenchmarkEdgeColoringByDelta(b *testing.B) {
	for _, delta := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			g := graph.RandomRegular(128, delta, int64(delta))
			for i := 0; i < b.N; i++ {
				res, err := EdgeColoring(g)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.Rounds), "rounds")
				}
			}
		})
	}
}

// BenchmarkMultiClassOverhead verifies the §5 leaf property: coloring many
// edge-disjoint classes simultaneously costs the same rounds as one class.
func BenchmarkMultiClassOverhead(b *testing.B) {
	g := graph.RandomRegular(96, 12, 3)
	for _, classes := range []int{1, 4} {
		classes := classes
		b.Run(fmt.Sprintf("classes=%d", classes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := runMultiClass(g, classes)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res), "rounds")
				}
			}
		})
	}
}

func runMultiClass(g *graph.Graph, classes int) (int, error) {
	degBound := g.MaxDegree()
	res, err := dist.Run(g, func(v dist.Process) []int {
		classOf := make([]int, v.Deg())
		for p := range classOf {
			classOf[p] = (v.ID()+v.NeighborID(p))%classes + 1
		}
		return EdgeColorMulti(v, classOf, degBound)
	})
	if err != nil {
		return 0, err
	}
	return res.Stats.Rounds, nil
}
