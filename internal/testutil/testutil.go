// Package testutil holds the helpers behind the end-to-end CLI golden
// tests: stdout capture for in-process main-wrapper invocations, and golden
// file comparison with an -update flag.
package testutil

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// update is shared by every golden test: `go test ./cmd/... -update`
// rewrites the golden files from current output.
var update = flag.Bool("update", false, "rewrite golden files from current output")

// CaptureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything fn wrote. The CLIs print through fmt.Printf, so running their
// run(args) entry points under CaptureStdout exercises the exact production
// code path including flag plumbing.
func CaptureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-outCh
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

// Golden compares got against testdata/<name>.golden, rewriting the file
// under -update. The diff shown on mismatch is the full pair — CLI outputs
// are small.
func Golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -update`): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (run `go test -update` if intentional):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
