package wire

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip encodes an arbitrary mix of values through Writer and
// decodes it back through Reader, checking exact value and length recovery.
// Run with `go test -fuzz FuzzRoundTrip ./internal/wire` to explore beyond
// the seed corpus.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(0), uint64(0), []byte{})
	f.Add(int64(-1), uint64(1), []byte{0xff})
	f.Add(int64(1<<62), uint64(1)<<63, []byte("payload"))
	f.Add(int64(-1<<62), uint64(127), bytes.Repeat([]byte{7}, 300))
	f.Fuzz(func(t *testing.T, i int64, u uint64, raw []byte) {
		var w Writer
		w.Int(int(i)).Uint(u).Raw(raw).Ints([]int{int(i), 0, -int(i)})
		msg := w.Bytes()
		if w.Len() != len(msg) {
			t.Fatalf("Len %d != len(Bytes) %d", w.Len(), len(msg))
		}
		r := NewReader(msg)
		if got := r.Int(); got != int(i) {
			t.Fatalf("Int: got %d, want %d", got, i)
		}
		if got := r.Uint(); got != u {
			t.Fatalf("Uint: got %d, want %d", got, u)
		}
		if got := r.Raw(); !bytes.Equal(got, raw) {
			t.Fatalf("Raw: got %v, want %v", got, raw)
		}
		xs := r.Ints()
		if r.Err() != nil {
			t.Fatalf("decode error: %v", r.Err())
		}
		if len(xs) != 3 || xs[0] != int(i) || xs[1] != 0 || xs[2] != -int(i) {
			t.Fatalf("Ints: got %v", xs)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	})
}

// FuzzReader feeds arbitrary bytes to every Reader accessor: decoding hostile
// input must never panic or over-read, only latch ErrTruncated.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})                         // truncated varint
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}) // runs past the end
	f.Add([]byte{5, 1, 2})                      // Raw length past the end
	f.Add([]byte{3, 0, 0, 0, 9})                // plausible Ints header
	f.Fuzz(func(t *testing.T, msg []byte) {
		for _, decode := range []func(r *Reader){
			func(r *Reader) { r.Uint(); r.Int(); r.Raw(); r.Ints() },
			func(r *Reader) { r.Ints(); r.Raw(); r.Uint() },
			func(r *Reader) { r.Raw(); r.Raw() },
		} {
			r := NewReader(msg)
			decode(r) // must not panic
			if r.Remaining() < 0 {
				t.Fatal("reader over-read the buffer")
			}
		}
		// A clean full decode must account for every byte it consumed.
		r := NewReader(msg)
		for r.Err() == nil && r.Remaining() > 0 {
			r.Uint()
		}
	})
}
