// Package wire provides the compact varint message encoding used by all
// distributed algorithms in this repository.
//
// The paper's message-size claims (§1.1, §5) are stated in bits: O(log n)
// for short messages, O(p·log Δ) for the wide mode of the edge-coloring
// variant, O(Δ·log n) for the naive line-graph simulation. Encoding every
// message through this package makes those classes directly measurable by
// the simulator's byte accounting.
package wire

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// ErrTruncated is returned when a reader runs past the end of a message.
var ErrTruncated = errors.New("wire: truncated message")

// Writer appends varint-encoded values to a buffer. The zero value is ready
// to use.
type Writer struct {
	buf []byte
}

// Uint appends an unsigned value.
func (w *Writer) Uint(x uint64) *Writer {
	w.buf = binary.AppendUvarint(w.buf, x)
	return w
}

// Int appends a signed value (zigzag encoded).
func (w *Writer) Int(x int) *Writer {
	w.buf = binary.AppendVarint(w.buf, int64(x))
	return w
}

// Ints appends a length-prefixed slice of signed values.
func (w *Writer) Ints(xs []int) *Writer {
	w.Uint(uint64(len(xs)))
	for _, x := range xs {
		w.Int(x)
	}
	return w
}

// Raw appends a length-prefixed byte string (used for nesting messages, as
// the Lemma 5.2 simulation's bundles do).
func (w *Writer) Raw(b []byte) *Writer {
	w.Uint(uint64(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// String appends a length-prefixed string. The coloring service uses it to
// store request keys and algorithm names inside cached response records.
func (w *Writer) String(s string) *Writer {
	w.Uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// Bytes returns the encoded message. The Writer must not be reused after
// the returned slice escapes to the simulator.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded size in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reader decodes varint values from a message. Errors latch: after the first
// failure all reads return zero values and Err reports the failure, so call
// sites may decode a full message and check Err once (handle errors once).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over msg.
func NewReader(msg []byte) *Reader { return &Reader{buf: msg} }

// Uint decodes an unsigned value.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.off += n
	return x
}

// Int decodes a signed value.
func (r *Reader) Int() int {
	if r.err != nil {
		return 0
	}
	x, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.off += n
	return int(x)
}

// Ints decodes a length-prefixed slice written by Writer.Ints.
func (r *Reader) Ints() []int {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) { // each element takes >= 1 byte
		r.err = ErrTruncated
		return nil
	}
	out := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.Int())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Raw decodes a length-prefixed byte string written by Writer.Raw. The
// returned slice aliases the message buffer and must not be modified.
func (r *Reader) Raw() []byte {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.err = ErrTruncated
		return nil
	}
	out := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

// ReadString decodes a length-prefixed string written by Writer.String.
// (Deliberately not named String: a side-effecting decode must not satisfy
// fmt.Stringer, or formatting a Reader would consume its stream.)
func (r *Reader) ReadString() string {
	return string(r.Raw())
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// UintLen returns the number of bytes Writer.Uint appends for x, without
// encoding anything. Compiled algorithm forms (dist.CompiledAlgo) use the
// *Len functions to account message bytes they never materialize.
func UintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// IntLen returns the number of bytes Writer.Int appends for x (zigzag).
func IntLen(x int) int {
	ux := uint64(int64(x)) << 1
	if x < 0 {
		ux = ^ux
	}
	return UintLen(ux)
}

// IntsLen returns the number of bytes Writer.Ints appends for xs.
func IntsLen(xs []int) int {
	n := UintLen(uint64(len(xs)))
	for _, x := range xs {
		n += IntLen(x)
	}
	return n
}

// EncodeInts is a convenience for single-shot encoding of signed values.
func EncodeInts(xs ...int) []byte {
	var w Writer
	for _, x := range xs {
		w.Int(x)
	}
	return w.Bytes()
}

// DecodeInts decodes exactly n signed values from msg.
func DecodeInts(msg []byte, n int) ([]int, error) {
	r := NewReader(msg)
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
