package wire

import (
	"testing"
	"testing/quick"
)

func TestRoundTripInts(t *testing.T) {
	f := func(xs []int) bool {
		var w Writer
		w.Ints(xs)
		r := NewReader(w.Bytes())
		got := r.Ints()
		if r.Err() != nil {
			return false
		}
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripMixed(t *testing.T) {
	var w Writer
	w.Uint(0).Uint(1 << 60).Int(-5).Int(12345)
	r := NewReader(w.Bytes())
	if r.Uint() != 0 || r.Uint() != 1<<60 || r.Int() != -5 || r.Int() != 12345 {
		t.Fatal("mixed round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestTruncatedLatches(t *testing.T) {
	var w Writer
	w.Int(300)
	b := w.Bytes()
	r := NewReader(b[:len(b)-1])
	_ = r.Int()
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Latched: further reads return zero values with same error.
	if r.Int() != 0 || r.Uint() != 0 || r.Ints() != nil {
		t.Fatal("latched reader returned non-zero values")
	}
}

func TestIntsLengthLie(t *testing.T) {
	// A message claiming a huge slice length must fail cleanly, not allocate.
	var w Writer
	w.Uint(1 << 40)
	r := NewReader(w.Bytes())
	if got := r.Ints(); got != nil || r.Err() == nil {
		t.Fatal("absurd length accepted")
	}
}

func TestEncodeDecodeInts(t *testing.T) {
	b := EncodeInts(7, -3, 0, 1<<40)
	got, err := DecodeInts(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{7, -3, 0, 1 << 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := DecodeInts(b, 5); err == nil {
		t.Fatal("over-read should fail")
	}
}

func TestRawRoundTrip(t *testing.T) {
	var w Writer
	w.Int(7).Raw([]byte{0xde, 0xad}).Raw(nil).Int(9)
	if w.Len() != len(w.Bytes()) {
		t.Fatal("Len disagrees with Bytes")
	}
	r := NewReader(w.Bytes())
	if r.Int() != 7 {
		t.Fatal("prefix lost")
	}
	raw := r.Raw()
	if len(raw) != 2 || raw[0] != 0xde || raw[1] != 0xad {
		t.Fatalf("raw = %x", raw)
	}
	if empty := r.Raw(); len(empty) != 0 {
		t.Fatalf("empty raw = %x", empty)
	}
	if r.Int() != 9 || r.Err() != nil || r.Remaining() != 0 {
		t.Fatal("suffix lost")
	}
}

func TestRawTruncated(t *testing.T) {
	var w Writer
	w.Raw([]byte{1, 2, 3, 4})
	b := w.Bytes()
	r := NewReader(b[:2])
	if r.Raw() != nil || r.Err() == nil {
		t.Fatal("truncated raw accepted")
	}
}

func TestSmallMessagesAreSmall(t *testing.T) {
	// An O(log n) message: a color below 2^20 fits in 3 bytes.
	b := EncodeInts(1 << 19)
	if len(b) > 3 {
		t.Fatalf("20-bit value took %d bytes", len(b))
	}
}

func TestRoundTripString(t *testing.T) {
	f := func(a, b string, x int) bool {
		var w Writer
		w.String(a).Int(x).String(b)
		r := NewReader(w.Bytes())
		if r.ReadString() != a || r.Int() != x || r.ReadString() != b {
			return false
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	r := NewReader([]byte{0x05, 'a', 'b'})
	if r.ReadString() != "" || r.Err() == nil {
		t.Fatal("truncated string must latch an error")
	}
}

// TestLenMatchesWriter: the *Len accounting helpers report exactly the bytes
// the corresponding Writer methods append, across the varint width
// boundaries, the sign fold, and the empty/long-slice cases.
func TestLenMatchesWriter(t *testing.T) {
	uints := []uint64{0, 1, 127, 128, 16383, 16384, 1 << 21, 1<<42 + 5, 1<<63 - 1, 1<<64 - 1}
	for _, x := range uints {
		var w Writer
		w.Uint(x)
		if got, want := UintLen(x), len(w.Bytes()); got != want {
			t.Fatalf("UintLen(%d) = %d, Writer.Uint wrote %d", x, got, want)
		}
	}
	ints := []int{0, 1, -1, 63, 64, -64, -65, 8191, -8192, 1 << 30, -(1 << 30), int(1)<<62 - 1, -(int(1) << 62)}
	for _, x := range ints {
		var w Writer
		w.Int(x)
		if got, want := IntLen(x), len(w.Bytes()); got != want {
			t.Fatalf("IntLen(%d) = %d, Writer.Int wrote %d", x, got, want)
		}
	}
	slices := [][]int{
		nil,
		{},
		{0},
		{-1, 1, -128, 128},
		make([]int, 200), // length prefix crosses the one-byte varint boundary
		{1 << 40, -(1 << 40), 7, -7, 1<<62 - 1},
	}
	for _, xs := range slices {
		var w Writer
		w.Ints(xs)
		if got, want := IntsLen(xs), len(w.Bytes()); got != want {
			t.Fatalf("IntsLen(%v) = %d, Writer.Ints wrote %d", xs, got, want)
		}
	}
}
