// Package fewcolors implements the service's fewer-colors edge-coloring
// tier: a deterministic LOCAL algorithm whose measured palette approaches
// Δ + o(Δ) on the benched graph families, trading extra rounds for colors —
// the successor-line tradeoff (Ghaffari–Kuhn–Maus–Uitto 1711.05469,
// Barenboim–Elkin–Maimon 1610.06759) the ROADMAP names "quality as a
// request knob".
//
// Algorithm: start from the Panconesi–Rizzi (2Δ−1)-edge-coloring, then run a
// fixed schedule of compaction sweeps over the color classes of the line
// graph. In a proper edge coloring every color class is a matching, so the
// whole class k can act simultaneously; a sweep walks k from 2Δ−1 down to 2
// and spends four rounds per class:
//
//  1. every vertex broadcasts its incident colors, so both endpoints of
//     every edge know the colors in use one step away;
//  2. each class-k edge that has no color free at both endpoints picks the
//     smallest color a held at exactly one endpoint and asks the edge
//     holding a to vacate it — naming a concrete target color b < k that is
//     free at both of that edge's endpoints (a length-2 Kempe move);
//  3. the asked edge's far endpoint arbitrates the requests it received
//     (smallest target color wins, one move per vertex side) and replies;
//     accepted vacates recolor a → b on both sides;
//  4. the class-k edges recolor to the smallest color below k now free at
//     both endpoints (first-fit descent), or keep k when none is.
//
// Descent alone reproduces first-fit stability — the fixed point the base
// coloring is already in — so the vacate step is what pushes the palette
// below it: one sweep leaves every edge e at a color at most degL(e)+1 =
// deg(u)+deg(v)−1, and repeated sweeps compact the measured palette toward
// Δ on the experiment families.
//
// Guarantees (exact, enforced by tests):
//   - the result is a legal edge coloring (the matching argument above keeps
//     the properness invariant through every step);
//   - every edge (u,v) ends with color ≤ deg(u)+deg(v)−1, so the palette is
//     bounded by PaletteBound(g) = max over edges of deg(u)+deg(v)−1 ≤ 2Δ−1;
//   - the round cost is exactly Rounds(n, Δ), engine-independent.
package fewcolors

import (
	"sort"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/panconesi"
	"repro/internal/wire"
)

// sweeps is the number of full descent passes after the base coloring. One
// pass establishes the degL(e)+1 per-edge bound; the second compacts the
// tail of edges whose first-fit slot opened up only after later classes
// moved. Further passes were measured to change nothing on the exp families.
const sweeps = 2

// Process returns the per-vertex body of the fewer-colors edge coloring.
// The returned colors are per-port (both endpoints agree on every edge);
// merge with graph.MergePortColors.
func Process() func(dist.Process) []int {
	return vertex
}

// Algo bundles Process with its generic compiled form, runnable on all four
// engines including the service's flat-array hot path.
func Algo() dist.Algo[[]int] {
	return dist.Interpret(vertex)
}

func vertex(v dist.Process) []int {
	delta := v.MaxDegree()
	if delta == 0 {
		return make([]int, v.Deg())
	}
	colors := panconesi.EdgeColorStep(v, nil, delta)
	top := 2*delta - 1
	for s := 0; s < sweeps; s++ {
		for k := top; k >= 2; k-- {
			vacateClass(v, colors, k)
			descendClass(v, colors, k)
		}
	}
	return colors
}

// vacateClass runs the three negotiation rounds of one class step: broadcast
// incident colors, send vacate requests on behalf of the class-k edges, and
// arbitrate + apply the accepted moves. Every move recolors one edge from a
// color a (blocking a class-k neighbor) to a color b < k free at both of its
// endpoints, so properness is preserved move by move; the receiving endpoint
// accepts at most one move per incident color, and an edge whose both
// endpoints requested on it simultaneously is left untouched.
func vacateClass(v dist.Process, colors []int, k int) {
	deg := len(colors)

	// Round 1: broadcast incident colors; decode each neighbor's before the
	// next round recycles the buffers.
	var w wire.Writer
	w.Ints(colors)
	nbrColors := make([][]int, deg)
	for p, msg := range v.Broadcast(w.Bytes()) {
		r := wire.NewReader(msg)
		nbrColors[p] = r.Ints()
		if r.Err() != nil {
			panic("fewcolors: bad color broadcast: " + r.Err().Error())
		}
	}

	// Round 2: the owner endpoint of each class-k edge requests a vacate.
	// Both endpoints scan colors ascending with the same shared data: a color
	// free at both means plain descent will succeed (no request); the first
	// color held at exactly one endpoint is the move target, and the holder
	// becomes the owner. reqPort/reqTo remember this vertex's own request so
	// the reply can be applied and incoming traffic on that port ignored.
	reqPort, reqTo := -1, 0
	var out [][]byte
	if kp := portOf(colors, k); kp >= 0 {
		mine, theirs := colorSet(colors, k), colorSet(nbrColors[kp], k)
		for a := 1; a < k; a++ {
			if !mine[a] && !theirs[a] {
				break // descent will take a; no move needed
			}
			if mine[a] && theirs[a] {
				continue
			}
			if mine[a] { // this endpoint holds a and must free it
				q := portOf(colors, a)
				if b := freeBelow(k, colorSet(colors, k), colorSet(nbrColors[q], k)); b > 0 {
					var rw wire.Writer
					rw.Int(a)
					rw.Int(b)
					out = make([][]byte, deg)
					out[q] = rw.Bytes()
					reqPort, reqTo = q, b
				}
			}
			break
		}
	}
	in := v.Round(out)

	// Round 3: arbitrate incoming requests and reply. Requests are granted
	// in (target, current, port) order, one target color per vertex, never
	// into a color this vertex holds or has itself requested.
	type req struct{ b, a, p int }
	var reqs []req
	for p, msg := range in {
		if msg == nil || p == reqPort {
			continue
		}
		r := wire.NewReader(msg)
		a, b := r.Int(), r.Int()
		if r.Err() != nil {
			panic("fewcolors: bad vacate request: " + r.Err().Error())
		}
		if a == colors[p] && b < k {
			reqs = append(reqs, req{b, a, p})
		}
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].b != reqs[j].b {
			return reqs[i].b < reqs[j].b
		}
		if reqs[i].a != reqs[j].a {
			return reqs[i].a < reqs[j].a
		}
		return reqs[i].p < reqs[j].p
	})
	taken := colorSet(colors, k)
	if reqPort >= 0 && reqTo < k {
		taken[reqTo] = true
	}
	var replies [][]byte
	for _, rq := range reqs {
		if taken[rq.b] {
			continue
		}
		taken[rq.b] = true
		if replies == nil {
			replies = make([][]byte, deg)
		}
		var rw wire.Writer
		rw.Int(rq.b)
		replies[rq.p] = rw.Bytes()
		colors[rq.p] = rq.b
	}
	acks := v.Round(replies)

	// Apply this vertex's own request if the far endpoint granted it.
	if reqPort >= 0 && acks[reqPort] != nil {
		r := wire.NewReader(acks[reqPort])
		if b := r.Int(); r.Err() == nil && b == reqTo {
			colors[reqPort] = reqTo
		}
	}
}

// portOf returns the port colored c, or -1. Colors are distinct per vertex
// in a proper coloring, so the first match is the only one.
func portOf(colors []int, c int) int {
	for p, pc := range colors {
		if pc == c {
			return p
		}
	}
	return -1
}

// colorSet returns membership of the colors below k as a bitmap.
func colorSet(colors []int, k int) []bool {
	set := make([]bool, k)
	for _, c := range colors {
		if c > 0 && c < k {
			set[c] = true
		}
	}
	return set
}

// freeBelow returns the smallest color in 1..k-1 absent from both sets,
// or 0 when every color below k is taken on one side or the other.
func freeBelow(k int, a, b []bool) int {
	for c := 1; c < k; c++ {
		if !a[c] && !b[c] {
			return c
		}
	}
	return 0
}

// descendClass runs one descent step: every edge currently colored k (a
// matching) recolors to the smallest color below k free at both endpoints,
// or keeps k when none is. One communication round; both endpoints compute
// the same new color from the exchanged used-sets, so the per-port views
// stay consistent without a confirmation round.
func descendClass(v dist.Process, colors []int, k int) {
	deg := len(colors)
	out := make([][]byte, deg)
	for p := 0; p < deg; p++ {
		if colors[p] == k {
			var w wire.Writer
			w.Ints(otherColors(colors, p))
			out[p] = w.Bytes()
		}
	}
	in := v.Round(out)
	for p := 0; p < deg; p++ {
		if colors[p] != k || in[p] == nil {
			continue
		}
		r := wire.NewReader(in[p])
		theirs := r.Ints()
		if r.Err() != nil {
			panic("fewcolors: bad used-set message: " + r.Err().Error())
		}
		used := make([]bool, k) // used[c] for c in 1..k-1
		mark := func(cs []int) {
			for _, c := range cs {
				if c > 0 && c < k {
					used[c] = true
				}
			}
		}
		mark(otherColors(colors, p))
		mark(theirs)
		for c := 1; c < k; c++ {
			if !used[c] {
				colors[p] = c
				break
			}
		}
	}
}

// otherColors lists the colors of every port except p.
func otherColors(colors []int, p int) []int {
	out := make([]int, 0, len(colors)-1)
	for q, c := range colors {
		if q != p {
			out = append(out, c)
		}
	}
	return out
}

// Rounds returns the exact round cost for an n-vertex graph of maximum
// degree delta: the Panconesi–Rizzi base plus four rounds per (sweep, class).
func Rounds(n, delta int) int {
	if delta == 0 {
		return 0
	}
	return panconesi.Rounds(n, delta) + sweeps*4*(2*delta-2)
}

// PaletteBound returns the palette bound for the instance: the maximum over
// edges (u,v) of deg(u)+deg(v)−1 — the first-fit bound on the line graph,
// never above the base's 2Δ−1 and strictly below it whenever no two
// maximum-degree vertices are adjacent.
func PaletteBound(g *graph.Graph) int {
	bound := 0
	for _, e := range g.Edges() {
		if d := g.Deg(e.U) + g.Deg(e.V) - 1; d > bound {
			bound = d
		}
	}
	return bound
}
