package fewcolors_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/fewcolors"
	"repro/internal/graph"
	"repro/internal/panconesi"
)

// sweepSpecs covers every exp.GraphSpec family the service accepts, plus
// seed variation on the randomized ones — the ≥10-family property matrix.
func sweepSpecs() []exp.GraphSpec {
	return []exp.GraphSpec{
		{Family: "gnm", N: 80, M: 300, Seed: 3},
		{Family: "gnm", N: 80, M: 300, Seed: 7},
		{Family: "gnm", N: 120, M: 200, Seed: 1},
		{Family: "regular", N: 48, Deg: 6, Seed: 5},
		{Family: "regular", N: 48, Deg: 6, Seed: 9},
		{Family: "cycle", N: 19},
		{Family: "path", N: 17},
		{Family: "complete", N: 12},
		{Family: "tree", N: 40, Seed: 7},
		{Family: "tree", N: 40, Seed: 11},
		{Family: "geometric", N: 120, Seed: 6},
		{Family: "powercycle", N: 40, Deg: 5},
		{Family: "grid", N: 8, M: 7},
		{Family: "fig1", Deg: 9},
		{Family: "linegraph", N: 24, M: 80, Seed: 8},
		{Family: "hyperline", N: 30, M: 45, Deg: 3, Seed: 9},
	}
}

func build(t *testing.T, spec exp.GraphSpec) *graph.Graph {
	t.Helper()
	g, err := spec.Build()
	if err != nil {
		t.Fatalf("build %v: %v", spec, err)
	}
	return g
}

// TestProperAndPalette is the property sweep: on every family the result is
// a legal edge coloring whose palette stays within PaletteBound, the round
// count matches Rounds exactly, and the palette never exceeds the 2Δ−1 of
// the fast tier.
func TestProperAndPalette(t *testing.T) {
	for _, spec := range sweepSpecs() {
		t.Run(spec.String(), func(t *testing.T) {
			g := build(t, spec)
			res, err := dist.RunAlgo(g, fewcolors.Algo())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			colors, err := graph.MergePortColors(g, res.Outputs)
			if err != nil {
				t.Fatalf("merge: %v", err)
			}
			if err := graph.CheckEdgeColoring(g, colors); err != nil {
				t.Fatalf("illegal coloring: %v", err)
			}
			bound := fewcolors.PaletteBound(g)
			for id, c := range colors {
				if c < 1 || c > bound {
					e := g.EdgeAt(id)
					t.Fatalf("edge %d (%d,%d): color %d outside 1..%d", id, e.U, e.V, c, bound)
				}
			}
			delta := g.MaxDegree()
			if delta > 0 && bound > 2*delta-1 {
				t.Fatalf("PaletteBound %d exceeds 2Δ-1 = %d", bound, 2*delta-1)
			}
			if want := fewcolors.Rounds(g.N(), delta); res.Stats.Rounds != want {
				t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, want)
			}
		})
	}
}

// TestEnginesAgree pins byte-identical Outputs and Stats across all four
// engines (and a multi-shard Sharded run) on a representative subset.
func TestEnginesAgree(t *testing.T) {
	specs := []exp.GraphSpec{
		{Family: "gnm", N: 80, M: 300, Seed: 3},
		{Family: "regular", N: 48, Deg: 6, Seed: 5},
		{Family: "tree", N: 40, Seed: 7},
		{Family: "fig1", Deg: 9},
	}
	for _, spec := range specs {
		g := build(t, spec)
		ref, err := dist.RunAlgo(g, fewcolors.Algo(), dist.WithEngine(dist.Goroutines))
		if err != nil {
			t.Fatalf("%v goroutines: %v", spec, err)
		}
		variants := map[string][]dist.Option{
			"lockstep":  {dist.WithEngine(dist.Lockstep)},
			"sharded":   {dist.WithEngine(dist.Sharded)},
			"sharded-4": {dist.WithEngine(dist.Sharded), dist.WithShards(4)},
			"compiled":  {dist.WithEngine(dist.Compiled)},
		}
		for name, opts := range variants {
			res, err := dist.RunAlgo(g, fewcolors.Algo(), opts...)
			if err != nil {
				t.Fatalf("%v %s: %v", spec, name, err)
			}
			if !reflect.DeepEqual(ref.Outputs, res.Outputs) {
				t.Fatalf("%v: outputs differ: goroutines vs %s", spec, name)
			}
			if ref.Stats != res.Stats {
				t.Fatalf("%v: stats differ: goroutines %v vs %s %v", spec, ref.Stats, name, res.Stats)
			}
		}
	}
}

// TestFewerColorsThanBase verifies the tier earns its name: on the dense
// acceptance family the measured palette is strictly below the 2Δ−1 the
// fast tiers are bounded by (and below what the base PR run itself used).
func TestFewerColorsThanBase(t *testing.T) {
	if testing.Short() {
		t.Skip("dense acceptance family is slow")
	}
	g := build(t, exp.GraphSpec{Family: "gnm", N: 2000, M: 40000, Seed: 1})
	res, err := dist.RunAlgo(g, fewcolors.Algo(), dist.WithEngine(dist.Compiled))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		t.Fatalf("illegal coloring: %v", err)
	}
	used := graph.CountColors(colors)
	base, err := panconesi.EdgeColoring(g, dist.WithEngine(dist.Compiled))
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	baseColors, err := graph.MergePortColors(g, base.Outputs)
	if err != nil {
		t.Fatalf("base merge: %v", err)
	}
	baseUsed := graph.CountColors(baseColors)
	fast := 2*g.MaxDegree() - 1
	t.Logf("Δ=%d: fewcolors used %d (bound %d), pr used %d, fast palette %d",
		g.MaxDegree(), used, fewcolors.PaletteBound(g), baseUsed, fast)
	if used >= fast {
		t.Fatalf("fewcolors used %d colors, not below the fast palette %d", used, fast)
	}
	if used >= baseUsed {
		t.Fatalf("fewcolors used %d colors, not below the pr run's %d", used, baseUsed)
	}
}

// TestEmptyAndIsolated covers the degenerate corners: no edges means no
// rounds, no colors, and a zero bound.
func TestEmptyAndIsolated(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		g := graph.NewBuilder(n).Build()
		res, err := dist.RunAlgo(g, fewcolors.Algo(), dist.WithEngine(dist.Compiled))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Stats.Rounds != 0 {
			t.Fatalf("n=%d: rounds = %d, want 0", n, res.Stats.Rounds)
		}
		if got := fewcolors.PaletteBound(g); got != 0 {
			t.Fatalf("n=%d: PaletteBound = %d, want 0", n, got)
		}
		if got := fewcolors.Rounds(n, g.MaxDegree()); got != 0 {
			t.Fatalf("n=%d: Rounds = %d, want 0", n, got)
		}
	}
}

// TestOutputPin is the byte-equality pin: a fixed graph's merged coloring is
// rendered to a string once and must never drift — across engines today,
// across refactors tomorrow. Regenerating this constant is a semantics
// change and must be called out in review.
func TestOutputPin(t *testing.T) {
	g := build(t, exp.GraphSpec{Family: "fig1", Deg: 5})
	res, err := dist.RunAlgo(g, fewcolors.Algo(), dist.WithEngine(dist.Compiled))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	got := fmt.Sprintf("%v rounds=%d", colors, res.Stats.Rounds)
	const want = "[2 3 4 5 1 4 3 6 1 5 7 1 2 1 1] rounds=103"
	if got != want {
		t.Fatalf("pinned output drifted:\n got %s\nwant %s", got, want)
	}
}
