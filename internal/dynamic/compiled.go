package dynamic

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// repairBundle pairs repairAlgo with its compiled form, so repair runs opt
// into the Compiled engine and degrade gracefully under the others.
func repairBundle(sub *graph.Graph, forbidden [][]int) dist.Algo[[]int] {
	return dist.Algo[[]int]{
		Vertex:   repairAlgo(sub, forbidden),
		Compiled: &repairCompiled{forbidden: forbidden},
	}
}

// repairCompiled executes repairAlgo's round structure as flat passes over
// the CSR arrays. The per-vertex form broadcasts its full local view — one
// (farEndpoint, color) pair per incident edge — every round it participates,
// and neighbors act on the snapshot they last received. The compiled form
// keeps one `sent` array per directed edge slot holding exactly those
// snapshots: a vertex's send phase copies its live colors into its slots,
// and every read of remote state goes through `sent`, never the live array,
// reproducing the synchronous visibility (and therefore the decision rounds,
// message sizes, and Stats) of the scheduled run byte for byte.
//
// Like repairAlgo, it requires the default identifier assignment, so
// identifier order and index order agree.
type repairCompiled struct {
	forbidden [][]int
}

func (rc *repairCompiled) RunCompiled(g *graph.Graph, env dist.CompiledEnv, out [][]int) (dist.Stats, error) {
	n := g.N()
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + g.Deg(v)
	}
	m2 := off[n]
	col := make([]int32, m2)  // live colors, indexed off[v]+port
	sent := make([]int32, m2) // colors as of each vertex's last broadcast
	rev := make([]int32, m2)  // slot at the far end of the same edge
	nbrLen := make([]int, n)  // constant part of each vertex's message size
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		rp := g.ReversePorts(v)
		sum := 0
		for p, u := range nbrs {
			rev[off[v]+p] = int32(off[u] + int(rp[p]))
			sum += wire.IntLen(int(u))
		}
		nbrLen[v] = sum
	}
	msgLen := make([]int, n)
	undecided := make([]int, n)
	dirty := make([]bool, n)
	active := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		undecided[v] = g.Deg(v)
		dirty[v] = true // the initial view must be announced before halting
		active = append(active, int32(v))
	}
	used := make(map[int]bool)
	t := env.NewTally()
	for len(active) > 0 {
		if err := t.StartRound(len(active)); err != nil {
			return t.Stats, err
		}
		// Send: publish the live state of every dirty participant (a clean
		// participant re-broadcasts its unchanged last message).
		for _, vv := range active {
			v := int(vv)
			base := off[v]
			deg := off[v+1] - base
			if dirty[v] {
				ln := nbrLen[v]
				for s := base; s < base+deg; s++ {
					sent[s] = col[s]
					ln += wire.IntLen(int(col[s]))
				}
				msgLen[v] = ln
			}
			t.Messages(deg, msgLen[v])
		}
		// Receive, learn, decide: live own state, snapshot remote state.
		for _, vv := range active {
			v := int(vv)
			dirty[v] = false
			base := off[v]
			deg := off[v+1] - base
			nbrs := g.Neighbors(v)
			eids := g.IncidentEdgeIDs(v)
			// Learn decisions of edges owned by the far endpoint.
			for q := 0; q < deg; q++ {
				slot := base + q
				if col[slot] != 0 || int(nbrs[q]) > v {
					continue
				}
				if c := sent[rev[slot]]; c != 0 {
					col[slot] = c
					undecided[v]--
					dirty[v] = true
				}
			}
			// Decide owned edges whose lexicographic frontier is quiet.
			for q := 0; q < deg; q++ {
				slot := base + q
				other := int(nbrs[q])
				if col[slot] != 0 || other < v {
					continue
				}
				clear(used)
				for _, c := range rc.forbidden[eids[q]] {
					used[c] = true
				}
				blocked := false
				for r := 0; r < deg && !blocked; r++ {
					far := int(nbrs[r])
					if r == q || !lexLessPair(v, far, v, other) {
						continue
					}
					if c := col[base+r]; c == 0 {
						blocked = true
					} else {
						used[int(c)] = true
					}
				}
				u := other
				ub := off[u]
				unbrs := g.Neighbors(u)
				for j, udeg := 0, off[u+1]-ub; j < udeg && !blocked; j++ {
					far := int(unbrs[j])
					if far == v || !lexLessPair(other, far, v, other) {
						continue
					}
					if c := sent[ub+j]; c == 0 {
						blocked = true
					} else {
						used[int(c)] = true
					}
				}
				if !blocked {
					col[slot] = int32(mex(used))
					undecided[v]--
					dirty[v] = true
				}
			}
		}
		next := active[:0]
		for _, vv := range active {
			if v := int(vv); undecided[v] > 0 || dirty[v] {
				next = append(next, vv)
			}
		}
		active = next
	}
	for v := 0; v < n; v++ {
		deg := off[v+1] - off[v]
		cs := make([]int, deg)
		for p := 0; p < deg; p++ {
			cs[p] = int(col[off[v]+p])
		}
		out[v] = cs
	}
	return t.Stats, nil
}

// lexLessPair reports whether edge (a1,b1) precedes (a2,b2) after
// canonicalizing endpoint order — repairAlgo's lexLess.
func lexLessPair(a1, b1, a2, b2 int) bool {
	if a1 > b1 {
		a1, b1 = b1, a1
	}
	if a2 > b2 {
		a2, b2 = b2, a2
	}
	if a1 != a2 {
		return a1 < a2
	}
	return b1 < b2
}
