package dynamic

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
)

// TestCommitEventsMirrorColoring is the streaming-feed contract test: a
// client that sees only CommitEvents must be able to mirror the maintained
// coloring exactly. We replay a churn stream with an OnCommit hook, apply
// each event's Op to a mirrored edge set and its Changed list to a mirrored
// coloring, and require the mirror to match the maintainer's own state after
// every commit — same colors, same fingerprint, consecutive sequence numbers.
func TestCommitEventsMirrorColoring(t *testing.T) {
	streams := []exp.MutationStream{
		{Kind: "mix", Base: exp.GraphSpec{Family: "gnm", N: 32, M: 70, Seed: 2}, Ops: 80, Seed: 5},
		{Kind: "window", Base: exp.GraphSpec{Family: "cycle", N: 24}, Ops: 80, Seed: 7, Window: 10},
		{Kind: "hotspot", Base: exp.GraphSpec{Family: "gnm", N: 36, M: 80, Seed: 8}, Ops: 80, Seed: 9, Hot: 5},
	}
	for _, s := range streams {
		t.Run(s.String(), func(t *testing.T) {
			base, muts, err := s.Generate()
			if err != nil {
				t.Fatal(err)
			}
			var events []CommitEvent
			m, err := New(base, Config{Engine: dist.Compiled, OnCommit: func(ev CommitEvent) {
				events = append(events, ev)
			}})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			// Seed the mirror with the initial maintained coloring.
			mirror := make(map[graph.Edge]int)
			for id, e := range base.Edges() {
				mirror[e] = m.Colors()[id]
			}

			for i, mut := range muts {
				rep, _, err := m.Apply([]exp.Mutation{mut})
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				if len(events) != i+1 {
					t.Fatalf("op %d: %d events, want %d", i, len(events), i+1)
				}
				ev := events[i]
				if ev.Seq != int64(i+1) {
					t.Fatalf("op %d: seq %d, want %d", i, ev.Seq, i+1)
				}
				if ev.Op != mut {
					t.Fatalf("op %d: event op %+v, want %+v", i, ev.Op, mut)
				}
				if ev.Report.Dirty != len(ev.Changed) {
					t.Fatalf("op %d: Dirty %d but %d changed entries", i, ev.Report.Dirty, len(ev.Changed))
				}
				if ev.Report != rep {
					t.Fatalf("op %d: event report %+v, Apply returned %+v", i, ev.Report, rep)
				}
				// Apply the delta to the mirror: edge-set change first, then
				// the recolors (an insert's own edge is always in Changed).
				if mut.Op == exp.OpDelete {
					delete(mirror, canonEdge(mut.U, mut.V))
				}
				for j, ch := range ev.Changed {
					if ch.U >= ch.V {
						t.Fatalf("op %d: changed[%d] not canonical: %+v", i, j, ch)
					}
					if j > 0 && !lexLessEdge(graph.Edge{U: ev.Changed[j-1].U, V: ev.Changed[j-1].V}, graph.Edge{U: ch.U, V: ch.V}) {
						t.Fatalf("op %d: changed list out of lexicographic order at %d", i, j)
					}
					mirror[graph.Edge{U: ch.U, V: ch.V}] = ch.Color
				}
				if ev.Fingerprint != m.Fingerprint() {
					t.Fatalf("op %d: event fingerprint differs from maintainer's", i)
				}
				g := m.Graph()
				if ev.N != g.N() || ev.M != g.M() || ev.Delta != g.MaxDegree() {
					t.Fatalf("op %d: event shape (%d,%d,%d) vs graph (%d,%d,%d)",
						i, ev.N, ev.M, ev.Delta, g.N(), g.M(), g.MaxDegree())
				}
				want := make(map[graph.Edge]int, g.M())
				cols := m.Colors()
				for id, e := range g.Edges() {
					want[e] = cols[id]
				}
				if !reflect.DeepEqual(mirror, want) {
					t.Fatalf("op %d (%s %d-%d): mirror diverged from maintained coloring", i, mut.Op, mut.U, mut.V)
				}
			}
		})
	}
}

// TestNoCommitEventOnFailure pins that failed mutations emit no event: the
// feed only ever carries committed state.
func TestNoCommitEventOnFailure(t *testing.T) {
	b := graph.NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	var events int
	m, err := New(g, Config{OnCommit: func(CommitEvent) { events++ }})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Insert(0, 1); err == nil { // duplicate insert
		t.Fatal("duplicate insert succeeded")
	}
	if _, err := m.Delete(0, 3); err == nil { // not an edge
		t.Fatal("delete of a non-edge succeeded")
	}
	if events != 0 {
		t.Fatalf("%d commit events from failed mutations", events)
	}
	if _, err := m.Insert(0, 2); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Fatalf("%d commit events after one successful insert, want 1", events)
	}
}
