// Package dynamic maintains a legal edge coloring under edge churn.
//
// The LOCAL-model algorithms this repository reproduces are local by
// construction: inserting or deleting an edge can only invalidate colors in
// a bounded neighborhood of the touched edge, and bounded neighborhood
// independence keeps that repair region small. Package dynamic turns that
// locality into a first-class workload: a Maintainer owns a mutable overlay
// over an immutable CSR graph (graph.Overlay) and, after every mutation,
// restores the coloring by recoloring only the affected region — executed as
// a real distributed run of the dist engines on the induced repair subgraph
// — instead of recomputing the whole graph.
//
// # The canonical coloring
//
// The maintained coloring is pinned to an explicit, centrally recomputable
// contract. The canonical coloring of a graph assigns every edge, in
// increasing lexicographic (U, V) order (= canonical edge-id order), the
// smallest color >= 1 not used by any lexicographically smaller incident
// edge. It is the unique fixpoint of
//
//	color(e) = mex{ color(f) : f incident to e, f <lex e }
//
// and uses at most 2Δ-1 colors. CanonicalColors computes it sequentially;
// CanonicalRun computes the same colors as a distributed run (each edge
// decides once every lexicographically smaller incident edge has decided,
// so scheduling cannot leak into the output). TestCanonicalRunMatches pins
// the two against each other on every generator family.
//
// # The repair-region contract
//
// Because the canonical coloring is a fixpoint of a local equation, a
// mutation invalidates exactly the edges whose fixpoint inputs change, and
// that set is discoverable by change propagation: the touched edge (for an
// insert) or the incident lexicographic successors of the touched edge (for
// a delete) are re-evaluated, and any edge whose color changes pushes its
// own incident successors, in lexicographic order, until the frontier is
// quiet. The dirty edges form the repair subgraph; committed neighbors
// enter as per-edge forbidden-color sets. The distributed repair run then
// recolors exactly the dirty edges, and the result is — provably and, in
// the tests, byte-verifiably — identical to CanonicalColors of the whole
// mutated graph. Repair cost is measured in dist.Stats.Activations:
// proportional to the affected region, not to n.
package dynamic

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// CanonicalColors returns the canonical coloring of g: every edge, in
// canonical edge-id (= lexicographic) order, takes the smallest color >= 1
// not used by a lexicographically smaller incident edge. This sequential
// recompute is the ground truth the Maintainer's incrementally repaired
// coloring is byte-compared against.
func CanonicalColors(g *graph.Graph) []int {
	colors := make([]int, g.M())
	used := make(map[int]bool)
	for id, e := range g.Edges() {
		clear(used)
		for _, w := range [2]int{e.U, e.V} {
			for _, f := range g.IncidentEdgeIDs(w) {
				if int(f) < id {
					used[colors[f]] = true
				}
			}
		}
		colors[id] = mex(used)
	}
	return colors
}

// mex returns the smallest color >= 1 not marked used.
func mex(used map[int]bool) int {
	for c := 1; ; c++ {
		if !used[c] {
			return c
		}
	}
}

// CanonicalRun computes CanonicalColors(g) as a distributed run: every edge
// is treated as dirty with no external constraints, so the repair algorithm
// degenerates to the full canonical computation. Returns the merged per-edge
// colors and the run's cost. Callers with a reusable runner pool over g pass
// it as run; a nil run falls back to dist.Run.
func CanonicalRun(g *graph.Graph, run RunFunc, opts ...dist.Option) ([]int, dist.Stats, error) {
	if run == nil {
		run = func(a dist.Algo[[]int], opts ...dist.Option) (*dist.Result[[]int], error) {
			return dist.RunAlgo(g, a, opts...)
		}
	}
	res, err := run(repairBundle(g, make([][]int, g.M())), opts...)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		return nil, dist.Stats{}, fmt.Errorf("dynamic: canonical run produced an illegal coloring: %w", err)
	}
	return colors, res.Stats, nil
}

// RunFunc executes one distributed run of a bundled edge algorithm; it is
// the shape shared by dist.RunAlgo, Runner.RunAlgo, and Pool.RunAlgo bound
// to a graph. Passing the bundle (rather than a bare per-vertex function)
// lets pooled runs execute the compiled form under dist.Compiled.
type RunFunc func(a dist.Algo[[]int], opts ...dist.Option) (*dist.Result[[]int], error)
