package dynamic

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// repairAlgo returns the distributed recoloring process for a repair
// subgraph: every edge of sub is dirty and must take its canonical color
// given the per-edge forbidden sets (colors of lexicographically smaller
// committed edges outside the subgraph; forbidden[id] constrains the sub
// edge with that id, nil meaning unconstrained).
//
// The algorithm is the dependency-ordered greedy: the edge (u, v) is decided
// by its smaller endpoint as soon as every lexicographically smaller
// incident dirty edge has a color, taking the smallest color >= 1 outside
// forbidden ∪ {colors of the lexicographically smaller incident edges}.
// Decisions are final, so the run computes the unique greedy fixpoint
// regardless of engine or scheduling — byte-identical to the sequential
// first-fit pass CanonicalColors performs, restricted to the dirty set.
//
// Per round every active vertex broadcasts its local view — for each
// incident edge, the far endpoint and the edge's color (0 = undecided) — so
// an owner can check the lexicographic frontier at both endpoints. A vertex
// halts one round after all its incident edges are decided (the extra round
// publishes the final view to the neighbors still deciding). Messages are
// O(deg·log n) bytes; rounds are bounded by twice the length of the longest
// lexicographically increasing path in the dirty region's line graph.
//
// Vertex identifiers of sub must be the default assignment (Builder output;
// ID(v) = v+1), so identifier order, index order, and lexicographic edge
// order agree.
func repairAlgo(sub *graph.Graph, forbidden [][]int) func(dist.Process) []int {
	return func(p dist.Process) []int {
		me := p.ID() - 1 // default ids: identifier order = index order
		deg := p.Deg()
		nbrs := sub.Neighbors(me)
		eids := sub.IncidentEdgeIDs(me)
		colors := make([]int, deg)
		// view[q] is the last state vector received from the neighbor on
		// port q: flat (farEndpoint, color) pairs for each of its incident
		// edges; nil until its first message arrives.
		view := make([][]int, deg)
		used := make(map[int]bool)

		// lexLess reports whether edge (a1,b1) precedes (a2,b2)
		// lexicographically after canonicalizing endpoint order.
		lexLess := func(a1, b1, a2, b2 int) bool {
			if a1 > b1 {
				a1, b1 = b1, a1
			}
			if a2 > b2 {
				a2, b2 = b2, a2
			}
			if a1 != a2 {
				return a1 < a2
			}
			return b1 < b2
		}

		var msg []byte
		dirty := true // the initial view must be announced before halting
		for {
			done := true
			for _, c := range colors {
				if c == 0 {
					done = false
					break
				}
			}
			if done && !dirty {
				return colors
			}
			if dirty {
				var w wire.Writer
				for q := 0; q < deg; q++ {
					w.Int(int(nbrs[q])).Int(colors[q])
				}
				msg = w.Bytes()
			}
			in := p.Broadcast(msg)
			dirty = false
			for q, b := range in {
				if b == nil {
					continue // neighbor silent (halted); last view stands
				}
				r := wire.NewReader(b)
				flat := view[q]
				flat = flat[:0]
				for r.Remaining() > 0 {
					flat = append(flat, r.Int(), r.Int())
				}
				if r.Err() != nil {
					panic("dynamic: corrupt repair message: " + r.Err().Error())
				}
				view[q] = flat
			}
			// Learn decisions of edges owned by the far endpoint.
			for q := 0; q < deg; q++ {
				if colors[q] != 0 || int(nbrs[q]) > me {
					continue // already known, or this vertex is the owner
				}
				for i := 0; i+1 < len(view[q]); i += 2 {
					if view[q][i] == me && view[q][i+1] != 0 {
						colors[q] = view[q][i+1]
						dirty = true
					}
				}
			}
			// Decide owned edges whose lexicographic frontier is quiet.
			for q := 0; q < deg; q++ {
				other := int(nbrs[q])
				if colors[q] != 0 || other < me {
					continue
				}
				clear(used)
				for _, c := range forbidden[eids[q]] {
					used[c] = true
				}
				blocked := view[q] == nil
				for r := 0; r < deg && !blocked; r++ {
					if r == q || !lexLess(me, int(nbrs[r]), me, other) {
						continue
					}
					if colors[r] == 0 {
						blocked = true
					} else {
						used[colors[r]] = true
					}
				}
				for i := 0; i+1 < len(view[q]) && !blocked; i += 2 {
					far, c := view[q][i], view[q][i+1]
					if far == me || !lexLess(other, far, me, other) {
						continue
					}
					if c == 0 {
						blocked = true
					} else {
						used[c] = true
					}
				}
				if !blocked {
					colors[q] = mex(used)
					dirty = true
				}
			}
		}
	}
}
