package dynamic

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

var canonicalFamilies = []struct {
	name string
	g    func() *graph.Graph
}{
	{"gnm", func() *graph.Graph { return graph.GNM(48, 140, 3) }},
	{"cycle", func() *graph.Graph { return graph.Cycle(17) }},
	{"path", func() *graph.Graph { return graph.Path(9) }},
	{"complete", func() *graph.Graph { return graph.Complete(7) }},
	{"tree", func() *graph.Graph { return graph.RandomTree(40, 5) }},
	{"powercycle", func() *graph.Graph { return graph.PowerOfCycle(24, 3) }},
	{"grid", func() *graph.Graph { return graph.Grid(6, 5) }},
	{"star", func() *graph.Graph {
		b := graph.NewBuilder(9)
		for v := 1; v < 9; v++ {
			_ = b.AddEdge(0, v)
		}
		return b.Build()
	}},
	{"single-edge", func() *graph.Graph {
		b := graph.NewBuilder(2)
		_ = b.AddEdge(0, 1)
		return b.Build()
	}},
}

// TestCanonicalColorsLegal: the sequential canonical coloring is a legal
// edge coloring within the first-fit palette bound 2Δ-1.
func TestCanonicalColorsLegal(t *testing.T) {
	for _, f := range canonicalFamilies {
		g := f.g()
		colors := CanonicalColors(g)
		if err := graph.CheckEdgeColoring(g, colors); err != nil {
			t.Errorf("%s: %v", f.name, err)
		}
		if max, bound := graph.MaxColor(colors), 2*g.MaxDegree()-1; max > bound {
			t.Errorf("%s: max color %d exceeds 2Δ-1 = %d", f.name, max, bound)
		}
	}
}

// TestCanonicalRunMatches: the distributed canonical run equals the
// sequential recompute byte-for-byte, on every engine.
func TestCanonicalRunMatches(t *testing.T) {
	engines := []dist.Engine{dist.Goroutines, dist.Lockstep, dist.Sharded, dist.Compiled}
	for _, f := range canonicalFamilies {
		g := f.g()
		want := CanonicalColors(g)
		for _, e := range engines {
			got, stats, err := CanonicalRun(g, nil, dist.WithEngine(e), dist.WithShards(3))
			if err != nil {
				t.Fatalf("%s/%v: %v", f.name, e, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%v: distributed canonical run diverged from sequential recompute", f.name, e)
			}
			if g.M() > 0 && stats.Activations == 0 {
				t.Fatalf("%s/%v: full run reported zero activations", f.name, e)
			}
		}
	}
}
