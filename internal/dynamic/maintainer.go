package dynamic

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
)

// Config sizes a Maintainer. The zero value is usable.
type Config struct {
	// Engine is the dist scheduler repair runs execute on.
	Engine dist.Engine
	// Shards pins the shard count of Sharded runs (0 = GOMAXPROCS).
	Shards int
	// Runners caps each pooled runner set (<= 0 means 2). Repair subgraphs
	// recur under churn — hotspot streams especially — so runners are pooled
	// per subgraph fingerprint.
	Runners int
	// PoolEntries bounds the LRU of runner pools keyed by repair-subgraph
	// fingerprint (<= 0 means 16). The full graph's pool for canonical
	// recomputes lives in the same LRU.
	PoolEntries int
	// CompactPending is the churn-layer size that triggers compaction back
	// to CSR: 0 means the adaptive default max(64, m/4); < 0 disables
	// auto-compaction (Compact can still be called explicitly).
	CompactPending int
	// OnCommit, when set, observes every successfully committed mutation:
	// it is called under the maintainer's lock, after the repair has been
	// spliced and seam-checked, with the exact recolor delta of that
	// mutation. Calls arrive in commit order with consecutive sequence
	// numbers — the hook is the streaming feed's source of truth. It must
	// not call back into the Maintainer (deadlock) and should return
	// quickly: the mutating writer waits on it.
	OnCommit func(CommitEvent)
}

// ChangedColor is one entry of a commit's recolor delta: edge (U, V) now has
// color Color. U < V (canonical edge orientation).
type ChangedColor struct {
	U     int `json:"u"`
	V     int `json:"v"`
	Color int `json:"color"`
}

// CommitEvent is the delta of one committed mutation, as observed by
// Config.OnCommit: everything a mirror needs to track the maintained
// coloring incrementally. Applying Op to the previous edge set and Changed
// to the previous coloring (deleting the deleted edge's entry) yields the
// exact post-commit state, whose identity Fingerprint names.
type CommitEvent struct {
	// Seq is the 1-based count of committed mutations of this maintainer;
	// consecutive events have consecutive Seq.
	Seq int64
	// Op is the committed mutation.
	Op exp.Mutation
	// Report is the repair scope of this mutation (Dirty == len(Changed)).
	Report Report
	// Changed lists the edges whose color changed, in lexicographic order.
	// An insert always includes the new edge; a deletion may be empty (the
	// cascade was empty) — the deleted edge itself is never listed.
	Changed []ChangedColor
	// Fingerprint, N, M, Delta describe the graph after the commit.
	Fingerprint graph.Fingerprint
	N, M, Delta int
}

// Report is the scope of one mutation's repair: how much of the graph the
// change actually touched. Sum of Stats over repairs is in Stats.
type Report struct {
	// Dirty is the number of edges whose color changed (and were recolored
	// by the repair run). 0 means the mutation needed no recoloring at all
	// (a deletion whose cascade is empty).
	Dirty int `json:"dirty"`
	// Boundary is the number of committed edges adjacent to the dirty set
	// whose colors entered the repair as constraints.
	Boundary int `json:"boundary"`
	// Vertices is the vertex count of the induced repair subgraph.
	Vertices int `json:"vertices"`
	// Stats is the cost of the repair run (zero if Dirty == 0). Activations
	// is bounded by Vertices·Rounds — the affected region, not n.
	Stats dist.Stats `json:"stats"`
}

func (r *Report) add(o Report) {
	r.Dirty += o.Dirty
	r.Boundary += o.Boundary
	r.Vertices += o.Vertices
	r.Stats.Rounds += o.Stats.Rounds
	r.Stats.Bytes += o.Stats.Bytes
	r.Stats.Activations += o.Stats.Activations
	if o.Stats.MaxMessageBytes > r.Stats.MaxMessageBytes {
		r.Stats.MaxMessageBytes = o.Stats.MaxMessageBytes
	}
}

// Stats is the cumulative accounting of a Maintainer.
type Stats struct {
	Mutations int64 `json:"mutations"`
	Inserts   int64 `json:"inserts"`
	Deletes   int64 `json:"deletes"`
	// Repairs counts the distributed repair runs (mutations with Dirty > 0).
	Repairs int64 `json:"repairs"`
	// RepairedEdges / RepairVertices / RepairRounds / RepairActivations sum
	// the per-repair Report fields; RepairActivations versus
	// FullActivations is the locality claim in numbers.
	RepairedEdges     int64 `json:"repairedEdges"`
	RepairVertices    int64 `json:"repairVertices"`
	RepairRounds      int64 `json:"repairRounds"`
	RepairActivations int64 `json:"repairActivations"`
	// MaxDirty is the largest single repair.
	MaxDirty int `json:"maxDirty"`
	// FullRuns counts whole-graph canonical runs (the initial coloring);
	// FullActivations sums their activation counts.
	FullRuns        int64 `json:"fullRuns"`
	FullActivations int64 `json:"fullActivations"`
	// Compactions counts overlay compactions back to CSR.
	Compactions int64 `json:"compactions"`
}

// Maintainer owns a mutable graph (a graph.Overlay) and keeps the canonical
// edge coloring of its current state: after every Insert or Delete it
// discovers the exact set of edges whose canonical color changed, runs the
// distributed repair on the induced subgraph, splices the result back, and
// legality-checks the seam. At all times Colors() is byte-identical to
// CanonicalColors(Graph()) — the documented recompute contract — while
// costing only the affected region per mutation. Safe for concurrent use;
// mutations serialize.
type Maintainer struct {
	mu     sync.Mutex
	cfg    Config
	ov     *graph.Overlay
	colors map[graph.Edge]int
	pools  *poolLRU
	stats  Stats
	closed bool

	// scratch reused across repairs
	nbrBuf []int32
}

// New builds a Maintainer over base (which must carry default vertex
// identifiers) and computes the initial canonical coloring with a
// distributed full run.
func New(base *graph.Graph, cfg Config) (*Maintainer, error) {
	if cfg.Runners <= 0 {
		cfg.Runners = 2
	}
	if cfg.PoolEntries <= 0 {
		cfg.PoolEntries = 16
	}
	ov, err := graph.NewOverlay(base)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		cfg:    cfg,
		ov:     ov,
		colors: make(map[graph.Edge]int, base.M()),
		pools:  newPoolLRU(cfg.PoolEntries, cfg.Runners),
	}
	if err := m.recolorAll(base); err != nil {
		m.pools.close()
		return nil, err
	}
	return m, nil
}

// recolorAll replaces the whole coloring with the canonical coloring of g,
// computed distributedly on g's pooled runners. Caller holds mu (or is New).
func (m *Maintainer) recolorAll(g *graph.Graph) error {
	pool := m.pools.get(g)
	colors, stats, err := CanonicalRun(g, pool.RunAlgo, m.opts()...)
	if err != nil {
		return err
	}
	clear(m.colors)
	for id, e := range g.Edges() {
		m.colors[e] = colors[id]
	}
	m.stats.FullRuns++
	m.stats.FullActivations += int64(stats.Activations)
	return nil
}

func (m *Maintainer) opts() []dist.Option {
	return []dist.Option{dist.WithEngine(m.cfg.Engine), dist.WithShards(m.cfg.Shards)}
}

// Insert adds the edge (u, v) and repairs the coloring. The returned Report
// is the repair's scope.
func (m *Maintainer) Insert(u, v int) (Report, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Report{}, errClosed
	}
	if err := m.ov.Insert(u, v); err != nil {
		return Report{}, err
	}
	m.stats.Mutations++
	m.stats.Inserts++
	rep, changed, err := m.repair([]graph.Edge{canonEdge(u, v)})
	if err != nil {
		// The overlay mutated but the coloring did not: serving it would
		// violate the contract, so the maintainer poisons itself.
		m.closed = true
		m.pools.close()
		return rep, err
	}
	m.maybeCompact()
	m.commit(exp.Mutation{Op: exp.OpInsert, U: u, V: v}, rep, changed)
	return rep, nil
}

// Delete removes the edge (u, v) and repairs the coloring. Deletions often
// repair for free: removing a constraint only lets later edges move to
// smaller colors, and the cascade is empty whenever no incident successor
// can improve.
func (m *Maintainer) Delete(u, v int) (Report, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Report{}, errClosed
	}
	e := canonEdge(u, v)
	if err := m.ov.Delete(u, v); err != nil {
		return Report{}, err
	}
	delete(m.colors, e)
	m.stats.Mutations++
	m.stats.Deletes++
	// The deleted edge's color was an input to every incident lexicographic
	// successor; those are the change-propagation seeds.
	seeds := m.incidentSuccessors(e)
	rep, changed, err := m.repair(seeds)
	if err != nil {
		m.closed = true // see Insert: a failed repair poisons the maintainer
		m.pools.close()
		return rep, err
	}
	m.maybeCompact()
	m.commit(exp.Mutation{Op: exp.OpDelete, U: u, V: v}, rep, changed)
	return rep, nil
}

// commit fires the OnCommit hook for one landed mutation. Caller holds mu,
// so events are serialized in commit order; Seq is the mutation count, which
// only commits advance.
func (m *Maintainer) commit(op exp.Mutation, rep Report, changed []ChangedColor) {
	if m.cfg.OnCommit == nil {
		return
	}
	m.cfg.OnCommit(CommitEvent{
		Seq:         m.stats.Mutations,
		Op:          op,
		Report:      rep,
		Changed:     changed,
		Fingerprint: m.ov.Fingerprint(),
		N:           m.ov.N(),
		M:           m.ov.M(),
		Delta:       m.ov.MaxDegree(),
	})
}

var errClosed = errors.New("dynamic: maintainer closed")

func canonEdge(u, v int) graph.Edge {
	if u > v {
		u, v = v, u
	}
	return graph.Edge{U: u, V: v}
}

func lexLessEdge(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// incidentSuccessors lists the current edges incident to e that follow it
// lexicographically, deduplicated (an edge sharing both endpoints cannot
// exist in a simple graph, so the two endpoint scans are disjoint except
// for e itself, which is excluded by the strict comparison).
func (m *Maintainer) incidentSuccessors(e graph.Edge) []graph.Edge {
	var out []graph.Edge
	for _, w := range [2]int{e.U, e.V} {
		m.nbrBuf = m.ov.AppendNeighbors(w, m.nbrBuf[:0])
		for _, x := range m.nbrBuf {
			f := canonEdge(w, int(x))
			if lexLessEdge(e, f) {
				out = append(out, f)
			}
		}
	}
	return out
}

// repair runs the change-propagation discovery from the seed edges and, if
// any canonical color actually changes, recolors the dirty set with a
// distributed run on the induced repair subgraph. Caller holds mu. changed
// is the recolor delta in lexicographic edge order, materialized only when
// an OnCommit hook will consume it.
func (m *Maintainer) repair(seeds []graph.Edge) (Report, []ChangedColor, error) {
	dirty, staged := m.discover(seeds)
	if len(dirty) == 0 {
		return Report{}, nil, nil
	}
	sub, origVerts, forbidden, boundary := m.repairSubgraph(dirty)
	pool := m.pools.get(sub)
	res, err := pool.RunAlgo(repairBundle(sub, forbidden), m.opts()...)
	if err != nil {
		return Report{}, nil, err
	}
	subColors, err := graph.MergePortColors(sub, res.Outputs)
	if err != nil {
		return Report{}, nil, err
	}
	// The distributed run and the discovery pass compute the same greedy
	// fixpoint by construction; a mismatch means the determinism contract
	// broke, which must fail loudly, never splice.
	for id, se := range sub.Edges() {
		e := canonEdge(origVerts[se.U], origVerts[se.V])
		if subColors[id] != staged[e] {
			return Report{}, nil, fmt.Errorf("dynamic: repair of %v computed color %d, discovery staged %d", e, subColors[id], staged[e])
		}
	}
	for e, c := range staged {
		m.colors[e] = c
	}
	if err := m.checkSeam(dirty); err != nil {
		return Report{}, nil, err
	}
	var changed []ChangedColor
	if m.cfg.OnCommit != nil {
		changed = make([]ChangedColor, len(dirty))
		for i, e := range dirty { // dirty is already in lexicographic order
			changed[i] = ChangedColor{U: e.U, V: e.V, Color: staged[e]}
		}
	}
	rep := Report{Dirty: len(dirty), Boundary: boundary, Vertices: sub.N(), Stats: res.Stats}
	m.stats.Repairs++
	m.stats.RepairedEdges += int64(rep.Dirty)
	m.stats.RepairVertices += int64(rep.Vertices)
	m.stats.RepairRounds += int64(rep.Stats.Rounds)
	m.stats.RepairActivations += int64(rep.Stats.Activations)
	if rep.Dirty > m.stats.MaxDirty {
		m.stats.MaxDirty = rep.Dirty
	}
	return rep, changed, nil
}

// discover runs change propagation: re-evaluate the canonical fixpoint
// equation at each seed in lexicographic order; every edge whose color
// changes stages its new color and pushes its incident successors. Edges
// are processed in lexicographic order (a min-heap), and propagation only
// ever pushes successors, so when an edge is evaluated all lexicographically
// smaller colors are final — the staged set is exactly the set of edges on
// which the canonical colorings of the old and new graphs differ.
func (m *Maintainer) discover(seeds []graph.Edge) ([]graph.Edge, map[graph.Edge]int) {
	staged := make(map[graph.Edge]int)
	var dirty []graph.Edge
	h := &edgeHeap{}
	pushed := make(map[graph.Edge]bool)
	push := func(e graph.Edge) {
		if !pushed[e] {
			pushed[e] = true
			h.push(e)
		}
	}
	for _, e := range seeds {
		push(e)
	}
	used := make(map[int]bool)
	for h.len() > 0 {
		e := h.pop()
		clear(used)
		for _, w := range [2]int{e.U, e.V} {
			m.nbrBuf = m.ov.AppendNeighbors(w, m.nbrBuf[:0])
			for _, x := range m.nbrBuf {
				f := canonEdge(w, int(x))
				if !lexLessEdge(f, e) {
					continue
				}
				if c, ok := staged[f]; ok {
					used[c] = true
				} else {
					used[m.colors[f]] = true
				}
			}
		}
		newC := mex(used)
		if newC == m.colors[e] { // 0 for a new edge, so an insert always stages
			continue
		}
		staged[e] = newC
		dirty = append(dirty, e)
		for _, f := range m.incidentSuccessors(e) {
			push(f)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return lexLessEdge(dirty[i], dirty[j]) })
	return dirty, staged
}

// repairSubgraph builds the induced repair subgraph: exactly the dirty
// edges, on their endpoints (relabelled order-preservingly, so lexicographic
// edge order carries over). forbidden[subEdgeID] lists the colors of
// committed lexicographically smaller incident edges — the boundary
// constraints; boundary counts the distinct committed edges involved.
func (m *Maintainer) repairSubgraph(dirty []graph.Edge) (*graph.Graph, []int, [][]int, int) {
	dirtySet := make(map[graph.Edge]bool, len(dirty))
	vertSet := make(map[int]bool)
	for _, e := range dirty {
		dirtySet[e] = true
		vertSet[e.U] = true
		vertSet[e.V] = true
	}
	origVerts := make([]int, 0, len(vertSet))
	for v := range vertSet {
		origVerts = append(origVerts, v)
	}
	sort.Ints(origVerts)
	toSub := make(map[int]int, len(origVerts))
	for i, v := range origVerts {
		toSub[v] = i
	}
	b := graph.NewBuilder(len(origVerts))
	for _, e := range dirty {
		_ = b.AddEdge(toSub[e.U], toSub[e.V])
	}
	sub := b.Build()
	forbidden := make([][]int, sub.M())
	boundarySet := make(map[graph.Edge]bool)
	used := make(map[int]bool)
	for id, se := range sub.Edges() {
		e := canonEdge(origVerts[se.U], origVerts[se.V])
		clear(used)
		for _, w := range [2]int{e.U, e.V} {
			m.nbrBuf = m.ov.AppendNeighbors(w, m.nbrBuf[:0])
			for _, x := range m.nbrBuf {
				f := canonEdge(w, int(x))
				if dirtySet[f] || !lexLessEdge(f, e) {
					continue
				}
				boundarySet[f] = true
				used[m.colors[f]] = true
			}
		}
		if len(used) > 0 {
			fb := make([]int, 0, len(used))
			for c := range used {
				fb = append(fb, c)
			}
			sort.Ints(fb)
			forbidden[id] = fb
		}
	}
	return sub, origVerts, forbidden, len(boundarySet)
}

// checkSeam verifies legality locally around the repaired edges: no dirty
// edge may share a color with any incident edge of the current graph. The
// canonical contract makes this a no-op in a correct run; it is the cheap
// guard that a splice bug cannot silently corrupt the maintained coloring.
func (m *Maintainer) checkSeam(dirty []graph.Edge) error {
	for _, e := range dirty {
		c := m.colors[e]
		for _, w := range [2]int{e.U, e.V} {
			m.nbrBuf = m.ov.AppendNeighbors(w, m.nbrBuf[:0])
			for _, x := range m.nbrBuf {
				f := canonEdge(w, int(x))
				if f != e && m.colors[f] == c {
					return fmt.Errorf("dynamic: seam violation: edges %v and %v share color %d", e, f, c)
				}
			}
		}
	}
	return nil
}

// maybeCompact compacts the overlay back to CSR when the churn layer
// outgrows the configured threshold. Compaction changes no colors — the
// coloring is keyed by endpoints, and the edge set is unchanged.
func (m *Maintainer) maybeCompact() {
	if m.cfg.CompactPending < 0 {
		return
	}
	threshold := m.cfg.CompactPending
	if threshold == 0 {
		threshold = m.ov.Base().M() / 4
		if threshold < 64 {
			threshold = 64
		}
	}
	if m.ov.Pending() >= threshold {
		m.ov.Compact()
		m.stats.Compactions++
	}
}

// Compact forces an overlay compaction.
func (m *Maintainer) Compact() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ov.Compact()
	m.stats.Compactions++
}

// Graph materializes the current mutated graph (memoized between
// mutations).
func (m *Maintainer) Graph() *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ov.Materialize()
}

// Colors returns the maintained coloring in the canonical edge-id order of
// Graph(). It is byte-identical to CanonicalColors(Graph()).
func (m *Maintainer) Colors() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.ov.Materialize()
	out := make([]int, g.M())
	for id, e := range g.Edges() {
		out[id] = m.colors[e]
	}
	return out
}

// Snapshot returns the current fingerprint, shape, and coloring as one
// atomic read, so concurrent mutations cannot tear a (fingerprint, colors)
// pair apart — the pair is what fingerprint-keyed caches store.
func (m *Maintainer) Snapshot() (fp graph.Fingerprint, n, mm, delta int, colors []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.ov.Materialize()
	colors = make([]int, g.M())
	for id, e := range g.Edges() {
		colors[id] = m.colors[e]
	}
	return m.ov.Fingerprint(), m.ov.N(), m.ov.M(), m.ov.MaxDegree(), colors
}

// ColorOf returns the color of edge (u, v), if present.
func (m *Maintainer) ColorOf(u, v int) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.colors[canonEdge(u, v)]
	return c, ok
}

// Fingerprint returns the incrementally tracked edge-set fingerprint of the
// current graph — the cache key the service invalidates on.
func (m *Maintainer) Fingerprint() graph.Fingerprint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ov.Fingerprint()
}

// N, M, MaxDegree report the current shape.
func (m *Maintainer) N() int { m.mu.Lock(); defer m.mu.Unlock(); return m.ov.N() }
func (m *Maintainer) M() int { m.mu.Lock(); defer m.mu.Unlock(); return m.ov.M() }
func (m *Maintainer) MaxDegree() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ov.MaxDegree()
}

// Apply runs a mutation sequence (exp.MutationStream vocabulary) through
// the maintainer, one repair per mutation, and returns the aggregated
// repair scope. It stops at the first failing mutation; applied reports
// how many mutations landed (they remain applied — an op list is not a
// transaction), and the error names the failing op.
func (m *Maintainer) Apply(muts []exp.Mutation) (total Report, applied int, err error) {
	for i, mut := range muts {
		var rep Report
		switch mut.Op {
		case exp.OpInsert:
			rep, err = m.Insert(mut.U, mut.V)
		case exp.OpDelete:
			rep, err = m.Delete(mut.U, mut.V)
		default:
			err = fmt.Errorf("dynamic: unknown mutation op %q", mut.Op)
		}
		if err != nil {
			return total, applied, fmt.Errorf("dynamic: mutation %d (%s %d-%d): %w", i, mut.Op, mut.U, mut.V, err)
		}
		applied++
		total.add(rep)
	}
	return total, applied, nil
}

// Engine reports the dist scheduler this maintainer's repair runs execute
// on; monitoring endpoints (/statz) use it to attribute repair cost.
func (m *Maintainer) Engine() dist.Engine {
	return m.cfg.Engine
}

// Poisoned reports whether a failed repair has permanently disabled the
// maintainer (see Insert); owners should discard it.
func (m *Maintainer) Poisoned() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Shape returns the current fingerprint and dimensions as one atomic read,
// without materializing the coloring — the cheap monitoring counterpart of
// Snapshot.
func (m *Maintainer) Shape() (fp graph.Fingerprint, n, mm, delta int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ov.Fingerprint(), m.ov.N(), m.ov.M(), m.ov.MaxDegree()
}

// StreamState returns the current fingerprint, dimensions, and committed-
// mutation count as one atomic read — what a streaming subscriber's hello
// snapshot needs: every commit after this read has Seq greater than seq.
func (m *Maintainer) StreamState() (fp graph.Fingerprint, n, mm, delta int, seq int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ov.Fingerprint(), m.ov.N(), m.ov.M(), m.ov.MaxDegree(), m.stats.Mutations
}

// Stats snapshots the cumulative accounting.
func (m *Maintainer) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close releases the pooled runners. Further mutations fail.
func (m *Maintainer) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.pools.close()
}

// edgeHeap is a lexicographic min-heap of edges.
type edgeHeap struct{ es []graph.Edge }

func (h *edgeHeap) len() int { return len(h.es) }

func (h *edgeHeap) push(e graph.Edge) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lexLessEdge(h.es[i], h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *edgeHeap) pop() graph.Edge {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.es) && lexLessEdge(h.es[l], h.es[small]) {
			small = l
		}
		if r < len(h.es) && lexLessEdge(h.es[r], h.es[small]) {
			small = r
		}
		if small == i {
			return top
		}
		h.es[i], h.es[small] = h.es[small], h.es[i]
		i = small
	}
}

// poolLRU is a bounded LRU of dist runner pools keyed by graph fingerprint:
// repair regions recur under churn (hotspot streams re-touch the same
// neighborhoods), so their runners are worth keeping warm. Eviction closes
// the pool.
type poolLRU struct {
	cap     int
	runners int
	order   *list.List
	entries map[graph.Fingerprint]*list.Element
}

type poolEntry struct {
	fp   graph.Fingerprint
	pool *dist.Pool[[]int]
}

func newPoolLRU(capacity, runners int) *poolLRU {
	return &poolLRU{
		cap:     capacity,
		runners: runners,
		order:   list.New(),
		entries: make(map[graph.Fingerprint]*list.Element, capacity),
	}
}

// get returns the pool for g, building one on first use. Two graphs with
// equal fingerprints are identical, so runners built against the earlier
// instance execute the later one correctly.
func (l *poolLRU) get(g *graph.Graph) *dist.Pool[[]int] {
	fp := g.Fingerprint()
	if el, ok := l.entries[fp]; ok {
		l.order.MoveToFront(el)
		return el.Value.(*poolEntry).pool
	}
	ent := &poolEntry{fp: fp, pool: dist.NewPool[[]int](g, l.runners)}
	l.entries[fp] = l.order.PushFront(ent)
	for l.order.Len() > l.cap {
		last := l.order.Back()
		old := last.Value.(*poolEntry)
		l.order.Remove(last)
		delete(l.entries, old.fp)
		old.pool.Close()
	}
	return ent.pool
}

func (l *poolLRU) close() {
	for el := l.order.Front(); el != nil; el = el.Next() {
		el.Value.(*poolEntry).pool.Close()
	}
	l.order.Init()
	l.entries = make(map[graph.Fingerprint]*list.Element)
}
