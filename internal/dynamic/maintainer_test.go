package dynamic

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
)

// TestChurnMatchesCanonicalRecompute is the dynamic subsystem's contract
// test: for every churn generator kind, after every single mutation of the
// stream the maintained coloring must be legal AND byte-identical to the
// documented canonical recompute (CanonicalColors) of the mutated graph.
func TestChurnMatchesCanonicalRecompute(t *testing.T) {
	streams := []exp.MutationStream{
		{Kind: "mix", Base: exp.GraphSpec{Family: "gnm", N: 40, M: 90, Seed: 2}, Ops: 120, Seed: 5},
		{Kind: "mix", Base: exp.GraphSpec{Family: "tree", N: 32, Seed: 4}, Ops: 100, Seed: 6, InsertPct: 70},
		{Kind: "window", Base: exp.GraphSpec{Family: "cycle", N: 30}, Ops: 120, Seed: 7, Window: 12},
		{Kind: "hotspot", Base: exp.GraphSpec{Family: "gnm", N: 48, M: 110, Seed: 8}, Ops: 120, Seed: 9, Hot: 6},
	}
	for _, s := range streams {
		t.Run(s.String(), func(t *testing.T) {
			base, muts, err := s.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if len(muts) != s.Ops {
				t.Fatalf("generated %d ops, want %d", len(muts), s.Ops)
			}
			m, err := New(base, Config{Engine: dist.Sharded})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if _, _, err := m.Apply(muts); err != nil {
				t.Fatal(err)
			}
			g := m.Graph()
			got := m.Colors()
			if err := graph.CheckEdgeColoring(g, got); err != nil {
				t.Fatalf("maintained coloring illegal: %v", err)
			}
			if want := CanonicalColors(g); !reflect.DeepEqual(got, want) {
				t.Fatalf("maintained coloring differs from canonical recompute of the mutated graph")
			}
			if m.Fingerprint() != g.EdgeSetFingerprint() {
				t.Fatal("maintained fingerprint differs from the mutated graph's")
			}
		})
	}
}

// TestChurnStepwise re-checks the contract after every individual mutation
// (not just at the end), on a smaller stream, for all three engines.
func TestChurnStepwise(t *testing.T) {
	s := exp.MutationStream{Kind: "mix", Base: exp.GraphSpec{Family: "gnm", N: 24, M: 50, Seed: 3}, Ops: 60, Seed: 11}
	base, muts, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []dist.Engine{dist.Goroutines, dist.Lockstep, dist.Sharded, dist.Compiled} {
		m, err := New(base, Config{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		for i, mut := range muts {
			if _, _, err := m.Apply([]exp.Mutation{mut}); err != nil {
				t.Fatalf("%v: op %d: %v", e, i, err)
			}
			g := m.Graph()
			got := m.Colors()
			if err := graph.CheckEdgeColoring(g, got); err != nil {
				t.Fatalf("%v: op %d: illegal: %v", e, i, err)
			}
			if want := CanonicalColors(g); !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: op %d (%s %d-%d): diverged from canonical recompute", e, i, mut.Op, mut.U, mut.V)
			}
		}
		m.Close()
	}
}

// TestRepairScopeBounded is the locality claim in numbers: on a large
// graph, a single-edge mutation's repair must activate strictly less of the
// runtime than a full canonical run — and in the typical case, orders of
// magnitude less.
func TestRepairScopeBounded(t *testing.T) {
	g := graph.GNM(4000, 12000, 13)
	m, err := New(g, Config{Engine: dist.Sharded})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, fullStats, err := CanonicalRun(g, nil, dist.WithEngine(dist.Sharded))
	if err != nil {
		t.Fatal(err)
	}

	var total Report
	muts := []exp.Mutation{
		{Op: exp.OpInsert, U: 17, V: 3977},
		{Op: exp.OpInsert, U: 0, V: 2048},
		{Op: exp.OpDelete, U: 17, V: 3977},
		{Op: exp.OpInsert, U: 1234, V: 2345},
	}
	for _, mut := range muts {
		rep, applied, err := m.Apply([]exp.Mutation{mut})
		if err != nil {
			t.Fatal(err)
		}
		if applied != 1 {
			t.Fatalf("applied = %d, want 1", applied)
		}
		if rep.Stats.Activations >= fullStats.Activations {
			t.Fatalf("%s %d-%d: repair activations %d not below full-run activations %d",
				mut.Op, mut.U, mut.V, rep.Stats.Activations, fullStats.Activations)
		}
		if rep.Vertices >= g.N()/10 {
			t.Fatalf("%s %d-%d: repair touched %d vertices of %d — not local",
				mut.Op, mut.U, mut.V, rep.Vertices, g.N())
		}
		total.add(rep)
	}
	if total.Stats.Activations == 0 {
		t.Fatal("no repair activations recorded at all")
	}
	st := m.Stats()
	if st.FullRuns != 1 || st.Mutations != int64(len(muts)) {
		t.Fatalf("stats = %+v, want 1 full run and %d mutations", st, len(muts))
	}
	if st.RepairActivations >= st.FullActivations {
		t.Fatalf("cumulative repair activations %d not below the single full run's %d",
			st.RepairActivations, st.FullActivations)
	}

	got := m.Colors()
	if want := CanonicalColors(m.Graph()); !reflect.DeepEqual(got, want) {
		t.Fatal("maintained coloring diverged from canonical recompute")
	}
}

// TestDeleteOftenFree: deleting a leaf edge colored last cannot cascade —
// the repair must be a no-op with zero dirty edges and no dist run.
func TestDeleteOftenFree(t *testing.T) {
	// Path 0-1-2: edge (1,2) is lexicographically last, nothing succeeds it.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	m, err := New(b.Build(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rep, err := m.Delete(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dirty != 0 || rep.Stats.Rounds != 0 {
		t.Fatalf("leaf delete repaired %+v, want a free repair", rep)
	}
	if st := m.Stats(); st.Repairs != 0 {
		t.Fatalf("repairs = %d, want 0", st.Repairs)
	}
}

// TestCompaction: frequent compaction must not disturb the coloring, and
// the auto-compaction threshold must fire.
func TestCompaction(t *testing.T) {
	s := exp.MutationStream{Kind: "window", Base: exp.GraphSpec{Family: "gnm", N: 20, M: 40, Seed: 1}, Ops: 80, Seed: 2, Window: 8}
	base, muts, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(base, Config{CompactPending: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.Apply(muts); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Compactions == 0 {
		t.Fatal("auto-compaction never fired")
	}
	g := m.Graph()
	if err := graph.CheckEdgeColoring(g, m.Colors()); err != nil {
		t.Fatal(err)
	}
	if want := CanonicalColors(g); !reflect.DeepEqual(m.Colors(), want) {
		t.Fatal("coloring diverged across compactions")
	}
}

// TestMaintainerErrors pins the user-facing failure modes.
func TestMaintainerErrors(t *testing.T) {
	m, err := New(graph.Cycle(5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Insert(0, 1); err == nil {
		t.Fatal("inserting an existing edge succeeded")
	}
	if _, err := m.Delete(0, 2); err == nil {
		t.Fatal("deleting a non-edge succeeded")
	}
	if _, applied, err := m.Apply([]exp.Mutation{{Op: "upsert", U: 0, V: 2}}); err == nil || applied != 0 {
		t.Fatalf("unknown op: applied=%d err=%v, want 0 applied and an error", applied, err)
	}
	// Failed mutations must not have perturbed the maintained state.
	if err := graph.CheckEdgeColoring(m.Graph(), m.Colors()); err != nil {
		t.Fatal(err)
	}
	if m.M() != 5 || m.N() != 5 || m.MaxDegree() != 2 {
		t.Fatalf("shape drifted: n=%d m=%d Δ=%d", m.N(), m.M(), m.MaxDegree())
	}
	m.Close()
	if _, err := m.Insert(0, 2); err == nil {
		t.Fatal("mutation after Close succeeded")
	}
}

// TestRepairPoolReuse: structurally identical repair regions recur under
// churn that re-touches the same neighborhood, and the fingerprint-keyed
// runner-pool LRU must reuse their runners instead of rebuilding.
func TestRepairPoolReuse(t *testing.T) {
	g := graph.GNM(200, 400, 17)
	m, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Toggling one lexicographically late edge repeatedly produces the same
	// single-edge repair subgraph every time (deletes of a last edge are
	// free, inserts repair exactly it).
	u, v := 198, 199
	if m.Graph().HasEdge(u, v) {
		if _, err := m.Delete(u, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := m.Insert(u, v); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Delete(u, v); err != nil {
			t.Fatal(err)
		}
	}
	reused := false
	for el := m.pools.order.Front(); el != nil; el = el.Next() {
		if st := el.Value.(*poolEntry).pool.Stats(); st.Reuses > 0 {
			reused = true
		}
	}
	if !reused {
		t.Fatal("no runner pool reuse across identical repair regions")
	}
}

// TestColorOf exercises the point query.
func TestColorOf(t *testing.T) {
	m, err := New(graph.Path(4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if c, ok := m.ColorOf(1, 0); !ok || c < 1 {
		t.Fatalf("ColorOf(1,0) = %d,%v", c, ok)
	}
	if _, ok := m.ColorOf(0, 3); ok {
		t.Fatal("ColorOf reported a color for a non-edge")
	}
}
