package dynamic

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/wal"
)

// Replay rebuilds a Maintainer from a write-ahead log: it constructs the base
// graph from the log header's spec, computes the initial canonical coloring,
// and re-applies every logged mutation in order, checking after each that the
// rebuilt graph's fingerprint equals the one recorded at commit time. Because
// the maintained coloring is a deterministic function of (base graph,
// mutation sequence), fingerprint equality at every step proves the replayed
// session is byte-identical to the one that wrote the log — Colors(),
// Snapshot(), everything.
//
// cfg.OnCommit is suppressed while the log replays (a restart must not
// re-publish history to subscribers or re-append it to the log) and installed
// afterwards, so mutations applied after Replay returns stream and log
// normally.
func Replay(hdr wal.Header, recs []wal.Record, cfg Config) (*Maintainer, error) {
	base, err := hdr.Base.Build()
	if err != nil {
		return nil, fmt.Errorf("replay %q: base %s: %w", hdr.Session, hdr.Base, err)
	}
	hook := cfg.OnCommit
	cfg.OnCommit = nil
	m, err := New(base, cfg)
	if err != nil {
		return nil, fmt.Errorf("replay %q: initial coloring: %w", hdr.Session, err)
	}
	for _, rec := range recs {
		if _, _, err := m.Apply([]exp.Mutation{rec.Op}); err != nil {
			m.Close()
			return nil, fmt.Errorf("replay %q: seq %d (%s %d-%d): %w",
				hdr.Session, rec.Seq, rec.Op.Op, rec.Op.U, rec.Op.V, err)
		}
		if fp := m.Fingerprint(); fp != rec.Fingerprint {
			m.Close()
			return nil, fmt.Errorf("replay %q: seq %d: fingerprint %x, log recorded %x",
				hdr.Session, rec.Seq, fp[:8], rec.Fingerprint[:8])
		}
	}
	if hook != nil {
		m.mu.Lock()
		m.cfg.OnCommit = hook
		m.mu.Unlock()
	}
	return m, nil
}
