package dynamic

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
)

// TestRepairCompiledByteEquality: the compiled repair form produces the same
// Outputs AND Stats as the scheduled form — the full dist byte-equality
// contract, not just matching colors — on every canonical family.
func TestRepairCompiledByteEquality(t *testing.T) {
	for _, f := range canonicalFamilies {
		g := f.g()
		bundle := repairBundle(g, make([][]int, g.M()))
		want, err := dist.Run(g, bundle.Vertex, dist.WithEngine(dist.Lockstep))
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		got, err := dist.RunAlgo(g, bundle, dist.WithEngine(dist.Compiled))
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) {
			t.Fatalf("%s: compiled repair outputs diverge", f.name)
		}
		if got.Stats != want.Stats {
			t.Fatalf("%s: compiled repair stats diverge: %v vs %v", f.name, got.Stats, want.Stats)
		}
	}
}

// TestRepairCompiledWithForbidden: boundary constraints (the forbidden sets
// a real repair carries) flow through the compiled form identically.
func TestRepairCompiledWithForbidden(t *testing.T) {
	g := graph.GNM(30, 80, 5)
	forbidden := make([][]int, g.M())
	for id := range forbidden {
		switch id % 3 {
		case 0:
			forbidden[id] = []int{1, 2}
		case 1:
			forbidden[id] = []int{2, 4, 5}
		}
	}
	bundle := repairBundle(g, forbidden)
	want, err := dist.Run(g, bundle.Vertex, dist.WithEngine(dist.Goroutines))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.RunAlgo(g, bundle, dist.WithEngine(dist.Compiled))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) || got.Stats != want.Stats {
		t.Fatalf("forbidden-constrained repair diverged: %v vs %v", got.Stats, want.Stats)
	}
}

// TestMaintainerStatsEngineIndependent: a full churn stream accumulates
// identical Maintainer stats (repair rounds, bytes, activations) under the
// Compiled and Lockstep engines — the speedup is wall-clock only.
func TestMaintainerStatsEngineIndependent(t *testing.T) {
	s := exp.MutationStream{Kind: "mix", Base: exp.GraphSpec{Family: "gnm", N: 40, M: 110, Seed: 2}, Ops: 80, Seed: 7}
	base, muts, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]Stats, 0, 2)
	for _, e := range []dist.Engine{dist.Lockstep, dist.Compiled} {
		m, err := New(base, Config{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		if m.Engine() != e {
			t.Fatalf("Engine() = %v, want %v", m.Engine(), e)
		}
		if _, _, err := m.Apply(muts); err != nil {
			t.Fatal(err)
		}
		stats = append(stats, m.Stats())
		m.Close()
	}
	if stats[0] != stats[1] {
		t.Fatalf("maintainer stats depend on engine:\nlockstep: %+v\ncompiled: %+v", stats[0], stats[1])
	}
}
