package dynamic

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/wal"
)

// liveWithWAL runs a live maintainer whose commits append to a WAL at path,
// exactly as the service wires it. It returns the maintainer and the log.
func liveWithWAL(t testing.TB, base exp.GraphSpec, path string) (*Maintainer, *wal.Log) {
	t.Helper()
	l, err := wal.Create(path, wal.Header{Session: "live", Base: base}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, Config{Engine: dist.Compiled, OnCommit: func(ev CommitEvent) {
		if err := l.Append(wal.Record{Seq: ev.Seq, Op: ev.Op, Fingerprint: ev.Fingerprint}); err != nil {
			t.Errorf("wal append at seq %d: %v", ev.Seq, err)
		}
	}})
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	return m, l
}

// TestReplayMatchesLive is the durability contract test: for every stream
// kind, a live session appends its commits to a WAL, and after EVERY prefix
// of the stream, replaying the log into a fresh Maintainer reproduces the
// live session byte-identically — same fingerprint, same shape, same
// Colors(). Determinism makes the log sufficient; the recorded fingerprints
// make each step's equality checkable.
func TestReplayMatchesLive(t *testing.T) {
	streams := []exp.MutationStream{
		{Kind: "mix", Base: exp.GraphSpec{Family: "gnm", N: 32, M: 70, Seed: 2}, Ops: 24, Seed: 5},
		{Kind: "window", Base: exp.GraphSpec{Family: "cycle", N: 26}, Ops: 24, Seed: 7, Window: 10},
		{Kind: "hotspot", Base: exp.GraphSpec{Family: "gnm", N: 36, M: 80, Seed: 8}, Ops: 24, Seed: 9, Hot: 6},
	}
	for _, s := range streams {
		t.Run(s.String(), func(t *testing.T) {
			_, muts, err := s.Generate()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "s.wal")
			live, l := liveWithWAL(t, s.Base, path)
			defer live.Close()
			defer l.Close()
			for i, mut := range muts {
				if _, _, err := live.Apply([]exp.Mutation{mut}); err != nil {
					t.Fatalf("live apply %d: %v", i, err)
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				hdr, recs, good, err := wal.Scan(data)
				if err != nil {
					t.Fatalf("prefix %d: scan: %v", i+1, err)
				}
				if good != int64(len(data)) {
					t.Fatalf("prefix %d: live log reads torn at %d of %d", i+1, good, len(data))
				}
				if len(recs) != i+1 {
					t.Fatalf("prefix %d: log has %d records", i+1, len(recs))
				}
				replayed, err := Replay(hdr, recs, Config{Engine: dist.Compiled})
				if err != nil {
					t.Fatalf("prefix %d: %v", i+1, err)
				}
				lfp, ln, lm, ld, lc := live.Snapshot()
				rfp, rn, rm, rd, rc := replayed.Snapshot()
				replayed.Close()
				if rfp != lfp || rn != ln || rm != lm || rd != ld {
					t.Fatalf("prefix %d: replayed shape (%x, %d, %d, %d) != live (%x, %d, %d, %d)",
						i+1, rfp[:8], rn, rm, rd, lfp[:8], ln, lm, ld)
				}
				if !reflect.DeepEqual(rc, lc) {
					t.Fatalf("prefix %d: replayed coloring differs from live", i+1)
				}
			}
		})
	}
}

// TestReplayRestoresOnCommit: the hook must stay silent for logged history
// and fire (with continuing seq) for mutations applied after recovery.
func TestReplayRestoresOnCommit(t *testing.T) {
	s := exp.MutationStream{Kind: "mix", Base: exp.GraphSpec{Family: "gnm", N: 24, M: 50, Seed: 3}, Ops: 12, Seed: 11}
	_, muts, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.wal")
	live, l := liveWithWAL(t, s.Base, path)
	if _, _, err := live.Apply(muts); err != nil {
		t.Fatal(err)
	}
	live.Close()
	l.Close()

	log2, hdr, recs, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	var events []CommitEvent
	m, err := Replay(hdr, recs, Config{Engine: dist.Compiled, OnCommit: func(ev CommitEvent) {
		events = append(events, ev)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(events) != 0 {
		t.Fatalf("OnCommit fired %d times during replay", len(events))
	}
	// A fresh mutation after recovery must fire with the next seq, so the
	// restarted session's stream and log continue without a gap.
	post := exp.Mutation{Op: exp.OpInsert, U: 0, V: 1}
	if _, ok := m.ColorOf(0, 1); ok {
		post = exp.Mutation{Op: exp.OpDelete, U: 0, V: 1}
	}
	if _, _, err := m.Apply([]exp.Mutation{post}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Seq != int64(len(recs))+1 {
		t.Fatalf("post-recovery commit events = %+v, want one with seq %d", events, len(recs)+1)
	}
}

// TestReplayRejectsFingerprintMismatch: a log whose recorded fingerprint
// disagrees with the recomputation must fail replay — the proof obligation
// has teeth.
func TestReplayRejectsFingerprintMismatch(t *testing.T) {
	s := exp.MutationStream{Kind: "mix", Base: exp.GraphSpec{Family: "gnm", N: 24, M: 50, Seed: 3}, Ops: 6, Seed: 11}
	_, muts, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.wal")
	live, l := liveWithWAL(t, s.Base, path)
	if _, _, err := live.Apply(muts); err != nil {
		t.Fatal(err)
	}
	live.Close()
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr, recs, _, err := wal.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	recs[3].Fingerprint[0] ^= 0xff
	if _, err := Replay(hdr, recs, Config{Engine: dist.Compiled}); err == nil {
		t.Fatal("replay of a fingerprint-tampered log succeeded")
	}
}

// BenchmarkWALReplay measures session recovery: open a WAL of 200 committed
// mutations and rebuild the maintainer (initial canonical run + incremental
// re-application, fingerprint-checked per record). recovery-ns is the gated
// per-recovery wall time in BENCH_service.json.
func BenchmarkWALReplay(b *testing.B) {
	s := exp.MutationStream{Kind: "mix", Base: exp.GraphSpec{Family: "gnm", N: 96, M: 300, Seed: 4}, Ops: 200, Seed: 13}
	_, muts, err := s.Generate()
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.wal")
	live, l := liveWithWAL(b, s.Base, path)
	if _, _, err := live.Apply(muts); err != nil {
		b.Fatal(err)
	}
	live.Close()
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdr, recs, _, err := wal.Scan(data)
		if err != nil {
			b.Fatal(err)
		}
		m, err := Replay(hdr, recs, Config{Engine: dist.Compiled})
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "recovery-ns")
	b.ReportMetric(float64(len(muts))*float64(b.N)/b.Elapsed().Seconds(), "replay-muts/s")
}
