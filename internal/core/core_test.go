package core

import (
	"testing"

	"repro/internal/graph"
)

// boundedNIGraphs returns test graphs with known neighborhood independence.
func boundedNIGraphs() []struct {
	name string
	g    *graph.Graph
	c    int
} {
	lg1 := graph.GNM(60, 240, 1).LineGraph()
	lg2 := graph.RandomRegular(40, 6, 2).LineGraph()
	h := graph.RandomHypergraph(40, 60, 3, 3)
	return []struct {
		name string
		g    *graph.Graph
		c    int
	}{
		{"linegraph-gnm", lg1, 2},
		{"linegraph-regular", lg2, 2},
		{"hypergraph-r3", h.LineGraph(), 3},
		{"fig1", graph.CliquePlusPendants(16), 2},
		{"powercycle", graph.PowerOfCycle(80, 5), 2},
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(100, 0, 2, 4, 16, false); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := NewPlan(100, 2, 0, 4, 16, false); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := NewPlan(100, 2, 2, 1, 16, false); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := NewPlan(100, 2, 4, 8, 16, false); err == nil {
		t.Error("λ < b·p accepted")
	}
	// Stalling parameters: p too small for c=2 makes Λ' >= Λ.
	if _, err := NewPlan(1000, 2, 1, 2, 2, false); err == nil {
		t.Error("stalling recursion accepted")
	}
}

func TestPlanLevelsDecreaseAndThetas(t *testing.T) {
	pl, err := NewPlan(500, 2, 2, 8, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pl.Levels); i++ {
		if pl.Levels[i] >= pl.Levels[i-1] {
			t.Fatalf("levels not strictly decreasing: %v", pl.Levels)
		}
	}
	if pl.LeafBound() > pl.Lambda {
		t.Fatalf("leaf bound %d exceeds λ=%d", pl.LeafBound(), pl.Lambda)
	}
	r := pl.Depth()
	if pl.Thetas[r] != pl.LeafBound()+1 {
		t.Fatalf("leaf theta %d, want Λ+1 = %d", pl.Thetas[r], pl.LeafBound()+1)
	}
	for i := 0; i < r; i++ {
		if pl.Thetas[i] != pl.P*pl.Thetas[i+1] {
			t.Fatalf("theta chain broken at %d: %v", i, pl.Thetas)
		}
	}
	if pl.TotalPalette() != pl.Thetas[0] {
		t.Fatal("TotalPalette mismatch")
	}
}

func TestAutoPlanProgresses(t *testing.T) {
	for _, delta := range []int{10, 50, 200, 1000} {
		pl, err := AutoPlan(delta, 2, 2, 8, false)
		if err != nil {
			t.Fatalf("Δ=%d: %v", delta, err)
		}
		if pl.Depth() < 1 && delta > pl.Lambda {
			t.Fatalf("Δ=%d: no recursion", delta)
		}
	}
}

func TestPlanEdgeModeUsesCor54Defect(t *testing.T) {
	plV, err := NewPlan(400, 2, 8, 8, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	plE, err := NewPlan(400, 2, 8, 8, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	// Edge mode ϕ-defect = 4⌈Λ/(bp)⌉ >= vertex mode ⌊Λ/(bp)⌋.
	if plE.PhiDef[0] < plV.PhiDef[0] {
		t.Fatalf("edge ϕ-defect %d < vertex %d", plE.PhiDef[0], plV.PhiDef[0])
	}
	if plE.PhiDef[0] != 4*((400+63)/64) {
		t.Fatalf("edge ϕ-defect = %d, want 4⌈Λ/(bp)⌉ = %d", plE.PhiDef[0], 4*((400+63)/64))
	}
	// Edge leaf palette is 2Λ-1 (P-R), vertex is Λ+1.
	if plE.Thetas[plE.Depth()] != 2*plE.LeafBound()-1 {
		t.Fatal("edge leaf palette not 2Λ-1")
	}
}

func TestDefectiveColoringCorollary38(t *testing.T) {
	for _, tc := range boundedNIGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			delta := g.MaxDegree()
			b, p := 2, 4
			if b*p > delta {
				b, p = 1, 2
			}
			res, err := DefectiveColoring(g, tc.c, b, p)
			if err != nil {
				t.Fatal(err)
			}
			bound := DefectiveColoringBound(delta, tc.c, b, p)
			if err := graph.CheckDefectiveVertexColoring(g, res.Outputs, bound, p); err != nil {
				t.Fatal(err)
			}
			// The headline property: defect * colors = O(Δ).
			d := graph.VertexDefect(g, res.Outputs)
			if product := d * p; product > 4*tc.c*delta+8*tc.c {
				t.Fatalf("defect·colors = %d not linear in Δ=%d", product, delta)
			}
		})
	}
}

func TestDefectiveColoringParamValidation(t *testing.T) {
	g := graph.CliquePlusPendants(6)
	if _, err := DefectiveColoring(g, 2, 0, 2); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := DefectiveColoring(g, 2, 10, 10); err == nil {
		t.Error("b·p > Δ accepted")
	}
}

func TestLegalColoringBothModes(t *testing.T) {
	for _, tc := range boundedNIGraphs() {
		g := tc.g
		delta := g.MaxDegree()
		pl, err := AutoPlan(delta, tc.c, 2, 4*tc.c+1, false)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, mode := range []Mode{StartIDs, StartAux} {
			name := tc.name
			if mode == StartAux {
				name += "-aux"
			}
			t.Run(name, func(t *testing.T) {
				res, err := LegalColoring(g, pl, mode)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
					t.Fatal(err)
				}
				if mc := graph.MaxColor(res.Outputs); mc > pl.TotalPalette() {
					t.Fatalf("color %d outside promised palette %d", mc, pl.TotalPalette())
				}
			})
		}
	}
}

func TestLegalColoringRejectsMismatchedPlan(t *testing.T) {
	g := graph.CliquePlusPendants(8)
	plEdge, err := NewPlan(64, 2, 8, 8, 64, true) // leaf-only edge plan
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LegalColoring(g, plEdge, StartIDs); err == nil {
		t.Error("edge-mode plan accepted by vertex coloring")
	}
	plSmall, err := NewPlan(3, 2, 1, 3, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LegalColoring(g, plSmall, StartIDs); err == nil {
		t.Error("plan with Δ smaller than graph accepted")
	}
}

func TestLegalColoringAuxModeFasterPerLevel(t *testing.T) {
	// §4.2: seeding chains from the auxiliary O(Δ²)-coloring should not be
	// slower than seeding from identifiers once n is much larger than Δ.
	g := graph.PowerOfCycle(600, 3) // Δ=6, I(G)=2
	pl, err := AutoPlan(g.MaxDegree(), 2, 1, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	resIDs, err := LegalColoring(g, pl, StartIDs)
	if err != nil {
		t.Fatal(err)
	}
	resAux, err := LegalColoring(g, pl, StartAux)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, resAux.Outputs); err != nil {
		t.Fatal(err)
	}
	if resAux.Stats.Rounds > resIDs.Stats.Rounds+10 {
		t.Fatalf("aux mode rounds %d much worse than IDs mode %d",
			resAux.Stats.Rounds, resIDs.Stats.Rounds)
	}
}

func TestLegalColoringLinearPreset(t *testing.T) {
	g := graph.GNM(100, 800, 4).LineGraph()
	delta := g.MaxDegree()
	pl, err := LinearColorsPlan(delta, 2, 1.5, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LegalColoring(g, pl, StartAux)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
}

func TestPolyColorsPlanProducesMoreLevels(t *testing.T) {
	// Larger p should reduce depth; smaller p increases it (more levels).
	plSmall, err := PolyColorsPlan(2000, 2, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	plBig, err := PolyColorsPlan(2000, 2, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	if plSmall.Depth() < plBig.Depth() {
		t.Fatalf("depth(p=9)=%d < depth(p=40)=%d", plSmall.Depth(), plBig.Depth())
	}
}

func TestRandomizedColoring(t *testing.T) {
	g := graph.GNM(70, 560, 5).LineGraph() // sizeable Δ
	res, err := RandomizedColoring(g, 2, 2, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
	bound, err := RandomizedPaletteBound(g, 2, 2, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mc := graph.MaxColor(res.Outputs); mc > bound {
		t.Fatalf("color %d outside promised palette %d", mc, bound)
	}
}

func TestRandomizedColoringSmallDelta(t *testing.T) {
	// Δ = O(log n) path: falls back to deterministic Legal-Color.
	g := graph.PowerOfCycle(200, 2)
	res, err := RandomizedColoring(g, 2, 1, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
}

func TestTradeoffColoring(t *testing.T) {
	g := graph.GNM(80, 640, 6).LineGraph()
	delta := g.MaxDegree()
	for _, classDeg := range []int{delta / 2, delta / 4} {
		if classDeg < 5 {
			continue
		}
		res, err := TradeoffColoring(g, 2, 2, 5, classDeg)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
			t.Fatal(err)
		}
		bound, err := TradeoffPaletteBound(g, 2, 2, 5, classDeg)
		if err != nil {
			t.Fatal(err)
		}
		if mc := graph.MaxColor(res.Outputs); mc > bound {
			t.Fatalf("classDeg=%d: color %d outside palette %d", classDeg, mc, bound)
		}
	}
}

func TestTradeoffRejectsBadClassDeg(t *testing.T) {
	g := graph.CliquePlusPendants(8)
	if _, err := TradeoffColoring(g, 2, 2, 5, 0); err == nil {
		t.Error("classDeg=0 accepted")
	}
	if _, err := TradeoffColoring(g, 2, 2, 5, g.MaxDegree()+1); err == nil {
		t.Error("classDeg>Δ accepted")
	}
}
