package core

import (
	"fmt"

	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/reduce"
)

// Mode selects how the color-reduction chains inside Legal-Color are seeded.
type Mode int

const (
	// StartIDs seeds every chain from the vertex identifiers (palette n), as
	// in the basic §4.1 algorithm; each level pays O(log* n) chain rounds.
	StartIDs Mode = iota
	// StartAux first computes Linial's auxiliary O(Δ²)-coloring ρ once and
	// seeds every later chain from it (palette O(Δ²)), the §4.2 improvement:
	// each level then pays only O(log* Δ) chain rounds.
	StartAux
)

// LegalColoring runs Procedure Legal-Color (Algorithm 2) on a graph with
// neighborhood independence at most pl.C, producing a legal coloring with at
// most pl.TotalPalette() colors.
//
// The recursion is executed level-synchronously, which Lemma 4.4 justifies:
// all invocations of one recursion level share the same parameters
// (Λ⁽ⁱ⁾, ϑ⁽ⁱ⁾), so each vertex can carry its own path through the recursion
// tree (the label prefix ψ₁ψ₂…) and restrict each level's Defective-Color to
// the neighbors sharing its prefix. Leaf invocations compute a (Λ⁽ʳ⁾+1)-
// coloring via Linial + palette reduction (substitution N1 in DESIGN.md).
func LegalColoring(g *graph.Graph, pl *Plan, mode Mode, opts ...dist.Option) (*dist.Result[int], error) {
	if pl.Edge {
		return nil, fmt.Errorf("core: edge-mode plan passed to vertex LegalColoring")
	}
	if d := g.MaxDegree(); d > pl.Delta {
		return nil, fmt.Errorf("core: graph degree %d exceeds plan Δ=%d", d, pl.Delta)
	}
	sched, err := newSchedule(g.N(), g.MaxDegree(), pl, mode)
	if err != nil {
		return nil, err
	}
	return dist.Run(g, func(v dist.Process) int {
		return legalColorVertex(v, pl, sched)
	}, opts...)
}

// LegalColorProcess returns the per-process body of Procedure Legal-Color
// for an arbitrary Process network whose identifier space is bounded by
// nBound and whose maximum degree is at most delta. It powers the Lemma 5.2
// line-graph simulation (package lgsim), where identifiers are edge pairs
// from a space of size (n+1)².
func LegalColorProcess(nBound, delta int, pl *Plan, mode Mode) (func(v dist.Process) int, error) {
	if pl.Edge {
		return nil, fmt.Errorf("core: edge-mode plan passed to vertex LegalColorProcess")
	}
	if delta > pl.Delta {
		return nil, fmt.Errorf("core: degree bound %d exceeds plan Δ=%d", delta, pl.Delta)
	}
	sched, err := newSchedule(nBound, delta, pl, mode)
	if err != nil {
		return nil, err
	}
	return func(v dist.Process) int {
		return legalColorVertex(v, pl, sched)
	}, nil
}

// LegalRounds returns the exact number of communication rounds every process
// spends in Procedure Legal-Color (the execution is lockstep: chains, ϕ
// exchanges, fixed ψ windows, and the leaf reduction all have schedule-
// determined lengths).
func LegalRounds(nBound, delta int, pl *Plan, mode Mode) (int, error) {
	sched, err := newSchedule(nBound, delta, pl, mode)
	if err != nil {
		return 0, err
	}
	rounds := len(sched.auxSteps)
	for i := 0; i < pl.Depth(); i++ {
		window := linial.FinalPalette(sched.k0, sched.phiSteps[i])
		rounds += len(sched.phiSteps[i]) + 1 + window
	}
	rounds += len(sched.leafSteps)
	rounds += reduce.KWRounds(sched.leafK, pl.LeafBound()+1)
	return rounds, nil
}

// schedule precomputes every reduction chain used by one LegalColoring run;
// it is a deterministic function of global knowledge (n, Δ, plan, mode), so
// in a real deployment every vertex computes it locally.
type schedule struct {
	mode      Mode
	auxSteps  []linial.Step // StartAux: chain for ρ (empty in StartIDs mode)
	k0        int           // palette seeding each per-level chain
	phiSteps  [][]linial.Step
	leafSteps []linial.Step
	leafK     int // palette after leafSteps, reduced to Λ⁽ʳ⁾+1
}

func newSchedule(nBound, delta int, pl *Plan, mode Mode) (*schedule, error) {
	s := &schedule{mode: mode}
	n := nBound
	switch mode {
	case StartIDs:
		s.k0 = n
	case StartAux:
		s.auxSteps = linial.LegalSchedule(n, delta)
		s.k0 = linial.FinalPalette(n, s.auxSteps)
	default:
		return nil, fmt.Errorf("core: unknown mode %d", mode)
	}
	r := pl.Depth()
	s.phiSteps = make([][]linial.Step, r)
	for i := 0; i < r; i++ {
		s.phiSteps[i] = defective.Schedule(s.k0, pl.Levels[i], pl.PhiDef[i])
	}
	s.leafSteps = linial.LegalSchedule(s.k0, pl.LeafBound())
	s.leafK = linial.FinalPalette(s.k0, s.leafSteps)
	return s, nil
}

// legalColorVertex is the per-vertex body of Algorithm 2.
func legalColorVertex(v dist.Process, pl *Plan, s *schedule) int {
	start := v.ID()
	if s.mode == StartAux {
		start = auxStart(v, s)
	}
	return legalColorVertexMasked(v, pl, s, nil, start)
}

// auxStart computes the §4.2 auxiliary O(Δ²)-coloring ρ for this vertex.
func auxStart(v dist.Process, s *schedule) int {
	return linial.RunChain(s.auxSteps, v.ID(), linial.BroadcastExchange(v))
}

// linialLeaf computes the (Λ⁽ʳ⁾+1)-coloring of the leaf subgraph: the legal
// Linial chain down to O(Λ⁽ʳ⁾²) colors followed by Kuhn–Wattenhofer block
// merging down to Λ⁽ʳ⁾+1 in O(Λ⁽ʳ⁾·log Λ⁽ʳ⁾) rounds (substitution N1).
func linialLeaf(v dist.Process, pl *Plan, s *schedule, same []bool, start int) int {
	c := linial.RunChain(s.leafSteps, start, maskedExchange(v, same))
	return reduce.KWReduceColors(v, c, s.leafK, pl.LeafBound()+1, same)
}

// maskedExchange is linial.BroadcastExchange restricted to same-subgraph
// ports.
func maskedExchange(v dist.Process, same []bool) linial.Exchange {
	return func(own int) []int {
		return exchangeInts(v, same, own)
	}
}
