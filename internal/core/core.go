package core
