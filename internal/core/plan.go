// Package core implements the paper's primary contribution: vertex coloring
// of graphs with neighborhood independence bounded by c, via
//
//   - Procedure Defective-Color (Algorithm 1, §3): an O(Δ/p)-defective
//     p-coloring in O((bp)²) + log* n rounds — the first defective-coloring
//     routine whose defect·colors product is linear in Δ, and
//   - Procedure Legal-Color (Algorithm 2, §4): the recursion that turns it
//     into legal O(Δ)- and O(Δ^{1+ε})-colorings (Theorems 4.5, 4.6, 4.8),
//
// plus the §6 extensions (randomized combination with Kuhn–Wattenhofer and
// the colors/time tradeoff) in their vertex-coloring form. The edge-coloring
// variants for general graphs live in package edgecolor.
package core

import (
	"fmt"
	"math"
)

// Plan fixes the parameters (b, p, λ, c) of Procedure Legal-Color and
// precomputes the per-level degree bounds Λ⁽⁰⁾ > Λ⁽¹⁾ > … > Λ⁽ʳ⁾ ≤ λ and the
// uniform per-level palette sizes ϑ⁽ⁱ⁾ of the recursion tree (Lemma 4.4
// shows all invocations at one level share these values, which is what makes
// the level-synchronous execution below faithful to Algorithm 2).
type Plan struct {
	B, P   int // Algorithm 1 parameters b and p
	Lambda int // recursion threshold λ
	C      int // neighborhood-independence bound c (c=2 for line graphs)
	Delta  int // Λ⁽⁰⁾, the input degree bound
	Edge   bool
	Levels []int // Λ⁽⁰⁾..Λ⁽ʳ⁾; r = len(Levels)-1 recursion depth
	Thetas []int // ϑ⁽⁰⁾..ϑ⁽ʳ⁾; ϑ⁽ⁱ⁾ = p·ϑ⁽ⁱ⁺¹⁾, ϑ⁽ʳ⁾ = leaf palette
	PhiDef []int // per recursion level: the defect bound of the ϕ coloring
}

// NextLevel returns Λ′ from Λ per line 6 of Algorithm 2: the defect bound of
// the ψ coloring computed by Procedure Defective-Color (Theorem 3.7). In the
// edge variant the ϕ subroutine is Kuhn's O(1)-round routine (Cor 5.4) whose
// defect is 4⌈Λ/(bp)⌉ instead of ⌊Λ/(bp)⌋, and c = 2 (Lemma 5.1).
func nextLevel(lam, b, p, c int, edge bool) (lamNext, phiDefect int) {
	if edge {
		phiDefect = 4 * ceilDiv(lam, b*p)
	} else {
		phiDefect = lam / (b * p)
	}
	return (phiDefect+lam/p)*c + c, phiDefect
}

// EdgeLevelBounds returns, for the §5 edge variant at degree bound Λ with
// parameters b, p: the Theorem 3.7 defect bound of ψ (which is the next
// level's Λ′) and the defect of the Corollary 5.4 coloring ϕ; c = 2 because
// line graphs have neighborhood independence at most 2 (Lemma 5.1).
func EdgeLevelBounds(lam, b, p int) (lamNext, phiDefect int) {
	return nextLevel(lam, b, p, 2, true)
}

// NewPlan validates parameters and lays out the recursion. Constraints from
// the paper: b ≥ 1, p ≥ 2, b·p ≤ λ ≤ Δ (so that every recursive invocation
// satisfies b·p ≤ Λ), and every level must strictly reduce Λ.
func NewPlan(delta, c, b, p, lambda int, edge bool) (*Plan, error) {
	switch {
	case c < 1:
		return nil, fmt.Errorf("core: c=%d must be >= 1", c)
	case b < 1 || p < 2:
		return nil, fmt.Errorf("core: need b>=1 (got %d) and p>=2 (got %d)", b, p)
	case lambda < b*p && delta > lambda:
		// The b·p <= Λ precondition of Algorithm 1 only matters when the
		// recursion actually invokes it (Δ > λ); leaf-only plans are fine.
		return nil, fmt.Errorf("core: λ=%d < b·p=%d violates the b·p <= Λ precondition", lambda, b*p)
	case delta < 1:
		return nil, fmt.Errorf("core: Δ=%d must be >= 1", delta)
	}
	pl := &Plan{B: b, P: p, Lambda: lambda, C: c, Delta: delta, Edge: edge}
	lam := delta
	pl.Levels = append(pl.Levels, lam)
	for lam > lambda {
		next, phiDef := nextLevel(lam, b, p, c, edge)
		if next >= lam {
			return nil, fmt.Errorf("core: recursion stalls at Λ=%d (Λ'=%d); increase p or λ", lam, next)
		}
		pl.PhiDef = append(pl.PhiDef, phiDef)
		pl.Levels = append(pl.Levels, next)
		lam = next
	}
	r := len(pl.Levels) - 1
	pl.Thetas = make([]int, r+1)
	leaf := pl.Levels[r]
	if edge {
		pl.Thetas[r] = maxInt(2*leaf-1, 1) // Panconesi–Rizzi leaf palette
	} else {
		pl.Thetas[r] = leaf + 1 // (Λ+1)-coloring leaf palette
	}
	for i := r - 1; i >= 0; i-- {
		pl.Thetas[i] = p * pl.Thetas[i+1]
	}
	return pl, nil
}

// Depth returns r, the number of Defective-Color levels before the leaf.
func (pl *Plan) Depth() int { return len(pl.Levels) - 1 }

// TotalPalette returns ϑ⁽⁰⁾, the bound on the number of colors produced.
func (pl *Plan) TotalPalette() int { return pl.Thetas[0] }

// LeafBound returns Λ⁽ʳ⁾, the degree bound at the recursion leaves.
func (pl *Plan) LeafBound() int { return pl.Levels[len(pl.Levels)-1] }

func (pl *Plan) String() string {
	return fmt.Sprintf("plan{b=%d p=%d λ=%d c=%d Δ=%d edge=%v levels=%v colors<=%d}",
		pl.B, pl.P, pl.Lambda, pl.C, pl.Delta, pl.Edge, pl.Levels, pl.TotalPalette())
}

// AutoPlan builds a plan with the given b and p, choosing λ as small as the
// recursion allows: it lowers Λ until progress stalls or Λ < b·p, and sets λ
// there. This maximizes recursion depth (hence minimizes colors) for fixed
// per-level cost — the practical analogue of the paper's λ settings, whose
// literal values (e.g. λ = (3c+1)^{6t} in Theorem 4.6) are astronomically
// large constants.
func AutoPlan(delta, c, b, p int, edge bool) (*Plan, error) {
	if b < 1 || p < 2 {
		return nil, fmt.Errorf("core: need b>=1 (got %d) and p>=2 (got %d)", b, p)
	}
	if b*p >= delta {
		// No recursion possible: a leaf-only plan colors directly.
		return NewPlan(delta, c, b, p, delta, edge)
	}
	// Find the stall point: the smallest Λ reachable with strict progress,
	// never dropping below the b·p <= Λ precondition.
	lambda := b * p
	lam := delta
	for lam > lambda {
		next, _ := nextLevel(lam, b, p, c, edge)
		if next >= lam {
			lambda = lam
			break
		}
		lam = next
	}
	if lambda < b*p {
		lambda = b * p
	}
	return NewPlan(delta, c, b, p, lambda, edge)
}

// LinearColorsPlan is the Theorem 4.5 preset, b = ⌈Δ^{ε/6}⌉, p = ⌈Δ^{ε/3}⌉,
// λ = ⌈Δ^ε⌉: an O(Δ)-coloring in O(Δ^ε) + log* n time for Δ large enough.
// At laptop-scale Δ the literal powers round to values that stall the
// recursion, so the preset raises p to the smallest value making progress
// (documented in EXPERIMENTS.md; the paper's asymptotics assume Δ beyond
// practical scale).
func LinearColorsPlan(delta, c int, eps float64, edge bool) (*Plan, error) {
	if eps <= 0 || eps > 3 {
		return nil, fmt.Errorf("core: eps=%v out of range (0,3]", eps)
	}
	b := ceilPow(delta, eps/6)
	p := ceilPow(delta, eps/3)
	if p < 2 {
		p = 2
	}
	for ; p <= delta; p++ {
		next, _ := nextLevel(delta, b, p, c, edge)
		if next < delta {
			break
		}
	}
	lambda := maxInt(ceilPow(delta, eps), b*p)
	if lambda > delta {
		lambda = delta
	}
	if lambda < b*p {
		lambda = minInt(b*p, delta)
	}
	return NewPlan(delta, c, b, p, lambda, edge)
}

// PolyColorsPlan is the practical analogue of the Theorem 4.6 preset
// (constant b, p; λ as small as possible): O(log Δ) recursion levels with
// O(1) per-level parameters, trading palette size O(Δ^{1+η}) for speed. The
// paper's literal constants (p = (3c+1)^t, b = p², λ = p⁶) are impractical;
// p controls the measured η: larger p gives smaller η.
func PolyColorsPlan(delta, c, p int, edge bool) (*Plan, error) {
	b := maxInt(2, 8/maxInt(1, p/4)) // small constant; edge variant favors b>=4
	if pl, err := AutoPlan(delta, c, b, p, edge); err == nil {
		return pl, nil
	}
	// Raise p until the recursion progresses.
	for q := p; q <= maxInt(delta, p+64); q++ {
		if pl, err := AutoPlan(delta, c, b, q, edge); err == nil {
			return pl, nil
		}
	}
	return nil, fmt.Errorf("core: no progressing plan found for Δ=%d c=%d", delta, c)
}

// SubPolyColorsPlan is the practical analogue of Theorem 4.8(3)
// (Δ^{1+o(1)} colors in O((log Δ)^{1+ε}) + ½log* n time): λ is set near
// (log Δ)^eta and p near λ^{1/6}, so both the per-level window and the leaf
// stay polylogarithmic in Δ while the color overhead per level shrinks as Δ
// grows. Falls back to raising p until the recursion progresses.
func SubPolyColorsPlan(delta, c int, eta float64, edge bool) (*Plan, error) {
	if eta <= 0 || eta > 6 {
		return nil, fmt.Errorf("core: eta=%v out of range (0,6]", eta)
	}
	logD := math.Log2(float64(maxInt(delta, 2)))
	lam := int(math.Pow(logD, eta))
	p := maxInt(int(math.Pow(float64(lam), 1.0/6)), 2*c+2)
	b := maxInt(p/2, 1)
	for ; p <= delta; p++ {
		next, _ := nextLevel(delta, b, p, c, edge)
		if next < delta {
			break
		}
	}
	lambda := maxInt(lam, b*p)
	if lambda > delta {
		lambda = delta
	}
	return NewPlan(delta, c, b, p, lambda, edge)
}

func ceilPow(x int, e float64) int {
	if x <= 1 {
		return 1
	}
	v := math.Pow(float64(x), e)
	n := int(v)
	if float64(n) < v {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
