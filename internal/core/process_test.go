package core

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

func TestLegalColorProcessMatchesLegalColoring(t *testing.T) {
	g := graph.PowerOfCycle(120, 4)
	pl, err := AutoPlan(g.MaxDegree(), 2, 1, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := LegalColorProcess(g.N(), g.MaxDegree(), pl, StartAux)
	if err != nil {
		t.Fatal(err)
	}
	viaProcess, err := dist.Run(g, algo)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := LegalColoring(g, pl, StartAux)
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct.Outputs {
		if viaProcess.Outputs[v] != direct.Outputs[v] {
			t.Fatalf("vertex %d: process %d vs direct %d", v,
				viaProcess.Outputs[v], direct.Outputs[v])
		}
	}
	// LegalRounds predicts the lockstep round count exactly.
	rounds, err := LegalRounds(g.N(), g.MaxDegree(), pl, StartAux)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Stats.Rounds != rounds {
		t.Fatalf("measured rounds %d != LegalRounds %d", direct.Stats.Rounds, rounds)
	}
}

func TestLegalColorProcessValidation(t *testing.T) {
	plE, err := NewPlan(32, 2, 4, 8, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LegalColorProcess(100, 10, plE, StartIDs); err == nil {
		t.Error("edge-mode plan accepted")
	}
	plV, err := NewPlan(8, 2, 1, 4, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LegalColorProcess(100, 20, plV, StartIDs); err == nil {
		t.Error("degree above plan Δ accepted")
	}
	if _, err := LegalRounds(100, 10, plV, Mode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestEdgeLevelBounds(t *testing.T) {
	lamNext, phiDef := EdgeLevelBounds(64, 4, 8)
	if phiDef != 4*((64+31)/32) {
		t.Fatalf("phiDef = %d, want 4⌈Λ/(bp)⌉ = %d", phiDef, 4*((64+31)/32))
	}
	if want := (phiDef+64/8)*2 + 2; lamNext != want {
		t.Fatalf("Λ' = %d, want %d", lamNext, want)
	}
}

func TestPlanString(t *testing.T) {
	pl, err := NewPlan(64, 2, 4, 8, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	s := pl.String()
	for _, want := range []string{"b=4", "p=8", "edge=true", "Δ=64"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestLinearColorsPlanRejectsBadEps(t *testing.T) {
	if _, err := LinearColorsPlan(100, 2, 0, false); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := LinearColorsPlan(100, 2, 4, false); err == nil {
		t.Error("eps=4 accepted")
	}
}

func TestRandomizedColoringLargeDeltaPath(t *testing.T) {
	// Force the split path: Δ must exceed the class-degree bound κ·ln n.
	// n = 220, ln n ≈ 5.4; with kappa=2 the bound is ~11, so Δ ≈ 36 splits.
	g := graph.GNM(55, 660, 21).LineGraph()
	if g.MaxDegree() < 20 {
		t.Skip("instance too sparse to exercise the split path")
	}
	res, err := RandomizedColoring(g, 2, 2, 5, 2, dist.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
	bound, err := RandomizedPaletteBound(g, 2, 2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mc := graph.MaxColor(res.Outputs); mc > bound {
		t.Fatalf("color %d outside bound %d", mc, bound)
	}
}

func TestAutoPlanEdgeVsVertexLevels(t *testing.T) {
	// The edge variant's ϕ-defect (4⌈Λ/(bp)⌉) makes its levels shrink more
	// slowly than the vertex variant's (⌊Λ/(bp)⌋) for identical parameters.
	plV, err := AutoPlan(500, 2, 4, 12, false)
	if err != nil {
		t.Fatal(err)
	}
	plE, err := AutoPlan(500, 2, 4, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plV.Levels) < 2 || len(plE.Levels) < 2 {
		t.Fatal("expected real recursion in both plans")
	}
	if plE.Levels[1] < plV.Levels[1] {
		t.Fatalf("edge level %d shrank faster than vertex level %d",
			plE.Levels[1], plV.Levels[1])
	}
}
