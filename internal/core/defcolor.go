package core

import (
	"fmt"

	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/wire"
)

// DefectiveResult is the outcome of one Procedure Defective-Color invocation
// for one vertex: its ψ-color and the ψ-colors of its (same-subgraph)
// neighbors, which Legal-Color uses to split into the next level's
// subgraphs.
type DefectiveResult struct {
	Psi    int   // ψ(v) ∈ {1..p}
	NbrPsi []int // per port: neighbor's ψ, or 0 outside the current subgraph
}

// DefectiveColorStep runs Algorithm 1 (Procedure Defective-Color) from
// inside a vertex process, restricted to the subgraph spanned by the ports
// where same is true (nil = all ports).
//
//   - phiSteps is the reduction schedule of the ⌊Λ/(bp)⌋-defective
//     O((bp)²)-coloring ϕ of line 1 (Lemma 2.1(3)); phiStart is this
//     vertex's starting color for the chain (its identifier, or the §4.2
//     auxiliary color), with palette phiK0.
//   - p is the target number of ψ-colors.
//   - fixedWindow selects lockstep mode: the while-loop of lines 4-10 runs
//     for exactly #ϕ-palette rounds (the Lemma 3.2 bound), so that parallel
//     invocations on different subgraphs stay synchronized, as the
//     level-synchronous recursion of Legal-Color requires. With
//     fixedWindow=false the vertex retires as soon as it has announced ψ and
//     heard all same-subgraph neighbors (standalone, event-driven mode;
//     measured makespan is the longest increasing-ϕ chain, ≤ the bound).
//
// Guarantee (Theorem 3.7): on a subgraph with neighborhood independence ≤ c
// and degree ≤ Λ, ψ is a ((m_ϕ + Λ/p)·c + c)-defective p-coloring, where m_ϕ
// is the defect of ϕ.
func DefectiveColorStep(v dist.Process, same []bool, p int, phiSteps []linial.Step, phiStart, phiK0 int, fixedWindow bool) DefectiveResult {
	deg := v.Deg()
	inSub := func(port int) bool { return same == nil || same[port] }

	// Line 1: compute ϕ by the defective reduction chain, exchanging colors
	// only within the subgraph.
	phi := linial.RunChain(phiSteps, phiStart, func(own int) []int {
		return exchangeInts(v, same, own)
	})
	phiPalette := linial.FinalPalette(phiK0, phiSteps)

	// Line 2: send ϕ(v) to all subgraph neighbors.
	nbrPhi := exchangeIntsByPort(v, same, phi)

	// Lines 3-10: the recolor loop. N[k] counts subgraph neighbors u with
	// ϕ(u) < ϕ(v) whose ψ(u) = k (the paper's N_v(k)); a vertex selects its
	// ψ as soon as every smaller-ϕ neighbor has announced.
	waiting := 0
	for port := 0; port < deg; port++ {
		if inSub(port) && nbrPhi[port] != 0 && nbrPhi[port] < phi {
			waiting++
		}
	}
	counts := make([]int, p+1)
	nbrPsi := make([]int, deg)
	psi := 0
	announced := false
	heard := 0
	total := 0
	for port := 0; port < deg; port++ {
		if inSub(port) && nbrPhi[port] != 0 {
			total++
		}
	}
	for round := 0; round < phiPalette; round++ {
		if psi == 0 && waiting == 0 {
			psi = argminCount(counts, p)
		}
		var out [][]byte
		if psi != 0 && !announced {
			out = make([][]byte, deg)
			msg := wire.EncodeInts(psi)
			for port := 0; port < deg; port++ {
				if inSub(port) {
					out[port] = msg
				}
			}
			announced = true
		}
		in := v.Round(out)
		for port := 0; port < deg; port++ {
			if !inSub(port) || in[port] == nil || nbrPsi[port] != 0 {
				continue
			}
			vals, err := wire.DecodeInts(in[port], 1)
			if err != nil {
				panic("core: bad ψ message: " + err.Error())
			}
			nbrPsi[port] = vals[0]
			heard++
			if nbrPhi[port] < phi {
				counts[vals[0]]++
				waiting--
			}
		}
		if !fixedWindow && announced && heard == total {
			break
		}
	}
	if psi == 0 {
		// The Lemma 3.2 bound guarantees this cannot happen when the window
		// is respected by all participants.
		panic(fmt.Sprintf("core: vertex id %d failed to select ψ within %d rounds (ϕ=%d)",
			v.ID(), phiPalette, phi))
	}
	return DefectiveResult{Psi: psi, NbrPsi: nbrPsi}
}

// argminCount returns the least-loaded ψ-color (ties to the smallest color),
// line 6-7 of Algorithm 1.
func argminCount(counts []int, p int) int {
	best, bestK := counts[1], 1
	for k := 2; k <= p; k++ {
		if counts[k] < best {
			best, bestK = counts[k], k
		}
	}
	return bestK
}

// DefectiveColoring runs Procedure Defective-Color standalone on a graph
// with neighborhood independence at most c: it computes the
// ((c+ε)·Δ/p + c)-defective p-coloring of Corollary 3.8 with b controlling ε.
// The run is event-driven (Lemma 3.2), so the measured round count is the
// longest increasing-ϕ chain plus the ϕ-chain length.
func DefectiveColoring(g *graph.Graph, c, b, p int, opts ...dist.Option) (*dist.Result[int], error) {
	delta := g.MaxDegree()
	if p < 1 || b < 1 {
		return nil, fmt.Errorf("core: b=%d, p=%d must be positive", b, p)
	}
	if b*p > delta {
		return nil, fmt.Errorf("core: b·p=%d exceeds Λ=%d", b*p, delta)
	}
	phiSteps := defective.Schedule(g.N(), delta, delta/(b*p))
	res, err := dist.Run(g, func(v dist.Process) int {
		return DefectiveColorStep(v, nil, p, phiSteps, v.ID(), g.N(), false).Psi
	}, opts...)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// DefectiveColoringBound returns the Theorem 3.7 defect bound of
// DefectiveColoring for the given parameters: (m_ϕ + Λ/p)·c + c with
// m_ϕ = ⌊Λ/(bp)⌋.
func DefectiveColoringBound(delta, c, b, p int) int {
	return (delta/(b*p)+delta/p)*c + c
}
