package core

import (
	"fmt"
	"math"

	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/linial"
)

// This file implements the §6 extensions in their vertex-coloring form:
// the randomized combination with the Kuhn–Wattenhofer defective-coloring
// routine (§6.1, Theorem 6.1) and the colors/time tradeoff (§6.2,
// Corollary 6.3). Both have the same shape: split the graph into
// low-degree vertex-disjoint classes, then run Legal-Color on every class
// in parallel with disjoint palettes.

// legalColorVertexMasked is legalColorVertex restricted to an initial
// subgraph mask (nil = whole graph).
func legalColorVertexMasked(v dist.Process, pl *Plan, s *schedule, mask []bool, start int) int {
	deg := v.Deg()
	same := make([]bool, deg)
	for i := range same {
		same[i] = mask == nil || mask[i]
	}
	offset := 0
	r := pl.Depth()
	for level := 0; level < r; level++ {
		res := DefectiveColorStep(v, same, pl.P, s.phiSteps[level], start, s.k0, true)
		offset += (res.Psi - 1) * pl.Thetas[level+1]
		for port := 0; port < deg; port++ {
			if same[port] && res.NbrPsi[port] != res.Psi {
				same[port] = false
			}
		}
	}
	c := linialLeaf(v, pl, s, same, start)
	return offset + c
}

// RandomizedColoring implements Theorem 6.1: every vertex picks a uniformly
// random class among K = ⌈Δ/ln n⌉, which is an O(log n)-defective
// O(Δ/log n)-coloring with high probability (Kuhn–Wattenhofer [20]); then
// every class — a bounded-NI subgraph of maximum degree O(log n) — is
// colored by Legal-Color in parallel. The result uses
// O(Δ·min{Δ, log n}^η) colors in O(poly log log n) rounds.
//
// kappa scales the high-probability defect bound ⌈kappa·ln n⌉; if an
// unlucky seed exceeds it the run returns an error (rerun with a new seed —
// the failure probability drops exponentially in kappa).
func RandomizedColoring(g *graph.Graph, c, b, p, kappa int, opts ...dist.Option) (*dist.Result[int], error) {
	n := g.N()
	delta := g.MaxDegree()
	if delta == 0 {
		return dist.Run(g, func(v dist.Process) int { return 1 }, opts...)
	}
	logN := math.Log(float64(n))
	classes := int(math.Ceil(float64(delta) / math.Max(logN, 1)))
	classDeg := int(math.Ceil(float64(kappa) * math.Max(logN, 1)))
	if classes <= 1 || classDeg >= delta {
		// Δ = O(log n): run the deterministic algorithm directly (§6.1).
		pl, err := AutoPlan(delta, c, b, p, false)
		if err != nil {
			return nil, err
		}
		return LegalColoring(g, pl, StartAux, opts...)
	}
	pl, err := AutoPlan(classDeg, c, b, p, false)
	if err != nil {
		return nil, err
	}
	sched, err := newSchedule(g.N(), g.MaxDegree(), pl, StartAux)
	if err != nil {
		return nil, err
	}
	return dist.Run(g, func(v dist.Process) int {
		class := 1 + v.Rand().Intn(classes)
		nbrClass := exchangeIntsByPort(v, nil, class)
		mask := make([]bool, v.Deg())
		sameCount := 0
		for port := range mask {
			mask[port] = nbrClass[port] == class
			if mask[port] {
				sameCount++
			}
		}
		if sameCount > classDeg {
			panic(fmt.Sprintf("core: randomized split defect %d exceeds bound %d (unlucky seed; rerun)",
				sameCount, classDeg))
		}
		start := v.ID()
		if sched.mode == StartAux {
			start = auxStart(v, sched)
		}
		legal := legalColorVertexMasked(v, pl, sched, mask, start)
		return (class-1)*pl.TotalPalette() + legal
	}, opts...)
}

// RandomizedPaletteBound returns the palette bound of RandomizedColoring.
func RandomizedPaletteBound(g *graph.Graph, c, b, p, kappa int) (int, error) {
	n := g.N()
	delta := g.MaxDegree()
	if delta == 0 {
		return 1, nil
	}
	logN := math.Log(float64(n))
	classes := int(math.Ceil(float64(delta) / math.Max(logN, 1)))
	classDeg := int(math.Ceil(float64(kappa) * math.Max(logN, 1)))
	if classes <= 1 || classDeg >= delta {
		pl, err := AutoPlan(delta, c, b, p, false)
		if err != nil {
			return 0, err
		}
		return pl.TotalPalette(), nil
	}
	pl, err := AutoPlan(classDeg, c, b, p, false)
	if err != nil {
		return 0, err
	}
	return classes * pl.TotalPalette(), nil
}

// TradeoffColoring implements Corollary 6.3: for a divisor parameter q
// (= q(Δ) = Δ/p in the paper's notation), it computes a ⌊Δ/p⌋-defective
// O(p²)-coloring with p = Δ/q via Lemma 2.1(3), splits into its color
// classes — each of degree ≤ q — and runs Legal-Color on all classes in
// parallel. Colors: O(p²·q^{1+η}) = O(Δ²/g(Δ)) for g = q^{1-η}; time:
// O(log* n) + the Legal-Color cost at degree q.
func TradeoffColoring(g *graph.Graph, c, b, pp, classDeg int, opts ...dist.Option) (*dist.Result[int], error) {
	n := g.N()
	delta := g.MaxDegree()
	if classDeg < 1 || classDeg > delta {
		return nil, fmt.Errorf("core: class degree %d outside [1,Δ=%d]", classDeg, delta)
	}
	splitSteps := defective.Schedule(n, delta, classDeg)
	pl, err := AutoPlan(classDeg, c, b, pp, false)
	if err != nil {
		return nil, err
	}
	sched, err := newSchedule(g.N(), g.MaxDegree(), pl, StartAux)
	if err != nil {
		return nil, err
	}
	return dist.Run(g, func(v dist.Process) int {
		class := linial.RunChain(splitSteps, v.ID(), linial.BroadcastExchange(v))
		nbrClass := exchangeIntsByPort(v, nil, class)
		mask := make([]bool, v.Deg())
		for port := range mask {
			mask[port] = nbrClass[port] == class
		}
		start := v.ID()
		if sched.mode == StartAux {
			start = auxStart(v, sched)
		}
		legal := legalColorVertexMasked(v, pl, sched, mask, start)
		return (class-1)*pl.TotalPalette() + legal
	}, opts...)
}

// TradeoffPaletteBound returns the palette bound of TradeoffColoring.
func TradeoffPaletteBound(g *graph.Graph, c, b, pp, classDeg int) (int, error) {
	splitSteps := defective.Schedule(g.N(), g.MaxDegree(), classDeg)
	pl, err := AutoPlan(classDeg, c, b, pp, false)
	if err != nil {
		return 0, err
	}
	return linial.FinalPalette(g.N(), splitSteps) * pl.TotalPalette(), nil
}
