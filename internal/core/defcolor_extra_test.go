package core

import (
	"testing"

	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/graph"
)

// TestEventDrivenMatchesFixedWindow verifies that Algorithm 1 computes the
// same ψ whether the while-loop runs event-driven (Lemma 3.2) or padded to
// the fixed #ϕ-palette window: the announcement schedule is identical, the
// window only pads the tail.
func TestEventDrivenMatchesFixedWindow(t *testing.T) {
	g := graph.RandomRegular(128, 10, 31).LineGraph()
	delta := g.MaxDegree()
	b, p := 2, 4
	phiSteps := defective.Schedule(g.N(), delta, delta/(b*p))
	run := func(window bool) (*dist.Result[int], error) {
		return dist.Run(g, func(v dist.Process) int {
			return DefectiveColorStep(v, nil, p, phiSteps, v.ID(), g.N(), window).Psi
		})
	}
	fixed, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	event, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fixed.Outputs {
		if fixed.Outputs[v] != event.Outputs[v] {
			t.Fatalf("vertex %d: fixed %d vs event-driven %d", v,
				fixed.Outputs[v], event.Outputs[v])
		}
	}
	if event.Stats.Rounds > fixed.Stats.Rounds {
		t.Fatalf("event-driven rounds %d exceed fixed window %d",
			event.Stats.Rounds, fixed.Stats.Rounds)
	}
}

// TestDefectiveColorStepNeighborPsi checks the NbrPsi side channel that
// Legal-Color uses to split subgraphs: reported neighbor colors must match
// the neighbors' own outputs.
func TestDefectiveColorStepNeighborPsi(t *testing.T) {
	g := graph.PowerOfCycle(60, 4)
	delta := g.MaxDegree()
	b, p := 1, 4
	phiSteps := defective.Schedule(g.N(), delta, delta/(b*p))
	res, err := dist.Run(g, func(v dist.Process) DefectiveResult {
		return DefectiveColorStep(v, nil, p, phiSteps, v.ID(), g.N(), true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for port, u := range g.Neighbors(v) {
			if got, want := res.Outputs[v].NbrPsi[port], res.Outputs[u].Psi; got != want {
				t.Fatalf("vertex %d port %d: NbrPsi %d, neighbor's ψ %d", v, port, got, want)
			}
		}
	}
}

// TestSubPolyColorsPlan exercises the Theorem 4.8(3) preset.
func TestSubPolyColorsPlan(t *testing.T) {
	pl, err := SubPolyColorsPlan(5000, 2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Depth() < 1 {
		t.Fatalf("plan %v has no recursion", pl)
	}
	// The λ threshold should be polylogarithmic in Δ, far below Δ.
	if pl.Lambda >= 5000/2 {
		t.Fatalf("λ = %d is not sub-polynomial in Δ", pl.Lambda)
	}
	if _, err := SubPolyColorsPlan(100, 2, 0, false); err == nil {
		t.Error("eta=0 accepted")
	}
	// And it actually colors a graph.
	g := graph.CliquePlusPendants(24)
	plG, err := SubPolyColorsPlan(g.MaxDegree(), 2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LegalColoring(g, plG, StartAux)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
}
