package core

import (
	"repro/internal/dist"
	"repro/internal/wire"
)

// exchangeInts broadcasts one integer on the masked ports (nil mask = all)
// and returns the integers received on those ports, in port order.
func exchangeInts(v dist.Process, mask []bool, own int) []int {
	deg := v.Deg()
	out := make([][]byte, deg)
	msg := wire.EncodeInts(own)
	for port := 0; port < deg; port++ {
		if mask == nil || mask[port] {
			out[port] = msg
		}
	}
	in := v.Round(out)
	var nbrs []int
	for port := 0; port < deg; port++ {
		if (mask == nil || mask[port]) && in[port] != nil {
			vals, err := wire.DecodeInts(in[port], 1)
			if err != nil {
				panic("core: bad message: " + err.Error())
			}
			nbrs = append(nbrs, vals[0])
		}
	}
	return nbrs
}

// exchangeIntsByPort broadcasts one integer on the masked ports and returns
// the received integer per port (0 where nothing arrived).
func exchangeIntsByPort(v dist.Process, mask []bool, own int) []int {
	deg := v.Deg()
	out := make([][]byte, deg)
	msg := wire.EncodeInts(own)
	for port := 0; port < deg; port++ {
		if mask == nil || mask[port] {
			out[port] = msg
		}
	}
	in := v.Round(out)
	res := make([]int, deg)
	for port := 0; port < deg; port++ {
		if (mask == nil || mask[port]) && in[port] != nil {
			vals, err := wire.DecodeInts(in[port], 1)
			if err != nil {
				panic("core: bad message: " + err.Error())
			}
			res[port] = vals[0]
		}
	}
	return res
}
