// Package forest implements rooted-forest machinery used by the
// Panconesi–Rizzi (2Δ−1)-edge-coloring [24]: decomposition of an
// ID-oriented graph into edge-disjoint rooted forests, and the
// Cole–Vishkin-style deterministic 3-coloring of all forests in parallel in
// O(log* n) rounds (bit reduction to 6 colors, then shift-down to 3).
//
// All routines here are per-vertex subroutines meant to be called from
// inside a dist vertex function; many logical forests share each physical
// edge-disjointly, so running them in parallel costs no extra rounds.
// Per-vertex state is proportional to the vertex degree, not to the global
// number of forests (which the §5 recursion makes as large as p^r·Λ).
package forest

import (
	"math/bits"
	"sort"

	"repro/internal/dist"
	"repro/internal/wire"
)

// NoForest marks a port that belongs to no forest.
const NoForest = 0

// Membership describes, for one vertex, how its ports map onto the forests
// it belongs to. Forests carry global integer ids (agreed by both endpoints
// of every edge); a vertex's parent in forest f is reached through its
// unique out-port labeled f, and its children are the in-ports labeled f.
type Membership struct {
	Forests    []int // sorted global ids of forests present at this vertex
	PortLabel  []int // per port: forest id, or NoForest
	parentPort map[int]int
}

// ParentPortOf returns the port leading to this vertex's parent in forest
// fid, or -1 if the vertex is a root of (or absent from) that forest.
func (m *Membership) ParentPortOf(fid int) int {
	if p, ok := m.parentPort[fid]; ok {
		return p
	}
	return -1
}

// InForest reports whether the vertex has any edge in forest fid.
func (m *Membership) InForest(fid int) bool {
	i := sort.SearchInts(m.Forests, fid)
	return i < len(m.Forests) && m.Forests[i] == fid
}

// AssignLabels runs the one-round forest decomposition: every vertex labels
// its out-edges (ports whose neighbor has a smaller identifier, restricted
// to active ports) with distinct labels 1..outdeg, sends each label across
// its edge, and learns the labels of its in-edges. The result partitions the
// active edges into at most degBound rooted forests (ids 1..degBound): each
// vertex has at most one out-edge per label, and following out-edges
// strictly decreases identifiers, so every label class is a forest rooted at
// local ID minima.
//
// active may be nil (all ports active). Costs exactly one round.
func AssignLabels(v dist.Process, active []bool, degBound int) Membership {
	classOf := make([]int, v.Deg())
	for port := range classOf {
		if active == nil || active[port] {
			classOf[port] = 1
		}
	}
	return AssignLabelsClasses(v, classOf, degBound)
}

// AssignLabelsClasses is the multi-class generalization used by the edge
// variant of Procedure Legal-Color (§5): ports are partitioned into
// edge-disjoint classes (classOf[port] >= 1, 0 = inactive), each class
// having degree at most degBound at every vertex. Each class is decomposed
// into degBound forests exactly as AssignLabels does, with the forest of
// class c and within-class label ℓ getting the global id (c−1)·degBound+ℓ.
// All classes share the single labeling round; both endpoints of an edge
// agree on its class, so they agree on its forest id.
func AssignLabelsClasses(v dist.Process, classOf []int, degBound int) Membership {
	deg := v.Deg()
	m := Membership{
		PortLabel:  make([]int, deg),
		parentPort: make(map[int]int, deg),
	}
	out := make([][]byte, deg)
	nextInClass := make(map[int]int, 4)
	for port := 0; port < deg; port++ {
		c := classOf[port]
		if c == 0 {
			continue
		}
		if v.NeighborID(port) < v.ID() { // out-edge: neighbor is the parent
			nextInClass[c]++
			if nextInClass[c] > degBound {
				panic("forest: class out-degree exceeds degBound")
			}
			fid := (c-1)*degBound + nextInClass[c]
			m.PortLabel[port] = fid
			m.parentPort[fid] = port
			out[port] = wire.EncodeInts(fid)
		}
	}
	in := v.Round(out)
	for port := 0; port < deg; port++ {
		if classOf[port] == 0 {
			continue
		}
		if v.NeighborID(port) > v.ID() { // in-edge: the child told us its label
			vals, err := wire.DecodeInts(in[port], 1)
			if err != nil {
				panic("forest: bad label message: " + err.Error())
			}
			m.PortLabel[port] = vals[0]
		}
	}
	seen := make(map[int]bool, deg)
	for _, fid := range m.PortLabel {
		if fid != NoForest && !seen[fid] {
			seen[fid] = true
			m.Forests = append(m.Forests, fid)
		}
	}
	sort.Ints(m.Forests)
	return m
}

// CVRounds returns the number of bit-reduction rounds of the Cole–Vishkin
// phase for identifier space {1..n}; every vertex computes the same value
// locally so all forests stay in lockstep.
func CVRounds(n int) int {
	rounds := 0
	k := n
	for k > 6 {
		k = nextPalette(k)
		rounds++
	}
	return rounds
}

// nextPalette maps palette size k to 2*ceil(log2 k), the palette after one
// bit-reduction round.
func nextPalette(k int) int {
	return 2 * ceilLog2(k)
}

func ceilLog2(k int) int {
	if k <= 1 {
		return 1
	}
	return bits.Len(uint(k - 1))
}

// ShiftDownIterations is the number of (shift-down, recolor) iterations that
// reduce 6 colors to 3.
const ShiftDownIterations = 3

// TotalRounds returns the full round cost of ThreeColor for n identifiers:
// the bit-reduction phase plus two rounds per shift-down iteration.
func TotalRounds(n int) int { return CVRounds(n) + 2*ShiftDownIterations }

// ThreeColor 3-colors the vertices of every forest simultaneously: the
// returned map holds, per forest id present at this vertex, its color in
// {1,2,3}. Costs exactly TotalRounds(v.N()) rounds for every vertex
// (lockstep), independent of the forests' shapes and count.
func ThreeColor(v dist.Process, m Membership) map[int]int {
	colors := make(map[int]int, len(m.Forests)) // 0-based during reduction
	for _, fid := range m.Forests {
		colors[fid] = v.ID() - 1
	}
	// Phase 1: bit reduction. Every vertex sends, on every forest port, its
	// current color in that forest; children combine with the parent color.
	for r := 0; r < CVRounds(v.N()); r++ {
		all := exchangeAllColors(v, m, colors)
		for _, fid := range m.Forests {
			if p := m.ParentPortOf(fid); p >= 0 {
				colors[fid] = cvStep(colors[fid], all[p])
			} else {
				colors[fid] = colors[fid] & 1 // root: (index 0, own bit 0)
			}
		}
	}
	// Normalize to 1..6.
	for _, fid := range m.Forests {
		colors[fid]++
	}
	// Phase 2: three (shift-down, recolor) iterations remove colors 6, 5, 4.
	for x := 6; x >= 4; x-- {
		// Shift-down: every non-root adopts its parent's color; roots pick a
		// color in {1,2} different from their own, keeping siblings
		// monochromatic and the coloring proper.
		all := exchangeAllColors(v, m, colors)
		for _, fid := range m.Forests {
			if p := m.ParentPortOf(fid); p >= 0 {
				colors[fid] = all[p]
			} else if colors[fid] == 1 {
				colors[fid] = 2
			} else {
				colors[fid] = 1
			}
		}
		// Recolor class x: its members form an independent set in each
		// forest; each picks the smallest color in {1,2,3} unused by its
		// parent and (shared) child color.
		all = exchangeAllColors(v, m, colors)
		for _, fid := range m.Forests {
			if colors[fid] != x {
				continue
			}
			used := [4]bool{}
			for port, lab := range m.PortLabel {
				if lab == fid && all[port] >= 1 && all[port] <= 3 {
					used[all[port]] = true
				}
			}
			for c := 1; c <= 3; c++ {
				if !used[c] {
					colors[fid] = c
					break
				}
			}
		}
	}
	return colors
}

// cvStep computes the Cole–Vishkin bit-reduction color: the index of the
// lowest bit where own and parent differ, paired with own's bit there.
func cvStep(own, parent int) int {
	diff := own ^ parent
	i := bits.TrailingZeros(uint(diff))
	return 2*i + (own>>i)&1
}

// exchangeAllColors sends, on every forest port, this vertex's color in that
// port's forest, and returns the neighbor's color per port (-1 where absent).
func exchangeAllColors(v dist.Process, m Membership, colors map[int]int) []int {
	deg := v.Deg()
	out := make([][]byte, deg)
	for port, fid := range m.PortLabel {
		if fid != NoForest {
			out[port] = wire.EncodeInts(colors[fid])
		}
	}
	in := v.Round(out)
	res := make([]int, deg)
	for port := range res {
		res[port] = -1
		if m.PortLabel[port] == NoForest || in[port] == nil {
			continue
		}
		vals, err := wire.DecodeInts(in[port], 1)
		if err != nil {
			panic("forest: bad color message: " + err.Error())
		}
		res[port] = vals[0]
	}
	return res
}
