package forest

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

func TestCVRoundsLogStar(t *testing.T) {
	if CVRounds(6) != 0 {
		t.Fatalf("CVRounds(6) = %d, want 0", CVRounds(6))
	}
	if CVRounds(7) != 1 {
		t.Fatalf("CVRounds(7) = %d, want 1", CVRounds(7))
	}
	// log*-like growth: huge identifier spaces need few rounds.
	if r := CVRounds(1 << 30); r > 5 {
		t.Fatalf("CVRounds(2^30) = %d, want <= 5", r)
	}
	if r1, r2 := CVRounds(1<<20), CVRounds(1<<40); r2 > r1+1 {
		t.Fatalf("CVRounds grew too fast: %d -> %d", r1, r2)
	}
}

func TestNextPalette(t *testing.T) {
	tests := []struct{ in, want int }{
		{1 << 20, 40}, {256, 16}, {7, 6}, {8, 6}, {6, 6},
	}
	for _, tt := range tests {
		if got := nextPalette(tt.in); got != tt.want {
			t.Errorf("nextPalette(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestCVStepSeparatesAdjacent(t *testing.T) {
	// For any distinct own/parent, the produced pairs differ whenever the
	// parent also reduces against its own distinct grandparent color.
	for own := 0; own < 64; own++ {
		for parent := 0; parent < 64; parent++ {
			if own == parent {
				continue
			}
			for grand := 0; grand < 64; grand++ {
				if grand == parent {
					continue
				}
				if cvStep(own, parent) == cvStep(parent, grand) {
					t.Fatalf("cvStep collision: own=%d parent=%d grand=%d", own, parent, grand)
				}
			}
		}
	}
}

// runLabels runs AssignLabels on g and returns per-vertex memberships along
// with the run result for inspection.
func runLabels(t *testing.T, g *graph.Graph, degBound int) []Membership {
	t.Helper()
	res, err := dist.Run(g, func(v dist.Process) Membership {
		return AssignLabels(v, nil, degBound)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 1 {
		t.Fatalf("AssignLabels took %d rounds, want 1", res.Stats.Rounds)
	}
	return res.Outputs
}

func TestAssignLabelsDecomposesIntoForests(t *testing.T) {
	g := graph.GNM(80, 400, 11)
	degBound := g.MaxDegree()
	ms := runLabels(t, g, degBound)
	// Both endpoints agree on each edge's label; labels partition edges;
	// per vertex, out-labels are distinct.
	for v := 0; v < g.N(); v++ {
		seen := map[int]bool{}
		for port, u := range g.Neighbors(v) {
			lab := ms[v].PortLabel[port]
			if lab < 1 || lab > degBound {
				t.Fatalf("vertex %d port %d label %d out of range", v, port, lab)
			}
			// Locate v's port at u.
			uports := g.Neighbors(int(u))
			for q, w := range uports {
				if int(w) == v {
					if other := ms[u].PortLabel[q]; other != lab {
						t.Fatalf("edge (%d,%d): labels differ %d vs %d", v, u, lab, other)
					}
				}
			}
			if g.ID(int(u)) < g.ID(v) { // out-edge
				if seen[lab] {
					t.Fatalf("vertex %d has two out-edges labeled %d", v, lab)
				}
				seen[lab] = true
			}
		}
	}
	// Each label class, followed via parent ports, is acyclic (IDs decrease).
	for v := 0; v < g.N(); v++ {
		for l := 1; l <= degBound; l++ {
			if p := ms[v].ParentPortOf(l); p >= 0 {
				if g.ID(int(g.Neighbors(v)[p])) >= g.ID(v) {
					t.Fatalf("vertex %d forest %d parent has larger id", v, l)
				}
			}
		}
	}
}

func TestThreeColorAllForests(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.GNM(120, 480, 5)},
		{"tree", graph.RandomTree(200, 6)},
		{"cycle", graph.Cycle(33)},
		{"clique", graph.Complete(9)},
		{"star", graph.Star(25)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			degBound := g.MaxDegree()
			type out struct {
				m Membership
				c map[int]int
			}
			res, err := dist.Run(g, func(v dist.Process) out {
				m := AssignLabels(v, nil, degBound)
				return out{m: m, c: ThreeColor(v, m)}
			})
			if err != nil {
				t.Fatal(err)
			}
			wantRounds := 1 + TotalRounds(g.N())
			if res.Stats.Rounds != wantRounds {
				t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, wantRounds)
			}
			// Validate: for every edge with label ℓ, endpoint colors in
			// forest ℓ are in {1,2,3} and differ.
			for v := 0; v < g.N(); v++ {
				for port, u := range g.Neighbors(v) {
					if int(u) < v {
						continue
					}
					lab := res.Outputs[v].m.PortLabel[port]
					cv := res.Outputs[v].c[lab]
					cu := res.Outputs[u].c[lab]
					if cv < 1 || cv > 3 || cu < 1 || cu > 3 {
						t.Fatalf("edge (%d,%d) forest %d: colors %d,%d outside 1..3", v, u, lab, cv, cu)
					}
					if cv == cu {
						t.Fatalf("edge (%d,%d) forest %d: both endpoints colored %d", v, u, lab, cv)
					}
				}
			}
		})
	}
}

func TestThreeColorRespectsActiveMask(t *testing.T) {
	// Only even-indexed edges active: inactive ports must stay unlabeled.
	g := graph.Cycle(12)
	res, err := dist.Run(g, func(v dist.Process) Membership {
		active := make([]bool, v.Deg())
		for p := 0; p < v.Deg(); p++ {
			active[p] = (v.ID()+v.NeighborID(p))%2 == 1 // arbitrary agreed rule
		}
		return AssignLabels(v, active, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range res.Outputs {
		for port, u := range g.Neighbors(v) {
			activeEdge := (g.ID(v)+g.ID(int(u)))%2 == 1
			if !activeEdge && m.PortLabel[port] != NoForest {
				t.Fatalf("inactive port labeled: v=%d port=%d", v, port)
			}
			if activeEdge && m.PortLabel[port] == NoForest {
				t.Fatalf("active port unlabeled: v=%d port=%d", v, port)
			}
		}
	}
}

func TestShuffledIDsStillProper(t *testing.T) {
	g := graph.ShuffledIDs(graph.GNM(60, 240, 2), 77)
	degBound := g.MaxDegree()
	type out struct {
		m Membership
		c map[int]int
	}
	res, err := dist.Run(g, func(v dist.Process) out {
		m := AssignLabels(v, nil, degBound)
		return out{m, ThreeColor(v, m)}
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for port, u := range g.Neighbors(v) {
			if int(u) < v {
				continue
			}
			lab := res.Outputs[v].m.PortLabel[port]
			if res.Outputs[v].c[lab] == res.Outputs[u].c[lab] {
				t.Fatalf("monochromatic forest edge (%d,%d)", v, u)
			}
		}
	}
}
