package reduce

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/linial"
)

func TestKWRounds(t *testing.T) {
	tests := []struct{ k, target, want int }{
		{10, 10, 0},   // already at target
		{5, 10, 0},    // below target
		{20, 10, 10},  // 2 blocks -> 1 level
		{40, 10, 20},  // 4 blocks -> 2 levels
		{100, 10, 40}, // 10 blocks -> 4 levels
		{100, 0, 0},   // degenerate target
		{10000, 10, 100} /* 1000 blocks -> 10 levels */}
	for _, tt := range tests {
		if got := KWRounds(tt.k, tt.target); got != tt.want {
			t.Errorf("KWRounds(%d,%d) = %d, want %d", tt.k, tt.target, got, tt.want)
		}
	}
}

func TestKWReduceFromLinial(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.GNM(120, 480, 1)},
		{"clique", graph.Complete(10)},
		{"cycle", graph.Cycle(41)},
		{"tree", graph.RandomTree(90, 2)},
		{"regular", graph.RandomRegular(60, 8, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			delta := g.MaxDegree()
			steps := linial.LegalSchedule(g.N(), delta)
			k := linial.FinalPalette(g.N(), steps)
			res, err := dist.Run(g, func(v dist.Process) int {
				c := linial.RunChain(steps, v.ID(), linial.BroadcastExchange(v))
				return KWReduceColors(v, c, k, delta+1, nil)
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
				t.Fatal(err)
			}
			if mc := graph.MaxColor(res.Outputs); mc > delta+1 {
				t.Fatalf("palette %d exceeds Δ+1 = %d", mc, delta+1)
			}
			want := len(steps) + KWRounds(k, delta+1)
			if res.Stats.Rounds != want {
				t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, want)
			}
		})
	}
}

// TestKWFasterThanNaive asserts the asymptotic win: for k = Θ(Δ²), the KW
// reduction uses far fewer rounds than one-class-per-round.
func TestKWFasterThanNaive(t *testing.T) {
	delta := 40
	k := 4 * delta * delta
	naive := k - (delta + 1)
	kw := KWRounds(k, delta+1)
	if kw >= naive/3 {
		t.Fatalf("KW rounds %d not clearly below naive %d", kw, naive)
	}
}

func TestKWReduceOnSubgraph(t *testing.T) {
	// Reduce only within a matching inside K8; target 2 colors per pair.
	g := graph.Complete(8)
	res, err := dist.Run(g, func(v dist.Process) int {
		partner := v.ID() - 1
		if v.ID()%2 == 1 {
			partner = v.ID() + 1
		}
		active := make([]bool, v.Deg())
		for p := 0; p < v.Deg(); p++ {
			active[p] = v.NeighborID(p) == partner
		}
		return KWReduceColors(v, v.ID(), 8, 2, active)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if c := res.Outputs[v]; c < 1 || c > 2 {
			t.Fatalf("vertex %d color %d outside 1..2", v, c)
		}
	}
	for v := 0; v < g.N(); v++ {
		id := g.ID(v)
		partner := id - 1
		if id%2 == 1 {
			partner = id + 1
		}
		for u := 0; u < g.N(); u++ {
			if g.ID(u) == partner && res.Outputs[u] == res.Outputs[v] {
				t.Fatalf("matched pair (%d,%d) share color %d", id, partner, res.Outputs[v])
			}
		}
	}
}

func TestKWMatchesNaiveLegality(t *testing.T) {
	// Both reducers, same input: both must be legal with the same palette.
	g := graph.GNM(80, 320, 9)
	delta := g.MaxDegree()
	steps := linial.LegalSchedule(g.N(), delta)
	k := linial.FinalPalette(g.N(), steps)
	run := func(kw bool) []int {
		res, err := dist.Run(g, func(v dist.Process) int {
			c := linial.RunChain(steps, v.ID(), linial.BroadcastExchange(v))
			if kw {
				return KWReduceColors(v, c, k, delta+1, nil)
			}
			return ReduceColors(v, c, k, delta+1, nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(true), run(false)
	if err := graph.CheckVertexColoring(g, a); err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, b); err != nil {
		t.Fatal(err)
	}
	if graph.MaxColor(a) > delta+1 || graph.MaxColor(b) > delta+1 {
		t.Fatal("palette bound violated")
	}
}

// BenchmarkLeafReduction_KW and _Naive are the substitution-N1 ablation: the
// leaf palette reduction of Procedure Legal-Color via Kuhn–Wattenhofer
// merging vs one-class-per-round.
func BenchmarkLeafReduction_KW(b *testing.B) {
	benchLeafReduction(b, true)
}

func BenchmarkLeafReduction_Naive(b *testing.B) {
	benchLeafReduction(b, false)
}

func benchLeafReduction(b *testing.B, kw bool) {
	b.Helper()
	g := graph.RandomRegular(128, 16, 7)
	delta := g.MaxDegree()
	steps := linial.LegalSchedule(g.N(), delta)
	k := linial.FinalPalette(g.N(), steps)
	for i := 0; i < b.N; i++ {
		res, err := dist.Run(g, func(v dist.Process) int {
			c := linial.RunChain(steps, v.ID(), linial.BroadcastExchange(v))
			if kw {
				return KWReduceColors(v, c, k, delta+1, nil)
			}
			return ReduceColors(v, c, k, delta+1, nil)
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
		}
	}
}
