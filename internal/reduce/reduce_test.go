package reduce

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/linial"
)

func TestReduceColorsFromLinial(t *testing.T) {
	// Full Lemma 2.1(2) substitute: Linial O(Δ²) then reduce to Δ+1.
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.GNM(100, 400, 1)},
		{"clique", graph.Complete(9)},
		{"cycle", graph.Cycle(40)},
		{"tree", graph.RandomTree(80, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			delta := g.MaxDegree()
			steps := linial.LegalSchedule(g.N(), delta)
			k := linial.FinalPalette(g.N(), steps)
			res, err := dist.Run(g, func(v dist.Process) int {
				c := linial.RunChain(steps, v.ID(), linial.BroadcastExchange(v))
				return ReduceColors(v, c, k, delta+1, nil)
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
				t.Fatal(err)
			}
			if mc := graph.MaxColor(res.Outputs); mc > delta+1 {
				t.Fatalf("palette %d exceeds Δ+1 = %d", mc, delta+1)
			}
			want := len(steps) + k - (delta + 1)
			if res.Stats.Rounds != want {
				t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, want)
			}
		})
	}
}

func TestReduceColorsNoopWhenAtTarget(t *testing.T) {
	g := graph.Cycle(10)
	res, err := dist.Run(g, func(v dist.Process) int {
		// A legal 3-coloring of an even cycle by parity of position: use ids.
		c := v.ID()%2 + 1
		if v.ID() == g.N() { // odd wrap guard (n even here so unused)
			c = 3
		}
		return ReduceColors(v, c, 3, 3, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 0 {
		t.Fatalf("rounds = %d, want 0 for k == target", res.Stats.Rounds)
	}
}

func TestReduceColorsOnSubgraph(t *testing.T) {
	// Restrict to a perfect matching inside K6; target palette 2.
	g := graph.Complete(6)
	res, err := dist.Run(g, func(v dist.Process) int {
		active := make([]bool, v.Deg())
		// Matching pairs ids (1,2), (3,4), (5,6).
		partner := v.ID() - 1
		if v.ID()%2 == 1 {
			partner = v.ID() + 1
		}
		for p := 0; p < v.Deg(); p++ {
			active[p] = v.NeighborID(p) == partner
		}
		return ReduceColors(v, v.ID(), 6, 2, active)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		c := res.Outputs[v]
		if c < 1 || c > 2 {
			t.Fatalf("vertex %d color %d outside 1..2", v, c)
		}
	}
	// Matching endpoints must differ.
	for v := 0; v < g.N(); v++ {
		id := g.ID(v)
		partner := id - 1
		if id%2 == 1 {
			partner = id + 1
		}
		for u := 0; u < g.N(); u++ {
			if g.ID(u) == partner && res.Outputs[u] == res.Outputs[v] {
				t.Fatalf("matched pair (%d,%d) share color %d", id, partner, res.Outputs[v])
			}
		}
	}
}

func TestColorByOrientationLemma34(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.GNM(120, 600, 4)},
		{"clique", graph.Complete(12)},
		{"path", graph.Path(30)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			o := graph.OrientByIDs(g)
			d := o.MaxOutDegree()
			res, err := dist.Run(g, func(v dist.Process) int {
				isOut := make([]bool, v.Deg())
				for p := range isOut {
					isOut[p] = v.NeighborID(p) < v.ID()
				}
				return ColorByOrientation(v, isOut, d)
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
				t.Fatal(err)
			}
			if mc := graph.MaxColor(res.Outputs); mc > d+1 {
				t.Fatalf("palette %d exceeds d+1 = %d (Lemma 3.4)", mc, d+1)
			}
			if want := o.LongestDirectedPath() + 1; res.Stats.Rounds != want {
				t.Fatalf("rounds = %d, want longest-path+1 = %d", res.Stats.Rounds, want)
			}
		})
	}
}

func TestColorByOrientationSinkOnly(t *testing.T) {
	// A single vertex (no edges): colors itself 1 immediately.
	g := graph.NewBuilder(1).Build()
	res, err := dist.Run(g, func(v dist.Process) int {
		return ColorByOrientation(v, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 1 {
		t.Fatalf("color = %d, want 1", res.Outputs[0])
	}
}
