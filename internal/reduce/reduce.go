// Package reduce provides two elementary color-manipulation primitives:
//
//   - ReduceColors: the classic one-class-per-round palette reduction. Given
//     a legal k-coloring of a (sub)graph with degree bound d, it produces a
//     legal (d+1)-coloring in k−(d+1) rounds. Combined with Linial's O(Δ²)
//     coloring it substitutes for the Lemma 2.1(2) leaf subroutine of
//     Procedure Legal-Color (substitution N1 in DESIGN.md).
//
//   - ColorByOrientation: the Lemma 3.4 process — given an acyclic
//     orientation with out-degree ≤ d, vertices wait for all out-neighbors
//     and then pick a free color, producing a legal (d+1)-coloring in
//     (longest directed path + 1) rounds. This is the algorithm illustrated
//     by Figure 2 of the paper.
package reduce

import (
	"repro/internal/dist"
	"repro/internal/wire"
)

// ReduceColors reduces a legal coloring with palette {1..k} on the active
// subgraph (nil mask = all ports) to a legal coloring with palette
// {1..target}. target must exceed the active-subgraph degree of every
// vertex. It costs exactly max(0, k-target) rounds; all vertices must call
// it with identical k and target.
func ReduceColors(v dist.Process, myColor, k, target int, active []bool) int {
	deg := v.Deg()
	nbr := make([]int, deg) // last known neighbor colors (0 = unknown)
	for c := k; c > target; c-- {
		// Everyone broadcasts its current color on active ports, then the
		// top class recolors greedily.
		out := make([][]byte, deg)
		msg := wire.EncodeInts(myColor)
		for p := 0; p < deg; p++ {
			if active == nil || active[p] {
				out[p] = msg
			}
		}
		in := v.Round(out)
		for p := 0; p < deg; p++ {
			if in[p] == nil {
				continue
			}
			vals, err := wire.DecodeInts(in[p], 1)
			if err != nil {
				panic("reduce: bad color message: " + err.Error())
			}
			nbr[p] = vals[0]
		}
		if myColor == c {
			myColor = smallestFree(nbr, active, target)
		}
	}
	return myColor
}

// smallestFree returns the smallest color in {1..limit} unused by active
// neighbors. The caller guarantees fewer than limit active neighbors.
func smallestFree(nbr []int, active []bool, limit int) int {
	used := make([]bool, limit+1)
	for p, c := range nbr {
		if (active == nil || active[p]) && c >= 1 && c <= limit {
			used[c] = true
		}
	}
	for c := 1; c <= limit; c++ {
		if !used[c] {
			return c
		}
	}
	panic("reduce: no free color; degree bound violated")
}

// ColorByOrientation implements Lemma 3.4: isOut marks the ports of edges
// oriented away from this vertex (toward its "parents"); the orientation
// must be acyclic with out-degree at most d. Each vertex waits until every
// out-neighbor announced its color, picks the smallest color in {1..d+1} not
// used by them, announces it once, and halts. The makespan is the longest
// directed path length + 1.
func ColorByOrientation(v dist.Process, isOut []bool, d int) int {
	deg := v.Deg()
	needed := 0
	for _, o := range isOut {
		if o {
			needed++
		}
	}
	outColors := make([]int, deg) // colors of out-neighbors (0 = unknown)
	have := 0
	myColor := 0
	if needed == 0 {
		myColor = 1
	}
	for {
		if myColor != 0 {
			// Announce and retire.
			v.Broadcast(wire.EncodeInts(myColor))
			return myColor
		}
		in := v.Round(nil)
		for p := 0; p < deg; p++ {
			if isOut[p] && outColors[p] == 0 && in[p] != nil {
				vals, err := wire.DecodeInts(in[p], 1)
				if err != nil {
					panic("reduce: bad color message: " + err.Error())
				}
				outColors[p] = vals[0]
				have++
			}
		}
		if have == needed {
			myColor = smallestFreeOut(outColors, isOut, d+1)
		}
	}
}

func smallestFreeOut(outColors []int, isOut []bool, limit int) int {
	used := make([]bool, limit+1)
	for p, c := range outColors {
		if isOut[p] && c >= 1 && c <= limit {
			used[c] = true
		}
	}
	for c := 1; c <= limit; c++ {
		if !used[c] {
			return c
		}
	}
	panic("reduce: out-degree exceeds bound")
}
