package reduce

import (
	"repro/internal/dist"
	"repro/internal/wire"
)

// KWRounds returns the exact round cost of KWReduceColors: target rounds per
// halving of the number of palette blocks.
func KWRounds(k, target int) int {
	if target < 1 || k <= target {
		return 0
	}
	blocks := (k + target - 1) / target
	rounds := 0
	for blocks > 1 {
		rounds += target
		blocks = (blocks + 1) / 2
	}
	return rounds
}

// KWReduceColors reduces a legal coloring with palette {1..k} on the active
// subgraph to a legal coloring with palette {1..target} in KWRounds(k,
// target) = O(target·log(k/target)) rounds, using the Kuhn–Wattenhofer
// divide-and-conquer [20]: the palette is split into blocks of target
// colors; pairs of blocks merge in parallel, the upper block's color
// classes recoloring greedily into the lower block one class per round
// (each class is independent, and a vertex has at most target−1 neighbors,
// so a free color always exists); log₂(k/target) merge levels suffice.
//
// target must exceed the active-subgraph degree of every vertex; all
// vertices must pass identical k and target. Compare ReduceColors, the
// naive one-class-per-round variant with cost k−target: the paper's [4]
// achieves O(Δ)+log* n, which this substitutes at an O(log Δ) factor
// (substitution N1 in DESIGN.md).
func KWReduceColors(v dist.Process, myColor, k, target int, active []bool) int {
	if target < 1 || k <= target {
		return myColor
	}
	deg := v.Deg()
	blocks := (k + target - 1) / target
	for blocks > 1 {
		// 0-based decomposition: color c-1 = block·target + pos.
		myBlock := (myColor - 1) / target
		myPos := (myColor - 1) % target
		upper := myBlock%2 == 1
		pairLow := (myBlock / 2) * 2 // block index of the pair's lower half
		nbr := make([]int, deg)
		for j := 0; j < target; j++ {
			out := make([][]byte, deg)
			msg := wire.EncodeInts(myColor)
			for p := 0; p < deg; p++ {
				if active == nil || active[p] {
					out[p] = msg
				}
			}
			in := v.Round(out)
			for p := 0; p < deg; p++ {
				if in[p] == nil {
					continue
				}
				vals, err := wire.DecodeInts(in[p], 1)
				if err != nil {
					panic("reduce: bad color message: " + err.Error())
				}
				nbr[p] = vals[0]
			}
			if upper && myPos == j {
				myColor = kwFree(nbr, active, pairLow, target)
			}
		}
		// Renumber into the halved block space: new block = old block / 2.
		b := (myColor - 1) / target
		pos := (myColor - 1) % target
		myColor = (b/2)*target + pos + 1
		blocks = (blocks + 1) / 2
	}
	return myColor
}

// kwFree returns the smallest color in the pair's lower block not used by
// an active neighbor.
func kwFree(nbr []int, active []bool, pairLow, target int) int {
	lo := pairLow*target + 1 // first color of the lower block (1-based)
	used := make([]bool, target)
	for p, c := range nbr {
		if active != nil && !active[p] {
			continue
		}
		if c >= lo && c < lo+target {
			used[c-lo] = true
		}
	}
	for i := 0; i < target; i++ {
		if !used[i] {
			return lo + i
		}
	}
	panic("reduce: no free color in block; degree bound violated")
}
