package dist

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// poolAlgo is a small chatty algorithm whose output depends on the seed, so
// pooled runs with different options are distinguishable.
func poolAlgo(v Process) int {
	x := v.ID() + v.Rand().Intn(1000)
	for i := 0; i < 3; i++ {
		in := v.Broadcast(wire.EncodeInts(x))
		for p := 0; p < v.Deg(); p++ {
			if in[p] != nil {
				vals, err := wire.DecodeInts(in[p], 1)
				if err != nil {
					panic(err)
				}
				x += vals[0] % 7
			}
		}
	}
	return x
}

// TestPoolMatchesRun hammers one Pool from many goroutines with a mix of
// seeds and engines and checks every result against a fresh dist.Run — the
// byte-identity the coloring service's cache correctness rests on.
func TestPoolMatchesRun(t *testing.T) {
	g := graph.GNM(60, 200, 4)
	p := NewPool[int](g, 3)
	defer p.Close()

	type job struct {
		seed   int64
		engine Engine
	}
	jobs := make([]job, 0, 24)
	for seed := int64(0); seed < 4; seed++ {
		for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
			jobs = append(jobs, job{seed, e}, job{seed + 100, e})
		}
	}
	want := make([]*Result[int], len(jobs))
	for i, j := range jobs {
		res, err := Run(g, poolAlgo, WithSeed(j.seed), WithEngine(j.engine))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			res, err := p.Run(poolAlgo, WithSeed(j.seed), WithEngine(j.engine))
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(res.Outputs, want[i].Outputs) || res.Stats != want[i].Stats {
				errs[i] = fmt.Errorf("job %d: pooled result differs from dist.Run", i)
			}
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := p.Stats()
	if st.Acquires != int64(len(jobs)) {
		t.Fatalf("acquires = %d, want %d", st.Acquires, len(jobs))
	}
	if st.Builds > 3 {
		t.Fatalf("builds = %d exceeds cap 3", st.Builds)
	}
	if st.Reuses != st.Acquires-st.Builds {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.Idle != int(st.Builds) {
		t.Fatalf("idle = %d, want all %d built runners parked", st.Idle, st.Builds)
	}
}

// TestPoolFailedRunRecovers checks that a panicking algorithm poisons neither
// the pool nor the runner slot it used.
func TestPoolFailedRunRecovers(t *testing.T) {
	g := graph.Cycle(8)
	p := NewPool[int](g, 1)
	defer p.Close()
	if _, err := p.Run(func(v Process) int { panic("boom") }); err == nil {
		t.Fatal("want error from panicking run")
	}
	res, err := p.Run(poolAlgo, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, poolAlgo, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Outputs, want.Outputs) {
		t.Fatal("post-failure pooled run differs from dist.Run")
	}
}

// TestPoolCloseReleasesBlockedAcquirers pins the Close contract: callers
// blocked on a saturated pool complete (on fresh runners) instead of hanging.
func TestPoolCloseReleasesBlockedAcquirers(t *testing.T) {
	g := graph.Cycle(6)
	p := NewPool[int](g, 1)
	hold := p.acquire() // saturate the cap so the next acquire blocks
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(poolAlgo)
		done <- err
	}()
	for p.Stats().Waits == 0 { // wait until the goroutine is parked
	}
	p.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	p.release(hold) // returned after Close: must be closed, not pooled
	if st := p.Stats(); st.Idle != 0 {
		t.Fatalf("idle = %d after Close, want 0", st.Idle)
	}
}
