package dist

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Run executes algo at every vertex of g under the synchronous LOCAL model
// and returns the per-vertex outputs with the measured cost. See the package
// documentation for the execution contract and the available Options.
//
// Run is a thin wrapper over a freshly built Runner; callers that execute
// many runs over the same graph should construct one Runner and reuse it so
// the per-vertex runtime state is amortized across runs.
//
// A panic inside any vertex instance aborts the run and is returned as an
// error carrying the vertex and the panic value.
func Run[T any](g *graph.Graph, algo func(Process) T, opts ...Option) (*Result[T], error) {
	r := NewRunner[T](g)
	r.oneShot = true
	defer r.Close()
	return r.Run(algo, opts...)
}

// Runner executes repeated runs over one graph, amortizing the per-vertex
// runtime state — proc structs, the vertex goroutines themselves, resume
// channels, the event queue, round inbox buffers, and Broadcast scratch
// outboxes — so that a steady-state run costs O(work), not O(bookkeeping).
// The reverse-port tables live in the graph itself (graph.ReversePorts,
// precomputed at build time), so a Runner adds no per-run preprocessing at
// all: between runs the vertex goroutines stay parked, and a new run merely
// resets statuses and releases them again.
//
// Reuse contract: a Runner is NOT safe for concurrent use — runs must be
// issued one at a time (each run still executes vertices concurrently
// internally, engine permitting). Outputs and Stats of finished runs remain
// valid indefinitely, but message buffers received by an algorithm are only
// valid until its next Round call, as documented on Process.Round. After a
// run fails (vertex panic, round cap), the Runner discards its pooled state
// and rebuilds it on the next run, because aborted vertex goroutines may
// still be unwinding user defers that touch it.
//
// Close releases the parked vertex goroutines; forgetting to call it is not
// fatal (a GC cleanup releases them when the Runner becomes unreachable),
// but explicit Close is deterministic and cheap.
type Runner[T any] struct {
	g     *graph.Graph
	delta int

	procs   []*proc[T]
	status  []uint8       // dense per-vertex lifecycle, indexed like procs
	outbox  [][][]byte    // dense per-vertex staged outboxes
	shardOf []int32       // dense vertex -> shard index (Sharded runs)
	written [][]slotRef   // per dest shard: inbox slots filled last round
	queues  [][][]qentry  // [src shard][dest shard] staged message queue
	events  chan event[T] // Goroutines/Lockstep event queue, capacity n
	shards  []shard[T]    // Sharded partition, rebuilt when the count changes
	life    *lifeline[T]  // shuts down the current goroutine generation

	// oneShot marks a Runner used for a single package-level Run: vertex
	// goroutines exit as soon as their vertex halts instead of parking for
	// a next run that will never come.
	oneShot bool
	// spawned reports whether the current generation's vertex goroutines
	// are live.
	spawned bool
}

// lifeline is the shutdown switch of one goroutine generation. Killing it
// marks the generation dead and feeds every vertex a wake-up token, so a
// park — a single channel receive — needs no second select case. It is a
// separate small object so a GC cleanup can trip it after the Runner itself
// becomes unreachable, and the Once lets abort paths, Close, and the
// cleanup share the kill race-freely.
type lifeline[T any] struct {
	dead  atomic.Bool
	once  sync.Once
	procs []*proc[T]
}

// kill releases every goroutine of the generation; idempotent. The token
// sends cannot wedge: resume has capacity 1, and a vertex whose slot is
// full is about to consume it, park again, and observe dead. Dropping the
// proc references afterwards lets a killed generation (and its pooled
// buffers) be collected even while the lifeline itself stays reachable
// through a pending AddCleanup.
func (l *lifeline[T]) kill() {
	l.once.Do(func() {
		l.dead.Store(true)
		for _, p := range l.procs {
			p.resume <- struct{}{}
		}
		l.procs = nil
	})
}

// NewRunner returns a Runner for the given graph. The type parameter is the
// per-vertex output type of the algorithms it will run.
func NewRunner[T any](g *graph.Graph) *Runner[T] {
	return &Runner[T]{g: g, delta: g.MaxDegree()}
}

// Close shuts down the Runner's parked vertex goroutines. The Runner may be
// used again afterwards (the next Run rebuilds), but the idiomatic lifecycle
// is one Close at the end, usually by defer.
func (r *Runner[T]) Close() {
	if r.life != nil {
		r.life.kill()
		r.discard()
	}
}

// discard drops every piece of generation-tainted pooled state.
func (r *Runner[T]) discard() {
	r.life = nil
	r.procs = nil
	r.status = nil
	r.outbox = nil
	r.shardOf = nil
	r.written = nil
	r.queues = nil
	r.events = nil
	r.shards = nil
	r.spawned = false
}

// clearStale nils the inbox slots filled by the previous run's final round,
// restoring the all-nil inbox invariant delivery relies on, in O(slots
// filled) rather than O(m).
func (r *Runner[T]) clearStale() {
	for j, wl := range r.written {
		for _, sr := range wl {
			r.procs[sr.idx].inbox[sr.port] = nil
		}
		r.written[j] = wl[:0]
	}
}

// Run executes one run; see Run (package function) for semantics.
func (r *Runner[T]) Run(algo func(Process) T, opts ...Option) (*Result[T], error) {
	cfg := config{engine: Goroutines, maxRounds: DefaultMaxRounds}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.engine == Compiled {
		// A plain per-vertex function carries no compiled form; the Compiled
		// engine degrades to Lockstep (RunAlgo dispatches opted-in algorithms
		// before reaching here).
		cfg.engine = Lockstep
	}
	if cfg.engine != Goroutines && cfg.engine != Lockstep && cfg.engine != Sharded {
		return nil, fmt.Errorf("dist: unknown engine %v", cfg.engine)
	}
	res := &Result[T]{Outputs: make([]T, r.g.N())}
	if r.g.N() == 0 {
		return res, nil
	}
	s := r.prepare(cfg, algo, res)
	if err := s.run(); err != nil {
		// Wake everything still parked so the generation can unwind, and
		// drop the pooled state: the next Run rebuilds from scratch rather
		// than share it with goroutines that may still be running user
		// defers.
		r.life.kill()
		r.discard()
		return nil, err
	}
	return res, nil
}

// prepare resets the pooled per-vertex state for one run and binds it to a
// fresh per-run scheduler, spawning the vertex goroutine generation if none
// is live.
func (r *Runner[T]) prepare(cfg config, algo func(Process) T, res *Result[T]) *sched[T] {
	n := r.g.N()
	if r.procs == nil {
		r.procs = make([]*proc[T], n)
		for v := 0; v < n; v++ {
			r.procs[v] = &proc[T]{idx: v, id: r.g.ID(v), resume: make(chan struct{}, 1)}
		}
		r.status = make([]uint8, n)
		r.outbox = make([][][]byte, n)
	}
	// Undo the previous run's final delivery before the written lists are
	// potentially resized for a different engine or shard count.
	r.clearStale()
	if r.life == nil {
		r.life = &lifeline[T]{procs: r.procs}
		// Safety net for Runners dropped without Close: release the parked
		// generation once the Runner is unreachable. The lifeline is its
		// own object, so passing it here does not resurrect the Runner.
		runtime.AddCleanup(r, func(l *lifeline[T]) { l.kill() }, r.life)
	}
	s := &sched[T]{
		g:       r.g,
		cfg:     cfg,
		algo:    algo,
		res:     res,
		delta:   r.delta,
		oneShot: r.oneShot,
		procs:   r.procs,
		status:  r.status,
		outbox:  r.outbox,
		life:    r.life,
	}
	count := 1 // destination partitions used by delivery bookkeeping
	if cfg.engine == Sharded {
		count = cfg.shards
		if count <= 0 {
			count = runtime.GOMAXPROCS(0)
		}
		if count > n {
			count = n
		}
		if len(r.shards) != count {
			r.shards = make([]shard[T], count)
			for i := range r.shards {
				r.shards[i] = shard[T]{
					index: i,
					lo:    i * n / count,
					hi:    (i + 1) * n / count,
					done:  make(chan struct{}, 1),
				}
			}
		}
		// A single shard needs no destination binning: its delivery is the
		// shared scatter pass (which also does the accounting), so the
		// queue and shard-lookup machinery stays nil and yields cost O(1).
		if count > 1 {
			if r.shardOf == nil {
				r.shardOf = make([]int32, n)
			}
			if len(r.queues) != count {
				r.queues = make([][][]qentry, count)
				for i := range r.queues {
					r.queues[i] = make([][]qentry, count)
				}
			}
			s.shardOf = r.shardOf
			s.queues = r.queues
		}
		s.shards = r.shards
	} else {
		if r.events == nil {
			r.events = make(chan event[T], n)
		}
		s.events = r.events
	}
	if len(r.written) != count {
		r.written = make([][]slotRef, count)
	}
	s.written = r.written
	for _, p := range r.procs {
		p.s = s
		p.rng = nil
		p.exiting = false
		p.next = nil
		p.shard = nil
		r.status[p.idx] = statusRunning
		r.outbox[p.idx] = nil
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.stats = Stats{}
		sh.err = nil
		sh.first = nil
		for v := sh.lo; v < sh.hi; v++ {
			r.procs[v].shard = sh
			if s.shardOf != nil {
				s.shardOf[v] = int32(i)
			}
		}
	}
	if !r.spawned {
		r.spawned = true
		for _, p := range r.procs {
			go vertexLoop(p, r.life)
		}
	}
	return s
}

// Vertex lifecycle within a round. Transitions are driven exclusively by the
// scheduling token that releases a vertex (statusRunning) and by the single
// yield/halt it performs per release (statusYielded / statusDone), so the
// status array needs no lock: a slot is only ever read or written while the
// owning vertex goroutine is parked, or by the vertex itself while it holds
// its release token.
const (
	statusRunning uint8 = iota // released, executing user code
	statusYielded              // parked inside Round, outbox staged
	statusDone                 // returned; output recorded
)

// event is the single message a released vertex goroutine reports back to
// the Goroutines/Lockstep scheduler: it reached Round (yielded), returned
// (done), or panicked. The Sharded engine reports through the shard token
// chain instead and never touches the event queue.
type event[T any] struct {
	p     *proc[T]
	kind  int // one of evYield, evDone, evPanic
	val   T   // valid when kind == evDone
	panic any // valid when kind == evPanic
}

const (
	evYield = iota
	evDone
	evPanic
)

// slotRef names one inbox slot filled by a delivery; the next delivery (or
// the next run) clears exactly these slots, so the all-nil inbox invariant
// is maintained in O(messages), not O(m).
type slotRef struct{ idx, port int32 }

// qentry is one staged message in a Sharded delivery queue: the destination
// vertex, the destination-side port, and the payload.
type qentry struct {
	dst, port int32
	msg       []byte
}

// proc is the per-vertex runtime state; it implements Process. A Runner
// keeps procs (and their pooled buffers) alive across runs.
type proc[T any] struct {
	s   *sched[T]
	idx int // vertex index in g
	id  int // distinct identifier g.ID(idx)
	// exiting is set just before runtime.Goexit on an aborted run and read
	// only by this vertex's own goroutine: it stops user defers that call
	// Round during the unwind from touching the channels again.
	exiting bool
	rng     *rand.Rand
	// inbox is the vertex's stable round inbox: a single pooled buffer of
	// length Deg, allocated on first use and then reused for every round
	// of every run. Delivery rewrites only the slots it touches (clearing
	// last round's via the written lists), so the slice Round returns is
	// exactly this buffer — valid until the vertex's next Round call, as
	// the Process contract states.
	inbox [][]byte
	// resume carries the release tokens. Capacity 1 makes every token send
	// a non-blocking handoff: a release token is sent only to a parked (or
	// about-to-park) vertex, and the kill token of lifeline.kill at worst
	// queues behind one unconsumed release token.
	resume chan struct{}
	// bcast is the scratch outbox reused by every Broadcast call; it is
	// invalidated (overwritten) at the vertex's next Round. bcastMsg
	// remembers the message the scratch currently replicates, so repeated
	// broadcasts of the same buffer (the steady state of "share my state
	// every round" algorithms) skip the refill entirely.
	bcast    [][]byte
	bcastMsg []byte
	// echo is the scratch that snapshots an outbox aliasing the pooled
	// inbox (the echo/forward pattern `v.Round(in)`): delivery recycles
	// inbox slots, so the staged slice must not be the inbox itself.
	echo [][]byte

	// Sharded-engine state: the shard owning this vertex (nil under the
	// other engines) and the successor in the current round's token chain.
	shard *shard[T]
	next  *proc[T]
}

var _ Process = (*proc[int])(nil)

func (p *proc[T]) ID() int        { return p.id }
func (p *proc[T]) N() int         { return p.s.g.N() }
func (p *proc[T]) Deg() int       { return p.s.g.Deg(p.idx) }
func (p *proc[T]) MaxDegree() int { return p.s.delta }

func (p *proc[T]) NeighborID(port int) int {
	return p.s.g.ID(int(p.s.g.Neighbors(p.idx)[port]))
}

func (p *proc[T]) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(VertexSeed(p.s.cfg.seed, p.id)))
	}
	return p.rng
}

func (p *proc[T]) Round(out [][]byte) [][]byte {
	deg := p.Deg()
	if out != nil && len(out) != deg {
		panic(fmt.Sprintf("dist: vertex id %d sent %d messages on %d ports", p.id, len(out), deg))
	}
	if len(out) > 0 && p.inbox != nil && &out[0] == &p.inbox[0] {
		// The caller is forwarding the slice Round returned (echo pattern).
		// Delivery recycles inbox slots, so snapshot the headers into a
		// scratch; the message buffers themselves are never recycled.
		if p.echo == nil {
			p.echo = make([][]byte, deg)
		}
		copy(p.echo, out)
		out = p.echo
	}
	if p.s.queues == nil {
		// The scatter delivery reads the staged outbox from this dense
		// array; the multi-shard queue path captures messages at yield
		// time instead and must not pin the slice for the rest of the run.
		p.s.outbox[p.idx] = out
	}
	if p.shard != nil {
		p.yieldSharded(out)
	} else {
		p.park(event[T]{p: p, kind: evYield})
	}
	if p.inbox == nil {
		// Nothing was ever delivered to this vertex; materialize the empty
		// inbox so the return is indexable.
		p.inbox = make([][]byte, deg)
	}
	return p.inbox
}

func (p *proc[T]) Broadcast(msg []byte) [][]byte {
	if msg == nil {
		return p.Round(nil)
	}
	if p.bcast == nil {
		p.bcast = make([][]byte, p.Deg())
	}
	out := p.bcast
	if !sameBuffer(msg, p.bcastMsg) {
		for i := range out {
			out[i] = msg
		}
		p.bcastMsg = msg
	}
	return p.Round(out)
}

// sameBuffer reports whether two non-empty slices share identity (backing
// array and length), i.e. replicating b is indistinguishable from
// replicating a.
func sameBuffer(a, b []byte) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// park reports e to the scheduler and blocks until the next release token.
// If the run aborts while parked, the token is lifeline.kill's and the
// goroutine unwinds via runtime.Goexit (running user defers, reporting
// nothing further).
//
// The event send is a plain send on purpose: events has capacity n and a
// live, non-exiting vertex has at most one event in flight (it blocks on
// resume right after sending), so the send can never block — even after an
// abort, when the scheduler has stopped draining. The exiting guard keeps
// that capacity argument true when user defers call Round during the
// Goexit unwind of an aborted run.
func (p *proc[T]) park(e event[T]) {
	if p.exiting {
		runtime.Goexit()
	}
	p.s.events <- e
	<-p.resume
	if p.s.life.dead.Load() {
		p.exiting = true
		runtime.Goexit()
	}
}

// sched drives one run. All engines share it; they differ in how releases
// within a round are ordered (concurrent, sequential, or chained per shard)
// and in whether delivery scatters from senders or gathers at destinations.
type sched[T any] struct {
	g       *graph.Graph
	cfg     config
	algo    func(Process) T
	res     *Result[T]
	delta   int
	oneShot bool

	procs   []*proc[T]
	status  []uint8       // per-vertex lifecycle, dense for delivery scans
	outbox  [][][]byte    // per-vertex staged outboxes, dense for delivery scans
	shardOf []int32       // vertex -> shard index (Sharded runs)
	written [][]slotRef   // per dest shard: inbox slots filled last round
	queues  [][][]qentry  // [src shard][dest shard] staged message queues
	events  chan event[T] // buffered n: a vertex send never blocks (nil under Sharded)
	life    *lifeline[T]  // generation shutdown switch; never tripped by run itself
	shards  []shard[T]    // Sharded partition (nil under the other engines)
}

// run drives rounds until every vertex has halted, a vertex panics, or the
// round cap trips. On error the caller (Runner.Run) kills the goroutine
// generation; run itself never trips the lifeline.
func (s *sched[T]) run() (err error) {
	sharded := s.cfg.engine == Sharded
	// active is filtered in place each round, so it must not alias s.procs
	// (delivery indexes s.procs by vertex).
	active := append([]*proc[T](nil), s.procs...)
	for len(active) > 0 {
		var perr error
		if sharded {
			perr = s.releaseSharded(active)
		} else {
			perr = s.releaseAll(active)
		}
		if perr != nil {
			return perr
		}
		arrived := active[:0]
		for _, p := range active {
			if s.status[p.idx] == statusYielded {
				arrived = append(arrived, p)
			}
		}
		if len(arrived) == 0 {
			return nil
		}
		s.res.Stats.Rounds++
		s.res.Stats.Activations += len(arrived)
		if s.cfg.maxRounds > 0 && s.res.Stats.Rounds > s.cfg.maxRounds {
			return roundCapErr(s.cfg.maxRounds, s.res.Stats)
		}
		if sharded && s.queues != nil {
			s.deliverSharded()
		} else {
			s.deliver(arrived)
		}
		active = arrived
	}
	return nil
}

// vertexLoop is the body of one persistent vertex goroutine: it parks
// between runs waiting for a release token and executes one algorithm
// instance per release. The loop ends when the lifeline is killed (Close,
// GC cleanup, or an aborted run), when an instance dies reporting a panic,
// or — for one-shot Runners — as soon as the single instance halts.
func vertexLoop[T any](p *proc[T], life *lifeline[T]) {
	for {
		<-p.resume
		if life.dead.Load() {
			return
		}
		if !vertexRun(p) {
			return
		}
	}
}

// vertexRun executes one released algorithm instance to completion and
// reports its return value; it reports a panic anywhere in the algorithm
// instead (runtime.Goexit from an aborted park skips both reports: recover
// returns nil during Goexit). The return value says whether the goroutine
// should keep serving future runs.
func vertexRun[T any](p *proc[T]) (alive bool) {
	alive = true
	defer func() {
		if r := recover(); r != nil && !p.exiting {
			alive = false
			if p.shard != nil {
				p.failSharded(r)
			} else {
				p.s.events <- event[T]{p: p, kind: evPanic, panic: r} // never blocks, see park
			}
		}
	}()
	val := p.s.algo(p)
	if p.s.oneShot {
		alive = false
	}
	if p.shard != nil {
		// The vertex still holds its shard's token: record the output and
		// status directly and pass the token on. The end-of-round barrier
		// publishes both to the scheduler.
		p.s.res.Outputs[p.idx] = val
		p.s.status[p.idx] = statusDone
		p.passToken()
		return alive
	}
	p.s.events <- event[T]{p: p, kind: evDone, val: val} // never blocks, see park
	return alive
}

// releaseAll resumes every active vertex and waits until each has yielded at
// Round or halted, updating statuses and recording outputs. Under Goroutines
// all vertices run concurrently between release and collection; under
// Lockstep each vertex is released only after the previous one yielded, so
// at most one vertex instance executes at any time.
func (s *sched[T]) releaseAll(active []*proc[T]) error {
	sequential := s.cfg.engine == Lockstep
	pending := 0
	for _, p := range active {
		s.status[p.idx] = statusRunning
		p.resume <- struct{}{}
		pending++
		if sequential {
			if err := s.collect(&pending); err != nil {
				return err
			}
		}
	}
	for pending > 0 {
		if err := s.collect(&pending); err != nil {
			return err
		}
	}
	return nil
}

// collect consumes one event, decrementing *pending.
func (s *sched[T]) collect(pending *int) error {
	e := <-s.events
	*pending--
	switch e.kind {
	case evYield:
		s.status[e.p.idx] = statusYielded
	case evDone:
		s.status[e.p.idx] = statusDone
		s.res.Outputs[e.p.idx] = e.val
	case evPanic:
		return fmt.Errorf("dist: vertex id %d panicked: %v", e.p.id, e.panic)
	}
	return nil
}

// deliver moves the staged outboxes of the vertices that called Round this
// round into their neighbors' inboxes, accounting costs as it goes.
// Messages addressed to a vertex that has already halted are dropped (but
// still accounted: the sender did transmit them). The previous round's
// inbox slots are cleared through the written list, so a round costs
// O(messages), not O(m), and steady-state rounds allocate nothing.
func (s *sched[T]) deliver(arrived []*proc[T]) {
	stats := &s.res.Stats
	wl := s.written[0]
	for _, sr := range wl {
		s.procs[sr.idx].inbox[sr.port] = nil
	}
	wl = wl[:0]
	for _, p := range arrived {
		out := s.outbox[p.idx]
		if out == nil {
			continue
		}
		s.outbox[p.idx] = nil
		nbrs := s.g.Neighbors(p.idx)
		rp := s.g.ReversePorts(p.idx)
		for port, msg := range out {
			if msg == nil {
				continue
			}
			stats.Bytes += len(msg)
			if len(msg) > stats.MaxMessageBytes {
				stats.MaxMessageBytes = len(msg)
			}
			u := nbrs[port]
			if s.status[u] != statusYielded {
				continue // halted this round or earlier: drop
			}
			q := s.procs[u]
			if q.inbox == nil {
				q.inbox = make([][]byte, s.g.Deg(int(u)))
			}
			q.inbox[rp[port]] = msg
			wl = append(wl, slotRef{idx: u, port: rp[port]})
		}
	}
	s.written[0] = wl
}
