package dist

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/graph"
)

// Run executes algo at every vertex of g under the synchronous LOCAL model
// and returns the per-vertex outputs with the measured cost. See the package
// documentation for the execution contract and the available Options.
//
// A panic inside any vertex instance aborts the run and is returned as an
// error carrying the vertex and the panic value.
func Run[T any](g *graph.Graph, algo func(Process) T, opts ...Option) (*Result[T], error) {
	cfg := config{engine: Goroutines, maxRounds: DefaultMaxRounds}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.engine != Goroutines && cfg.engine != Lockstep {
		return nil, fmt.Errorf("dist: unknown engine %v", cfg.engine)
	}
	res := &Result[T]{Outputs: make([]T, g.N())}
	if g.N() == 0 {
		return res, nil
	}
	s := newSched(g, cfg, algo, res)
	if err := s.run(); err != nil {
		return nil, err
	}
	return res, nil
}

// Vertex lifecycle within a round. Transitions are driven exclusively by the
// scheduler goroutine (statusRunning on release) and by the single event it
// receives per released vertex (statusYielded / statusDone), so status needs
// no lock: it is only ever read or written while the owning vertex goroutine
// is parked.
const (
	statusRunning = iota // released, executing user code
	statusYielded        // parked inside Round, outbox staged
	statusDone           // returned; output recorded
)

// event is the single message a released vertex goroutine reports back to
// the scheduler: it reached Round (yielded), returned (done), or panicked.
type event[T any] struct {
	p     *proc[T]
	kind  int // one of statusYielded, statusDone, or eventPanic
	val   T   // valid when kind == statusDone
	panic any // valid when kind == eventPanic
}

const eventPanic = -1

// proc is the per-vertex runtime state; it implements Process.
type proc[T any] struct {
	s      *sched[T]
	idx    int // vertex index in g
	id     int // distinct identifier g.ID(idx)
	status int // see lifecycle note above
	// exiting is set just before runtime.Goexit on an aborted run and read
	// only by this vertex's own goroutine: it stops user defers that call
	// Round during the unwind from touching the channels again.
	exiting bool
	rng     *rand.Rand
	outbox  [][]byte      // staged by Round, consumed by deliver
	inbox   [][]byte      // filled by deliver, consumed by Round
	resume  chan struct{} // scheduler -> vertex handoff
}

var _ Process = (*proc[int])(nil)

func (p *proc[T]) ID() int        { return p.id }
func (p *proc[T]) N() int         { return p.s.g.N() }
func (p *proc[T]) Deg() int       { return p.s.g.Deg(p.idx) }
func (p *proc[T]) MaxDegree() int { return p.s.delta }

func (p *proc[T]) NeighborID(port int) int {
	return p.s.g.ID(int(p.s.g.Neighbors(p.idx)[port]))
}

func (p *proc[T]) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(VertexSeed(p.s.cfg.seed, p.id)))
	}
	return p.rng
}

func (p *proc[T]) Round(out [][]byte) [][]byte {
	deg := p.Deg()
	if out != nil && len(out) != deg {
		panic(fmt.Sprintf("dist: vertex id %d sent %d messages on %d ports", p.id, len(out), deg))
	}
	p.outbox = out
	p.park(event[T]{p: p, kind: statusYielded})
	in := p.inbox
	p.inbox = nil
	return in
}

func (p *proc[T]) Broadcast(msg []byte) [][]byte {
	if msg == nil {
		return p.Round(nil)
	}
	out := make([][]byte, p.Deg())
	for i := range out {
		out[i] = msg
	}
	return p.Round(out)
}

// park reports e to the scheduler and blocks until the scheduler resumes
// this vertex. If the run aborts while parked, the goroutine unwinds via
// runtime.Goexit (running user defers, reporting nothing further).
//
// The event send is a plain send on purpose: events has capacity n and a
// live, non-exiting vertex has at most one event in flight (it blocks on
// resume right after sending), so the send can never block — even after an
// abort, when the scheduler has stopped draining. The exiting guard keeps
// that capacity argument true when user defers call Round during the
// Goexit unwind of an aborted run.
func (p *proc[T]) park(e event[T]) {
	if p.exiting {
		runtime.Goexit()
	}
	p.s.events <- e
	select {
	case <-p.resume:
	case <-p.s.aborted:
		p.exiting = true
		runtime.Goexit()
	}
}

// sched drives one run; both engines share it and differ only in whether
// releases within a round overlap (Goroutines) or chain (Lockstep).
type sched[T any] struct {
	g     *graph.Graph
	cfg   config
	algo  func(Process) T
	res   *Result[T]
	delta int

	// revPort[v][i] is the port that vertex v occupies at its i-th
	// neighbor, precomputed so delivery is O(1) per message.
	revPort [][]int32

	procs   []*proc[T]
	events  chan event[T] // buffered n: a vertex send never blocks
	aborted chan struct{} // closed on abort; releases every parked vertex
}

func newSched[T any](g *graph.Graph, cfg config, algo func(Process) T, res *Result[T]) *sched[T] {
	n := g.N()
	s := &sched[T]{
		g:       g,
		cfg:     cfg,
		algo:    algo,
		res:     res,
		delta:   g.MaxDegree(),
		revPort: make([][]int32, n),
		procs:   make([]*proc[T], n),
		events:  make(chan event[T], n),
		aborted: make(chan struct{}),
	}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		rp := make([]int32, len(nbrs))
		for i, u := range nbrs {
			back := g.Neighbors(int(u))
			j := sort.Search(len(back), func(k int) bool { return back[k] >= int32(v) })
			rp[i] = int32(j) // back[j] == v: adjacency is symmetric and sorted
		}
		s.revPort[v] = rp
		s.procs[v] = &proc[T]{s: s, idx: v, id: g.ID(v), resume: make(chan struct{})}
	}
	return s
}

// run spawns the vertex goroutines and drives rounds until every vertex has
// halted, a vertex panics, or the round cap trips.
func (s *sched[T]) run() (err error) {
	defer close(s.aborted) // release anything still parked, whatever the exit path
	for _, p := range s.procs {
		go s.vertexMain(p)
	}
	// active is filtered in place each round, so it must not alias s.procs
	// (deliver indexes s.procs by vertex).
	active := append([]*proc[T](nil), s.procs...)
	for len(active) > 0 {
		if perr := s.releaseAll(active); perr != nil {
			return perr
		}
		arrived := active[:0]
		for _, p := range active {
			if p.status == statusYielded {
				arrived = append(arrived, p)
			}
		}
		if len(arrived) == 0 {
			return nil
		}
		s.res.Stats.Rounds++
		if s.cfg.maxRounds > 0 && s.res.Stats.Rounds > s.cfg.maxRounds {
			return fmt.Errorf("dist: round cap %d exceeded after %v; raise it with WithMaxRounds", s.cfg.maxRounds, s.res.Stats)
		}
		s.deliver(arrived)
		active = arrived
	}
	return nil
}

// vertexMain is the body of one vertex goroutine: wait for the first
// release, run the algorithm, report the return value. A panic anywhere in
// the algorithm is reported instead; runtime.Goexit from an aborted park
// skips both reports (recover returns nil during Goexit).
func (s *sched[T]) vertexMain(p *proc[T]) {
	defer func() {
		if r := recover(); r != nil && !p.exiting {
			s.events <- event[T]{p: p, kind: eventPanic, panic: r} // never blocks, see park
		}
	}()
	select {
	case <-p.resume:
	case <-s.aborted:
		p.exiting = true
		runtime.Goexit()
	}
	val := s.algo(p)
	s.events <- event[T]{p: p, kind: statusDone, val: val} // never blocks, see park
}

// releaseAll resumes every active vertex and waits until each has yielded at
// Round or halted, updating statuses and recording outputs. Under Goroutines
// all vertices run concurrently between release and collection; under
// Lockstep each vertex is released only after the previous one yielded, so
// at most one vertex instance executes at any time.
func (s *sched[T]) releaseAll(active []*proc[T]) error {
	sequential := s.cfg.engine == Lockstep
	pending := 0
	for _, p := range active {
		p.status = statusRunning
		p.resume <- struct{}{}
		pending++
		if sequential {
			if err := s.collect(&pending); err != nil {
				return err
			}
		}
	}
	for pending > 0 {
		if err := s.collect(&pending); err != nil {
			return err
		}
	}
	return nil
}

// collect consumes one event, decrementing *pending.
func (s *sched[T]) collect(pending *int) error {
	e := <-s.events
	*pending--
	switch e.kind {
	case statusYielded:
		e.p.status = statusYielded
	case statusDone:
		e.p.status = statusDone
		s.res.Outputs[e.p.idx] = e.val
	case eventPanic:
		return fmt.Errorf("dist: vertex id %d panicked: %v", e.p.id, e.panic)
	}
	return nil
}

// deliver moves the staged outboxes of the vertices that called Round this
// round into their neighbors' inboxes, accounting costs as it goes.
// Messages addressed to a vertex that has already halted are dropped (but
// still accounted: the sender did transmit them). Every arrived vertex ends
// up with a non-nil inbox of length Deg so Round's return is indexable.
func (s *sched[T]) deliver(arrived []*proc[T]) {
	stats := &s.res.Stats
	for _, p := range arrived {
		out := p.outbox
		if out == nil {
			continue
		}
		p.outbox = nil
		nbrs := s.g.Neighbors(p.idx)
		rp := s.revPort[p.idx]
		for port, msg := range out {
			if msg == nil {
				continue
			}
			stats.Bytes += len(msg)
			if len(msg) > stats.MaxMessageBytes {
				stats.MaxMessageBytes = len(msg)
			}
			q := s.procs[nbrs[port]]
			if q.status != statusYielded {
				continue // halted this round or earlier: drop
			}
			if q.inbox == nil {
				q.inbox = make([][]byte, q.Deg())
			}
			q.inbox[rp[port]] = msg
		}
	}
	for _, p := range arrived {
		if p.inbox == nil {
			p.inbox = make([][]byte, p.Deg())
		}
	}
}
