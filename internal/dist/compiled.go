package dist

import (
	"fmt"
	"iter"
	"math/rand"

	"repro/internal/graph"
)

// This file is the Compiled engine: whole-run execution of an algorithm as
// tight passes over the graph's flat CSR arrays, with no goroutines and no
// channels. An algorithm opts in by bundling a CompiledAlgo next to its
// per-vertex function (Algo); RunAlgo dispatches to the compiled form when
// the Compiled engine is selected and the bundle carries one, and to the
// ordinary scheduler otherwise. Runner.Run degrades a Compiled request for a
// plain per-vertex function to Lockstep, so the engine is always safe to ask
// for.
//
// The contract a CompiledAlgo must honor is strict byte-equality: for every
// graph and seed its Outputs and Stats must equal those of the per-vertex
// form under every other engine — the same colors, the same Rounds,
// Activations, Bytes and MaxMessageBytes, the same error text on a tripped
// round cap. Tally exists so compiled forms account rounds and messages in
// exactly the order and with exactly the cap semantics of the scheduler.

// CompiledEnv carries the run configuration a CompiledAlgo sees: the options
// of the run that are not engine-scheduling details.
type CompiledEnv struct {
	// Seed is the run seed (WithSeed); per-vertex streams derive from it via
	// VertexSeed, exactly as Process.Rand does.
	Seed int64
	// MaxRounds is the round cap (WithMaxRounds semantics: <= 0 means
	// uncapped). Compiled forms enforce it through Tally.StartRound.
	MaxRounds int
}

// NewTally returns a Tally enforcing this environment's round cap.
func (e CompiledEnv) NewTally() *Tally { return &Tally{maxRounds: e.MaxRounds} }

// CompiledAlgo is the whole-run form of an algorithm: it computes the output
// of every vertex of g in one call, writing outputs[v] for each vertex index
// v, and returns Stats byte-identical to what the per-vertex form of the
// same algorithm produces under the other engines. outputs has length g.N()
// > 0 (the runtime short-circuits empty graphs before dispatching).
type CompiledAlgo[T any] interface {
	RunCompiled(g *graph.Graph, env CompiledEnv, outputs []T) (Stats, error)
}

// Algo bundles the two forms of an algorithm. Vertex is required; Compiled
// is optional and is used only when the Compiled engine is selected.
type Algo[T any] struct {
	// Vertex is the per-vertex form, as accepted by Run.
	Vertex func(Process) T
	// Compiled, when non-nil, is the flat whole-run form the Compiled engine
	// executes. It must be byte-equivalent to Vertex (Outputs and Stats).
	Compiled CompiledAlgo[T]
}

// Tally accumulates Stats with the scheduler's exact accounting order, so a
// compiled form cannot drift from the engines it must stay byte-identical
// to. Per round: StartRound first (Rounds, Activations, then the cap check —
// a capped round's messages are never counted), then one Message call per
// message composed in that round, halted destinations included.
type Tally struct {
	// Stats is the accumulated accounting; read it after the run.
	Stats     Stats
	maxRounds int
}

// StartRound accounts the start of one synchronous round in which arrived
// vertices reached Round, and errors if the round cap is now exceeded — with
// the same error text and the same partially-accumulated Stats the scheduler
// reports.
func (t *Tally) StartRound(arrived int) error {
	t.Stats.Rounds++
	t.Stats.Activations += arrived
	if t.maxRounds > 0 && t.Stats.Rounds > t.maxRounds {
		return roundCapErr(t.maxRounds, t.Stats)
	}
	return nil
}

// Message accounts one composed message of the given size. Call it for every
// message a vertex stages, whether or not the destination still listens —
// the scheduler charges dropped messages too.
func (t *Tally) Message(size int) {
	t.Stats.Bytes += size
	if size > t.Stats.MaxMessageBytes {
		t.Stats.MaxMessageBytes = size
	}
}

// Messages accounts count identical messages of the given size (a
// Broadcast). count == 0 is a no-op.
func (t *Tally) Messages(count, size int) {
	if count <= 0 {
		return
	}
	t.Stats.Bytes += count * size
	if size > t.Stats.MaxMessageBytes {
		t.Stats.MaxMessageBytes = size
	}
}

// roundCapErr is the shared round-cap error; the scheduler and every Tally
// produce byte-identical text through it.
func roundCapErr(maxRounds int, s Stats) error {
	return fmt.Errorf("dist: round cap %d exceeded after %v; raise it with WithMaxRounds", maxRounds, s)
}

// RunAlgo executes a bundled algorithm at every vertex of g: under the
// Compiled engine (and a non-nil a.Compiled) as a flat whole-run pass,
// otherwise exactly as Run(g, a.Vertex, opts...). See Run for the execution
// contract.
func RunAlgo[T any](g *graph.Graph, a Algo[T], opts ...Option) (*Result[T], error) {
	cfg := config{engine: Goroutines, maxRounds: DefaultMaxRounds}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.engine == Compiled && a.Compiled != nil {
		return runCompiled(g, a.Compiled, cfg)
	}
	if a.Vertex == nil {
		return nil, fmt.Errorf("dist: algo has no Vertex form")
	}
	return Run(g, a.Vertex, opts...)
}

// RunAlgo executes one bundled-algorithm run on this Runner; see RunAlgo
// (package function) for semantics. Compiled runs touch none of the pooled
// goroutine state, so mixing compiled and scheduled runs on one Runner is
// free.
func (r *Runner[T]) RunAlgo(a Algo[T], opts ...Option) (*Result[T], error) {
	cfg := config{engine: Goroutines, maxRounds: DefaultMaxRounds}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.engine == Compiled && a.Compiled != nil {
		return runCompiled(r.g, a.Compiled, cfg)
	}
	if a.Vertex == nil {
		return nil, fmt.Errorf("dist: algo has no Vertex form")
	}
	return r.Run(a.Vertex, opts...)
}

// RunAlgo acquires a Runner and executes one bundled-algorithm run on it;
// see RunAlgo (package function) for semantics.
func (p *Pool[T]) RunAlgo(a Algo[T], opts ...Option) (*Result[T], error) {
	r := p.acquire()
	res, err := r.RunAlgo(a, opts...)
	p.release(r)
	return res, err
}

// runCompiled is the Compiled engine's dispatch: one whole-run pass.
func runCompiled[T any](g *graph.Graph, ca CompiledAlgo[T], cfg config) (*Result[T], error) {
	res := &Result[T]{Outputs: make([]T, g.N())}
	if g.N() == 0 {
		return res, nil
	}
	env := CompiledEnv{Seed: cfg.seed, MaxRounds: cfg.maxRounds}
	stats, err := ca.RunCompiled(g, env, res.Outputs)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// CompileProcess adapts any per-vertex algorithm into a CompiledAlgo: the
// vertex instances run as coroutines (iter.Pull) resumed sequentially in
// vertex order, and rounds are delivered by a single scatter pass over the
// CSR reverse-port arrays into flat per-vertex inbox slices — no goroutines,
// no channels, no barrier. Outputs and Stats are byte-identical to the
// scheduler by construction: the same user code runs against the same
// delivery, accounting, and abort semantics.
//
// It is the compiled form of choice for blocking-style pipelines (the §5
// legal edge coloring, say) where hand-flattening the control flow would
// duplicate the algorithm; hand-written flat passes (package baseline,
// package dynamic) remain worthwhile where the round structure is simple
// enough to close over.
func CompileProcess[T any](f func(Process) T) CompiledAlgo[T] {
	return procInterp[T]{f: f}
}

// Interpret bundles a per-vertex body with its CompileProcess form: the one
// definition runs on all four engines, the Compiled engine interpreting it
// via coroutines. Algorithms with a hand-flattened compiled pass should
// build their Algo explicitly instead.
func Interpret[T any](f func(Process) T) Algo[T] {
	return Algo[T]{Vertex: f, Compiled: CompileProcess(f)}
}

type procInterp[T any] struct {
	f func(Process) T
}

// compiledAbort is the sentinel panic that unwinds a coroutine stopped
// mid-run (abort after a vertex panic or a tripped round cap); the coroutine
// wrapper recovers it, so user defers run exactly as they do during the
// scheduler's Goexit unwind.
type compiledAbort struct{}

// cvert is the per-vertex interpreter state; it implements Process for the
// coroutine running the user function.
type cvert[T any] struct {
	run      *crun[T]
	idx      int
	id       int
	next     func() (struct{}, bool)
	stop     func()
	yield    func(struct{}) bool
	out      [][]byte // staged outbox (nil = sent nothing this round)
	inbox    [][]byte // pooled round inbox, same reuse contract as proc
	rng      *rand.Rand
	bcast    [][]byte // Broadcast scratch outbox + memoized message
	bcastMsg []byte
	echo     [][]byte // snapshot scratch for the echo/forward pattern
	exiting  bool     // stopped: user defers calling Round unwind again
	val      T
	pan      any
	panicked bool
}

type crun[T any] struct {
	g      *graph.Graph
	seed   int64
	delta  int
	status []uint8
	verts  []*cvert[T]
}

var _ Process = (*cvert[int])(nil)

func (p *cvert[T]) ID() int        { return p.id }
func (p *cvert[T]) N() int         { return p.run.g.N() }
func (p *cvert[T]) Deg() int       { return p.run.g.Deg(p.idx) }
func (p *cvert[T]) MaxDegree() int { return p.run.delta }

func (p *cvert[T]) NeighborID(port int) int {
	g := p.run.g
	return g.ID(int(g.Neighbors(p.idx)[port]))
}

func (p *cvert[T]) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(VertexSeed(p.run.seed, p.id)))
	}
	return p.rng
}

func (p *cvert[T]) Round(out [][]byte) [][]byte {
	if p.exiting {
		panic(compiledAbort{})
	}
	deg := p.Deg()
	if out != nil && len(out) != deg {
		panic(fmt.Sprintf("dist: vertex id %d sent %d messages on %d ports", p.id, len(out), deg))
	}
	if len(out) > 0 && p.inbox != nil && &out[0] == &p.inbox[0] {
		// Echo pattern: the caller forwards the slice Round returned, whose
		// slots delivery recycles. Snapshot the headers, as proc.Round does.
		if p.echo == nil {
			p.echo = make([][]byte, deg)
		}
		copy(p.echo, out)
		out = p.echo
	}
	p.out = out
	if !p.yield(struct{}{}) {
		// The interpreter stopped this coroutine: unwind, running user
		// defers on the way out (any Round they call hits the exiting guard).
		p.exiting = true
		panic(compiledAbort{})
	}
	if p.inbox == nil {
		p.inbox = make([][]byte, deg)
	}
	return p.inbox
}

func (p *cvert[T]) Broadcast(msg []byte) [][]byte {
	if msg == nil {
		return p.Round(nil)
	}
	if p.bcast == nil {
		p.bcast = make([][]byte, p.Deg())
	}
	out := p.bcast
	if !sameBuffer(msg, p.bcastMsg) {
		for i := range out {
			out[i] = msg
		}
		p.bcastMsg = msg
	}
	return p.Round(out)
}

// RunCompiled drives the coroutine generation round by round: sequential
// release in vertex order (Lockstep's order), then one scatter delivery over
// the CSR arrays with the scheduler's exact accounting.
func (pi procInterp[T]) RunCompiled(g *graph.Graph, env CompiledEnv, outputs []T) (Stats, error) {
	n := g.N()
	cr := &crun[T]{g: g, seed: env.Seed, delta: g.MaxDegree(), status: make([]uint8, n), verts: make([]*cvert[T], n)}
	for v := 0; v < n; v++ {
		p := &cvert[T]{run: cr, idx: v, id: g.ID(v)}
		p.next, p.stop = iter.Pull(func(yield func(struct{}) bool) {
			p.yield = yield
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(compiledAbort); ok {
						return
					}
					p.panicked, p.pan = true, r
				}
			}()
			p.val = pi.f(p)
		})
		cr.verts[v] = p
	}
	t := env.NewTally()
	abort := func() {
		// Unwind every coroutine: finished ones are no-ops, parked ones run
		// their user defers, never-started ones never run.
		for _, p := range cr.verts {
			p.stop()
		}
	}
	var written []slotRef
	active := append([]*cvert[T](nil), cr.verts...)
	for len(active) > 0 {
		for _, p := range active {
			cr.status[p.idx] = statusRunning
			if _, yielded := p.next(); yielded {
				cr.status[p.idx] = statusYielded
				continue
			}
			if p.panicked {
				err := fmt.Errorf("dist: vertex id %d panicked: %v", p.id, p.pan)
				abort()
				return t.Stats, err
			}
			cr.status[p.idx] = statusDone
			outputs[p.idx] = p.val
		}
		arrived := active[:0]
		for _, p := range active {
			if cr.status[p.idx] == statusYielded {
				arrived = append(arrived, p)
			}
		}
		if len(arrived) == 0 {
			return t.Stats, nil
		}
		if err := t.StartRound(len(arrived)); err != nil {
			abort()
			return t.Stats, err
		}
		for _, sr := range written {
			cr.verts[sr.idx].inbox[sr.port] = nil
		}
		written = written[:0]
		for _, p := range arrived {
			out := p.out
			if out == nil {
				continue
			}
			p.out = nil
			nbrs := g.Neighbors(p.idx)
			rp := g.ReversePorts(p.idx)
			for port, msg := range out {
				if msg == nil {
					continue
				}
				t.Message(len(msg))
				u := nbrs[port]
				if cr.status[u] != statusYielded {
					continue // halted this round or earlier: drop
				}
				q := cr.verts[u]
				if q.inbox == nil {
					q.inbox = make([][]byte, g.Deg(int(u)))
				}
				q.inbox[rp[port]] = msg
				written = append(written, slotRef{idx: u, port: rp[port]})
			}
		}
		active = arrived
	}
	return t.Stats, nil
}
