// Package dist is the synchronous message-passing runtime underlying every
// algorithm in this repository: a faithful executable model of the LOCAL
// setting the paper works in (Barenboim & Elkin, PODC 2011, §2).
//
// An algorithm is an ordinary Go function of type func(Process) T. Run
// executes one logical instance of it per vertex of a graph.Graph; the
// instances communicate only through Process.Round, which implements the
// synchronous round of the LOCAL model: every still-running vertex hands the
// runtime one outgoing message per incident edge (or nil), blocks, and
// resumes with the messages its neighbors addressed to it in the same round.
// A vertex halts by returning from the function; its return value becomes
// its entry in Result.Outputs and any message later sent to it is dropped.
//
// Ports. A vertex of degree d communicates over ports 0..d-1, one per
// incident edge, ordered by increasing neighbor vertex index — exactly
// graph.Neighbors. Port i of vertex v and the port that v occupies in the
// adjacency list of its i-th neighbor name the same edge; the runtime
// performs that translation during delivery, so algorithms never see the
// remote port numbering.
//
// Engines. Three interchangeable schedulers execute the same contract and
// are selected with WithEngine:
//
//   - Goroutines (default) spawns one goroutine per vertex, synchronized by
//     a round barrier — the "one goroutine per vertex" simulator promised by
//     the package documentation. Vertices genuinely run concurrently between
//     barriers, so `go test -race` exercises real message-passing isolation.
//   - Lockstep resumes vertices one at a time, in vertex order, within each
//     round. No two vertex instances ever run simultaneously, which removes
//     all barrier contention and touches memory in index order.
//   - Sharded partitions vertices into contiguous shards (GOMAXPROCS by
//     default, WithShards to override) with one logical worker per shard:
//     releases chain through each shard in index order via direct
//     vertex-to-vertex token handoff, message accounting is tallied
//     sender-side per shard and merged in shard index order, and delivery
//     is destination-sharded (each worker gathers its own vertices' inboxes
//     in parallel). It is the engine for large or repeated runs.
//
// For a fixed graph and seed all engines produce byte-identical
// Result.Outputs and Result.Stats: scheduling differs, the computation does
// not. TestEnginesAgree pins this.
//
// Reuse. Run rebuilds the per-vertex runtime state from scratch on every
// call. NewRunner amortizes that state — procs, channels, pooled round
// inboxes — across repeated runs over the same graph, so a steady-state run
// allocates only its Result; experiment grids that execute thousands of
// runs should hold one Runner per graph.
//
// Determinism. WithSeed fixes the per-vertex PRNG streams returned by
// Process.Rand; each vertex derives its stream from (seed, identifier) with
// a splitmix64 mix, so streams are distinct across vertices yet reproducible
// across runs and engines. The default seed is 0 — runs are deterministic
// unless the caller opts into varying the seed.
//
// Accounting. Stats reports the measured cost of a run in the units the
// paper states its bounds in: Rounds is the number of synchronous rounds
// executed (a round in which every remaining vertex halts without calling
// Round does not count), Bytes is the total size of all messages sent, and
// MaxMessageBytes is the largest single message — the quantity behind the
// O(log n) / O(p·log Δ) message-size claims of §1.1 and §5.
//
// See DESIGN.md for the full runtime contract and the package inventory of
// the repository.
package dist

import (
	"fmt"
	"math/rand"
)

// Process is the handle through which a vertex algorithm observes its
// position in the network and communicates. It is the entire API available
// to an algorithm; everything a vertex knows beyond its initial local state
// arrives through Round.
type Process interface {
	// ID returns this vertex's distinct identifier (graph.Graph.ID): a
	// value in {1..n} by default, permutable via graph.SetIDs.
	ID() int
	// N returns the size of the identifier space, i.e. the number of
	// vertices of the underlying graph for runs started by Run. (Virtual
	// networks, such as the Lemma 5.2 simulation in package lgsim, report
	// the size of their virtual identifier space instead.)
	N() int
	// Deg returns the number of incident edges (= ports).
	Deg() int
	// MaxDegree returns Δ of the underlying graph, global knowledge the
	// paper's algorithms assume (§2).
	MaxDegree() int
	// NeighborID returns the identifier of the neighbor on the given port.
	// Ports number 0..Deg()-1 in increasing neighbor-index order.
	NeighborID(port int) int
	// Round performs one synchronous communication round. out is either nil
	// (send nothing) or a slice of exactly Deg() messages, out[port] being
	// the message for that port (nil = no message on that port). Round
	// blocks until every other still-running vertex has reached its own
	// Round call or halted, then returns the received messages: in[port] is
	// the message the neighbor on that port addressed to this vertex, nil
	// if it sent none (or has halted). The returned slice always has length
	// Deg(). Passing a non-nil out of the wrong length panics, which Run
	// reports as an error.
	//
	// Message buffers are handed over by reference: a sender must not
	// mutate a buffer after passing it to Round (wire.Writer's contract),
	// and a receiver must treat inbound buffers as read-only — a Broadcast
	// delivers the same underlying bytes to every neighbor. The returned
	// slice is a pooled buffer: it is read-only too (writing into its
	// slots can resurface the written values as phantom messages in later
	// rounds, since delivery clears only the slots it filled), and it is
	// valid only until this vertex's next Round call, after which the
	// runtime recycles it. Passing the returned slice itself back as the
	// next out is supported — the runtime snapshots it before recycling.
	Round(out [][]byte) [][]byte
	// Broadcast sends msg on every port and returns the received messages;
	// Broadcast(nil) is Round(nil) — a round in which nothing is sent.
	// Each of the Deg() copies is accounted separately in Stats. The
	// outbox Broadcast stages is a per-vertex scratch slice that is
	// invalidated at the next Round or Broadcast call.
	Broadcast(msg []byte) [][]byte
	// Rand returns this vertex's private deterministic PRNG stream, derived
	// from the run seed (WithSeed) and the vertex identifier. Streams are
	// reproducible across runs and engines and distinct across vertices.
	Rand() *rand.Rand
}

// Stats is the measured cost of a run.
type Stats struct {
	// Rounds is the number of synchronous rounds executed: rounds in which
	// at least one vertex called Round. The implicit final "round" in which
	// every remaining vertex halts is not counted.
	Rounds int `json:"rounds"`
	// Bytes is the total size of all messages sent, including messages
	// dropped because their destination had already halted.
	Bytes int `json:"bytes"`
	// MaxMessageBytes is the size of the largest single message sent.
	MaxMessageBytes int `json:"maxMessageBytes"`
	// Activations is the total number of vertex activations that reached
	// Round: the sum over rounds of the vertices still participating. It is
	// the sequential work measure of a run — a full run costs on the order
	// of n·Rounds activations, while a repair confined to a k-vertex
	// subgraph (package dynamic) costs O(k·Rounds) no matter how large the
	// surrounding graph is. Engine-independent, like every Stats field.
	Activations int `json:"activations"`
}

// String renders the stats compactly, e.g.
// "rounds=12 bytes=4096 maxMsg=9B acts=96".
func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d bytes=%d maxMsg=%dB acts=%d", s.Rounds, s.Bytes, s.MaxMessageBytes, s.Activations)
}

// Result carries the per-vertex outputs and the measured cost of a run.
type Result[T any] struct {
	// Outputs[v] is the return value of the algorithm at vertex index v
	// (graph indexing, not identifiers).
	Outputs []T
	// Stats is the cost accounting of the run.
	Stats Stats
}

// Engine selects the scheduler that executes a run. All engines implement
// the same synchronous contract and produce identical Outputs and Stats for
// a fixed seed; see the package documentation.
type Engine int

const (
	// Goroutines runs one goroutine per vertex with a barrier per round:
	// the faithful concurrent LOCAL-model execution. Default.
	Goroutines Engine = iota
	// Lockstep resumes vertices sequentially (in vertex order) within each
	// round: no concurrency, no contention, cache-friendly on large graphs.
	Lockstep
	// Sharded partitions vertices into contiguous shards with one logical
	// worker each: per-shard token-chain releases, sender-side per-shard
	// accounting merged in index order, and destination-sharded parallel
	// gather delivery. The fastest engine for large or repeated runs.
	Sharded
	// Compiled executes algorithms that carry a CompiledAlgo form (see Algo
	// and RunAlgo) as tight whole-graph passes over the flat CSR arrays — no
	// goroutines, no channels — and degrades to Lockstep for plain per-vertex
	// functions. Outputs and Stats are byte-identical to the other engines;
	// only wall-clock changes.
	Compiled
)

// String implements fmt.Stringer for diagnostics.
func (e Engine) String() string {
	switch e {
	case Goroutines:
		return "goroutines"
	case Lockstep:
		return "lockstep"
	case Sharded:
		return "sharded"
	case Compiled:
		return "compiled"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine parses an engine name as printed by Engine.String — the
// accepted values of the CLIs' -engine flags.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "goroutines":
		return Goroutines, nil
	case "lockstep":
		return Lockstep, nil
	case "sharded":
		return Sharded, nil
	case "compiled":
		return Compiled, nil
	default:
		return 0, fmt.Errorf("dist: unknown engine %q (want goroutines, lockstep, sharded, or compiled)", s)
	}
}

// DefaultMaxRounds is the round cap applied when WithMaxRounds is not given:
// generous enough for every algorithm in this repository (the paper's bounds
// are polylogarithmic or O(Δ)-ish), small enough to turn an accidentally
// non-terminating algorithm into an error instead of a hang.
const DefaultMaxRounds = 1 << 20

type config struct {
	seed      int64
	engine    Engine
	maxRounds int
	shards    int
}

// Option configures a run.
type Option func(*config)

// WithSeed fixes the seed from which all per-vertex PRNG streams are
// derived. The default seed is 0; two runs with the same graph, algorithm,
// seed and any engine produce identical Outputs and Stats.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithEngine selects the scheduler (Goroutines by default).
func WithEngine(e Engine) Option {
	return func(c *config) { c.engine = e }
}

// WithMaxRounds caps the number of rounds a run may execute; exceeding the
// cap aborts the run with an error. r <= 0 removes the cap entirely. The
// default cap is DefaultMaxRounds.
func WithMaxRounds(r int) Option {
	return func(c *config) { c.maxRounds = r }
}

// WithShards fixes the shard count of the Sharded engine (clamped to the
// vertex count; n <= 0 restores the GOMAXPROCS default). Outputs and Stats
// do not depend on the shard count — the knob exists for tuning and for
// tests that want to exercise multi-shard interleavings on any machine.
// The other engines ignore it.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// splitmix64 is the finalizer of the splitmix64 generator; used to derive
// per-vertex seeds that are well spread even for consecutive identifiers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// VertexSeed derives the PRNG seed of the vertex with the given identifier
// from a run seed. It is exported for virtual networks that implement
// Process themselves (package lgsim) so their per-vertex streams use the
// same derivation as the native runtime.
func VertexSeed(runSeed int64, id int) int64 {
	return int64(splitmix64(splitmix64(uint64(runSeed)) ^ splitmix64(uint64(id))))
}

// SeedOf returns the run seed the given options select (0, the WithSeed
// default, if none). Virtual networks that layer on top of Run (package
// lgsim) use it to seed their virtual vertices consistently with the
// options they forward.
func SeedOf(opts ...Option) int64 {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c.seed
}
