package dist

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// TestCompiledFallsBackToLockstep: a plain per-vertex function (no compiled
// form) under the Compiled engine runs as Lockstep — same outputs, same
// stats, no error.
func TestCompiledFallsBackToLockstep(t *testing.T) {
	g := graph.GNM(60, 200, 4)
	want, err := Run(g, chatty, WithSeed(1), WithEngine(Lockstep))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, chatty, WithSeed(1), WithEngine(Compiled))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) || got.Stats != want.Stats {
		t.Fatalf("compiled fallback diverged from lockstep: %v vs %v", got.Stats, want.Stats)
	}
	// Same through RunAlgo with a nil Compiled field.
	got2, err := RunAlgo(g, Algo[[]int]{Vertex: chatty}, WithSeed(1), WithEngine(Compiled))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.Outputs, want.Outputs) || got2.Stats != want.Stats {
		t.Fatalf("RunAlgo fallback diverged from lockstep")
	}
}

// TestRunAlgoRequiresVertexForm: a bundle with neither form the selected
// engine can execute is an error, not a panic.
func TestRunAlgoRequiresVertexForm(t *testing.T) {
	if _, err := RunAlgo(graph.Path(2), Algo[int]{}); err == nil || !strings.Contains(err.Error(), "Vertex") {
		t.Fatalf("err = %v, want missing-Vertex error", err)
	}
	r := NewRunner[int](graph.Path(2))
	defer r.Close()
	if _, err := r.RunAlgo(Algo[int]{}); err == nil || !strings.Contains(err.Error(), "Vertex") {
		t.Fatalf("runner err = %v, want missing-Vertex error", err)
	}
}

// TestCompiledPanicPropagates: a panic inside a coroutine vertex aborts the
// compiled run with the scheduler's error text, and user defers still run.
func TestCompiledPanicPropagates(t *testing.T) {
	g := graph.Cycle(6)
	defersRan := 0
	algo := func(v Process) int {
		defer func() { defersRan++ }()
		if v.ID() == 4 {
			panic("kaboom")
		}
		for {
			v.Round(nil)
		}
	}
	_, err := RunAlgo(g, Algo[int]{Vertex: algo, Compiled: CompileProcess(algo)}, WithEngine(Compiled))
	if err == nil || !strings.Contains(err.Error(), "vertex id 4 panicked: kaboom") {
		t.Fatalf("err = %v, want vertex panic", err)
	}
	// Lockstep release order: vertices 1..3 yielded (and unwind on abort),
	// vertex 4 panicked mid-release, vertices 5..6 were never released and —
	// exactly like the scheduler's parked goroutines — never start.
	if defersRan != 4 {
		t.Fatalf("defersRan = %d, want 4 (released coroutines unwound, unreleased never started)", defersRan)
	}
}

// TestCompiledAbortWithRoundInDefer: user defers that call Round — both on
// the panicking vertex (its defer yields mid-unwind before the panic
// surfaces) and on aborted vertices (their defers hit the exiting guard) —
// behave exactly as under the schedulers.
func TestCompiledAbortWithRoundInDefer(t *testing.T) {
	g := graph.Complete(8)
	algo := func(v Process) int {
		defer func() {
			for i := 0; i < 3; i++ {
				v.Round(nil) // runs during the unwind on aborted vertices
			}
		}()
		if v.ID() == 3 {
			panic("abort me")
		}
		for {
			v.Round(nil)
		}
	}
	_, err := RunAlgo(g, Algo[int]{Vertex: algo, Compiled: CompileProcess(algo)}, WithEngine(Compiled))
	if err == nil || !strings.Contains(err.Error(), "abort me") {
		t.Fatalf("err = %v, want original panic", err)
	}
}

// TestCompiledWrongOutboxLength: the interpreter rejects a wrong-length
// outbox with the scheduler's message.
func TestCompiledWrongOutboxLength(t *testing.T) {
	algo := func(v Process) int {
		v.Round(make([][]byte, v.Deg()+1))
		return 0
	}
	_, err := RunAlgo(graph.Path(3), Algo[int]{Vertex: algo, Compiled: CompileProcess(algo)}, WithEngine(Compiled))
	if err == nil || !strings.Contains(err.Error(), "ports") {
		t.Fatalf("err = %v, want wrong-length panic error", err)
	}
}

// TestCompiledRoundCap: the compiled interpreter trips the round cap with
// the same error text and partial stats as the scheduled engines.
func TestCompiledRoundCap(t *testing.T) {
	g := graph.Cycle(5)
	forever := func(v Process) int {
		for {
			v.Broadcast([]byte{1})
		}
	}
	_, werr := Run(g, forever, WithEngine(Lockstep), WithMaxRounds(17))
	_, gerr := RunAlgo(g, Algo[int]{Vertex: forever, Compiled: CompileProcess(forever)},
		WithEngine(Compiled), WithMaxRounds(17))
	if gerr == nil || werr == nil || gerr.Error() != werr.Error() {
		t.Fatalf("cap errors differ:\ncompiled: %v\nlockstep: %v", gerr, werr)
	}
	if !strings.Contains(gerr.Error(), "round cap 17") {
		t.Fatalf("err = %v, want round cap 17", gerr)
	}
}

// TestCompiledEcho: forwarding the inbox slice back as the outbox (the echo
// pattern) works under the interpreter exactly as under the schedulers.
func TestCompiledEcho(t *testing.T) {
	g := graph.Path(3)
	algo := func(v Process) int {
		in := v.Broadcast([]byte{byte(v.ID())})
		in = v.Round(in) // echo: forward what was received
		sum := 0
		for _, b := range in {
			if b != nil {
				sum += int(b[0])
			}
		}
		return sum
	}
	want, err := Run(g, algo, WithEngine(Lockstep))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAlgo(g, Algo[int]{Vertex: algo, Compiled: CompileProcess(algo)}, WithEngine(Compiled))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) || got.Stats != want.Stats {
		t.Fatalf("echo diverged: %v/%v vs %v/%v", got.Outputs, got.Stats, want.Outputs, want.Stats)
	}
}

// TestCompiledRandStreams: Process.Rand under the interpreter derives the
// same per-vertex streams as the schedulers.
func TestCompiledRandStreams(t *testing.T) {
	g := graph.Star(9)
	algo := func(v Process) int { return v.Rand().Intn(1 << 30) }
	want, err := Run(g, algo, WithSeed(42), WithEngine(Goroutines))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAlgo(g, Algo[int]{Vertex: algo, Compiled: CompileProcess(algo)},
		WithSeed(42), WithEngine(Compiled))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatalf("rand streams diverged: %v vs %v", got.Outputs, want.Outputs)
	}
}

// TestCompiledEmptyAndIsolated: empty graphs short-circuit; isolated
// vertices run their instances.
func TestCompiledEmptyAndIsolated(t *testing.T) {
	algo := func(v Process) int { return v.ID() }
	a := Algo[int]{Vertex: algo, Compiled: CompileProcess(algo)}
	empty, err := RunAlgo(graph.NewBuilder(0).Build(), a, WithEngine(Compiled))
	if err != nil || len(empty.Outputs) != 0 || empty.Stats != (Stats{}) {
		t.Fatalf("empty graph: %v %v %v", empty.Outputs, empty.Stats, err)
	}
	iso, err := RunAlgo(graph.NewBuilder(3).Build(), a, WithEngine(Compiled))
	if err != nil || !reflect.DeepEqual(iso.Outputs, []int{1, 2, 3}) {
		t.Fatalf("isolated: %v %v", iso.Outputs, err)
	}
}

// TestCompiledRunnerRecoversAfterError: a failed compiled run does not
// poison the Runner for subsequent runs on any engine.
func TestCompiledRunnerRecoversAfterError(t *testing.T) {
	g := graph.Cycle(8)
	r := NewRunner[[]int](g)
	defer r.Close()
	bomb := func(v Process) []int { panic("bomb") }
	if _, err := r.RunAlgo(Algo[[]int]{Vertex: bomb, Compiled: CompileProcess(bomb)}, WithEngine(Compiled)); err == nil {
		t.Fatal("want error from panicking compiled run")
	}
	want := runChatty(t, g, WithSeed(3), WithEngine(Goroutines))
	for _, e := range []Engine{Compiled, Goroutines, Lockstep} {
		got, err := r.RunAlgo(chattyAlgo(), WithSeed(3), WithEngine(e))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) || got.Stats != want.Stats {
			t.Fatalf("engine %v diverged after failed compiled run", e)
		}
	}
}

// TestPoolRunAlgo: Pool.RunAlgo matches fresh runs and recycles runners.
func TestPoolRunAlgo(t *testing.T) {
	g := graph.GNM(80, 260, 5)
	p := NewPool[[]int](g, 2)
	defer p.Close()
	want := runChatty(t, g, WithSeed(7), WithEngine(Compiled))
	for i := 0; i < 4; i++ {
		got, err := p.RunAlgo(chattyAlgo(), WithSeed(7), WithEngine(Compiled))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) || got.Stats != want.Stats {
			t.Fatalf("pooled compiled run %d diverged", i)
		}
	}
	if s := p.Stats(); s.Reuses == 0 {
		t.Fatalf("pool stats %+v: want reuses > 0", s)
	}
}

// TestTallyAccounting: Tally reproduces the scheduler's accounting order —
// a capped round's activations are counted, its messages are not.
func TestTallyAccounting(t *testing.T) {
	tal := (CompiledEnv{MaxRounds: 2}).NewTally()
	if err := tal.StartRound(3); err != nil {
		t.Fatal(err)
	}
	tal.Message(5)
	tal.Messages(2, 7)
	if err := tal.StartRound(3); err != nil {
		t.Fatal(err)
	}
	tal.Message(1)
	err := tal.StartRound(2)
	if err == nil || !strings.Contains(err.Error(), "round cap 2 exceeded") {
		t.Fatalf("err = %v, want round cap", err)
	}
	want := Stats{Rounds: 3, Bytes: 5 + 14 + 1, MaxMessageBytes: 7, Activations: 8}
	if tal.Stats != want {
		t.Fatalf("tally %v, want %v", tal.Stats, want)
	}
	tal.Messages(0, 99) // no copies: must not touch MaxMessageBytes
	if tal.Stats != want {
		t.Fatalf("Messages(0, ...) mutated tally: %v", tal.Stats)
	}
}

// FuzzCompiledAgree fuzzes the interpreter's message-buffer indexing: an
// arbitrary graph (built from the byte stream) runs chatty under the
// interpreter and under Lockstep, and the two must agree byte for byte —
// any reverse-port or inbox-slot confusion in the compiled delivery shows
// up as a diff.
func FuzzCompiledAgree(f *testing.F) {
	f.Add(6, []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0}, int64(0))
	f.Add(8, []byte{0, 1, 0, 2, 0, 3, 1, 2, 4, 5, 6, 7, 2, 6}, int64(3))
	f.Add(1, []byte{}, int64(1))
	f.Fuzz(func(t *testing.T, n int, stream []byte, seed int64) {
		if n < 0 || n > 48 {
			return
		}
		if len(stream) > 128 {
			stream = stream[:128]
		}
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(stream); i += 2 {
			if n > 0 {
				b.TryAddEdge(int(stream[i])%n, int(stream[i+1])%n)
			}
		}
		g := b.Build()
		want, werr := Run(g, chatty, WithSeed(seed), WithEngine(Lockstep))
		got, gerr := RunAlgo(g, chattyAlgo(), WithSeed(seed), WithEngine(Compiled))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error mismatch: lockstep %v, compiled %v", werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("error text mismatch: %v vs %v", werr, gerr)
			}
			return
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) {
			t.Fatalf("outputs diverged on n=%d stream=%v", n, stream)
		}
		if got.Stats != want.Stats {
			t.Fatalf("stats diverged: %v vs %v", got.Stats, want.Stats)
		}
	})
}

// TestCompiledMessageRules: per-port selective sends (including sends to
// already-halted destinations) account and deliver identically under the
// interpreter. The early-halting vertex makes the drop path load-bearing.
func TestCompiledMessageRules(t *testing.T) {
	algo := func(v Process) []int {
		if v.ID()%3 == 0 {
			return nil // halts immediately: all messages to it drop
		}
		deg := v.Deg()
		var history []int
		for r := 1; r <= 3; r++ {
			out := make([][]byte, deg)
			for p := 0; p < deg; p++ {
				if (v.ID()+p+r)%2 == 0 {
					out[p] = wire.EncodeInts(v.ID()*100 + r)
				}
			}
			in := v.Round(out)
			sum := 0
			for p := 0; p < deg; p++ {
				if in[p] != nil {
					vals, err := wire.DecodeInts(in[p], 1)
					if err != nil {
						panic(err)
					}
					sum += vals[0]
				}
			}
			history = append(history, sum)
		}
		return history
	}
	for _, g := range []*graph.Graph{graph.Complete(9), graph.Star(12), graph.GNM(40, 120, 2)} {
		want, err := Run(g, algo, WithEngine(Goroutines))
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunAlgo(g, Algo[[]int]{Vertex: algo, Compiled: CompileProcess(algo)}, WithEngine(Compiled))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) || got.Stats != want.Stats {
			t.Fatalf("message rules diverged: %v vs %v", got.Stats, want.Stats)
		}
	}
}
