package dist

import (
	"fmt"
	"runtime"
	"sync"
)

// The Sharded engine partitions the vertex set into contiguous index ranges
// (GOMAXPROCS of them by default, override with WithShards) and gives each
// shard one logical worker:
//
//   - Release is a token chain. The scheduler links the round's active
//     vertices of each shard into a list in index order and hands the first
//     one a token; every vertex runs until it yields at Round, halts, or
//     panics, then passes the token directly to its successor (the last one
//     wakes the scheduler). Within a shard execution is sequential in index
//     order — Lockstep semantics — while shards run concurrently; a vertex
//     handoff costs one goroutine switch and no event-queue traffic.
//   - Accounting is sender-side. A yielding vertex tallies its own staged
//     outbox into its shard's Stats while it still holds the token, so the
//     tally is race-free and the accounted multiset of messages is exactly
//     the one deliver accounts for the other engines (dropped messages
//     included). Shard tallies are merged into Result.Stats in shard index
//     order at every round barrier.
//   - Delivery is destination-sharded and pull-based. Each shard's worker
//     walks its own vertices and gathers, for every port, the message the
//     neighbor staged on the reverse port (graph.ReversePorts). Only the
//     owning shard writes a vertex's inbox, so delivery parallelizes with
//     no locks, and each inbox is written exactly once per round — the
//     clear and the fill are one pass.
//
// Both phases are separated by barriers, so for a fixed graph, algorithm and
// seed the engine produces byte-identical Outputs and Stats to Goroutines
// and Lockstep regardless of the shard count (TestEnginesAgree,
// TestEngineFamilyProperty).
type shard[T any] struct {
	index  int           // position in sched.shards
	lo, hi int           // vertex index range [lo, hi)
	done   chan struct{} // token chain completion, capacity 1
	stats  Stats         // sender-side tally of the current round
	err    error         // first panic of this shard, in chain order
	first  *proc[T]      // head of the current round's token chain
}

// releaseSharded runs one round's release phase: chain the active vertices
// of every shard, start all chains, wait for all of them to finish, then
// surface any panic in shard index order. The per-shard message tallies are
// merged later, by deliverSharded, so the Stats a round-cap error reports
// exclude the capped round exactly as they do under the other engines.
func (s *sched[T]) releaseSharded(active []*proc[T]) error {
	for i := range s.shards {
		s.shards[i].first = nil
	}
	// Link in reverse so each chain comes out in increasing index order.
	for i := len(active) - 1; i >= 0; i-- {
		p := active[i]
		s.status[p.idx] = statusRunning
		p.next = p.shard.first
		p.shard.first = p
	}
	for i := range s.shards {
		if sh := &s.shards[i]; sh.first != nil {
			sh.first.resume <- struct{}{}
		}
	}
	for i := range s.shards {
		if s.shards[i].first != nil {
			<-s.shards[i].done
		}
	}
	for i := range s.shards {
		if err := s.shards[i].err; err != nil {
			return err
		}
	}
	return nil
}

// mergeShardStats folds the per-shard sender-side tallies of the round into
// Result.Stats, in shard index order, and resets them.
func (s *sched[T]) mergeShardStats() {
	for i := range s.shards {
		sh := &s.shards[i]
		s.res.Stats.Bytes += sh.stats.Bytes
		if sh.stats.MaxMessageBytes > s.res.Stats.MaxMessageBytes {
			s.res.Stats.MaxMessageBytes = sh.stats.MaxMessageBytes
		}
		sh.stats = Stats{}
	}
}

// yieldSharded is the Sharded counterpart of park for a vertex yielding at
// Round: tally the staged outbox into the shard's round stats and bin each
// message into the queue of its destination's shard — both in one pass over
// the outbox, while it is cache-hot and the vertex holds the token — then
// pass the token and block until the next release token (which is
// lifeline.kill's if the run aborted in the meantime).
func (p *proc[T]) yieldSharded(out [][]byte) {
	if p.exiting {
		runtime.Goexit()
	}
	if s := p.s; out != nil && s.queues != nil {
		// Multi-shard run: tally and bin in one cache-hot pass. (With a
		// single shard both jobs belong to the scatter delivery instead.)
		st := &p.shard.stats
		src := s.queues[p.shard.index]
		nbrs := s.g.Neighbors(p.idx)
		rp := s.g.ReversePorts(p.idx)
		for port, msg := range out {
			if msg == nil {
				continue
			}
			st.Bytes += len(msg)
			if len(msg) > st.MaxMessageBytes {
				st.MaxMessageBytes = len(msg)
			}
			u := nbrs[port]
			j := s.shardOf[u]
			src[j] = append(src[j], qentry{dst: u, port: rp[port], msg: msg})
		}
	}
	p.s.status[p.idx] = statusYielded
	p.passToken()
	<-p.resume
	if p.s.life.dead.Load() {
		p.exiting = true
		runtime.Goexit()
	}
}

// failSharded records a vertex panic against its shard (first in chain order
// wins) and passes the token so the rest of the chain still completes the
// round; the scheduler turns the recorded error into an abort at the next
// round barrier.
func (p *proc[T]) failSharded(panicked any) {
	if p.shard.err == nil {
		p.shard.err = fmt.Errorf("dist: vertex id %d panicked: %v", p.id, panicked)
	}
	p.s.status[p.idx] = statusDone
	p.passToken()
}

// passToken wakes the successor in the round's chain, or reports the chain
// complete. The send cannot block: the successor is parked (all chain
// members are parked when the chain starts and run one at a time), and the
// done channel has capacity 1 with exactly one completion per round.
func (p *proc[T]) passToken() {
	if p.next != nil {
		p.next.resume <- struct{}{}
	} else {
		p.shard.done <- struct{}{}
	}
}

// deliverSharded runs one round's delivery phase: every shard drains the
// message queues addressed to its own vertices, in parallel when there are
// multiple shards. Release-phase enqueues are published to all drain
// workers by the chain-completion barrier, and drain writes are published
// back by the WaitGroup, so the phase is race-free by construction.
func (s *sched[T]) deliverSharded() {
	s.mergeShardStats()
	if len(s.shards) == 1 {
		s.drainShard(0)
		return
	}
	var wg sync.WaitGroup
	for j := 1; j < len(s.shards); j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			s.drainShard(j)
		}(j)
	}
	s.drainShard(0)
	wg.Wait()
}

// drainShard clears the slots this shard's previous delivery filled, then
// moves every queued message of the round into its destination inbox,
// dropping those whose destination has halted (their bytes were already
// tallied by the sender). Source queues are visited in shard index order,
// and each queue holds its entries in chain (= vertex index) order, so the
// drain is deterministic; the whole phase costs O(messages), not O(m).
func (s *sched[T]) drainShard(j int) {
	wl := s.written[j]
	for _, sr := range wl {
		s.procs[sr.idx].inbox[sr.port] = nil
	}
	wl = wl[:0]
	for i := range s.shards {
		queue := s.queues[i][j]
		for _, e := range queue {
			if s.status[e.dst] != statusYielded {
				continue // halted this round or earlier: drop
			}
			d := s.procs[e.dst]
			if d.inbox == nil {
				d.inbox = make([][]byte, s.g.Deg(int(e.dst)))
			}
			d.inbox[e.port] = e.msg
			wl = append(wl, slotRef{idx: e.dst, port: e.port})
		}
		s.queues[i][j] = queue[:0]
	}
	s.written[j] = wl
}
