package dist

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// chatty is a deliberately irregular algorithm: vertices use their PRNG,
// exchange messages of varying sizes, and halt after different numbers of
// rounds, exercising the drop-to-halted path. It is fully deterministic
// given the run seed.
func chatty(v Process) []int {
	rng := v.Rand()
	deg := v.Deg()
	budget := 1 + rng.Intn(4) // 1..4 rounds, varies per vertex
	sum := rng.Intn(1000)
	history := []int{sum}
	for r := 0; r < budget; r++ {
		out := make([][]byte, deg)
		for p := 0; p < deg; p++ {
			if (v.ID()+v.NeighborID(p)+r)%3 != 0 {
				out[p] = wire.EncodeInts(sum, r, v.ID())
			}
		}
		in := v.Round(out)
		for p := 0; p < deg; p++ {
			if in[p] == nil {
				continue
			}
			vals, err := wire.DecodeInts(in[p], 3)
			if err != nil {
				panic(err)
			}
			sum += vals[0] + vals[1]*vals[2]
		}
		history = append(history, sum)
	}
	return history
}

// chattyAlgo bundles chatty with an interpreter-compiled form, so the
// Compiled engine runs it as a flat pass while the other engines schedule
// the plain function — the four-engine agreement tests all route through it.
func chattyAlgo() Algo[[]int] {
	return Algo[[]int]{Vertex: chatty, Compiled: CompileProcess(chatty)}
}

func runChatty(t *testing.T, g *graph.Graph, opts ...Option) *Result[[]int] {
	t.Helper()
	res, err := RunAlgo(g, chattyAlgo(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEnginesAgree is the central determinism contract: for any fixed seed,
// all three engines produce byte-identical Outputs and Stats, across
// repeated runs and regardless of the Sharded engine's shard count.
func TestEnginesAgree(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle":     graph.Cycle(50),
		"complete":  graph.Complete(24),
		"gnm":       graph.GNM(200, 900, 7),
		"linegraph": graph.GNM(40, 160, 3).LineGraph(),
		"star":      graph.Star(33),
		"shuffled":  graph.ShuffledIDs(graph.GNM(100, 300, 1), 2),
	}
	for name, g := range graphs {
		for seed := int64(0); seed < 3; seed++ {
			goro := runChatty(t, g, WithSeed(seed), WithEngine(Goroutines))
			variants := map[string]*Result[[]int]{
				"lockstep":  runChatty(t, g, WithSeed(seed), WithEngine(Lockstep)),
				"sharded":   runChatty(t, g, WithSeed(seed), WithEngine(Sharded)),
				"sharded-1": runChatty(t, g, WithSeed(seed), WithEngine(Sharded), WithShards(1)),
				"sharded-5": runChatty(t, g, WithSeed(seed), WithEngine(Sharded), WithShards(5)),
				"compiled":  runChatty(t, g, WithSeed(seed), WithEngine(Compiled)),
				"again":     runChatty(t, g, WithSeed(seed), WithEngine(Goroutines)),
			}
			for vname, res := range variants {
				if !reflect.DeepEqual(goro.Outputs, res.Outputs) {
					t.Fatalf("%s seed %d: outputs differ: goroutines vs %s", name, seed, vname)
				}
				if goro.Stats != res.Stats {
					t.Fatalf("%s seed %d: stats differ: goroutines %v vs %s %v",
						name, seed, goro.Stats, vname, res.Stats)
				}
			}
		}
	}
}

// TestRunnerReuseAgrees pins the Runner reuse contract: repeated runs on one
// Runner — same or different seeds, engines switched mid-stream, even after
// an aborted run — match fresh dist.Run results exactly.
func TestRunnerReuseAgrees(t *testing.T) {
	g := graph.GNM(120, 500, 9)
	r := NewRunner[[]int](g)
	for i := 0; i < 3; i++ {
		for _, e := range []Engine{Goroutines, Lockstep, Sharded, Compiled} {
			for seed := int64(0); seed < 2; seed++ {
				got, err := r.RunAlgo(chattyAlgo(), WithSeed(seed), WithEngine(e), WithShards(3))
				if err != nil {
					t.Fatal(err)
				}
				want := runChatty(t, g, WithSeed(seed), WithEngine(e))
				if !reflect.DeepEqual(got.Outputs, want.Outputs) || got.Stats != want.Stats {
					t.Fatalf("reused runner diverged from fresh run (engine %v seed %d iter %d)", e, seed, i)
				}
			}
		}
		// Abort a run mid-stream; the Runner must rebuild and keep working.
		if _, err := r.Run(func(v Process) []int {
			if v.ID() == 5 {
				panic("poison the runner")
			}
			for {
				v.Round(nil)
			}
		}, WithEngine(Engine(i%3))); err == nil {
			t.Fatal("poisoned run did not error")
		}
	}
}

// TestEchoForwardAcrossEngines pins the echo pattern — passing the slice
// Round returned straight back as the next outbox — which aliases the
// pooled inbox: the runtime must snapshot it so delivery's slot recycling
// cannot eat the staged messages, and all engines must agree byte for byte.
func TestEchoForwardAcrossEngines(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(6), graph.Complete(9), graph.GNM(40, 120, 5)} {
		var want *Result[int]
		for _, opts := range [][]Option{
			{WithEngine(Goroutines)},
			{WithEngine(Lockstep)},
			{WithEngine(Sharded), WithShards(1)},
			{WithEngine(Sharded), WithShards(3)},
		} {
			res, err := Run(g, func(v Process) int {
				in := v.Broadcast([]byte{7})
				in = v.Round(in) // forward everything we just received
				got := 0
				for _, m := range in {
					if m != nil {
						got++
					}
				}
				return got
			}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = res
				// Every vertex echoes on all ports, so round 2 delivers a
				// full inbox again and doubles the byte count.
				if res.Stats.Rounds != 2 || res.Stats.Bytes != 2*2*g.M() {
					t.Fatalf("%v: stats %v, want rounds=2 bytes=%d", g, res.Stats, 4*g.M())
				}
				for v, got := range res.Outputs {
					if got != g.Deg(v) {
						t.Fatalf("%v vertex %d: echoed %d messages, want Deg=%d", g, v, got, g.Deg(v))
					}
				}
				continue
			}
			if !reflect.DeepEqual(want.Outputs, res.Outputs) || want.Stats != res.Stats {
				t.Fatalf("%v opts %d: echo run diverged across engines", g, len(opts))
			}
		}
	}
}

// TestShardedIsSequentialWithinShard: with a single shard the Sharded engine
// is globally sequential in index order, so unsynchronized shared state is
// safe (and -race agrees), exactly like Lockstep.
func TestShardedIsSequentialWithinShard(t *testing.T) {
	g := graph.Complete(10)
	running := 0
	maxRunning := 0
	_, err := Run(g, func(v Process) int {
		for r := 0; r < 3; r++ {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			running--
			v.Round(nil)
		}
		return 0
	}, WithEngine(Sharded), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if maxRunning != 1 {
		t.Fatalf("max concurrent vertices = %d, want 1", maxRunning)
	}
}

// TestShardedUnderRace drives the Sharded engine with several shards on a
// dense graph with real cross-shard message traffic; under -race this
// validates the token-chain release and the destination-sharded gather.
func TestShardedUnderRace(t *testing.T) {
	g := graph.Complete(40)
	res, err := Run(g, func(v Process) int {
		total := 0
		for r := 0; r < 5; r++ {
			in := v.Broadcast(wire.EncodeInts(v.ID() + r))
			for _, msg := range in {
				vals, err := wire.DecodeInts(msg, 1)
				if err != nil {
					panic(err)
				}
				total += vals[0]
			}
		}
		return total
	}, WithEngine(Sharded), WithShards(7))
	if err != nil {
		t.Fatal(err)
	}
	for v, got := range res.Outputs {
		want := 0
		for u := 0; u < g.N(); u++ {
			if u == v {
				continue
			}
			for r := 0; r < 5; r++ {
				want += g.ID(u) + r
			}
		}
		if got != want {
			t.Fatalf("vertex %d: total %d, want %d", v, got, want)
		}
	}
}

// TestGoroutineEngineUnderRace drives the concurrent engine on a dense graph
// with real cross-vertex message traffic; run with -race this validates the
// handoff discipline of the barrier scheduler.
func TestGoroutineEngineUnderRace(t *testing.T) {
	g := graph.Complete(40)
	res, err := Run(g, func(v Process) int {
		total := 0
		for r := 0; r < 5; r++ {
			in := v.Broadcast(wire.EncodeInts(v.ID() + r))
			for _, msg := range in {
				vals, err := wire.DecodeInts(msg, 1)
				if err != nil {
					panic(err)
				}
				total += vals[0]
			}
		}
		return total
	}, WithEngine(Goroutines))
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex receives the same multiset of broadcasts.
	for v, got := range res.Outputs {
		want := 0
		for u := 0; u < g.N(); u++ {
			if u == v {
				continue
			}
			for r := 0; r < 5; r++ {
				want += g.ID(u) + r
			}
		}
		if got != want {
			t.Fatalf("vertex %d: total %d, want %d", v, got, want)
		}
	}
	if res.Stats.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", res.Stats.Rounds)
	}
}

// TestRoundSemantics pins the exact accounting on a 3-path: message sizes,
// totals, and the rule that the final all-halt round is not counted.
func TestRoundSemantics(t *testing.T) {
	g := graph.Path(3) // edges 0-1, 1-2
	for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
		res, err := Run(g, func(v Process) int {
			in := v.Broadcast([]byte{1, 2, 3})
			n := 0
			for _, msg := range in {
				if msg != nil {
					n += len(msg)
				}
			}
			return n
		}, WithEngine(e))
		if err != nil {
			t.Fatal(err)
		}
		// Degrees are 1,2,1: four copies of a 3-byte message in round 1.
		if res.Stats.Rounds != 1 || res.Stats.Bytes != 12 || res.Stats.MaxMessageBytes != 3 {
			t.Fatalf("engine %v: stats %v, want rounds=1 bytes=12 maxMsg=3B", e, res.Stats)
		}
		if !reflect.DeepEqual(res.Outputs, []int{3, 6, 3}) {
			t.Fatalf("engine %v: outputs %v", e, res.Outputs)
		}
	}
}

// TestZeroRounds: an algorithm that never communicates costs zero rounds.
func TestZeroRounds(t *testing.T) {
	g := graph.Complete(6)
	res, err := Run(g, func(v Process) int { return v.ID() * v.Deg() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != (Stats{}) {
		t.Fatalf("stats = %v, want all zero", res.Stats)
	}
	for v := range res.Outputs {
		if res.Outputs[v] != g.ID(v)*g.Deg(v) {
			t.Fatalf("vertex %d: output %d", v, res.Outputs[v])
		}
	}
}

// TestMessagesToHaltedAreDropped: a vertex that halted must never deliver,
// but the sender's bytes still count.
func TestMessagesToHaltedAreDropped(t *testing.T) {
	g := graph.Path(2)
	for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
		res, err := Run(g, func(v Process) int {
			if v.ID() == 1 {
				return -1 // halts immediately
			}
			in := v.Broadcast([]byte{9, 9})
			if in[0] != nil {
				return 1 // would mean the halted vertex "sent" something
			}
			in = v.Broadcast([]byte{8})
			if in[0] != nil {
				return 2
			}
			return 0
		}, WithEngine(e))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] != -1 || res.Outputs[1] != 0 { // id 1 = index 0 halts
			t.Fatalf("engine %v: outputs %v", e, res.Outputs)
		}
		if res.Stats.Rounds != 2 || res.Stats.Bytes != 3 || res.Stats.MaxMessageBytes != 2 {
			t.Fatalf("engine %v: stats %v, want rounds=2 bytes=3 maxMsg=2B", e, res.Stats)
		}
	}
}

// TestPanicPropagates: a vertex panic surfaces as a Run error naming the
// vertex, on both engines, without hanging the other vertices.
func TestPanicPropagates(t *testing.T) {
	g := graph.Cycle(12)
	for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
		_, err := Run(g, func(v Process) int {
			if v.ID() == 7 {
				panic("kaboom at seven")
			}
			for {
				v.Round(nil)
			}
		}, WithEngine(e))
		if err == nil || !strings.Contains(err.Error(), "kaboom at seven") ||
			!strings.Contains(err.Error(), "id 7") {
			t.Fatalf("engine %v: err = %v, want panic from vertex id 7", e, err)
		}
	}
}

// TestAbortWithRoundInDefer: user defers that keep calling Round while an
// aborted run unwinds must not wedge the runtime (the exiting guard in
// park); the original panic is still the one reported.
func TestAbortWithRoundInDefer(t *testing.T) {
	g := graph.Complete(8)
	for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
		_, err := Run(g, func(v Process) int {
			defer func() {
				for i := 0; i < 3; i++ {
					v.Round(nil) // runs during Goexit on aborted vertices
				}
			}()
			if v.ID() == 3 {
				panic("abort me")
			}
			for {
				v.Round(nil)
			}
		}, WithEngine(e))
		if err == nil || !strings.Contains(err.Error(), "abort me") {
			t.Fatalf("engine %v: err = %v, want original panic", e, err)
		}
	}
}

// TestWrongOutboxLength: a non-nil outbox of the wrong length is a caller
// bug reported as an error mentioning the port count.
func TestWrongOutboxLength(t *testing.T) {
	g := graph.Path(4)
	_, err := Run(g, func(v Process) int {
		v.Round(make([][]byte, v.Deg()+1))
		return 0
	})
	if err == nil || !strings.Contains(err.Error(), "ports") {
		t.Fatalf("err = %v, want port-count violation", err)
	}
}

// TestRoundCap: WithMaxRounds turns a non-terminating algorithm into an
// error instead of a hang.
func TestRoundCap(t *testing.T) {
	g := graph.Cycle(5)
	for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
		_, err := Run(g, func(v Process) int {
			for {
				v.Round(nil)
			}
		}, WithEngine(e), WithMaxRounds(17))
		if err == nil || !strings.Contains(err.Error(), "round cap 17") {
			t.Fatalf("engine %v: err = %v, want round-cap error", e, err)
		}
	}
}

// TestRandStreams: per-vertex PRNGs are reproducible, engine-independent,
// and distinct across vertices.
func TestRandStreams(t *testing.T) {
	g := graph.Cycle(16)
	draw := func(e Engine, seed int64) []int {
		res, err := Run(g, func(v Process) int { return v.Rand().Intn(1 << 30) },
			WithEngine(e), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a := draw(Goroutines, 42)
	b := draw(Lockstep, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PRNG streams differ across engines")
	}
	if reflect.DeepEqual(a, draw(Goroutines, 43)) {
		t.Fatal("seed change did not move the streams")
	}
	distinct := false
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("vertex streams look identical")
	}
}

// TestIsolatedAndEmpty: degree-0 vertices and the empty graph are fine.
func TestIsolatedAndEmpty(t *testing.T) {
	empty, err := Run(graph.NewBuilder(0).Build(), func(v Process) int { return 1 })
	if err != nil || len(empty.Outputs) != 0 {
		t.Fatalf("empty graph: res=%v err=%v", empty, err)
	}
	b := graph.NewBuilder(3) // one edge + one isolated vertex
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := Run(b.Build(), func(v Process) int {
		in := v.Broadcast([]byte{5})
		got := 0
		for _, msg := range in {
			if msg != nil {
				got++
			}
		}
		return got
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Outputs, []int{1, 1, 0}) {
		t.Fatalf("outputs %v, want [1 1 0]", res.Outputs)
	}
}

// TestUnknownEngine: nonsense engines are rejected up front.
func TestUnknownEngine(t *testing.T) {
	_, err := Run(graph.Path(2), func(v Process) int { return 0 }, WithEngine(Engine(99)))
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("err = %v, want unknown-engine error", err)
	}
}

// TestBroadcastNilAdvancesRound: Broadcast(nil) is a silent round.
func TestBroadcastNilAdvancesRound(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(g, func(v Process) int {
		v.Broadcast(nil)
		in := v.Broadcast([]byte{byte(v.ID())})
		got := 0
		for _, msg := range in {
			if msg != nil {
				got++
			}
		}
		return got
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Stats.Rounds)
	}
	if !reflect.DeepEqual(res.Outputs, []int{1, 2, 1}) {
		t.Fatalf("outputs %v", res.Outputs)
	}
}

// TestLockstepIsSequential: under Lockstep no two vertex instances run
// concurrently, so unsynchronized writes to shared state are safe (and
// -race agrees). The counter checks mutual exclusion via max concurrency.
func TestLockstepIsSequential(t *testing.T) {
	g := graph.Complete(10)
	running := 0
	maxRunning := 0
	_, err := Run(g, func(v Process) int {
		for r := 0; r < 3; r++ {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			running--
			v.Round(nil)
		}
		return 0
	}, WithEngine(Lockstep))
	if err != nil {
		t.Fatal(err)
	}
	if maxRunning != 1 {
		t.Fatalf("max concurrent vertices = %d, want 1", maxRunning)
	}
}
