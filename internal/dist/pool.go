package dist

import (
	"sync"

	"repro/internal/graph"
)

// PoolStats is a point-in-time snapshot of a Pool's activity, taken with
// Pool.Stats. Reuses/Acquires is the runner-reuse rate the pool achieves: a
// steady-state service should see it approach 1.
type PoolStats struct {
	// Acquires is the number of runner acquisitions (= runs issued).
	Acquires int64 `json:"acquires"`
	// Builds is the number of Runners constructed; at most the pool cap.
	Builds int64 `json:"builds"`
	// Reuses is Acquires minus the acquisitions that had to build.
	Reuses int64 `json:"reuses"`
	// Waits is the number of acquisitions that blocked because every
	// built runner was busy and the build cap was reached.
	Waits int64 `json:"waits"`
	// Idle is the number of runners currently parked in the pool.
	Idle int `json:"idle"`
}

// Pool is a concurrency-safe pool of Runners over one graph. A single Runner
// amortizes per-vertex runtime state across runs but must not be used
// concurrently; a Pool lends out idle Runners to concurrent callers, building
// new ones on demand up to a cap and blocking further callers until a runner
// frees up. It is the execution substrate of the coloring service: one Pool
// per (cached graph, output type), shared by every worker.
type Pool[T any] struct {
	g   *graph.Graph
	max int

	mu    sync.Mutex
	cond  *sync.Cond
	idle  []*Runner[T]
	stats PoolStats
	// closed rejects late releases: runners returned after Close are closed
	// instead of pooled, so Close never leaks parked goroutine generations.
	closed bool
}

// NewPool returns a Pool over g that will build at most max Runners
// (max <= 0 means 1). The type parameter is the per-vertex output type of
// the algorithms the pool will run.
func NewPool[T any](g *graph.Graph, max int) *Pool[T] {
	if max <= 0 {
		max = 1
	}
	p := &Pool[T]{g: g, max: max}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Graph returns the graph the pool's runners execute on.
func (p *Pool[T]) Graph() *graph.Graph { return p.g }

// Run acquires a Runner (reusing an idle one, building one under the cap, or
// waiting for a release), executes one run on it, and returns it to the pool.
// Runs on distinct runners proceed concurrently. The result is byte-identical
// to dist.Run(g, algo, opts...) — the Runner contract guarantees it.
func (p *Pool[T]) Run(algo func(Process) T, opts ...Option) (*Result[T], error) {
	r := p.acquire()
	res, err := r.Run(algo, opts...)
	p.release(r)
	return res, err
}

func (p *Pool[T]) acquire() *Runner[T] {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Acquires++
	for {
		if n := len(p.idle); n > 0 {
			r := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.stats.Reuses++
			p.stats.Idle = len(p.idle)
			return r
		}
		// A closed pool no longer recycles, so the cap would starve blocked
		// callers; hand out fresh short-lived runners instead.
		if p.closed || p.stats.Builds < int64(p.max) {
			p.stats.Builds++
			return NewRunner[T](p.g)
		}
		p.stats.Waits++
		p.cond.Wait()
	}
}

func (p *Pool[T]) release(r *Runner[T]) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		r.Close()
		return
	}
	p.idle = append(p.idle, r)
	p.stats.Idle = len(p.idle)
	p.mu.Unlock()
	p.cond.Signal()
}

// Stats snapshots the pool's counters.
func (p *Pool[T]) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Idle = len(p.idle)
	return s
}

// Close shuts down every idle Runner and marks the pool closed: runners still
// lent out are closed as they are returned, and callers blocked in acquire
// are released to build fresh (short-lived) runners. Idempotent.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.stats.Idle = 0
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, r := range idle {
		r.Close()
	}
}
