package dist

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// familyGraphs instantiates every generator family internal/graph exports,
// small enough that the full engine matrix stays fast but irregular enough
// (isolated vertices, skewed degrees, shuffled identifiers) to exercise the
// delivery and accounting corners.
func familyGraphs() map[string]*graph.Graph {
	withIsolated := graph.NewBuilder(7)
	if err := withIsolated.AddEdge(1, 4); err != nil {
		panic(err)
	}
	return map[string]*graph.Graph{
		"path":              graph.Path(17),
		"cycle":             graph.Cycle(19),
		"complete":          graph.Complete(12),
		"completeBipartite": graph.CompleteBipartite(5, 9),
		"star":              graph.Star(14),
		"gnm":               graph.GNM(80, 300, 3),
		"boundedDegree":     graph.RandomBoundedDegree(60, 6, 120, 4),
		"regular":           graph.RandomRegular(48, 6, 5),
		"geometric":         graph.Geometric(120, 0.15, 6),
		"cliquePendants":    graph.CliquePlusPendants(9),
		"powerOfCycle":      graph.PowerOfCycle(40, 5),
		"grid":              graph.Grid(8, 7),
		"torus":             graph.Torus(5, 6),
		"hypercube":         graph.Hypercube(5),
		"tree":              graph.RandomTree(40, 7),
		"lineGraph":         graph.GNM(24, 80, 8).LineGraph(),
		"hyperLineGraph":    graph.RandomHypergraph(30, 45, 3, 9).LineGraph(),
		"targetDegree":      graph.TargetDegreeGNM(64, 8, 10),
		"shuffledIDs":       graph.ShuffledIDs(graph.GNM(50, 150, 11), 12),
		"builderIsolated":   withIsolated.Build(),
	}
}

// TestEngineFamilyProperty is the cross-engine determinism property over the
// whole generator zoo: the chatty algorithm (PRNG-driven budgets, varying
// message sizes, early halts) must produce byte-identical Outputs and Stats
// on every family, for every engine (including a multi-shard Sharded run),
// for multiple seeds. It is the broad-coverage companion of the focused
// TestEnginesAgree.
func TestEngineFamilyProperty(t *testing.T) {
	for name, g := range familyGraphs() {
		for seed := int64(0); seed < 2; seed++ {
			ref := runChatty(t, g, WithSeed(seed), WithEngine(Goroutines))
			variants := map[string]*Result[[]int]{
				"lockstep":  runChatty(t, g, WithSeed(seed), WithEngine(Lockstep)),
				"sharded":   runChatty(t, g, WithSeed(seed), WithEngine(Sharded)),
				"sharded-4": runChatty(t, g, WithSeed(seed), WithEngine(Sharded), WithShards(4)),
				"compiled":  runChatty(t, g, WithSeed(seed), WithEngine(Compiled)),
			}
			for vname, res := range variants {
				if !reflect.DeepEqual(ref.Outputs, res.Outputs) {
					t.Fatalf("%s seed %d: outputs differ: goroutines vs %s", name, seed, vname)
				}
				if ref.Stats != res.Stats {
					t.Fatalf("%s seed %d: stats differ: goroutines %v vs %s %v",
						name, seed, ref.Stats, vname, res.Stats)
				}
			}
		}
	}
}
