package dist

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// BenchmarkEngines compares the two schedulers on the same communication-
// heavy workload: 8 broadcast rounds on a dense random graph. Lockstep's
// sequential handoff avoids all barrier contention.
func BenchmarkEngines(b *testing.B) {
	g := graph.GNM(2000, 40000, 1)
	algo := func(v Process) int {
		acc := 0
		for r := 0; r < 8; r++ {
			in := v.Broadcast(wire.EncodeInts(v.ID() ^ r))
			for _, msg := range in {
				vals, err := wire.DecodeInts(msg, 1)
				if err != nil {
					panic(err)
				}
				acc += vals[0]
			}
		}
		return acc
	}
	for _, e := range []Engine{Goroutines, Lockstep} {
		b.Run(fmt.Sprintf("%v", e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, algo, WithEngine(e)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
