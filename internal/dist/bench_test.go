package dist

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// denseBenchGraph is the dense 2000-vertex workload the engine comparison is
// stated on: a random graph with 40000 edges (average degree 40).
func denseBenchGraph() *graph.Graph {
	return graph.GNM(2000, 40000, 1)
}

// commAlgo is a communication-heavy, allocation-light algorithm: 8 broadcast
// rounds over a shared message, folding the received bytes. Keeping the
// per-vertex work allocation-free makes the benchmark measure the runtime —
// scheduling, delivery, accounting — rather than the algorithm's own
// garbage.
func commAlgo(v Process) int {
	msg := []byte{byte(v.ID()), byte(v.ID() >> 8), 7, 9}
	acc := 0
	for r := 0; r < 8; r++ {
		in := v.Broadcast(msg)
		for _, m := range in {
			if m != nil {
				acc += int(m[0]) ^ r
			}
		}
	}
	return acc
}

// BenchmarkEngines compares the three schedulers on the dense workload.
// "fresh" sub-benchmarks rebuild the runtime through dist.Run every
// iteration; "steady" sub-benchmarks measure the production configuration —
// repeated runs on one Runner — where per-run bookkeeping is amortized away
// and only scheduling, delivery, and the algorithm itself remain. Custom
// metrics report the LOCAL-model cost so BENCH_runtime.json tracks rounds
// and message volume alongside wall-clock.
//
// Scheduling is the only engine-dependent cost, so the Sharded advantage
// scales with how much the host parallelizes the shard chains and the
// destination-sharded delivery: on a single-CPU host it is the ~20-30%
// saved by token-chain handoffs alone, on multi-core hosts the release and
// delivery phases additionally spread across GOMAXPROCS shards.
func BenchmarkEngines(b *testing.B) {
	g := denseBenchGraph()
	for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
		b.Run(fmt.Sprintf("fresh/%v", e), func(b *testing.B) {
			var stats Stats
			for i := 0; i < b.N; i++ {
				res, err := Run(g, commAlgo, WithEngine(e))
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.Rounds), "rounds")
			b.ReportMetric(float64(stats.Bytes), "msgBytes")
		})
	}
	for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
		b.Run(fmt.Sprintf("steady/%v", e), func(b *testing.B) {
			r := NewRunner[int](g)
			defer r.Close()
			var stats Stats
			if _, err := r.Run(commAlgo, WithEngine(e)); err != nil {
				b.Fatal(err) // warm the pools before measuring steady state
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.Run(commAlgo, WithEngine(e))
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.Rounds), "rounds")
			b.ReportMetric(float64(stats.Bytes), "msgBytes")
		})
	}
}

// BenchmarkEnginesChatty is the same comparison on the original irregular
// workload (per-vertex PRNG budgets, varint encode/decode): here the
// algorithm's own allocations dominate, bounding how much any scheduler can
// matter — the realistic regime for the repository's coloring algorithms.
func BenchmarkEnginesChatty(b *testing.B) {
	g := denseBenchGraph()
	algo := func(v Process) int {
		acc := 0
		for r := 0; r < 8; r++ {
			in := v.Broadcast(wire.EncodeInts(v.ID() ^ r))
			for _, msg := range in {
				vals, err := wire.DecodeInts(msg, 1)
				if err != nil {
					panic(err)
				}
				acc += vals[0]
			}
		}
		return acc
	}
	for _, e := range []Engine{Goroutines, Lockstep, Sharded} {
		b.Run(fmt.Sprintf("%v", e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, algo, WithEngine(e)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunnerReuse measures what Runner amortization buys on repeated
// runs over one graph — the experiment-grid access pattern. "fresh"
// rebuilds the runtime state through dist.Run every iteration; "reused"
// executes the same run on one long-lived Runner, so steady-state
// iterations allocate only the Result.
func BenchmarkRunnerReuse(b *testing.B) {
	g := denseBenchGraph()
	msg := []byte{1, 2, 3, 4} // shared: the algorithm itself allocates nothing
	algo := func(v Process) int {
		acc := 0
		for r := 0; r < 2; r++ {
			in := v.Broadcast(msg)
			for _, m := range in {
				if m != nil {
					acc += int(m[0])
				}
			}
		}
		return acc
	}
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(g, algo, WithEngine(Sharded)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		r := NewRunner[int](g)
		if _, err := r.Run(algo, WithEngine(Sharded)); err != nil {
			b.Fatal(err) // warm the pools before measuring steady state
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Run(algo, WithEngine(Sharded)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
