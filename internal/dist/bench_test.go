// Benchmarks live in dist_test so they can drive the runtime through real
// workloads from internal/baseline (the service hot paths) without an import
// cycle.
package dist_test

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// benchEngines is every scheduler, in the order BENCH_runtime.json reports.
var benchEngines = []dist.Engine{dist.Goroutines, dist.Lockstep, dist.Sharded, dist.Compiled}

// denseBenchGraph is the dense 2000-vertex workload the engine comparison is
// stated on: a random graph with 40000 edges (average degree 40).
func denseBenchGraph() *graph.Graph {
	return graph.GNM(2000, 40000, 1)
}

// commAlgo is a communication-heavy, allocation-light algorithm: 8 broadcast
// rounds over a shared message, folding the received bytes. Keeping the
// per-vertex work allocation-free makes the benchmark measure the runtime —
// scheduling, delivery, accounting — rather than the algorithm's own
// garbage.
func commAlgo(v dist.Process) int {
	msg := []byte{byte(v.ID()), byte(v.ID() >> 8), 7, 9}
	acc := 0
	for r := 0; r < 8; r++ {
		in := v.Broadcast(msg)
		for _, m := range in {
			if m != nil {
				acc += int(m[0]) ^ r
			}
		}
	}
	return acc
}

// commBundle runs commAlgo on every engine: scheduled on the three scheduler
// engines, through the flat-array interpreter under Compiled.
func commBundle() dist.Algo[int] {
	return dist.Algo[int]{Vertex: commAlgo, Compiled: dist.CompileProcess(commAlgo)}
}

// BenchmarkEngines compares the four engines on the dense workload.
// "fresh" sub-benchmarks rebuild the runtime through dist.RunAlgo every
// iteration; "steady" sub-benchmarks measure the production configuration —
// repeated runs on one Runner — where per-run bookkeeping is amortized away
// and only scheduling, delivery, and the algorithm itself remain. The
// "hotpath" group is the service hot path (greedy edge coloring), where the
// Compiled engine executes the hand-written CSR pass instead of scheduling
// vertices; this is the workload the ≥10× single-core target is stated on.
// Custom metrics report the LOCAL-model cost so BENCH_runtime.json tracks
// rounds and message volume alongside wall-clock.
//
// Scheduling is the only engine-dependent cost of the comm workloads, so the
// Sharded advantage scales with how much the host parallelizes the shard
// chains, while Compiled replaces scheduling wholesale: under the interpreter
// it saves goroutine handoffs, and under a hand-written pass it saves the
// per-vertex control flow entirely.
func BenchmarkEngines(b *testing.B) {
	g := denseBenchGraph()
	for _, e := range benchEngines {
		b.Run(fmt.Sprintf("fresh/%v", e), func(b *testing.B) {
			var stats dist.Stats
			for i := 0; i < b.N; i++ {
				res, err := dist.RunAlgo(g, commBundle(), dist.WithEngine(e))
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.Rounds), "rounds")
			b.ReportMetric(float64(stats.Bytes), "msgBytes")
		})
	}
	for _, e := range benchEngines {
		b.Run(fmt.Sprintf("steady/%v", e), func(b *testing.B) {
			r := dist.NewRunner[int](g)
			defer r.Close()
			var stats dist.Stats
			if _, err := r.RunAlgo(commBundle(), dist.WithEngine(e)); err != nil {
				b.Fatal(err) // warm the pools before measuring steady state
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.RunAlgo(commBundle(), dist.WithEngine(e))
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.Rounds), "rounds")
			b.ReportMetric(float64(stats.Bytes), "msgBytes")
		})
	}
	for _, e := range benchEngines {
		b.Run(fmt.Sprintf("hotpath/%v", e), func(b *testing.B) {
			r := dist.NewRunner[[]int](g)
			defer r.Close()
			var stats dist.Stats
			if _, err := r.RunAlgo(baseline.GreedyEdgeAlgo(), dist.WithEngine(e)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.RunAlgo(baseline.GreedyEdgeAlgo(), dist.WithEngine(e))
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.Rounds), "rounds")
			b.ReportMetric(float64(stats.Bytes), "msgBytes")
		})
	}
}

// BenchmarkEnginesChatty is the same comparison on the original irregular
// workload (per-vertex PRNG budgets, varint encode/decode): here the
// algorithm's own allocations dominate, bounding how much any scheduler (or
// the interpreter) can matter — the realistic regime for algorithms without a
// hand-written compiled form.
func BenchmarkEnginesChatty(b *testing.B) {
	g := denseBenchGraph()
	algo := func(v dist.Process) int {
		acc := 0
		for r := 0; r < 8; r++ {
			in := v.Broadcast(wire.EncodeInts(v.ID() ^ r))
			for _, msg := range in {
				vals, err := wire.DecodeInts(msg, 1)
				if err != nil {
					panic(err)
				}
				acc += vals[0]
			}
		}
		return acc
	}
	bundle := dist.Algo[int]{Vertex: algo, Compiled: dist.CompileProcess(algo)}
	for _, e := range benchEngines {
		b.Run(fmt.Sprintf("%v", e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dist.RunAlgo(g, bundle, dist.WithEngine(e)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunnerReuse measures what Runner amortization buys on repeated
// runs over one graph — the experiment-grid access pattern. "fresh"
// rebuilds the runtime state through dist.Run every iteration; "reused"
// executes the same run on one long-lived Runner, so steady-state
// iterations allocate only the Result.
func BenchmarkRunnerReuse(b *testing.B) {
	g := denseBenchGraph()
	msg := []byte{1, 2, 3, 4} // shared: the algorithm itself allocates nothing
	algo := func(v dist.Process) int {
		acc := 0
		for r := 0; r < 2; r++ {
			in := v.Broadcast(msg)
			for _, m := range in {
				if m != nil {
					acc += int(m[0])
				}
			}
		}
		return acc
	}
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.Run(g, algo, dist.WithEngine(dist.Sharded)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		r := dist.NewRunner[int](g)
		if _, err := r.Run(algo, dist.WithEngine(dist.Sharded)); err != nil {
			b.Fatal(err) // warm the pools before measuring steady state
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Run(algo, dist.WithEngine(dist.Sharded)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
