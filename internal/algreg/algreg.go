// Package algreg is the single registry of coloring algorithms: every alg
// value the service accepts and every -alg value the CLIs accept is one
// Algorithm entry here, self-describing its kind, quality tier, parameter
// canonicalization, palette bound, and constructors. The service resolves
// requests (including the quality knob) through Resolve/Default, the CLIs
// dispatch through the Run hooks and generate their -alg help from the same
// entries — so the two can never drift, and adding an algorithm is one
// registration instead of three switch arms.
package algreg

import (
	"fmt"
	"strings"

	"repro/internal/dist"
	"repro/internal/graph"
)

// Params carries the algorithm parameters a request or CLI invocation can
// set. Canon hooks normalize it per algorithm: defaults filled, fields the
// algorithm ignores zeroed (so cache keys stay canonical), invalid
// combinations rejected.
type Params struct {
	// B, P are the Algorithm 1 recursion parameters; C the assumed
	// neighborhood-independence bound (vertex kinds).
	B, P, C int
	// Mode is the §5 message mode of the plan-based edge algorithms.
	Mode string
	// Seed is the dist.WithSeed algorithm seed. Never canonicalized.
	Seed int64
}

// Qualities of the servable tiers, as accepted by the request quality knob.
const (
	// QualityFast is today's default behavior: the fewest-rounds tier.
	QualityFast = "fast"
	// QualityFewColors trades rounds for a measured palette near Δ.
	QualityFewColors = "fewcolors"
)

// Algorithm is one registered coloring algorithm. Kind+Name identify it;
// the optional hook sets make it servable (Canon plus the Build hook of its
// kind) and/or CLI-runnable (the Run hook of its kind).
type Algorithm struct {
	// Kind is "edge" or "vertex".
	Kind string
	// Name is the alg value on the wire and the -alg value on the CLIs.
	Name string
	// Quality is the tier a servable algorithm answers for on the request
	// quality knob (QualityFast or QualityFewColors); empty for CLI-only
	// entries.
	Quality string
	// Summary is the one-line description the generated -alg help shows.
	Summary string

	// Canon canonicalizes the service parameters. Required for servable
	// entries; it sees the shared defaults (b=2, c=2, mode=wide, c forced
	// to 0 for edge kinds) already applied.
	Canon func(p *Params) error
	// BuildEdge/BuildVertex construct the runnable algorithm for a graph and
	// return it with its palette bound for that instance. Exactly one is set
	// on a servable entry, matching Kind; the returned Algo carries both the
	// per-vertex and the compiled form, so it runs on all four engines.
	BuildEdge   func(g *graph.Graph, p Params) (dist.Algo[[]int], int, error)
	BuildVertex func(g *graph.Graph, p Params) (dist.Algo[int], int, error)

	// RunEdge/RunVertex are the CLI hooks: run the algorithm end to end on a
	// built graph and return the result plus note lines the CLI prints
	// before its legality footer.
	RunEdge   func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[[]int], []string, error)
	RunVertex func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[int], []string, error)
	// NoFooter suppresses the CLI's legality footer: the algorithm's output
	// is not a proper coloring (defective) and its notes say everything.
	NoFooter bool

	serveIndex int
}

// Servable reports whether the entry is reachable through the service.
func (a *Algorithm) Servable() bool {
	return a.Canon != nil && (a.BuildEdge != nil || a.BuildVertex != nil)
}

// ServeIndex is the entry's dense index among servable algorithms, in
// registration order: the stable slot the service's striped per-alg request
// counters and gauges use. -1 for CLI-only entries.
func (a *Algorithm) ServeIndex() int {
	if !a.Servable() {
		return -1
	}
	return a.serveIndex
}

// MaxServable bounds the number of servable algorithms; the service sizes
// its per-alg counter plane with it, so Register panics past the cap.
const MaxServable = 8

var (
	order    []*Algorithm
	index    = make(map[[2]string]*Algorithm)
	servable []*Algorithm
)

// Register adds an algorithm. It panics on duplicate (kind, name), unknown
// kind, a kind/hook mismatch, or a servable entry without a quality tier —
// registration happens in init, so a bad entry is a programming error.
func Register(a Algorithm) {
	if a.Kind != "edge" && a.Kind != "vertex" {
		panic(fmt.Sprintf("algreg: bad kind %q for %q", a.Kind, a.Name))
	}
	if a.Name == "" {
		panic("algreg: empty algorithm name")
	}
	k := [2]string{a.Kind, a.Name}
	if _, dup := index[k]; dup {
		panic(fmt.Sprintf("algreg: duplicate %s/%s", a.Kind, a.Name))
	}
	if (a.Kind == "edge" && (a.BuildVertex != nil || a.RunVertex != nil)) ||
		(a.Kind == "vertex" && (a.BuildEdge != nil || a.RunEdge != nil)) {
		panic(fmt.Sprintf("algreg: %s/%s registers hooks of the wrong kind", a.Kind, a.Name))
	}
	e := &a
	if e.Servable() {
		if e.Quality != QualityFast && e.Quality != QualityFewColors {
			panic(fmt.Sprintf("algreg: servable %s/%s needs a quality tier", a.Kind, a.Name))
		}
		if len(servable) >= MaxServable {
			panic("algreg: too many servable algorithms (raise MaxServable)")
		}
		e.serveIndex = len(servable)
		servable = append(servable, e)
	}
	order = append(order, e)
	index[k] = e
}

// Lookup finds an entry by kind and name.
func Lookup(kind, name string) (*Algorithm, bool) {
	a, ok := index[[2]string{kind, name}]
	return a, ok
}

// All returns every entry in registration order.
func All() []*Algorithm {
	out := make([]*Algorithm, len(order))
	copy(out, order)
	return out
}

// Servable returns the servable entries in ServeIndex order.
func Servable() []*Algorithm {
	out := make([]*Algorithm, len(servable))
	copy(out, servable)
	return out
}

// Resolve is the service's quality knob: it maps a request's (kind, alg,
// quality) triple to one servable entry. An explicit alg must be servable
// and, when quality is also set, match its tier; an empty alg with a quality
// picks that tier's default (the first registered servable entry of the
// kind and tier). Alg and quality both empty is an error — the caller must
// ask for something.
func Resolve(kind, name, quality string) (*Algorithm, error) {
	switch quality {
	case "", QualityFast, QualityFewColors:
	default:
		return nil, fmt.Errorf("unknown quality %q (want %s or %s)", quality, QualityFast, QualityFewColors)
	}
	if name == "" {
		if quality == "" {
			return nil, fmt.Errorf("unknown algorithm %q for kind %q", name, kind)
		}
		for _, a := range servable {
			if a.Kind == kind && a.Quality == quality {
				return a, nil
			}
		}
		return nil, fmt.Errorf("no %s algorithm with quality %q", kind, quality)
	}
	a, ok := Lookup(kind, name)
	if !ok || !a.Servable() {
		return nil, fmt.Errorf("unknown algorithm %q for kind %q", name, kind)
	}
	if quality != "" && a.Quality != quality {
		return nil, fmt.Errorf("algorithm %q has quality %q, not %q", name, a.Quality, quality)
	}
	return a, nil
}

// HelpList renders the kind's CLI-runnable names as "a|b|c", in registration
// order — the generated half of the CLIs' -alg flag usage.
func HelpList(kind string) string {
	var names []string
	for _, a := range order {
		if a.Kind != kind {
			continue
		}
		if (kind == "edge" && a.RunEdge == nil) || (kind == "vertex" && a.RunVertex == nil) {
			continue
		}
		names = append(names, a.Name)
	}
	return strings.Join(names, "|")
}

// HelpTable renders one line per CLI-runnable entry of the kind, name plus
// summary, for the CLIs' extended -alg help.
func HelpTable(kind string) string {
	var b strings.Builder
	for _, a := range order {
		if a.Kind != kind {
			continue
		}
		if (kind == "edge" && a.RunEdge == nil) || (kind == "vertex" && a.RunVertex == nil) {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %s\n", a.Name, a.Summary)
	}
	return b.String()
}
