package algreg_test

import (
	"strings"
	"testing"

	"repro/internal/algreg"
	"repro/internal/exp"
)

// TestRegistryRoundTrip: every registered algorithm is reachable back through
// the public lookup surface — Lookup by (kind, name), Resolve by (kind, name,
// quality) for servable entries, and the generated help — and the servable
// indices form a dense, stable enumeration.
func TestRegistryRoundTrip(t *testing.T) {
	all := algreg.All()
	if len(all) == 0 {
		t.Fatal("registry is empty")
	}
	for _, a := range all {
		got, ok := algreg.Lookup(a.Kind, a.Name)
		if !ok || got != a {
			t.Fatalf("Lookup(%s, %s) = %v, %v; want the registered entry", a.Kind, a.Name, got, ok)
		}
		if a.Servable() {
			r, err := algreg.Resolve(a.Kind, a.Name, a.Quality)
			if err != nil || r != a {
				t.Fatalf("Resolve(%s, %s, %s) = %v, %v", a.Kind, a.Name, a.Quality, r, err)
			}
			// Resolving by name alone is the back-compat path.
			if r, err = algreg.Resolve(a.Kind, a.Name, ""); err != nil || r != a {
				t.Fatalf("Resolve(%s, %s, \"\") = %v, %v", a.Kind, a.Name, r, err)
			}
		} else if _, err := algreg.Resolve(a.Kind, a.Name, ""); err == nil {
			t.Fatalf("CLI-only %s/%s must not resolve for serving", a.Kind, a.Name)
		}
		hasRun := a.RunEdge != nil || a.RunVertex != nil
		if inHelp := strings.Contains("|"+algreg.HelpList(a.Kind)+"|", "|"+a.Name+"|"); inHelp != hasRun {
			t.Fatalf("%s/%s: in help %v, has CLI hook %v", a.Kind, a.Name, inHelp, hasRun)
		}
	}
}

func TestServableIndices(t *testing.T) {
	servable := algreg.Servable()
	if len(servable) == 0 || len(servable) > algreg.MaxServable {
		t.Fatalf("%d servable entries, cap %d", len(servable), algreg.MaxServable)
	}
	for i, a := range servable {
		if a.ServeIndex() != i {
			t.Fatalf("%s/%s at position %d has ServeIndex %d", a.Kind, a.Name, i, a.ServeIndex())
		}
		if a.Quality != algreg.QualityFast && a.Quality != algreg.QualityFewColors {
			t.Fatalf("servable %s/%s has quality %q", a.Kind, a.Name, a.Quality)
		}
	}
}

// TestResolveQualityKnob pins the quality-knob contract: empty alg plus a
// quality picks that tier's first servable entry of the kind; mismatched
// (alg, quality) pairs and unknown tiers are errors; both empty is the
// historical unknown-algorithm error.
func TestResolveQualityKnob(t *testing.T) {
	a, err := algreg.Resolve("edge", "", algreg.QualityFewColors)
	if err != nil || a.Name != "fewcolors" {
		t.Fatalf("edge fewcolors default = %v, %v", a, err)
	}
	a, err = algreg.Resolve("edge", "", algreg.QualityFast)
	if err != nil || a.Name != "be" {
		t.Fatalf("edge fast default = %v, %v", a, err)
	}
	a, err = algreg.Resolve("vertex", "", algreg.QualityFast)
	if err != nil || a.Name != "be" {
		t.Fatalf("vertex fast default = %v, %v", a, err)
	}
	for _, bad := range []struct{ kind, name, quality string }{
		{"edge", "", ""},
		{"edge", "nope", ""},
		{"edge", "rand", ""},                      // CLI-only
		{"edge", "be", algreg.QualityFewColors},   // tier mismatch
		{"edge", "fewcolors", algreg.QualityFast}, // tier mismatch
		{"edge", "", "best"},                      // unknown tier
		{"vertex", "", algreg.QualityFewColors},   // no vertex fewcolors tier yet
		{"vertex", "fewcolors", ""},               // not registered
	} {
		if _, err := algreg.Resolve(bad.kind, bad.name, bad.quality); err == nil {
			t.Fatalf("Resolve(%s, %q, %q): want error", bad.kind, bad.name, bad.quality)
		}
	}
}

// TestServableBuild: every servable entry builds a runnable algorithm with a
// positive palette bound on a small graph, after Canon fills its defaults —
// the registry contract the service relies on.
func TestServableBuild(t *testing.T) {
	g, err := (exp.GraphSpec{Family: "gnm", N: 30, M: 80, Seed: 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algreg.Servable() {
		p := algreg.Params{B: 2, C: 2, Mode: "wide"}
		if a.Kind == "edge" {
			p.C = 0
		}
		if err := a.Canon(&p); err != nil {
			t.Fatalf("%s/%s: Canon: %v", a.Kind, a.Name, err)
		}
		var palette int
		if a.Kind == "edge" {
			algo, pal, err := a.BuildEdge(g, p)
			if err != nil {
				t.Fatalf("%s/%s: BuildEdge: %v", a.Kind, a.Name, err)
			}
			if algo.Vertex == nil || algo.Compiled == nil {
				t.Fatalf("%s/%s: algo missing a form (vertex %v, compiled %v)", a.Kind, a.Name, algo.Vertex != nil, algo.Compiled != nil)
			}
			palette = pal
		} else {
			algo, pal, err := a.BuildVertex(g, p)
			if err != nil {
				t.Fatalf("%s/%s: BuildVertex: %v", a.Kind, a.Name, err)
			}
			if algo.Vertex == nil || algo.Compiled == nil {
				t.Fatalf("%s/%s: algo missing a form", a.Kind, a.Name)
			}
			palette = pal
		}
		if palette <= 0 {
			t.Fatalf("%s/%s: palette bound %d on a non-empty graph", a.Kind, a.Name, palette)
		}
	}
}
