package algreg

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/fewcolors"
	"repro/internal/graph"
	"repro/internal/panconesi"
)

// msgMode mirrors the CLIs' historical leniency: anything but "short" is
// wide. The servable Canon hooks validate strictly before this is reached.
func msgMode(mode string) edgecolor.MsgMode {
	if mode == "short" {
		return edgecolor.Short
	}
	return edgecolor.Wide
}

// zeroPlan cancels the plan parameters an algorithm ignores, keeping its
// cache keys canonical across differently-phrased requests.
func zeroPlan(p *Params) error {
	p.Mode, p.P, p.B = "", 0, 0
	return nil
}

func init() {
	Register(Algorithm{
		Kind: "edge", Name: "be", Quality: QualityFast,
		Summary: "the paper's §5 legal edge coloring (plan-driven, O(Δ^ε)-ish rounds)",
		Canon: func(p *Params) error {
			if p.P == 0 {
				p.P = 6
			}
			if p.Mode != "wide" && p.Mode != "short" {
				return fmt.Errorf("unknown mode %q (want wide or short)", p.Mode)
			}
			return nil
		},
		BuildEdge: func(g *graph.Graph, p Params) (dist.Algo[[]int], int, error) {
			pl, err := core.AutoPlan(g.MaxDegree(), 2, p.B, p.P, true)
			if err != nil {
				return dist.Algo[[]int]{}, 0, err
			}
			algo, err := edgecolor.LegalEdgeProcess(g.MaxDegree(), pl, msgMode(p.Mode))
			if err != nil {
				return dist.Algo[[]int]{}, 0, err
			}
			return dist.Interpret(algo), pl.TotalPalette(), nil
		},
		RunEdge: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[[]int], []string, error) {
			pl, err := core.AutoPlan(g.MaxDegree(), 2, p.B, p.P, true)
			if err != nil {
				return nil, nil, err
			}
			res, err := edgecolor.LegalEdgeColoring(g, pl, msgMode(p.Mode), opts...)
			return res, []string{fmt.Sprintf("plan:  %v", pl)}, err
		},
	})

	Register(Algorithm{
		Kind: "edge", Name: "pr", Quality: QualityFast,
		Summary: "Panconesi–Rizzi 2Δ-1 edge coloring (O(Δ + log* n) rounds)",
		Canon:   zeroPlan,
		BuildEdge: func(g *graph.Graph, p Params) (dist.Algo[[]int], int, error) {
			delta := g.MaxDegree()
			return dist.Interpret(func(v dist.Process) []int {
				return panconesi.EdgeColorStep(v, nil, delta)
			}), 2*delta - 1, nil
		},
		RunEdge: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[[]int], []string, error) {
			res, err := panconesi.EdgeColoring(g, opts...)
			return res, nil, err
		},
	})

	Register(Algorithm{
		Kind: "edge", Name: "greedy", Quality: QualityFast,
		Summary: "sequential-order greedy baseline (2Δ-1 colors)",
		Canon:   zeroPlan,
		BuildEdge: func(g *graph.Graph, p Params) (dist.Algo[[]int], int, error) {
			return baseline.GreedyEdgeAlgo(), 2*g.MaxDegree() - 1, nil
		},
		RunEdge: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[[]int], []string, error) {
			res, err := baseline.GreedyEdgeColoring(g, opts...)
			return res, nil, err
		},
	})

	Register(Algorithm{
		Kind: "edge", Name: "fewcolors", Quality: QualityFewColors,
		Summary: "Δ+o(Δ) measured palette: PR base + Kempe vacate/descent sweeps",
		Canon:   zeroPlan,
		BuildEdge: func(g *graph.Graph, p Params) (dist.Algo[[]int], int, error) {
			return fewcolors.Algo(), fewcolors.PaletteBound(g), nil
		},
		RunEdge: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[[]int], []string, error) {
			res, err := dist.RunAlgo(g, fewcolors.Algo(), opts...)
			return res, nil, err
		},
	})

	Register(Algorithm{
		Kind: "edge", Name: "rand",
		Summary: "randomized trial baseline (keeps the best of seeded trials)",
		RunEdge: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[[]int], []string, error) {
			res, err := baseline.RandomizedTrialEdgeColoring(g, opts...)
			return res, nil, err
		},
	})

	Register(Algorithm{
		Kind: "edge", Name: "tradeoff",
		Summary: "§6 colors-vs-rounds tradeoff on half-degree classes",
		RunEdge: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[[]int], []string, error) {
			res, err := edgecolor.TradeoffEdgeColoring(g, p.B, p.P, g.MaxDegree()/2, msgMode(p.Mode), opts...)
			return res, nil, err
		},
	})

	Register(Algorithm{
		Kind: "edge", Name: "cor62",
		Summary: "Corollary 6.2 randomized edge coloring (seeded restarts)",
		RunEdge: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[[]int], []string, error) {
			res, err := edgecolor.RandomizedEdgeColoring(g, p.B, p.P, 8, msgMode(p.Mode), opts...)
			return res, nil, err
		},
	})

	Register(Algorithm{
		Kind: "vertex", Name: "be", Quality: QualityFast,
		Summary: "Procedure Legal-Color under bounded neighborhood independence",
		Canon: func(p *Params) error {
			if p.P == 0 {
				p.P = 4*p.C + 1
			}
			p.Mode = ""
			return nil
		},
		BuildVertex: func(g *graph.Graph, p Params) (dist.Algo[int], int, error) {
			delta := g.MaxDegree()
			if delta == 0 {
				// Isolated vertices: the 1-coloring, still a real run so the
				// accounting pipeline stays uniform.
				palette := 0
				if g.N() > 0 {
					palette = 1
				}
				return dist.Interpret(func(v dist.Process) int { return 1 }), palette, nil
			}
			pl, err := core.AutoPlan(delta, p.C, p.B, p.P, false)
			if err != nil {
				return dist.Algo[int]{}, 0, err
			}
			algo, err := core.LegalColorProcess(g.N(), delta, pl, core.StartIDs)
			if err != nil {
				return dist.Algo[int]{}, 0, err
			}
			return dist.Interpret(algo), pl.TotalPalette(), nil
		},
		RunVertex: runLegal(core.StartIDs),
	})

	Register(Algorithm{
		Kind: "vertex", Name: "legal",
		Summary:   "Procedure Legal-Color seeded by vertex identifiers (alias of be)",
		RunVertex: runLegal(core.StartIDs),
	})

	Register(Algorithm{
		Kind: "vertex", Name: "legalaux",
		Summary:   "Procedure Legal-Color seeded by an auxiliary O(Δ²)-coloring",
		RunVertex: runLegal(core.StartAux),
	})

	Register(Algorithm{
		Kind: "vertex", Name: "defective", NoFooter: true,
		Summary: "Procedure Defective-Color: p²-coloring with bounded defect",
		RunVertex: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[int], []string, error) {
			res, err := core.DefectiveColoring(g, p.C, p.B, p.P, opts...)
			if err != nil {
				return nil, nil, err
			}
			bound := core.DefectiveColoringBound(g.MaxDegree(), p.C, p.B, p.P)
			defect := graph.VertexDefect(g, res.Outputs)
			return res, []string{
				fmt.Sprintf("defective %d-coloring: defect %d (bound %d), product defect·p = %d vs Δ = %d",
					p.P, defect, bound, defect*p.P, g.MaxDegree()),
				fmt.Sprintf("cost: %v", res.Stats),
			}, nil
		},
	})

	Register(Algorithm{
		Kind: "vertex", Name: "tradeoff",
		Summary: "§6 tradeoff coloring on half-degree classes",
		RunVertex: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[int], []string, error) {
			classDeg := g.MaxDegree() / 2
			if classDeg < 2 {
				classDeg = g.MaxDegree()
			}
			res, err := core.TradeoffColoring(g, p.C, p.B, p.P, classDeg, opts...)
			return res, nil, err
		},
	})

	Register(Algorithm{
		Kind: "vertex", Name: "randomized",
		Summary: "randomized coloring with seeded restarts (κ = 8)",
		RunVertex: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[int], []string, error) {
			res, err := core.RandomizedColoring(g, p.C, p.B, p.P, 8, opts...)
			return res, nil, err
		},
	})

	Register(Algorithm{
		Kind: "vertex", Name: "greedy", Quality: QualityFast,
		Summary: "sequential-order greedy baseline (Δ+1 colors)",
		Canon: func(p *Params) error {
			p.Mode, p.P, p.B, p.C = "", 0, 0, 0
			return nil
		},
		BuildVertex: func(g *graph.Graph, p Params) (dist.Algo[int], int, error) {
			return baseline.GreedyVertexAlgo(), g.MaxDegree() + 1, nil
		},
		RunVertex: func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[int], []string, error) {
			res, err := baseline.GreedyVertexColoring(g, opts...)
			return res, nil, err
		},
	})
}

// runLegal builds the Legal-Color CLI hook for a start mode: plan note plus
// the full run.
func runLegal(mode core.Mode) func(*graph.Graph, Params, ...dist.Option) (*dist.Result[int], []string, error) {
	return func(g *graph.Graph, p Params, opts ...dist.Option) (*dist.Result[int], []string, error) {
		pl, err := core.AutoPlan(g.MaxDegree(), p.C, p.B, p.P, false)
		if err != nil {
			return nil, nil, err
		}
		res, err := core.LegalColoring(g, pl, mode, opts...)
		return res, []string{fmt.Sprintf("plan:  %v", pl)}, err
	}
}
