package baseline

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// RandomizedTrialEdgeColoring is the classic randomized (2Δ−1)-edge-coloring
// by repeated trials, the Table-2 stand-in for the randomized competitors
// [29],[18] (substitution N2): in every iteration, the smaller-ID endpoint
// of each uncolored edge proposes a uniformly random color among those still
// free at its side; a proposal sticks iff it is unique among this round's
// proposals at both endpoints and free at both endpoints. Each iteration
// takes 2 rounds and colors each edge with constant probability, so the
// algorithm finishes in Θ(log m) iterations with high probability — round
// complexity independent of Δ but logarithmic in the graph size, which is
// exactly the qualitative profile Table 2 contrasts with the paper's
// O(log Δ)+log* n deterministic bound.
func RandomizedTrialEdgeColoring(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], error) {
	return dist.Run(g, trialEdgeVertex, opts...)
}

func trialEdgeVertex(v dist.Process) []int {
	deg, id := v.Deg(), v.ID()
	palette := 2*v.MaxDegree() - 1
	if palette < 1 {
		palette = 1
	}
	colors := make([]int, deg)
	used := make([]bool, palette+2)
	remaining := deg
	rng := v.Rand()

	for remaining > 0 {
		// Round 1: owners draw and send proposals.
		proposals := make([]int, deg)
		out := make([][]byte, deg)
		for p := 0; p < deg; p++ {
			if colors[p] != 0 || id > v.NeighborID(p) {
				continue
			}
			c := drawFree(rng, used, palette)
			proposals[p] = c
			out[p] = wire.EncodeInts(c)
		}
		in := v.Round(out)
		for p := 0; p < deg; p++ {
			if colors[p] == 0 && id > v.NeighborID(p) && in[p] != nil {
				vals, err := wire.DecodeInts(in[p], 1)
				if err != nil {
					panic("baseline: bad proposal: " + err.Error())
				}
				proposals[p] = vals[0]
			}
		}
		// Local verdicts: a proposal survives at this vertex iff it is
		// unique among this round's proposals here and not already used.
		count := make(map[int]int, deg)
		for p := 0; p < deg; p++ {
			if colors[p] == 0 && proposals[p] != 0 {
				count[proposals[p]]++
			}
		}
		// Round 2: exchange verdicts (1 = ok on my side).
		out2 := make([][]byte, deg)
		myOK := make([]bool, deg)
		for p := 0; p < deg; p++ {
			if colors[p] == 0 && proposals[p] != 0 {
				ok := count[proposals[p]] == 1 && !used[proposals[p]]
				myOK[p] = ok
				if ok {
					out2[p] = wire.EncodeInts(1)
				} else {
					out2[p] = wire.EncodeInts(0)
				}
			}
		}
		in2 := v.Round(out2)
		for p := 0; p < deg; p++ {
			if colors[p] != 0 || proposals[p] == 0 || in2[p] == nil {
				continue
			}
			vals, err := wire.DecodeInts(in2[p], 1)
			if err != nil {
				panic("baseline: bad verdict: " + err.Error())
			}
			if myOK[p] && vals[0] == 1 {
				colors[p] = proposals[p]
				used[proposals[p]] = true
				remaining--
			}
		}
	}
	return colors
}

// drawFree samples a uniform color among {1..palette} minus the used set.
// At most deg-1 <= palette-... colors are used while an edge remains, so a
// free color always exists.
func drawFree(rng interface{ Intn(int) int }, used []bool, palette int) int {
	free := 0
	for c := 1; c <= palette; c++ {
		if !used[c] {
			free++
		}
	}
	k := rng.Intn(free)
	for c := 1; c <= palette; c++ {
		if !used[c] {
			if k == 0 {
				return c
			}
			k--
		}
	}
	panic("baseline: no free color")
}
