package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/graph"
)

func TestGreedyVertexColoring(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.GNM(100, 500, 1)},
		{"clique", graph.Complete(10)},
		{"path", graph.Path(50)},
		{"tree", graph.RandomTree(80, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := GreedyVertexColoring(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckVertexColoring(tc.g, res.Outputs); err != nil {
				t.Fatal(err)
			}
			if mc := graph.MaxColor(res.Outputs); mc > tc.g.MaxDegree()+1 {
				t.Fatalf("palette %d exceeds Δ+1", mc)
			}
		})
	}
}

func TestGreedyEdgeColoring(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.GNM(60, 300, 3)},
		{"clique", graph.Complete(9)},
		{"star", graph.Star(20)},
		{"regular", graph.RandomRegular(30, 4, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := GreedyEdgeColoring(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			colors, err := graph.MergePortColors(tc.g, res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckEdgeColoring(tc.g, colors); err != nil {
				t.Fatal(err)
			}
			if mc := graph.MaxColor(colors); mc > 2*tc.g.MaxDegree()-1 {
				t.Fatalf("palette %d exceeds 2Δ-1", mc)
			}
		})
	}
}

func TestGreedyEdgeColoringProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(30)
		m := rng.Intn(2*n + 1)
		g := graph.GNM(n, m, seed)
		if g.M() == 0 {
			return true
		}
		res, err := GreedyEdgeColoring(g)
		if err != nil {
			return false
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return false
		}
		return graph.CheckEdgeColoring(g, colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedTrialEdgeColoring(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := graph.GNM(80, 480, seed)
		res, err := RandomizedTrialEdgeColoring(g, dist.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckEdgeColoring(g, colors); err != nil {
			t.Fatal(err)
		}
		if mc := graph.MaxColor(colors); mc > 2*g.MaxDegree()-1 {
			t.Fatalf("palette %d exceeds 2Δ-1", mc)
		}
	}
}

func TestRandomizedTrialReproducible(t *testing.T) {
	g := graph.GNM(40, 200, 9)
	r1, err := RandomizedTrialEdgeColoring(g, dist.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RandomizedTrialEdgeColoring(g, dist.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("same seed, different stats: %v vs %v", r1.Stats, r2.Stats)
	}
}

func TestHPartitionColoring(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.GNM(120, 600, 5)},
		{"tree", graph.RandomTree(150, 6)},
		{"linegraph", graph.GNM(40, 160, 7).LineGraph()},
		{"clique", graph.Complete(12)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			theta := DefaultTheta(g)
			res, err := HPartitionColoring(g, theta)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
				t.Fatal(err)
			}
			if mc := graph.MaxColor(res.Outputs); mc > HPartitionPalette(g, theta) {
				t.Fatalf("palette %d exceeds bound %d", mc, HPartitionPalette(g, theta))
			}
		})
	}
}

func TestHPartitionRoundsScaleWithLogN(t *testing.T) {
	// Rounds should grow with log n for fixed degree structure: compare
	// trees of different sizes (arboricity 1).
	small := graph.RandomTree(1<<7, 1)
	big := graph.RandomTree(1<<11, 1)
	rs, err := HPartitionColoring(small, DefaultTheta(small))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := HPartitionColoring(big, DefaultTheta(big))
	if err != nil {
		t.Fatal(err)
	}
	if rb.Stats.Rounds <= rs.Stats.Rounds {
		t.Fatalf("rounds did not grow with n: %d (n=128) vs %d (n=2048)",
			rs.Stats.Rounds, rb.Stats.Rounds)
	}
}

func TestHPartitionRejectsBadTheta(t *testing.T) {
	if _, err := HPartitionColoring(graph.Cycle(10), 0); err == nil {
		t.Error("theta=0 accepted")
	}
	if _, err := ArbColoring(graph.Cycle(10), 0); err == nil {
		t.Error("arb theta=0 accepted")
	}
}

func TestArbColoringPaletteThetaPlusOne(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"tree", graph.RandomTree(120, 11)},
		{"gnm", graph.GNM(100, 300, 12)},
		{"linegraph", graph.GNM(30, 90, 13).LineGraph()},
		{"clique", graph.Complete(10)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			theta := DefaultTheta(g)
			res, err := ArbColoring(g, theta)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
				t.Fatal(err)
			}
			if mc := graph.MaxColor(res.Outputs); mc > theta+1 {
				t.Fatalf("palette %d exceeds theta+1 = %d", mc, theta+1)
			}
		})
	}
}

func TestArbVsHPartitionPalettes(t *testing.T) {
	// Arb-Color trades rounds for a much smaller palette than the parallel
	// per-level Linial coloring.
	g := graph.GNM(150, 450, 14)
	theta := DefaultTheta(g)
	arb, err := ArbColoring(g, theta)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := HPartitionColoring(g, theta)
	if err != nil {
		t.Fatal(err)
	}
	arbColors := graph.CountColors(arb.Outputs)
	hpColors := graph.CountColors(hp.Outputs)
	if arbColors >= hpColors {
		t.Fatalf("Arb palette %d not smaller than HP %d", arbColors, hpColors)
	}
	if arb.Stats.Rounds <= hp.Stats.Rounds {
		t.Fatalf("Arb rounds %d should exceed HP %d (the tradeoff)",
			arb.Stats.Rounds, hp.Stats.Rounds)
	}
}
