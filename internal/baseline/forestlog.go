package baseline

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/reduce"
	"repro/internal/wire"
)

// HPartitionColoring is the Table-1 stand-in for the forest-decomposition
// algorithms of [3],[5] (substitution N3 in DESIGN.md). It computes the
// H-partition of [3]: peel, for O(log n) rounds, every vertex whose residual
// degree is at most theta into the current level; for theta ≥ (2+ε)·a(G)
// at least an ε/(2+ε) fraction of the remaining vertices peels each round,
// so the number of levels is O(log n) — and by the Ω(log n / log a) lower
// bound of [3] this dependence is inherent to the approach, which is the
// very reason the paper's log n–free algorithms win Table 1 at large n.
// The level subgraphs (each of degree ≤ theta) are then Linial-colored in
// parallel with disjoint palettes.
//
// Guarantees: palette ≤ levels·O(theta²); rounds = levels + O(log* n).
func HPartitionColoring(g *graph.Graph, theta int, opts ...dist.Option) (*dist.Result[int], error) {
	if theta < 1 {
		return nil, fmt.Errorf("baseline: theta=%d must be positive", theta)
	}
	n := g.N()
	maxLevels := log2(n) + 2
	// Per-level palette: the Linial fixed point for degree bound theta.
	steps := linial.LegalSchedule(n, theta)
	perLevel := linial.FinalPalette(n, steps)
	res, err := dist.Run(g, func(v dist.Process) int {
		level := hPartition(v, theta, maxLevels)
		// Color the level subgraph: neighbors in the same level only.
		same := sameLevelMask(v, level)
		c := linial.RunChain(steps, v.ID(), func(own int) []int {
			return maskedInts(v, same, own)
		})
		return (level-1)*perLevel + c
	}, opts...)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// HPartitionPalette returns the palette bound of HPartitionColoring.
func HPartitionPalette(g *graph.Graph, theta int) int {
	n := g.N()
	steps := linial.LegalSchedule(n, theta)
	return (log2(n) + 2) * linial.FinalPalette(n, steps)
}

// hPartition peels the vertex into its H-partition level: one round per
// level, run in lockstep by all vertices for exactly maxLevels rounds (the
// theory's level bound — distributed termination detection would cost
// diameter time, and the fixed schedule is what [3] prescribes). A vertex
// retires at the first level where at most theta of its neighbors are still
// active, announcing the retirement to the survivors.
func hPartition(v dist.Process, theta, maxLevels int) int {
	deg := v.Deg()
	activeNbrs := deg
	active := make([]bool, deg)
	for p := range active {
		active[p] = true
	}
	myLevel := 0
	for l := 1; l <= maxLevels; l++ {
		out := make([][]byte, deg)
		if myLevel == 0 && activeNbrs <= theta {
			myLevel = l
			msg := wire.EncodeInts(l)
			for p := 0; p < deg; p++ {
				if active[p] {
					out[p] = msg
				}
			}
		}
		in := v.Round(out)
		for p := 0; p < deg; p++ {
			if !active[p] || in[p] == nil {
				continue
			}
			if _, err := wire.DecodeInts(in[p], 1); err != nil {
				panic("baseline: bad level message: " + err.Error())
			}
			active[p] = false
			activeNbrs--
		}
	}
	if myLevel == 0 {
		// The peeling argument guarantees termination within maxLevels when
		// theta >= 4·degeneracy (DefaultTheta); flag misuse loudly.
		panic(fmt.Sprintf("baseline: vertex id %d not peeled after %d levels (theta=%d too small)",
			v.ID(), maxLevels, theta))
	}
	return myLevel
}

// sameLevelMask exchanges levels once and masks the same-level ports.
func sameLevelMask(v dist.Process, level int) []bool {
	deg := v.Deg()
	in := v.Broadcast(wire.EncodeInts(level))
	same := make([]bool, deg)
	for p := 0; p < deg; p++ {
		if in[p] == nil {
			continue
		}
		vals, err := wire.DecodeInts(in[p], 1)
		if err != nil {
			panic("baseline: bad level message: " + err.Error())
		}
		same[p] = vals[0] == level
	}
	return same
}

func maskedInts(v dist.Process, mask []bool, own int) []int {
	deg := v.Deg()
	out := make([][]byte, deg)
	msg := wire.EncodeInts(own)
	for p := 0; p < deg; p++ {
		if mask[p] {
			out[p] = msg
		}
	}
	in := v.Round(out)
	var nbrs []int
	for p := 0; p < deg; p++ {
		if mask[p] && in[p] != nil {
			vals, err := wire.DecodeInts(in[p], 1)
			if err != nil {
				panic("baseline: bad color message: " + err.Error())
			}
			nbrs = append(nbrs, vals[0])
		}
	}
	return nbrs
}

// ArbColoring is the palette-efficient member of the [3]/[5] forest-
// decomposition family (Procedure Arb-Color of [3]): after the H-partition,
// levels are processed from the last down. When a vertex of level ℓ picks
// its color, the only colored neighbors are those of level ≥ ℓ (or same
// level, earlier schedule slot) — at most theta of them, because exactly
// those neighbors were still active at the vertex's retirement — so the
// palette {1..theta+1} always suffices: O(a) colors in total. Within a
// level, vertices act in the slot order of a (theta+1)-coloring of the
// level subgraph (Linial + KW merging), one independent slot per round.
// Rounds: Θ(levels·theta) after the per-level coloring — the inherent
// Θ(log n) factor of the forest-decomposition approach, with a palette
// matching [3] rather than the θ²·log n of HPartitionColoring.
func ArbColoring(g *graph.Graph, theta int, opts ...dist.Option) (*dist.Result[int], error) {
	if theta < 1 {
		return nil, fmt.Errorf("baseline: theta=%d must be positive", theta)
	}
	n := g.N()
	maxLevels := log2(n) + 2
	steps := linial.LegalSchedule(n, theta)
	linialK := linial.FinalPalette(n, steps)
	classes := theta + 1
	return dist.Run(g, func(v dist.Process) int {
		level := hPartition(v, theta, maxLevels)
		nbrLevel := exchangeOnce(v, level)
		same := make([]bool, v.Deg())
		for p := range same {
			same[p] = nbrLevel[p] == level
		}
		// Slot order within the level subgraph: Linial to O(theta²), then
		// KW merging down to theta+1 slots.
		ord := linial.RunChain(steps, v.ID(), func(own int) []int {
			return maskedInts(v, same, own)
		})
		ord = reduce.KWReduceColors(v, ord, linialK, classes, same)
		// Process levels from last to first; within a level, Linial classes
		// one round each. Every vertex participates in every round
		// (lockstep); only the scheduled class picks its final color.
		myColor := 0
		nbrColor := make([]int, v.Deg())
		for l := maxLevels; l >= 1; l-- {
			for cls := 1; cls <= classes; cls++ {
				pick := level == l && ord == cls
				if pick {
					myColor = arbFree(nbrColor, theta+1)
				}
				out := make([][]byte, v.Deg())
				if pick {
					msg := wire.EncodeInts(myColor)
					for p := range out {
						out[p] = msg
					}
				}
				in := v.Round(out)
				for p := 0; p < v.Deg(); p++ {
					if in[p] != nil {
						vals, err := wire.DecodeInts(in[p], 1)
						if err != nil {
							panic("baseline: bad color message: " + err.Error())
						}
						nbrColor[p] = vals[0]
					}
				}
			}
		}
		if myColor == 0 {
			panic("baseline: vertex left uncolored (level/class bookkeeping bug)")
		}
		return myColor
	}, opts...)
}

// arbFree returns the smallest color in {1..limit} unused by neighbors.
func arbFree(nbrColor []int, limit int) int {
	used := make([]bool, limit+1)
	for _, c := range nbrColor {
		if c >= 1 && c <= limit {
			used[c] = true
		}
	}
	for c := 1; c <= limit; c++ {
		if !used[c] {
			return c
		}
	}
	panic("baseline: no free color; theta bound violated")
}

// exchangeOnce broadcasts one integer and returns the per-port replies.
func exchangeOnce(v dist.Process, x int) []int {
	in := v.Broadcast(wire.EncodeInts(x))
	out := make([]int, v.Deg())
	for p := range out {
		if in[p] == nil {
			continue
		}
		vals, err := wire.DecodeInts(in[p], 1)
		if err != nil {
			panic("baseline: bad message: " + err.Error())
		}
		out[p] = vals[0]
	}
	return out
}

// DefaultTheta returns a peeling threshold that terminates within
// log2(n)+2 levels: 4·(degeneracy+1) ≥ 4·a(G), so at least half of the
// remaining vertices peel each level (2m_H/theta ≤ 2a·n_H/4a = n_H/2). The
// degeneracy is computed centrally here; a distributed deployment would use
// global knowledge of the arboricity, as [3] assumes.
func DefaultTheta(g *graph.Graph) int {
	_, degeneracy := graph.ArboricityBounds(g)
	return 4 * (degeneracy + 1)
}

func log2(n int) int {
	l := 0
	for ; n > 1; n >>= 1 {
		l++
	}
	return l
}
