package baseline

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// compiledFamilies is the generator zoo the compiled greedy forms are swept
// over: every family the dist property tests use, at sizes where the greedy
// round structure (long ID chains, stars, dense cores) differs meaningfully.
func compiledFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":       graph.Path(17),
		"cycle":      graph.Cycle(19),
		"complete":   graph.Complete(12),
		"bipartite":  graph.CompleteBipartite(5, 9),
		"star":       graph.Star(14),
		"gnm":        graph.GNM(80, 300, 3),
		"grid":       graph.Grid(8, 7),
		"hypercube":  graph.Hypercube(5),
		"tree":       graph.RandomTree(40, 5),
		"linegraph":  graph.GNM(30, 90, 2).LineGraph(),
		"shuffled":   graph.ShuffledIDs(graph.GNM(60, 200, 1), 4),
		"isolated":   graph.NewBuilder(7).Build(),
		"singleton":  graph.NewBuilder(1).Build(),
		"mixed-deg0": mixedWithIsolated(),
	}
}

// mixedWithIsolated is a graph with both a connected core and isolated
// vertices, exercising the deg-0 paths of the compiled forms.
func mixedWithIsolated() *graph.Graph {
	b := graph.NewBuilder(12)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}, {5, 6}} {
		_ = b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// TestGreedyVertexCompiledFamilies: the compiled greedy vertex coloring is
// byte-identical (Outputs and Stats) to the scheduled form on every family
// and seed, and legal.
func TestGreedyVertexCompiledFamilies(t *testing.T) {
	for name, g := range compiledFamilies() {
		for seed := int64(0); seed < 2; seed++ {
			want, err := dist.Run(g, GreedyVertexProcess, dist.WithSeed(seed), dist.WithEngine(dist.Lockstep))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, err := dist.RunAlgo(g, GreedyVertexAlgo(), dist.WithSeed(seed), dist.WithEngine(dist.Compiled))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(got.Outputs, want.Outputs) {
				t.Fatalf("%s seed %d: compiled greedy vertex colors diverge", name, seed)
			}
			if got.Stats != want.Stats {
				t.Fatalf("%s seed %d: stats diverge: compiled %v, lockstep %v", name, seed, got.Stats, want.Stats)
			}
			if g.M() > 0 {
				if err := graph.CheckVertexColoring(g, got.Outputs); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		}
	}
}

// TestGreedyEdgeCompiledFamilies: same sweep for the compiled greedy edge
// coloring.
func TestGreedyEdgeCompiledFamilies(t *testing.T) {
	for name, g := range compiledFamilies() {
		for seed := int64(0); seed < 2; seed++ {
			want, err := dist.Run(g, GreedyEdgeProcess, dist.WithSeed(seed), dist.WithEngine(dist.Lockstep))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, err := dist.RunAlgo(g, GreedyEdgeAlgo(), dist.WithSeed(seed), dist.WithEngine(dist.Compiled))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(got.Outputs, want.Outputs) {
				t.Fatalf("%s seed %d: compiled greedy edge colors diverge\n got %v\nwant %v",
					name, seed, got.Outputs, want.Outputs)
			}
			if got.Stats != want.Stats {
				t.Fatalf("%s seed %d: stats diverge: compiled %v, lockstep %v", name, seed, got.Stats, want.Stats)
			}
			colors, err := graph.MergePortColors(g, got.Outputs)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := graph.CheckEdgeColoring(g, colors); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// TestGreedyCompiledAgainstAllEngines: the compiled forms agree with every
// scheduler, not just Lockstep, on a representative dense instance.
func TestGreedyCompiledAgainstAllEngines(t *testing.T) {
	g := graph.GNM(150, 900, 11)
	vc, err := dist.RunAlgo(g, GreedyVertexAlgo(), dist.WithEngine(dist.Compiled))
	if err != nil {
		t.Fatal(err)
	}
	ec, err := dist.RunAlgo(g, GreedyEdgeAlgo(), dist.WithEngine(dist.Compiled))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []dist.Engine{dist.Goroutines, dist.Lockstep, dist.Sharded} {
		vw, err := dist.Run(g, GreedyVertexProcess, dist.WithEngine(e))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(vc.Outputs, vw.Outputs) || vc.Stats != vw.Stats {
			t.Fatalf("vertex: compiled vs %v: %v vs %v", e, vc.Stats, vw.Stats)
		}
		ew, err := dist.Run(g, GreedyEdgeProcess, dist.WithEngine(e))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ec.Outputs, ew.Outputs) || ec.Stats != ew.Stats {
			t.Fatalf("edge: compiled vs %v: %v vs %v", e, ec.Stats, ew.Stats)
		}
	}
}

// TestGreedyCompiledRoundCap: the closed-form Stats replay reproduces the
// scheduler's round-cap error — including the partial Stats in the error
// text — when the greedy chain outruns the cap.
func TestGreedyCompiledRoundCap(t *testing.T) {
	g := graph.Path(40) // greedy vertex needs ~n rounds on an ID-ordered path
	_, werr := dist.Run(g, GreedyVertexProcess, dist.WithEngine(dist.Lockstep), dist.WithMaxRounds(5))
	_, gerr := dist.RunAlgo(g, GreedyVertexAlgo(), dist.WithEngine(dist.Compiled), dist.WithMaxRounds(5))
	if werr == nil || gerr == nil {
		t.Fatalf("want round-cap errors, got lockstep %v, compiled %v", werr, gerr)
	}
	if gerr.Error() != werr.Error() {
		t.Fatalf("cap error text diverges:\ncompiled: %v\nlockstep: %v", gerr, werr)
	}
	if !strings.Contains(gerr.Error(), "round cap 5") {
		t.Fatalf("err = %v", gerr)
	}

	_, ewerr := dist.Run(g, GreedyEdgeProcess, dist.WithEngine(dist.Lockstep), dist.WithMaxRounds(5))
	_, egerr := dist.RunAlgo(g, GreedyEdgeAlgo(), dist.WithEngine(dist.Compiled), dist.WithMaxRounds(5))
	if ewerr == nil || egerr == nil {
		t.Fatalf("want round-cap errors, got lockstep %v, compiled %v", ewerr, egerr)
	}
	if egerr.Error() != ewerr.Error() {
		t.Fatalf("edge cap error text diverges:\ncompiled: %v\nlockstep: %v", egerr, ewerr)
	}
}
