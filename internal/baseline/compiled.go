package baseline

import (
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Compiled forms of the greedy baselines (dist.CompiledAlgo): the same
// ID-priority colorings computed as flat passes over the CSR arrays, with
// Stats reconstructed through dist.Tally so Outputs and Stats stay
// byte-identical to the per-vertex forms under every engine. These are the
// service's hot paths — the greedy oracle runs once per cached graph and
// once per legality check — so they are worth hand-flattening; the
// blocking-style pipelines go through dist.CompileProcess instead.

// GreedyVertexAlgo bundles GreedyVertexProcess with its compiled form.
func GreedyVertexAlgo() dist.Algo[int] {
	return dist.Algo[int]{Vertex: GreedyVertexProcess, Compiled: greedyVertexCompiled{}}
}

// GreedyEdgeAlgo bundles GreedyEdgeProcess with its compiled form.
func GreedyEdgeAlgo() dist.Algo[[]int] {
	return dist.Algo[[]int]{Vertex: GreedyEdgeProcess, Compiled: greedyEdgeCompiled{}}
}

// greedyVertexCompiled computes the ID-priority vertex coloring in one sweep
// over the vertices in increasing-ID order. The round structure of the
// per-vertex form is closed-form: vertex v broadcasts its color in round
// t(v) = 1 + max t(u) over smaller-ID neighbors (1 with none), and calls
// Round exactly t(v) times. Stats are replayed round by round through the
// Tally so a tripped round cap reproduces the scheduler's partial accounting
// exactly.
type greedyVertexCompiled struct{}

func (greedyVertexCompiled) RunCompiled(g *graph.Graph, env dist.CompiledEnv, out []int) (dist.Stats, error) {
	n := g.N()
	byID := make([]int32, n)
	for v := range byID {
		byID[v] = int32(v)
	}
	sort.Slice(byID, func(i, j int) bool { return g.ID(int(byID[i])) < g.ID(int(byID[j])) })
	decideRound := make([]int32, n)
	used := make([]bool, g.MaxDegree()+2)
	touched := make([]int, 0, g.MaxDegree()+1)
	maxRound := int32(0)
	for _, vv := range byID {
		v := int(vv)
		id := g.ID(v)
		dr := int32(1)
		for _, u := range g.Neighbors(v) {
			if g.ID(int(u)) >= id {
				continue
			}
			if r := decideRound[u] + 1; r > dr {
				dr = r
			}
			if c := out[u]; !used[c] {
				used[c] = true
				touched = append(touched, c)
			}
		}
		c := 1
		for used[c] {
			c++
		}
		out[v] = c
		decideRound[v] = dr
		if dr > maxRound {
			maxRound = dr
		}
		for _, c := range touched {
			used[c] = false
		}
		touched = touched[:0]
	}
	// Replay the rounds: in round r every vertex with t(v) >= r is still
	// participating, and those with t(v) == r broadcast their color.
	deciders := make([][]int32, maxRound+1)
	for v := 0; v < n; v++ {
		deciders[decideRound[v]] = append(deciders[decideRound[v]], int32(v))
	}
	t := env.NewTally()
	participating := n
	for r := int32(1); r <= maxRound; r++ {
		if err := t.StartRound(participating); err != nil {
			return t.Stats, err
		}
		for _, vv := range deciders[r] {
			t.Messages(g.Deg(int(vv)), wire.IntLen(out[int(vv)]))
		}
		participating -= len(deciders[r])
	}
	return t.Stats, nil
}

// greedyEdgeCompiled simulates the two-phase round structure of
// greedyEdgeVertex over flat per-directed-edge arrays. Per round, every
// participating vertex first composes its messages from round-start state
// (announcements of colors decided last round, or ready/used reports to the
// owners of its undecided non-owned edges), then processes the staged
// messages in vertex and port order with live own state and snapshot remote
// state — exactly the visibility the synchronous schedulers give the
// per-vertex form. Remote used-sets are never materialized: usedAt stores
// the round each color entered a vertex's used set, so "their used set as
// reported" is the stamp test usedAt < round, and report sizes come from
// incrementally maintained counts and varint byte totals.
type greedyEdgeCompiled struct{}

const (
	stagedReport      uint8 = 1 // non-owner status report, not ready
	stagedReportReady uint8 = 2 // non-owner status report, side ready
	stagedAnnounce    uint8 = 3 // owner announcing a decided color
)

const unsetRound = int32(math.MaxInt32)

func (greedyEdgeCompiled) RunCompiled(g *graph.Graph, env dist.CompiledEnv, out [][]int) (dist.Stats, error) {
	n := g.N()
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + g.Deg(v)
	}
	m2 := off[n] // directed edge slots: slot = off[v] + port
	colors := make([]int32, m2)
	pending := make([]int32, m2)
	keyLo := make([]int32, m2)
	keyHi := make([]int32, m2)
	ownerOf := make([]bool, m2)
	rev := make([]int32, m2) // slot at the far end of the same edge
	for v := 0; v < n; v++ {
		id := g.ID(v)
		nbrs := g.Neighbors(v)
		rp := g.ReversePorts(v)
		for p, u := range nbrs {
			slot := off[v] + p
			nid := g.ID(int(u))
			lo, hi := id, nid
			if lo > hi {
				lo, hi = hi, lo
			}
			keyLo[slot], keyHi[slot] = int32(lo), int32(hi)
			ownerOf[slot] = id < nid
			rev[slot] = int32(off[u] + int(rp[p]))
		}
	}
	palette := 2*g.MaxDegree() + 2 // greedy edge needs at most 2Δ-1
	usedAt := make([]int32, n*palette)
	for i := range usedAt {
		usedAt[i] = unsetRound
	}
	usedCount := make([]int, n)
	usedBytes := make([]int, n)
	remaining := make([]int, n)
	pendCount := make([]int, n)
	active := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		remaining[v] = g.Deg(v)
		if remaining[v] > 0 {
			active = append(active, int32(v))
		}
	}
	// markUsed records color c entering v's used set in the given round.
	markUsed := func(v, c int, round int32) {
		if i := v*palette + c; usedAt[i] == unsetRound {
			usedAt[i] = round
			usedCount[v]++
			usedBytes[v] += wire.IntLen(c)
		}
	}
	// sideReady reports whether every edge at v with a smaller key than port
	// p's edge is colored (in v's current view).
	sideReady := func(v, p int) bool {
		base := off[v]
		slot := base + p
		for q, deg := 0, off[v+1]-base; q < deg; q++ {
			qs := base + q
			if q != p && colors[qs] == 0 &&
				(keyLo[qs] < keyLo[slot] || (keyLo[qs] == keyLo[slot] && keyHi[qs] < keyHi[slot])) {
				return false
			}
		}
		return true
	}
	// Staged messages, one slot per directed edge; a slot is a live message
	// of the current round iff sRound matches it.
	sKind := make([]uint8, m2)
	sVal := make([]int32, m2)
	sRound := make([]int32, m2)
	t := env.NewTally()
	for round := int32(1); len(active) > 0; round++ {
		if err := t.StartRound(len(active)); err != nil {
			return t.Stats, err
		}
		// Compose: round-start state only (colors and used sets mutate in
		// the process phase below; pending is cleared here, as the
		// per-vertex form clears it while composing the announcement).
		for _, vv := range active {
			v := int(vv)
			base := off[v]
			for p, deg := 0, off[v+1]-base; p < deg; p++ {
				slot := base + p
				switch {
				case pending[slot] != 0:
					c := pending[slot]
					pending[slot] = 0
					pendCount[v]--
					sKind[slot], sVal[slot], sRound[slot] = stagedAnnounce, c, round
					t.Message(wire.IntLen(int(c)))
				case colors[slot] == 0 && !ownerOf[slot]:
					kind := stagedReport
					if sideReady(v, p) {
						kind = stagedReportReady
					}
					sKind[slot], sRound[slot] = kind, round
					t.Message(1 + wire.UintLen(uint64(usedCount[v])) + usedBytes[v])
				}
			}
		}
		// Process: vertex order, port order; own state live, remote state
		// from the staged snapshots.
		for _, vv := range active {
			v := int(vv)
			base := off[v]
			for p, deg := 0, off[v+1]-base; p < deg; p++ {
				slot := base + p
				if colors[slot] != 0 {
					continue
				}
				uslot := int(rev[slot])
				if sRound[uslot] != round {
					continue // no message from the far end this round
				}
				if ownerOf[slot] {
					if sKind[uslot] != stagedReportReady || !sideReady(v, p) {
						continue
					}
					u := int(g.Neighbors(v)[p])
					ub, vb := u*palette, v*palette
					c := 1
					for usedAt[vb+c] != unsetRound || usedAt[ub+c] < round {
						c++
					}
					colors[slot] = int32(c)
					markUsed(v, c, round)
					pending[slot] = int32(c)
					pendCount[v]++
					remaining[v]--
				} else if sKind[uslot] == stagedAnnounce {
					c := int(sVal[uslot])
					colors[slot] = int32(c)
					markUsed(v, c, round)
					remaining[v]--
				}
			}
		}
		next := active[:0]
		for _, vv := range active {
			if v := int(vv); remaining[v] > 0 || pendCount[v] > 0 {
				next = append(next, vv)
			}
		}
		active = next
	}
	for v := 0; v < n; v++ {
		deg := off[v+1] - off[v]
		cs := make([]int, deg)
		for p := 0; p < deg; p++ {
			cs[p] = int(colors[off[v]+p])
		}
		out[v] = cs
	}
	return t.Stats, nil
}
