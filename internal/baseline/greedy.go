// Package baseline implements the competitor algorithms of Tables 1 and 2:
//
//   - greedy ID-priority coloring (folklore; serves as a correctness oracle
//     and as the naive O(n)-round baseline),
//   - randomized trial edge coloring (the stand-in for the randomized
//     competitors [29],[18] of Table 2 — substitution N2 in DESIGN.md),
//   - an H-partition/forest-decomposition coloring in the style of [3],[5]
//     whose Θ(log n) round dependence is inherent (substitution N3) — the
//     Table 1 large-Δ competitor.
//
// (Panconesi–Rizzi, the remaining baseline, lives in package panconesi
// because the §5 recursion leaf also uses it.)
package baseline

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// GreedyVertexColoring colors vertices with palette {1..Δ+1} by ID priority:
// every vertex waits until all smaller-ID neighbors are colored, then takes
// the smallest free color. Its round complexity is the longest increasing-ID
// path, up to n; it is the classic correctness oracle.
func GreedyVertexColoring(g *graph.Graph, opts ...dist.Option) (*dist.Result[int], error) {
	return dist.Run(g, GreedyVertexProcess, opts...)
}

// GreedyVertexProcess is the per-vertex body of GreedyVertexColoring,
// exported for callers that execute on a reusable dist.Runner or dist.Pool.
func GreedyVertexProcess(v dist.Process) int {
	deg := v.Deg()
	waiting := 0
	for p := 0; p < deg; p++ {
		if v.NeighborID(p) < v.ID() {
			waiting++
		}
	}
	used := make([]bool, v.MaxDegree()+2)
	for {
		if waiting == 0 {
			c := 1
			for used[c] {
				c++
			}
			v.Broadcast(wire.EncodeInts(c))
			return c
		}
		in := v.Round(nil)
		for p := 0; p < deg; p++ {
			if in[p] == nil || v.NeighborID(p) > v.ID() {
				continue
			}
			vals, err := wire.DecodeInts(in[p], 1)
			if err != nil {
				panic("baseline: bad color message: " + err.Error())
			}
			used[vals[0]] = true
			waiting--
		}
	}
}

// GreedyEdgeColoring colors edges with palette {1..2Δ−1} by lexicographic
// edge priority ⟨smaller endpoint id, larger endpoint id⟩: the smaller-ID
// endpoint of an edge decides its color once every higher-priority incident
// edge (at either endpoint) is colored, taking the smallest color free at
// both endpoints. The naive baseline with worst-case Θ(n)-round chains.
// Returns per-port colors (merge with graph.MergePortColors).
func GreedyEdgeColoring(g *graph.Graph, opts ...dist.Option) (*dist.Result[[]int], error) {
	return dist.Run(g, GreedyEdgeProcess, opts...)
}

// GreedyEdgeProcess is the per-vertex body of GreedyEdgeColoring, exported
// for callers that execute on a reusable dist.Runner or dist.Pool.
func GreedyEdgeProcess(v dist.Process) []int { return greedyEdgeVertex(v) }

// edgeKey orders edges by ⟨min id, max id⟩.
type edgeKey struct{ lo, hi int }

func (k edgeKey) less(o edgeKey) bool {
	if k.lo != o.lo {
		return k.lo < o.lo
	}
	return k.hi < o.hi
}

func greedyEdgeVertex(v dist.Process) []int {
	deg, id := v.Deg(), v.ID()
	keys := make([]edgeKey, deg)
	owner := make([]bool, deg) // do we decide this edge's color?
	for p := 0; p < deg; p++ {
		nid := v.NeighborID(p)
		lo, hi := id, nid
		if lo > hi {
			lo, hi = hi, lo
		}
		keys[p] = edgeKey{lo, hi}
		owner[p] = id < nid
	}
	colors := make([]int, deg)
	myUsed := make(map[int]bool, deg)
	pending := make([]int, deg) // decided colors not yet announced
	remaining := deg

	// sideReady reports whether every edge at this vertex with a smaller key
	// than port p's edge is already colored.
	sideReady := func(p int) bool {
		for q := 0; q < deg; q++ {
			if q != p && colors[q] == 0 && keys[q].less(keys[p]) {
				return false
			}
		}
		return true
	}

	for remaining > 0 || anyPending(pending) {
		out := make([][]byte, deg)
		for p := 0; p < deg; p++ {
			switch {
			case pending[p] != 0: // owner: announce the decision
				out[p] = wire.EncodeInts(pending[p])
				pending[p] = 0
			case colors[p] == 0 && !owner[p]: // report status to the owner
				var w wire.Writer
				if sideReady(p) {
					w.Uint(1)
				} else {
					w.Uint(0)
				}
				w.Ints(usedSlice(myUsed))
				out[p] = w.Bytes()
			}
		}
		in := v.Round(out)
		for p := 0; p < deg; p++ {
			if colors[p] != 0 || in[p] == nil {
				continue
			}
			if owner[p] {
				r := wire.NewReader(in[p])
				ready := r.Uint()
				theirUsed := r.Ints()
				if r.Err() != nil {
					panic("baseline: bad report: " + r.Err().Error())
				}
				if ready == 1 && sideReady(p) {
					c := firstFreeOf(myUsed, theirUsed)
					colors[p] = c
					myUsed[c] = true
					pending[p] = c
					remaining--
				}
			} else {
				vals, err := wire.DecodeInts(in[p], 1)
				if err != nil {
					panic("baseline: bad announcement: " + err.Error())
				}
				colors[p] = vals[0]
				myUsed[vals[0]] = true
				remaining--
			}
		}
	}
	return colors
}

func anyPending(pending []int) bool {
	for _, c := range pending {
		if c != 0 {
			return true
		}
	}
	return false
}

func usedSlice(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	return out
}

func firstFreeOf(mine map[int]bool, theirs []int) int {
	theirSet := make(map[int]bool, len(theirs))
	for _, c := range theirs {
		theirSet[c] = true
	}
	for c := 1; ; c++ {
		if !mine[c] && !theirSet[c] {
			return c
		}
	}
}
