package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/graph"
	"repro/internal/reduce"
)

func init() {
	register("fig1", "Figure 1: clique+pendants has I(G)=2 but unbounded growth; Legal-Color handles it", runFig1)
	register("fig2", "Figure 2 / Lemma 3.4: acyclic d-orientation yields a (d+1)-coloring", runFig2)
	register("fig3", "Figure 3: Legal-Color recursion tree (uniform Λ and ϑ per level)", runFig3)
}

// runFig1 generates the Figure-1 family: a k-clique whose members each own a
// private pendant. It certifies I(G)=2 exactly, exhibits Ω(Δ) independent
// vertices at distance 2 (unbounded growth, so growth-bounded algorithms
// like [28] do not apply), and colors the graph with Legal-Color under c=2.
func runFig1(w io.Writer, cfg Config) error {
	t := Table{
		Title:  "Figure 1: G = K_k + pendants (n = 2k)",
		Note:   "I(G) is exact (branch & bound); growth@2 = independent set within distance 2 of a clique vertex.",
		Header: []string{"k", "Δ", "I(G)", "growth@2", "LC colors", "LC rounds", "legal"},
	}
	for _, k := range []int{8, 16, 32, 64} {
		g := graph.CliquePlusPendants(k)
		ni := graph.NeighborhoodIndependence(g)
		growth := graph.GrowthAt(g, 0, 2)
		pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, false)
		if err != nil {
			return err
		}
		res, err := core.LegalColoring(g, pl, core.StartAux, cfg.opts()...)
		if err != nil {
			return err
		}
		legal := "ok"
		if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
			legal = "ILLEGAL"
		}
		t.Add(k, g.MaxDegree(), ni, growth, graph.CountColors(res.Outputs), res.Stats.Rounds, legal)
	}
	t.Render(w)
	return nil
}

// runFig2 demonstrates Lemma 3.4 (the process of Figure 2): orient edges by
// identifier, color by waiting for out-neighbors; palette ≤ out-degree+1 and
// makespan = longest directed path + 1.
func runFig2(w io.Writer, cfg Config) error {
	t := Table{
		Title:  "Figure 2 / Lemma 3.4: coloring along an acyclic orientation",
		Header: []string{"graph", "out-deg d", "colors", "d+1", "rounds", "longest-path+1"},
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"GNM(256,1024)", graph.GNM(256, 1024, 21)},
		{"GNM(256,4096)", graph.GNM(256, 4096, 22)},
		{"K32", graph.Complete(32)},
		{"tree(512)", graph.RandomTree(512, 23)},
	} {
		o := graph.OrientByIDs(tc.g)
		d := o.MaxOutDegree()
		res, err := dist.Run(tc.g, func(v dist.Process) int {
			isOut := make([]bool, v.Deg())
			for p := range isOut {
				isOut[p] = v.NeighborID(p) < v.ID()
			}
			return reduce.ColorByOrientation(v, isOut, d)
		}, cfg.opts()...)
		if err != nil {
			return err
		}
		if err := graph.CheckVertexColoring(tc.g, res.Outputs); err != nil {
			return fmt.Errorf("fig2 %s: %w", tc.name, err)
		}
		t.Add(tc.name, d, graph.MaxColor(res.Outputs), d+1,
			res.Stats.Rounds, o.LongestDirectedPath()+1)
	}
	t.Render(w)
	return nil
}

// runFig3 prints the recursion tree of Procedure Legal-Color for an edge
// plan: per level, the uniform degree bound Λ⁽ⁱ⁾, palette share ϑ⁽ⁱ⁾, the
// ϕ-defect bound, and the ψ-window — the quantities Figure 3 annotates on
// the tree nodes (Lemma 4.4 proves uniformity across each level, which the
// level-synchronous implementation relies on).
func runFig3(w io.Writer, cfg Config) error {
	g := graph.TargetDegreeGNM(512, 48, 33)
	pl, err := core.AutoPlan(g.MaxDegree(), 2, 1, 12, true)
	if err != nil {
		return err
	}
	if pl.Depth() < 1 {
		return fmt.Errorf("fig3: plan %v has no recursion levels", pl)
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 3: recursion tree of Legal-Color, %v", pl),
		Note:   "Every node of level i shares the same Λ and ϑ (Lemma 4.4); nodes per level = p^i.",
		Header: []string{"level", "nodes", "Λ(i)", "ϑ(i)", "ϕ-defect", "ψ-window"},
	}
	nodes := 1
	for i, lam := range pl.Levels {
		phiDef, window := "-", "-"
		if i < pl.Depth() {
			phiDef = fmt.Sprint(pl.PhiDef[i])
			pp := pl.B * pl.P
			window = fmt.Sprint(pp * pp)
		}
		t.Add(i, nodes, lam, pl.Thetas[i], phiDef, window)
		nodes *= pl.P
	}
	t.Render(w)

	// Run it and confirm the promised totals.
	res, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide, cfg.opts()...)
	if err != nil {
		return err
	}
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		return err
	}
	sum := Table{
		Title:  "Figure 3 (run): totals vs bounds",
		Header: []string{"colors used", "ϑ(0) bound", "rounds", "round bound", "legal"},
	}
	legal := "ok"
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		legal = "ILLEGAL"
	}
	sum.Add(graph.CountColors(colors), pl.TotalPalette(),
		res.Stats.Rounds, edgecolor.Rounds(g.N(), pl, edgecolor.Wide), legal)
	sum.Render(w)
	return nil
}
