package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/graph"
	"repro/internal/panconesi"
)

func init() {
	register("table1", "Table 1: deterministic edge-coloring comparison (measured + analytic crossover)", runTable1)
	register("table2", "Table 2: deterministic vs randomized at small Δ (rounds vs n)", runTable2)
}

// edgeColorVia runs one edge-coloring algorithm and returns (colors, rounds,
// maxMsgBytes).
type edgeRun struct {
	colors  int
	rounds  int
	maxMsg  int
	legal   bool
	comment string
}

func runPR(g *graph.Graph, cfg Config) (edgeRun, error) {
	res, err := panconesi.EdgeColoring(g, cfg.opts()...)
	if err != nil {
		return edgeRun{}, err
	}
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		return edgeRun{}, err
	}
	return edgeRun{
		colors: graph.CountColors(colors),
		rounds: res.Stats.Rounds,
		maxMsg: res.Stats.MaxMessageBytes,
		legal:  graph.CheckEdgeColoring(g, colors) == nil,
	}, nil
}

func runBE(g *graph.Graph, cfg Config, b, p int, mode edgecolor.MsgMode) (edgeRun, error) {
	pl, err := core.AutoPlan(g.MaxDegree(), 2, b, p, true)
	if err != nil {
		return edgeRun{}, err
	}
	res, err := edgecolor.LegalEdgeColoring(g, pl, mode, cfg.opts()...)
	if err != nil {
		return edgeRun{}, err
	}
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		return edgeRun{}, err
	}
	return edgeRun{
		colors:  graph.CountColors(colors),
		rounds:  res.Stats.Rounds,
		maxMsg:  res.Stats.MaxMessageBytes,
		legal:   graph.CheckEdgeColoring(g, colors) == nil,
		comment: fmt.Sprintf("depth=%d", pl.Depth()),
	}, nil
}

func runHPartitionOnLineGraph(g *graph.Graph, cfg Config) (edgeRun, error) {
	lg := g.LineGraph()
	theta := baseline.DefaultTheta(lg)
	res, err := baseline.HPartitionColoring(lg, theta, cfg.opts()...)
	if err != nil {
		return edgeRun{}, err
	}
	// Vertices of L(G) are edges of G.
	return edgeRun{
		colors: graph.CountColors(res.Outputs),
		rounds: 2*res.Stats.Rounds + 1, // Lemma 5.2 simulation accounting
		maxMsg: g.MaxDegree() * res.Stats.MaxMessageBytes,
		legal:  graph.CheckEdgeColoring(g, res.Outputs) == nil,
	}, nil
}

func runArbOnLineGraph(g *graph.Graph, cfg Config) (edgeRun, error) {
	lg := g.LineGraph()
	theta := baseline.DefaultTheta(lg)
	res, err := baseline.ArbColoring(lg, theta, cfg.opts()...)
	if err != nil {
		return edgeRun{}, err
	}
	return edgeRun{
		colors: graph.CountColors(res.Outputs),
		rounds: 2*res.Stats.Rounds + 1, // Lemma 5.2 simulation accounting
		maxMsg: g.MaxDegree() * res.Stats.MaxMessageBytes,
		legal:  graph.CheckEdgeColoring(g, res.Outputs) == nil,
	}, nil
}

func fmtRun(r edgeRun) []interface{} {
	legal := "ok"
	if !r.legal {
		legal = "ILLEGAL"
	}
	return []interface{}{r.colors, r.rounds, r.maxMsg, legal}
}

// runTable1 measures every deterministic contender on random graphs across a
// Δ sweep, then prints the analytic round-bound crossover for large Δ
// (EXPERIMENTS.md discusses why the measured regime cannot reach the
// asymptotic crossovers: the paper's constants are galactic). The Δ rows of
// the sweep are independent, so they execute on the worker pool and are
// appended in sweep order.
func runTable1(w io.Writer, cfg Config) error {
	const n = 512
	measured := Table{
		Title: "Table 1 (measured): deterministic edge coloring, n=512, random graphs",
		Note: "PR = Panconesi-Rizzi (2Δ-1) [24]; BE = this paper §5 (AutoPlan, wide messages);\n" +
			"HP/Arb+L(G) = forest-decomposition family [3]/[5] on the line graph via Lemma 5.2 accounting\n" +
			"(HP: fast, θ²·log n colors; Arb: θ+1 colors, Θ(θ·log n) rounds).",
		Header: []string{"Δ", "alg", "colors", "rounds", "maxMsgB", "legal"},
	}
	deltas := []int{8, 16, 32, 64}
	rows, err := Parallel(cfg, len(deltas), func(i int) ([][]interface{}, error) {
		delta := deltas[i]
		g := graph.TargetDegreeGNM(n, delta, int64(delta))
		d := g.MaxDegree()
		var out [][]interface{}
		pr, err := runPR(g, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, append([]interface{}{d, "PR(2Δ-1)"}, fmtRun(pr)...))
		be, err := runBE(g, cfg, 1, 12, edgecolor.Wide)
		if err != nil {
			return nil, err
		}
		out = append(out, append([]interface{}{d, "BE(b=1,p=12)"}, fmtRun(be)...))
		if d <= 32 {
			hp, err := runHPartitionOnLineGraph(g, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, append([]interface{}{d, "HP+L(G)"}, fmtRun(hp)...))
		}
		if d <= 16 {
			arb, err := runArbOnLineGraph(g, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, append([]interface{}{d, "Arb+L(G)"}, fmtRun(arb)...))
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	for _, group := range rows {
		for _, row := range group {
			measured.Add(row...)
		}
	}
	measured.Render(w)

	analytic := Table{
		Title: "Table 1 (analytic): exact round formulas of the implementations, n=2^20",
		Note: "Round bounds as implemented: PR = panconesi.Rounds; BE = edgecolor.Rounds(AutoPlan b=4 p=8).\n" +
			"The crossover Δ* where the paper's O(log Δ) algorithm overtakes O(Δ) is the Table 1 claim.",
		Header: []string{"Δ", "PR rounds", "BE rounds", "BE colors bound", "winner"},
	}
	n20 := 1 << 20
	for _, delta := range []int{64, 256, 1024, 4096, 16384, 65536} {
		prRounds := panconesi.Rounds(n20, delta)
		pl, err := core.AutoPlan(delta, 2, 4, 8, true)
		if err != nil {
			return err
		}
		beRounds := edgecolor.Rounds(n20, pl, edgecolor.Wide)
		winner := "PR"
		if beRounds < prRounds {
			winner = "BE"
		}
		analytic.Add(delta, prRounds, beRounds, pl.TotalPalette(), winner)
	}
	analytic.Render(w)
	return nil
}

// runTable2 compares the deterministic algorithms against the randomized
// trial coloring in the small-Δ regime (Δ ≤ log^{1-δ} n): deterministic
// rounds stay flat as n grows while the randomized baseline pays Θ(log n).
// Each n is one independent job on the worker pool.
func runTable2(w io.Writer, cfg Config) error {
	t := Table{
		Title: "Table 2: small Δ=8, growing n — deterministic (flat) vs randomized (grows with log n)",
		Note: "Rand = trial edge coloring (stand-in for [29],[18], see DESIGN N2), median-ish single seed;\n" +
			"PR and BE are deterministic. Rounds are measured in the simulator.",
		Header: []string{"n", "Δ", "PR rounds", "BE rounds", "Rand rounds", "PR colors", "BE colors", "Rand colors"},
	}
	sizes := []int{256, 1024, 4096, 16384, 65536}
	if err := ParallelRows(cfg, &t, len(sizes), func(i int) ([]interface{}, error) {
		n := sizes[i]
		g := graph.RandomRegular(n, 8, int64(n))
		d := g.MaxDegree()
		pr, err := runPR(g, cfg)
		if err != nil {
			return nil, err
		}
		be, err := runBE(g, cfg, 2, 6, edgecolor.Wide)
		if err != nil {
			return nil, err
		}
		// Randomized rounds are noisy; report the median of three seeds.
		var randRounds []int
		randColors := 0
		for seed := int64(7); seed < 10; seed++ {
			res, err := baseline.RandomizedTrialEdgeColoring(g, cfg.opts(dist.WithSeed(seed))...)
			if err != nil {
				return nil, err
			}
			colors, err := graph.MergePortColors(g, res.Outputs)
			if err != nil {
				return nil, err
			}
			if err := graph.CheckEdgeColoring(g, colors); err != nil {
				return nil, err
			}
			randRounds = append(randRounds, res.Stats.Rounds)
			randColors = graph.CountColors(colors)
		}
		sort.Ints(randRounds)
		return []interface{}{n, d, pr.rounds, be.rounds, randRounds[1],
			pr.colors, be.colors, randColors}, nil
	}); err != nil {
		return err
	}
	t.Render(w)
	return nil
}
