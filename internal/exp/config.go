package exp

import (
	"runtime"
	"sync"

	"repro/internal/dist"
)

// Config controls how experiments execute. The zero value runs the default
// Goroutines engine with a GOMAXPROCS-wide pool for the row grids; set
// Workers to 1 for the fully serial execution the harness used before the
// pool existed. Artifacts are byte-identical under every Config.
type Config struct {
	// Engine selects the dist scheduler every simulator run uses. All
	// engines produce byte-identical Outputs and Stats, so experiment
	// artifacts do not depend on this choice — only wall-clock does.
	Engine dist.Engine
	// Workers bounds the worker pool that executes independent grid cells
	// (table rows × graph families × sizes). <= 0 means GOMAXPROCS.
	// Workers == 1 reproduces the old fully serial execution.
	Workers int
}

// EffectiveWorkers resolves the pool size Workers selects (GOMAXPROCS when
// unset); exported for callers that build their own pools on top of the
// same knob, like cmd/repro's experiment-level fan-out.
func (c Config) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// opts prefixes the engine selection onto extra per-run options.
func (c Config) opts(extra ...dist.Option) []dist.Option {
	return append([]dist.Option{dist.WithEngine(c.Engine)}, extra...)
}

// Parallel runs n independent jobs on a bounded worker pool and returns
// their results in index order — the aggregation stays deterministic no
// matter how the pool interleaves. The first error in index order wins (the
// same error the serial loop would have reported); later results are still
// computed but discarded. With one worker (or one job) it degenerates to
// the plain serial loop, goroutine-free.
func Parallel[T any](cfg Config, n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if w := cfg.EffectiveWorkers(); w > 1 && n > 1 {
		if w > n {
			w = n
		}
		errs := make([]error, n)
		next := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i], errs[i] = job(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		var err error
		if out[i], err = job(i); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ParallelRows runs n independent row jobs on the pool and appends every
// produced row to t in index order — the shared epilogue of the sweep-style
// experiments.
func ParallelRows(cfg Config, t *Table, n int, job func(i int) ([]interface{}, error)) error {
	rows, err := Parallel(cfg, n, job)
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.Add(row...)
	}
	return nil
}
