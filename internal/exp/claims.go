package exp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/graph"
)

func init() {
	register("defectproduct", "E1 (Cor 3.8, §1.3): Alg-1 defect×colors is linear in Δ; Kuhn's general routine pays Δ·p", runDefectProduct)
	register("vertexscaling", "E2 (Thm 4.5/4.6): Legal-Color rounds vs Δ on bounded-NI graphs", runVertexScaling)
	register("msgsize", "E3 (Thm 5.5): message-size classes of the edge variants", runMessageSize)
	register("cor54", "E4 (Cor 5.4): O(1)-round defective edge coloring, defect ≤ 4⌈Δ/p'⌉", runCor54)
	register("cor62", "E5 (Cor 6.2): randomized edge coloring, rounds vs n", runCor62)
	register("tradeoff", "E6 (Cor 6.3): colors O(Δ²/g) vs rounds O(log g) sweep", runTradeoff)
	register("linegraphsim", "E7 (Lemma 5.2): simulation costs 2T+O(1) rounds and ×Δ message size", runLineGraphSim)
	register("ni", "E8 (Lemma 5.1, §1.2): neighborhood independence of the paper's graph families", runNI)
}

// runDefectProduct is the paper's core quantitative claim (§1.3): Procedure
// Defective-Color achieves defect m and χ colors with m·χ = O(Δ) on
// bounded-NI graphs, whereas the prior general-graph routine [19] gives
// O(Δ/p)-defective p²-colorings, i.e. m·χ = O(Δ·p). The p sweep runs on the
// worker pool.
func runDefectProduct(w io.Writer, cfg Config) error {
	t := Table{
		Title: "E1: defect×colors product — Alg 1 (bounded NI) vs Kuhn [19] (general)",
		Note: "Graph: line graph (c=2). Alg 1 run with b=2 (Cor 3.8: defect ≤ (c+ε)Δ/p+c).\n" +
			"colors = palette (max color); product = measured defect × palette; the paper's point: Alg 1 keeps it Θ(Δ).",
		Header: []string{"Δ", "p", "alg1 defect", "alg1 colors", "alg1 product", "kuhn defect", "kuhn colors", "kuhn product"},
	}
	g := graph.RandomRegular(512, 20, 41).LineGraph()
	delta := g.MaxDegree()
	var ps []int
	for _, p := range []int{2, 4, 8} {
		if 2*p <= delta {
			ps = append(ps, p)
		}
	}
	if err := ParallelRows(cfg, &t, len(ps), func(i int) ([]interface{}, error) {
		p := ps[i]
		res, err := core.DefectiveColoring(g, 2, 2, p, cfg.opts()...)
		if err != nil {
			return nil, err
		}
		d1 := graph.VertexDefect(g, res.Outputs)
		c1 := graph.MaxColor(res.Outputs)
		kres, err := defective.VertexColoring(g, p, cfg.opts()...)
		if err != nil {
			return nil, err
		}
		d2 := graph.VertexDefect(g, kres.Outputs)
		c2 := graph.MaxColor(kres.Outputs)
		return []interface{}{delta, p, d1, c1, d1 * c1, d2, c2, d2 * c2}, nil
	}); err != nil {
		return err
	}
	t.Render(w)
	return nil
}

// runVertexScaling measures Legal-Color rounds against Δ on power-of-cycle
// graphs (I(G)=2, Δ = 2k) for a fixed practical plan: the per-level window
// is constant, so rounds grow with the recursion depth ~ log Δ
// (Theorem 4.6's shape), far below the Θ(Δ) of the greedy-style baselines.
func runVertexScaling(w io.Writer, cfg Config) error {
	t := Table{
		Title:  "E2: Legal-Color on bounded-NI graphs (C_n^k, c=2), rounds vs Δ",
		Note:   "plan = AutoPlan(b=2, p=6, vertex); aux mode (§4.2). depth grows ~ log Δ.",
		Header: []string{"n", "Δ", "depth", "rounds", "colors", "ϑ(0) bound", "legal"},
	}
	ks := []int{4, 8, 16, 32}
	if err := ParallelRows(cfg, &t, len(ks), func(i int) ([]interface{}, error) {
		const n = 600
		g := graph.PowerOfCycle(n, ks[i])
		pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, false)
		if err != nil {
			return nil, err
		}
		res, err := core.LegalColoring(g, pl, core.StartAux, cfg.opts()...)
		if err != nil {
			return nil, err
		}
		legal := "ok"
		if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
			legal = "ILLEGAL"
		}
		return []interface{}{n, g.MaxDegree(), pl.Depth(), res.Stats.Rounds,
			graph.CountColors(res.Outputs), pl.TotalPalette(), legal}, nil
	}); err != nil {
		return err
	}
	t.Render(w)
	return nil
}

// runMessageSize audits the three message-size classes of §5: wide mode
// (O(p log Δ) bits per message), short mode (O(log n) bits, more rounds),
// and the line-graph simulation (O(Δ log n) bits). The wide/short contrast
// is measured on the standalone edge Defective-Color (where the ψ-window
// messages dominate) and on the full recursion.
func runMessageSize(w io.Writer, cfg Config) error {
	g := graph.TargetDegreeGNM(384, 48, 51)
	delta := g.MaxDegree()
	t := Table{
		Title:  fmt.Sprintf("E3: message-size classes (Thm 5.5), n=384, Δ=%d", delta),
		Header: []string{"variant", "rounds", "maxMsgB", "msg class"},
	}
	dw, err := edgecolor.DefectiveEdgeColoring(g, 1, 12, edgecolor.Wide, cfg.opts()...)
	if err != nil {
		return err
	}
	t.Add("Alg1-edge, wide", dw.Stats.Rounds, dw.Stats.MaxMessageBytes, "O(p·logΔ)")
	ds, err := edgecolor.DefectiveEdgeColoring(g, 1, 12, edgecolor.Short, cfg.opts()...)
	if err != nil {
		return err
	}
	t.Add("Alg1-edge, short", ds.Stats.Rounds, ds.Stats.MaxMessageBytes, "O(log n)")

	pl, err := core.AutoPlan(delta, 2, 1, 12, true)
	if err != nil {
		return err
	}
	resW, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide, cfg.opts()...)
	if err != nil {
		return err
	}
	t.Add("Legal-Color-edge, wide", resW.Stats.Rounds, resW.Stats.MaxMessageBytes, "O(p·logΔ + λ·logΔ leaf)")
	resS, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Short, cfg.opts()...)
	if err != nil {
		return err
	}
	t.Add("Legal-Color-edge, short", resS.Stats.Rounds, resS.Stats.MaxMessageBytes, "O(λ·logΔ leaf)")

	lg := g.LineGraph()
	plV, err := core.AutoPlan(lg.MaxDegree(), 2, 2, 6, false)
	if err != nil {
		return err
	}
	sim, err := edgecolor.ViaLineGraphSimulation(g, plV, core.StartAux, cfg.opts()...)
	if err != nil {
		return err
	}
	t.Add("L(G) simulation (Lemma 5.2)", sim.SimulatedRounds, sim.SimulatedMaxMessageBytes, "O(Δ·log n)")
	t.Render(w)
	return nil
}

// runCor54 validates Corollary 5.4 exactly: one communication round, palette
// p'², measured defect at most 4⌈Δ/p'⌉. The p' sweep runs on the worker
// pool.
func runCor54(w io.Writer, cfg Config) error {
	g := graph.TargetDegreeGNM(512, 48, 61)
	delta := g.MaxDegree()
	t := Table{
		Title:  fmt.Sprintf("E4: Kuhn's O(1)-round defective edge coloring (Cor 5.4), Δ=%d", delta),
		Header: []string{"p'", "rounds", "colors", "p'^2", "defect", "4⌈Δ/p'⌉", "within bound"},
	}
	pps := []int{2, 4, 8, 16, 32}
	if err := ParallelRows(cfg, &t, len(pps), func(i int) ([]interface{}, error) {
		pp := pps[i]
		res, err := defective.EdgeColoring(g, pp, cfg.opts()...)
		if err != nil {
			return nil, err
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return nil, err
		}
		d := graph.EdgeDefect(g, colors)
		bound := 4 * ((delta + pp - 1) / pp)
		ok := "yes"
		if d > bound {
			ok = "NO"
		}
		return []interface{}{pp, res.Stats.Rounds, graph.CountColors(colors), pp * pp, d, bound, ok}, nil
	}); err != nil {
		return err
	}
	t.Render(w)
	return nil
}

// runCor62 measures the randomized edge coloring across n: rounds stay in
// the poly-log-log regime claimed by Corollary 6.2 while colors track
// O(Δ·log^η n). Each n is one job on the worker pool.
func runCor62(w io.Writer, cfg Config) error {
	t := Table{
		Title:  "E5: randomized edge coloring (Cor 6.2), Δ ≈ 4·ln n",
		Header: []string{"n", "Δ", "classes", "rounds", "colors", "palette bound", "legal"},
	}
	sizes := []int{256, 1024, 4096}
	if err := ParallelRows(cfg, &t, len(sizes), func(i int) ([]interface{}, error) {
		n := sizes[i]
		delta := int(4 * math.Log(float64(n)))
		g := graph.TargetDegreeGNM(n, delta, int64(n))
		res, err := edgecolor.RandomizedEdgeColoring(g, 2, 6, 8, edgecolor.Wide, cfg.opts(dist.WithSeed(11))...)
		if err != nil {
			return nil, err
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return nil, err
		}
		legal := "ok"
		if err := graph.CheckEdgeColoring(g, colors); err != nil {
			legal = "ILLEGAL"
		}
		bound, err := edgecolor.RandomizedPaletteBound(g, 2, 6, 8)
		if err != nil {
			return nil, err
		}
		deltaL := 2*g.MaxDegree() - 2
		classes := int(math.Ceil(float64(deltaL) / math.Max(math.Log(float64(n)), 1)))
		return []interface{}{n, g.MaxDegree(), classes, res.Stats.Rounds,
			graph.CountColors(colors), bound, legal}, nil
	}); err != nil {
		return err
	}
	t.Render(w)
	return nil
}

// runTradeoff sweeps the Corollary 6.3 curve: smaller class degree (larger
// g(Δ)) means fewer recursion rounds but quadratically more colors. The
// class-degree sweep runs on the worker pool.
func runTradeoff(w io.Writer, cfg Config) error {
	g := graph.TargetDegreeGNM(384, 64, 71)
	delta := g.MaxDegree()
	t := Table{
		Title:  fmt.Sprintf("E6: tradeoff (Cor 6.3), Δ=%d — classDeg q vs colors/rounds", delta),
		Header: []string{"classDeg q", "p'", "rounds", "colors", "palette bound", "legal"},
	}
	var qs []int
	for _, q := range []int{delta, delta / 2, delta / 4, delta / 8} {
		if q >= 8 {
			qs = append(qs, q)
		}
	}
	if err := ParallelRows(cfg, &t, len(qs), func(i int) ([]interface{}, error) {
		q := qs[i]
		res, err := edgecolor.TradeoffEdgeColoring(g, 2, 6, q, edgecolor.Wide, cfg.opts()...)
		if err != nil {
			return nil, err
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return nil, err
		}
		legal := "ok"
		if err := graph.CheckEdgeColoring(g, colors); err != nil {
			legal = "ILLEGAL"
		}
		bound, err := edgecolor.TradeoffPaletteBound(g, 2, 6, q)
		if err != nil {
			return nil, err
		}
		pp := (4*delta + q - 1) / q
		return []interface{}{q, pp, res.Stats.Rounds, graph.CountColors(colors), bound, legal}, nil
	}); err != nil {
		return err
	}
	t.Render(w)
	return nil
}

// runLineGraphSim contrasts the same coloring job done by the direct §5 edge
// variant against the Lemma 5.2 line-graph simulation.
func runLineGraphSim(w io.Writer, cfg Config) error {
	g := graph.TargetDegreeGNM(256, 24, 81)
	t := Table{
		Title:  "E7: direct edge variant vs L(G) simulation (Lemma 5.2)",
		Header: []string{"path", "rounds", "maxMsgB", "colors"},
	}
	plE, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
	if err != nil {
		return err
	}
	direct, err := edgecolor.LegalEdgeColoring(g, plE, edgecolor.Wide, cfg.opts()...)
	if err != nil {
		return err
	}
	colors, err := graph.MergePortColors(g, direct.Outputs)
	if err != nil {
		return err
	}
	t.Add("direct (§5)", direct.Stats.Rounds, direct.Stats.MaxMessageBytes, graph.CountColors(colors))

	lg := g.LineGraph()
	plV, err := core.AutoPlan(lg.MaxDegree(), 2, 2, 6, false)
	if err != nil {
		return err
	}
	sim, err := edgecolor.ViaLineGraphSimulation(g, plV, core.StartAux, cfg.opts()...)
	if err != nil {
		return err
	}
	t.Add("accounted sim (2T+1, ×Δ msg)", sim.SimulatedRounds, sim.SimulatedMaxMessageBytes,
		graph.CountColors(sim.EdgeColors))
	t.Add("native on L(G)", sim.Native.Rounds, sim.Native.MaxMessageBytes,
		graph.CountColors(sim.EdgeColors))
	trueSim, err := edgecolor.TrueSimulation(g, plV, core.StartAux, cfg.opts()...)
	if err != nil {
		return err
	}
	if err := graph.CheckEdgeColoring(g, trueSim.EdgeColors); err != nil {
		return fmt.Errorf("true simulation produced illegal coloring: %w", err)
	}
	t.Add("TRUE sim, measured on G", trueSim.Native.Rounds, trueSim.Native.MaxMessageBytes,
		graph.CountColors(trueSim.EdgeColors))
	t.Render(w)
	return nil
}

// runNI certifies the structural facts of §1.2 and Lemma 5.1 on generated
// families: line graphs have I ≤ 2, r-hypergraph line graphs have I ≤ r, and
// the Figure-1 family has I = 2 with growth Ω(Δ). No simulator runs are
// involved — the invariant computation itself is the experiment.
func runNI(w io.Writer, cfg Config) error {
	t := Table{
		Title:  "E8: neighborhood independence of the paper's families (exact)",
		Header: []string{"family", "n", "Δ", "I(G)", "claimed bound"},
	}
	lg := graph.GNM(48, 220, 91).LineGraph()
	t.Add("L(GNM)", lg.N(), lg.MaxDegree(), graph.NeighborhoodIndependence(lg), "≤2 (Lemma 5.1)")
	for _, r := range []int{3, 4} {
		h := graph.RandomHypergraph(40, 70, r, int64(r))
		hl := h.LineGraph()
		t.Add(fmt.Sprintf("L(H_%d)", r), hl.N(), hl.MaxDegree(),
			graph.NeighborhoodIndependence(hl), fmt.Sprintf("≤%d (§1.2)", r))
	}
	fig1 := graph.CliquePlusPendants(24)
	t.Add("Fig1 K24+pendants", fig1.N(), fig1.MaxDegree(),
		graph.NeighborhoodIndependence(fig1), "=2 (Fig 1)")
	pc := graph.PowerOfCycle(128, 6)
	t.Add("C_128^6", pc.N(), pc.MaxDegree(), graph.NeighborhoodIndependence(pc), "=2")
	t.Render(w)
	return nil
}
