package exp

import (
	"io"

	"repro/internal/core"
	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/panconesi"
	"repro/internal/reduce"
)

func init() {
	register("ablation", "design-choice ablations: N1 leaf reduction, §5 message modes, multi-class leaf, event-driven window", runAblation)
}

// runAblation measures the cost of each design decision DESIGN.md calls out.
func runAblation(w io.Writer, cfg Config) error {
	if err := ablateLeafReduction(w, cfg); err != nil {
		return err
	}
	if err := ablateMessageModes(w, cfg); err != nil {
		return err
	}
	if err := ablateMultiClass(w, cfg); err != nil {
		return err
	}
	return ablateWindow(w, cfg)
}

// ablateLeafReduction: substitution N1 — Kuhn–Wattenhofer block merging vs
// naive one-class-per-round at the Legal-Color leaf.
func ablateLeafReduction(w io.Writer, cfg Config) error {
	g := graph.RandomRegular(128, 16, 7)
	delta := g.MaxDegree()
	steps := linial.LegalSchedule(g.N(), delta)
	k := linial.FinalPalette(g.N(), steps)
	t := Table{
		Title:  "Ablation A1 (N1): leaf palette reduction O(Δ²) -> Δ+1",
		Header: []string{"reducer", "rounds", "palette", "legal"},
	}
	for _, kw := range []bool{true, false} {
		res, err := dist.Run(g, func(v dist.Process) int {
			c := linial.RunChain(steps, v.ID(), linial.BroadcastExchange(v))
			if kw {
				return reduce.KWReduceColors(v, c, k, delta+1, nil)
			}
			return reduce.ReduceColors(v, c, k, delta+1, nil)
		}, cfg.opts()...)
		if err != nil {
			return err
		}
		name := "naive class-per-round"
		if kw {
			name = "KW block merging [20]"
		}
		legal := "ok"
		if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
			legal = "ILLEGAL"
		}
		t.Add(name, res.Stats.Rounds, graph.MaxColor(res.Outputs), legal)
	}
	t.Render(w)
	return nil
}

// ablateMessageModes: §5 wide vs short on the standalone edge Alg 1.
func ablateMessageModes(w io.Writer, cfg Config) error {
	g := graph.TargetDegreeGNM(256, 48, 8)
	t := Table{
		Title:  "Ablation A2 (§5): ψ-window message modes, b=1 p=12",
		Header: []string{"mode", "rounds", "maxMsgB", "bytes total"},
	}
	for _, tc := range []struct {
		name string
		mode edgecolor.MsgMode
	}{{"wide", edgecolor.Wide}, {"short", edgecolor.Short}} {
		res, err := edgecolor.DefectiveEdgeColoring(g, 1, 12, tc.mode, cfg.opts()...)
		if err != nil {
			return err
		}
		t.Add(tc.name, res.Stats.Rounds, res.Stats.MaxMessageBytes, res.Stats.Bytes)
	}
	t.Render(w)
	return nil
}

// ablateMultiClass: the §5 leaf property — many classes, same rounds.
func ablateMultiClass(w io.Writer, cfg Config) error {
	g := graph.RandomRegular(96, 12, 9)
	degBound := g.MaxDegree()
	t := Table{
		Title:  "Ablation A3 (§5 leaf): Panconesi-Rizzi classes in parallel",
		Header: []string{"classes", "rounds"},
	}
	for _, classes := range []int{1, 2, 4, 8} {
		res, err := dist.Run(g, func(v dist.Process) []int {
			classOf := make([]int, v.Deg())
			for p := range classOf {
				classOf[p] = (v.ID()+v.NeighborID(p))%classes + 1
			}
			return panconesi.EdgeColorMulti(v, classOf, degBound)
		}, cfg.opts()...)
		if err != nil {
			return err
		}
		t.Add(classes, res.Stats.Rounds)
	}
	t.Render(w)
	return nil
}

// ablateWindow: Lemma 3.2 — event-driven Alg 1 finishes before the fixed
// #ϕ-palette window that the lockstep recursion pays.
func ablateWindow(w io.Writer, cfg Config) error {
	g := graph.RandomRegular(128, 12, 10).LineGraph()
	delta := g.MaxDegree()
	b, p := 2, 4
	phiSteps := defective.Schedule(g.N(), delta, delta/(b*p))
	t := Table{
		Title:  "Ablation A4 (Lemma 3.2): Algorithm 1 while-loop scheduling",
		Header: []string{"mode", "rounds", "ϕ-palette window"},
	}
	window := linial.FinalPalette(g.N(), phiSteps)
	for _, fixed := range []bool{true, false} {
		res, err := dist.Run(g, func(v dist.Process) int {
			return core.DefectiveColorStep(v, nil, p, phiSteps, v.ID(), g.N(), fixed).Psi
		}, cfg.opts()...)
		if err != nil {
			return err
		}
		name := "event-driven (standalone)"
		if fixed {
			name = "fixed window (lockstep recursion)"
		}
		t.Add(name, res.Stats.Rounds, window)
	}
	t.Render(w)
	return nil
}
