package exp

import (
	"fmt"

	"repro/internal/graph"
)

// GraphSpec names one generated graph: a generator family plus its
// parameters. It is the shared workload vocabulary of the experiment harness,
// the coloring service (requests carry a spec, the server builds the graph),
// and the load generator (mixes are lists of specs). Building the same spec
// twice yields identical graphs — the generators are seed-deterministic — so
// a spec is as good a cache key as the graph fingerprint it expands to.
//
// Unused parameters are ignored by families that do not take them; the
// canonical String renders only the parameters the family consumes, so specs
// that build identical graphs render identically.
type GraphSpec struct {
	// Family is one of the names accepted by Build: gnm, regular, cycle,
	// path, complete, tree, geometric, powercycle, grid, fig1, linegraph,
	// hyperline.
	Family string `json:"family"`
	// N is the base vertex count (gnm, regular, cycle, path, complete,
	// tree, geometric, powercycle, grid [width], linegraph, hyperline).
	N int `json:"n,omitempty"`
	// M is the edge / hyperedge count (gnm, linegraph, hyperline) or the
	// grid height.
	M int `json:"m,omitempty"`
	// Deg is the degree (regular), the cycle power (powercycle), the clique
	// size (fig1), or the hypergraph rank (hyperline).
	Deg int `json:"deg,omitempty"`
	// Seed drives the randomized generators; deterministic families
	// ignore it.
	Seed int64 `json:"seed,omitempty"`
}

// String renders the spec canonically, e.g. "gnm(n=256,m=1024,seed=1)".
func (s GraphSpec) String() string {
	switch s.Family {
	case "gnm":
		return fmt.Sprintf("gnm(n=%d,m=%d,seed=%d)", s.N, s.M, s.Seed)
	case "regular":
		return fmt.Sprintf("regular(n=%d,deg=%d,seed=%d)", s.N, s.Deg, s.Seed)
	case "cycle", "path", "complete":
		return fmt.Sprintf("%s(n=%d)", s.Family, s.N)
	case "tree":
		return fmt.Sprintf("tree(n=%d,seed=%d)", s.N, s.Seed)
	case "geometric":
		return fmt.Sprintf("geometric(n=%d,seed=%d)", s.N, s.Seed)
	case "powercycle":
		return fmt.Sprintf("powercycle(n=%d,k=%d)", s.N, s.Deg)
	case "grid":
		return fmt.Sprintf("grid(w=%d,h=%d)", s.N, s.M)
	case "fig1":
		return fmt.Sprintf("fig1(k=%d)", s.Deg)
	case "linegraph":
		return fmt.Sprintf("linegraph(n=%d,m=%d,seed=%d)", s.N, s.M, s.Seed)
	case "hyperline":
		return fmt.Sprintf("hyperline(n=%d,m=%d,r=%d,seed=%d)", s.N, s.M, s.Deg, s.Seed)
	default:
		return fmt.Sprintf("%s?(n=%d,m=%d,deg=%d,seed=%d)", s.Family, s.N, s.M, s.Deg, s.Seed)
	}
}

// Build expands the spec into its graph. Parameters are validated per family;
// an unknown family or out-of-range parameter is an error, never a panic, so
// specs can come straight off the wire.
func (s GraphSpec) Build() (g *graph.Graph, err error) {
	// The generators panic on invalid parameters; the explicit checks below
	// cover the known cases, and this net turns any remaining one into an
	// error a server can refuse instead of a crash.
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("exp: invalid spec %v: %v", s, r)
		}
	}()
	if s.N < 0 || s.M < 0 || s.Deg < 0 {
		return nil, fmt.Errorf("exp: negative parameter in %v", s)
	}
	// Size ceilings: the generators allocate eagerly, and a spec can come
	// from an unauthenticated request — an absurd size must be an error,
	// not an OOM. The parameter ceilings here are the first gate; families
	// whose output is larger than their parameters (line graphs, cycle
	// powers, regular graphs) get an expansion check below, against maxM
	// on the number of edges they would materialize.
	if s.N > maxN || s.M > maxM || s.Deg > maxDeg {
		return nil, fmt.Errorf("exp: spec %v exceeds size ceilings (n<=%d, m<=%d, deg<=%d)", s, maxN, maxM, maxDeg)
	}
	switch s.Family {
	case "gnm":
		if max := s.N * (s.N - 1) / 2; s.M > max {
			return nil, fmt.Errorf("exp: gnm m=%d exceeds max %d for n=%d", s.M, max, s.N)
		}
		return graph.GNM(s.N, s.M, s.Seed), nil
	case "regular":
		if s.Deg >= s.N || s.N*s.Deg%2 != 0 {
			return nil, fmt.Errorf("exp: regular needs deg < n and n·deg even, got n=%d deg=%d", s.N, s.Deg)
		}
		if s.N*s.Deg/2 > maxM {
			return nil, fmt.Errorf("exp: regular n=%d deg=%d would have %d edges (max %d)", s.N, s.Deg, s.N*s.Deg/2, maxM)
		}
		return graph.RandomRegular(s.N, s.Deg, s.Seed), nil
	case "cycle":
		if s.N < 3 {
			return nil, fmt.Errorf("exp: cycle needs n >= 3, got %d", s.N)
		}
		return graph.Cycle(s.N), nil
	case "path":
		return graph.Path(s.N), nil
	case "complete":
		if s.N > 2048 {
			return nil, fmt.Errorf("exp: complete n=%d too large", s.N)
		}
		return graph.Complete(s.N), nil
	case "tree":
		return graph.RandomTree(s.N, s.Seed), nil
	case "geometric":
		// Expected edges grow as n²·r² with the fixed radius 0.08; past
		// this n the materialized graph outgrows the edge ceiling.
		if s.N > 1<<13 {
			return nil, fmt.Errorf("exp: geometric n=%d too large (max %d)", s.N, 1<<13)
		}
		return graph.Geometric(s.N, 0.08, s.Seed), nil
	case "powercycle":
		if s.N < 2*s.Deg+2 {
			return nil, fmt.Errorf("exp: powercycle needs n >= 2k+2, got n=%d k=%d", s.N, s.Deg)
		}
		if s.N*s.Deg > maxM {
			return nil, fmt.Errorf("exp: powercycle n=%d k=%d would have %d edges (max %d)", s.N, s.Deg, s.N*s.Deg, maxM)
		}
		return graph.PowerOfCycle(s.N, s.Deg), nil
	case "grid":
		if s.N*s.M > maxN {
			return nil, fmt.Errorf("exp: grid %dx%d has %d vertices (max %d)", s.N, s.M, s.N*s.M, maxN)
		}
		return graph.Grid(s.N, s.M), nil
	case "fig1":
		if s.Deg < 2 || s.Deg > 256 {
			return nil, fmt.Errorf("exp: fig1 needs 2 <= k <= 256, got %d", s.Deg)
		}
		return graph.CliquePlusPendants(s.Deg), nil
	case "linegraph":
		if max := s.N * (s.N - 1) / 2; s.M > max {
			return nil, fmt.Errorf("exp: linegraph m=%d exceeds max %d for n=%d", s.M, max, s.N)
		}
		base := graph.GNM(s.N, s.M, s.Seed)
		if le := lineEdges(base.Degrees()); le > maxM {
			return nil, fmt.Errorf("exp: L(gnm(n=%d,m=%d)) would have ~%d edges (max %d)", s.N, s.M, le, maxM)
		}
		return base.LineGraph(), nil
	case "hyperline":
		if s.Deg < 2 || s.Deg > s.N {
			// rank > n would make the generator loop forever trying to
			// collect more distinct vertices than exist.
			return nil, fmt.Errorf("exp: hyperline needs 2 <= rank <= n, got rank=%d n=%d", s.Deg, s.N)
		}
		// Pre-checks on the hypergraph itself: membership lists are m·r
		// ints, and the generator retries duplicate hyperedges, so m must
		// leave room among the distinct possibilities.
		if s.M*s.Deg > 4*maxM {
			return nil, fmt.Errorf("exp: hyperline m=%d r=%d membership too large", s.M, s.Deg)
		}
		if s.M > s.N*(s.N-1)/2 {
			return nil, fmt.Errorf("exp: hyperline m=%d exceeds the distinct-hyperedge budget for n=%d", s.M, s.N)
		}
		h := graph.RandomHypergraph(s.N, s.M, s.Deg, s.Seed)
		counts := make([]int, s.N)
		for _, e := range h.Edges {
			for _, v := range e {
				counts[v]++
			}
		}
		if le := lineEdges(counts); le > maxM {
			return nil, fmt.Errorf("exp: L(hypergraph(n=%d,m=%d,r=%d)) would have ~%d edges (max %d)", s.N, s.M, s.Deg, le, maxM)
		}
		return h.LineGraph(), nil
	default:
		return nil, fmt.Errorf("exp: unknown graph family %q", s.Family)
	}
}

// maxN, maxM, maxDeg are the service-facing size ceilings of Build: large
// enough for every experiment in the repository, small enough that the
// worst-case allocation a single request can trigger stays modest.
const maxN, maxM, maxDeg = 1 << 20, 1 << 21, 1 << 10

// lineEdges upper-bounds the edge count of a line graph from the base
// degree (or membership-count) sequence: Σ C(d,2), exact up to triangle
// collapsing.
func lineEdges(degs []int) int {
	total := 0
	for _, d := range degs {
		total += d * (d - 1) / 2
		if total > 4*maxM { // early out: already hopeless
			return total
		}
	}
	return total
}
