package exp

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestMutationStreamValid replays every generator kind against a mirror
// edge set: each emitted op must be valid at its position, and the stream
// must be deterministic (same spec, same ops).
func TestMutationStreamValid(t *testing.T) {
	streams := []MutationStream{
		{Kind: "mix", Base: GraphSpec{Family: "gnm", N: 30, M: 60, Seed: 1}, Ops: 300, Seed: 2},
		{Kind: "mix", Base: GraphSpec{Family: "path", N: 10}, Ops: 200, Seed: 3, InsertPct: 20},
		{Kind: "window", Base: GraphSpec{Family: "cycle", N: 16}, Ops: 250, Seed: 4, Window: 10},
		{Kind: "hotspot", Base: GraphSpec{Family: "gnm", N: 40, M: 80, Seed: 5}, Ops: 300, Seed: 6, Hot: 6},
	}
	for _, s := range streams {
		t.Run(s.String(), func(t *testing.T) {
			g, muts, err := s.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if len(muts) != s.Ops {
				t.Fatalf("generated %d ops, want %d", len(muts), s.Ops)
			}
			edges := make(map[graph.Edge]bool)
			for _, e := range g.Edges() {
				edges[e] = true
			}
			for i, mut := range muts {
				if mut.U == mut.V || mut.U < 0 || mut.V < 0 || mut.U >= g.N() || mut.V >= g.N() {
					t.Fatalf("op %d: bad endpoints %+v", i, mut)
				}
				e := graph.Edge{U: min(mut.U, mut.V), V: max(mut.U, mut.V)}
				switch mut.Op {
				case OpInsert:
					if edges[e] {
						t.Fatalf("op %d: insert of existing edge %v", i, e)
					}
					edges[e] = true
				case OpDelete:
					if !edges[e] {
						t.Fatalf("op %d: delete of non-edge %v", i, e)
					}
					delete(edges, e)
				default:
					t.Fatalf("op %d: unknown op %q", i, mut.Op)
				}
			}
			_, again, err := s.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(muts, again) {
				t.Fatal("stream is not deterministic")
			}
		})
	}
}

// TestMutationStreamWindow: the window generator's live-insert count never
// exceeds the window, and deletes retire the oldest insert first.
func TestMutationStreamWindow(t *testing.T) {
	s := MutationStream{Kind: "window", Base: GraphSpec{Family: "path", N: 40}, Ops: 100, Seed: 9, Window: 7}
	_, muts, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var live []Mutation
	for i, mut := range muts {
		switch mut.Op {
		case OpInsert:
			live = append(live, mut)
			if len(live) > 7 {
				t.Fatalf("op %d: %d live inserts exceed window 7", i, len(live))
			}
		case OpDelete:
			if len(live) == 0 {
				t.Fatalf("op %d: delete with no live inserts", i)
			}
			if oldest := live[0]; mut.U != oldest.U || mut.V != oldest.V {
				t.Fatalf("op %d: deleted %v, oldest live is %v", i, mut, oldest)
			}
			live = live[1:]
		}
	}
}

// TestMutationStreamHotspot: hotspot inserts stay inside the hot pool.
func TestMutationStreamHotspot(t *testing.T) {
	s := MutationStream{Kind: "hotspot", Base: GraphSpec{Family: "gnm", N: 50, M: 100, Seed: 7}, Ops: 200, Seed: 8, Hot: 5}
	_, muts, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i, mut := range muts {
		if mut.Op == OpInsert && (mut.U >= 5 || mut.V >= 5) {
			t.Fatalf("op %d: hotspot insert %+v outside pool [0,5)", i, mut)
		}
	}
}

// TestMutationStreamErrors pins the rejection paths.
func TestMutationStreamErrors(t *testing.T) {
	bad := []MutationStream{
		{Kind: "spiral", Base: GraphSpec{Family: "path", N: 8}, Ops: 10},
		{Kind: "mix", Base: GraphSpec{Family: "nope", N: 8}, Ops: 10},
		{Kind: "mix", Base: GraphSpec{Family: "path", N: 8}, Ops: -1},
		{Kind: "mix", Base: GraphSpec{Family: "path", N: 8}, Ops: 10, InsertPct: 101},
		{Kind: "mix", Base: GraphSpec{Family: "path", N: 1}, Ops: 10},
	}
	for _, s := range bad {
		if _, _, err := s.Generate(); err == nil {
			t.Errorf("%v: Generate succeeded, want error", s)
		}
	}
}
