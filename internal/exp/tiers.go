package exp

import (
	"io"

	"repro/internal/algreg"
	"repro/internal/dist"
	"repro/internal/graph"
)

func init() {
	register("tiers", "Algorithm tiers: colors vs rounds of the servable edge algorithms (fast vs fewcolors)", runTiers)
}

// runTiers measures the colors-vs-rounds position of every servable edge
// algorithm — the quality-knob story in one table. The fast tier (be, pr,
// greedy) buys few rounds at a 2Δ-1-ish palette; the fewcolors tier spends
// Kempe-sweep rounds to land near Δ. The gnm row is the acceptance instance:
// fewcolors' measured palette must sit strictly below the fast tier's.
func runTiers(w io.Writer, cfg Config) error {
	t := Table{
		Title: "Algorithm tiers: measured colors vs rounds, servable edge algorithms",
		Note: "bound = the algorithm's palette bound for the instance; colors = distinct colors used.\n" +
			"quality is the /v1/color knob: fast answers in few rounds, fewcolors trades rounds for a\n" +
			"palette near Δ (PR base + per-class Kempe vacate/descent sweeps).",
		Header: []string{"graph", "Δ", "alg", "quality", "bound", "colors", "rounds", "legal"},
	}
	specs := []GraphSpec{
		{Family: "gnm", N: 2000, M: 40000, Seed: 1},
		{Family: "regular", N: 500, Deg: 16, Seed: 1},
		{Family: "powercycle", N: 200, Deg: 8},
	}
	var algs []*algreg.Algorithm
	for _, a := range algreg.Servable() {
		if a.Kind == "edge" {
			algs = append(algs, a)
		}
	}
	type cell struct{ spec, alg int }
	var cells []cell
	for si := range specs {
		for ai := range algs {
			cells = append(cells, cell{si, ai})
		}
	}
	rows, err := Parallel(cfg, len(cells), func(i int) ([]interface{}, error) {
		spec, a := specs[cells[i].spec], algs[cells[i].alg]
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		params := algreg.Params{B: 2, Mode: "wide"}
		if err := a.Canon(&params); err != nil {
			return nil, err
		}
		algo, bound, err := a.BuildEdge(g, params)
		if err != nil {
			return nil, err
		}
		res, err := dist.RunAlgo(g, algo, cfg.opts()...)
		if err != nil {
			return nil, err
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return nil, err
		}
		legal := "ok"
		if graph.CheckEdgeColoring(g, colors) != nil {
			legal = "ILLEGAL"
		}
		return []interface{}{spec.String(), g.MaxDegree(), a.Name, a.Quality,
			bound, graph.CountColors(colors), res.Stats.Rounds, legal}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.Add(row...)
	}
	t.Render(w)
	return nil
}
