// Package exp is the experiment harness: it regenerates every table and
// figure of the paper (Tables 1-2, Figures 1-3) and validates the
// quantitative theorem-level claims (the experiment index E1-E8 of
// DESIGN.md). Each experiment renders plain-text tables; cmd/repro runs them
// from the command line and bench_test.go exposes them as benchmarks.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a rendered experiment artifact: a titled text table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a named, runnable experiment. Run renders the experiment's
// tables to w under the given execution Config; the artifact bytes are
// independent of the Config (engine choice and grid parallelism change
// wall-clock only).
type Experiment struct {
	Name string
	Desc string
	Run  func(w io.Writer, cfg Config) error
}

var registry = map[string]Experiment{}

func register(name, desc string, run func(w io.Writer, cfg Config) error) {
	registry[name] = Experiment{Name: name, Desc: desc, Run: run}
}

// Lookup returns the experiment with the given name.
func Lookup(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// All returns every registered experiment, sorted by name.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
