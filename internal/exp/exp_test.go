package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dist"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"a", "bbbb"},
	}
	tab.Add(1, "x")
	tab.Add(22.5, "yy")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "bbbb", "22.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig1", "fig2", "fig3",
		"defectproduct", "vertexscaling", "msgsize", "cor54",
		"cor62", "tradeoff", "linegraphsim", "ni", "ablation",
		"tiers",
	}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
	// All() is sorted.
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("All() not sorted")
		}
	}
}

// TestFastExperimentsRun executes the quick experiments end to end; the
// heavyweight ones (table1, table2, cor62) are exercised by cmd/repro and
// the benchmarks.
func TestFastExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	for _, name := range []string{"fig1", "fig2", "cor54", "ni", "defectproduct", "ablation"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, ok := Lookup(name)
			if !ok {
				t.Fatalf("missing %q", name)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, Config{}); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "==") {
				t.Fatal("no table rendered")
			}
			if strings.Contains(buf.String(), "ILLEGAL") || strings.Contains(buf.String(), "NO") {
				t.Fatalf("experiment reported a violated bound:\n%s", buf.String())
			}
		})
	}
}

// TestArtifactsConfigIndependent pins the harness determinism contract: the
// rendered artifact of an experiment is byte-identical whether the grid runs
// serially or on a wide worker pool, and whichever engine executes the
// simulator runs.
func TestArtifactsConfigIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	for _, name := range []string{"fig1", "cor54", "defectproduct"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		var ref bytes.Buffer
		if err := e.Run(&ref, Config{Workers: 1, Engine: dist.Goroutines}); err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{Workers: 8, Engine: dist.Goroutines},
			{Workers: 1, Engine: dist.Sharded},
			{Workers: 8, Engine: dist.Sharded},
			{Workers: 3, Engine: dist.Lockstep},
		} {
			var got bytes.Buffer
			if err := e.Run(&got, cfg); err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			if got.String() != ref.String() {
				t.Fatalf("%s: artifact differs under %+v", name, cfg)
			}
		}
	}
}

// TestParallelHelper pins the Parallel contract: index-ordered results and
// first-error-by-index, independent of pool width.
func TestParallelHelper(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := Parallel(Config{Workers: workers}, 9, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		_, err = Parallel(Config{Workers: workers}, 9, func(i int) (int, error) {
			if i >= 4 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom 4" {
			t.Fatalf("workers=%d: err = %v, want boom 4 (first in index order)", workers, err)
		}
	}
}
