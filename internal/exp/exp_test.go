package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"a", "bbbb"},
	}
	tab.Add(1, "x")
	tab.Add(22.5, "yy")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "bbbb", "22.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig1", "fig2", "fig3",
		"defectproduct", "vertexscaling", "msgsize", "cor54",
		"cor62", "tradeoff", "linegraphsim", "ni", "ablation",
	}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
	// All() is sorted.
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("All() not sorted")
		}
	}
}

// TestFastExperimentsRun executes the quick experiments end to end; the
// heavyweight ones (table1, table2, cor62) are exercised by cmd/repro and
// the benchmarks.
func TestFastExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	for _, name := range []string{"fig1", "fig2", "cor54", "ni", "defectproduct", "ablation"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, ok := Lookup(name)
			if !ok {
				t.Fatalf("missing %q", name)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "==") {
				t.Fatal("no table rendered")
			}
			if strings.Contains(buf.String(), "ILLEGAL") || strings.Contains(buf.String(), "NO") {
				t.Fatalf("experiment reported a violated bound:\n%s", buf.String())
			}
		})
	}
}
