package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Mutation is one edge churn operation against a dynamic graph session. It
// is the wire vocabulary shared by the experiment harness, the coloring
// service (POST /v1/mutate carries a list of these), and the load
// generator's churn mode.
type Mutation struct {
	// Op is "insert" or "delete".
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
}

const (
	// OpInsert / OpDelete are the Mutation.Op values.
	OpInsert = "insert"
	OpDelete = "delete"
)

// MutationStream names a deterministic churn workload: a base graph plus a
// generator that emits a sequence of always-valid mutations (inserts of
// non-edges, deletes of existing edges) against the evolving edge set.
// Like GraphSpec, the stream is seed-deterministic: the same spec generates
// the same mutation sequence everywhere, so a few bytes transmit an entire
// churn scenario.
type MutationStream struct {
	// Kind selects the generator:
	//   mix     — independent coin per op: insert a random non-edge or
	//             delete a random edge (InsertPct biases the coin);
	//   window  — streaming sliding window: insert fresh random edges and,
	//             once Window of them are live, delete the oldest first
	//             (steady-state alternation, models log-structured churn);
	//   hotspot — the mix generator confined to a Hot-vertex pool, so
	//             mutations hammer one neighborhood (the adversarial case
	//             for repair locality).
	Kind string `json:"kind"`
	// Base names the starting graph.
	Base GraphSpec `json:"base"`
	// Ops is the number of mutations to generate.
	Ops int `json:"ops"`
	// Seed drives the generator.
	Seed int64 `json:"seed,omitempty"`
	// InsertPct is the insert percentage of mix and hotspot (default 50).
	InsertPct int `json:"insertPct,omitempty"`
	// Window is the live-edge budget of window (default 32).
	Window int `json:"window,omitempty"`
	// Hot is the hotspot vertex-pool size (default max(4, n/16)).
	Hot int `json:"hot,omitempty"`
}

// String renders the stream canonically.
func (s MutationStream) String() string {
	switch s.Kind {
	case "mix":
		return fmt.Sprintf("mix(base=%s,ops=%d,insertPct=%d,seed=%d)", s.Base, s.Ops, s.InsertPct, s.Seed)
	case "window":
		return fmt.Sprintf("window(base=%s,ops=%d,window=%d,seed=%d)", s.Base, s.Ops, s.Window, s.Seed)
	case "hotspot":
		return fmt.Sprintf("hotspot(base=%s,ops=%d,hot=%d,insertPct=%d,seed=%d)", s.Base, s.Ops, s.Hot, s.InsertPct, s.Seed)
	default:
		return fmt.Sprintf("%s?(base=%s,ops=%d,seed=%d)", s.Kind, s.Base, s.Ops, s.Seed)
	}
}

// Generate builds the base graph and the mutation sequence. Every emitted
// mutation is valid at its position: inserts name non-edges of the evolving
// graph, deletes name existing edges. A generator that cannot make progress
// (complete graph and insert forced, say) flips the operation; if neither
// direction is possible the stream ends early.
func (s MutationStream) Generate() (*graph.Graph, []Mutation, error) {
	if s.Ops < 0 || s.Ops > 1<<20 {
		return nil, nil, fmt.Errorf("exp: stream ops=%d out of range [0, %d]", s.Ops, 1<<20)
	}
	g, err := s.Base.Build()
	if err != nil {
		return nil, nil, err
	}
	if g.N() < 2 {
		return nil, nil, fmt.Errorf("exp: stream base %v has no room for edges", s.Base)
	}
	st := newStreamState(g, s.Seed)
	var muts []Mutation
	switch s.Kind {
	case "mix", "hotspot":
		pct := s.InsertPct
		if pct <= 0 {
			pct = 50
		}
		if pct > 100 {
			return nil, nil, fmt.Errorf("exp: insertPct=%d out of range", pct)
		}
		pool := g.N()
		if s.Kind == "hotspot" {
			pool = s.Hot
			if pool <= 0 {
				pool = g.N() / 16
			}
			if pool < 4 {
				pool = 4
			}
			if pool > g.N() {
				pool = g.N()
			}
		}
		for len(muts) < s.Ops {
			mut, ok := st.mixStep(pct, pool)
			if !ok {
				break
			}
			muts = append(muts, mut)
		}
	case "window":
		window := s.Window
		if window <= 0 {
			window = 32
		}
		var live []graph.Edge // FIFO of this stream's own inserts
		for len(muts) < s.Ops {
			if len(live) >= window {
				e := live[0]
				live = live[1:]
				st.delete(e)
				muts = append(muts, Mutation{Op: OpDelete, U: e.U, V: e.V})
				continue
			}
			e, ok := st.randomNonEdge(g.N())
			if !ok {
				break
			}
			st.insert(e)
			live = append(live, e)
			muts = append(muts, Mutation{Op: OpInsert, U: e.U, V: e.V})
		}
	default:
		return nil, nil, fmt.Errorf("exp: unknown stream kind %q (want mix, window, or hotspot)", s.Kind)
	}
	return g, muts, nil
}

// streamState tracks the evolving edge set so every generated op is valid.
type streamState struct {
	rng   *rand.Rand
	edges []graph.Edge
	idx   map[graph.Edge]int
}

func newStreamState(g *graph.Graph, seed int64) *streamState {
	st := &streamState{
		rng:   rand.New(rand.NewSource(seed)),
		edges: append([]graph.Edge(nil), g.Edges()...),
		idx:   make(map[graph.Edge]int, g.M()),
	}
	for i, e := range st.edges {
		st.idx[e] = i
	}
	return st
}

func (st *streamState) has(e graph.Edge) bool { _, ok := st.idx[e]; return ok }

func (st *streamState) insert(e graph.Edge) {
	st.idx[e] = len(st.edges)
	st.edges = append(st.edges, e)
}

// delete removes e by swapping the last edge into its slot.
func (st *streamState) delete(e graph.Edge) {
	i := st.idx[e]
	last := len(st.edges) - 1
	st.edges[i] = st.edges[last]
	st.idx[st.edges[i]] = i
	st.edges = st.edges[:last]
	delete(st.idx, e)
}

// randomNonEdge rejection-samples a uniform non-edge among the first pool
// vertices; ok is false when the pool is (effectively) complete.
func (st *streamState) randomNonEdge(pool int) (graph.Edge, bool) {
	for try := 0; try < 256; try++ {
		u, v := st.rng.Intn(pool), st.rng.Intn(pool)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := graph.Edge{U: u, V: v}
		if !st.has(e) {
			return e, true
		}
	}
	return graph.Edge{}, false
}

// randomPoolEdge picks a uniform existing edge with both endpoints in the
// pool, falling back to any edge when the pool holds none; ok is false when
// the graph is edgeless.
func (st *streamState) randomPoolEdge(pool int) (graph.Edge, bool) {
	if len(st.edges) == 0 {
		return graph.Edge{}, false
	}
	for try := 0; try < 256; try++ {
		e := st.edges[st.rng.Intn(len(st.edges))]
		if e.U < pool && e.V < pool {
			return e, true
		}
	}
	return st.edges[st.rng.Intn(len(st.edges))], true
}

// mixStep performs one biased-coin step of the mix/hotspot generators.
func (st *streamState) mixStep(insertPct, pool int) (Mutation, bool) {
	wantInsert := st.rng.Intn(100) < insertPct
	if wantInsert {
		if e, ok := st.randomNonEdge(pool); ok {
			st.insert(e)
			return Mutation{Op: OpInsert, U: e.U, V: e.V}, true
		}
		wantInsert = false // pool complete: flip to delete
	}
	if e, ok := st.randomPoolEdge(pool); ok {
		st.delete(e)
		return Mutation{Op: OpDelete, U: e.U, V: e.V}, true
	}
	// Edgeless: flip back to an unrestricted insert if possible.
	if e, ok := st.randomNonEdge(pool); ok {
		st.insert(e)
		return Mutation{Op: OpInsert, U: e.U, V: e.V}, true
	}
	return Mutation{}, false
}
