package exp

import (
	"strings"
	"testing"
	"time"
)

func TestGraphSpecBuild(t *testing.T) {
	ok := []GraphSpec{
		{Family: "gnm", N: 32, M: 64, Seed: 1},
		{Family: "regular", N: 16, Deg: 4, Seed: 2},
		{Family: "cycle", N: 9},
		{Family: "path", N: 5},
		{Family: "complete", N: 6},
		{Family: "tree", N: 12, Seed: 3},
		{Family: "geometric", N: 40, Seed: 4},
		{Family: "powercycle", N: 20, Deg: 3},
		{Family: "grid", N: 4, M: 5},
		{Family: "fig1", Deg: 5},
		{Family: "linegraph", N: 12, M: 24, Seed: 5},
		{Family: "hyperline", N: 18, M: 12, Deg: 3, Seed: 6},
	}
	for _, s := range ok {
		g, err := s.Build()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// Rebuilding must yield an identical graph: specs are cache keys.
		g2, err := s.Build()
		if err != nil {
			t.Fatalf("%v rebuild: %v", s, err)
		}
		if g.Fingerprint() != g2.Fingerprint() {
			t.Fatalf("%v: rebuild produced a different graph", s)
		}
		if strings.Contains(s.String(), "?") {
			t.Fatalf("%v: family missing from String", s)
		}
	}

	bad := []GraphSpec{
		{Family: "nosuch", N: 4},
		{Family: "gnm", N: 4, M: 100},
		{Family: "gnm", N: -1},
		{Family: "regular", N: 5, Deg: 3}, // odd n·deg
		{Family: "regular", N: 4, Deg: 4}, // deg >= n
		{Family: "cycle", N: 2},
		{Family: "powercycle", N: 7, Deg: 3}, // n < 2k+2, would panic unchecked
		{Family: "fig1", Deg: 1},
		{Family: "hyperline", N: 9, M: 6, Deg: 1},
		{Family: "complete", N: 5000},
		// Expansion ceilings: parameters in range, materialized graph not.
		{Family: "path", N: 100000000000},
		{Family: "linegraph", N: 1000, M: 400000, Seed: 1},
		{Family: "powercycle", N: 1 << 20, Deg: 1 << 10},
		{Family: "regular", N: 1 << 20, Deg: 1 << 9},
		{Family: "geometric", N: 1 << 19},
		{Family: "grid", N: 1 << 15, M: 1 << 15},
		{Family: "hyperline", N: 4000, M: 1 << 21, Deg: 100, Seed: 1},
	}
	for _, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Fatalf("%v: want error", s)
		}
	}
}

// TestHyperlineRankCeiling pins the rank <= n guard: rank > n would make the
// hypergraph generator loop forever collecting distinct vertices.
func TestHyperlineRankCeiling(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := (GraphSpec{Family: "hyperline", N: 2, M: 1, Deg: 5}).Build(); err == nil {
			t.Error("rank > n must be rejected")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Build hung on rank > n")
	}
}
