package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
)

func testConfig() Config {
	return Config{Workers: 2, CacheEntries: 128, GraphEntries: 8, BatchWindow: 100 * time.Microsecond}
}

func gnmReq(kind, alg string, seed int64) Request {
	return Request{
		Kind:  kind,
		Alg:   alg,
		Graph: exp.GraphSpec{Family: "gnm", N: 40, M: 120, Seed: 1},
		Seed:  seed,
	}
}

func TestHandleKinds(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	cases := []Request{
		gnmReq("edge", "be", 0),
		gnmReq("edge", "pr", 0),
		gnmReq("edge", "greedy", 0),
		gnmReq("vertex", "be", 0),
		gnmReq("vertex", "greedy", 0),
		{Kind: "edge", Alg: "be", Graph: exp.GraphSpec{Family: "gnm", N: 40, M: 120, Seed: 1}, Mode: "short"},
		{Kind: "vertex", Alg: "be", Graph: exp.GraphSpec{Family: "powercycle", N: 30, Deg: 3}, C: 2},
		{Kind: "edge", Alg: "pr", Graph: exp.GraphSpec{Family: "path", N: 1}}, // edgeless
		{Kind: "vertex", Alg: "be", Graph: exp.GraphSpec{Family: "path", N: 3, Seed: 0}},
	}
	g, err := (exp.GraphSpec{Family: "gnm", N: 40, M: 120, Seed: 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range cases {
		resp, outcome, err := s.Handle(req)
		if err != nil {
			t.Fatalf("%s/%s: %v", req.Kind, req.Alg, err)
		}
		if outcome != Miss {
			t.Fatalf("%s/%s: first request outcome %q, want miss", req.Kind, req.Alg, outcome)
		}
		wantLen := resp.N
		if req.Kind == "edge" {
			wantLen = resp.M
		}
		if len(resp.Colors) != wantLen {
			t.Fatalf("%s/%s: %d colors for %d items", req.Kind, req.Alg, len(resp.Colors), wantLen)
		}
		if resp.NumColors > resp.Palette && resp.Palette > 0 {
			t.Fatalf("%s/%s: used %d colors, palette bound %d", req.Kind, req.Alg, resp.NumColors, resp.Palette)
		}
		if req.Graph.Family == "gnm" && req.Kind == "edge" && len(resp.Colors) > 0 {
			if err := graph.CheckEdgeColoring(g, resp.Colors); err != nil {
				t.Fatalf("%s/%s: illegal coloring escaped: %v", req.Kind, req.Alg, err)
			}
		}
	}
}

func TestCacheHitIsByteIdentical(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	req := gnmReq("edge", "be", 7)
	fresh, outcome, err := s.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Miss {
		t.Fatalf("outcome %q, want miss", outcome)
	}
	runsAfterMiss := s.Stats().Runs
	hit, outcome, err := s.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Hit {
		t.Fatalf("outcome %q, want hit", outcome)
	}
	if got := s.Stats(); got.Runs != runsAfterMiss {
		t.Fatalf("cache hit executed a run: %d -> %d", runsAfterMiss, got.Runs)
	}
	a, _ := json.Marshal(fresh)
	b, _ := json.Marshal(hit)
	if !bytes.Equal(a, b) {
		t.Fatalf("hit body differs from fresh body:\n%s\n%s", a, b)
	}

	// The same request on a different engine must also hit: outputs are
	// engine-independent, so the key excludes the engine.
	req.Engine = "lockstep"
	if _, outcome, err = s.Handle(req); err != nil || outcome != Hit {
		t.Fatalf("other-engine request: outcome %q err %v, want hit", outcome, err)
	}
	// A different seed is a different result.
	req2 := gnmReq("edge", "be", 8)
	if _, outcome, err = s.Handle(req2); err != nil || outcome != Miss {
		t.Fatalf("other-seed request: outcome %q err %v, want miss", outcome, err)
	}
}

func TestHandleRejectsBadRequests(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	bad := []Request{
		{Kind: "nope", Alg: "be", Graph: exp.GraphSpec{Family: "path", N: 4}},
		{Kind: "edge", Alg: "nope", Graph: exp.GraphSpec{Family: "path", N: 4}},
		{Kind: "edge", Alg: "be", Graph: exp.GraphSpec{Family: "nosuch", N: 4}},
		{Kind: "edge", Alg: "be", Graph: exp.GraphSpec{Family: "gnm", N: 4, M: 99}},
		{Kind: "edge", Alg: "be", Graph: exp.GraphSpec{Family: "path", N: 4}, Mode: "nope"},
		{Kind: "edge", Alg: "be", Graph: exp.GraphSpec{Family: "path", N: 4}, Engine: "nope"},
		{Kind: "vertex", Alg: "be", Graph: exp.GraphSpec{Family: "path", N: 4}, B: 1},
	}
	for _, req := range bad {
		if _, _, err := s.Handle(req); err == nil {
			t.Fatalf("%+v: want error", req)
		}
	}
	if errs := s.Stats().Errors; errs != int64(len(bad)) {
		t.Fatalf("error count %d, want %d", errs, len(bad))
	}
}

// TestOptimisticCIsRejected pins the legality firewall: claiming c=1 for a
// graph with neighborhood independence 2 must yield an error, not an illegal
// cached coloring.
func TestOptimisticCIsRejected(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	req := Request{
		Kind:  "vertex",
		Alg:   "be",
		Graph: exp.GraphSpec{Family: "complete", N: 9},
		C:     1,
	}
	resp, _, err := s.Handle(req)
	if err == nil {
		// A lucky plan can still be legal; then nothing to assert.
		if err := graph.CheckVertexColoring(mustBuild(t, req.Graph), resp.Colors); err != nil {
			t.Fatalf("illegal coloring served: %v", err)
		}
	} else if !strings.Contains(err.Error(), "illegal") && !strings.Contains(err.Error(), "service:") && !strings.Contains(err.Error(), "core:") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

func mustBuild(t *testing.T, spec exp.GraphSpec) *graph.Graph {
	t.Helper()
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAliasedSpecsShareCacheButKeepTheirName: Path(6) and Grid(6,1) build
// fingerprint-identical graphs, so the second request is a cache hit — but
// its body must echo its own spec, not the first requester's.
func TestAliasedSpecsShareCacheButKeepTheirName(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	first, outcome, err := s.Handle(Request{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "path", N: 6}})
	if err != nil || outcome != Miss {
		t.Fatalf("path request: outcome %q err %v", outcome, err)
	}
	second, outcome, err := s.Handle(Request{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "grid", N: 6, M: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Hit {
		t.Fatalf("aliased spec outcome %q, want hit (fingerprints should match)", outcome)
	}
	if second.Graph != "grid(w=6,h=1)" {
		t.Fatalf("aliased hit echoes %q, want the request's own spec", second.Graph)
	}
	if first.Graph != "path(n=6)" {
		t.Fatalf("first response names %q", first.Graph)
	}
	a, _ := json.Marshal(first.Colors)
	b, _ := json.Marshal(second.Colors)
	if !bytes.Equal(a, b) {
		t.Fatal("aliased graphs must share colors")
	}
}

// TestFailedSpecsDoNotEvict: distinct invalid specs must not consume
// graph-cache capacity and push out warm graphs.
func TestFailedSpecsDoNotEvict(t *testing.T) {
	cfg := testConfig()
	cfg.GraphEntries = 2
	s := New(cfg)
	defer s.Close()
	warm := Request{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "cycle", N: 12}}
	if _, _, err := s.Handle(warm); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 10; n++ {
		bad := Request{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "nosuch", N: n}}
		if _, _, err := s.Handle(bad); err == nil {
			t.Fatal("bad spec must error")
		}
	}
	pools := s.Stats().Pools
	if len(pools) != 1 || pools[0].Graph != "cycle(n=12)" {
		t.Fatalf("warm graph evicted by failed specs: %+v", pools)
	}
}

func TestGraphCacheEviction(t *testing.T) {
	cfg := testConfig()
	cfg.GraphEntries = 2
	s := New(cfg)
	defer s.Close()
	for n := 10; n < 16; n++ {
		req := Request{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "cycle", N: n}}
		if _, _, err := s.Handle(req); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Stats().Pools); got > 2 {
		t.Fatalf("graph cache holds %d entries, cap 2", got)
	}
	// Evicted graphs still answer (from the result cache, or rebuilt).
	req := Request{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "cycle", N: 10}}
	if _, outcome, err := s.Handle(req); err != nil || outcome != Hit {
		t.Fatalf("post-eviction request: outcome %q err %v, want hit", outcome, err)
	}
}

func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(2) // capacity 2 ⇒ shardsFor gives 1 shard ⇒ strict LRU
	c.put("a", newCacheValue("a", []byte("1")))
	c.put("b", newCacheValue("b", []byte("22")))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", newCacheValue("c", []byte("333"))) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	st := c.snapshot()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != int64(len("1")+len("333")) {
		t.Fatalf("unexpected cache stats: %+v", st)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(gnmReq("edge", "pr", 3))
	var first []byte
	for i, want := range []Outcome{Miss, Hit} {
		resp, err := http.Post(srv.URL+"/v1/color", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		if got := Outcome(resp.Header.Get("X-Colord-Cache")); got != want {
			t.Fatalf("request %d: X-Colord-Cache %q, want %q", i, got, want)
		}
		if i == 0 {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("hit body differs from miss body:\n%s\n%s", first, b)
		}
	}

	resp, err := http.Post(srv.URL+"/v1/color", "application/json", strings.NewReader(`{"kind":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests < 2 || st.Hits < 1 {
		t.Fatalf("statz snapshot implausible: %+v", st)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := &record{
		kind: "edge", alg: "be",
		n: 4, m: 3, delta: 2, palette: 9,
		colors: []int{3, 1, 2},
	}
	rec.stats.Rounds, rec.stats.Bytes, rec.stats.MaxMessageBytes = 5, 100, 9
	got, err := decodeRecord(rec.encode())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rec.response("k", "gnm(n=4,m=3,seed=1)"))
	b, _ := json.Marshal(got.response("k", "gnm(n=4,m=3,seed=1)"))
	if !bytes.Equal(a, b) {
		t.Fatalf("record round trip changed the response:\n%s\n%s", a, b)
	}
	if _, err := decodeRecord([]byte("garbage")); err == nil {
		t.Fatal("garbage record must not decode")
	}
}

// TestCompiledEngineByteIdentical: a service whose default engine is Compiled
// serves byte-identical response bodies to one running Lockstep, for every
// kind/alg pair — fresh runs on both sides (separate services, so the shared
// cache cannot mask a divergence).
func TestCompiledEngineByteIdentical(t *testing.T) {
	cfgC := testConfig()
	cfgC.Engine = dist.Compiled
	sc := New(cfgC)
	defer sc.Close()
	cfgL := testConfig()
	cfgL.Engine = dist.Lockstep
	sl := New(cfgL)
	defer sl.Close()

	if got := sc.Stats().Engine; got != "compiled" {
		t.Fatalf("stats engine = %q, want compiled", got)
	}
	cases := []Request{
		gnmReq("edge", "be", 3),
		gnmReq("edge", "pr", 3),
		gnmReq("edge", "greedy", 3),
		gnmReq("vertex", "be", 3),
		gnmReq("vertex", "greedy", 3),
		{Kind: "vertex", Alg: "be", Graph: exp.GraphSpec{Family: "path", N: 3}}, // edgeless: isolatedVertices
	}
	for _, req := range cases {
		rc, _, err := sc.Handle(req)
		if err != nil {
			t.Fatalf("%s/%s compiled: %v", req.Kind, req.Alg, err)
		}
		rl, _, err := sl.Handle(req)
		if err != nil {
			t.Fatalf("%s/%s lockstep: %v", req.Kind, req.Alg, err)
		}
		a, _ := json.Marshal(rc)
		b, _ := json.Marshal(rl)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s/%s: compiled body differs from lockstep:\n%s\n%s", req.Kind, req.Alg, a, b)
		}
	}

	// Per-request override onto the compiled engine parses and runs.
	req := gnmReq("edge", "greedy", 9)
	req.Engine = "compiled"
	if _, outcome, err := sl.Handle(req); err != nil || outcome != Miss {
		t.Fatalf("compiled override: outcome %q err %v", outcome, err)
	}
}

// TestSessionSnapshotRecordsEngine: dynamic sessions repair on the compiled
// engine and /statz says so.
func TestSessionSnapshotRecordsEngine(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	base := exp.GraphSpec{Family: "gnm", N: 20, M: 40, Seed: 2}
	if _, _, err := s.Mutate(MutateRequest{Session: "a", Base: &base}); err != nil {
		t.Fatal(err)
	}
	sessions := s.Stats().Sessions
	if len(sessions) != 1 {
		t.Fatalf("got %d sessions, want 1", len(sessions))
	}
	if sessions[0].Engine != "compiled" {
		t.Fatalf("session engine = %q, want compiled", sessions[0].Engine)
	}
}
