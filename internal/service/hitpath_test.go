package service

import (
	"encoding/json"
	"testing"

	"repro/internal/dist"
	"repro/internal/exp"
)

// hitPathService returns a service with one result primed into the wire
// fast path, plus the exact raw request bytes that hit it.
func hitPathService(t testing.TB) (*Service, []byte) {
	t.Helper()
	s := New(Config{Workers: 2, Engine: dist.Compiled, CacheEntries: 4096})
	req := Request{Kind: "edge", Alg: "be", Graph: exp.GraphSpec{Family: "gnm", N: 48, M: 120, Seed: 1}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, outcome, err := s.HandleRaw(body); err != nil {
		t.Fatal(err)
	} else if outcome != Miss {
		t.Fatalf("priming request: outcome %q, want miss", outcome)
	}
	if _, _, outcome, err := s.HandleRaw(body); err != nil || outcome != Hit {
		t.Fatalf("primed request: outcome %q err %v, want hit", outcome, err)
	}
	return s, body
}

// TestHitPathAllocs is the allocation budget of the serving fast path: a
// wire fast-lane hit must stay within hitPathAllocBudget allocations per
// request (the design target is zero — the budget leaves headroom for
// runtime changes without masking a real regression).
func TestHitPathAllocs(t *testing.T) {
	const hitPathAllocBudget = 8
	s, body := hitPathService(t)
	defer s.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, outcome, err := s.HandleRaw(body); err != nil || outcome != Hit {
			t.Fatalf("outcome %q err %v, want hit", outcome, err)
		}
	})
	if allocs > hitPathAllocBudget {
		t.Fatalf("hit path allocates %.1f allocs/op, budget %d", allocs, hitPathAllocBudget)
	}
	t.Logf("hit path: %.1f allocs/op (budget %d)", allocs, hitPathAllocBudget)
}

// TestHitPathBody pins that the fast-lane body is byte-identical to the
// slow lane's render: decode the raw hit through the typed API and re-encode.
func TestHitPathBody(t *testing.T) {
	s, body := hitPathService(t)
	defer s.Close()
	fast, key, _, err := s.HandleRaw(body)
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	resp, _, err := s.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	slow = append(slow, '\n')
	if string(fast) != string(slow) {
		t.Fatalf("fast-lane body differs from typed render:\nfast: %s\nslow: %s", fast, slow)
	}
	if key != resp.Key {
		t.Fatalf("fast-lane key %q, typed key %q", key, resp.Key)
	}
}

// BenchmarkHitPath measures the full in-process serving cost of a wire
// fast-lane hit: hash, striped lookup, counters. Run with -benchmem; the
// benchcmp gate watches ns/op, B/op, and allocs/op.
func BenchmarkHitPath(b *testing.B) {
	s, body := hitPathService(b)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := s.HandleRaw(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHitPathParallel is the contended variant: every P hammers the
// same key, so it measures the striped counters and the shared shard mutex
// under maximum collision.
func BenchmarkHitPathParallel(b *testing.B) {
	s, body := hitPathService(b)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, _, err := s.HandleRaw(body); err != nil {
				b.Fatal(err)
			}
		}
	})
}
