// Package service is colord's engine room: a long-running coloring service
// on top of the deterministic dist runtime.
//
// A request names a generated graph (exp.GraphSpec), a coloring kind (edge
// or vertex), an algorithm, and a seed. The service resolves it against a
// bounded LRU of built graphs (each carrying reusable dist runner pools),
// then serves it through three layers:
//
//   - a deterministic result cache keyed by a canonical hash of the graph
//     fingerprint and the output-affecting parameters — the runtime is
//     deterministic, so a key has exactly one possible value, and a hit
//     costs zero runtime rounds;
//   - a micro-batcher: concurrent misses are collected for a short window,
//     duplicates of the same key are coalesced onto one execution
//     (single-flight), and distinct jobs of a batch dispatch together;
//   - a bounded worker stage executing each job on the graph's runner pool
//     (dist.Pool), so per-vertex runtime state is amortized across requests
//     touching the same graph.
//
// Responses are byte-identical to a direct dist.Run of the same request —
// cache hits, coalesced waiters, and fresh computations alike — which
// TestServiceMatchesDirect pins adversarially under -race.
package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
)

// Config sizes the service. The zero value is usable: every field has a
// working default.
type Config struct {
	// Workers bounds concurrent algorithm executions (and the runner cap of
	// each graph's pool). <= 0 means 4.
	Workers int
	// Engine is the default dist scheduler (requests may override).
	Engine dist.Engine
	// CacheEntries bounds the result cache (default 4096).
	CacheEntries int
	// GraphEntries bounds the built-graph LRU (default 64).
	GraphEntries int
	// BatchWindow is how long the batcher holds the first miss of a batch
	// waiting for companions (default 200µs). Misses pay up to this much
	// extra latency; in exchange bursts dispatch as one grouped wave and
	// same-key arrivals within the window coalesce before any of them
	// executes. Cache hits never enter the batcher. Latency-critical
	// deployments can set it to 1ns to make dispatch effectively
	// immediate.
	BatchWindow time.Duration
	// MaxBatch dispatches a batch early once it has this many distinct
	// jobs (default 64).
	MaxBatch int
	// Sessions bounds the live dynamic graph sessions (default 32); the
	// coldest session is evicted — state and all — when the table is full.
	Sessions int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.GraphEntries <= 0 {
		c.GraphEntries = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Sessions <= 0 {
		c.Sessions = 32
	}
	return c
}

// Outcome says how a response was produced; the HTTP layer reports it in the
// X-Colord-Cache header (never in the body, which stays byte-identical).
type Outcome string

const (
	// Hit: served from the result cache, zero runtime rounds.
	Hit Outcome = "hit"
	// Coalesced: attached to another request's in-flight execution.
	Coalesced Outcome = "coalesced"
	// Miss: this request's execution computed the result.
	Miss Outcome = "miss"
)

// flight is one in-flight execution: the job at most one batch carries for a
// given key at a time. Waiters accumulate until the result lands.
type flight struct {
	c       *canonReq
	waiters []chan flightResult
}

type flightResult struct {
	rec []byte
	err error
}

// ServiceStats is the /statz snapshot.
type ServiceStats struct {
	// Engine is the service's default dist scheduler (requests may override
	// per-call; dynamic sessions always repair on the compiled engine).
	Engine    string            `json:"engine"`
	Requests  int64             `json:"requests"`
	Hits      int64             `json:"hits"`
	Coalesced int64             `json:"coalesced"`
	Runs      int64             `json:"runs"`
	Errors    int64             `json:"errors"`
	Batches   int64             `json:"batches"`
	MaxBatch  int64             `json:"maxBatch"`
	Mutations int64             `json:"mutations"`
	Cache     CacheStats        `json:"cache"`
	Pools     []PoolSnapshot    `json:"pools"`
	Sessions  []SessionSnapshot `json:"sessions"`
}

// Service is the coloring service. Create with New, serve with Handle (or
// the HTTP handler from Handler), stop with Close.
type Service struct {
	cfg      Config
	cache    *resultCache
	graphs   *graphCache
	sessions *sessionTable
	sem      chan struct{}
	submit   chan *flight

	mu       sync.Mutex
	inflight map[string]*flight
	closed   bool

	requests  atomic.Int64
	hits      atomic.Int64
	coalesced atomic.Int64
	runs      atomic.Int64
	errors    atomic.Int64
	batches   atomic.Int64
	maxBatch  atomic.Int64
	mutations atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheEntries),
		graphs:   newGraphCache(cfg.GraphEntries, cfg.Workers),
		sessions: newSessionTable(cfg.Sessions),
		sem:      make(chan struct{}, cfg.Workers),
		submit:   make(chan *flight),
		inflight: make(map[string]*flight),
		stop:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.batchLoop()
	return s
}

// Close stops the batcher and closes every runner pool. Handle calls racing
// with Close may return ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.graphs.close()
	s.sessions.close()
}

// ErrClosed is returned by Handle after Close.
var ErrClosed = errors.New("service: closed")

// Handle serves one request: cache lookup, then coalescing onto an in-flight
// execution, then a batched fresh execution. Safe for arbitrary concurrency.
func (s *Service) Handle(req Request) (*Response, Outcome, error) {
	s.requests.Add(1)
	c, err := s.resolve(req)
	if err != nil {
		s.errors.Add(1)
		return nil, "", err
	}
	if b, ok := s.cache.get(c.key); ok {
		rec, err := decodeRecord(b)
		if err != nil {
			s.errors.Add(1)
			return nil, "", err
		}
		s.hits.Add(1)
		return rec.response(c.key, c.req.Graph.String()), Hit, nil
	}

	ch := make(chan flightResult, 1)
	outcome := Miss
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.errors.Add(1)
		return nil, "", ErrClosed
	}
	f, ok := s.inflight[c.key]
	if ok {
		f.waiters = append(f.waiters, ch)
		outcome = Coalesced
	} else {
		f = &flight{c: c, waiters: []chan flightResult{ch}}
		s.inflight[c.key] = f
	}
	s.mu.Unlock()
	if outcome == Coalesced {
		s.coalesced.Add(1)
	} else {
		select {
		case s.submit <- f:
		case <-s.stop:
			s.fail(f, ErrClosed)
		}
	}

	r := <-ch
	if r.err != nil {
		s.errors.Add(1)
		return nil, "", r.err
	}
	rec, err := decodeRecord(r.rec)
	if err != nil {
		s.errors.Add(1)
		return nil, "", err
	}
	return rec.response(c.key, c.req.Graph.String()), outcome, nil
}

// batchLoop is the micro-batcher: it collects submitted flights until the
// batch window closes (measured from the first flight of the batch) or the
// batch is full, then dispatches the whole batch to the worker stage.
func (s *Service) batchLoop() {
	defer s.wg.Done()
	var batch []*flight
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.batches.Add(1)
		if n := int64(len(batch)); n > s.maxBatch.Load() {
			s.maxBatch.Store(n)
		}
		for _, f := range batch {
			s.wg.Add(1)
			go s.exec(f)
		}
		batch = nil
	}
	for {
		select {
		case f := <-s.submit:
			batch = append(batch, f)
			if len(batch) == 1 {
				timer.Reset(s.cfg.BatchWindow)
			}
			if len(batch) >= s.cfg.MaxBatch {
				if !timer.Stop() {
					<-timer.C
				}
				flush()
			}
		case <-timer.C:
			flush()
		case <-s.stop:
			for _, f := range batch {
				s.fail(f, ErrClosed)
			}
			// Flights submitted concurrently with shutdown are failed by
			// Handle's own select; nothing further arrives here.
			return
		}
	}
}

// exec runs one flight on the bounded worker stage and delivers the wire
// record to every waiter.
func (s *Service) exec(f *flight) {
	defer s.wg.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	// A flight for this key may have completed and cached between our
	// cache miss and this execution; determinism makes recomputing merely
	// wasteful, so look once more before running.
	b, ok := s.cache.get(f.c.key)
	if !ok {
		s.runs.Add(1)
		rec, err := f.c.runner(f.c)
		if err != nil {
			s.fail(f, err)
			return
		}
		b = rec.encode()
		s.cache.put(f.c.key, b)
	}
	s.mu.Lock()
	delete(s.inflight, f.c.key)
	waiters := f.waiters
	f.waiters = nil
	s.mu.Unlock()
	for _, ch := range waiters {
		ch <- flightResult{rec: b}
	}
}

// fail delivers err to every waiter of f and retires the flight.
func (s *Service) fail(f *flight, err error) {
	s.mu.Lock()
	delete(s.inflight, f.c.key)
	waiters := f.waiters
	f.waiters = nil
	s.mu.Unlock()
	for _, ch := range waiters {
		ch <- flightResult{err: err}
	}
}

// Stats snapshots the service counters, cache, and per-graph runner pools.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Engine:    s.cfg.Engine.String(),
		Requests:  s.requests.Load(),
		Hits:      s.hits.Load(),
		Coalesced: s.coalesced.Load(),
		Runs:      s.runs.Load(),
		Errors:    s.errors.Load(),
		Batches:   s.batches.Load(),
		MaxBatch:  s.maxBatch.Load(),
		Mutations: s.mutations.Load(),
		Cache:     s.cache.snapshot(),
		Pools:     s.graphs.snapshot(),
		Sessions:  s.sessions.snapshot(),
	}
}
