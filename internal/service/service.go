// Package service is colord's engine room: a long-running coloring service
// on top of the deterministic dist runtime.
//
// A request names a generated graph (exp.GraphSpec), a coloring kind (edge
// or vertex), an algorithm, and a seed. The service resolves it against a
// bounded LRU of built graphs (each carrying reusable dist runner pools),
// then serves it through four layers:
//
//   - a wire fast path: raw request bytes map straight to prerendered
//     response bytes in a lock-striped LRU (fastCache), so a repeat request
//     is served with zero allocations and no JSON work in either direction;
//   - a deterministic result cache keyed by a canonical hash of the graph
//     fingerprint and the output-affecting parameters — the runtime is
//     deterministic, so a key has exactly one possible value, and a hit
//     costs zero runtime rounds (and, with the response body memoized on
//     the entry, zero encoding work);
//   - a micro-batcher: concurrent misses are collected for a short window,
//     duplicates of the same key are coalesced onto one execution
//     (single-flight), and distinct jobs of a batch dispatch together;
//   - a bounded worker stage executing each job on the graph's runner pool
//     (dist.Pool), so per-vertex runtime state is amortized across requests
//     touching the same graph.
//
// Responses are byte-identical to a direct dist.Run of the same request —
// fast-lane hits, cache hits, coalesced waiters, and fresh computations
// alike — which TestServiceMatchesDirect pins adversarially under -race.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algreg"
	"repro/internal/dist"
)

// Config sizes the service. The zero value is usable: every field has a
// working default.
type Config struct {
	// Workers bounds concurrent algorithm executions (and the runner cap of
	// each graph's pool). <= 0 means 4.
	Workers int
	// Engine is the default dist scheduler (requests may override).
	Engine dist.Engine
	// CacheEntries bounds the result cache (default 4096).
	CacheEntries int
	// FastEntries bounds the wire fast-path cache mapping raw request bytes
	// to prerendered responses (default: CacheEntries).
	FastEntries int
	// GraphEntries bounds the built-graph LRU (default 64).
	GraphEntries int
	// BatchWindow is how long the batcher holds the first miss of a batch
	// waiting for companions (default 200µs). Misses pay up to this much
	// extra latency; in exchange bursts dispatch as one grouped wave and
	// same-key arrivals within the window coalesce before any of them
	// executes. Cache hits never enter the batcher. Latency-critical
	// deployments can set it to 1ns to make dispatch effectively
	// immediate.
	BatchWindow time.Duration
	// MaxBatch dispatches a batch early once it has this many distinct
	// jobs (default 64).
	MaxBatch int
	// Sessions bounds the live dynamic graph sessions (default 32); the
	// coldest session is evicted — state and all — when the table is full.
	Sessions int
	// MaxSubscribers caps concurrent streaming subscribers service-wide
	// (default 4096): the global admission bound on fan-out.
	MaxSubscribers int
	// SessionSubscribers caps subscribers per session (default 1024), so one
	// hot session cannot monopolize the global cap.
	SessionSubscribers int
	// FeedBuffer is each feed's delta backlog in frames (default 256): how
	// far a subscriber may lag before it is dropped with an overflow event.
	// It is also the Last-Event-ID resume window: a reconnect within this
	// many commits replays the gap exactly.
	FeedBuffer int
	// WALDir, when set, makes dynamic sessions durable: every committed
	// mutation appends to a per-session write-ahead log under this
	// directory, and a session whose log exists is rebuilt from it — on
	// restart, after eviction, even when the create request carries no base
	// spec. Empty disables durability (sessions are memory-only, as before).
	WALDir string
	// WALSync fsyncs the session log on every commit (survive power loss,
	// not just process death) at a large per-mutation latency cost.
	WALSync bool
	// RemoteFill, when set, is consulted on a result-cache miss before
	// computing locally: given the request's graph name and canonical cache
	// key, it may return the encoded cache record from a peer that already
	// has it (cluster.Filler does, from the key's rendezvous owner). Invalid
	// or nil returns fall through to local computation — the fill is an
	// optimization, never a correctness dependency.
	RemoteFill func(graphName, key string) []byte
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.FastEntries <= 0 {
		c.FastEntries = c.CacheEntries
	}
	if c.GraphEntries <= 0 {
		c.GraphEntries = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Sessions <= 0 {
		c.Sessions = 32
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 4096
	}
	if c.SessionSubscribers <= 0 {
		c.SessionSubscribers = 1024
	}
	if c.FeedBuffer <= 0 {
		c.FeedBuffer = 256
	}
	return c
}

// Outcome says how a response was produced; the HTTP layer reports it in the
// X-Colord-Cache header (never in the body, which stays byte-identical).
type Outcome string

const (
	// Hit: served from the result cache (or the wire fast path in front of
	// it), zero runtime rounds.
	Hit Outcome = "hit"
	// Coalesced: attached to another request's in-flight execution.
	Coalesced Outcome = "coalesced"
	// Miss: this request's execution computed the result.
	Miss Outcome = "miss"
)

// flight is one in-flight execution: the job at most one batch carries for a
// given key at a time. Waiters accumulate until the result lands.
type flight struct {
	c       *canonReq
	waiters []chan flightResult
}

type flightResult struct {
	val *cacheValue
	err error
}

// ServiceStats is the /statz snapshot. Counters are striped internally;
// Stats sums each stripe with single atomic loads into this one local
// struct, so a snapshot is coherent (no field is read twice) and monotone
// across snapshots.
type ServiceStats struct {
	// Engine is the service's default dist scheduler (requests may override
	// per-call; dynamic sessions always repair on the compiled engine).
	Engine    string `json:"engine"`
	Requests  int64  `json:"requests"`
	Hits      int64  `json:"hits"`
	Coalesced int64  `json:"coalesced"`
	Runs      int64  `json:"runs"`
	Errors    int64  `json:"errors"`
	// BadRequests counts bodies (and subscribe queries) that failed to
	// parse: 400s that never became requests, so they are deliberately
	// outside the Requests/outcome accounting — this is the counter that
	// makes a client spraying garbage visible.
	BadRequests int64 `json:"badRequests"`
	Batches     int64 `json:"batches"`
	MaxBatch    int64 `json:"maxBatch"`
	Mutations   int64 `json:"mutations"`
	// Subscribers is the current streaming-subscriber gauge; Subscribes,
	// Delivered, and Dropped are the monotone feed counters (accepted
	// subscriptions, delta frames written, subscribers dropped by
	// overflow).
	Subscribers int64 `json:"subscribers"`
	Subscribes  int64 `json:"subscribes"`
	Delivered   int64 `json:"delivered"`
	Dropped     int64 `json:"dropped"`
	// The cluster/durability plane: Replayed counts WAL records replayed
	// into recovered sessions, WALAppends/WALErrors the per-commit log
	// appends and failures, Filled the result-cache misses satisfied by a
	// peer's cache instead of a local run.
	Replayed   int64             `json:"replayed,omitempty"`
	WALAppends int64             `json:"walAppends,omitempty"`
	WALErrors  int64             `json:"walErrors,omitempty"`
	Filled     int64             `json:"filled,omitempty"`
	Cache      CacheStats        `json:"cache"`
	Fast       CacheStats        `json:"fastCache"`
	Pools      []PoolSnapshot    `json:"pools"`
	Sessions   []SessionSnapshot `json:"sessions"`
	// Algs is the per-algorithm plane: one row per servable registry entry,
	// in registry order. Requests counts every request resolved to the
	// algorithm (hit or miss); ColorsUsed/PaletteBound are last-run gauges,
	// 0 until the first fresh run or peer fill lands.
	Algs []AlgStats `json:"algs"`
}

// AlgStats is one per-algorithm /statz row.
type AlgStats struct {
	Kind         string `json:"kind"`
	Alg          string `json:"alg"`
	Quality      string `json:"quality"`
	Requests     int64  `json:"requests"`
	ColorsUsed   int64  `json:"colorsUsed"`
	PaletteBound int64  `json:"paletteBound"`
}

// Service is the coloring service. Create with New, serve with Handle or
// HandleRaw (or the HTTP handler from Handler), stop with Close.
type Service struct {
	cfg      Config
	cache    *resultCache
	fast     *fastCache
	graphs   *graphCache
	sessions *sessionTable
	hub      *subHub
	sem      chan struct{}
	submit   chan *flight

	mu       sync.Mutex
	inflight map[string]*flight
	closed   bool

	counters serviceCounters
	batches  atomic.Int64
	maxBatch atomic.Int64
	// algGauges holds the last measured palette figures per servable
	// algorithm (ServeIndex slots), written whenever a fresh run or a peer
	// fill produces a record. Gauges, not counters: /statz shows the most
	// recent observation, which is what a palette-quality dashboard wants.
	algGauges [algreg.MaxServable]struct {
		colorsUsed, paletteBound atomic.Int64
	}

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheEntries),
		fast:     newFastCache(cfg.FastEntries),
		graphs:   newGraphCache(cfg.GraphEntries, cfg.Workers),
		sessions: newSessionTable(cfg.Sessions),
		hub:      newSubHub(cfg.MaxSubscribers, cfg.SessionSubscribers, cfg.FeedBuffer),
		sem:      make(chan struct{}, cfg.Workers),
		submit:   make(chan *flight),
		inflight: make(map[string]*flight),
		stop:     make(chan struct{}),
	}
	// A session's end — eviction, drop, or shutdown — ends its feed:
	// subscribers get an explicit close event, never a silent stall.
	s.sessions.onClose = s.hub.closeFeed
	s.wg.Add(1)
	go s.batchLoop()
	return s
}

// Close stops the batcher and closes every runner pool. Handle calls racing
// with Close may return ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.graphs.close()
	s.sessions.close()
	// After the sessions: their closes already ended their feeds via the
	// onClose hook; this sweeps any remaining feed and refuses new
	// subscribers for good.
	s.hub.close()
}

// ErrClosed is returned by Handle after Close.
var ErrClosed = errors.New("service: closed")

// badRequestError marks a request whose JSON failed to decode; the HTTP
// layer maps it to 400. A body that never parsed never became a request, so
// these count in badRequests only — never in requests or errors — keeping
// the requests ≥ outcomes invariant intact while still surfacing a client
// spraying garbage at the fast lane.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return "bad request body: " + e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// Handle serves one request: cache lookup, then coalescing onto an in-flight
// execution, then a batched fresh execution. Safe for arbitrary concurrency.
func (s *Service) Handle(req Request) (*Response, Outcome, error) {
	c, v, outcome, err := s.handleCore(req)
	if err != nil {
		return nil, "", err
	}
	rec, err := decodeRecord(v.rec)
	if err != nil {
		s.counters.stripe(c.hash).errors.Add(1)
		return nil, "", err
	}
	return rec.response(c.key, c.req.Graph.String()), outcome, nil
}

// HandleDetail serves one request through the same core path as Handle but
// renders the ?detail=1 envelope: resolved algorithm, quality tier, palette
// bound, and measured color count alongside the coloring. Detail requests
// share the result cache with plain ones (the envelope is a render choice,
// not a different computation) but bypass the wire fast path.
func (s *Service) HandleDetail(req Request) (*DetailResponse, Outcome, error) {
	c, v, outcome, err := s.handleCore(req)
	if err != nil {
		return nil, "", err
	}
	rec, err := decodeRecord(v.rec)
	if err != nil {
		s.counters.stripe(c.hash).errors.Add(1)
		return nil, "", err
	}
	return rec.detail(c.key, c.req.Graph.String()), outcome, nil
}

// HandleRaw serves one request straight from its raw JSON bytes. A repeat
// body is a wire fast-path hit: one hash, one striped lookup, and the
// prerendered response bytes back — zero allocations, no JSON decoded or
// encoded, no global lock. First sightings take the slow lane (full decode,
// canonical cache, render) and prime the fast path on the way out. The
// returned body is exactly what the HTTP layer writes (json.Encoder form,
// trailing newline included) and must be treated as read-only.
func (s *Service) HandleRaw(body []byte) (resp []byte, key string, outcome Outcome, err error) {
	h := cacheHash(body)
	if e, ok := s.fast.getHash(body, h); ok {
		ctr := s.counters.stripe(h)
		ctr.requests.Add(1)
		ctr.hits.Add(1)
		return e.body, e.key, Hit, nil
	}
	var req Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.counters.stripe(h).badRequests.Add(1)
		return nil, "", "", &badRequestError{err}
	}
	c, v, outcome, err := s.handleCore(req)
	if err != nil {
		return nil, "", "", err
	}
	b, err := v.bodyFor(c.req.Graph.String())
	if err != nil {
		s.counters.stripe(c.hash).errors.Add(1)
		return nil, "", "", err
	}
	s.fast.putHash(body, h, fastEntry{body: b, key: c.key})
	return b, c.key, outcome, nil
}

// handleCore is the shared request path behind Handle and HandleRaw:
// resolve, result-cache lookup, then the single-flight batcher. It owns all
// counter accounting for the request.
func (s *Service) handleCore(req Request) (*canonReq, *cacheValue, Outcome, error) {
	c, err := s.resolve(req)
	if err != nil {
		ctr := &s.counters.stripes[0]
		ctr.requests.Add(1)
		ctr.errors.Add(1)
		return nil, nil, "", err
	}
	ctr := s.counters.stripe(c.hash)
	ctr.requests.Add(1)
	ctr.algRequests[c.alg.ServeIndex()].Add(1)
	if v, ok := s.cache.getHash(c.key, c.hash); ok {
		ctr.hits.Add(1)
		return c, v, Hit, nil
	}

	ch := make(chan flightResult, 1)
	outcome := Miss
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ctr.errors.Add(1)
		return nil, nil, "", ErrClosed
	}
	f, ok := s.inflight[c.key]
	if ok {
		f.waiters = append(f.waiters, ch)
		outcome = Coalesced
	} else {
		f = &flight{c: c, waiters: []chan flightResult{ch}}
		s.inflight[c.key] = f
	}
	s.mu.Unlock()
	if outcome == Coalesced {
		ctr.coalesced.Add(1)
	} else {
		select {
		case s.submit <- f:
		case <-s.stop:
			s.fail(f, ErrClosed)
		}
	}

	r := <-ch
	if r.err != nil {
		ctr.errors.Add(1)
		return nil, nil, "", r.err
	}
	return c, r.val, outcome, nil
}

// batchLoop is the micro-batcher: it collects submitted flights until the
// batch window closes (measured from the first flight of the batch) or the
// batch is full, then dispatches the whole batch to the worker stage.
func (s *Service) batchLoop() {
	defer s.wg.Done()
	var batch []*flight
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.batches.Add(1)
		if n := int64(len(batch)); n > s.maxBatch.Load() {
			s.maxBatch.Store(n)
		}
		for _, f := range batch {
			s.wg.Add(1)
			go s.exec(f)
		}
		batch = nil
	}
	for {
		select {
		case f := <-s.submit:
			batch = append(batch, f)
			if len(batch) == 1 {
				timer.Reset(s.cfg.BatchWindow)
			}
			if len(batch) >= s.cfg.MaxBatch {
				if !timer.Stop() {
					<-timer.C
				}
				flush()
			}
		case <-timer.C:
			flush()
		case <-s.stop:
			for _, f := range batch {
				s.fail(f, ErrClosed)
			}
			// Flights submitted concurrently with shutdown are failed by
			// handleCore's own select; nothing further arrives here.
			return
		}
	}
}

// exec runs one flight on the bounded worker stage and delivers the cache
// entry to every waiter. The fill renders the filling request's response
// body eagerly, so by the time waiters wake the entry already carries the
// bytes the HTTP layer writes.
func (s *Service) exec(f *flight) {
	defer s.wg.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	// A flight for this key may have completed and cached between our
	// cache miss and this execution; determinism makes recomputing merely
	// wasteful, so look once more before running.
	v, ok := s.cache.getHash(f.c.key, f.c.hash)
	if !ok && s.cfg.RemoteFill != nil {
		// Cross-node fill: a miss here may be a hit in the key's rendezvous
		// owner's cache. Determinism makes a fetched record as good as a
		// local run — same key, same bytes — and the decode guard means a
		// corrupt or impostor response degrades to computing, never to
		// serving bad bytes.
		if raw := s.cfg.RemoteFill(f.c.req.Graph.String(), f.c.key); raw != nil {
			if rec, err := decodeRecord(raw); err == nil {
				s.counters.stripe(f.c.hash).filled.Add(1)
				s.observePalette(f.c, rec)
				v = s.cache.putHash(f.c.key, f.c.hash, newCacheValue(f.c.key, raw))
				ok = true
			}
		}
	}
	if !ok {
		s.counters.stripe(f.c.hash).runs.Add(1)
		rec, err := f.c.runner(f.c)
		if err != nil {
			s.fail(f, err)
			return
		}
		s.observePalette(f.c, rec)
		v = s.cache.putHash(f.c.key, f.c.hash, newCacheValue(f.c.key, rec.encode()))
	}
	if _, err := v.bodyFor(f.c.req.Graph.String()); err != nil {
		s.fail(f, err)
		return
	}
	s.mu.Lock()
	delete(s.inflight, f.c.key)
	waiters := f.waiters
	f.waiters = nil
	s.mu.Unlock()
	for _, ch := range waiters {
		ch <- flightResult{val: v}
	}
}

// observePalette stores a record's measured palette figures into the
// algorithm's /statz gauges.
func (s *Service) observePalette(c *canonReq, rec *record) {
	g := &s.algGauges[c.alg.ServeIndex()]
	g.colorsUsed.Store(int64(rec.colorsUsed))
	g.paletteBound.Store(int64(rec.palette))
}

// fail delivers err to every waiter of f and retires the flight.
func (s *Service) fail(f *flight, err error) {
	s.mu.Lock()
	delete(s.inflight, f.c.key)
	waiters := f.waiters
	f.waiters = nil
	s.mu.Unlock()
	for _, ch := range waiters {
		ch <- flightResult{err: err}
	}
}

// CachedRecord returns the encoded cache record under key, if the result
// cache holds it. It never computes — this is the peer-fill read side
// (GET /internal/record): a peer asking "do you already have this?" must
// not be able to make this node do work.
func (s *Service) CachedRecord(key string) ([]byte, bool) {
	v, ok := s.cache.get(key)
	if !ok {
		return nil, false
	}
	return v.rec, true
}

// Stats snapshots the service counters, caches, and per-graph runner pools.
func (s *Service) Stats() ServiceStats {
	t := s.counters.totals()
	servable := algreg.Servable()
	algs := make([]AlgStats, len(servable))
	for i, a := range servable {
		algs[i] = AlgStats{
			Kind:         a.Kind,
			Alg:          a.Name,
			Quality:      a.Quality,
			Requests:     t.algRequests[a.ServeIndex()],
			ColorsUsed:   s.algGauges[a.ServeIndex()].colorsUsed.Load(),
			PaletteBound: s.algGauges[a.ServeIndex()].paletteBound.Load(),
		}
	}
	return ServiceStats{
		Engine:      s.cfg.Engine.String(),
		Requests:    t.requests,
		Hits:        t.hits,
		Coalesced:   t.coalesced,
		Runs:        t.runs,
		Errors:      t.errors,
		BadRequests: t.badRequests,
		Batches:     s.batches.Load(),
		MaxBatch:    s.maxBatch.Load(),
		Mutations:   t.mutations,
		Subscribers: int64(s.hub.subscribers()),
		Subscribes:  t.subscribes,
		Delivered:   t.delivered,
		Dropped:     t.dropped,
		Replayed:    t.replayed,
		WALAppends:  t.walAppends,
		WALErrors:   t.walErrors,
		Filled:      t.filled,
		Cache:       s.cache.snapshot(),
		Fast:        s.fast.snapshot(),
		Pools:       s.graphs.snapshot(),
		Sessions:    s.sessions.snapshot(),
		Algs:        algs,
	}
}
