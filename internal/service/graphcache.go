package service

import (
	"container/list"
	"sync"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
)

// graphEntry is one cached built graph together with the runner pools that
// execute on it: one pool per output type (vertex algorithms return int,
// edge algorithms return per-port []int). Pools are created lazily — a
// graph only ever asked for edge colorings never builds vertex runners.
type graphEntry struct {
	spec exp.GraphSpec

	once sync.Once // builds g, fp
	g    *graph.Graph
	fp   graph.Fingerprint
	err  error

	mu       sync.Mutex // guards lazy pool creation
	maxRun   int
	poolInt  *dist.Pool[int]
	poolInts *dist.Pool[[]int]

	keyMu sync.RWMutex // guards keys
	keys  map[algKey]keyMemo
}

// algKey is the comparable tuple of output-affecting request parameters —
// exactly the fields cacheKey hashes besides the graph fingerprint. Two
// requests with equal algKey against the same graph entry share a cache key,
// so the sha256 derivation is memoized per entry under it.
type algKey struct {
	kind, alg, mode string
	b, p, c         int
	seed            int64
}

type keyMemo struct {
	key  string
	hash uint64
}

// maxKeyMemos bounds the per-entry key memo; an adversarial seed sweep resets
// it rather than growing without bound. 1024 distinct parameterizations per
// graph covers every realistic workload.
const maxKeyMemos = 1024

// cachedKey returns the request's cache key and its shard hash, deriving
// (sha256 + hex + maphash) at most once per (graph, parameters) pair; repeat
// requests skip the hashing entirely.
func (e *graphEntry) cachedKey(ak algKey, req *Request) (string, uint64) {
	e.keyMu.RLock()
	m, ok := e.keys[ak]
	e.keyMu.RUnlock()
	if ok {
		return m.key, m.hash
	}
	key := cacheKey(req, e.fp)
	m = keyMemo{key: key, hash: cacheHashString(key)}
	e.keyMu.Lock()
	if cur, ok := e.keys[ak]; ok {
		m = cur
	} else {
		if len(e.keys) >= maxKeyMemos {
			e.keys = nil
		}
		if e.keys == nil {
			e.keys = make(map[algKey]keyMemo, 16)
		}
		e.keys[ak] = m
	}
	e.keyMu.Unlock()
	return m.key, m.hash
}

func (e *graphEntry) build() {
	e.once.Do(func() {
		g, err := e.spec.Build()
		var fp graph.Fingerprint
		if err == nil {
			fp = g.Fingerprint()
		}
		// Publish under mu as well: request paths order through the Once,
		// but statz snapshots peek at entries they never built.
		e.mu.Lock()
		e.g, e.fp, e.err = g, fp, err
		e.mu.Unlock()
	})
}

func (e *graphEntry) ints() *dist.Pool[int] {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.poolInt == nil {
		e.poolInt = dist.NewPool[int](e.g, e.maxRun)
	}
	return e.poolInt
}

func (e *graphEntry) slices() *dist.Pool[[]int] {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.poolInts == nil {
		e.poolInts = dist.NewPool[[]int](e.g, e.maxRun)
	}
	return e.poolInts
}

func (e *graphEntry) close() {
	e.mu.Lock()
	pi, ps := e.poolInt, e.poolInts
	e.poolInt, e.poolInts = nil, nil
	e.mu.Unlock()
	if pi != nil {
		pi.Close()
	}
	if ps != nil {
		ps.Close()
	}
}

// PoolSnapshot reports one cached graph's runner pools in /statz.
type PoolSnapshot struct {
	Graph    string         `json:"graph"`
	N        int            `json:"n"`
	M        int            `json:"m"`
	Vertex   dist.PoolStats `json:"vertexPool"`
	PortWise dist.PoolStats `json:"edgePool"`
}

// graphCache is a bounded LRU of built graphs keyed by the canonical spec
// string. Eviction closes the entry's runner pools (runs in flight finish on
// their acquired runners; the pool just stops recycling them).
type graphCache struct {
	mu      sync.Mutex
	cap     int
	maxRun  int // runner cap per pool, forwarded to entries
	order   *list.List
	entries map[string]*list.Element
	builds  int64
}

func newGraphCache(capacity, maxRunners int) *graphCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &graphCache{
		cap:     capacity,
		maxRun:  maxRunners,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the entry for spec, building the graph on first use. Build
// errors are sticky for as long as the entry stays cached — repeated
// requests for an invalid spec fail fast without rebuilding.
func (gc *graphCache) get(spec exp.GraphSpec) (*graphEntry, error) {
	key := spec.String()
	gc.mu.Lock()
	el, ok := gc.entries[key]
	if !ok {
		el = gc.order.PushFront(&graphEntry{spec: spec, maxRun: gc.maxRun})
		gc.entries[key] = el
		gc.builds++
		for gc.order.Len() > gc.cap {
			last := gc.order.Back()
			ent := last.Value.(*graphEntry)
			gc.order.Remove(last)
			delete(gc.entries, ent.spec.String())
			defer ent.close()
		}
	} else {
		gc.order.MoveToFront(el)
	}
	entry := el.Value.(*graphEntry)
	gc.mu.Unlock()
	entry.build()
	if entry.err != nil {
		// A failed spec must not occupy a slot of the bounded cache: a
		// stream of distinct garbage specs would otherwise evict every
		// warm graph (and its runner pools).
		gc.mu.Lock()
		if cur, ok := gc.entries[key]; ok && cur.Value.(*graphEntry) == entry {
			gc.order.Remove(cur)
			delete(gc.entries, key)
		}
		gc.mu.Unlock()
	}
	return entry, entry.err
}

// snapshot lists the cached graphs and their pool stats, most recently used
// first.
func (gc *graphCache) snapshot() []PoolSnapshot {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	out := make([]PoolSnapshot, 0, gc.order.Len())
	for el := gc.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*graphEntry)
		ps := PoolSnapshot{Graph: e.spec.String()}
		e.mu.Lock()
		if e.g != nil {
			ps.N, ps.M = e.g.N(), e.g.M()
		}
		if e.poolInt != nil {
			ps.Vertex = e.poolInt.Stats()
		}
		if e.poolInts != nil {
			ps.PortWise = e.poolInts.Stats()
		}
		e.mu.Unlock()
		out = append(out, ps)
	}
	return out
}

// close closes every cached entry's pools.
func (gc *graphCache) close() {
	gc.mu.Lock()
	ents := make([]*graphEntry, 0, gc.order.Len())
	for el := gc.order.Front(); el != nil; el = el.Next() {
		ents = append(ents, el.Value.(*graphEntry))
	}
	gc.order.Init()
	gc.entries = map[string]*list.Element{}
	gc.mu.Unlock()
	for _, e := range ents {
		e.close()
	}
}
