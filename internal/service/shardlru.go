package service

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// CacheStats is a point-in-time snapshot of a bounded cache (the result
// cache or the wire fast-path cache), aggregated across its shards.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Shards    int   `json:"shards"`
}

// lruSeed keys the shard/stripe hash for this process. It is deliberately
// per-process: shard placement is a private load-balancing concern, never
// part of any persisted or wire-visible state.
var lruSeed = maphash.MakeSeed()

// cacheHash is the one hash both caches (and the counter stripes) derive
// their placement from, so a request path computes it once and reuses it.
func cacheHash(key []byte) uint64 { return maphash.Bytes(lruSeed, key) }

// cacheHashString is cacheHash for keys already held as strings.
func cacheHashString(key string) uint64 { return maphash.String(lruSeed, key) }

// shardedLRU is a bounded LRU map striped across independently locked
// shards: a key's hash picks its shard, each shard runs a strict LRU over
// its slice of the capacity, and stats are per-shard atomics summed on
// snapshot — so a cache hit touches exactly one shard mutex and no global
// lock. Capacity is enforced per shard (capacity/shards each), which bounds
// the total at capacity while letting an adversarial key distribution evict
// slightly early in a hot shard; with hashed keys the shards stay balanced.
type shardedLRU[V any] struct {
	shards []lruShard[V]
	mask   uint64
}

type lruShard[V any] struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry[V]
	entries map[string]*list.Element

	hits, misses, evictions, bytes atomic.Int64

	// Pad shards apart so neighboring shards' mutexes and stats don't share
	// a cache line and serialize unrelated requests.
	_ [24]byte
}

type lruEntry[V any] struct {
	key  string
	val  V
	size int
}

// shardsFor picks the shard count for a capacity: the largest power of two
// (≤ 64) that still leaves every shard at least 32 entries, so tiny caches
// degrade to a single strict LRU and big ones stripe wide.
func shardsFor(capacity int) int {
	n := 1
	for n < 64 && capacity/(2*n) >= 32 {
		n *= 2
	}
	return n
}

// newShardedLRU builds a striped LRU holding capacity entries total. shards
// must be a power of two (or <= 0 to size automatically from the capacity).
func newShardedLRU[V any](capacity, shards int) *shardedLRU[V] {
	if capacity <= 0 {
		capacity = 1
	}
	if shards <= 0 {
		shards = shardsFor(capacity)
	}
	for s := 1; ; s *= 2 {
		if s >= shards {
			shards = s
			break
		}
	}
	per := (capacity + shards - 1) / shards
	c := &shardedLRU[V]{shards: make([]lruShard[V], shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = per
		sh.order = list.New()
		sh.entries = make(map[string]*list.Element, per)
	}
	return c
}

// getBytesHash looks key up with its precomputed cacheHash. The []byte key
// form keeps the hot path allocation-free: the map index expression
// entries[string(key)] does not materialize the string.
func (c *shardedLRU[V]) getBytesHash(key []byte, h uint64) (V, bool) {
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	el, ok := sh.entries[string(key)]
	if !ok {
		sh.mu.Unlock()
		sh.misses.Add(1)
		var zero V
		return zero, false
	}
	sh.order.MoveToFront(el)
	v := el.Value.(*lruEntry[V]).val
	sh.mu.Unlock()
	sh.hits.Add(1)
	return v, true
}

// getHash is getBytesHash for string keys.
func (c *shardedLRU[V]) getHash(key string, h uint64) (V, bool) {
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		sh.misses.Add(1)
		var zero V
		return zero, false
	}
	sh.order.MoveToFront(el)
	v := el.Value.(*lruEntry[V]).val
	sh.mu.Unlock()
	sh.hits.Add(1)
	return v, true
}

// get looks key up, hashing it here.
func (c *shardedLRU[V]) get(key string) (V, bool) {
	return c.getHash(key, cacheHashString(key))
}

// putHash stores val under key (first-wins: if the key is already present
// the existing value is kept and returned — determinism guarantees equal
// values, and first-wins lets concurrent fillers converge on one shared
// allocation). size is the entry's accounted byte weight. Evicts the
// shard's least recently used entries over its capacity slice.
func (c *shardedLRU[V]) putHash(key string, h uint64, val V, size int) V {
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		sh.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val
	}
	sh.entries[key] = sh.order.PushFront(&lruEntry[V]{key: key, val: val, size: size})
	sh.bytes.Add(int64(size))
	for sh.order.Len() > sh.cap {
		last := sh.order.Back()
		ent := last.Value.(*lruEntry[V])
		sh.order.Remove(last)
		delete(sh.entries, ent.key)
		sh.bytes.Add(-int64(ent.size))
		sh.evictions.Add(1)
	}
	return val
}

// put stores val under key, hashing it here.
func (c *shardedLRU[V]) put(key string, val V, size int) V {
	return c.putHash(key, cacheHashString(key), val, size)
}

// snapshot aggregates the per-shard stats. Each shard is read coherently
// (entry count under its lock, counters as single atomic loads), so totals
// are a sum of per-shard snapshots taken at slightly different instants —
// exact for a quiescent cache, monotone under load.
func (c *shardedLRU[V]) snapshot() CacheStats {
	s := CacheStats{Shards: len(c.shards)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += sh.order.Len()
		sh.mu.Unlock()
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Evictions += sh.evictions.Load()
		s.Bytes += sh.bytes.Load()
	}
	return s
}
