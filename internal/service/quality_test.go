package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/algreg"
	"repro/internal/exp"
	"repro/internal/graph"
)

// TestQualityKnob: quality=fewcolors with no alg resolves to the fewcolors
// tier, serves byte-identically across all four engines, and measurably uses
// fewer colors than the fast tier on the same graph.
func TestQualityKnob(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	spec := exp.GraphSpec{Family: "gnm", N: 60, M: 240, Seed: 1}
	g := mustBuild(t, spec)

	few, outcome, err := s.Handle(Request{Kind: "edge", Quality: "fewcolors", Graph: spec})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Miss {
		t.Fatalf("first fewcolors request outcome %q", outcome)
	}
	if few.Alg != "fewcolors" {
		t.Fatalf("resolved alg %q, want fewcolors", few.Alg)
	}
	if err := graph.CheckEdgeColoring(g, few.Colors); err != nil {
		t.Fatalf("illegal fewcolors coloring: %v", err)
	}
	if few.NumColors > few.Palette {
		t.Fatalf("used %d colors, bound %d", few.NumColors, few.Palette)
	}

	// Same tier, explicit name: must be the same cache entry.
	if _, outcome, err = s.Handle(Request{Kind: "edge", Alg: "fewcolors", Graph: spec}); err != nil || outcome != Hit {
		t.Fatalf("named fewcolors request: outcome %q err %v, want hit", outcome, err)
	}

	// All four engines serve byte-identical bodies (fresh service each, so
	// the shared cache cannot mask a divergence).
	want, _ := json.Marshal(few)
	for _, engine := range []string{"goroutines", "lockstep", "sharded", "compiled"} {
		se := New(testConfig())
		resp, _, err := se.Handle(Request{Kind: "edge", Quality: "fewcolors", Graph: spec, Engine: engine})
		se.Close()
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		got, _ := json.Marshal(resp)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s body differs:\n%s\n%s", engine, want, got)
		}
	}

	// The tier earns its name against the fast tier's palette.
	fast, _, err := s.Handle(Request{Kind: "edge", Alg: "pr", Graph: spec})
	if err != nil {
		t.Fatal(err)
	}
	if few.NumColors >= fast.Palette {
		t.Fatalf("fewcolors used %d colors, fast palette is %d", few.NumColors, fast.Palette)
	}

	// quality=fast defaults and mismatches.
	r, _, err := s.Handle(Request{Kind: "edge", Quality: "fast", Graph: spec})
	if err != nil || r.Alg != "be" {
		t.Fatalf("quality=fast resolved to %q, err %v", r.Alg, err)
	}
	for _, bad := range []Request{
		{Kind: "edge", Quality: "best", Graph: spec},
		{Kind: "edge", Alg: "be", Quality: "fewcolors", Graph: spec},
		{Kind: "vertex", Quality: "fewcolors", Graph: spec},
	} {
		if _, _, err := s.Handle(bad); err == nil {
			t.Fatalf("%+v: want error", bad)
		}
	}
}

// TestStatzPerAlg: /statz carries one row per servable algorithm, counting
// requests (hits included) and gauging the last measured palette figures.
func TestStatzPerAlg(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	spec := exp.GraphSpec{Family: "gnm", N: 40, M: 120, Seed: 1}
	for i := 0; i < 3; i++ { // miss, hit, hit — all count as requests
		if _, _, err := s.Handle(Request{Kind: "edge", Alg: "fewcolors", Graph: spec}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Handle(Request{Kind: "vertex", Alg: "greedy", Graph: spec}); err != nil {
		t.Fatal(err)
	}

	rows := make(map[[2]string]AlgStats)
	algs := s.Stats().Algs
	if len(algs) != len(algreg.Servable()) {
		t.Fatalf("%d alg rows, want %d", len(algs), len(algreg.Servable()))
	}
	for _, a := range algs {
		rows[[2]string{a.Kind, a.Alg}] = a
	}
	few := rows[[2]string{"edge", "fewcolors"}]
	if few.Requests != 3 {
		t.Fatalf("fewcolors requests %d, want 3", few.Requests)
	}
	if few.Quality != "fewcolors" {
		t.Fatalf("fewcolors row quality %q", few.Quality)
	}
	if few.ColorsUsed <= 0 || few.PaletteBound <= 0 || few.ColorsUsed > few.PaletteBound {
		t.Fatalf("fewcolors gauges implausible: %+v", few)
	}
	if vg := rows[[2]string{"vertex", "greedy"}]; vg.Requests != 1 || vg.ColorsUsed <= 0 {
		t.Fatalf("vertex/greedy row implausible: %+v", vg)
	}
	if be := rows[[2]string{"edge", "be"}]; be.Requests != 0 || be.ColorsUsed != 0 {
		t.Fatalf("untouched alg row must be zero: %+v", be)
	}
}

// TestDetailEnvelope: ?detail=1 returns the DetailResponse envelope; the
// default body stays byte-identical to a query-free request.
func TestDetailEnvelope(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(Request{Kind: "edge", Quality: "fewcolors", Graph: exp.GraphSpec{Family: "gnm", N: 40, M: 120, Seed: 1}})
	plain := postJSON(t, srv.URL+"/v1/color", body)
	var std Response
	if err := json.Unmarshal(plain, &std); err != nil {
		t.Fatal(err)
	}

	detail := postJSON(t, srv.URL+"/v1/color?detail=1", body)
	var d DetailResponse
	dec := json.NewDecoder(bytes.NewReader(detail))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		t.Fatalf("detail body does not match the DetailResponse contract: %v\n%s", err, detail)
	}
	if d.Alg != "fewcolors" || d.Quality != "fewcolors" {
		t.Fatalf("detail identity: alg %q quality %q", d.Alg, d.Quality)
	}
	if d.ColorsUsed != std.NumColors || d.PaletteBound != std.Palette || d.Key != std.Key {
		t.Fatalf("detail disagrees with the standard body: %+v vs %+v", d, std)
	}
	if d.Rounds != std.Stats.Rounds || len(d.Colors) != len(std.Colors) {
		t.Fatalf("detail run figures disagree: %+v", d)
	}

	// The plain body is unaffected by the detail lane existing: a repeat
	// query-free request still serves the exact same bytes (fast path).
	if again := postJSON(t, srv.URL+"/v1/color", body); !bytes.Equal(again, plain) {
		t.Fatalf("plain body changed after a detail request:\n%s\n%s", again, plain)
	}
}

// TestMutateDetail: the mutate analog of ?detail=1 — repair identity, tier,
// first-fit bound, and measured colors; absent without the flag.
func TestMutateDetail(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	base := exp.GraphSpec{Family: "gnm", N: 30, M: 60, Seed: 2}
	body, _ := json.Marshal(MutateRequest{Session: "q", Base: &base, Colors: true})
	plain := postJSON(t, srv.URL+"/v1/mutate", body)
	if bytes.Contains(plain, []byte("paletteBound")) {
		t.Fatalf("default mutate body leaks detail fields: %s", plain)
	}
	detail := postJSON(t, srv.URL+"/v1/mutate?detail=1", body)
	var d MutateResponse
	if err := json.Unmarshal(detail, &d); err != nil {
		t.Fatal(err)
	}
	if d.Alg != "repair" || d.Quality != "fast" {
		t.Fatalf("mutate detail identity: alg %q quality %q", d.Alg, d.Quality)
	}
	if d.PaletteBound != 2*d.Delta-1 {
		t.Fatalf("repair bound %d for Δ=%d", d.PaletteBound, d.Delta)
	}
	if d.ColorsUsed <= 0 || d.ColorsUsed > d.PaletteBound || d.ColorsUsed != d.NumColors {
		t.Fatalf("mutate detail colors implausible: %+v", d)
	}
}

func postJSON(t *testing.T, url string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, b)
	}
	return b
}
