package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/exp"
	"repro/internal/graph"
)

func baseSpec() *exp.GraphSpec {
	return &exp.GraphSpec{Family: "gnm", N: 32, M: 70, Seed: 4}
}

// TestMutateMaintainsCanonical: a session driven through Service.Mutate
// serves the same coloring as the documented canonical recompute of the
// mutated graph.
func TestMutateMaintainsCanonical(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	stream := exp.MutationStream{Kind: "mix", Base: *baseSpec(), Ops: 60, Seed: 5}
	g, muts, err := stream.Generate()
	if err != nil {
		t.Fatal(err)
	}
	resp, outcome, err := s.Mutate(MutateRequest{Session: "t", Base: baseSpec(), Ops: muts, Colors: true})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Miss {
		t.Fatalf("outcome = %v, want miss", outcome)
	}
	if resp.Applied != len(muts) || resp.Repair == nil || resp.Totals == nil {
		t.Fatalf("mutation response incomplete: %+v", resp)
	}
	if resp.Totals.Mutations != int64(len(muts)) {
		t.Fatalf("totals report %d mutations, want %d", resp.Totals.Mutations, len(muts))
	}

	// Rebuild the mutated graph independently and compare.
	want := g.Clone()
	{
		m, err := dynamic.New(g, dynamic.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Apply(muts); err != nil {
			t.Fatal(err)
		}
		want = m.Graph()
		m.Close()
	}
	if resp.Fingerprint != want.EdgeSetFingerprint().String() {
		t.Fatal("served fingerprint differs from the mutated graph's")
	}
	if canonical := dynamic.CanonicalColors(want); !reflect.DeepEqual(resp.Colors, canonical) {
		t.Fatal("served coloring differs from canonical recompute")
	}
	if err := graph.CheckEdgeColoring(want, resp.Colors); err != nil {
		t.Fatal(err)
	}
}

// TestMutateCacheKeyedByFingerprint is the invalidation contract: coloring
// reads hit the cache until a mutation moves the fingerprint, and a
// mutation sequence that restores the edge set restores the key — the old
// entry serves again, byte-identically.
func TestMutateCacheKeyedByFingerprint(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	mk := func(ops []exp.Mutation, colors bool) (*MutateResponse, Outcome) {
		t.Helper()
		resp, oc, err := s.Mutate(MutateRequest{Session: "c", Base: baseSpec(), Ops: ops, Colors: colors})
		if err != nil {
			t.Fatal(err)
		}
		return resp, oc
	}
	r1, oc := mk(nil, true)
	if oc != Miss {
		t.Fatalf("first read outcome %v, want miss", oc)
	}
	r2, oc := mk(nil, true)
	if oc != Hit {
		t.Fatalf("repeat read outcome %v, want hit", oc)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("cache hit body differs from fresh body")
	}

	// Mutate: fingerprint moves, reads miss again.
	if _, oc = mk([]exp.Mutation{{Op: exp.OpInsert, U: 0, V: 31}}, false); oc != Miss {
		t.Fatalf("mutation outcome %v, want miss", oc)
	}
	r3, oc := mk(nil, true)
	if oc != Miss {
		t.Fatalf("read after mutation outcome %v, want miss (fingerprint moved)", oc)
	}
	if r3.Fingerprint == r1.Fingerprint {
		t.Fatal("fingerprint did not move under mutation")
	}

	// Undo: the edge set — hence the fingerprint, hence the key — returns,
	// and the original cache entry serves again.
	mk([]exp.Mutation{{Op: exp.OpDelete, U: 0, V: 31}}, false)
	r4, oc := mk(nil, true)
	if oc != Hit {
		t.Fatalf("read after undo outcome %v, want hit (fingerprint restored)", oc)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("restored fingerprint served a different body")
	}
}

// TestMutateErrors pins the failure modes of the session API.
func TestMutateErrors(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	if _, _, err := s.Mutate(MutateRequest{Session: ""}); err == nil {
		t.Fatal("empty session name accepted")
	}
	if _, _, err := s.Mutate(MutateRequest{Session: "ghost"}); err == nil {
		t.Fatal("unknown session without base accepted")
	}
	bad := exp.GraphSpec{Family: "nope"}
	if _, _, err := s.Mutate(MutateRequest{Session: "bad", Base: &bad}); err == nil {
		t.Fatal("invalid base spec accepted")
	}
	// A failed creation must not burn the name.
	if _, _, err := s.Mutate(MutateRequest{Session: "bad", Base: baseSpec()}); err != nil {
		t.Fatalf("session name unusable after failed creation: %v", err)
	}
	if _, _, err := s.Mutate(MutateRequest{Session: "bad", Ops: []exp.Mutation{{Op: "upsert", U: 0, V: 1}}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// Partial failure: the first op lands (an op list is not a
	// transaction), the error says so, and /statz counts exactly it.
	before := s.Stats().Mutations
	_, _, err := s.Mutate(MutateRequest{Session: "bad", Ops: []exp.Mutation{
		{Op: exp.OpInsert, U: 0, V: 31},
		{Op: exp.OpInsert, U: 0, V: 31},
	}})
	if err == nil || !strings.Contains(err.Error(), "1 earlier op(s)") {
		t.Fatalf("partial failure error = %v, want applied-count notice", err)
	}
	if got := s.Stats().Mutations - before; got != 1 {
		t.Fatalf("mutation counter advanced by %d, want 1", got)
	}
	resp, _, err := s.Mutate(MutateRequest{Session: "bad", Colors: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Colors) != resp.M || resp.M != 71 {
		t.Fatalf("post-partial-failure read: %d colors for m=%d, want 71 (base 70 + the applied insert)", len(resp.Colors), resp.M)
	}
}

// TestSessionEviction: the coldest session is evicted when the table
// overflows, and recreating it starts from the base spec again.
func TestSessionEviction(t *testing.T) {
	s := New(Config{Workers: 2, Sessions: 2})
	defer s.Close()
	mustMutate := func(name string, ops ...exp.Mutation) *MutateResponse {
		t.Helper()
		resp, _, err := s.Mutate(MutateRequest{Session: name, Base: baseSpec(), Ops: ops})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := mustMutate("a", exp.Mutation{Op: exp.OpInsert, U: 0, V: 31})
	mustMutate("b")
	mustMutate("c") // evicts "a"
	if got := len(s.Stats().Sessions); got != 2 {
		t.Fatalf("%d live sessions, want 2", got)
	}
	// "a" was evicted: touching it without a base fails, with a base it
	// restarts from the spec (the insert is gone).
	if _, _, err := s.Mutate(MutateRequest{Session: "a"}); err == nil {
		t.Fatal("evicted session served without recreation")
	}
	r2 := mustMutate("a")
	if r2.M != r1.M-1 {
		t.Fatalf("recreated session has m=%d, want the base's %d", r2.M, r1.M-1)
	}
}

// TestMutateHTTP drives the session API through the real HTTP surface.
func TestMutateHTTP(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, *MutateResponse) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/mutate", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp, nil
		}
		var mr MutateResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		return resp, &mr
	}
	hr, mr := post(`{"session":"h","base":{"family":"cycle","n":12},"ops":[{"op":"insert","u":0,"v":6}],"colors":true}`)
	if mr == nil {
		t.Fatalf("mutate failed with status %d", hr.StatusCode)
	}
	if mr.M != 13 || mr.Applied != 1 || len(mr.Colors) != 13 {
		t.Fatalf("unexpected response %+v", mr)
	}
	if hr.Header.Get("X-Colord-Fingerprint") != mr.Fingerprint {
		t.Fatal("fingerprint header disagrees with body")
	}
	if hr, _ := post(`{"session":"h","ops":[{"op":"insert","u":0,"v":6}]}`); hr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate insert returned %d, want 422", hr.StatusCode)
	}
	if hr, _ := post(`{"session":"h","nope":1}`); hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field returned %d, want 400", hr.StatusCode)
	}
}

// TestMutateConcurrent exercises the session table and per-session repair
// pipeline under the race detector: writers on distinct sessions, plus
// readers racing a writer on a shared session.
func TestMutateConcurrent(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	var wg sync.WaitGroup
	names := []string{"w0", "w1", "w2", "shared"}
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			stream := exp.MutationStream{Kind: "window", Base: *baseSpec(), Ops: 40, Seed: int64(i), Window: 8}
			_, muts, err := stream.Generate()
			if err != nil {
				t.Error(err)
				return
			}
			for _, mut := range muts {
				if _, _, err := s.Mutate(MutateRequest{Session: name, Base: baseSpec(), Ops: []exp.Mutation{mut}}); err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
			}
		}(i, name)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, _, err := s.Mutate(MutateRequest{Session: "shared", Base: baseSpec(), Colors: true})
				if err != nil {
					t.Error(err)
					return
				}
				// Every read must be internally consistent: the coloring
				// matches the snapshot's own edge count.
				if len(resp.Colors) != resp.M {
					t.Errorf("read returned %d colors for m=%d", len(resp.Colors), resp.M)
					return
				}
			}
		}()
	}
	wg.Wait()
	// After the dust settles the shared session still serves the canonical
	// coloring of its final graph.
	resp, _, err := s.Mutate(MutateRequest{Session: "shared", Colors: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dynamic.New(graph.GNM(32, 70, 4), dynamic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	stream := exp.MutationStream{Kind: "window", Base: *baseSpec(), Ops: 40, Seed: 3, Window: 8}
	_, muts, err := stream.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if want := dynamic.CanonicalColors(m.Graph()); !reflect.DeepEqual(resp.Colors, want) {
		t.Fatal("shared session diverged from canonical recompute")
	}
}
