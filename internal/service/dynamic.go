package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/algreg"
	"repro/internal/dist"
	"repro/internal/dynamic"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/wal"
	"repro/internal/wire"
)

// MutateRequest drives one dynamic graph session: a named, server-resident
// mutable graph whose edge coloring the service maintains incrementally
// (dynamic.Maintainer). A request either mutates the session (Ops non-empty)
// or reads it (Ops empty); reads with Colors set return the full maintained
// coloring and are served through the deterministic result cache, keyed by
// the session's evolving edge-set fingerprint — any mutation moves the
// fingerprint, so stale colorings are unreachable by construction.
type MutateRequest struct {
	// Session names the dynamic graph. Sessions live in a bounded LRU;
	// evicting or closing one discards its state.
	Session string `json:"session"`
	// Base seeds the session's starting graph; required on first touch,
	// ignored once the session exists.
	Base *exp.GraphSpec `json:"base,omitempty"`
	// Ops are applied in order, one local repair each. An op list is not a
	// transaction: an invalid op (duplicate insert, delete of a non-edge)
	// fails the request at that op, earlier ops remain applied, and the
	// error names the failing op index.
	Ops []exp.Mutation `json:"ops,omitempty"`
	// Colors requests the maintained per-edge coloring (canonical edge-id
	// order of the current graph) in the response.
	Colors bool `json:"colors,omitempty"`
}

// MutateResponse reports the session state after the request. Mutating
// requests additionally carry the repair scope of this call and the
// session's cumulative totals; cached reads carry only fingerprint-determined
// fields, so their bodies are byte-identical however they are served.
type MutateResponse struct {
	Session     string `json:"session"`
	Fingerprint string `json:"fingerprint"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Delta       int    `json:"delta"`
	// Applied is the number of ops applied by this request.
	Applied int `json:"applied,omitempty"`
	// Repair aggregates the repair scope of this request's ops.
	Repair *dynamic.Report `json:"repair,omitempty"`
	// Totals is the session's cumulative accounting (not on cached reads:
	// it is not a function of the fingerprint).
	Totals    *dynamic.Stats `json:"totals,omitempty"`
	NumColors int            `json:"numColors,omitempty"`
	Colors    []int          `json:"colors,omitempty"`
	// The ?detail=1 fields, absent otherwise so default bodies never change
	// shape: the maintainer's repair algorithm ("repair", tier "fast"), its
	// first-fit palette bound for the current graph (2Δ-1), and the measured
	// distinct-color count.
	Alg          string `json:"alg,omitempty"`
	Quality      string `json:"quality,omitempty"`
	PaletteBound int    `json:"paletteBound,omitempty"`
	ColorsUsed   int    `json:"colorsUsed,omitempty"`
}

// sessionTable is the bounded LRU of live dynamic sessions. Eviction closes
// the evicted maintainer — its runner pools and its state.
type sessionTable struct {
	mu      sync.Mutex
	cap     int
	order   *list.List
	entries map[string]*list.Element
	// onClose, when set, fires after a session's maintainer closes (evicted,
	// dropped, or table shutdown) — the hook that ends the session's
	// subscriber feed. Called without st.mu held; it must not call back into
	// the table.
	onClose func(name string)
}

type session struct {
	name string
	spec exp.GraphSpec

	once sync.Once  // builds mt
	mu   sync.Mutex // orders mt/err publication for statz peeks
	mt   *dynamic.Maintainer
	// wlog is the session's write-ahead log when durability is on; closed
	// with the maintainer. replayed counts the records recovered at build.
	wlog     *wal.Log
	replayed int
	err      error
}

// build runs the session's one-time maintainer construction. Request paths
// order through the Once; the extra publication under mu is for statz
// snapshots, which peek at sessions they never built. A WAL-recovered
// session's spec may differ from the create request's: the log header is
// the durable truth, so it wins.
func (s *session) build(f func(exp.GraphSpec) (*dynamic.Maintainer, *wal.Log, exp.GraphSpec, int, error)) {
	s.once.Do(func() {
		mt, wlog, spec, replayed, err := f(s.spec)
		s.mu.Lock()
		s.mt, s.wlog, s.replayed, s.err = mt, wlog, replayed, err
		if err == nil {
			s.spec = spec
		}
		s.mu.Unlock()
	})
}

// maintainer returns the published maintainer (nil while unbuilt).
func (s *session) maintainer() *dynamic.Maintainer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mt
}

func newSessionTable(capacity int) *sessionTable {
	if capacity <= 0 {
		capacity = 1
	}
	return &sessionTable{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the named session, creating it (and evicting the coldest if
// the table is full) when base is non-nil. Creation errors are surfaced
// once and the slot is freed, mirroring graphCache.
func (st *sessionTable) get(name string, base *exp.GraphSpec, build func(exp.GraphSpec) (*dynamic.Maintainer, *wal.Log, exp.GraphSpec, int, error)) (*session, error) {
	st.mu.Lock()
	el, ok := st.entries[name]
	if !ok {
		if base == nil {
			st.mu.Unlock()
			return nil, fmt.Errorf("service: unknown session %q and no base spec to create it", name)
		}
		el = st.order.PushFront(&session{name: name, spec: *base})
		st.entries[name] = el
		for st.order.Len() > st.cap {
			last := st.order.Back()
			ent := last.Value.(*session)
			st.order.Remove(last)
			delete(st.entries, ent.name)
			defer st.closeSession(ent)
		}
	} else {
		st.order.MoveToFront(el)
	}
	s := el.Value.(*session)
	st.mu.Unlock()
	s.build(build)
	if s.err != nil {
		st.mu.Lock()
		if cur, ok := st.entries[name]; ok && cur.Value.(*session) == s {
			st.order.Remove(cur)
			delete(st.entries, name)
		}
		st.mu.Unlock()
	}
	return s, s.err
}

// closeSession closes a session that has already been unlinked from the
// table. Must be called without st.mu held: the onClose hook takes the
// hub's locks, and hub code never takes maintainer or table locks, so the
// lock order stays acyclic.
func (st *sessionTable) closeSession(s *session) {
	// Force the once so a concurrent creator cannot resurrect a closed
	// session's maintainer; losing the race just builds and closes.
	s.once.Do(func() {
		s.mu.Lock()
		s.err = fmt.Errorf("service: session %q evicted", s.name)
		s.mu.Unlock()
	})
	if mt := s.maintainer(); mt != nil {
		mt.Close()
	}
	// Close() waited out any in-flight mutation, so no commit hook can touch
	// the log after this point. The file itself stays: a WAL-backed session
	// resurrects from it on the next create or recovery.
	s.mu.Lock()
	wlog := s.wlog
	s.wlog = nil
	s.mu.Unlock()
	if wlog != nil {
		wlog.Close()
	}
	if st.onClose != nil {
		st.onClose(s.name)
	}
}

// lookup peeks at the named session without creating it or touching LRU
// order — the subscribe path's existence check.
func (st *sessionTable) lookup(name string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.entries[name]; ok {
		return el.Value.(*session)
	}
	return nil
}

// drop removes the named session if it still maps to s, and closes it.
// Used when a failed repair poisons a maintainer: the name becomes
// recreatable instead of serving errors until eviction.
func (st *sessionTable) drop(name string, s *session) {
	st.mu.Lock()
	if cur, ok := st.entries[name]; ok && cur.Value.(*session) == s {
		st.order.Remove(cur)
		delete(st.entries, name)
	}
	st.mu.Unlock()
	st.closeSession(s)
}

// snapshot lists live sessions, most recently used first. The table lock
// covers only the walk: maintainer queries happen after release, so a
// session mid-repair can delay its own row but never block the mutate
// plane (which needs st.mu) behind it.
func (st *sessionTable) snapshot() []SessionSnapshot {
	st.mu.Lock()
	sessions := make([]*session, 0, st.order.Len())
	for el := st.order.Front(); el != nil; el = el.Next() {
		sessions = append(sessions, el.Value.(*session))
	}
	st.mu.Unlock()
	out := make([]SessionSnapshot, 0, len(sessions))
	for _, s := range sessions {
		s.mu.Lock()
		snap := SessionSnapshot{Session: s.name, Base: s.spec.String(), Replayed: int64(s.replayed)}
		mt, wlog := s.mt, s.wlog
		s.mu.Unlock()
		if wlog != nil {
			snap.WALSeq = wlog.LastSeq()
			snap.WALBytes = wlog.Size()
		}
		if mt != nil {
			fp, n, m, _ := mt.Shape()
			snap.N, snap.M = n, m
			snap.Fingerprint = fp.String()
			snap.Totals = mt.Stats()
			snap.Engine = mt.Engine().String()
		}
		out = append(out, snap)
	}
	return out
}

func (st *sessionTable) close() {
	st.mu.Lock()
	ents := make([]*session, 0, st.order.Len())
	for el := st.order.Front(); el != nil; el = el.Next() {
		ents = append(ents, el.Value.(*session))
	}
	st.order.Init()
	st.entries = map[string]*list.Element{}
	st.mu.Unlock()
	for _, s := range ents {
		st.closeSession(s)
	}
}

// SessionSnapshot reports one dynamic session in /statz.
type SessionSnapshot struct {
	Session string `json:"session"`
	Base    string `json:"base"`
	// Engine is the dist scheduler the session's repairs run on.
	Engine      string        `json:"engine,omitempty"`
	N           int           `json:"n"`
	M           int           `json:"m"`
	Fingerprint string        `json:"fingerprint"`
	Totals      dynamic.Stats `json:"totals"`
	// Replayed is the number of WAL records this session was rebuilt from at
	// creation; WALSeq/WALBytes describe its live log (durable sessions only).
	Replayed int64 `json:"replayed,omitempty"`
	WALSeq   int64 `json:"walSeq,omitempty"`
	WALBytes int64 `json:"walBytes,omitempty"`
}

// Mutate serves one dynamic session request. Mutations always execute;
// pure coloring reads are answered from the result cache when the session
// fingerprint has not moved since the coloring was last rendered.
func (s *Service) Mutate(req MutateRequest) (*MutateResponse, Outcome, error) {
	return s.mutate(req, false)
}

// mutate is Mutate plus the ?detail=1 switch: with detail set, the response
// additionally carries the repair algorithm's identity, tier, palette bound,
// and measured color count. The detail fields are filled after any cache
// interaction — cached read records stay detail-free and byte-stable.
func (s *Service) mutate(req MutateRequest, detail bool) (*MutateResponse, Outcome, error) {
	// Stripe the counters by session name: concurrent sessions update
	// disjoint cache lines, and all of one request's counts stay coherent
	// within its stripe.
	ctr := s.counters.stripe(cacheHashString(req.Session))
	ctr.requests.Add(1)
	if req.Session == "" {
		ctr.errors.Add(1)
		return nil, "", fmt.Errorf("service: mutate request needs a session name")
	}
	base := req.Base
	if base == nil && s.cfg.WALDir != "" {
		// No base spec, but the session may have a durable log from an
		// earlier incarnation (or a restart): its header carries the spec,
		// so the session is recoverable without the client resupplying it.
		if hdr, ok := s.walHeader(req.Session); ok {
			base = &hdr.Base
		}
	}
	sess, err := s.sessions.get(req.Session, base, func(spec exp.GraphSpec) (*dynamic.Maintainer, *wal.Log, exp.GraphSpec, int, error) {
		return s.buildMaintainer(req.Session, spec)
	})
	if err != nil {
		ctr.errors.Add(1)
		return nil, "", err
	}
	if len(req.Ops) == 0 && req.Colors {
		resp, outcome, err := s.readColors(req.Session, sess, ctr)
		if err == nil && detail {
			fillRepairDetail(resp, resp.NumColors)
		}
		return resp, outcome, err
	}

	rep, applied, err := sess.mt.Apply(req.Ops)
	ctr.mutations.Add(int64(applied))
	if err != nil {
		ctr.errors.Add(1)
		if sess.mt.Poisoned() {
			// A failed repair disables the maintainer permanently; drop the
			// session so the name can be recreated instead of serving
			// "maintainer closed" until eviction.
			s.sessions.drop(req.Session, sess)
		}
		if applied > 0 {
			err = fmt.Errorf("%w (%d earlier op(s) of this request were applied)", err, applied)
		}
		return nil, "", err
	}
	totals := sess.mt.Stats()
	resp := &MutateResponse{
		Session:     req.Session,
		Fingerprint: sess.mt.Fingerprint().String(),
		N:           sess.mt.N(),
		M:           sess.mt.M(),
		Delta:       sess.mt.MaxDegree(),
		Applied:     applied,
		Repair:      &rep,
		Totals:      &totals,
	}
	if req.Colors {
		resp.Colors = sess.mt.Colors()
		resp.NumColors = graph.CountColors(resp.Colors)
	}
	if detail {
		used := resp.NumColors
		if !req.Colors {
			used = graph.CountColors(sess.mt.Colors())
		}
		fillRepairDetail(resp, used)
	}
	return resp, Miss, nil
}

// fillRepairDetail stamps the ?detail=1 fields onto a mutate response. The
// maintainer's repair is first-fit over incident colors, so its guaranteed
// bound on the current graph is 2Δ-1 (pinned by the dynamic package's
// canonical tests); it serves the "fast" tier.
func fillRepairDetail(resp *MutateResponse, colorsUsed int) {
	resp.Alg, resp.Quality = "repair", algreg.QualityFast
	if resp.Delta > 0 {
		resp.PaletteBound = 2*resp.Delta - 1
	}
	resp.ColorsUsed = colorsUsed
}

// walPath maps a session name to its log file: a hash, not the name itself,
// so arbitrary session names cannot traverse or collide in the directory.
func (s *Service) walPath(name string) string {
	sum := sha256.Sum256([]byte("colord-wal-name\x00" + name))
	return filepath.Join(s.cfg.WALDir, hex.EncodeToString(sum[:16])+".wal")
}

// walHeader peeks at the named session's log header, if a log exists.
func (s *Service) walHeader(name string) (wal.Header, bool) {
	data, err := os.ReadFile(s.walPath(name))
	if err != nil {
		return wal.Header{}, false
	}
	hdr, _, _, err := wal.Scan(data)
	if err != nil {
		return wal.Header{}, false
	}
	return hdr, true
}

// buildMaintainer creates a session's maintainer from its base spec. The
// repair algorithm has a compiled form, and repairs are byte-identical across
// engines, so sessions always run on the compiled engine regardless of the
// service default — the choice is wall-clock only, and /statz records it per
// session. The commit hook feeds the subscriber hub: it fires under the
// maintainer's lock (so feed order is commit order), and the render closure
// only runs when the session has (ever had) subscribers — unobserved
// sessions never encode a frame.
//
// With Config.WALDir set, the session is durable: an existing log is
// replayed (the log header's spec wins over the request's — the log is the
// truth about what the session is), a missing one is created, and every
// commit appends its record — durability first, then the subscriber
// publish, both under the commit lock. A WAL append failure latches the log
// broken and counts in walErrors; serving continues on the in-memory state
// (an explicitly monitored degradation, not a silent one).
func (s *Service) buildMaintainer(name string, spec exp.GraphSpec) (*dynamic.Maintainer, *wal.Log, exp.GraphSpec, int, error) {
	if s.cfg.WALDir == "" {
		g, err := spec.Build()
		if err != nil {
			return nil, nil, spec, 0, err
		}
		m, err := dynamic.New(g, dynamic.Config{
			Engine: dist.Compiled,
			OnCommit: func(ev dynamic.CommitEvent) {
				s.hub.publish(name, ev.Seq, func() []byte { return deltaFrameBytes(name, ev) })
			},
		})
		return m, nil, spec, 0, err
	}

	path := s.walPath(name)
	opts := wal.Options{Sync: s.cfg.WALSync}
	var (
		l    *wal.Log
		hdr  wal.Header
		recs []wal.Record
	)
	if _, err := os.Stat(path); err == nil {
		l, hdr, recs, err = wal.Open(path, opts)
		if err != nil {
			return nil, nil, spec, 0, fmt.Errorf("service: session %q wal: %w", name, err)
		}
		if hdr.Session != name {
			l.Close()
			return nil, nil, spec, 0, fmt.Errorf("service: wal %s belongs to session %q, not %q", filepath.Base(path), hdr.Session, name)
		}
	} else if errors.Is(err, fs.ErrNotExist) {
		hdr = wal.Header{Session: name, Base: spec}
		l, err = wal.Create(path, hdr, opts)
		if err != nil {
			return nil, nil, spec, 0, fmt.Errorf("service: session %q wal: %w", name, err)
		}
	} else {
		return nil, nil, spec, 0, fmt.Errorf("service: session %q wal: %w", name, err)
	}

	ctr := s.counters.stripe(cacheHashString(name))
	m, err := dynamic.Replay(hdr, recs, dynamic.Config{
		Engine: dist.Compiled,
		OnCommit: func(ev dynamic.CommitEvent) {
			if err := l.Append(wal.Record{Seq: ev.Seq, Op: ev.Op, Fingerprint: ev.Fingerprint}); err != nil {
				ctr.walErrors.Add(1)
			} else {
				ctr.walAppends.Add(1)
			}
			s.hub.publish(name, ev.Seq, func() []byte { return deltaFrameBytes(name, ev) })
		},
	})
	if err != nil {
		l.Close()
		return nil, nil, spec, 0, err
	}
	ctr.replayed.Add(int64(len(recs)))
	return m, l, hdr.Base, len(recs), nil
}

// readColors serves a pure coloring read through the result cache. The key
// hashes the session name and its current fingerprint, so every mutation
// invalidates by moving the key, and a response body is a pure function of
// its key — cache hits are byte-identical to fresh renders.
func (s *Service) readColors(name string, sess *session, ctr *counterStripe) (*MutateResponse, Outcome, error) {
	// The snapshot is atomic in the maintainer, so the (fingerprint,
	// colors) pair cannot be torn by a concurrent mutation — exactly what a
	// fingerprint-keyed cache entry requires. The wire fast lane is
	// deliberately not used here: the fingerprint moves under mutation, so
	// raw request bytes are not a stable key for session reads.
	fp, n, m, delta, colors := sess.mt.Snapshot()
	var kw wire.Writer
	kw.String("colord-dynkey-v1").String(name).Raw(fp[:])
	sum := sha256.Sum256(kw.Bytes())
	key := hex.EncodeToString(sum[:])
	if v, ok := s.cache.get(key); ok {
		resp, err := decodeDynRecord(v.rec)
		if err != nil {
			ctr.errors.Add(1)
			return nil, "", err
		}
		ctr.hits.Add(1)
		return resp, Hit, nil
	}
	resp := &MutateResponse{
		Session:     name,
		Fingerprint: fp.String(),
		N:           n,
		M:           m,
		Delta:       delta,
		Colors:      colors,
		NumColors:   graph.CountColors(colors),
	}
	s.cache.put(key, newCacheValue(key, encodeDynRecord(resp)))
	return resp, Miss, nil
}

const dynRecordTag = "colord-dynrec-v1"

func encodeDynRecord(r *MutateResponse) []byte {
	var w wire.Writer
	w.String(dynRecordTag)
	w.String(r.Session).String(r.Fingerprint)
	w.Int(r.N).Int(r.M).Int(r.Delta).Int(r.NumColors)
	w.Ints(r.Colors)
	return w.Bytes()
}

func decodeDynRecord(b []byte) (*MutateResponse, error) {
	r := wire.NewReader(b)
	if tag := r.ReadString(); tag != dynRecordTag {
		return nil, fmt.Errorf("service: dynamic cache record tag %q, want %q", tag, dynRecordTag)
	}
	resp := &MutateResponse{}
	resp.Session, resp.Fingerprint = r.ReadString(), r.ReadString()
	resp.N, resp.M, resp.Delta, resp.NumColors = r.Int(), r.Int(), r.Int(), r.Int()
	resp.Colors = r.Ints()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("service: corrupt dynamic cache record: %w", err)
	}
	if resp.Colors == nil {
		resp.Colors = []int{}
	}
	return resp, nil
}
