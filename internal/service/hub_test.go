package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestHubFanoutInOrder is the core broadcast contract at scale: 1000
// subscribers on one feed, every published frame reaching every one of them,
// in publish order, with no duplicates — and publish cost independent of the
// subscriber count (one append, no per-subscriber work).
func TestHubFanoutInOrder(t *testing.T) {
	const subs, frames = 1000, 64
	h := newSubHub(2*subs, 2*subs, frames+1)
	handles := make([]*feedSub, subs)
	for i := range handles {
		sub, _, err := h.subscribe("s", -1)
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		handles[i] = sub
	}
	if got := h.subscribers(); got != subs {
		t.Fatalf("subscribers gauge %d, want %d", got, subs)
	}
	for i := 0; i < frames; i++ {
		frame := []byte(fmt.Sprintf("frame-%d", i))
		if !h.publish("s", int64(i)+1, func() []byte { return frame }) {
			t.Fatalf("publish %d declined with %d subscribers", i, subs)
		}
	}
	for si, sub := range handles {
		for i := 0; i < frames; i++ {
			frame, st, _ := sub.next(nil, false)
			if st != subFrame {
				t.Fatalf("sub %d frame %d: status %d, want subFrame", si, i, st)
			}
			if want := fmt.Sprintf("frame-%d", i); string(frame) != want {
				t.Fatalf("sub %d frame %d: got %q, want %q", si, i, frame, want)
			}
		}
		if _, st, _ := sub.next(nil, false); st != subIdle {
			t.Fatalf("sub %d: status %d after drain, want subIdle", si, st)
		}
		sub.unsubscribe()
	}
	if got := h.subscribers(); got != 0 {
		t.Fatalf("subscribers gauge %d after unsubscribe, want 0", got)
	}
	// The feed persists after the last subscriber leaves: it is the resume
	// window. A frame published now is replayable by a reconnect that names
	// the last seq it saw.
	if !h.publish("s", frames+1, func() []byte { return []byte("late") }) {
		t.Fatal("publish declined on a persistent feed")
	}
	sub, ack, err := h.subscribe("s", frames)
	if err != nil {
		t.Fatal(err)
	}
	if ack != frames {
		t.Fatalf("resume ack %d, want %d (exact resume)", ack, frames)
	}
	if frame, st, _ := sub.next(nil, false); st != subFrame || string(frame) != "late" {
		t.Fatalf("resumed read: status %d frame %q, want the late frame", st, frame)
	}
	sub.unsubscribe()
	// A publish on a session that never had a subscriber still declines.
	if h.publish("t", 1, func() []byte { t.Error("render called with no feed"); return nil }) {
		t.Fatal("publish accepted for a never-subscribed session")
	}
}

// TestHubConcurrentFanout runs blocking subscribers against a live publisher
// under -race: every subscriber sees the full frame sequence in order, then
// (once everyone has drained — close discards pending frames by design) the
// close notification.
func TestHubConcurrentFanout(t *testing.T) {
	const subs, frames = 8, 500
	h := newSubHub(64, 64, frames+1)
	var wg, drained sync.WaitGroup
	errCh := make(chan error, subs)
	for i := 0; i < subs; i++ {
		sub, _, err := h.subscribe("s", -1)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		drained.Add(1)
		go func(i int, sub *feedSub) {
			defer wg.Done()
			defer sub.unsubscribe()
			for n := 0; n < frames; n++ {
				frame, st, _ := sub.next(nil, true)
				if st != subFrame {
					drained.Done()
					errCh <- fmt.Errorf("sub %d: status %d at frame %d, want subFrame", i, st, n)
					return
				}
				if want := fmt.Sprintf("f%d", n); string(frame) != want {
					drained.Done()
					errCh <- fmt.Errorf("sub %d: frame %d is %q, want %q", i, n, frame, want)
					return
				}
			}
			drained.Done()
			if _, st, _ := sub.next(nil, true); st != subClosed {
				errCh <- fmt.Errorf("sub %d: status %d after drain, want subClosed", i, st)
			}
		}(i, sub)
	}
	for i := 0; i < frames; i++ {
		frame := []byte(fmt.Sprintf("f%d", i))
		h.publish("s", int64(i)+1, func() []byte { return frame })
	}
	// close discards undelivered frames (a closed session's deltas are
	// moot), so only close once every subscriber has read the full run.
	drained.Wait()
	h.closeFeed("s")
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestHubOverflow pins the backpressure contract: a subscriber whose cursor
// falls off the feed's bounded log is dropped with an exact missed count,
// and the publisher never waited for it.
func TestHubOverflow(t *testing.T) {
	const buffer = 4
	h := newSubHub(8, 8, buffer)
	sub, _, err := h.subscribe("s", -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.publish("s", int64(i)+1, func() []byte { return []byte("x") })
	}
	_, st, missed := sub.next(nil, false)
	if st != subOverflow {
		t.Fatalf("status %d, want subOverflow", st)
	}
	// 10 published, the newest 4 retained: frames 1..6 are gone for good.
	if missed != 6 {
		t.Fatalf("missed %d, want 6", missed)
	}
	sub.unsubscribe()

	// Exactly at the bound: a subscriber lagging by the full buffer still
	// recovers every frame.
	sub, _, err = h.subscribe("s", -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < buffer; i++ {
		h.publish("s", int64(10+i)+1, func() []byte { return []byte{byte('0' + i)} })
	}
	for i := 0; i < buffer; i++ {
		frame, st, _ := sub.next(nil, false)
		if st != subFrame || string(frame) != string(byte('0'+i)) {
			t.Fatalf("frame %d: status %d frame %q", i, st, frame)
		}
	}
	sub.unsubscribe()
}

// TestHubAdmission covers the subscribe-time limits: per-session quota, the
// global cap, and the closed hub.
func TestHubAdmission(t *testing.T) {
	h := newSubHub(2, 1, 4)
	a, _, err := h.subscribe("a", -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.subscribe("a", -1); !errors.Is(err, errSessionFull) {
		t.Fatalf("second same-session subscribe: %v, want errSessionFull", err)
	}
	b, _, err := h.subscribe("b", -1)
	if err != nil {
		t.Fatalf("other-session subscribe under global cap: %v", err)
	}
	if _, _, err := h.subscribe("c", -1); !errors.Is(err, errHubFull) {
		t.Fatalf("subscribe over global cap: %v, want errHubFull", err)
	}
	a.unsubscribe()
	a.unsubscribe() // idempotent: must not double-release the slot
	if got := h.subscribers(); got != 1 {
		t.Fatalf("subscribers gauge %d, want 1", got)
	}
	h.close()
	if _, _, err := h.subscribe("a", -1); !errors.Is(err, errHubClosed) {
		t.Fatalf("subscribe after close: %v, want errHubClosed", err)
	}
	// b's feed closed with the hub: the blocked read observes it.
	if _, st, _ := b.next(nil, true); st != subClosed {
		t.Fatalf("status %d after hub close, want subClosed", st)
	}
	b.unsubscribe()
}

// TestHubCloseFeedWakesBlocked pins the shutdown path a live stream takes
// when its session is evicted: a subscriber parked in a blocking next must
// wake with subClosed, not hang.
func TestHubCloseFeedWakesBlocked(t *testing.T) {
	h := newSubHub(4, 4, 4)
	sub, _, err := h.subscribe("s", -1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan subStatus, 1)
	go func() {
		_, st, _ := sub.next(nil, true)
		done <- st
	}()
	h.closeFeed("s")
	if st := <-done; st != subClosed {
		t.Fatalf("status %d, want subClosed", st)
	}
	// The name is free again: a new feed under the same session works.
	sub2, _, err := h.subscribe("s", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !h.publish("s", 1, func() []byte { return []byte("y") }) {
		t.Fatal("publish declined on recreated feed")
	}
	if frame, st, _ := sub2.next(nil, false); st != subFrame || string(frame) != "y" {
		t.Fatalf("recreated feed: status %d frame %q", st, frame)
	}
	sub2.unsubscribe()
	sub.unsubscribe()
}

// TestHubCancelWakesBlocked: a client disconnect (cancel channel) unblocks a
// parked subscriber with subCanceled.
func TestHubCancelWakesBlocked(t *testing.T) {
	h := newSubHub(4, 4, 4)
	sub, _, err := h.subscribe("s", -1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.unsubscribe()
	cancel := make(chan struct{})
	done := make(chan subStatus, 1)
	go func() {
		_, st, _ := sub.next(cancel, true)
		done <- st
	}()
	close(cancel)
	if st := <-done; st != subCanceled {
		t.Fatalf("status %d, want subCanceled", st)
	}
}
