package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/algreg"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Request is one coloring request as it arrives off the wire. The server
// builds the graph from the spec (generators are seed-deterministic, so the
// spec transmits the graph in a few bytes), runs the selected algorithm, and
// returns the coloring.
//
// Engine and Shards are execution hints only: every engine produces
// byte-identical outputs (the dist contract), so they are excluded from the
// cache key — a request served from a sharded run is a cache hit for the
// same request asking for lockstep.
type Request struct {
	// Kind is "edge" or "vertex".
	Kind string `json:"kind"`
	// Alg selects the algorithm by name; the servable names are the algreg
	// entries (edge: "be", "pr", "greedy", "fewcolors"; vertex: "be",
	// "greedy"). Empty with Quality set picks that tier's default.
	Alg string `json:"alg,omitempty"`
	// Quality is the palette-size knob: "fast" (today's behavior, the
	// fewest-rounds tier) or "fewcolors" (a measured palette near Δ at a
	// higher round cost). Empty imposes nothing; set alongside Alg it must
	// match the named algorithm's tier. Not part of the cache key — the
	// resolved algorithm is.
	Quality string `json:"quality,omitempty"`
	// Graph names the instance.
	Graph exp.GraphSpec `json:"graph"`
	// Seed is the algorithm seed (dist.WithSeed); part of the cache key.
	Seed int64 `json:"seed,omitempty"`
	// B, P are the Algorithm 1 recursion parameters of the "be" algorithms
	// (0 = defaults: b=2; p=6 for edges, 4c+1 for vertices).
	B int `json:"b,omitempty"`
	P int `json:"p,omitempty"`
	// C is the neighborhood-independence bound assumed for vertex "be"
	// (0 = 2, the line-graph value). Results are legality-checked before
	// caching, so an optimistic bound fails loudly instead of silently.
	C int `json:"c,omitempty"`
	// Mode is the §5 message mode of edge "be": "wide" (default) or
	// "short".
	Mode string `json:"mode,omitempty"`
	// Engine optionally overrides the server's scheduler for this run:
	// "goroutines", "lockstep", "sharded", or "compiled". Not part of the
	// cache key — every engine produces byte-identical results.
	Engine string `json:"engine,omitempty"`
	// Shards optionally pins the shard count of a sharded run. Not part of
	// the cache key.
	Shards int `json:"shards,omitempty"`
}

// Stats mirrors dist.Stats in the response body.
type Stats struct {
	Rounds          int `json:"rounds"`
	Bytes           int `json:"bytes"`
	MaxMessageBytes int `json:"maxMessageBytes"`
	Activations     int `json:"activations"`
}

// Response is the service's answer. For Kind "edge", Colors[i] is the color
// of the edge with id i (the canonical graph.Edges order); for "vertex",
// Colors[v] is the color of vertex index v. Bodies are byte-identical
// whether served from the cache or computed fresh — the transport marks the
// difference in the X-Colord-Cache header, never in the body.
type Response struct {
	// Key is the deterministic cache key of the request (hex).
	Key   string `json:"key"`
	Kind  string `json:"kind"`
	Alg   string `json:"alg"`
	Graph string `json:"graph"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Delta int    `json:"delta"`
	// Palette is the algorithm's color bound for this instance; NumColors
	// (<= Palette) is the count actually used.
	Palette   int   `json:"palette"`
	NumColors int   `json:"numColors"`
	Colors    []int `json:"colors"`
	Stats     Stats `json:"stats"`
}

// DetailResponse is the ?detail=1 envelope: the standard response plus the
// quality-observability fields (resolved algorithm, tier, palette bound,
// measured colors, and the run's round/activation cost). The default body
// stays byte-identical to previous releases; this envelope is additive and
// versioned by its own shape.
type DetailResponse struct {
	Key     string `json:"key"`
	Kind    string `json:"kind"`
	Alg     string `json:"alg"`
	Quality string `json:"quality"`
	Graph   string `json:"graph"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	Delta   int    `json:"delta"`
	// PaletteBound is the algorithm's guaranteed bound for this instance;
	// ColorsUsed is the measured distinct-color count (<= PaletteBound).
	PaletteBound int   `json:"paletteBound"`
	ColorsUsed   int   `json:"colorsUsed"`
	Rounds       int   `json:"rounds"`
	Activations  int   `json:"activations"`
	Colors       []int `json:"colors"`
}

// canonReq is a validated request bound to its cached graph: everything an
// execution needs, resolved up front so exec-time errors are limited to
// genuine runtime failures.
type canonReq struct {
	req   Request // defaults filled in
	alg   *algreg.Algorithm
	entry *graphEntry
	key   string
	// hash is cacheHashString(key), computed once at resolve time: it picks
	// the result-cache shard and the counter stripe without rehashing.
	hash   uint64
	opts   []dist.Option
	runner func(c *canonReq) (*record, error)
}

// record is the cache-layer value: the response payload in wire encoding.
// The JSON response is always rendered from a decoded record, so cache hits
// and fresh computations produce identical bodies by construction. The
// graph's *name* is deliberately absent: the key is the graph fingerprint,
// and distinct specs can build fingerprint-identical graphs (Path(6) and
// Grid(6,1), say) — each response must echo its own request's spec, while
// colors, stats, and shape are key-determined and shared.
type record struct {
	kind, alg, quality   string
	n, m, delta, palette int
	colorsUsed           int
	colors               []int
	stats                dist.Stats
}

// recordTag versions the wire record; v2 added quality and colorsUsed. A
// v1 peer's record fails the tag check and the fill degrades to a local
// run — never to serving a misdecoded body.
const recordTag = "colord-rec-v2"

func (rec *record) encode() []byte {
	var w wire.Writer
	w.String(recordTag)
	w.String(rec.kind).String(rec.alg).String(rec.quality)
	w.Int(rec.n).Int(rec.m).Int(rec.delta).Int(rec.palette).Int(rec.colorsUsed)
	w.Int(rec.stats.Rounds).Int(rec.stats.Bytes).Int(rec.stats.MaxMessageBytes).Int(rec.stats.Activations)
	w.Ints(rec.colors)
	return w.Bytes()
}

func decodeRecord(b []byte) (*record, error) {
	r := wire.NewReader(b)
	if tag := r.ReadString(); tag != recordTag {
		return nil, fmt.Errorf("service: cache record tag %q, want %q", tag, recordTag)
	}
	rec := &record{}
	rec.kind, rec.alg, rec.quality = r.ReadString(), r.ReadString(), r.ReadString()
	rec.n, rec.m, rec.delta, rec.palette, rec.colorsUsed = r.Int(), r.Int(), r.Int(), r.Int(), r.Int()
	rec.stats = dist.Stats{Rounds: r.Int(), Bytes: r.Int(), MaxMessageBytes: r.Int(), Activations: r.Int()}
	rec.colors = r.Ints()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("service: corrupt cache record: %w", err)
	}
	if rec.colors == nil {
		rec.colors = []int{}
	}
	return rec, nil
}

func (rec *record) response(key, graphName string) *Response {
	return &Response{
		Key:   key,
		Kind:  rec.kind,
		Alg:   rec.alg,
		Graph: graphName,
		N:     rec.n, M: rec.m, Delta: rec.delta,
		Palette:   rec.palette,
		NumColors: rec.colorsUsed,
		Colors:    rec.colors,
		Stats: Stats{
			Rounds:          rec.stats.Rounds,
			Bytes:           rec.stats.Bytes,
			MaxMessageBytes: rec.stats.MaxMessageBytes,
			Activations:     rec.stats.Activations,
		},
	}
}

func (rec *record) detail(key, graphName string) *DetailResponse {
	return &DetailResponse{
		Key:  key,
		Kind: rec.kind, Alg: rec.alg, Quality: rec.quality,
		Graph: graphName,
		N:     rec.n, M: rec.m, Delta: rec.delta,
		PaletteBound: rec.palette,
		ColorsUsed:   rec.colorsUsed,
		Rounds:       rec.stats.Rounds,
		Activations:  rec.stats.Activations,
		Colors:       rec.colors,
	}
}

// cacheKey derives the deterministic cache key: a hash over the graph
// fingerprint and every output-affecting request parameter. Engine and shard
// choice are deliberately absent — outputs are engine-independent.
func cacheKey(req *Request, fp graph.Fingerprint) string {
	var w wire.Writer
	w.String("colord-key-v1")
	w.String(req.Kind).String(req.Alg).String(req.Mode)
	w.Int(req.B).Int(req.P).Int(req.C)
	w.Uint(uint64(req.Seed))
	w.Raw(fp[:])
	sum := sha256.Sum256(w.Bytes())
	return hex.EncodeToString(sum[:])
}
