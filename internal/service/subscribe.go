package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dynamic"
	"repro/internal/exp"
)

// The streaming feed's wire format: Server-Sent Events (text/event-stream).
// Four event types flow on a subscription, every one a single prerendered
// write:
//
//	event: hello     — once, at subscribe: the session's state at
//	                   registration (HelloEvent). Deltas follow from here.
//	event: delta     — one per committed mutation, in commit order
//	                   (DeltaEvent; the SSE id: field carries Seq).
//	event: overflow  — the subscriber lagged more than the feed buffer and
//	                   is dropped (OverflowEvent); the stream then ends.
//	event: close     — the session ended (evicted, recreated, or service
//	                   shutdown; CloseEvent); the stream then ends.
//
// Delta frames are rendered once, at commit, and the identical bytes are
// written to every subscriber — the encode-at-fill discipline applied to
// fan-out.

// HelloEvent opens every subscription: the session's shape at registration.
// Seq is the seq the delta stream continues from — every subsequent delta
// carries Seq greater than this, the first exactly Seq+1 (the subscriber's
// cursor is placed before hello is rendered, so a delta racing the handshake
// is delivered too, never lost — at worst hello already reflects it).
//
// On a fresh subscription Seq is the session's committed-mutation count at
// registration. On a reconnect with Last-Event-ID, Resumed reports whether
// the stream picks up exactly where the client left off (Seq equals the
// client's last id, deltas continue with no gap); when the requested
// position is no longer retained, Resumed is false and Missed counts the
// deltas that are gone for good — the client must resync its mirror (re-read
// the full coloring) before trusting subsequent deltas.
type HelloEvent struct {
	Session     string `json:"session"`
	Seq         int64  `json:"seq"`
	Fingerprint string `json:"fingerprint"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Delta       int    `json:"delta"`
	// Resumed / Missed appear only on Last-Event-ID reconnects.
	Resumed bool   `json:"resumed,omitempty"`
	Missed  uint64 `json:"missed,omitempty"`
}

// DeltaEvent is one committed mutation's recolor delta: the op, the exact
// set of recolored edges, the repair scope, and the post-commit shape.
// Applying Op and Changed to a mirror of the previous state yields the
// state Fingerprint names (see dynamic.CommitEvent).
type DeltaEvent struct {
	Session     string                 `json:"session"`
	Seq         int64                  `json:"seq"`
	Op          exp.Mutation           `json:"op"`
	Fingerprint string                 `json:"fingerprint"`
	N           int                    `json:"n"`
	M           int                    `json:"m"`
	Delta       int                    `json:"delta"`
	Repair      dynamic.Report         `json:"repair"`
	Changed     []dynamic.ChangedColor `json:"changed,omitempty"`
	// TS is the commit wall-clock in Unix nanoseconds; subscribers measure
	// delivery latency as receive-time minus TS.
	TS int64 `json:"ts"`
}

// OverflowEvent tells a dropped subscriber how many deltas it can never
// recover; the client must resync (re-read the full coloring) before
// resubscribing.
type OverflowEvent struct {
	Session string `json:"session"`
	Missed  uint64 `json:"missed"`
}

// CloseEvent ends a stream whose session went away.
type CloseEvent struct {
	Session string `json:"session"`
	Reason  string `json:"reason"`
}

// sseFrame renders one SSE frame: optional id line, event name, one JSON
// data line, blank terminator. The payload types above contain no values
// json.Marshal can reject, so encoding cannot fail.
func sseFrame(id int64, event string, data any) []byte {
	var b bytes.Buffer
	if id >= 0 {
		fmt.Fprintf(&b, "id: %d\n", id)
	}
	fmt.Fprintf(&b, "event: %s\ndata: ", event)
	j, err := json.Marshal(data)
	if err != nil {
		panic("service: unmarshalable SSE payload: " + err.Error())
	}
	b.Write(j)
	b.WriteString("\n\n")
	return b.Bytes()
}

// deltaFrameBytes renders a commit's delta frame; called at most once per
// commit (and only when the session has subscribers), under the session
// maintainer's lock — so frames enter the feed in commit order.
func deltaFrameBytes(session string, ev dynamic.CommitEvent) []byte {
	return sseFrame(ev.Seq, "delta", DeltaEvent{
		Session:     session,
		Seq:         ev.Seq,
		Op:          ev.Op,
		Fingerprint: ev.Fingerprint.String(),
		N:           ev.N,
		M:           ev.M,
		Delta:       ev.Delta,
		Repair:      ev.Report,
		Changed:     ev.Changed,
		TS:          time.Now().UnixNano(),
	})
}

// serveSubscribe is GET /v1/subscribe?session=NAME: an SSE stream of the
// named session's recolor deltas. Admission: the session must exist (404),
// the global subscriber cap and the per-session quota must have room (429).
// The stream then runs until the client disconnects, the subscriber
// overflows, or the session ends.
//
// A reconnecting client sends the standard SSE Last-Event-ID header (the id
// of the last delta it processed — exactly what this stream's id: lines
// carry). The subscription then resumes from the hub's retained ring when
// the requested position is still there; otherwise the hello frame reports
// the irrecoverable gap in Missed so the client knows to resync. After a
// server restart the ring starts empty but the session's seq continues from
// the WAL replay, so the gap arithmetic stays exact across crashes.
func (s *Service) serveSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("session")
	if name == "" {
		s.counters.stripe(0).badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "subscribe needs a ?session=NAME query parameter")
		return
	}
	from := int64(-1)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil || id < 0 {
			s.counters.stripe(0).badRequests.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Sprintf("Last-Event-ID %q is not a delta seq", v))
			return
		}
		from = id
	}
	ctr := s.counters.stripe(cacheHashString(name))
	sess := s.sessions.lookup(name)
	mt := (*dynamic.Maintainer)(nil)
	if sess != nil {
		mt = sess.maintainer()
	}
	if mt == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q (create it with POST /v1/mutate first)", name))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	sub, ack, err := s.hub.subscribe(name, from)
	if err != nil {
		status := http.StatusTooManyRequests
		if errors.Is(err, errHubClosed) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err.Error())
		return
	}
	defer sub.unsubscribe()
	ctr.subscribes.Add(1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream

	// The cursor was placed by subscribe, so the hello snapshot read here
	// can only be at or ahead of it: no delta is lost in the handshake.
	fp, n, m, delta, seq := mt.StreamState()
	ev := HelloEvent{
		Session:     name,
		Seq:         seq,
		Fingerprint: fp.String(),
		N:           n,
		M:           m,
		Delta:       delta,
	}
	if from >= 0 {
		switch {
		case ack >= 0:
			// The ring serves the stream from ack+1 on; commits (from, ack]
			// rotated out (none, when ack == from — an exact resume).
			ev.Seq = ack
			ev.Missed = uint64(ack - from)
			ev.Resumed = ev.Missed == 0
		case from <= seq:
			// No ring history (feed empty — e.g. the process restarted and
			// replayed the session from its WAL). The stream continues from
			// the session's current seq; everything between the client's
			// last id and now is gone.
			ev.Missed = uint64(seq - from)
			ev.Resumed = ev.Missed == 0
		default:
			// The client claims a seq this session has not reached — a
			// different incarnation (recreated without its WAL). Not
			// resumable; the hello's state is the truth to resync to.
		}
	}
	hello := sseFrame(-1, "hello", ev)
	if _, err := w.Write(hello); err != nil {
		return
	}
	flusher.Flush()

	cancel := r.Context().Done()
	for {
		frame, st, missed := sub.next(cancel, true)
		// Drain the backlog before flushing: a burst of commits becomes one
		// kernel write per subscriber, not one per frame.
		for st == subFrame {
			if _, err := w.Write(frame); err != nil {
				return
			}
			ctr.delivered.Add(1)
			frame, st, missed = sub.next(cancel, false)
		}
		switch st {
		case subIdle:
			flusher.Flush()
		case subOverflow:
			ctr.dropped.Add(1)
			w.Write(sseFrame(-1, "overflow", OverflowEvent{Session: name, Missed: missed}))
			flusher.Flush()
			return
		case subClosed:
			w.Write(sseFrame(-1, "close", CloseEvent{Session: name, Reason: "session closed"}))
			flusher.Flush()
			return
		case subCanceled:
			return
		}
	}
}
