package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/dynamic"
	"repro/internal/exp"
)

func walConfig(dir string) Config {
	cfg := testConfig()
	cfg.WALDir = dir
	return cfg
}

// TestSessionSurvivesRestart is the durability contract end to end: a
// WAL-backed session driven through mutations, closed with the service, and
// recreated by a fresh service on the same directory — with no base spec from
// the client — serves the identical fingerprint and byte-identical coloring,
// and keeps accepting mutations with no divergence from a never-restarted
// oracle.
func TestSessionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	base := exp.GraphSpec{Family: "gnm", N: 32, M: 70, Seed: 4}
	stream := exp.MutationStream{Kind: "mix", Base: base, Ops: 50, Seed: 9}
	g, muts, err := stream.Generate()
	if err != nil {
		t.Fatal(err)
	}
	before, after := muts[:40], muts[40:]

	s := New(walConfig(dir))
	if _, _, err := s.Mutate(MutateRequest{Session: "d", Base: &base, Ops: before}); err != nil {
		t.Fatal(err)
	}
	live, _, err := s.Mutate(MutateRequest{Session: "d", Colors: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WALAppends != int64(len(before)) || st.WALErrors != 0 {
		t.Fatalf("walAppends %d / walErrors %d, want %d / 0", st.WALAppends, st.WALErrors, len(before))
	}
	s.Close()

	// A fresh process: the client supplies only the name — the log header
	// carries the base spec, the records carry the history.
	s2 := New(walConfig(dir))
	defer s2.Close()
	rec, _, err := s2.Mutate(MutateRequest{Session: "d", Colors: true})
	if err != nil {
		t.Fatalf("recover without base: %v", err)
	}
	if rec.Fingerprint != live.Fingerprint {
		t.Fatalf("recovered fingerprint %s, want %s", rec.Fingerprint, live.Fingerprint)
	}
	if !reflect.DeepEqual(rec.Colors, live.Colors) {
		t.Fatal("recovered coloring differs from pre-restart coloring")
	}
	st := s2.Stats()
	if st.Replayed != int64(len(before)) {
		t.Fatalf("replayed %d records, want %d", st.Replayed, len(before))
	}
	if len(st.Sessions) != 1 {
		t.Fatalf("%d sessions, want 1", len(st.Sessions))
	}
	snap := st.Sessions[0]
	if snap.Replayed != int64(len(before)) || snap.WALSeq != int64(len(before)) || snap.WALBytes == 0 {
		t.Fatalf("session snapshot %+v: want replayed=walSeq=%d, walBytes>0", snap, len(before))
	}

	// The recovered session is not a museum piece: it keeps mutating, the WAL
	// keeps appending from the replayed seq, and the result matches an oracle
	// that never restarted.
	got, _, err := s2.Mutate(MutateRequest{Session: "d", Ops: after, Colors: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Totals.Mutations != int64(len(muts)) {
		t.Fatalf("cumulative mutations %d, want %d (seq continues across restart)", got.Totals.Mutations, len(muts))
	}
	oracle, err := dynamic.New(g, dynamic.Config{Engine: dist.Compiled})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if _, _, err := oracle.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != oracle.Fingerprint().String() {
		t.Fatal("post-recovery fingerprint diverged from the never-restarted oracle")
	}
	if !reflect.DeepEqual(got.Colors, oracle.Colors()) {
		t.Fatal("post-recovery coloring diverged from the never-restarted oracle")
	}
}

// TestWALHeaderSpecWins: recreating a durable session with a different base
// spec does not fork it — the log header is the truth about what the session
// is, and the request's spec is ignored.
func TestWALHeaderSpecWins(t *testing.T) {
	dir := t.TempDir()
	a := exp.GraphSpec{Family: "cycle", N: 20}
	s := New(walConfig(dir))
	if _, _, err := s.Mutate(MutateRequest{Session: "w", Base: &a, Ops: []exp.Mutation{{Op: exp.OpInsert, U: 0, V: 7}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := New(walConfig(dir))
	defer s2.Close()
	b := exp.GraphSpec{Family: "gnm", N: 64, M: 100, Seed: 1}
	resp, _, err := s2.Mutate(MutateRequest{Session: "w", Base: &b})
	if err != nil {
		t.Fatal(err)
	}
	if resp.N != 20 || resp.M != 21 {
		t.Fatalf("recovered session shape n=%d m=%d, want the logged cycle (20, 21)", resp.N, resp.M)
	}
	if got := s2.Stats().Sessions[0].Base; got != a.String() {
		t.Fatalf("session base %q, want the log header's %q", got, a.String())
	}
}

// TestSessionResurrectsAfterEviction: LRU eviction closes a durable session
// but keeps its log; touching the name again replays it back, state intact.
func TestSessionResurrectsAfterEviction(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	cfg.Sessions = 1
	s := New(cfg)
	defer s.Close()

	base := exp.GraphSpec{Family: "cycle", N: 12}
	first, _, err := s.Mutate(MutateRequest{Session: "a", Base: &base, Ops: []exp.Mutation{{Op: exp.OpInsert, U: 0, V: 5}, {Op: exp.OpInsert, U: 2, V: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	// A second session in a one-slot table evicts "a".
	if _, _, err := s.Mutate(MutateRequest{Session: "b", Base: &base}); err != nil {
		t.Fatal(err)
	}
	back, _, err := s.Mutate(MutateRequest{Session: "a", Colors: true})
	if err != nil {
		t.Fatalf("resurrect evicted session: %v", err)
	}
	if back.Fingerprint != first.Fingerprint {
		t.Fatalf("resurrected fingerprint %s, want %s", back.Fingerprint, first.Fingerprint)
	}
	if back.M != first.M {
		t.Fatalf("resurrected m=%d, want %d", back.M, first.M)
	}
}

// resumeHarness is one SSE connection with Last-Event-ID support.
func openStream(t *testing.T, url, session string, lastID int64) (*http.Response, *bufio.Reader, HelloEvent) {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/v1/subscribe?session="+session, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID >= 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("subscribe status %d, want 200", resp.StatusCode)
	}
	rd := bufio.NewReader(resp.Body)
	ev, err := readSSE(rd)
	if err != nil {
		t.Fatal(err)
	}
	if ev.event != "hello" {
		t.Fatalf("first event %q, want hello", ev.event)
	}
	var hello HelloEvent
	if err := json.Unmarshal(ev.data, &hello); err != nil {
		t.Fatal(err)
	}
	return resp, rd, hello
}

// readDeltas reads n delta frames and asserts consecutive seqs from first on.
func readDeltas(t *testing.T, rd *bufio.Reader, first int64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ev, err := readSSE(rd)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if ev.event != "delta" {
			t.Fatalf("delta %d: event %q", i, ev.event)
		}
		if want := first + int64(i); ev.id != want {
			t.Fatalf("delta %d: id %d, want %d (no gaps, no repeats)", i, ev.id, want)
		}
	}
}

// TestSubscribeResumeNoGaps is the reconnect contract: a client that
// disconnects, misses commits, and reconnects with Last-Event-ID receives
// hello{resumed:true} and then every missed delta exactly once, in order —
// no gaps, no repeats.
func TestSubscribeResumeNoGaps(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	base := exp.GraphSpec{Family: "cycle", N: 16}
	if _, _, err := s.Mutate(MutateRequest{Session: "r", Base: &base}); err != nil {
		t.Fatal(err)
	}
	resp, rd, hello := openStream(t, srv.URL, "r", -1)
	if hello.Seq != 0 || hello.Resumed || hello.Missed != 0 {
		t.Fatalf("fresh hello %+v", hello)
	}
	mutate := func(u, v int) {
		t.Helper()
		if _, _, err := s.Mutate(MutateRequest{Session: "r", Ops: []exp.Mutation{{Op: exp.OpInsert, U: u, V: v}}}); err != nil {
			t.Fatal(err)
		}
	}
	mutate(0, 5)
	mutate(1, 6)
	mutate(2, 7)
	readDeltas(t, rd, 1, 3)
	resp.Body.Close() // the client drops mid-stream

	// Commits keep landing while the client is away.
	mutate(3, 8)
	mutate(4, 9)

	resp2, rd2, hello2 := openStream(t, srv.URL, "r", 3)
	defer resp2.Body.Close()
	if !hello2.Resumed || hello2.Missed != 0 || hello2.Seq != 3 {
		t.Fatalf("resume hello %+v, want resumed from seq 3 with nothing missed", hello2)
	}
	// The away-time commits replay first, then live ones follow seamlessly.
	readDeltas(t, rd2, 4, 2)
	mutate(5, 10)
	readDeltas(t, rd2, 6, 1)
}

// TestSubscribeResumeRotated: when the requested position has fallen out of
// the feed ring, hello reports the irrecoverable gap (resumed:false, missed
// counting exactly the rotated-out commits) and the stream continues from the
// oldest retained delta.
func TestSubscribeResumeRotated(t *testing.T) {
	cfg := testConfig()
	cfg.FeedBuffer = 4
	s := New(cfg)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	base := exp.GraphSpec{Family: "cycle", N: 32}
	if _, _, err := s.Mutate(MutateRequest{Session: "r", Base: &base}); err != nil {
		t.Fatal(err)
	}
	// First subscriber primes the feed (feeds exist from first subscribe),
	// then leaves; the feed persists as the resume window.
	resp, _, _ := openStream(t, srv.URL, "r", -1)
	resp.Body.Close()

	var ops []exp.Mutation
	for i := 0; i < 10; i++ {
		ops = append(ops, exp.Mutation{Op: exp.OpInsert, U: i, V: i + 12})
	}
	if _, _, err := s.Mutate(MutateRequest{Session: "r", Ops: ops}); err != nil {
		t.Fatal(err)
	}

	// The ring holds seqs 7..10; a client resuming from 1 lost 2..6.
	resp2, rd2, hello := openStream(t, srv.URL, "r", 1)
	defer resp2.Body.Close()
	if hello.Resumed {
		t.Fatalf("hello %+v: claims an exact resume across a rotated ring", hello)
	}
	if hello.Seq != 6 || hello.Missed != 5 {
		t.Fatalf("hello seq %d missed %d, want 6 / 5 (ring retains 7..10)", hello.Seq, hello.Missed)
	}
	readDeltas(t, rd2, 7, 4)
}

// TestSubscribeResumeAfterRestart: the feed ring dies with the process, but
// the session's seq continues from the WAL replay — so a reconnect across a
// restart still gets exact gap arithmetic (missed = seq - lastID) instead of
// a lie or a reset-to-zero stream.
func TestSubscribeResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	base := exp.GraphSpec{Family: "cycle", N: 16}
	s := New(walConfig(dir))
	var ops []exp.Mutation
	for i := 0; i < 5; i++ {
		ops = append(ops, exp.Mutation{Op: exp.OpInsert, U: i, V: i + 6})
	}
	if _, _, err := s.Mutate(MutateRequest{Session: "r", Base: &base, Ops: ops}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := New(walConfig(dir))
	defer s2.Close()
	srv := httptest.NewServer(s2.Handler())
	defer srv.Close()
	// Touch the session so it replays (subscribe alone does not create).
	if _, _, err := s2.Mutate(MutateRequest{Session: "r"}); err != nil {
		t.Fatal(err)
	}

	resp, rd, hello := openStream(t, srv.URL, "r", 2)
	defer resp.Body.Close()
	if hello.Resumed {
		t.Fatalf("hello %+v: claims resume but the ring did not survive the restart", hello)
	}
	if hello.Seq != 5 || hello.Missed != 3 {
		t.Fatalf("hello seq %d missed %d, want 5 / 3 (client saw 2 of 5 pre-restart commits)", hello.Seq, hello.Missed)
	}
	// Deltas continue from the replayed seq: the next commit is 6.
	if _, _, err := s2.Mutate(MutateRequest{Session: "r", Ops: []exp.Mutation{{Op: exp.OpInsert, U: 0, V: 8}}}); err != nil {
		t.Fatal(err)
	}
	readDeltas(t, rd, 6, 1)

	// A client claiming a future seq is from a different incarnation: not
	// resumable, and not reported as such.
	resp2, _, hello2 := openStream(t, srv.URL, "r", 99)
	resp2.Body.Close()
	if hello2.Resumed || hello2.Missed != 0 {
		t.Fatalf("future-seq hello %+v, want neither resumed nor missed", hello2)
	}
}
