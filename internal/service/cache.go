package service

import (
	"encoding/json"
	"sync"
)

// resultCache is the bounded, lock-striped LRU from cache key to cacheValue.
// Determinism makes it trivially coherent: a key has exactly one possible
// value, so there are no invalidation or versioning concerns — eviction is
// purely a capacity matter, and concurrent fills of one key converge
// (first-wins) on a single shared entry.
type resultCache struct {
	lru *shardedLRU[*cacheValue]
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{lru: newShardedLRU[*cacheValue](capacity, 0)}
}

// newResultCacheShards pins the shard count — tests use it to prove hit/miss
// behavior is shard-layout independent.
func newResultCacheShards(capacity, shards int) *resultCache {
	return &resultCache{lru: newShardedLRU[*cacheValue](capacity, shards)}
}

func (c *resultCache) get(key string) (*cacheValue, bool) { return c.lru.get(key) }

func (c *resultCache) getHash(key string, h uint64) (*cacheValue, bool) {
	return c.lru.getHash(key, h)
}

// put stores v, accounting the wire record's size, and returns the canonical
// entry for the key (v itself, or the earlier value it lost the fill race to).
func (c *resultCache) put(key string, v *cacheValue) *cacheValue {
	return c.putHash(key, cacheHashString(key), v)
}

func (c *resultCache) putHash(key string, h uint64, v *cacheValue) *cacheValue {
	return c.lru.putHash(key, h, v, len(v.rec))
}

func (c *resultCache) snapshot() CacheStats { return c.lru.snapshot() }

// cacheValue is one result-cache entry: the wire-encoded record (the source
// of truth the in-process API decodes) plus fully rendered HTTP response
// bodies, memoized per requesting graph name. The record is key-determined
// and shared; the rendered body also echoes the request's own spec string,
// and distinct specs can build fingerprint-identical graphs (Path(6) and
// Grid(6,1), say), so bodies memoize per name. Rendering happens at most
// once per (key, name): every later hit is a map lookup returning the same
// byte slice, with no JSON work at all.
type cacheValue struct {
	key string
	rec []byte

	mu     sync.RWMutex
	bodies map[string][]byte
}

// maxBodiesPerValue caps the per-entry rendered-body memo. Aliased specs are
// rare (they require fingerprint-identical graphs under different names);
// past the cap, bodies render per request without being retained.
const maxBodiesPerValue = 8

func newCacheValue(key string, rec []byte) *cacheValue {
	return &cacheValue{key: key, rec: rec}
}

// bodyFor returns the rendered JSON response body of this record for a
// request naming graphName — exactly the bytes json.Encoder would write for
// the decoded record's Response (marshal plus trailing newline), so cached
// bodies are byte-identical to freshly encoded ones by construction.
func (v *cacheValue) bodyFor(graphName string) ([]byte, error) {
	v.mu.RLock()
	b := v.bodies[graphName]
	v.mu.RUnlock()
	if b != nil {
		return b, nil
	}
	rec, err := decodeRecord(v.rec)
	if err != nil {
		return nil, err
	}
	j, err := json.Marshal(rec.response(v.key, graphName))
	if err != nil {
		return nil, err
	}
	j = append(j, '\n')
	v.mu.Lock()
	if cur := v.bodies[graphName]; cur != nil {
		j = cur // a concurrent render won; share its bytes
	} else if len(v.bodies) < maxBodiesPerValue {
		if v.bodies == nil {
			v.bodies = make(map[string][]byte, 1)
		}
		v.bodies[graphName] = j
	}
	v.mu.Unlock()
	return j, nil
}
