package service

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of the result cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// resultCache is a bounded LRU map from cache key to wire-encoded response
// record. Determinism makes it trivially coherent: a key has exactly one
// possible value, so there are no invalidation or versioning concerns —
// eviction is purely a capacity matter.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	stats   CacheStats
}

type cacheEntry struct {
	key string
	val []byte
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached record bytes for key, if present. The returned
// slice is shared and must be treated as read-only.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*cacheEntry).val, true
}

// put stores the record bytes under key, evicting the least recently used
// entries over capacity. Storing an existing key is a no-op: determinism
// guarantees the value is identical.
func (c *resultCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	c.stats.Bytes += int64(len(val))
	for c.order.Len() > c.cap {
		el := c.order.Back()
		ent := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, ent.key)
		c.stats.Bytes -= int64(len(ent.val))
		c.stats.Evictions++
	}
}

func (c *resultCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	return s
}
