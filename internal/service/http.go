package service

import (
	"encoding/json"
	"net/http"
)

// Handler returns colord's HTTP API:
//
//	POST /v1/color  — body: a Request (JSON); response: a Response (JSON).
//	                  X-Colord-Cache reports hit|coalesced|miss; the body is
//	                  byte-identical regardless.
//	POST /v1/mutate — body: a MutateRequest (JSON); response: a
//	                  MutateResponse (JSON). Mutations apply local repairs;
//	                  pure coloring reads serve through the result cache
//	                  keyed by the session's evolving fingerprint.
//	GET  /healthz   — liveness probe.
//	GET  /statz     — ServiceStats snapshot (JSON).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/color", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		// Valid requests are a few hundred bytes; refuse streamed novels.
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		resp, outcome, err := s.Handle(req)
		if err != nil {
			status := http.StatusUnprocessableEntity
			if err == ErrClosed {
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Colord-Cache", string(outcome))
		w.Header().Set("X-Colord-Key", resp.Key)
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/mutate", func(w http.ResponseWriter, r *http.Request) {
		var req MutateRequest
		// Mutation batches are bounded by the op list; 1 MiB admits ~50k
		// ops per request, far past the useful batch size.
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		resp, outcome, err := s.Mutate(req)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Colord-Cache", string(outcome))
		w.Header().Set("X-Colord-Fingerprint", resp.Fingerprint)
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Stats())
	})
	return mux
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
