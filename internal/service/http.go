package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// bodyPool recycles request-read buffers so the color path allocates no
// scratch per request. Valid requests are a few hundred bytes; 4 KiB covers
// them without a grow, and grown buffers are recycled at their new size.
var bodyPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// readBody reads r to EOF into buf (io.ReadAll with a caller-owned buffer).
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	b := buf[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}

// Handler returns colord's HTTP API:
//
//	POST /v1/color  — body: a Request (JSON); response: a Response (JSON).
//	                  X-Colord-Cache reports hit|coalesced|miss; the body is
//	                  byte-identical regardless. With ?detail=1 the response
//	                  is the DetailResponse envelope instead (resolved alg,
//	                  quality tier, paletteBound, colorsUsed) — additive and
//	                  separately versioned; the default body never changes
//	                  shape.
//	POST /v1/mutate — body: a MutateRequest (JSON); response: a
//	                  MutateResponse (JSON). Mutations apply local repairs;
//	                  pure coloring reads serve through the result cache
//	                  keyed by the session's evolving fingerprint. ?detail=1
//	                  adds the palette-observability fields to the response.
//	GET  /v1/subscribe?session=NAME
//	                — an SSE stream of the named session's recolor deltas
//	                  (see subscribe.go for the event contract).
//	GET  /healthz   — liveness probe.
//	GET  /statz     — ServiceStats snapshot (JSON).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/color", func(w http.ResponseWriter, r *http.Request) {
		// Valid requests are a few hundred bytes; refuse streamed novels.
		bp := bodyPool.Get().(*[]byte)
		body, err := readBody(http.MaxBytesReader(w, r.Body, 1<<16), *bp)
		*bp = body[:0]
		if err != nil {
			bodyPool.Put(bp)
			s.counters.stripe(0).badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		// The raw-query check is one string compare on the hot path; only
		// requests that actually carry a query string pay the parse.
		if r.URL.RawQuery != "" && r.URL.Query().Get("detail") == "1" {
			s.serveColorDetail(w, body)
			bodyPool.Put(bp)
			return
		}
		resp, key, outcome, err := s.HandleRaw(body)
		bodyPool.Put(bp)
		if err != nil {
			var bad *badRequestError
			status := http.StatusUnprocessableEntity
			if errors.As(err, &bad) {
				status = http.StatusBadRequest
			} else if err == ErrClosed {
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, err.Error())
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-Colord-Cache", string(outcome))
		h.Set("X-Colord-Key", key)
		// Explicit Content-Length: the body is prerendered, so nothing needs
		// chunked framing (and simple raw-socket clients can rely on it).
		h.Set("Content-Length", strconv.Itoa(len(resp)))
		w.Write(resp)
	})
	mux.HandleFunc("POST /v1/mutate", func(w http.ResponseWriter, r *http.Request) {
		var req MutateRequest
		// Mutation batches are bounded by the op list; 1 MiB admits ~50k
		// ops per request, far past the useful batch size.
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.counters.stripe(0).badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		detail := r.URL.RawQuery != "" && r.URL.Query().Get("detail") == "1"
		resp, outcome, err := s.mutate(req, detail)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Colord-Cache", string(outcome))
		w.Header().Set("X-Colord-Fingerprint", resp.Fingerprint)
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /v1/subscribe", s.serveSubscribe)
	// The peer-fill plane: a cluster peer that misses on a key asks its
	// rendezvous owner for the encoded cache record before computing
	// locally. Strictly a cache peek — a miss is a plain 404 and never
	// triggers work, so peers cannot amplify load on each other.
	mux.HandleFunc("GET /internal/record", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			httpError(w, http.StatusBadRequest, "record lookup needs a ?key= query parameter")
			return
		}
		rec, ok := s.CachedRecord(key)
		if !ok {
			httpError(w, http.StatusNotFound, "key not cached here")
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Content-Length", strconv.Itoa(len(rec)))
		w.Write(rec)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Stats())
	})
	return mux
}

// serveColorDetail is the ?detail=1 lane of /v1/color: a full decode and a
// JSON render per request (no fast path, no prerendered bytes) in exchange
// for the palette-observability envelope. The computation underneath shares
// the result cache with the plain lane.
func (s *Service) serveColorDetail(w http.ResponseWriter, body []byte) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.counters.stripe(0).badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	resp, outcome, err := s.HandleDetail(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if err == ErrClosed {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err.Error())
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Colord-Cache", string(outcome))
	h.Set("X-Colord-Key", resp.Key)
	writeJSON(w, resp)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
