package service

import (
	"sync/atomic"

	"repro/internal/algreg"
)

// The wire fast path.
//
// At a 99.9% hit rate, the serving cost of a request is not the coloring —
// it is the JSON decode, the canonicalization, the sha256 key, and the JSON
// encode wrapped around a map lookup. Determinism collapses all of it: the
// response body is a pure function of the request's JSON bytes, so the bytes
// themselves are a valid cache key. fastCache maps exact raw request bodies
// to prerendered response bodies; a fast-lane hit is one hash, one striped
// map lookup, and a Write — zero allocations, no JSON in either direction,
// no global lock.
//
// The fast cache sits strictly in front of the canonical result cache and
// is filled only from it (after a full decode/validate/render on the slow
// lane), so every spelling of a request — field order, whitespace, engine
// hints — serves the same canonical bytes it would get from the slow lane.
// Entries never go stale: /v1/color results are immutable (mutable-session
// reads do not use the fast lane), so eviction is purely a memory bound.
type fastCache struct {
	lru *shardedLRU[fastEntry]
}

// fastEntry is one prerendered response: the body shares its allocation
// with the result cache's memoized render, and key feeds the X-Colord-Key
// header without re-deriving it.
type fastEntry struct {
	body []byte
	key  string
}

func newFastCache(capacity int) *fastCache {
	return &fastCache{lru: newShardedLRU[fastEntry](capacity, 0)}
}

// getHash looks raw request bytes up with their precomputed cacheHash;
// allocation-free on hit and miss.
func (c *fastCache) getHash(body []byte, h uint64) (fastEntry, bool) {
	return c.lru.getBytesHash(body, h)
}

// putHash stores the rendered response for raw request bytes. The string
// conversion copies the request bytes exactly once, at fill time — the hit
// path never copies. Accounted size covers both the key copy and the body.
func (c *fastCache) putHash(body []byte, h uint64, e fastEntry) {
	c.lru.putHash(string(body), h, e, len(body)+len(e.body))
}

func (c *fastCache) snapshot() CacheStats { return c.lru.snapshot() }

// counterStripes must be a power of two; 8 stripes is plenty to keep
// request-plane counter updates from serializing on one cache line at any
// core count this service meets.
const counterStripes = 8

// counterStripe is one cache-line-padded slice of the request-plane
// counters. Within a request, requests is always incremented before the
// outcome counter, so per-stripe sums never show outcomes without their
// requests. badRequests counts bodies that never parsed — deliberately
// outside the requests/outcome arithmetic (a body that never parsed never
// became a request), which keeps /statz able to see a garbage-spraying
// client without perturbing the requests ≥ outcomes invariant. The
// subscribes/delivered/dropped trio is the streaming-feed plane, striped by
// session name; replayed/walAppends/walErrors/filled are the
// durability-and-cluster plane (WAL records replayed into recovered
// sessions, per-commit log appends and failures, cache misses satisfied by
// a peer).
type counterStripe struct {
	requests    atomic.Int64
	hits        atomic.Int64
	coalesced   atomic.Int64
	runs        atomic.Int64
	errors      atomic.Int64
	mutations   atomic.Int64
	badRequests atomic.Int64
	subscribes  atomic.Int64
	delivered   atomic.Int64
	dropped     atomic.Int64
	replayed    atomic.Int64
	walAppends  atomic.Int64
	walErrors   atomic.Int64
	filled      atomic.Int64
	// algRequests counts requests per servable algorithm, indexed by the
	// registry's ServeIndex — the per-alg half of /statz, on the same
	// striped plane as the outcome counters.
	algRequests [algreg.MaxServable]atomic.Int64
	_           [192 - 14*8 - algreg.MaxServable*8]byte
}

// serviceCounters stripes the per-request counters across padded cache
// lines, picked by the request's key hash. Snapshots sum the stripes, each
// counter read once — a coherent local snapshot, monotone under load.
type serviceCounters struct {
	stripes [counterStripes]counterStripe
}

func (c *serviceCounters) stripe(h uint64) *counterStripe {
	return &c.stripes[h&(counterStripes-1)]
}

// counterTotals is the summed snapshot of the striped counters.
type counterTotals struct {
	requests, hits, coalesced, runs, errors, mutations int64
	badRequests, subscribes, delivered, dropped        int64
	replayed, walAppends, walErrors, filled            int64
	algRequests                                        [algreg.MaxServable]int64
}

func (c *serviceCounters) totals() counterTotals {
	var t counterTotals
	for i := range c.stripes {
		s := &c.stripes[i]
		// Outcomes first, requests last — the mirror image of the write
		// order (requests before outcome). Any outcome visible in the
		// snapshot then implies its request is too, so snapshots never show
		// hits+coalesced+runs exceeding requests. The per-alg counts are
		// outcomes in this sense too: written after requests, read before.
		for j := range s.algRequests {
			t.algRequests[j] += s.algRequests[j].Load()
		}
		t.hits += s.hits.Load()
		t.coalesced += s.coalesced.Load()
		t.runs += s.runs.Load()
		t.errors += s.errors.Load()
		t.mutations += s.mutations.Load()
		t.badRequests += s.badRequests.Load()
		t.subscribes += s.subscribes.Load()
		t.delivered += s.delivered.Load()
		t.dropped += s.dropped.Load()
		t.replayed += s.replayed.Load()
		t.walAppends += s.walAppends.Load()
		t.walErrors += s.walErrors.Load()
		t.filled += s.filled.Load()
		t.requests += s.requests.Load()
	}
	return t
}
