package service

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardedCacheLayoutIndependence pins the determinism property of the
// striped LRU: hit/miss behavior for a working set within capacity is a
// function of the keys alone, not of the shard layout. The same key sequence
// against 1, 2, 8, and 64 shards must produce identical lookup results.
func TestShardedCacheLayoutIndependence(t *testing.T) {
	keys := make([]string, 48)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	for _, shards := range []int{1, 2, 8, 64} {
		// Capacity ≥ shards × len(keys) guarantees no shard can evict even
		// if every key landed in one shard: presence is then layout-free.
		c := newResultCacheShards(shards*len(keys), shards)
		for i, k := range keys {
			if _, ok := c.get(k); ok {
				t.Fatalf("shards=%d: %q present before put", shards, k)
			}
			c.put(k, newCacheValue(k, []byte(k)))
			if i%2 == 0 { // interleave repeat lookups with fills
				for _, earlier := range keys[:i+1] {
					v, ok := c.get(earlier)
					if !ok {
						t.Fatalf("shards=%d: %q missing after put", shards, earlier)
					}
					if string(v.rec) != earlier {
						t.Fatalf("shards=%d: %q returned wrong value %q", shards, earlier, v.rec)
					}
				}
			}
		}
		st := c.snapshot()
		if st.Entries != len(keys) {
			t.Fatalf("shards=%d: %d entries, want %d", shards, st.Entries, len(keys))
		}
		if st.Shards != shards {
			t.Fatalf("shards=%d: snapshot reports %d shards", shards, st.Shards)
		}
		if st.Misses != int64(len(keys)) {
			t.Fatalf("shards=%d: %d misses, want %d (one per first lookup)", shards, st.Misses, len(keys))
		}
	}
}

// TestShardedCacheFirstWins pins the fill-race contract: a second put of an
// existing key keeps and returns the first value, so concurrent fillers of
// one key converge on a single shared entry.
func TestShardedCacheFirstWins(t *testing.T) {
	c := newResultCache(8)
	a := newCacheValue("k", []byte("first"))
	b := newCacheValue("k", []byte("second"))
	if got := c.put("k", a); got != a {
		t.Fatal("first put must return its own value")
	}
	if got := c.put("k", b); got != a {
		t.Fatal("second put must return the first value (first-wins)")
	}
	if v, _ := c.get("k"); v != a {
		t.Fatal("lookup must return the first value")
	}
	if st := c.snapshot(); st.Bytes != int64(len("first")) {
		t.Fatalf("losing put must not be accounted: bytes %d", st.Bytes)
	}
}

// TestShardedCacheConcurrentEviction churns a small sharded cache from many
// goroutines (distinct key streams, shared hot keys, snapshots in flight)
// and then checks the accounting invariants: entries within capacity, bytes
// matching the surviving entries exactly, evictions consistent with the
// number of puts. Run under -race this is also the striping race test.
func TestShardedCacheConcurrentEviction(t *testing.T) {
	const capacity, shards = 64, 4
	lru := newShardedLRU[int](capacity, shards)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 400
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if i%5 == 0 {
					key = fmt.Sprintf("hot-%d", i%7) // contended cross-writer keys
				}
				lru.put(key, i, len(key))
				lru.get(key)
				if i%97 == 0 {
					lru.snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	st := lru.snapshot()
	if st.Entries == 0 || st.Entries > capacity {
		t.Fatalf("entries %d out of bounds (cap %d)", st.Entries, capacity)
	}
	// The per-shard LRU bound: no shard may exceed its capacity slice.
	per := (capacity + shards - 1) / shards
	for i := range lru.shards {
		sh := &lru.shards[i]
		sh.mu.Lock()
		n := sh.order.Len()
		sh.mu.Unlock()
		if n > per {
			t.Fatalf("shard %d holds %d entries, per-shard cap %d", i, n, per)
		}
	}
	// Quiescent bytes must equal the sum over surviving entries.
	var want int64
	for i := range lru.shards {
		sh := &lru.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			want += int64(el.Value.(*lruEntry[int]).size)
		}
		sh.mu.Unlock()
	}
	if st.Bytes != want {
		t.Fatalf("accounted bytes %d, surviving entries sum to %d", st.Bytes, want)
	}
}

// TestShardedCacheSnapshotMatchesShards pins the aggregation contract:
// snapshot() totals equal the sum of the per-shard counters and sizes.
func TestShardedCacheSnapshotMatchesShards(t *testing.T) {
	lru := newShardedLRU[string](32, 8)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%02d", i%40)
		lru.get(k)
		lru.put(k, k, len(k))
	}
	got := lru.snapshot()
	var want CacheStats
	want.Shards = len(lru.shards)
	for i := range lru.shards {
		sh := &lru.shards[i]
		sh.mu.Lock()
		want.Entries += sh.order.Len()
		sh.mu.Unlock()
		want.Hits += sh.hits.Load()
		want.Misses += sh.misses.Load()
		want.Evictions += sh.evictions.Load()
		want.Bytes += sh.bytes.Load()
	}
	if got != want {
		t.Fatalf("snapshot %+v, sum of shards %+v", got, want)
	}
	if got.Hits == 0 || got.Misses == 0 {
		t.Fatalf("test exercised no hits or no misses: %+v", got)
	}
}

// TestShardsFor pins the adaptive shard sizing: power-of-two counts, single
// shard (strict global LRU) for small caches, capped striping for large.
func TestShardsFor(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1}, {2, 1}, {63, 1}, {64, 2}, {128, 4}, {4096, 64}, {1 << 20, 64},
	}
	for _, c := range cases {
		if got := shardsFor(c.capacity); got != c.want {
			t.Errorf("shardsFor(%d) = %d, want %d", c.capacity, got, c.want)
		}
	}
}
