package service

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/graph"
	"repro/internal/panconesi"
)

// resolve validates a request against its built graph and returns the
// canonical form: defaults filled, cache key derived, and a runner closure
// bound to the entry's pools. All parameter validation happens here, before
// the request is queued — exec-time failures are limited to genuine runtime
// errors (vertex panics, round caps).
func (s *Service) resolve(req Request) (*canonReq, error) {
	switch req.Kind {
	case "edge", "vertex":
	default:
		return nil, fmt.Errorf("service: unknown kind %q (want edge or vertex)", req.Kind)
	}
	engine := s.cfg.Engine
	if req.Engine != "" {
		var err error
		if engine, err = dist.ParseEngine(req.Engine); err != nil {
			return nil, err
		}
	}
	entry, err := s.graphs.get(req.Graph)
	if err != nil {
		return nil, err
	}
	g := entry.g

	if req.B == 0 {
		req.B = 2
	}
	if req.C == 0 {
		req.C = 2
	}
	if req.Mode == "" {
		req.Mode = "wide"
	}
	if req.B < 2 || req.C < 1 || req.P < 0 {
		return nil, fmt.Errorf("service: invalid plan parameters b=%d p=%d c=%d", req.B, req.P, req.C)
	}

	c := &canonReq{
		entry: entry,
		opts: []dist.Option{
			dist.WithSeed(req.Seed),
			dist.WithEngine(engine),
			dist.WithShards(req.Shards),
		},
	}

	delta := g.MaxDegree()
	if req.Kind == "edge" {
		req.C = 0 // edge algorithms work on c = 2 by construction (Lemma 5.1)
	}
	switch {
	case req.Kind == "edge" && req.Alg == "be":
		if req.P == 0 {
			req.P = 6
		}
		if req.Mode != "wide" && req.Mode != "short" {
			return nil, fmt.Errorf("service: unknown mode %q (want wide or short)", req.Mode)
		}
		mode := edgecolor.Wide
		if req.Mode == "short" {
			mode = edgecolor.Short
		}
		if g.M() == 0 {
			c.runner = emptyEdges
			break
		}
		pl, err := core.AutoPlan(delta, 2, req.B, req.P, true)
		if err != nil {
			return nil, err
		}
		algo, err := edgecolor.LegalEdgeProcess(delta, pl, mode)
		if err != nil {
			return nil, err
		}
		c.runner = edgeRunner(interpreted(algo), pl.TotalPalette())
	case req.Kind == "edge" && req.Alg == "pr":
		req.Mode, req.P, req.B = "", 0, 0 // unused: keep the key canonical
		if g.M() == 0 {
			c.runner = emptyEdges
			break
		}
		c.runner = edgeRunner(interpreted(func(v dist.Process) []int {
			return panconesi.EdgeColorStep(v, nil, delta)
		}), 2*delta-1)
	case req.Kind == "edge" && req.Alg == "greedy":
		req.Mode, req.P, req.B = "", 0, 0
		if g.M() == 0 {
			c.runner = emptyEdges
			break
		}
		c.runner = edgeRunner(baseline.GreedyEdgeAlgo(), 2*delta-1)
	case req.Kind == "vertex" && req.Alg == "be":
		if req.P == 0 {
			req.P = 4*req.C + 1
		}
		req.Mode = ""
		if delta == 0 {
			c.runner = isolatedVertices
			break
		}
		pl, err := core.AutoPlan(delta, req.C, req.B, req.P, false)
		if err != nil {
			return nil, err
		}
		algo, err := core.LegalColorProcess(g.N(), delta, pl, core.StartIDs)
		if err != nil {
			return nil, err
		}
		c.runner = vertexRunner(interpreted(algo), pl.TotalPalette())
	case req.Kind == "vertex" && req.Alg == "greedy":
		req.Mode, req.P, req.B, req.C = "", 0, 0, 0
		c.runner = vertexRunner(baseline.GreedyVertexAlgo(), delta+1)
	default:
		return nil, fmt.Errorf("service: unknown algorithm %q for kind %q", req.Alg, req.Kind)
	}

	c.req = req
	c.key, c.hash = entry.cachedKey(algKey{
		kind: req.Kind, alg: req.Alg, mode: req.Mode,
		b: req.B, p: req.P, c: req.C, seed: req.Seed,
	}, &req)
	return c, nil
}

// baseRecord fills the graph-shaped half of a record.
func (c *canonReq) baseRecord(palette int) *record {
	g := c.entry.g
	return &record{
		kind:    c.req.Kind,
		alg:     c.req.Alg,
		n:       g.N(),
		m:       g.M(),
		delta:   g.MaxDegree(),
		palette: palette,
	}
}

// interpreted bundles a vertex function with its CompileProcess form, so the
// algorithm runs under every engine — including Compiled, where the generic
// flat-array interpreter executes it without per-vertex goroutines.
func interpreted[T any](vertex func(dist.Process) T) dist.Algo[T] {
	return dist.Algo[T]{Vertex: vertex, Compiled: dist.CompileProcess(vertex)}
}

// edgeRunner executes an edge algorithm (per-vertex port colorings) on the
// entry's []int pool, merges the two endpoint views, and legality-checks the
// result before it can reach the cache.
func edgeRunner(algo dist.Algo[[]int], palette int) func(*canonReq) (*record, error) {
	return func(c *canonReq) (*record, error) {
		res, err := c.entry.slices().RunAlgo(algo, c.opts...)
		if err != nil {
			return nil, err
		}
		g := c.entry.g
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckEdgeColoring(g, colors); err != nil {
			return nil, fmt.Errorf("service: %s/%s produced an illegal coloring: %w", c.req.Kind, c.req.Alg, err)
		}
		rec := c.baseRecord(palette)
		rec.colors = colors
		rec.stats = res.Stats
		return rec, nil
	}
}

// vertexRunner is edgeRunner's vertex-coloring counterpart on the int pool.
func vertexRunner(algo dist.Algo[int], palette int) func(*canonReq) (*record, error) {
	return func(c *canonReq) (*record, error) {
		res, err := c.entry.ints().RunAlgo(algo, c.opts...)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckVertexColoring(c.entry.g, res.Outputs); err != nil {
			return nil, fmt.Errorf("service: %s/%s produced an illegal coloring: %w", c.req.Kind, c.req.Alg, err)
		}
		rec := c.baseRecord(palette)
		rec.colors = res.Outputs
		rec.stats = res.Stats
		return rec, nil
	}
}

// emptyEdges answers edge requests on edgeless graphs without a run: there
// is nothing to color and no run to account.
func emptyEdges(c *canonReq) (*record, error) {
	rec := c.baseRecord(0)
	rec.colors = []int{}
	return rec, nil
}

// isolatedVertices answers vertex "be" requests on edgeless graphs with the
// 1-coloring, still executed as a real (zero-round) run so the accounting
// pipeline stays uniform.
func isolatedVertices(c *canonReq) (*record, error) {
	res, err := c.entry.ints().RunAlgo(interpreted(func(v dist.Process) int { return 1 }), c.opts...)
	if err != nil {
		return nil, err
	}
	palette := 0
	if c.entry.g.N() > 0 {
		palette = 1
	}
	rec := c.baseRecord(palette)
	rec.colors = res.Outputs
	rec.stats = res.Stats
	return rec, nil
}
