package service

import (
	"fmt"

	"repro/internal/algreg"
	"repro/internal/dist"
	"repro/internal/graph"
)

// resolve validates a request against its built graph and returns the
// canonical form: algorithm resolved through the registry (including the
// quality knob), defaults filled, cache key derived, and a runner closure
// bound to the entry's pools. All parameter validation happens here, before
// the request is queued — exec-time failures are limited to genuine runtime
// errors (vertex panics, round caps).
func (s *Service) resolve(req Request) (*canonReq, error) {
	switch req.Kind {
	case "edge", "vertex":
	default:
		return nil, fmt.Errorf("service: unknown kind %q (want edge or vertex)", req.Kind)
	}
	alg, err := algreg.Resolve(req.Kind, req.Alg, req.Quality)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	req.Alg = alg.Name
	engine := s.cfg.Engine
	if req.Engine != "" {
		var err error
		if engine, err = dist.ParseEngine(req.Engine); err != nil {
			return nil, err
		}
	}
	entry, err := s.graphs.get(req.Graph)
	if err != nil {
		return nil, err
	}
	g := entry.g

	// Shared parameter canonicalization, then the algorithm's own: the two
	// stages together determine the canonical cache key.
	params := algreg.Params{B: req.B, P: req.P, C: req.C, Mode: req.Mode, Seed: req.Seed}
	if params.B == 0 {
		params.B = 2
	}
	if params.C == 0 {
		params.C = 2
	}
	if params.Mode == "" {
		params.Mode = "wide"
	}
	if params.B < 2 || params.C < 1 || params.P < 0 {
		return nil, fmt.Errorf("service: invalid plan parameters b=%d p=%d c=%d", params.B, params.P, params.C)
	}
	if req.Kind == "edge" {
		params.C = 0 // edge algorithms work on c = 2 by construction (Lemma 5.1)
	}
	if err := alg.Canon(&params); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	req.B, req.P, req.C, req.Mode = params.B, params.P, params.C, params.Mode

	c := &canonReq{
		alg:   alg,
		entry: entry,
		opts: []dist.Option{
			dist.WithSeed(req.Seed),
			dist.WithEngine(engine),
			dist.WithShards(req.Shards),
		},
	}
	if req.Kind == "edge" {
		if g.M() == 0 {
			c.runner = emptyEdges
		} else {
			algo, palette, err := alg.BuildEdge(g, params)
			if err != nil {
				return nil, err
			}
			c.runner = edgeRunner(algo, palette)
		}
	} else {
		algo, palette, err := alg.BuildVertex(g, params)
		if err != nil {
			return nil, err
		}
		c.runner = vertexRunner(algo, palette)
	}

	c.req = req
	c.key, c.hash = entry.cachedKey(algKey{
		kind: req.Kind, alg: req.Alg, mode: req.Mode,
		b: req.B, p: req.P, c: req.C, seed: req.Seed,
	}, &req)
	return c, nil
}

// baseRecord fills the graph-shaped half of a record.
func (c *canonReq) baseRecord(palette int) *record {
	g := c.entry.g
	return &record{
		kind:    c.req.Kind,
		alg:     c.req.Alg,
		quality: c.alg.Quality,
		n:       g.N(),
		m:       g.M(),
		delta:   g.MaxDegree(),
		palette: palette,
	}
}

// edgeRunner executes an edge algorithm (per-vertex port colorings) on the
// entry's []int pool, merges the two endpoint views, and legality-checks the
// result before it can reach the cache.
func edgeRunner(algo dist.Algo[[]int], palette int) func(*canonReq) (*record, error) {
	return func(c *canonReq) (*record, error) {
		res, err := c.entry.slices().RunAlgo(algo, c.opts...)
		if err != nil {
			return nil, err
		}
		g := c.entry.g
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckEdgeColoring(g, colors); err != nil {
			return nil, fmt.Errorf("service: %s/%s produced an illegal coloring: %w", c.req.Kind, c.req.Alg, err)
		}
		rec := c.baseRecord(palette)
		rec.colors = colors
		rec.colorsUsed = graph.CountColors(colors)
		rec.stats = res.Stats
		return rec, nil
	}
}

// vertexRunner is edgeRunner's vertex-coloring counterpart on the int pool.
func vertexRunner(algo dist.Algo[int], palette int) func(*canonReq) (*record, error) {
	return func(c *canonReq) (*record, error) {
		res, err := c.entry.ints().RunAlgo(algo, c.opts...)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckVertexColoring(c.entry.g, res.Outputs); err != nil {
			return nil, fmt.Errorf("service: %s/%s produced an illegal coloring: %w", c.req.Kind, c.req.Alg, err)
		}
		rec := c.baseRecord(palette)
		rec.colors = res.Outputs
		rec.colorsUsed = graph.CountColors(res.Outputs)
		rec.stats = res.Stats
		return rec, nil
	}
}

// emptyEdges answers edge requests on edgeless graphs without a run: there
// is nothing to color and no run to account.
func emptyEdges(c *canonReq) (*record, error) {
	rec := c.baseRecord(0)
	rec.colors = []int{}
	return rec, nil
}
