package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    int64
	event string
	data  []byte
}

// readSSE parses the next SSE frame off the stream (lines until a blank
// terminator). Returns io.EOF cleanly when the stream ends first.
func readSSE(r *bufio.Reader) (sseEvent, error) {
	ev := sseEvent{id: -1}
	seen := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if seen {
				return ev, nil
			}
			continue
		}
		seen = true
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(line[len("id: "):], 10, 64)
			if err != nil {
				return ev, fmt.Errorf("bad id line %q: %w", line, err)
			}
			ev.id = id
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(line[len("data: "):])
		default:
			return ev, fmt.Errorf("unparsed SSE line %q", line)
		}
	}
}

// TestSubscribeStreamsDeltas is the end-to-end streaming contract over real
// HTTP: a subscriber receives a hello snapshot, then one delta per committed
// mutation — in commit order, consecutive seq, each carrying the same
// fingerprint the mutate response reported, with the changed set naming the
// inserted edge.
func TestSubscribeStreamsDeltas(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	base := exp.GraphSpec{Family: "cycle", N: 16}
	if _, _, err := s.Mutate(MutateRequest{Session: "feed", Base: &base}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/subscribe?session=feed")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	rd := bufio.NewReader(resp.Body)
	ev, err := readSSE(rd)
	if err != nil {
		t.Fatal(err)
	}
	if ev.event != "hello" {
		t.Fatalf("first event %q, want hello", ev.event)
	}
	var hello HelloEvent
	if err := json.Unmarshal(ev.data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Session != "feed" || hello.N != 16 || hello.M != 16 {
		t.Fatalf("hello %+v", hello)
	}

	// Alternate inserting and deleting a chord: every commit must stream.
	ops := []exp.Mutation{
		{Op: exp.OpInsert, U: 0, V: 5},
		{Op: exp.OpInsert, U: 2, V: 9},
		{Op: exp.OpDelete, U: 0, V: 5},
		{Op: exp.OpInsert, U: 4, V: 11},
	}
	fingerprints := make([]string, len(ops))
	for i, op := range ops {
		r, _, err := s.Mutate(MutateRequest{Session: "feed", Ops: []exp.Mutation{op}})
		if err != nil {
			t.Fatal(err)
		}
		fingerprints[i] = r.Fingerprint
	}

	for i, op := range ops {
		ev, err := readSSE(rd)
		if err != nil {
			t.Fatal(err)
		}
		if ev.event != "delta" {
			t.Fatalf("delta %d: event %q", i, ev.event)
		}
		var d DeltaEvent
		if err := json.Unmarshal(ev.data, &d); err != nil {
			t.Fatal(err)
		}
		if d.Seq != hello.Seq+int64(i)+1 {
			t.Fatalf("delta %d: seq %d, want %d", i, d.Seq, hello.Seq+int64(i)+1)
		}
		if ev.id != d.Seq {
			t.Fatalf("delta %d: SSE id %d != seq %d", i, ev.id, d.Seq)
		}
		if d.Op != op {
			t.Fatalf("delta %d: op %+v, want %+v", i, d.Op, op)
		}
		if d.Fingerprint != fingerprints[i] {
			t.Fatalf("delta %d: fingerprint %q, mutate reported %q", i, d.Fingerprint, fingerprints[i])
		}
		if op.Op == exp.OpInsert {
			found := false
			for _, c := range d.Changed {
				if c.U == op.U && c.V == op.V {
					found = true
				}
			}
			if !found {
				t.Fatalf("delta %d: inserted edge (%d,%d) not in changed set %+v", i, op.U, op.V, d.Changed)
			}
		}
		if d.TS == 0 {
			t.Fatalf("delta %d: zero commit timestamp", i)
		}
	}

	st := s.Stats()
	if st.Subscribers != 1 || st.Subscribes != 1 {
		t.Fatalf("gauge %d / subscribes %d, want 1/1", st.Subscribers, st.Subscribes)
	}
	if st.Delivered < int64(len(ops)) {
		t.Fatalf("delivered %d, want >= %d", st.Delivered, len(ops))
	}
}

// TestSubscribeDisconnectReapsSubscriber: a client that vanishes mid-stream
// must release its slot — the handler's blocking wait observes the request
// context and unsubscribes.
func TestSubscribeDisconnectReapsSubscriber(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	base := exp.GraphSpec{Family: "cycle", N: 12}
	if _, _, err := s.Mutate(MutateRequest{Session: "gone", Base: &base}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/subscribe?session=gone")
	if err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(resp.Body)
	if ev, err := readSSE(rd); err != nil || ev.event != "hello" {
		t.Fatalf("hello: %v %+v", err, ev)
	}
	if got := s.Stats().Subscribers; got != 1 {
		t.Fatalf("subscribers %d, want 1", got)
	}
	resp.Body.Close() // abandon the stream mid-subscription

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber not reaped after disconnect: %d", s.Stats().Subscribers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubscribeSessionEvictionClosesStream: when a session is evicted from
// the LRU, its live subscribers get an explicit close event and the stream
// ends — never a silent stall.
func TestSubscribeSessionEvictionClosesStream(t *testing.T) {
	cfg := testConfig()
	cfg.Sessions = 2
	s := New(cfg)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	base := exp.GraphSpec{Family: "cycle", N: 12}
	if _, _, err := s.Mutate(MutateRequest{Session: "old", Base: &base}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/subscribe?session=old")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	if ev, err := readSSE(rd); err != nil || ev.event != "hello" {
		t.Fatalf("hello: %v %+v", err, ev)
	}

	// Two newer sessions push "old" off the 2-entry table.
	for _, name := range []string{"new1", "new2"} {
		if _, _, err := s.Mutate(MutateRequest{Session: name, Base: &base}); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := readSSE(rd)
	if err != nil {
		t.Fatal(err)
	}
	if ev.event != "close" {
		t.Fatalf("event %q, want close", ev.event)
	}
	var ce CloseEvent
	if err := json.Unmarshal(ev.data, &ce); err != nil {
		t.Fatal(err)
	}
	if ce.Session != "old" {
		t.Fatalf("close event %+v", ce)
	}
	if _, err := readSSE(rd); err != io.EOF {
		t.Fatalf("stream after close event: %v, want EOF", err)
	}
}

// TestSubscribeAdmissionErrors covers the HTTP admission surface: missing
// query (400, counted as a bad request), unknown session (404), and the
// per-session quota (429).
func TestSubscribeAdmissionErrors(t *testing.T) {
	cfg := testConfig()
	cfg.SessionSubscribers = 1
	s := New(cfg)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := get("/v1/subscribe")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no session param: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	if got := s.Stats().BadRequests; got != 1 {
		t.Fatalf("badRequests %d, want 1", got)
	}
	resp = get("/v1/subscribe?session=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	base := exp.GraphSpec{Family: "cycle", N: 12}
	if _, _, err := s.Mutate(MutateRequest{Session: "quota", Base: &base}); err != nil {
		t.Fatal(err)
	}
	first := get("/v1/subscribe?session=quota")
	defer first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first subscribe: status %d", first.StatusCode)
	}
	// The first stream is live once its hello arrives; the quota is 1.
	if ev, err := readSSE(bufio.NewReader(first.Body)); err != nil || ev.event != "hello" {
		t.Fatalf("hello: %v %+v", err, ev)
	}
	resp = get("/v1/subscribe?session=quota")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota subscribe: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
}

// gatedWriter is a ResponseWriter whose Writes block until released — the
// deterministic stand-in for a slow consumer. Flusher is implemented so
// serveSubscribe accepts it.
type gatedWriter struct {
	header http.Header
	gate   chan struct{} // closed to release writes
	mu     sync.Mutex
	buf    []byte
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{header: make(http.Header), gate: make(chan struct{})}
}

func (g *gatedWriter) Header() http.Header { return g.header }
func (g *gatedWriter) WriteHeader(int)     {}
func (g *gatedWriter) Flush()              {}
func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.gate
	g.mu.Lock()
	g.buf = append(g.buf, p...)
	g.mu.Unlock()
	return len(p), nil
}
func (g *gatedWriter) output() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return string(g.buf)
}

// TestSubscribeOverflowDrop forces the slow-consumer path deterministically:
// the subscriber's writer is gated shut while the writer side commits more
// mutations than the feed buffer holds, so when the handler resumes it must
// drop the subscriber with an overflow event naming the exact missed count —
// and the mutating writer must never have blocked.
func TestSubscribeOverflowDrop(t *testing.T) {
	cfg := testConfig()
	cfg.FeedBuffer = 2
	s := New(cfg)
	defer s.Close()

	base := exp.GraphSpec{Family: "cycle", N: 12}
	if _, _, err := s.Mutate(MutateRequest{Session: "slow", Base: &base}); err != nil {
		t.Fatal(err)
	}

	w := newGatedWriter()
	req := httptest.NewRequest("GET", "/v1/subscribe?session=slow", nil)
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.serveSubscribe(w, req.WithContext(ctx))
	}()

	// The subscription registers before the hello write blocks on the gate.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Subscribers != 1 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Five commits against a 2-frame buffer: the first three are gone.
	ops := []exp.Mutation{
		{Op: exp.OpInsert, U: 0, V: 5},
		{Op: exp.OpInsert, U: 1, V: 6},
		{Op: exp.OpInsert, U: 2, V: 7},
		{Op: exp.OpInsert, U: 3, V: 8},
		{Op: exp.OpInsert, U: 4, V: 9},
	}
	start := time.Now()
	for _, op := range ops {
		if _, _, err := s.Mutate(MutateRequest{Session: "slow", Ops: []exp.Mutation{op}}); err != nil {
			t.Fatal(err)
		}
	}
	// The contract's teeth: all five commits completed while the subscriber
	// could not accept a single byte.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("writer blocked on a stuck subscriber: %v for %d ops", elapsed, len(ops))
	}

	close(w.gate)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not finish after release")
	}
	out := w.output()
	if !strings.Contains(out, "event: overflow") {
		t.Fatalf("no overflow event in output:\n%s", out)
	}
	var ov OverflowEvent
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, "missed") {
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ov); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ov.Missed != 3 {
		t.Fatalf("missed %d, want 3 (5 commits, 2 buffered)", ov.Missed)
	}
	st := s.Stats()
	if st.Dropped != 1 {
		t.Fatalf("dropped %d, want 1", st.Dropped)
	}
	if st.Subscribers != 0 {
		t.Fatalf("subscribers %d after drop, want 0", st.Subscribers)
	}
}

// TestBadRequestAccounting pins the satellite counter: unparseable bodies
// are visible in badRequests and deliberately absent from requests — the
// requests >= outcomes invariant is not perturbed by garbage.
func TestBadRequestAccounting(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if _, _, _, err := s.HandleRaw([]byte("{not json")); err == nil {
		t.Fatal("HandleRaw accepted garbage")
	}
	st := s.Stats()
	if st.BadRequests != 1 {
		t.Fatalf("badRequests %d after raw garbage, want 1", st.BadRequests)
	}
	if st.Requests != 0 {
		t.Fatalf("requests %d, want 0 (garbage never became a request)", st.Requests)
	}

	for i, body := range []string{"{broken", `{"unknown_field": 1}`} {
		resp, err := http.Post(srv.URL+"/v1/mutate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("mutate body %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if got := s.Stats().BadRequests; got != 3 {
		t.Fatalf("badRequests %d after mutate garbage, want 3", got)
	}
}
