package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/panconesi"
)

// directResponse computes the reference answer for req the way the CLIs do:
// build the graph, one fresh single-threaded dist.Run on the default engine,
// merge, validate. It shares no execution machinery with the service (no
// pools, no cache, no batcher), so agreement is evidence, not tautology.
func directResponse(t *testing.T, req Request) []byte {
	t.Helper()
	g, err := req.Graph.Build()
	if err != nil {
		t.Fatal(err)
	}
	delta := g.MaxDegree()
	opts := []dist.Option{dist.WithSeed(req.Seed), dist.WithEngine(dist.Lockstep)}
	var (
		colors  []int
		stats   dist.Stats
		palette int
	)
	switch req.Kind + "/" + req.Alg {
	case "edge/be":
		pl, err := core.AutoPlan(delta, 2, 2, 6, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide, opts...)
		if err != nil {
			t.Fatal(err)
		}
		colors, err = graph.MergePortColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		stats, palette = res.Stats, pl.TotalPalette()
	case "edge/pr":
		res, err := panconesi.EdgeColoring(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		colors, err = graph.MergePortColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		stats, palette = res.Stats, 2*delta-1
	case "edge/greedy":
		res, err := baseline.GreedyEdgeColoring(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		colors, err = graph.MergePortColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		stats, palette = res.Stats, 2*delta-1
	case "vertex/be":
		pl, err := core.AutoPlan(delta, 2, 2, 9, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.LegalColoring(g, pl, core.StartIDs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		colors, stats, palette = res.Outputs, res.Stats, pl.TotalPalette()
	case "vertex/greedy":
		res, err := baseline.GreedyVertexColoring(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		colors, stats, palette = res.Outputs, res.Stats, delta+1
	default:
		t.Fatalf("no direct reference for %s/%s", req.Kind, req.Alg)
	}
	resp := &Response{
		Key:   "",
		Kind:  req.Kind,
		Alg:   req.Alg,
		Graph: req.Graph.String(),
		N:     g.N(), M: g.M(), Delta: delta,
		Palette:   palette,
		NumColors: graph.CountColors(colors),
		Colors:    colors,
		Stats:     Stats{Rounds: stats.Rounds, Bytes: stats.Bytes, MaxMessageBytes: stats.MaxMessageBytes, Activations: stats.Activations},
	}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStatsDuringBuilds pins the statz/build synchronization: snapshots
// taken while other goroutines are building graph entries for the first
// time must not race on the entry's graph pointer (-race enforces).
func TestStatsDuringBuilds(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 3; n < 40; n++ {
			req := Request{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "cycle", N: n}}
			if _, _, err := s.Handle(req); err != nil {
				t.Errorf("handle: %v", err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			if got := s.Stats(); got.Requests == 0 {
				t.Fatal("no requests recorded")
			}
			return
		default:
			_ = s.Stats()
		}
	}
}

// TestServiceMatchesDirect is the service-level concurrency test: many
// clients hammer one Service with a mixed workload (different kinds,
// algorithms, engines, seeds, graphs — plus deliberate duplicates to drive
// the coalescing and cache-hit paths), and every single response must be
// byte-identical to a fresh single-threaded dist.Run of the same request.
// Run under -race this also validates the batcher/pool/cache locking.
func TestServiceMatchesDirect(t *testing.T) {
	reqs := []Request{
		{Kind: "edge", Alg: "be", Graph: exp.GraphSpec{Family: "gnm", N: 36, M: 100, Seed: 1}},
		{Kind: "edge", Alg: "be", Graph: exp.GraphSpec{Family: "linegraph", N: 14, M: 30, Seed: 2}},
		{Kind: "edge", Alg: "pr", Graph: exp.GraphSpec{Family: "gnm", N: 36, M: 100, Seed: 1}},
		{Kind: "edge", Alg: "pr", Graph: exp.GraphSpec{Family: "regular", N: 24, Deg: 4, Seed: 3}},
		{Kind: "edge", Alg: "greedy", Graph: exp.GraphSpec{Family: "tree", N: 30, Seed: 4}},
		{Kind: "edge", Alg: "greedy", Graph: exp.GraphSpec{Family: "cycle", N: 17}},
		{Kind: "vertex", Alg: "be", Graph: exp.GraphSpec{Family: "powercycle", N: 26, Deg: 3}},
		{Kind: "vertex", Alg: "be", Graph: exp.GraphSpec{Family: "linegraph", N: 12, M: 22, Seed: 5}},
		{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "gnm", N: 40, M: 90, Seed: 6}},
		{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "grid", N: 6, M: 5}},
	}
	// Seed and engine variants: same graphs, different cache keys (seeds)
	// or same keys via different engines (engine is excluded from the key).
	var workload []Request
	for _, r := range reqs {
		for _, seed := range []int64{0, 11} {
			for _, engine := range []string{"", "lockstep", "sharded"} {
				v := r
				v.Seed = seed
				v.Engine = engine
				workload = append(workload, v)
			}
		}
	}
	want := make(map[string][]byte) // canonical JSON per (request modulo engine)
	keyOf := func(r Request) string {
		r.Engine = ""
		b, _ := json.Marshal(r)
		return string(b)
	}
	for _, r := range workload {
		k := keyOf(r)
		if _, ok := want[k]; !ok {
			want[k] = directResponse(t, r)
		}
	}

	s := New(Config{Workers: 4, CacheEntries: 256, GraphEntries: 16, BatchWindow: 200 * time.Microsecond})
	defer s.Close()

	// stripKey clears the response's Key field (the direct reference has no
	// cache key) without otherwise changing the body.
	stripKey := func(body []byte) ([]byte, error) {
		var resp Response
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, err
		}
		resp.Key = ""
		return json.Marshal(&resp)
	}

	const clients = 8
	const rounds = 3 // every client sends the full workload repeatedly: hits + coalesces
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i, r := range workload {
					// Stagger start points so clients collide on
					// different requests.
					r = workload[(i+cl*7)%len(workload)]
					var body []byte
					if (i+cl)%3 == 0 {
						// Exercise the raw wire path (fast lane + slow
						// lane) alongside the typed API.
						raw, err := json.Marshal(r)
						if err != nil {
							errCh <- err
							return
						}
						body, _, _, err = s.HandleRaw(raw)
						if err != nil {
							errCh <- err
							return
						}
					} else {
						resp, _, err := s.Handle(r)
						if err != nil {
							errCh <- err
							return
						}
						if body, err = json.Marshal(resp); err != nil {
							errCh <- err
							return
						}
					}
					got, err := stripKey(body)
					if err != nil {
						errCh <- err
						return
					}
					if !bytes.Equal(got, want[keyOf(r)]) {
						t.Errorf("client %d: response differs from direct dist.Run for %+v", cl, r)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := s.Stats()
	total := int64(clients * rounds * len(workload))
	if st.Requests != total {
		t.Fatalf("requests %d, want %d", st.Requests, total)
	}
	if st.Runs != int64(len(want)) {
		t.Fatalf("runs %d, want exactly %d (one per distinct key)", st.Runs, len(want))
	}
	if st.Hits+st.Coalesced+st.Runs < total {
		t.Fatalf("outcome accounting leaks: %+v vs %d requests", st, total)
	}
}

// TestStatzUnderMixedLoad hammers /statz while color requests (typed and
// raw), session mutations, SSE subscriptions, and garbage bodies run
// concurrently. Every snapshot must be coherent: counters monotone across
// successive snapshots, outcomes never exceeding requests, and cache totals
// non-negative. Run under -race this also pins the striped-counter,
// sharded-snapshot, and broadcast-hub synchronization.
func TestStatzUnderMixedLoad(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Subscribers churn against the session the first mutator client owns:
	// open a stream, read a handful of events, drop the connection, repeat.
	// The request context ends the stream when the test stops, so a blocked
	// read never outlives the load.
	ctx, cancelSubs := context.WithCancel(context.Background())
	defer cancelSubs()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/subscribe?session=statz-a", nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return // context canceled at stop
				}
				if resp.StatusCode == http.StatusOK {
					// Read a few frames, then vanish mid-stream: the
					// disconnect-reap path under load.
					buf := make([]byte, 512)
					for reads := 0; reads < 4; reads++ {
						if _, err := resp.Body.Read(buf); err != nil {
							break
						}
					}
				}
				resp.Body.Close()
			}
		}()
	}
	// One client sprays unparseable bodies at both POST endpoints: the
	// badRequests counter must move without ever touching requests/outcomes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			path := "/v1/color"
			if i%2 == 0 {
				path = "/v1/mutate"
			}
			resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte("{garbage")))
			if err != nil {
				t.Errorf("spray: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("spray: status %d, want 400", resp.StatusCode)
				return
			}
		}
	}()
	for cl := 0; cl < 4; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			// Each client owns one session on a cycle base: the chord
			// (cl, cl+5) is never a cycle edge, so alternating insert and
			// delete of it is always a valid op sequence.
			base := exp.GraphSpec{Family: "cycle", N: 24}
			present := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (i + cl) % 3 {
				case 0:
					req := Request{Kind: "edge", Alg: "greedy", Graph: exp.GraphSpec{Family: "cycle", N: 10 + (i % 8)}}
					if _, _, err := s.Handle(req); err != nil {
						t.Errorf("handle: %v", err)
						return
					}
				case 1:
					raw, _ := json.Marshal(Request{Kind: "vertex", Alg: "greedy", Graph: exp.GraphSpec{Family: "tree", N: 12 + (i % 4), Seed: 3}})
					if _, _, _, err := s.HandleRaw(raw); err != nil {
						t.Errorf("handleRaw: %v", err)
						return
					}
				case 2:
					name := "statz-" + string(rune('a'+cl))
					op := exp.Mutation{Op: exp.OpInsert, U: cl, V: cl + 5}
					if present {
						op.Op = exp.OpDelete
					}
					present = !present
					if _, _, err := s.Mutate(MutateRequest{Session: name, Base: &base, Ops: []exp.Mutation{op}, Colors: i%2 == 0}); err != nil {
						t.Errorf("mutate: %v", err)
						return
					}
				}
			}
		}(cl)
	}

	var prev ServiceStats
	deadline := time.After(800 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
		}
		resp, err := http.Get(srv.URL + "/statz")
		if err != nil {
			t.Fatal(err)
		}
		var st ServiceStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Requests < prev.Requests || st.Hits < prev.Hits || st.Coalesced < prev.Coalesced ||
			st.Runs < prev.Runs || st.Errors < prev.Errors || st.Mutations < prev.Mutations {
			t.Fatalf("counters went backwards: %+v then %+v", prev, st)
		}
		if st.BadRequests < prev.BadRequests || st.Subscribes < prev.Subscribes ||
			st.Delivered < prev.Delivered || st.Dropped < prev.Dropped {
			t.Fatalf("stream counters went backwards: %+v then %+v", prev, st)
		}
		if st.Subscribers < 0 {
			t.Fatalf("negative subscriber gauge: %+v", st)
		}
		if st.Hits+st.Coalesced+st.Runs > st.Requests {
			t.Fatalf("outcomes exceed requests: %+v", st)
		}
		if st.Cache.Bytes < 0 || st.Fast.Bytes < 0 || st.Cache.Entries < 0 || st.Fast.Entries < 0 {
			t.Fatalf("negative cache totals: %+v", st)
		}
		prev = st
	}
	close(stop)
	cancelSubs()
	wg.Wait()
	if prev.Requests == 0 || prev.Mutations == 0 {
		t.Fatalf("workload did not register: %+v", prev)
	}
	final := s.Stats()
	if final.BadRequests == 0 {
		t.Fatalf("garbage sprayer did not register: %+v", final)
	}
	if final.Subscribes == 0 {
		t.Fatalf("subscriber churn did not register: %+v", final)
	}
}
