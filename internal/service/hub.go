package service

import (
	"errors"
	"fmt"
	"sync"
)

// The streaming broadcast hub.
//
// Every committed mutation of a dynamic session produces one delta frame
// (prerendered SSE bytes — encoded exactly once, at commit). The hub fans
// those frames out to the session's subscribers under a strict backpressure
// contract:
//
//   - the mutating writer NEVER blocks on a subscriber. Publishing is O(1):
//     one append to the feed's bounded broadcast log plus one wake;
//   - each subscriber reads the shared log through its own cursor, so its
//     effective buffer is bounded (the log's capacity). A subscriber whose
//     cursor falls off the tail of the log is irrecoverably behind: it is
//     dropped with an explicit overflow notification rather than slowing
//     anyone down — the storage-shared equivalent of a bounded
//     per-subscriber ring buffer;
//   - frames are delivered in commit order with no gaps (until overflow or
//     close): the publisher appends under the maintainer's commit lock, so
//     log order IS commit order, and frames are indexed by the commit
//     sequence number itself. A subscriber's cursor is therefore a commit
//     seq — the same number the SSE id: line carries — which is what makes
//     reconnect-with-Last-Event-ID resumption exact: the cursor placement
//     IS the client's last acknowledged commit.
//
// Admission is controlled at subscribe time: a global subscriber cap bounds
// the service's fan-out, and a per-session quota keeps one hot session from
// monopolizing it. A feed is created by a session's first-ever subscriber
// and persists until the session closes (it is NOT torn down when the last
// subscriber leaves): the retained ring is the resume window for clients
// that disconnect and come back. Sessions that were never subscribed to pay
// nothing — publish without a feed is a declined map lookup.
type subHub struct {
	maxSubs     int // global concurrent-subscriber cap
	sessionSubs int // per-session quota
	buffer      int // frames retained per feed (the per-subscriber lag bound)

	mu     sync.Mutex
	feeds  map[string]*feed
	total  int
	closed bool
}

// errHubClosed / errHubFull / errSessionFull are the subscribe admission
// failures; the HTTP layer maps them to 503 and 429.
var (
	errHubClosed   = errors.New("service: shutting down")
	errHubFull     = errors.New("service: subscriber limit reached")
	errSessionFull = errors.New("service: session subscriber quota reached")
)

func newSubHub(maxSubs, sessionSubs, buffer int) *subHub {
	return &subHub{
		maxSubs:     maxSubs,
		sessionSubs: sessionSubs,
		buffer:      buffer,
		feeds:       make(map[string]*feed),
	}
}

// feed is one session's broadcast log: a bounded ring of prerendered frames
// indexed by commit seq. frames[s%len] holds the frame of commit s for s in
// [max(first, seq-len+1), seq]; older frames are overwritten, which is
// exactly the overflow bound. first is the seq of the first frame ever
// appended (the feed may be created mid-session, so history before first
// never existed here); first == 0 means nothing has been published yet.
type feed struct {
	name string

	mu     sync.Mutex
	frames [][]byte
	first  uint64 // seq of the first frame ever appended; 0 = none yet
	seq    uint64 // seq of the newest appended frame; 0 = none yet
	subs   int
	closed bool
	wake   chan struct{} // closed and replaced on every append/close
}

// feedSub is one subscriber's handle: a cursor into the feed's log. Methods
// are owner-goroutine-only (the HTTP handler that subscribed).
type feedSub struct {
	hub *subHub
	f   *feed
	// cursor is the next commit seq to read. 0 is the "from the next
	// append" sentinel used when the feed has not published yet: it
	// resolves to f.first on the first read after the feed primes.
	cursor uint64
	done   bool
}

// subStatus is the outcome of one feedSub.next call.
type subStatus int

const (
	// subFrame: a frame was returned.
	subFrame subStatus = iota
	// subIdle: nothing pending (non-blocking calls only).
	subIdle
	// subOverflow: the subscriber lagged past the log's tail and is dropped;
	// missed reports how many frames are irrecoverably gone.
	subOverflow
	// subClosed: the feed closed (session evicted, deleted, or service
	// shutdown).
	subClosed
	// subCanceled: the cancel channel fired (client went away).
	subCanceled
)

// subscribe registers a subscriber on the named session's feed, creating the
// feed if it does not exist yet.
//
// from < 0 is a fresh subscription: the cursor starts at "now" and the
// subscriber sees every frame published after registration, in order.
//
// from >= 0 is a resume (the client's Last-Event-ID): the subscriber wants
// the stream to continue at commit from+1. ack reports where the cursor
// actually landed: ack >= 0 means the cursor is at commit ack+1 — ack == from
// is an exact resume, ack > from means commits (from, ack] rotated out of the
// ring and are gone (the caller reports the gap in the hello frame). ack < 0
// means the feed has no usable history (never published, or the client is
// ahead of it); the cursor is at "now" and the caller determines the gap from
// the session's current commit seq.
func (h *subHub) subscribe(session string, from int64) (sub *feedSub, ack int64, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, -1, errHubClosed
	}
	if h.total >= h.maxSubs {
		return nil, -1, fmt.Errorf("%w (%d)", errHubFull, h.maxSubs)
	}
	f := h.feeds[session]
	if f == nil {
		f = &feed{
			name:   session,
			frames: make([][]byte, h.buffer),
			wake:   make(chan struct{}),
		}
		h.feeds[session] = f
	}
	f.mu.Lock()
	if f.subs >= h.sessionSubs {
		f.mu.Unlock()
		return nil, -1, fmt.Errorf("%w (%d)", errSessionFull, h.sessionSubs)
	}
	f.subs++
	ack = -1
	var cursor uint64
	switch {
	case f.seq == 0:
		// Nothing published yet (possibly ever): start at the next append,
		// whatever its seq turns out to be.
		cursor = 0
	case from < 0:
		// Fresh subscription on a live feed: from the next commit.
		cursor = f.seq + 1
	case uint64(from) >= f.seq:
		// Resuming at (or somehow past) the head: nothing to replay, next
		// commit continues the stream. Exact when from == f.seq; a client
		// claiming a future seq is handled by the caller against the
		// session's real state.
		cursor = f.seq + 1
		if uint64(from) == f.seq {
			ack = from
		}
	default:
		// Resume from the ring. The retained window is
		// [max(first, seq-len+1), seq].
		start := f.seq - uint64(len(f.frames)) + 1
		if f.first > start || f.seq < uint64(len(f.frames)) {
			start = f.first
		}
		cursor = uint64(from) + 1
		if cursor < start {
			// The requested position rotated out; resume at the window's
			// start and let the caller report the gap.
			cursor = start
		}
		ack = int64(cursor) - 1
	}
	f.mu.Unlock()
	h.total++
	return &feedSub{hub: h, f: f, cursor: cursor}, ack, nil
}

// publish appends the frame of commit seq to the named session's feed,
// rendering it with render only if the session has (ever had) a subscriber.
// It never blocks on subscribers: the append is O(1) and the wake is a
// channel close. The caller publishes under the maintainer's commit lock, so
// seqs arrive consecutive; a non-consecutive seq on a primed feed is dropped
// (it cannot be ordered into the ring). Returns whether a frame was
// published.
func (h *subHub) publish(session string, seq int64, render func() []byte) bool {
	h.mu.Lock()
	f := h.feeds[session]
	h.mu.Unlock()
	if f == nil || seq <= 0 {
		return false
	}
	frame := render()
	f.mu.Lock()
	if f.closed || (f.seq != 0 && uint64(seq) != f.seq+1) {
		f.mu.Unlock()
		return false
	}
	if f.first == 0 {
		f.first = uint64(seq)
	}
	f.seq = uint64(seq)
	f.frames[int(f.seq%uint64(len(f.frames)))] = frame
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
	return true
}

// closeFeed closes the named session's feed: current subscribers observe
// subClosed (pending frames are discarded — the session is gone, its deltas
// moot), and the name becomes free for a future session's feed.
func (h *subHub) closeFeed(session string) {
	h.mu.Lock()
	f := h.feeds[session]
	delete(h.feeds, session)
	h.mu.Unlock()
	if f != nil {
		f.close()
	}
}

// close shuts the hub: all feeds close, and further subscribes fail.
func (h *subHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	feeds := make([]*feed, 0, len(h.feeds))
	for _, f := range h.feeds {
		feeds = append(feeds, f)
	}
	h.feeds = map[string]*feed{}
	h.mu.Unlock()
	for _, f := range feeds {
		f.close()
	}
}

// subscribers reports the current subscriber count (the /statz gauge).
func (h *subHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (f *feed) close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.wake)
	}
	f.mu.Unlock()
}

// next returns the subscriber's next frame. With block it waits for one (or
// for cancel/close); without, it returns subIdle when the cursor is caught
// up — the HTTP layer uses the non-blocking form to drain a burst before
// flushing once. On subOverflow the subscriber is behind by more than the
// feed's buffer; missed counts the frames that are gone for good, and the
// subscriber must unsubscribe (no further frames will be returned in order).
func (sub *feedSub) next(cancel <-chan struct{}, block bool) (frame []byte, st subStatus, missed uint64) {
	f := sub.f
	f.mu.Lock()
	for {
		if f.closed {
			f.mu.Unlock()
			return nil, subClosed, 0
		}
		if sub.cursor == 0 && f.seq != 0 {
			// The feed primed after this subscriber registered on it empty:
			// the stream starts at the first frame ever published.
			sub.cursor = f.first
		}
		if sub.cursor != 0 && sub.cursor <= f.seq {
			if start := f.seq - uint64(len(f.frames)) + 1; sub.cursor < start && f.seq >= uint64(len(f.frames)) {
				// frames [start, f.seq] are retained; everything from the
				// cursor up to the window's start was overwritten.
				missed = start - sub.cursor
				f.mu.Unlock()
				return nil, subOverflow, missed
			}
			frame = f.frames[int(sub.cursor%uint64(len(f.frames)))]
			sub.cursor++
			f.mu.Unlock()
			return frame, subFrame, 0
		}
		if !block {
			f.mu.Unlock()
			return nil, subIdle, 0
		}
		w := f.wake
		f.mu.Unlock()
		select {
		case <-w:
		case <-cancel:
			return nil, subCanceled, 0
		}
		f.mu.Lock()
	}
}

// unsubscribe releases the subscriber's slot. The feed itself stays, frames
// and all, until its session closes: the retained ring is the resume window
// for a Last-Event-ID reconnect.
func (sub *feedSub) unsubscribe() {
	if sub.done {
		return
	}
	sub.done = true
	h, f := sub.hub, sub.f
	h.mu.Lock()
	h.total--
	f.mu.Lock()
	f.subs--
	f.mu.Unlock()
	h.mu.Unlock()
}
