package service

import (
	"errors"
	"fmt"
	"sync"
)

// The streaming broadcast hub.
//
// Every committed mutation of a dynamic session produces one delta frame
// (prerendered SSE bytes — encoded exactly once, at commit). The hub fans
// those frames out to the session's subscribers under a strict backpressure
// contract:
//
//   - the mutating writer NEVER blocks on a subscriber. Publishing is O(1):
//     one append to the feed's bounded broadcast log plus one wake;
//   - each subscriber reads the shared log through its own cursor, so its
//     effective buffer is bounded (the log's capacity). A subscriber whose
//     cursor falls off the tail of the log is irrecoverably behind: it is
//     dropped with an explicit overflow notification rather than slowing
//     anyone down — the storage-shared equivalent of a bounded
//     per-subscriber ring buffer;
//   - frames are delivered in commit order with no gaps (until overflow or
//     close): the publisher appends under the maintainer's commit lock, so
//     log order IS commit order.
//
// Admission is controlled at subscribe time: a global subscriber cap bounds
// the service's fan-out, and a per-session quota keeps one hot session from
// monopolizing it. Feeds exist only while subscribed-to: with no
// subscribers, publish is a map lookup that declines the render closure, so
// unobserved sessions pay nothing for the feature's existence.
type subHub struct {
	maxSubs     int // global concurrent-subscriber cap
	sessionSubs int // per-session quota
	buffer      int // frames retained per feed (the per-subscriber lag bound)

	mu     sync.Mutex
	feeds  map[string]*feed
	total  int
	closed bool
}

// errHubClosed / errHubFull / errSessionFull are the subscribe admission
// failures; the HTTP layer maps them to 503 and 429.
var (
	errHubClosed   = errors.New("service: shutting down")
	errHubFull     = errors.New("service: subscriber limit reached")
	errSessionFull = errors.New("service: session subscriber quota reached")
)

func newSubHub(maxSubs, sessionSubs, buffer int) *subHub {
	return &subHub{
		maxSubs:     maxSubs,
		sessionSubs: sessionSubs,
		buffer:      buffer,
		feeds:       make(map[string]*feed),
	}
}

// feed is one session's broadcast log: a bounded ring of prerendered frames
// with a monotone append count. frames[(i-1)%len] holds the i-th appended
// frame for i in (seq-len(frames), seq]; older frames are overwritten, which
// is exactly the overflow bound.
type feed struct {
	name string

	mu     sync.Mutex
	frames [][]byte
	seq    uint64 // frames ever appended; valid window is (seq-len, seq]
	subs   int
	closed bool
	wake   chan struct{} // closed and replaced on every append/close
}

// feedSub is one subscriber's handle: a cursor into the feed's log. Methods
// are owner-goroutine-only (the HTTP handler that subscribed).
type feedSub struct {
	hub *subHub
	f   *feed
	// cursor is the next append index to read (1-based).
	cursor uint64
	done   bool
}

// subStatus is the outcome of one feedSub.next call.
type subStatus int

const (
	// subFrame: a frame was returned.
	subFrame subStatus = iota
	// subIdle: nothing pending (non-blocking calls only).
	subIdle
	// subOverflow: the subscriber lagged past the log's tail and is dropped;
	// missed reports how many frames are irrecoverably gone.
	subOverflow
	// subClosed: the feed closed (session evicted, deleted, or service
	// shutdown).
	subClosed
	// subCanceled: the cancel channel fired (client went away).
	subCanceled
)

// subscribe registers a subscriber on the named session's feed, creating the
// feed if this is its first subscriber. The cursor starts at "now": the
// subscriber sees every frame published after registration, in order.
func (h *subHub) subscribe(session string) (*feedSub, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, errHubClosed
	}
	if h.total >= h.maxSubs {
		return nil, fmt.Errorf("%w (%d)", errHubFull, h.maxSubs)
	}
	f := h.feeds[session]
	if f == nil {
		f = &feed{
			name:   session,
			frames: make([][]byte, h.buffer),
			wake:   make(chan struct{}),
		}
		h.feeds[session] = f
	}
	f.mu.Lock()
	if f.subs >= h.sessionSubs {
		f.mu.Unlock()
		if f.subs == 0 { // only possible when the quota is 0-ish; tidy up
			delete(h.feeds, session)
		}
		return nil, fmt.Errorf("%w (%d)", errSessionFull, h.sessionSubs)
	}
	f.subs++
	cursor := f.seq + 1
	f.mu.Unlock()
	h.total++
	return &feedSub{hub: h, f: f, cursor: cursor}, nil
}

// publish appends one frame to the named session's feed, rendering it with
// render only if someone is listening. It never blocks on subscribers: the
// append is O(1) and the wake is a channel close. Returns whether a frame
// was published.
func (h *subHub) publish(session string, render func() []byte) bool {
	h.mu.Lock()
	f := h.feeds[session]
	h.mu.Unlock()
	if f == nil {
		return false
	}
	frame := render()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return false
	}
	f.seq++
	f.frames[int((f.seq-1)%uint64(len(f.frames)))] = frame
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
	return true
}

// closeFeed closes the named session's feed: current subscribers observe
// subClosed (pending frames are discarded — the session is gone, its deltas
// moot), and the name becomes free for a future session's feed.
func (h *subHub) closeFeed(session string) {
	h.mu.Lock()
	f := h.feeds[session]
	delete(h.feeds, session)
	h.mu.Unlock()
	if f != nil {
		f.close()
	}
}

// close shuts the hub: all feeds close, and further subscribes fail.
func (h *subHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	feeds := make([]*feed, 0, len(h.feeds))
	for _, f := range h.feeds {
		feeds = append(feeds, f)
	}
	h.feeds = map[string]*feed{}
	h.mu.Unlock()
	for _, f := range feeds {
		f.close()
	}
}

// subscribers reports the current subscriber count (the /statz gauge).
func (h *subHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (f *feed) close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.wake)
	}
	f.mu.Unlock()
}

// next returns the subscriber's next frame. With block it waits for one (or
// for cancel/close); without, it returns subIdle when the cursor is caught
// up — the HTTP layer uses the non-blocking form to drain a burst before
// flushing once. On subOverflow the subscriber is behind by more than the
// feed's buffer; missed counts the frames that are gone for good, and the
// subscriber must unsubscribe (no further frames will be returned in order).
func (sub *feedSub) next(cancel <-chan struct{}, block bool) (frame []byte, st subStatus, missed uint64) {
	f := sub.f
	f.mu.Lock()
	for {
		if f.closed {
			f.mu.Unlock()
			return nil, subClosed, 0
		}
		if sub.cursor <= f.seq {
			if lag := f.seq - sub.cursor; lag >= uint64(len(f.frames)) {
				// frames (f.seq-len, f.seq] are retained; everything from
				// cursor up to the window's start was overwritten.
				missed = f.seq - uint64(len(f.frames)) - sub.cursor + 1
				f.mu.Unlock()
				return nil, subOverflow, missed
			}
			frame = f.frames[int((sub.cursor-1)%uint64(len(f.frames)))]
			sub.cursor++
			f.mu.Unlock()
			return frame, subFrame, 0
		}
		if !block {
			f.mu.Unlock()
			return nil, subIdle, 0
		}
		w := f.wake
		f.mu.Unlock()
		select {
		case <-w:
		case <-cancel:
			return nil, subCanceled, 0
		}
		f.mu.Lock()
	}
}

// unsubscribe releases the subscriber's slot. The last subscriber out turns
// off the light: an empty feed is removed from the hub so publish becomes a
// declined map lookup again.
func (sub *feedSub) unsubscribe() {
	if sub.done {
		return
	}
	sub.done = true
	h, f := sub.hub, sub.f
	h.mu.Lock()
	h.total--
	f.mu.Lock()
	f.subs--
	empty := f.subs == 0
	f.mu.Unlock()
	if empty && h.feeds[f.name] == f {
		delete(h.feeds, f.name)
	}
	h.mu.Unlock()
}
