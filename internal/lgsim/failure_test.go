package lgsim

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// TestVirtualPanicPropagates checks that a panic inside a virtual vertex
// surfaces as a run error rather than a hang.
func TestVirtualPanicPropagates(t *testing.T) {
	g := graph.Cycle(8)
	_, err := Run(g, 3, func(v dist.Process) int {
		if v.ID()%3 == 0 {
			panic("virtual boom")
		}
		for i := 0; i < 3; i++ {
			v.Round(nil)
		}
		return 0
	})
	if err == nil || !strings.Contains(err.Error(), "virtual boom") {
		t.Fatalf("err = %v, want propagated virtual panic", err)
	}
}

// TestWrongVirtualOutboxPanics validates the port-count guard on virtual
// vertices.
func TestWrongVirtualOutboxPanics(t *testing.T) {
	g := graph.Path(4)
	_, err := Run(g, 1, func(v dist.Process) int {
		v.Round(make([][]byte, v.Deg()+2))
		return 0
	})
	if err == nil || !strings.Contains(err.Error(), "ports") {
		t.Fatalf("err = %v, want port mismatch", err)
	}
}

// TestDecodeBundleRejectsGarbage exercises the malformed-bundle paths.
func TestDecodeBundleRejectsGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("garbage bundle accepted")
		}
	}()
	decodeBundle([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
}

func TestDecodeBundleNil(t *testing.T) {
	if entries := decodeBundle(nil); entries != nil {
		t.Fatal("nil bundle should decode to nothing")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	in := [][]bundleEntry{
		{{src: 5, dst: 9, payload: []byte{1, 2, 3}}, {src: 7, dst: 9, payload: nil}},
		nil,
	}
	msgs := encodeBundles(in, 2)
	if msgs[1] != nil {
		t.Fatal("empty port should carry no message")
	}
	got := decodeBundle(msgs[0])
	if len(got) != 2 || got[0].src != 5 || got[0].dst != 9 || len(got[0].payload) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got[1].src != 7 || len(got[1].payload) != 0 {
		t.Fatalf("empty payload lost: %+v", got[1])
	}
}

// TestZeroVirtualRounds runs an algorithm that needs no communication.
func TestZeroVirtualRounds(t *testing.T) {
	g := graph.Complete(5)
	sim, err := Run(g, 0, func(v dist.Process) int { return v.ID() })
	if err != nil {
		t.Fatal(err)
	}
	// Outputs should be the virtual ids of the edges.
	for id, e := range g.Edges() {
		want := VirtualID(g.N(), g.ID(e.U), g.ID(e.V))
		if sim.Outputs[id] != want {
			t.Fatalf("edge %d: got %d, want %d", id, sim.Outputs[id], want)
		}
	}
	// Only the setup round is spent.
	if sim.Physical.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (setup only)", sim.Physical.Rounds)
	}
}

// TestVirtualRandReproducible checks seed-derived virtual PRNG streams.
func TestVirtualRandReproducible(t *testing.T) {
	g := graph.Cycle(6)
	draw := func(opts ...dist.Option) []int {
		sim, err := Run(g, 0, func(v dist.Process) int {
			return v.Rand().Intn(1 << 30)
		}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Outputs
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("virtual PRNG not reproducible")
		}
	}
	moved := false
	for i, x := range draw(dist.WithSeed(7)) {
		if x != a[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("WithSeed did not move the virtual PRNG streams")
	}
	distinct := false
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("virtual PRNG streams look identical across vertices")
	}
}

// TestBroadcastNilAdvancesRound covers the virtual Broadcast(nil) path.
func TestBroadcastNilAdvancesRound(t *testing.T) {
	g := graph.Path(3)
	sim, err := Run(g, 2, func(v dist.Process) int {
		v.Broadcast(nil)
		in := v.Broadcast(wire.EncodeInts(v.Deg()))
		got := 0
		for _, msg := range in {
			if msg != nil {
				got++
			}
		}
		return got
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Physical.Rounds != 2*2+1 {
		t.Fatalf("rounds = %d, want 5", sim.Physical.Rounds)
	}
}
