// Package lgsim executes the Lemma 5.2 simulation for real: it runs an
// arbitrary vertex algorithm written for the line graph L(G) on the network
// G itself, with every virtual vertex v_e hosted by the endpoint of e with
// the smaller identifier, exactly as the lemma prescribes.
//
//   - Virtual identifiers are the ordered pairs ⟨Id(u), Id(v)⟩ encoded as
//     lo·(n+1)+hi, drawn from an identifier space of size (n+1)² (the lemma's
//     "unique Ids for vertices in L(G)").
//   - A message between adjacent virtual vertices v_e → v_f travels through
//     their shared endpoint: at most two hops in G, so one virtual round
//     costs exactly two physical rounds (phase A to the shared endpoint,
//     phase B onward), giving the lemma's 2T + O(1) bound; the O(1) is one
//     setup round in which endpoints exchange incidence lists to learn the
//     virtual topology.
//   - Up to Δ(G) virtual messages share a physical edge per phase, which is
//     the ×Δ message-size blowup the paper contrasts with the direct §5
//     variant — here it is measured, not just accounted.
//
// The virtual algorithm must be lockstep (every virtual vertex uses the same
// number of rounds), which holds for all schedule-driven colorings in this
// repository; the caller supplies that round count (core.LegalRounds, or a
// native dry run on L(G)).
//
// Buffer discipline: the relay decodes each physical inbox completely before
// its next Round call, and the virtual payloads it forwards alias only the
// message byte buffers (sender-owned, never recycled), not the pooled inbox
// slot arrays — so the simulation is compatible with the dist runtime's
// valid-until-next-Round inbox contract under every engine.
package lgsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Result carries per-edge outputs plus the measured physical cost on G.
type Result[T any] struct {
	// Outputs[id] is the value returned by the virtual vertex of the edge
	// with that id in g.
	Outputs []T
	// Physical is the cost measured on G: rounds ≈ 2·virtualRounds + 1,
	// message sizes inflated by bundling (Lemma 5.2).
	Physical dist.Stats
	// VirtualRounds is the lockstep round count of the simulated algorithm.
	VirtualRounds int
}

// VirtualID encodes the identifier of the virtual vertex of edge (u,w):
// ⟨min(idU,idW), max⟩ as lo·(n+1)+hi.
func VirtualID(n, idA, idB int) int {
	lo, hi := idA, idB
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo*(n+1) + hi
}

// VirtualIDSpace is the bound callers should use as the algorithm's
// identifier-space size (the n of schedules keyed on identifiers).
func VirtualIDSpace(n int) int { return (n + 1) * (n + 1) }

// vidEndpoints decodes a virtual id back to its endpoint identifiers.
func vidEndpoints(n, vid int) (lo, hi int) {
	return vid / (n + 1), vid % (n + 1)
}

// sharedEndpoint returns the common endpoint identifier of two incident
// edges given as virtual ids.
func sharedEndpoint(n, e, f int) (int, bool) {
	a, b := vidEndpoints(n, e)
	c, d := vidEndpoints(n, f)
	switch {
	case a == c || a == d:
		return a, true
	case b == c || b == d:
		return b, true
	}
	return 0, false
}

// Run simulates algo — a vertex algorithm for L(G) using exactly
// virtualRounds communication rounds at every vertex — on the network G.
func Run[T any](g *graph.Graph, virtualRounds int, algo func(dist.Process) T, opts ...dist.Option) (*Result[T], error) {
	n := g.N()
	deltaL := lineGraphDegree(g)
	type hostOut struct {
		vids []int
		vals []T
	}
	runSeed := dist.SeedOf(opts...)
	res, err := dist.Run(g, func(v dist.Process) hostOut {
		h := newHost[T](v, n, deltaL, virtualRounds, runSeed, algo)
		return hostOut{vids: h.ownedVIDs, vals: h.run()}
	}, opts...)
	if err != nil {
		return nil, err
	}
	// Map host outputs back to edge ids.
	out := &Result[T]{
		Outputs:       make([]T, g.M()),
		Physical:      res.Stats,
		VirtualRounds: virtualRounds,
	}
	byVID := make(map[int]T, g.M())
	for _, ho := range res.Outputs {
		for i, vid := range ho.vids {
			byVID[vid] = ho.vals[i]
		}
	}
	for id, e := range g.Edges() {
		vid := VirtualID(n, g.ID(e.U), g.ID(e.V))
		val, ok := byVID[vid]
		if !ok {
			return nil, fmt.Errorf("lgsim: no output for edge %d (vid %d)", id, vid)
		}
		out.Outputs[id] = val
	}
	return out, nil
}

// lineGraphDegree returns Δ(L(G)) = max over edges of deg(u)+deg(w)−2.
func lineGraphDegree(g *graph.Graph) int {
	d := 0
	for _, e := range g.Edges() {
		if v := g.Deg(e.U) + g.Deg(e.V) - 2; v > d {
			d = v
		}
	}
	return d
}

// host is the per-physical-vertex simulation engine.
type host[T any] struct {
	v             dist.Process
	n             int
	deltaL        int
	virtualRounds int
	runSeed       int64
	algo          func(dist.Process) T

	portOfID map[int]int // physical neighbor id -> port
	myEdges  []int       // vids of all incident edges, sorted
	vidPort  map[int]int // incident edge vid -> physical port to the other endpoint

	ownedVIDs []int // vids this vertex hosts (it is the smaller endpoint)
	procs     map[int]*vproc[T]
}

// vproc is the virtual Process handle handed to the algorithm.
type vproc[T any] struct {
	vid    int
	n      int // VirtualIDSpace(n of G)
	deltaL int
	nbrs   []int       // neighbor vids, sorted (L(G) ports)
	portOf map[int]int // vid -> port
	rng    *rand.Rand
	seed   int64

	outCh  chan [][]byte
	inCh   chan [][]byte
	doneCh chan T
	failCh chan interface{}
}

var _ dist.Process = (*vproc[int])(nil)

func (p *vproc[T]) ID() int                 { return p.vid }
func (p *vproc[T]) N() int                  { return p.n }
func (p *vproc[T]) MaxDegree() int          { return p.deltaL }
func (p *vproc[T]) Deg() int                { return len(p.nbrs) }
func (p *vproc[T]) NeighborID(port int) int { return p.nbrs[port] }

func (p *vproc[T]) Round(out [][]byte) [][]byte {
	if out != nil && len(out) != len(p.nbrs) {
		panic(fmt.Sprintf("lgsim: virtual vertex %d sent %d messages on %d ports", p.vid, len(out), len(p.nbrs)))
	}
	p.outCh <- out
	return <-p.inCh
}

func (p *vproc[T]) Broadcast(msg []byte) [][]byte {
	if msg == nil {
		return p.Round(nil)
	}
	out := make([][]byte, len(p.nbrs))
	for i := range out {
		out[i] = msg
	}
	return p.Round(out)
}

func (p *vproc[T]) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.seed))
	}
	return p.rng
}

func newHost[T any](v dist.Process, n, deltaL, virtualRounds int, runSeed int64, algo func(dist.Process) T) *host[T] {
	h := &host[T]{
		v: v, n: n, deltaL: deltaL, virtualRounds: virtualRounds, runSeed: runSeed, algo: algo,
		portOfID: make(map[int]int, v.Deg()),
		vidPort:  make(map[int]int, v.Deg()),
		procs:    make(map[int]*vproc[T]),
	}
	for p := 0; p < v.Deg(); p++ {
		h.portOfID[v.NeighborID(p)] = p
	}
	return h
}

// run performs the setup round, builds the hosted virtual vertices, then
// drives 2 physical rounds per virtual round. It returns the outputs of the
// hosted virtual vertices, parallel to ownedVIDs.
func (h *host[T]) run() []T {
	v := h.v
	deg := v.Deg()
	// Setup: exchange incidence lists so both endpoints of every edge know
	// the L(G) neighborhoods.
	var w wire.Writer
	ids := make([]int, deg)
	for p := 0; p < deg; p++ {
		ids[p] = v.NeighborID(p)
	}
	w.Ints(ids)
	setup := v.Broadcast(w.Bytes())
	nbrLists := make([][]int, deg)
	for p := 0; p < deg; p++ {
		if setup[p] == nil {
			continue
		}
		r := wire.NewReader(setup[p])
		nbrLists[p] = r.Ints()
		if r.Err() != nil {
			panic("lgsim: bad incidence list: " + r.Err().Error())
		}
	}
	// Incident edges and ownership.
	for p := 0; p < deg; p++ {
		vid := VirtualID(h.n, v.ID(), v.NeighborID(p))
		h.myEdges = append(h.myEdges, vid)
		h.vidPort[vid] = p
	}
	sort.Ints(h.myEdges)
	results := make(map[int]T)
	var active int
	for p := 0; p < deg; p++ {
		nid := v.NeighborID(p)
		if v.ID() > nid {
			continue // the other endpoint hosts this edge
		}
		vid := VirtualID(h.n, v.ID(), nid)
		h.ownedVIDs = append(h.ownedVIDs, vid)
		// L(G) neighbors of v_e: other edges at this vertex + edges at the
		// far endpoint.
		seen := map[int]bool{vid: true}
		var nbrs []int
		for q := 0; q < deg; q++ {
			if q == p {
				continue
			}
			f := VirtualID(h.n, v.ID(), v.NeighborID(q))
			if !seen[f] {
				seen[f] = true
				nbrs = append(nbrs, f)
			}
		}
		for _, z := range nbrLists[p] {
			if z == v.ID() {
				continue
			}
			f := VirtualID(h.n, nid, z)
			if !seen[f] {
				seen[f] = true
				nbrs = append(nbrs, f)
			}
		}
		sort.Ints(nbrs)
		portOf := make(map[int]int, len(nbrs))
		for i, f := range nbrs {
			portOf[f] = i
		}
		vp := &vproc[T]{
			vid: vid, n: VirtualIDSpace(h.n), deltaL: h.deltaL,
			nbrs: nbrs, portOf: portOf,
			seed:   dist.VertexSeed(h.runSeed, vid),
			outCh:  make(chan [][]byte),
			inCh:   make(chan [][]byte),
			doneCh: make(chan T, 1),
			failCh: make(chan interface{}, 1),
		}
		h.procs[vid] = vp
		active++
		go func() {
			defer func() {
				if r := recover(); r != nil {
					vp.failCh <- r
				}
			}()
			vp.doneCh <- h.algo(vp)
		}()
	}
	sort.Ints(h.ownedVIDs)

	// Drive the virtual rounds. The host participates in every physical
	// round of the budget even after all of its own virtual vertices have
	// halted: it may still be the relay on other hosts' 2-hop paths.
	liveOut := make(map[int][][]byte, active)
	for r := 0; r < h.virtualRounds; r++ {
		// Gather outboxes (or completions) from every still-active virtual.
		for _, vid := range h.ownedVIDs {
			if _, done := results[vid]; done {
				continue
			}
			vp := h.procs[vid]
			select {
			case out := <-vp.outCh:
				liveOut[vid] = out
			case val := <-vp.doneCh:
				results[vid] = val
				delete(liveOut, vid)
			case r := <-vp.failCh:
				// Re-panic in the host goroutine so dist converts it into a
				// run error (the other hosted goroutines are abandoned).
				panic(fmt.Sprintf("virtual vertex %d: %v", vid, r))
			}
		}
		h.relay(liveOut, results)
	}
	// Collect stragglers that finish exactly at the round budget. A virtual
	// vertex that needs more rounds than the budget indicates a caller bug
	// (the algorithm must be lockstep with exactly virtualRounds rounds) and
	// would block here; the budget contract is documented on Run.
	for _, vid := range h.ownedVIDs {
		if _, done := results[vid]; !done {
			select {
			case val := <-h.procs[vid].doneCh:
				results[vid] = val
			case r := <-h.procs[vid].failCh:
				panic(fmt.Sprintf("virtual vertex %d: %v", vid, r))
			}
		}
	}
	out := make([]T, len(h.ownedVIDs))
	for i, vid := range h.ownedVIDs {
		out[i] = results[vid]
	}
	return out
}

// bundleEntry is one virtual message in flight.
type bundleEntry struct {
	src, dst int
	payload  []byte
}

// relay performs the two physical phases of one virtual round and feeds the
// inboxes back to the still-active hosted virtual vertices.
func (h *host[T]) relay(liveOut map[int][][]byte, results map[int]T) {
	v := h.v
	deg := v.Deg()
	// Phase A: route each virtual message toward the shared endpoint.
	phaseA := make([][]bundleEntry, deg) // per physical port
	var direct []bundleEntry             // shared endpoint is this vertex
	for vid, out := range liveOut {
		if out == nil {
			continue
		}
		vp := h.procs[vid]
		for port, payload := range out {
			if payload == nil {
				continue
			}
			dst := vp.nbrs[port]
			x, ok := sharedEndpoint(h.n, vid, dst)
			if !ok {
				panic("lgsim: virtual neighbors share no endpoint")
			}
			entry := bundleEntry{src: vid, dst: dst, payload: payload}
			if x == v.ID() {
				direct = append(direct, entry)
			} else {
				// x is the far endpoint of edge vid.
				phaseA[h.vidPort[vid]] = append(phaseA[h.vidPort[vid]], entry)
			}
		}
	}
	inA := v.Round(encodeBundles(phaseA, deg))
	// Phase B: forward. Entries from phase A arrive at the shared endpoint
	// (this vertex); together with the direct entries, send each to the
	// host of its destination edge.
	phaseB := make([][]bundleEntry, deg)
	var local []bundleEntry
	routeToHost := func(e bundleEntry) {
		lo, hi := vidEndpoints(h.n, e.dst)
		hostID := lo // smaller endpoint hosts
		_ = hi
		if hostID == v.ID() {
			local = append(local, e)
			return
		}
		port, ok := h.portOfID[hostID]
		if !ok {
			// The host is the destination edge's other endpoint, which must
			// be adjacent to the shared endpoint (= this vertex).
			panic(fmt.Sprintf("lgsim: vertex %d cannot reach host %d of vid %d", v.ID(), hostID, e.dst))
		}
		phaseB[port] = append(phaseB[port], e)
	}
	for _, e := range direct {
		routeToHost(e)
	}
	for p := 0; p < deg; p++ {
		for _, e := range decodeBundle(inA[p]) {
			routeToHost(e)
		}
	}
	inB := v.Round(encodeBundles(phaseB, deg))
	// Deliver into hosted inboxes.
	inboxes := make(map[int][][]byte, len(liveOut))
	ensure := func(dst int) [][]byte {
		if box, ok := inboxes[dst]; ok {
			return box
		}
		vp, hosted := h.procs[dst]
		if !hosted {
			return nil
		}
		box := make([][]byte, len(vp.nbrs))
		inboxes[dst] = box
		return box
	}
	deliver := func(e bundleEntry) {
		vp, hosted := h.procs[e.dst]
		if !hosted {
			return // not ours (or owned by a halted vertex elsewhere)
		}
		if _, done := results[e.dst]; done {
			return // virtual vertex already halted: drop, as dist does
		}
		box := ensure(e.dst)
		port, ok := vp.portOf[e.src]
		if !ok {
			panic(fmt.Sprintf("lgsim: vid %d got message from non-neighbor %d", e.dst, e.src))
		}
		box[port] = e.payload
	}
	for _, e := range local {
		deliver(e)
	}
	for p := 0; p < deg; p++ {
		for _, e := range decodeBundle(inB[p]) {
			deliver(e)
		}
	}
	// Release the active virtual vertices with their inboxes.
	for vid := range liveOut {
		vp := h.procs[vid]
		box := inboxes[vid]
		if box == nil {
			box = make([][]byte, len(vp.nbrs))
		}
		vp.inCh <- box
	}
}

// encodeBundles turns per-port entry lists into physical messages.
func encodeBundles(bundles [][]bundleEntry, deg int) [][]byte {
	out := make([][]byte, deg)
	for p := 0; p < deg; p++ {
		if len(bundles[p]) == 0 {
			continue
		}
		var w wire.Writer
		w.Uint(uint64(len(bundles[p])))
		for _, e := range bundles[p] {
			w.Int(e.src)
			w.Int(e.dst)
			w.Raw(e.payload)
		}
		out[p] = w.Bytes()
	}
	return out
}

// decodeBundle parses a physical bundle message (nil yields no entries).
func decodeBundle(msg []byte) []bundleEntry {
	if msg == nil {
		return nil
	}
	r := wire.NewReader(msg)
	count := r.Uint()
	if r.Err() != nil || count > uint64(len(msg)) {
		panic("lgsim: bad bundle header")
	}
	entries := make([]bundleEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		src := r.Int()
		dst := r.Int()
		payload := r.Raw()
		entries = append(entries, bundleEntry{src: src, dst: dst, payload: payload})
	}
	if r.Err() != nil {
		panic("lgsim: bad bundle: " + r.Err().Error())
	}
	return entries
}
