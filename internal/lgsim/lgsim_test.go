package lgsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/wire"
)

func TestVirtualIDRoundTrip(t *testing.T) {
	n := 37
	seen := map[int]bool{}
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			vid := VirtualID(n, a, b)
			if vid != VirtualID(n, b, a) {
				t.Fatal("VirtualID not symmetric")
			}
			if seen[vid] {
				t.Fatalf("vid collision at (%d,%d)", a, b)
			}
			seen[vid] = true
			lo, hi := vidEndpoints(n, vid)
			if lo != a || hi != b {
				t.Fatalf("decode (%d,%d) -> (%d,%d)", a, b, lo, hi)
			}
		}
	}
}

func TestSharedEndpoint(t *testing.T) {
	n := 10
	e := VirtualID(n, 2, 5)
	f := VirtualID(n, 5, 9)
	x, ok := sharedEndpoint(n, e, f)
	if !ok || x != 5 {
		t.Fatalf("shared = %d,%v; want 5", x, ok)
	}
	g := VirtualID(n, 3, 7)
	if _, ok := sharedEndpoint(n, e, g); ok {
		t.Fatal("disjoint edges reported as sharing an endpoint")
	}
}

// TestEchoProtocol runs a 2-virtual-round protocol: every virtual vertex
// broadcasts its id, then broadcasts the max received id; the outputs must
// equal a native run on L(G).
func TestEchoProtocol(t *testing.T) {
	g := graph.GNM(24, 80, 3)
	algo := func(v dist.Process) int {
		best := v.ID()
		for round := 0; round < 2; round++ {
			in := v.Broadcast(wire.EncodeInts(best))
			for _, msg := range in {
				if msg == nil {
					continue
				}
				vals, err := wire.DecodeInts(msg, 1)
				if err != nil {
					panic(err)
				}
				if vals[0] > best {
					best = vals[0]
				}
			}
		}
		return best
	}
	sim, err := Run(g, 2, algo)
	if err != nil {
		t.Fatal(err)
	}
	// Native run on the explicitly constructed line graph, with the same
	// virtual identifier assignment.
	lg := g.LineGraph()
	ids := make([]int, lg.N())
	vidOf := make([]int, lg.N())
	for i, e := range g.Edges() {
		vidOf[i] = VirtualID(g.N(), g.ID(e.U), g.ID(e.V))
	}
	// Rank vids to build a permutation for lg's identifiers that preserves
	// the vid ORDER (the CV/linial algorithms only depend on relative order
	// plus the id space bound; for exact equality we run the algo on lg with
	// overridden behavior instead — simpler: compare against a direct
	// simulation of the same protocol on lg using vids).
	_ = ids
	native := make([]int, lg.N())
	for i := range native {
		native[i] = vidOf[i]
	}
	for round := 0; round < 2; round++ {
		next := make([]int, lg.N())
		copy(next, native)
		for v := 0; v < lg.N(); v++ {
			for _, u := range lg.Neighbors(v) {
				if native[u] > next[v] {
					next[v] = native[u]
				}
			}
		}
		native = next
	}
	for id := range sim.Outputs {
		if sim.Outputs[id] != native[id] {
			t.Fatalf("edge %d: simulated %d vs native %d", id, sim.Outputs[id], native[id])
		}
	}
	// Lemma 5.2 cost: 2T + 1 setup round.
	if want := 2*2 + 1; sim.Physical.Rounds != want {
		t.Fatalf("physical rounds = %d, want %d", sim.Physical.Rounds, want)
	}
}

// TestLinialOnSimulatedLineGraph runs the Linial chain on virtual L(G)
// vertices and checks the result is a legal edge coloring of G with an
// O(Δ_L²) palette.
func TestLinialOnSimulatedLineGraph(t *testing.T) {
	g := graph.GNM(30, 90, 5)
	n := g.N()
	deltaL := lineGraphDegree(g)
	steps := linial.LegalSchedule(VirtualIDSpace(n), deltaL)
	algo := func(v dist.Process) int {
		return linial.RunChain(steps, v.ID(), linial.BroadcastExchange(v))
	}
	sim, err := Run(g, len(steps), algo)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckEdgeColoring(g, sim.Outputs); err != nil {
		t.Fatal(err)
	}
	if mc := graph.MaxColor(sim.Outputs); mc > 40*deltaL*deltaL+50 {
		t.Fatalf("palette %d not O(Δ_L²)", mc)
	}
	if sim.Physical.Rounds != 2*len(steps)+1 {
		t.Fatalf("rounds = %d, want 2T+1 = %d", sim.Physical.Rounds, 2*len(steps)+1)
	}
}

// TestLegalColorSimulatedMatchesTheorem53 is the full Theorem 5.3 pipeline:
// the vertex Procedure Legal-Color, run on simulated L(G) vertices hosted on
// G, must produce a legal edge coloring of G within the plan's palette.
func TestLegalColorSimulatedMatchesTheorem53(t *testing.T) {
	g := graph.GNM(28, 84, 7)
	n := g.N()
	deltaL := lineGraphDegree(g)
	pl, err := core.AutoPlan(deltaL, 2, 2, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := core.LegalColorProcess(VirtualIDSpace(n), deltaL, pl, core.StartAux)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := core.LegalRounds(VirtualIDSpace(n), deltaL, pl, core.StartAux)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Run(g, rounds, algo)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckEdgeColoring(g, sim.Outputs); err != nil {
		t.Fatal(err)
	}
	if mc := graph.MaxColor(sim.Outputs); mc > pl.TotalPalette() {
		t.Fatalf("palette %d exceeds bound %d", mc, pl.TotalPalette())
	}
	if sim.Physical.Rounds != 2*rounds+1 {
		t.Fatalf("physical rounds = %d, want 2T+1 = %d", sim.Physical.Rounds, 2*rounds+1)
	}
	// The ×Δ message blowup should be visible: bundles carry several
	// virtual messages.
	if sim.Physical.MaxMessageBytes <= 4 {
		t.Fatalf("expected bundled messages, max is only %dB", sim.Physical.MaxMessageBytes)
	}
}

// TestMessageBlowupBounded verifies the Lemma 5.2 size accounting: a bundle
// carries at most 2(Δ-1) virtual messages of the underlying algorithm.
func TestMessageBlowupBounded(t *testing.T) {
	g := graph.Complete(10)
	algo := func(v dist.Process) int {
		v.Broadcast(wire.EncodeInts(v.ID()))
		return 0
	}
	sim, err := Run(g, 1, algo)
	if err != nil {
		t.Fatal(err)
	}
	// Each virtual message is ~4-5B plus ~5B of addressing; a physical edge
	// carries bundles from up to Δ_L-ish messages. Just check the bound is
	// proportional to Δ·(payload+header).
	deltaL := lineGraphDegree(g)
	if sim.Physical.MaxMessageBytes > deltaL*24 {
		t.Fatalf("bundle size %dB exceeds Δ_L·24 = %d", sim.Physical.MaxMessageBytes, deltaL*24)
	}
}

// TestEarlyVirtualHalt has half the virtual vertices stop after one round
// while the rest run three; relays must keep flowing.
func TestEarlyVirtualHalt(t *testing.T) {
	g := graph.GNM(20, 60, 9)
	algo := func(v dist.Process) int {
		rounds := 1
		if v.ID()%2 == 0 {
			rounds = 3
		}
		last := 0
		for i := 0; i < rounds; i++ {
			in := v.Broadcast(wire.EncodeInts(v.ID() + i))
			for _, msg := range in {
				if msg != nil {
					vals, _ := wire.DecodeInts(msg, 1)
					last = vals[0]
				}
			}
		}
		return last
	}
	if _, err := Run(g, 3, algo); err != nil {
		t.Fatal(err)
	}
}

func TestLineGraphDegree(t *testing.T) {
	g := graph.Star(6) // all 5 edges share the center: Δ_L = 4
	if d := lineGraphDegree(g); d != 4 {
		t.Fatalf("Δ_L = %d, want 4", d)
	}
	p := graph.Path(3) // two edges sharing one vertex: Δ_L = 1
	if d := lineGraphDegree(p); d != 1 {
		t.Fatalf("Δ_L = %d, want 1", d)
	}
}
