package integration

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun closes the "built but never executed" gap: each example
// under examples/ is compiled and run, and must exit 0. The examples are the
// repository's doc-facing entry points; a panic or non-zero exit in one of
// them is a regression even when every unit test passes.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles five binaries; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(root, "examples"))
	if err != nil {
		t.Fatal(err)
	}
	bindir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command(goBin, "build", "-o", bin, "./examples/"+name)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			cmd.Dir = t.TempDir() // examples that write files must not dirty the repo
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("example exited non-zero: %v\n%s", err, out)
			}
		})
	}
}
