// Package integration_test runs cross-module, end-to-end validations: every
// edge-coloring algorithm against every graph family, adversarial identifier
// assignments, level-by-level invariants of the Legal-Color recursion, and
// equivalence between the direct §5 variant and the Lemma 5.2 simulation
// pipeline.
package integration_test

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/defective"
	"repro/internal/dist"
	"repro/internal/edgecolor"
	"repro/internal/graph"
	"repro/internal/panconesi"
)

// families are the shared integration workloads.
func families() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnm":       graph.GNM(72, 432, 1),
		"sparse":    graph.GNM(120, 180, 2),
		"regular":   graph.RandomRegular(48, 10, 3),
		"tree":      graph.RandomTree(100, 4),
		"clique":    graph.Complete(14),
		"bipartite": graph.CompleteBipartite(9, 12),
		"star":      graph.Star(25),
		"geometric": graph.Geometric(150, 0.12, 5),
		"fig1":      graph.CliquePlusPendants(12),
		"shuffled":  graph.ShuffledIDs(graph.GNM(72, 432, 6), 99),
	}
}

// edgeAlgorithms enumerates every legal-edge-coloring entry point with its
// palette promise.
type edgeAlgorithm struct {
	name    string
	run     func(g *graph.Graph) ([]int, int, error) // colors, paletteBound
	skipFor func(g *graph.Graph) bool
}

func edgeAlgorithms() []edgeAlgorithm {
	return []edgeAlgorithm{
		{
			name: "panconesi-rizzi",
			run: func(g *graph.Graph) ([]int, int, error) {
				res, err := panconesi.EdgeColoring(g)
				if err != nil {
					return nil, 0, err
				}
				colors, err := graph.MergePortColors(g, res.Outputs)
				return colors, 2*g.MaxDegree() - 1, err
			},
		},
		{
			name: "greedy",
			run: func(g *graph.Graph) ([]int, int, error) {
				res, err := baseline.GreedyEdgeColoring(g)
				if err != nil {
					return nil, 0, err
				}
				colors, err := graph.MergePortColors(g, res.Outputs)
				return colors, 2*g.MaxDegree() - 1, err
			},
		},
		{
			name: "randomized-trial",
			run: func(g *graph.Graph) ([]int, int, error) {
				res, err := baseline.RandomizedTrialEdgeColoring(g, dist.WithSeed(5))
				if err != nil {
					return nil, 0, err
				}
				colors, err := graph.MergePortColors(g, res.Outputs)
				return colors, 2*g.MaxDegree() - 1, err
			},
		},
		{
			name: "be-wide",
			run: func(g *graph.Graph) ([]int, int, error) {
				pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
				if err != nil {
					return nil, 0, err
				}
				res, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide)
				if err != nil {
					return nil, 0, err
				}
				colors, err := graph.MergePortColors(g, res.Outputs)
				return colors, pl.TotalPalette(), err
			},
		},
		{
			name: "be-short",
			run: func(g *graph.Graph) ([]int, int, error) {
				pl, err := core.AutoPlan(g.MaxDegree(), 2, 1, 12, true)
				if err != nil {
					return nil, 0, err
				}
				res, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Short)
				if err != nil {
					return nil, 0, err
				}
				colors, err := graph.MergePortColors(g, res.Outputs)
				return colors, pl.TotalPalette(), err
			},
		},
		{
			name: "be-simulated",
			run: func(g *graph.Graph) ([]int, int, error) {
				lg := g.LineGraph()
				pl, err := core.AutoPlan(maxInt(lg.MaxDegree(), 1), 2, 2, 6, false)
				if err != nil {
					return nil, 0, err
				}
				sim, err := edgecolor.ViaLineGraphSimulation(g, pl, core.StartAux)
				if err != nil {
					return nil, 0, err
				}
				return sim.EdgeColors, pl.TotalPalette(), nil
			},
			skipFor: func(g *graph.Graph) bool { return g.M() > 500 }, // L(G) too big
		},
		{
			name: "be-true-sim",
			run: func(g *graph.Graph) ([]int, int, error) {
				deltaL := 1
				for _, e := range g.Edges() {
					if d := g.Deg(e.U) + g.Deg(e.V) - 2; d > deltaL {
						deltaL = d
					}
				}
				pl, err := core.AutoPlan(deltaL, 2, 2, 6, false)
				if err != nil {
					return nil, 0, err
				}
				sim, err := edgecolor.TrueSimulation(g, pl, core.StartAux)
				if err != nil {
					return nil, 0, err
				}
				return sim.EdgeColors, pl.TotalPalette(), nil
			},
			skipFor: func(g *graph.Graph) bool { return g.M() > 300 },
		},
		{
			name: "cor62-randomized",
			run: func(g *graph.Graph) ([]int, int, error) {
				res, err := edgecolor.RandomizedEdgeColoring(g, 2, 6, 10, edgecolor.Wide, dist.WithSeed(9))
				if err != nil {
					return nil, 0, err
				}
				colors, err := graph.MergePortColors(g, res.Outputs)
				if err != nil {
					return nil, 0, err
				}
				bound, err := edgecolor.RandomizedPaletteBound(g, 2, 6, 10)
				return colors, bound, err
			},
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestEdgeColoringMatrix is the full algorithm × family legality matrix.
func TestEdgeColoringMatrix(t *testing.T) {
	for fname, g := range families() {
		if g.M() == 0 {
			continue
		}
		for _, alg := range edgeAlgorithms() {
			if alg.skipFor != nil && alg.skipFor(g) {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s", alg.name, fname), func(t *testing.T) {
				colors, bound, err := alg.run(g)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.CheckEdgeColoring(g, colors); err != nil {
					t.Fatal(err)
				}
				if mc := graph.MaxColor(colors); mc > bound {
					t.Fatalf("max color %d exceeds promised palette %d", mc, bound)
				}
			})
		}
	}
}

// TestLegalColorLevelInvariants replays the Theorem 3.7 invariant level by
// level: running the standalone edge Defective-Color and checking that every
// ψ-class subgraph has degree at most the next level's Λ′.
func TestLegalColorLevelInvariants(t *testing.T) {
	g := graph.TargetDegreeGNM(256, 48, 7)
	delta := g.MaxDegree()
	b, p := 1, 12
	res, err := edgecolor.DefectiveEdgeColoring(g, b, p, edgecolor.Wide)
	if err != nil {
		t.Fatal(err)
	}
	psis, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	lamNext, _ := core.EdgeLevelBounds(delta, b, p)
	// Class degree at a vertex = number of incident edges sharing ψ; the
	// line-graph degree of the class subgraph is what Λ′ bounds.
	for id, e := range g.Edges() {
		same := 0
		for _, other := range g.IncidentEdgeIDs(e.U) {
			if int(other) != id && psis[other] == psis[id] {
				same++
			}
		}
		for _, other := range g.IncidentEdgeIDs(e.V) {
			if int(other) != id && psis[other] == psis[id] {
				same++
			}
		}
		if same > lamNext {
			t.Fatalf("edge %d: class degree %d exceeds Λ' = %d (Thm 3.7/§5)", id, same, lamNext)
		}
	}
}

// TestVertexAlgorithmsOnHypergraphPipeline chains generators and colorers:
// r-hypergraph -> line graph -> Legal-Color with c=r, for several r.
func TestVertexAlgorithmsOnHypergraphPipeline(t *testing.T) {
	for _, r := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			h := graph.RandomHypergraph(50, 80, r, int64(r))
			lh := h.LineGraph()
			if ni := graph.NeighborhoodIndependence(lh); ni > r {
				t.Fatalf("I(L(H)) = %d > r = %d", ni, r)
			}
			pl, err := core.AutoPlan(maxInt(lh.MaxDegree(), 1), r, 2, 4*r+1, false)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.LegalColoring(lh, pl, core.StartAux)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.CheckVertexColoring(lh, res.Outputs); err != nil {
				t.Fatal(err)
			}
			if mc := graph.MaxColor(res.Outputs); mc > pl.TotalPalette() {
				t.Fatalf("palette %d exceeds %d", mc, pl.TotalPalette())
			}
		})
	}
}

// TestAdversarialIDs recolors the same graph under several identifier
// permutations: results must stay legal and within palette bounds, and the
// deterministic algorithms must be reproducible per assignment.
func TestAdversarialIDs(t *testing.T) {
	base := graph.GNM(64, 384, 11)
	for _, seed := range []int64{0, 1, 2} {
		g := base
		if seed > 0 {
			g = graph.ShuffledIDs(base, seed)
		}
		pl, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := edgecolor.LegalEdgeColoring(g, pl, edgecolor.Wide)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Stats != r2.Stats {
			t.Fatalf("seed %d: deterministic algorithm not reproducible", seed)
		}
		colors, err := graph.MergePortColors(g, r1.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckEdgeColoring(g, colors); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDefectiveStackConsistency checks the two defective subroutines the
// recursion alternates between (Kuhn vertex chain and Cor 5.4 edge step)
// against their bounds on one shared workload.
func TestDefectiveStackConsistency(t *testing.T) {
	g := graph.TargetDegreeGNM(200, 32, 13)
	delta := g.MaxDegree()
	// Cor 5.4 on G.
	for _, pp := range []int{4, 8} {
		res, err := defective.EdgeColoring(g, pp)
		if err != nil {
			t.Fatal(err)
		}
		colors, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckDefectiveEdgeColoring(g, colors, 4*((delta+pp-1)/pp), pp*pp); err != nil {
			t.Fatalf("cor54 p'=%d: %v", pp, err)
		}
	}
	// Kuhn vertex chain on L(G).
	lg := g.LineGraph()
	deltaL := lg.MaxDegree()
	for _, p := range []int{4, 8} {
		res, err := defective.VertexColoring(lg, p)
		if err != nil {
			t.Fatal(err)
		}
		if d := graph.VertexDefect(lg, res.Outputs); d > deltaL/p {
			t.Fatalf("kuhn p=%d: defect %d exceeds ⌊Δ/p⌋=%d", p, d, deltaL/p)
		}
	}
	// Alg 1 on L(G) (bounded NI): Cor 3.8 bound.
	for _, p := range []int{4, 8} {
		res, err := core.DefectiveColoring(lg, 2, 2, p)
		if err != nil {
			t.Fatal(err)
		}
		bound := core.DefectiveColoringBound(deltaL, 2, 2, p)
		if err := graph.CheckDefectiveVertexColoring(lg, res.Outputs, bound, p); err != nil {
			t.Fatalf("alg1 p=%d: %v", p, err)
		}
	}
}

// TestExtensionStack runs the §6 extensions end to end on one workload.
func TestExtensionStack(t *testing.T) {
	g := graph.TargetDegreeGNM(160, 32, 17)
	if _, err := edgecolor.TradeoffEdgeColoring(g, 2, 6, g.MaxDegree()/2, edgecolor.Wide); err != nil {
		t.Fatal(err)
	}
	lg := graph.GNM(40, 200, 18).LineGraph()
	if _, err := core.TradeoffColoring(lg, 2, 2, 5, maxInt(lg.MaxDegree()/2, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RandomizedColoring(lg, 2, 2, 5, 8, dist.WithSeed(3)); err != nil {
		t.Fatal(err)
	}
}
