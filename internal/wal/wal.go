// Package wal is the per-session mutation write-ahead log that makes dynamic
// coloring sessions durable: every committed mutation appends one record
// (sequence number, op, post-commit graph fingerprint), and a restarted
// process rebuilds the session byte-identically by replaying the log from the
// base graph (dynamic.Replay). Determinism is what makes the log sufficient —
// the maintained coloring is a pure function of the mutation sequence, so the
// ops alone reconstruct the exact state, and the recorded fingerprints prove
// it record by record.
//
// On-disk format: a header record followed by mutation records, each framed
// as
//
//	uvarint(len(payload)) | payload | crc32c(payload) (4 bytes, little endian)
//
// with payloads in the repository's wire codec (internal/wire). Appends go
// straight to the file descriptor (no userspace buffering), so a crashed
// process loses at most what the OS page cache held; Options.Sync trades
// throughput for fsync-per-append durability against power loss.
//
// Recovery distinguishes two failure shapes:
//
//   - a torn tail — the record under scan runs past end-of-file, or the
//     final record's checksum fails (a partial append that never finished).
//     Open truncates the file at the last good record and continues; the
//     lost suffix was never acknowledged;
//   - corruption — a record that is fully present and followed by more data
//     fails its checksum, decodes badly, or breaks sequence continuity.
//     That is not an interrupted append, so Open refuses with ErrCorrupt
//     rather than silently dropping acknowledged history.
//
// FuzzWALReplay pins the contract: arbitrary byte mutations of a valid log
// never panic and never yield a record that was not written — every open
// either returns a verified prefix (clean truncation) or an error.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/wire"
)

// ErrCorrupt reports a log whose damage is not a torn tail: a fully-present
// record failed its checksum, decoded badly, or broke seq continuity.
var ErrCorrupt = errors.New("wal: corrupt log")

// crcTable is the Castagnoli polynomial — hardware-accelerated on amd64 and
// arm64, and the conventional choice for storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecord bounds a single record's payload. Mutation records are tens of
// bytes and headers hundreds; the cap keeps a corrupted length prefix from
// asking Open to allocate gigabytes before the checksum can object.
const maxRecord = 1 << 20

// record type tags (first uvarint of every payload).
const (
	recHeader   = 1
	recMutation = 2
)

// headerTag versions the header payload.
const headerTag = "colord-wal-v1"

// Options configures a log's durability policy.
type Options struct {
	// Sync fsyncs after every append: a committed mutation survives power
	// loss, not just process death. Off, appends still reach the kernel
	// immediately (no userspace buffering), so a SIGKILL loses nothing and
	// only a machine crash can drop the tail.
	Sync bool
}

// Header identifies the session a log belongs to: replay rebuilds the base
// graph from Base and applies the records in order.
type Header struct {
	// Session is the session name the log was created under.
	Session string
	// Base is the session's starting graph.
	Base exp.GraphSpec
}

// Record is one committed mutation. Seq is 1-based and consecutive;
// Fingerprint is the edge-set fingerprint after the mutation committed — the
// proof obligation replay checks record by record.
type Record struct {
	Seq         int64
	Op          exp.Mutation
	Fingerprint graph.Fingerprint
}

// Log is an open write-ahead log positioned for appends. Append/Sync/Close
// serialize externally (the maintainer's commit lock); LastSeq and Size are
// safe to read concurrently (monitoring snapshots poll them mid-churn).
type Log struct {
	f       *os.File
	opts    Options
	lastSeq atomic.Int64
	size    atomic.Int64
	err     error // first append failure; latches (durability is broken)
}

// Create creates a fresh log at path (failing if one exists — a session's
// history must never be silently overwritten) and writes its header.
func Create(path string, hdr Header, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, opts: opts}
	frame := frameRecord(encodeHeader(hdr))
	if err := l.write(frame); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return l, nil
}

// Open reads an existing log: it validates every record (checksum, decode,
// seq continuity), truncates a torn tail, and returns the log positioned for
// appends plus the header and the verified records. Damage that is not a
// torn tail is ErrCorrupt — acknowledged history is never silently dropped.
func Open(path string, opts Options) (*Log, Header, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, Header{}, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, Header{}, nil, err
	}
	hdr, recs, good, err := Scan(data)
	if err != nil {
		f.Close()
		return nil, Header{}, nil, err
	}
	if good < int64(len(data)) {
		// Torn tail: drop the unacknowledged suffix and continue from the
		// last good record.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, Header{}, nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, Header{}, nil, err
	}
	l := &Log{f: f, opts: opts}
	l.size.Store(good)
	if n := len(recs); n > 0 {
		l.lastSeq.Store(recs[n-1].Seq)
	}
	return l, hdr, recs, nil
}

// Scan parses a log image: the in-memory core of Open, exported so recovery
// logic (and the fuzz harness) can run against raw bytes. It returns the
// header, the verified records, and the byte offset of the first torn (and
// therefore truncatable) byte; good == len(data) means the log is clean.
func Scan(data []byte) (hdr Header, recs []Record, good int64, err error) {
	off := 0
	first := true
	var lastSeq int64
	for off < len(data) {
		payload, next, st := readFrame(data, off)
		if st == frameTorn {
			if first {
				// The header itself is torn (a crash mid-Create): with no
				// complete header there is no session to recover, so this is
				// not a truncatable tail.
				return Header{}, nil, 0, fmt.Errorf("%w: no header record", ErrCorrupt)
			}
			return hdr, recs, int64(off), nil
		}
		if st == frameCorrupt {
			return Header{}, nil, 0, fmt.Errorf("%w: record at offset %d", ErrCorrupt, off)
		}
		if first {
			h, err := decodeHeader(payload)
			if err != nil {
				// An undecodable first record that extends to EOF is a torn
				// header append — but then no record was acknowledged, and
				// treating it as corruption keeps Create's crash window
				// (header half-written) explicit for the caller.
				return Header{}, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			hdr, first = h, false
		} else {
			rec, err := decodeMutation(payload)
			if err != nil {
				return Header{}, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if rec.Seq != lastSeq+1 {
				return Header{}, nil, 0, fmt.Errorf("%w: record seq %d after %d", ErrCorrupt, rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
			recs = append(recs, rec)
		}
		off = next
	}
	if first {
		return Header{}, nil, 0, fmt.Errorf("%w: no header record", ErrCorrupt)
	}
	return hdr, recs, int64(off), nil
}

type frameStatus int

const (
	frameOK frameStatus = iota
	// frameTorn: the record runs past EOF, or it is the final record and its
	// checksum fails — an interrupted append, truncatable.
	frameTorn
	// frameCorrupt: the record is fully present, more data follows, and the
	// checksum fails — damage to acknowledged history.
	frameCorrupt
)

// readFrame parses one framed record at off. next is the offset after the
// frame (valid only for frameOK).
func readFrame(data []byte, off int) (payload []byte, next int, st frameStatus) {
	n, w := uvarint(data[off:])
	if w <= 0 {
		return nil, 0, frameTorn // length prefix runs past EOF
	}
	if n > maxRecord {
		// A length this large was never written; whether a flipped bit or a
		// torn multi-byte prefix, nothing after it can be framed.
		return nil, 0, frameTorn
	}
	body := off + w
	end := body + int(n) + 4
	if end > len(data) {
		return nil, 0, frameTorn // record runs past EOF: interrupted append
	}
	payload = data[body : body+int(n)]
	sum := uint32(data[end-4]) | uint32(data[end-3])<<8 | uint32(data[end-2])<<16 | uint32(data[end-1])<<24
	if crc32.Checksum(payload, crcTable) != sum {
		if end == len(data) {
			return nil, 0, frameTorn // final record: a torn write, not damage
		}
		return nil, 0, frameCorrupt
	}
	return payload, end, frameOK
}

// uvarint is binary.Uvarint constrained to int-sized results.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if i == 10 {
			return 0, -1
		}
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

// frameRecord wraps a payload in the length-prefix + checksum frame.
func frameRecord(payload []byte) []byte {
	var w wire.Writer
	w.Uint(uint64(len(payload)))
	frame := append(w.Bytes(), payload...)
	sum := crc32.Checksum(payload, crcTable)
	return append(frame, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

func encodeHeader(hdr Header) []byte {
	var w wire.Writer
	w.Uint(recHeader)
	w.String(headerTag)
	w.String(hdr.Session)
	w.String(hdr.Base.Family)
	w.Int(hdr.Base.N).Int(hdr.Base.M).Int(hdr.Base.Deg)
	w.Uint(uint64(hdr.Base.Seed))
	return w.Bytes()
}

func decodeHeader(payload []byte) (Header, error) {
	r := wire.NewReader(payload)
	if t := r.Uint(); t != recHeader {
		return Header{}, fmt.Errorf("first record has type %d, want header (%d)", t, recHeader)
	}
	if tag := r.ReadString(); tag != headerTag {
		return Header{}, fmt.Errorf("header tag %q, want %q", tag, headerTag)
	}
	var hdr Header
	hdr.Session = r.ReadString()
	hdr.Base.Family = r.ReadString()
	hdr.Base.N, hdr.Base.M, hdr.Base.Deg = r.Int(), r.Int(), r.Int()
	hdr.Base.Seed = int64(r.Uint())
	if err := r.Err(); err != nil {
		return Header{}, fmt.Errorf("header: %w", err)
	}
	if r.Remaining() != 0 {
		return Header{}, fmt.Errorf("header: %d trailing bytes", r.Remaining())
	}
	return hdr, nil
}

func encodeMutation(rec Record) []byte {
	var w wire.Writer
	w.Uint(recMutation)
	w.Uint(uint64(rec.Seq))
	op := uint64(0)
	if rec.Op.Op == exp.OpDelete {
		op = 1
	}
	w.Uint(op)
	w.Int(rec.Op.U).Int(rec.Op.V)
	w.Raw(rec.Fingerprint[:])
	return w.Bytes()
}

func decodeMutation(payload []byte) (Record, error) {
	r := wire.NewReader(payload)
	if t := r.Uint(); t != recMutation {
		return Record{}, fmt.Errorf("record type %d, want mutation (%d)", t, recMutation)
	}
	var rec Record
	rec.Seq = int64(r.Uint())
	op := r.Uint()
	switch op {
	case 0:
		rec.Op.Op = exp.OpInsert
	case 1:
		rec.Op.Op = exp.OpDelete
	default:
		return Record{}, fmt.Errorf("record op code %d", op)
	}
	rec.Op.U, rec.Op.V = r.Int(), r.Int()
	fp := r.Raw()
	if err := r.Err(); err != nil {
		return Record{}, fmt.Errorf("mutation record: %w", err)
	}
	if len(fp) != len(rec.Fingerprint) {
		return Record{}, fmt.Errorf("mutation record fingerprint is %d bytes, want %d", len(fp), len(rec.Fingerprint))
	}
	copy(rec.Fingerprint[:], fp)
	if rec.Seq <= 0 {
		return Record{}, fmt.Errorf("mutation record seq %d", rec.Seq)
	}
	if r.Remaining() != 0 {
		return Record{}, fmt.Errorf("mutation record: %d trailing bytes", r.Remaining())
	}
	return rec, nil
}

// Append writes one mutation record (and fsyncs it under Options.Sync). The
// record's Seq must continue the log's sequence. After any failure the log
// latches broken: durability can no longer be promised, so every later
// Append reports the first error.
func (l *Log) Append(rec Record) error {
	if l.err != nil {
		return l.err
	}
	if last := l.lastSeq.Load(); rec.Seq != last+1 {
		return fmt.Errorf("wal: append seq %d after %d", rec.Seq, last)
	}
	if err := l.write(frameRecord(encodeMutation(rec))); err != nil {
		return err
	}
	l.lastSeq.Store(rec.Seq)
	return nil
}

func (l *Log) write(frame []byte) error {
	if _, err := l.f.Write(frame); err != nil {
		// A partial write leaves a torn tail; the next Open truncates it.
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.err
	}
	l.size.Add(int64(len(frame)))
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
			return l.err
		}
	}
	return nil
}

// Sync forces the log to stable storage regardless of Options.Sync.
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	return l.f.Sync()
}

// LastSeq reports the highest record sequence number in the log.
func (l *Log) LastSeq() int64 { return l.lastSeq.Load() }

// Size reports the log's current byte length.
func (l *Log) Size() int64 { return l.size.Load() }

// Err reports the latched append failure, if any.
func (l *Log) Err() error { return l.err }

// Close closes the file. The log stays on disk for the next Open.
func (l *Log) Close() error { return l.f.Close() }
