package wal

import (
	"bytes"
	"testing"

	"repro/internal/exp"
)

// FuzzWALReplay pins the recovery contract against arbitrary log damage:
// whatever bytes Scan is handed — a valid log, a truncation, bit flips,
// garbage — it must never panic, and every record it returns must be one it
// could only have read through a passing checksum with contiguous sequence
// numbers. Damage resolves exactly one of two ways: a clean truncation point
// (good <= len(data), and rescanning data[:good] reproduces the same records
// with nothing further to drop) or ErrCorrupt.
func FuzzWALReplay(f *testing.F) {
	// Seed with a healthy log and a few canonical damage shapes.
	valid := validLog(8)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])         // torn tail
	f.Add(valid[:headerOnlyLen(valid)]) // header only
	f.Add([]byte{})                     // empty
	f.Add([]byte{0xff, 0xff, 0xff})     // garbage
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped) // mid-log bit flip

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, good, err := Scan(data)
		if err != nil {
			return // ErrCorrupt (or wrapped): a legal outcome, nothing replayed
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("truncation point %d outside [0, %d]", good, len(data))
		}
		// Every surviving record must have passed its checksum with
		// contiguous seqs from 1 — the "never replay a corrupted record"
		// half of the contract.
		for i, rec := range recs {
			if rec.Seq != int64(i)+1 {
				t.Fatalf("record %d has seq %d", i, rec.Seq)
			}
			if rec.Op.Op != exp.OpInsert && rec.Op.Op != exp.OpDelete {
				t.Fatalf("record %d has op %q", i, rec.Op.Op)
			}
		}
		// Truncation must be a fixpoint: scanning the good prefix yields the
		// same state and declares it clean — Open after a crash-after-crash
		// converges instead of shedding records forever.
		hdr2, recs2, good2, err2 := Scan(data[:good])
		if err2 != nil {
			t.Fatalf("rescan of good prefix failed: %v", err2)
		}
		if good2 != good {
			t.Fatalf("rescan truncates further: %d then %d", good, good2)
		}
		if hdr2 != hdr || len(recs2) != len(recs) {
			t.Fatalf("rescan diverged: %d records then %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("rescan record %d diverged", i)
			}
		}
	})
}

// validLog encodes a healthy n-record log image.
func validLog(n int) []byte {
	var buf []byte
	hdr := Header{Session: "fuzz", Base: exp.GraphSpec{Family: "cycle", N: 16}}
	buf = append(buf, frameRecord(encodeHeader(hdr))...)
	for seq := int64(1); seq <= int64(n); seq++ {
		rec := Record{Seq: seq, Op: exp.Mutation{Op: exp.OpInsert, U: int(seq), V: int(seq + 1)}}
		for i := range rec.Fingerprint {
			rec.Fingerprint[i] = byte(seq * int64(i))
		}
		buf = append(buf, frameRecord(encodeMutation(rec))...)
	}
	return buf
}

func headerOnlyLen(data []byte) int {
	_, next, _ := readFrame(data, 0)
	return next
}
