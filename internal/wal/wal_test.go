package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exp"
	"repro/internal/graph"
)

func testHeader() Header {
	return Header{
		Session: "sess-1",
		Base:    exp.GraphSpec{Family: "gnm", N: 32, M: 64, Seed: 7},
	}
}

func testRecord(seq int64) Record {
	var rec Record
	rec.Seq = seq
	rec.Op = exp.Mutation{Op: exp.OpInsert, U: int(seq), V: int(seq) + 1}
	if seq%3 == 0 {
		rec.Op.Op = exp.OpDelete
	}
	for i := range rec.Fingerprint {
		rec.Fingerprint[i] = byte(seq) + byte(i)
	}
	return rec
}

// writeLog creates a log with n records and returns its path.
func writeLog(t *testing.T, n int, opts Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.wal")
	l, err := Create(path, testHeader(), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for seq := int64(1); seq <= int64(n); seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append seq %d: %v", seq, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	path := writeLog(t, 10, Options{})
	l, hdr, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if hdr != testHeader() {
		t.Fatalf("header = %+v, want %+v", hdr, testHeader())
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	for i, rec := range recs {
		if want := testRecord(int64(i + 1)); rec != want {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	if l.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", l.LastSeq())
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := writeLog(t, 1, Options{})
	if _, err := Create(path, testHeader(), Options{}); err == nil {
		t.Fatal("Create over an existing log succeeded; must refuse")
	}
}

func TestAppendContinuesAfterOpen(t *testing.T) {
	path := writeLog(t, 5, Options{})
	l, _, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	if err := l.Append(testRecord(6)); err != nil {
		t.Fatalf("Append after Open: %v", err)
	}
	if err := l.Append(testRecord(8)); err == nil {
		t.Fatal("Append with a seq gap succeeded; must refuse")
	}
	l.Close()

	_, _, recs, err = Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 6 || recs[5] != testRecord(6) {
		t.Fatalf("reopen saw %d records (last %+v), want 6 ending in seq 6", len(recs), recs[len(recs)-1])
	}
}

// TestTornTailTruncated cuts a valid log at every possible byte length and
// asserts each prefix opens cleanly as some verified record prefix — the
// partial append is truncated, never misread, and never an error.
func TestTornTailTruncated(t *testing.T) {
	path := writeLog(t, 6, Options{})
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The header record must survive or the session is gone; start cutting
	// after it.
	_, _, headerEnd, _ := Scan(full[:headerLen(t, full)])
	for cut := int(headerEnd); cut <= len(full); cut++ {
		p := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, hdr, recs, err := Open(p, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if hdr != testHeader() {
			t.Fatalf("cut=%d: header = %+v", cut, hdr)
		}
		for i, rec := range recs {
			if want := testRecord(int64(i + 1)); rec != want {
				t.Fatalf("cut=%d: record %d = %+v, want %+v", cut, i, rec, want)
			}
		}
		// The truncated file must reopen to exactly the same state.
		if err := l.Append(testRecord(int64(len(recs)) + 1)); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		l.Close()
		_, _, recs2, err := Open(p, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen after truncation: %v", cut, err)
		}
		if len(recs2) != len(recs)+1 {
			t.Fatalf("cut=%d: reopen got %d records, want %d", cut, len(recs2), len(recs)+1)
		}
	}
}

// headerLen returns the byte length of the header frame of a valid log.
func headerLen(t *testing.T, data []byte) int {
	t.Helper()
	payload, next, st := readFrame(data, 0)
	if st != frameOK || payload == nil {
		t.Fatal("valid log does not start with a readable header frame")
	}
	return next
}

// TestMidLogCorruptionRejected flips one byte in a non-final record and
// asserts Open refuses with ErrCorrupt: acknowledged history is damaged, not
// torn, and must not be silently dropped.
func TestMidLogCorruptionRejected(t *testing.T) {
	path := writeLog(t, 6, Options{})
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hEnd := headerLen(t, full)
	_, rEnd, st := readFrame(full, hEnd)
	if st != frameOK {
		t.Fatal("cannot locate first mutation record")
	}
	// Flip a byte inside the first mutation record's payload.
	corrupt := bytes.Clone(full)
	corrupt[hEnd+2] ^= 0xff
	_ = rEnd
	p := filepath.Join(t.TempDir(), "corrupt.wal")
	if err := os.WriteFile(p, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(p, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open of mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

// TestFinalRecordChecksumIsTorn flips a byte in the last record: with
// nothing after it, a bad checksum is indistinguishable from an interrupted
// append and must truncate, not error.
func TestFinalRecordChecksumIsTorn(t *testing.T) {
	path := writeLog(t, 4, Options{})
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Clone(full)
	corrupt[len(corrupt)-5] ^= 0xff // inside the final record
	p := filepath.Join(t.TempDir(), "tornsum.wal")
	if err := os.WriteFile(p, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	l, _, recs, err := Open(p, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (final record truncated)", len(recs))
	}
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(full)) {
		t.Fatalf("file not truncated: %d bytes, had %d", fi.Size(), len(full))
	}
}

func TestSeqDiscontinuityRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gap.wal")
	var buf []byte
	buf = append(buf, frameRecord(encodeHeader(testHeader()))...)
	buf = append(buf, frameRecord(encodeMutation(testRecord(1)))...)
	buf = append(buf, frameRecord(encodeMutation(testRecord(3)))...) // gap
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open of seq-gap log: err = %v, want ErrCorrupt", err)
	}
}

func TestMissingHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hdrless.wal")
	// A log whose first record is a mutation has no session to recover.
	buf := frameRecord(encodeMutation(testRecord(1)))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open of headerless log: err = %v, want ErrCorrupt", err)
	}
}

func TestSyncOption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.wal")
	l, err := Create(path, testHeader(), Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatalf("Append with Sync: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestOversizedLengthIsTorn(t *testing.T) {
	path := writeLog(t, 2, Options{})
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append a frame whose length prefix claims more than maxRecord: nothing
	// after it can be framed, so it reads as a torn tail.
	huge := append(bytes.Clone(full), 0xff, 0xff, 0xff, 0xff, 0x7f)
	p := filepath.Join(t.TempDir(), "huge.wal")
	if err := os.WriteFile(p, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	l, _, recs, err := Open(p, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

func TestFingerprintRoundTrip(t *testing.T) {
	var fp graph.Fingerprint
	for i := range fp {
		fp[i] = byte(255 - i)
	}
	rec := Record{Seq: 1, Op: exp.Mutation{Op: exp.OpInsert, U: 0, V: 1}, Fingerprint: fp}
	got, err := decodeMutation(encodeMutation(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round trip = %+v, want %+v", got, rec)
	}
}
