package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
)

// GatewayConfig sizes a Gateway. Peers is required; everything else
// defaults.
type GatewayConfig struct {
	// Peers are the colord base URLs ("http://host:port") the gateway routes
	// across.
	Peers []string
	// Client issues all upstream requests (default: http.Transport with
	// per-peer keep-alive). Streaming subscriptions share it, so it must not
	// set a global Timeout; bounded calls wrap their own contexts.
	Client *http.Client
	// HealthInterval is the background probe cadence (default 500ms).
	HealthInterval time.Duration
}

// peerState is one upstream's health word. healthy flips passively (a dial
// failure during forwarding marks it down immediately) and actively (the
// prober confirms /healthz either way), so routing reacts at request speed
// and recovers at probe speed.
type peerState struct {
	url     string
	healthy atomic.Bool
}

// gatewayCounters is the cluster plane of the gateway's /statz.
type gatewayCounters struct {
	colorForwards     atomic.Int64
	mutateForwards    atomic.Int64
	subscribeForwards atomic.Int64
	retries           atomic.Int64
	peerErrors        atomic.Int64
	badRequests       atomic.Int64
}

// Gateway routes colord's API across a peer set by rendezvous hash: color
// reads by graph spec, sessions by name. It holds no coloring state of its
// own — determinism means any peer *can* answer anything; the gateway's job
// is only to make sure repeats land where the answer is already cached.
//
// Retry discipline: coloring reads are idempotent and retry down the key's
// rank order on any network error or 5xx. Mutations are not idempotent —
// they retry only on dial errors (no bytes reached the peer, so the op
// cannot have applied). Subscriptions are streamed through with per-chunk
// flushes and no retry (the client's Last-Event-ID reconnect is the retry).
type Gateway struct {
	ring   *Ring
	peers  map[string]*peerState
	client *http.Client
	ctr    gatewayCounters

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewGateway builds a gateway and starts its health prober. Close releases
// it.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	ring := NewRing(cfg.Peers)
	if ring.Len() == 0 {
		return nil, errors.New("cluster: gateway needs at least one peer")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	interval := cfg.HealthInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	g := &Gateway{
		ring:   ring,
		peers:  make(map[string]*peerState, ring.Len()),
		client: client,
		stop:   make(chan struct{}),
	}
	for _, p := range ring.Peers() {
		st := &peerState{url: p}
		// Optimistic start: peers are routable until a probe or a dial says
		// otherwise, so the gateway serves immediately after boot.
		st.healthy.Store(true)
		g.peers[p] = st
	}
	g.wg.Add(1)
	go g.probeLoop(interval)
	return g, nil
}

// Close stops the health prober. In-flight requests finish on their own.
func (g *Gateway) Close() {
	close(g.stop)
	g.wg.Wait()
}

func (g *Gateway) probeLoop(interval time.Duration) {
	defer g.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
			for _, st := range g.peers {
				g.probe(st)
			}
		}
	}
}

func (g *Gateway) probe(st *peerState) {
	req, err := http.NewRequest("GET", st.url+"/healthz", nil)
	if err != nil {
		st.healthy.Store(false)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := g.client.Do(req.WithContext(ctx))
	if err != nil {
		st.healthy.Store(false)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	st.healthy.Store(resp.StatusCode == http.StatusOK)
}

// rank orders the key's peers for attempting: healthy peers in rendezvous
// order first, then down peers in rendezvous order as a last resort (a "down"
// mark may be stale, and a wrong guess only costs one failed dial).
func (g *Gateway) rank(key string) []*peerState {
	ranked := g.ring.Rank(key)
	out := make([]*peerState, 0, len(ranked))
	for _, p := range ranked {
		if st := g.peers[p]; st.healthy.Load() {
			out = append(out, st)
		}
	}
	for _, p := range ranked {
		if st := g.peers[p]; !st.healthy.Load() {
			out = append(out, st)
		}
	}
	return out
}

// isDialError reports whether err failed before any bytes reached the peer —
// the only failure mode where retrying a non-idempotent request is safe.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// forward POSTs body to one peer and relays the response verbatim, plus an
// X-Colord-Peer header naming where it ran. Returns false when the caller
// should try the next peer (and true when a response — any response — was
// written).
func (g *Gateway) forward(w http.ResponseWriter, path string, body []byte, st *peerState, retryOn5xx bool, last bool) bool {
	req, err := http.NewRequest("POST", st.url+path, strings.NewReader(string(body)))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return true
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		g.ctr.peerErrors.Add(1)
		st.healthy.Store(false)
		if !last {
			return false
		}
		httpError(w, http.StatusBadGateway, fmt.Sprintf("cluster: peer %s: %v", st.url, err))
		return true
	}
	defer resp.Body.Close()
	if retryOn5xx && resp.StatusCode >= 500 && !last {
		g.ctr.peerErrors.Add(1)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return false
	}
	h := w.Header()
	for _, k := range []string{"Content-Type", "Content-Length", "X-Colord-Cache", "X-Colord-Key", "X-Colord-Fingerprint"} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("X-Colord-Peer", st.url)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// Handler returns the gateway's HTTP surface: colord's public API, routed.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/color", g.serveColor)
	mux.HandleFunc("POST /v1/mutate", g.serveMutate)
	mux.HandleFunc("GET /v1/subscribe", g.serveSubscribe)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		for _, st := range g.peers {
			if st.healthy.Load() {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				w.Write([]byte("ok\n"))
				return
			}
		}
		httpError(w, http.StatusServiceUnavailable, "no healthy peers")
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(g.Stats())
	})
	return mux
}

// serveColor routes a coloring read by its graph spec and retries down the
// rank order: reads are idempotent and deterministic, so any peer's answer
// is the right answer — the routing is purely a cache-locality play.
func (g *Gateway) serveColor(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		g.ctr.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var probe struct {
		Graph exp.GraphSpec `json:"graph"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		g.ctr.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	g.ctr.colorForwards.Add(1)
	order := g.rank(ColorKey(probe.Graph.String()))
	for i, st := range order {
		if i > 0 {
			g.ctr.retries.Add(1)
		}
		if g.forward(w, "/v1/color", body, st, true, i == len(order)-1) {
			return
		}
	}
}

// serveMutate routes a session request to its owner. Mutations are not
// idempotent, so only dial errors (nothing sent) move to the next peer;
// anything after bytes hit the wire is relayed as-is.
func (g *Gateway) serveMutate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		g.ctr.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var probe struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(body, &probe); err != nil || probe.Session == "" {
		g.ctr.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "mutate request needs a session name")
		return
	}
	g.ctr.mutateForwards.Add(1)
	order := g.rank(SessionKey(probe.Session))
	for i, st := range order {
		last := i == len(order)-1
		req, err := http.NewRequest("POST", st.url+"/v1/mutate", strings.NewReader(string(body)))
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := g.client.Do(req)
		if err != nil {
			g.ctr.peerErrors.Add(1)
			st.healthy.Store(false)
			if isDialError(err) && !last {
				g.ctr.retries.Add(1)
				continue
			}
			httpError(w, http.StatusBadGateway, fmt.Sprintf("cluster: peer %s: %v", st.url, err))
			return
		}
		h := w.Header()
		for _, k := range []string{"Content-Type", "X-Colord-Cache", "X-Colord-Fingerprint"} {
			if v := resp.Header.Get(k); v != "" {
				h.Set(k, v)
			}
		}
		h.Set("X-Colord-Peer", st.url)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
}

// serveSubscribe streams the session owner's SSE feed through, flushing per
// chunk so deltas are not buffered in the gateway. Last-Event-ID passes
// through untouched: resume semantics live on the owner.
func (g *Gateway) serveSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("session")
	if name == "" {
		g.ctr.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "subscribe needs a ?session=NAME query parameter")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	g.ctr.subscribeForwards.Add(1)
	order := g.rank(SessionKey(name))
	for i, st := range order {
		last := i == len(order)-1
		req, err := http.NewRequest("GET", st.url+"/v1/subscribe?session="+name, nil)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			req.Header.Set("Last-Event-ID", v)
		}
		resp, err := g.client.Do(req.WithContext(r.Context()))
		if err != nil {
			g.ctr.peerErrors.Add(1)
			st.healthy.Store(false)
			if isDialError(err) && !last {
				g.ctr.retries.Add(1)
				continue
			}
			httpError(w, http.StatusBadGateway, fmt.Sprintf("cluster: peer %s: %v", st.url, err))
			return
		}
		h := w.Header()
		for _, k := range []string{"Content-Type", "Cache-Control", "X-Accel-Buffering"} {
			if v := resp.Header.Get(k); v != "" {
				h.Set(k, v)
			}
		}
		h.Set("X-Colord-Peer", st.url)
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					break
				}
				flusher.Flush()
			}
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return
	}
}

// PeerStatus is one upstream in the gateway's /statz.
type PeerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// GatewayStats is the gateway's /statz body: the peer gauge plane plus the
// forwarding counters.
type GatewayStats struct {
	Peers             []PeerStatus `json:"peers"`
	HealthyPeers      int          `json:"healthyPeers"`
	ColorForwards     int64        `json:"colorForwards"`
	MutateForwards    int64        `json:"mutateForwards"`
	SubscribeForwards int64        `json:"subscribeForwards"`
	Retries           int64        `json:"retries"`
	PeerErrors        int64        `json:"peerErrors"`
	BadRequests       int64        `json:"badRequests"`
}

// Stats snapshots the gateway.
func (g *Gateway) Stats() GatewayStats {
	s := GatewayStats{
		ColorForwards:     g.ctr.colorForwards.Load(),
		MutateForwards:    g.ctr.mutateForwards.Load(),
		SubscribeForwards: g.ctr.subscribeForwards.Load(),
		Retries:           g.ctr.retries.Load(),
		PeerErrors:        g.ctr.peerErrors.Load(),
		BadRequests:       g.ctr.badRequests.Load(),
	}
	for _, p := range g.ring.Peers() {
		healthy := g.peers[p].healthy.Load()
		if healthy {
			s.HealthyPeers++
		}
		s.Peers = append(s.Peers, PeerStatus{URL: p, Healthy: healthy})
	}
	return s
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
