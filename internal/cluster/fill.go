package cluster

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Filler implements colord's Config.RemoteFill: on a local result-cache
// miss, ask the key's rendezvous owner for its encoded cache record before
// computing. The point is to make misrouted or rebalanced traffic cheap —
// after a peer joins or dies, keys that moved fill their new home with one
// GET instead of one full recoloring run.
//
// The fill is strictly best-effort: the owner answers only from cache (a
// miss is a 404, never a computation), the request carries a short deadline,
// and any failure falls through to local computation. Determinism makes this
// safe — a record fetched from a peer is byte-identical to what the local
// node would compute.
type Filler struct {
	ring    *Ring
	self    string
	client  *http.Client
	timeout time.Duration
}

// NewFiller builds a filler for the node at self (its own base URL, as it
// appears in peers). A nil client gets a keep-alive transport; timeout <= 0
// defaults to 250ms — a fill slower than that is worth less than computing.
func NewFiller(peers []string, self string, client *http.Client, timeout time.Duration) *Filler {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	return &Filler{ring: NewRing(peers), self: self, client: client, timeout: timeout}
}

// Fill fetches the encoded cache record for key from the graph's owner, or
// returns nil (own the key, owner down, owner misses, record oversized —
// all the same answer: compute locally). The signature matches
// service.Config.RemoteFill.
func (f *Filler) Fill(graphName, key string) []byte {
	owner := f.ring.Owner(ColorKey(graphName))
	if owner == "" || owner == f.self {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", owner+"/internal/record?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil
	}
	// Records are bounded by the graph size; 8 MiB covers any instance this
	// service builds, and the +1 read detects (and rejects) anything larger.
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20+1))
	if err != nil || len(data) == 0 || len(data) > 8<<20 {
		return nil
	}
	return data
}
