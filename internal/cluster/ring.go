// Package cluster scales colord horizontally without giving up its core
// invariant: responses are a pure function of the request. Because every node
// computes byte-identical answers, a cluster needs no consensus, no
// replication protocol, and no leader — only deterministic *placement*, so
// that repeat requests land where the cache and session state already are.
//
// Placement is rendezvous (highest-random-weight) hashing over the peer set:
// every node and every gateway ranks the peers for a key independently and
// agrees on the order with no coordination. Coloring reads route by graph
// spec (the whole read plane for one graph concentrates its cache on one
// node), sessions route by name (a session's WAL and maintainer live on its
// owner). When a peer dies, only its keys move — to the next peer in their
// rank order — and every surviving node agrees on the new owner instantly.
package cluster

import "sort"

// fnv1a is FNV-1a over two strings separated by NUL. The hash must be stable
// across processes and architectures — gateways and nodes built at different
// times have to agree on every key's owner — which rules out anything seeded
// per-process (maphash) and anything layout-dependent.
func fnv1a(peer, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(peer); i++ {
		h ^= uint64(peer[i])
		h *= prime64
	}
	h ^= 0
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// Ring is an immutable rendezvous hash over a set of peer addresses. Methods
// are safe for concurrent use; membership changes build a new Ring.
type Ring struct {
	peers []string
}

// NewRing builds a ring over the given peers (base URLs or opaque names).
// Duplicates are dropped; order does not matter — two rings over the same
// set rank every key identically.
func NewRing(peers []string) *Ring {
	seen := make(map[string]bool, len(peers))
	uniq := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	return &Ring{peers: uniq}
}

// Peers returns the membership in sorted order. The slice is shared; do not
// mutate.
func (r *Ring) Peers() []string { return r.peers }

// Len returns the peer count.
func (r *Ring) Len() int { return len(r.peers) }

// Owner returns the highest-weight peer for key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	var (
		best  string
		score uint64
	)
	for _, p := range r.peers {
		if s := fnv1a(p, key); best == "" || s > score || (s == score && p < best) {
			best, score = p, s
		}
	}
	return best
}

// Rank returns all peers in descending weight for key: Rank(k)[0] is
// Owner(k), and a request that fails on Rank(k)[i] should try Rank(k)[i+1] —
// the peer every other router would also pick next. Ties break by peer name
// so the order is total.
func (r *Ring) Rank(key string) []string {
	type scored struct {
		peer  string
		score uint64
	}
	ss := make([]scored, len(r.peers))
	for i, p := range r.peers {
		ss[i] = scored{p, fnv1a(p, key)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].peer < ss[j].peer
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.peer
	}
	return out
}

// ColorKey is the routing key of a coloring read: all reads of one graph
// concentrate on one owner, so its result cache fills once cluster-wide.
func ColorKey(graphName string) string { return "color/" + graphName }

// SessionKey is the routing key of a dynamic session: its maintainer and WAL
// live on the owner, and every mutate and subscribe for the name lands there.
func SessionKey(name string) string { return "session/" + name }
